// E6 — Linear Road (lite): the paper claims DataCell "easily meets the
// requirements of the Linear Road Benchmark" [16]. We scale the number of
// expressways L, replay the traffic simulation at an accelerated wall rate
// through a receptor, and measure the notification response time of every
// segment-statistics emission against the benchmark's 5-second deadline
// (de-scaled: at a 20x replay speedup the wall deadline is 250 ms).
//
// Response time comes from the engine's own ingest→delivery latency path
// (docs/OBSERVABILITY.md): the receptor stamps each batch at ingest, the
// factory carries the stamp of the append that crossed each window
// boundary onto the emission, and the emitter records the delta into the
// query's `query.<name>.latency_us` histogram — no bench-side bookkeeping.
//
// `--smoke` shrinks the simulation so CI can run it; the smoke run still
// writes BENCH_linear_road.json, which scripts/check_bench_regression.py
// --linear-road gates on (p99 within the scaled deadline).

#include <cstring>

#include "bench/bench_common.h"
#include "util/histogram.h"
#include "workload/linear_road.h"

namespace dc {
namespace {

using bench::Banner;
using workload::LinearRoadGenerator;
using workload::LrConfig;

constexpr int kSpeedup = 20;  // simulated seconds per wall second
constexpr Micros kDeadline = 5 * kMicrosPerSecond / kSpeedup;  // wall µs

struct LrRun {
  int xways = 0;
  uint64_t rows = 0;
  uint64_t emissions = 0;
  Histogram latency;  // ingest→delivery, µs
  uint64_t deadline_misses = 0;
};

/// Response-time histogram of the seg_stats query, straight from the
/// engine's per-query latency metric.
Histogram SegStatsLatency(Engine& engine, int qid) {
  for (const ContinuousQueryInfo& info : engine.Queries()) {
    if (info.id == qid) return info.latency;
  }
  return Histogram();
}

LrRun RunOne(int xways, int duration_sec) {
  LrConfig config;
  config.xways = xways;
  config.vehicles_per_xway = 200;
  config.duration_sec = duration_sec;
  config.stop_prob = 0.003;

  Engine engine(bench::Threaded(3));
  DC_CHECK_OK(engine.Execute(workload::LrPositionDdl("pos")));
  auto queries = workload::SetupLrQueries(engine, "pos",
                                          ExecMode::kIncremental,
                                          bench::NullSink(),
                                          bench::NullSink());
  DC_CHECK_OK(queries.status());

  LinearRoadGenerator gen(config);
  LrRun run;
  run.xways = xways;
  run.rows = gen.TotalReports();
  Receptor::Options ropts;
  // One simulated second of reports per 1/kSpeedup wall seconds.
  ropts.rows_per_sec =
      static_cast<double>(xways) * config.vehicles_per_xway * kSpeedup;
  ropts.batch_rows = 128;
  auto receptor = engine.AttachReceptor("pos", gen.Gen(), ropts);
  DC_CHECK_OK(receptor.status());
  DC_CHECK_OK(engine.WaitReceptor(*receptor));
  engine.WaitIdle();

  run.latency = SegStatsLatency(engine, queries->seg_stats);
  run.emissions = run.latency.count();
  run.deadline_misses =
      run.latency.count() - run.latency.CountLessEqual(kDeadline);
  return run;
}

/// BENCH_linear_road.json — schema in docs/BENCHMARKS.md. Gated in CI by
/// scripts/check_bench_regression.py --linear-road (p99 <= deadline).
void WriteLinearRoadJson(const LrRun& run) {
  FILE* f = fopen("BENCH_linear_road.json", "w");
  if (f == nullptr) {
    printf("  !! cannot write BENCH_linear_road.json\n");
    return;
  }
  fprintf(f, "{\n  \"bench\": \"linear_road\",\n");
  fprintf(f, "  \"generated_by\": \"bench_linear_road\",\n");
  fprintf(f, "  \"xways\": %d,\n  \"rows\": %llu,\n  \"emissions\": %llu,\n",
          run.xways, static_cast<unsigned long long>(run.rows),
          static_cast<unsigned long long>(run.emissions));
  fprintf(f, "  \"speedup\": %d,\n  \"deadline_ms\": %.1f,\n", kSpeedup,
          static_cast<double>(kDeadline) / 1000.0);
  fprintf(f, "  \"latency_ms\": {\"p50\": %.3f, \"p99\": %.3f, "
             "\"max\": %.3f},\n",
          static_cast<double>(run.latency.Percentile(0.50)) / 1000.0,
          static_cast<double>(run.latency.Percentile(0.99)) / 1000.0,
          static_cast<double>(run.latency.max()) / 1000.0);
  fprintf(f, "  \"deadline_misses\": %llu\n}\n",
          static_cast<unsigned long long>(run.deadline_misses));
  fclose(f);
  printf("\nwrote BENCH_linear_road.json (p99 %.1f ms, %llu misses)\n",
         static_cast<double>(run.latency.Percentile(0.99)) / 1000.0,
         static_cast<unsigned long long>(run.deadline_misses));
}

}  // namespace
}  // namespace dc

int main(int argc, char** argv) {
  using namespace dc;
  const bool smoke = argc > 1 && strcmp(argv[1], "--smoke") == 0;
  Banner("E6", "Linear Road lite: response time vs scale factor L");
  printf("replay speedup %dx -> wall deadline per notification: %s\n",
         kSpeedup, FormatDuration(kDeadline).c_str());
  printf("\n%3s | %9s | %6s | %10s %10s %10s | %6s %8s\n", "L", "reports",
         "emits", "p50", "p99", "max", "misses", "deadline");
  printf("%s\n", std::string(78, '-').c_str());

  const int duration_sec = smoke ? 40 : 60;
  LrRun last;
  for (int L : smoke ? std::vector<int>{1} : std::vector<int>{1, 2, 4}) {
    const LrRun run = RunOne(L, duration_sec);
    const bool met = run.latency.Percentile(0.99) <= kDeadline;
    printf("%3d | %9llu | %6llu | %10s %10s %10s | %6llu %8s\n", L,
           static_cast<unsigned long long>(run.rows),
           static_cast<unsigned long long>(run.emissions),
           FormatDuration(run.latency.Percentile(0.50)).c_str(),
           FormatDuration(run.latency.Percentile(0.99)).c_str(),
           FormatDuration(run.latency.max()).c_str(),
           static_cast<unsigned long long>(run.deadline_misses),
           met ? "MET" : "missed");
    last = run;
  }
  printf("\n(deadline 'MET' = p99 notification latency within the scaled "
         "5 s LRB budget;\n latency measured on the engine's "
         "ingest->delivery path, docs/OBSERVABILITY.md)\n");
  WriteLinearRoadJson(last);
  return 0;
}
