// E6 — Linear Road (lite): the paper claims DataCell "easily meets the
// requirements of the Linear Road Benchmark" [16]. We scale the number of
// expressways L, replay the traffic simulation at an accelerated wall rate
// through a receptor, and measure the delivery latency of every segment-
// statistics emission against the benchmark's 5-second deadline
// (de-scaled: at a 20x replay speedup the wall deadline is 250 ms).

#include <atomic>
#include <map>
#include <mutex>

#include "bench/bench_common.h"
#include "util/histogram.h"
#include "workload/linear_road.h"

namespace dc {
namespace {

using bench::Banner;
using workload::LinearRoadGenerator;
using workload::LrConfig;

constexpr int kSpeedup = 20;           // simulated seconds per wall second
constexpr Micros kSlide = 10 * kMicrosPerSecond;  // query slide (event time)
constexpr Micros kDeadline = 5 * kMicrosPerSecond / kSpeedup;  // wall µs

struct LatencyTracker {
  std::mutex mu;
  std::map<int64_t, Micros> boundary_push_time;  // event boundary -> steady
  Micros max_seen_ts = INT64_MIN;

  // Called from the receptor thread (wrapping the generator).
  void OnRow(Micros event_ts) {
    std::lock_guard<std::mutex> lock(mu);
    if (event_ts <= max_seen_ts) return;
    // Watermark crossed one or more slide boundaries: stamp them.
    const int64_t prev = max_seen_ts == INT64_MIN ? -1 : max_seen_ts / kSlide;
    const int64_t cur = event_ts / kSlide;
    const Micros now = SteadyMicros();
    for (int64_t b = prev + 1; b <= cur; ++b) {
      boundary_push_time.emplace(b * kSlide, now);
    }
    max_seen_ts = event_ts;
  }

  // Called from the emitter thread: emission i closes boundary
  // (i+1)*kSlide (first window ends one slide after the stream origin 0).
  Micros LatencyFor(uint64_t emission_index) {
    std::lock_guard<std::mutex> lock(mu);
    const int64_t boundary = static_cast<int64_t>(emission_index + 1) * kSlide;
    auto it = boundary_push_time.find(boundary);
    if (it == boundary_push_time.end()) return -1;
    return SteadyMicros() - it->second;
  }
};

}  // namespace
}  // namespace dc

int main() {
  using namespace dc;
  Banner("E6", "Linear Road lite: response time vs scale factor L");
  printf("replay speedup %dx -> wall deadline per notification: %s\n",
         kSpeedup, FormatDuration(kDeadline).c_str());
  printf("\n%3s | %9s %10s | %6s | %10s %10s %10s | %8s\n", "L", "reports",
         "rows/s", "emits", "p50", "p99", "max", "deadline");
  printf("%s\n", std::string(86, '-').c_str());

  for (int L : {1, 2, 4}) {
    LrConfig config;
    config.xways = L;
    config.vehicles_per_xway = 200;
    config.duration_sec = 60;
    config.stop_prob = 0.003;

    Engine engine(bench::Threaded(3));
    DC_CHECK_OK(engine.Execute(workload::LrPositionDdl("pos")));

    LatencyTracker tracker;
    Histogram latencies;
    std::mutex hist_mu;
    std::atomic<uint64_t> emissions{0};
    auto stats_sink = [&](const ColumnSet&) {
      const uint64_t idx = emissions.fetch_add(1);
      const Micros lat = tracker.LatencyFor(idx);
      if (lat >= 0) {
        std::lock_guard<std::mutex> lock(hist_mu);
        latencies.Record(lat);
      }
    };
    auto queries = workload::SetupLrQueries(
        engine, "pos", ExecMode::kIncremental, stats_sink, bench::NullSink());
    DC_CHECK_OK(queries.status());

    LinearRoadGenerator gen(config);
    const uint64_t total = gen.TotalReports();
    auto inner = gen.Gen();
    Receptor::RowGen wrapped = [&tracker,
                                inner](std::vector<Value>* row) mutable {
      if (!inner(row)) return false;
      tracker.OnRow((*row)[0].AsI64());
      return true;
    };
    Receptor::Options ropts;
    // One simulated second of reports per 1/kSpeedup wall seconds.
    ropts.rows_per_sec =
        static_cast<double>(L) * config.vehicles_per_xway * kSpeedup;
    ropts.batch_rows = 128;
    Stopwatch watch;
    auto receptor = engine.AttachReceptor("pos", wrapped, ropts);
    DC_CHECK_OK(receptor.status());
    DC_CHECK_OK(engine.WaitReceptor(*receptor));
    engine.WaitIdle();
    const double secs = static_cast<double>(watch.ElapsedMicros()) /
                        kMicrosPerSecond;

    std::lock_guard<std::mutex> lock(hist_mu);
    const bool met = latencies.Percentile(0.99) <= kDeadline;
    printf("%3d | %9llu %10.0f | %6llu | %10s %10s %10s | %8s\n", L,
           static_cast<unsigned long long>(total),
           static_cast<double>(total) / secs,
           static_cast<unsigned long long>(emissions.load()),
           FormatDuration(latencies.Percentile(0.50)).c_str(),
           FormatDuration(latencies.Percentile(0.99)).c_str(),
           FormatDuration(latencies.max()).c_str(), met ? "MET" : "missed");
  }
  printf("\n(deadline 'MET' = p99 notification latency within the scaled "
         "5 s LRB budget)\n");
  return 0;
}
