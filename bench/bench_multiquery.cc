// E5 — "Query Network Characteristics" (paper §4, Fig. 3): many standing
// queries sharing one stream basket.
//
// Part 1 (sync engine): N queries (mixed shapes) register on one packet
// stream; the harness feeds a fixed input and reports total processing
// time, per-query cost, and the shared basket's drop behaviour (tuples
// leave only after the slowest reader consumed them). With --dot, also
// emits the Graphviz query network (Fig. 1/Fig. 3 reproduction).
//
// Part 2 (threaded engines): the scheduler scaling sweep — fixed query
// count, worker count swept — measuring fire throughput of the sharded
// ready-queue scheduler (fires/s should grow with workers instead of
// plateauing at 2, the failure mode of the old single-mutex design).
// Emits BENCH_scheduler.json (see docs/BENCHMARKS.md for the schema).
//
// `--smoke` shrinks the row count and skips the sync table so CI can run
// the sweep cheaply and archive the JSON.
//
// Expected shape: ingestion is shared (one basket append per batch
// regardless of N); total execution grows ~linearly with N; resident
// basket size is bounded by the largest window, not by N; sweep fires/s
// monotone in worker count (given the cores to back it).

#include <cstdio>
#include <cstring>
#include <set>

#include "bench/bench_common.h"
#include "monitor/network.h"
#include "workload/generators.h"

namespace dc {
namespace {

using bench::Banner;
using bench::QueryOpts;
using bench::Sync;

constexpr uint64_t kRows = 40000;
constexpr Micros kTsStep = 100;

std::string QuerySql(int i) {
  switch (i % 4) {
    case 0:
      return StrFormat(
          "SELECT count(*), sum(bytes) FROM pkts "
          "[RANGE 1 SECONDS SLIDE 250 MILLISECONDS] WHERE port = %lld",
          static_cast<long long>(i % 2 == 0 ? 80 : 443));
    case 1:
      return "SELECT port, count(*) FROM pkts "
             "[RANGE 1 SECONDS SLIDE 250 MILLISECONDS] GROUP BY port";
    case 2:
      return StrFormat(
          "SELECT src, sum(bytes) FROM pkts "
          "[RANGE 1 SECONDS SLIDE 500 MILLISECONDS] WHERE bytes > %d "
          "GROUP BY src ORDER BY sum(bytes) DESC LIMIT 10",
          200 + (i * 37) % 400);
    default:
      return "SELECT avg(bytes), max(bytes) FROM pkts "
             "[RANGE 2 SECONDS SLIDE 500 MILLISECONDS]";
  }
}

/// One measured point of the worker-count sweep.
struct SweepPoint {
  int workers = 0;
  Micros wall = 0;
  SchedulerStats sched;
};

SweepPoint RunSweep(int workers, int queries,
                    const std::vector<std::vector<BatPtr>>& batches) {
  EngineOptions o;
  o.scheduler_workers = workers;  // shards default to one per worker
  Engine engine(o);
  DC_CHECK_OK(engine.Execute(workload::PacketDdl("pkts")));
  for (int i = 0; i < queries; ++i) {
    DC_CHECK_OK(engine
                    .SubmitContinuous(QuerySql(i),
                                      QueryOpts(ExecMode::kIncremental,
                                                StrFormat("q%d", i),
                                                bench::NullSink()))
                    .status());
  }
  Stopwatch watch;
  for (const auto& batch : batches) {
    DC_CHECK_OK(engine.PushColumns("pkts", batch));
  }
  DC_CHECK_OK(engine.SealStream("pkts"));
  if (!engine.WaitIdle(120000)) {
    printf("  !! WaitIdle timed out at %d workers\n", workers);
  }
  SweepPoint p;
  p.workers = workers;
  p.wall = watch.ElapsedMicros();
  p.sched = engine.SchedStats();
  return p;
}

void WriteSchedulerJson(const std::vector<SweepPoint>& points, int queries,
                        uint64_t rows) {
  FILE* f = fopen("BENCH_scheduler.json", "w");
  if (f == nullptr) {
    printf("  !! cannot write BENCH_scheduler.json\n");
    return;
  }
  fprintf(f, "{\n  \"bench\": \"scheduler\",\n");
  fprintf(f, "  \"generated_by\": \"bench_multiquery\",\n");
  fprintf(f, "  \"rows\": %llu,\n  \"queries\": %d,\n  \"sweep\": [\n",
          static_cast<unsigned long long>(rows), queries);
  for (size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& p = points[i];
    const double wall_s =
        static_cast<double>(p.wall) / static_cast<double>(kMicrosPerSecond);
    fprintf(f,
            "    {\"workers\": %d, \"shards\": %zu, \"wall_ms\": %.3f, "
            "\"fires\": %llu, \"fires_per_s\": %.1f, \"rows_per_s\": %.1f, "
            "\"steals\": %llu, \"enqueues\": %llu, \"spurious_pops\": %llu, "
            "\"notifications\": %llu}%s\n",
            p.workers, p.sched.shards.size(),
            static_cast<double>(p.wall) / 1000.0,
            static_cast<unsigned long long>(p.sched.fires),
            static_cast<double>(p.sched.fires) / wall_s,
            static_cast<double>(rows) / wall_s,
            static_cast<unsigned long long>(p.sched.steals),
            static_cast<unsigned long long>(p.sched.enqueues),
            static_cast<unsigned long long>(p.sched.spurious_pops),
            static_cast<unsigned long long>(p.sched.notifications),
            i + 1 < points.size() ? "," : "");
  }
  fprintf(f, "  ]\n}\n");
  fclose(f);
  printf("\nwrote BENCH_scheduler.json (%zu sweep points)\n", points.size());
}

// --- E5c: common-subexpression sharing (docs/SHARING.md) ------------------

/// One engine run of the shared-prefix family: `queries` standing queries
/// that differ only in their HAVING constant, so under sharing they ride
/// one window node (one basket reader, one partial build per basic
/// window) while unshared each keeps a private factory.
struct SharingRun {
  Micros wall = 0;
  Micros exec = 0;          // unique-factory total_exec_micros
  uint64_t builds = 0;      // unique-factory fragments_computed
  uint64_t sharing_hits = 0;
  uint64_t shared_nodes = 0;
  uint64_t readers = 0;
  uint64_t emissions = 0;
};

SharingRun RunSharedPrefix(bool sharing, int queries,
                           const std::vector<std::vector<BatPtr>>& batches) {
  EngineOptions o = Sync();
  o.enable_sharing = sharing;
  Engine engine(o);
  DC_CHECK_OK(engine.Execute(workload::PacketDdl("pkts")));
  std::vector<int> qids;
  for (int i = 0; i < queries; ++i) {
    auto qid = engine.SubmitContinuous(
        StrFormat("SELECT port, count(*), sum(bytes) FROM pkts "
                  "[RANGE 1 SECONDS SLIDE 250 MILLISECONDS] "
                  "GROUP BY port HAVING count(*) > %d ORDER BY port", i),
        QueryOpts(ExecMode::kIncremental, StrFormat("p%d", i),
                  bench::NullSink()));
    DC_CHECK_OK(qid.status());
    qids.push_back(*qid);
  }
  SharingRun r;
  r.wall = bench::FeedAndPump(engine, "pkts", batches);
  std::set<const Factory*> seen;  // dedupe tier-F-aliased factories
  for (int qid : qids) {
    const auto f = engine.GetFactory(qid);
    if (!seen.insert(f.get()).second) continue;
    const FactoryStats fs = f->Stats();
    r.builds += fs.fragments_computed;
    r.exec += fs.total_exec_micros;
    r.emissions += fs.emissions;
  }
  const SharingStats ss = engine.GetSharingStats();
  r.sharing_hits = ss.sharing_hits;
  r.shared_nodes = ss.shared_nodes;
  r.readers = engine.StreamStats("pkts")->readers;
  return r;
}

void PrintSharingRow(const char* label, const SharingRun& r) {
  printf("%9s | %10.1f %10.1f | %10llu %10llu | %6llu %8llu\n", label,
         static_cast<double>(r.wall) / 1000.0,
         static_cast<double>(r.exec) / 1000.0,
         static_cast<unsigned long long>(r.builds),
         static_cast<unsigned long long>(r.sharing_hits),
         static_cast<unsigned long long>(r.shared_nodes),
         static_cast<unsigned long long>(r.readers));
}

void SharingJsonSection(FILE* f, const char* key, const SharingRun& r,
                        const char* trail) {
  fprintf(f,
          "  \"%s\": {\"wall_ms\": %.3f, \"exec_ms\": %.3f, "
          "\"partial_builds\": %llu, \"sharing_hits\": %llu, "
          "\"shared_nodes\": %llu, \"stream_readers\": %llu, "
          "\"emissions\": %llu}%s\n",
          key, static_cast<double>(r.wall) / 1000.0,
          static_cast<double>(r.exec) / 1000.0,
          static_cast<unsigned long long>(r.builds),
          static_cast<unsigned long long>(r.sharing_hits),
          static_cast<unsigned long long>(r.shared_nodes),
          static_cast<unsigned long long>(r.readers),
          static_cast<unsigned long long>(r.emissions), trail);
}

/// BENCH_multiquery.json — schema in docs/BENCHMARKS.md. Gated in CI by
/// scripts/check_bench_regression.py --multiquery: the shared run must do
/// O(1) partial builds per slide regardless of query count.
void WriteMultiqueryJson(int queries, uint64_t rows, const SharingRun& shared,
                         const SharingRun& unshared) {
  FILE* f = fopen("BENCH_multiquery.json", "w");
  if (f == nullptr) {
    printf("  !! cannot write BENCH_multiquery.json\n");
    return;
  }
  const double ratio = shared.builds == 0
                           ? 0.0
                           : static_cast<double>(unshared.builds) /
                                 static_cast<double>(shared.builds);
  fprintf(f, "{\n  \"bench\": \"multiquery\",\n");
  fprintf(f, "  \"generated_by\": \"bench_multiquery\",\n");
  fprintf(f, "  \"rows\": %llu,\n  \"queries\": %d,\n",
          static_cast<unsigned long long>(rows), queries);
  SharingJsonSection(f, "shared", shared, ",");
  SharingJsonSection(f, "unshared", unshared, ",");
  fprintf(f, "  \"build_ratio\": %.2f\n}\n", ratio);
  fclose(f);
  printf("\nwrote BENCH_multiquery.json (build ratio %.1fx)\n", ratio);
}

void RunSharingExperiment(uint64_t rows,
                          const std::vector<std::vector<BatPtr>>& batches) {
  Banner("E5c", "shared-prefix family: one window node vs N private factories");
  constexpr int kSharedQueries = 32;
  printf("\n%d queries differing only in HAVING constant, %llu rows\n",
         kSharedQueries, static_cast<unsigned long long>(rows));
  printf("\n%9s | %10s %10s | %10s %10s | %6s %8s\n", "mode", "wall ms",
         "exec ms", "builds", "hits", "nodes", "readers");
  printf("%s\n", std::string(76, '-').c_str());
  const SharingRun shared = RunSharedPrefix(true, kSharedQueries, batches);
  const SharingRun unshared = RunSharedPrefix(false, kSharedQueries, batches);
  PrintSharingRow("shared", shared);
  PrintSharingRow("unshared", unshared);
  WriteMultiqueryJson(kSharedQueries, rows, shared, unshared);
}

}  // namespace
}  // namespace dc

int main(int argc, char** argv) {
  using namespace dc;
  const bool want_dot = argc > 1 && strcmp(argv[1], "--dot") == 0;
  const bool smoke = argc > 1 && strcmp(argv[1], "--smoke") == 0;
  const uint64_t rows = smoke ? 8000 : kRows;

  workload::PacketConfig config;
  config.ts_step = kTsStep;
  std::vector<std::vector<BatPtr>> batches;
  for (uint64_t off = 0; off < rows; off += 1000) {
    batches.push_back(workload::PacketBatch(config, off, 1000));
  }

  // E5b: the scheduler scaling sweep. Skipped under --dot, which only
  // wants the query-network graph from the E5 section below.
  if (!want_dot) {
    Banner("E5b", "scheduler scaling: fire throughput vs worker count");
    const int sweep_queries = smoke ? 8 : 16;
    printf("\n%d queries, %llu rows, shards = workers, stealing on\n",
           sweep_queries, static_cast<unsigned long long>(rows));
    printf("\n%7s | %10s %10s %12s | %8s %10s %10s\n", "workers", "wall ms",
           "fires", "fires/s", "steals", "spurious", "notifs");
    printf("%s\n", std::string(80, '-').c_str());
    std::vector<SweepPoint> points;
    for (int workers : {1, 2, 4}) {
      points.push_back(RunSweep(workers, sweep_queries, batches));
      const SweepPoint& p = points.back();
      const double wall_s =
          static_cast<double>(p.wall) / static_cast<double>(kMicrosPerSecond);
      printf("%7d | %10.1f %10llu %12.1f | %8llu %10llu %10llu\n", p.workers,
             static_cast<double>(p.wall) / 1000.0,
             static_cast<unsigned long long>(p.sched.fires),
             static_cast<double>(p.sched.fires) / wall_s,
             static_cast<unsigned long long>(p.sched.steals),
             static_cast<unsigned long long>(p.sched.spurious_pops),
             static_cast<unsigned long long>(p.sched.notifications));
    }
    WriteSchedulerJson(points, sweep_queries, rows);
    RunSharingExperiment(rows, batches);
    if (smoke) return 0;
  }

  Banner("E5", "multi-query networks over one shared basket");

  printf("\n%4s | %12s %14s | %12s %12s %14s\n", "N", "wall ms",
         "rows/s", "exec ms", "exec/query", "basket peak");
  printf("%s\n", std::string(80, '-').c_str());
  for (int n : {1, 2, 4, 8, 16, 32, 64}) {
    Engine engine(Sync());
    DC_CHECK_OK(engine.Execute(workload::PacketDdl("pkts")));
    std::vector<int> qids;
    for (int i = 0; i < n; ++i) {
      auto qid = engine.SubmitContinuous(
          QuerySql(i), QueryOpts(ExecMode::kIncremental,
                                 StrFormat("q%d", i), bench::NullSink()));
      DC_CHECK_OK(qid.status());
      qids.push_back(*qid);
    }
    uint64_t peak_resident = 0;
    Stopwatch watch;
    for (const auto& batch : batches) {
      DC_CHECK_OK(engine.PushColumns("pkts", batch));
      engine.Pump();
      peak_resident =
          std::max(peak_resident, engine.StreamStats("pkts")->resident_rows);
    }
    DC_CHECK_OK(engine.SealStream("pkts"));
    engine.Pump();
    const Micros wall = watch.ElapsedMicros();
    Micros exec_total = 0;
    std::set<const Factory*> seen;  // identical texts alias one factory
    for (int qid : qids) {
      const auto f = engine.GetFactory(qid);
      if (seen.insert(f.get()).second) {
        exec_total += f->Stats().total_exec_micros;
      }
    }
    printf("%4d | %12.1f %14.0f | %12.1f %12.1f %14llu\n", n,
           static_cast<double>(wall) / 1000.0,
           static_cast<double>(kRows) * kMicrosPerSecond /
               static_cast<double>(wall),
           static_cast<double>(exec_total) / 1000.0,
           static_cast<double>(exec_total) / 1000.0 / n,
           static_cast<unsigned long long>(peak_resident));
    if (want_dot && n == 4) {
      printf("\n-- query network DOT (N=4), Fig. 1/3 reproduction --\n%s\n",
             monitor::ExportDot(engine).c_str());
    }
    // All readers consumed everything: bounded basket memory.
    const auto stats = *engine.StreamStats("pkts");
    if (stats.resident_rows > peak_resident) {
      printf("  !! basket did not shrink\n");
    }
  }
  printf("\nrun with --dot to also print the Graphviz query network.\n");
  return 0;
}
