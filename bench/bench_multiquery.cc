// E5 — "Query Network Characteristics" (paper §4, Fig. 3): many standing
// queries sharing one stream basket.
//
// Part 1 (sync engine): N queries (mixed shapes) register on one packet
// stream; the harness feeds a fixed input and reports total processing
// time, per-query cost, and the shared basket's drop behaviour (tuples
// leave only after the slowest reader consumed them). With --dot, also
// emits the Graphviz query network (Fig. 1/Fig. 3 reproduction).
//
// Part 2 (threaded engines): the scheduler scaling sweep — fixed query
// count, worker count swept — measuring fire throughput of the sharded
// ready-queue scheduler (fires/s should grow with workers instead of
// plateauing at 2, the failure mode of the old single-mutex design).
// Emits BENCH_scheduler.json (see docs/BENCHMARKS.md for the schema).
//
// `--smoke` shrinks the row count and skips the sync table so CI can run
// the sweep cheaply and archive the JSON.
//
// Expected shape: ingestion is shared (one basket append per batch
// regardless of N); total execution grows ~linearly with N; resident
// basket size is bounded by the largest window, not by N; sweep fires/s
// monotone in worker count (given the cores to back it).

#include <cstdio>
#include <cstring>

#include "bench/bench_common.h"
#include "monitor/network.h"
#include "workload/generators.h"

namespace dc {
namespace {

using bench::Banner;
using bench::QueryOpts;
using bench::Sync;

constexpr uint64_t kRows = 40000;
constexpr Micros kTsStep = 100;

std::string QuerySql(int i) {
  switch (i % 4) {
    case 0:
      return StrFormat(
          "SELECT count(*), sum(bytes) FROM pkts "
          "[RANGE 1 SECONDS SLIDE 250 MILLISECONDS] WHERE port = %lld",
          static_cast<long long>(i % 2 == 0 ? 80 : 443));
    case 1:
      return "SELECT port, count(*) FROM pkts "
             "[RANGE 1 SECONDS SLIDE 250 MILLISECONDS] GROUP BY port";
    case 2:
      return StrFormat(
          "SELECT src, sum(bytes) FROM pkts "
          "[RANGE 1 SECONDS SLIDE 500 MILLISECONDS] WHERE bytes > %d "
          "GROUP BY src ORDER BY sum(bytes) DESC LIMIT 10",
          200 + (i * 37) % 400);
    default:
      return "SELECT avg(bytes), max(bytes) FROM pkts "
             "[RANGE 2 SECONDS SLIDE 500 MILLISECONDS]";
  }
}

/// One measured point of the worker-count sweep.
struct SweepPoint {
  int workers = 0;
  Micros wall = 0;
  SchedulerStats sched;
};

SweepPoint RunSweep(int workers, int queries,
                    const std::vector<std::vector<BatPtr>>& batches) {
  EngineOptions o;
  o.scheduler_workers = workers;  // shards default to one per worker
  Engine engine(o);
  DC_CHECK_OK(engine.Execute(workload::PacketDdl("pkts")));
  for (int i = 0; i < queries; ++i) {
    DC_CHECK_OK(engine
                    .SubmitContinuous(QuerySql(i),
                                      QueryOpts(ExecMode::kIncremental,
                                                StrFormat("q%d", i),
                                                bench::NullSink()))
                    .status());
  }
  Stopwatch watch;
  for (const auto& batch : batches) {
    DC_CHECK_OK(engine.PushColumns("pkts", batch));
  }
  DC_CHECK_OK(engine.SealStream("pkts"));
  if (!engine.WaitIdle(120000)) {
    printf("  !! WaitIdle timed out at %d workers\n", workers);
  }
  SweepPoint p;
  p.workers = workers;
  p.wall = watch.ElapsedMicros();
  p.sched = engine.SchedStats();
  return p;
}

void WriteSchedulerJson(const std::vector<SweepPoint>& points, int queries,
                        uint64_t rows) {
  FILE* f = fopen("BENCH_scheduler.json", "w");
  if (f == nullptr) {
    printf("  !! cannot write BENCH_scheduler.json\n");
    return;
  }
  fprintf(f, "{\n  \"bench\": \"scheduler\",\n");
  fprintf(f, "  \"generated_by\": \"bench_multiquery\",\n");
  fprintf(f, "  \"rows\": %llu,\n  \"queries\": %d,\n  \"sweep\": [\n",
          static_cast<unsigned long long>(rows), queries);
  for (size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& p = points[i];
    const double wall_s =
        static_cast<double>(p.wall) / static_cast<double>(kMicrosPerSecond);
    fprintf(f,
            "    {\"workers\": %d, \"shards\": %zu, \"wall_ms\": %.3f, "
            "\"fires\": %llu, \"fires_per_s\": %.1f, \"rows_per_s\": %.1f, "
            "\"steals\": %llu, \"enqueues\": %llu, \"spurious_pops\": %llu, "
            "\"notifications\": %llu}%s\n",
            p.workers, p.sched.shards.size(),
            static_cast<double>(p.wall) / 1000.0,
            static_cast<unsigned long long>(p.sched.fires),
            static_cast<double>(p.sched.fires) / wall_s,
            static_cast<double>(rows) / wall_s,
            static_cast<unsigned long long>(p.sched.steals),
            static_cast<unsigned long long>(p.sched.enqueues),
            static_cast<unsigned long long>(p.sched.spurious_pops),
            static_cast<unsigned long long>(p.sched.notifications),
            i + 1 < points.size() ? "," : "");
  }
  fprintf(f, "  ]\n}\n");
  fclose(f);
  printf("\nwrote BENCH_scheduler.json (%zu sweep points)\n", points.size());
}

}  // namespace
}  // namespace dc

int main(int argc, char** argv) {
  using namespace dc;
  const bool want_dot = argc > 1 && strcmp(argv[1], "--dot") == 0;
  const bool smoke = argc > 1 && strcmp(argv[1], "--smoke") == 0;
  const uint64_t rows = smoke ? 8000 : kRows;

  workload::PacketConfig config;
  config.ts_step = kTsStep;
  std::vector<std::vector<BatPtr>> batches;
  for (uint64_t off = 0; off < rows; off += 1000) {
    batches.push_back(workload::PacketBatch(config, off, 1000));
  }

  // E5b: the scheduler scaling sweep. Skipped under --dot, which only
  // wants the query-network graph from the E5 section below.
  if (!want_dot) {
    Banner("E5b", "scheduler scaling: fire throughput vs worker count");
    const int sweep_queries = smoke ? 8 : 16;
    printf("\n%d queries, %llu rows, shards = workers, stealing on\n",
           sweep_queries, static_cast<unsigned long long>(rows));
    printf("\n%7s | %10s %10s %12s | %8s %10s %10s\n", "workers", "wall ms",
           "fires", "fires/s", "steals", "spurious", "notifs");
    printf("%s\n", std::string(80, '-').c_str());
    std::vector<SweepPoint> points;
    for (int workers : {1, 2, 4}) {
      points.push_back(RunSweep(workers, sweep_queries, batches));
      const SweepPoint& p = points.back();
      const double wall_s =
          static_cast<double>(p.wall) / static_cast<double>(kMicrosPerSecond);
      printf("%7d | %10.1f %10llu %12.1f | %8llu %10llu %10llu\n", p.workers,
             static_cast<double>(p.wall) / 1000.0,
             static_cast<unsigned long long>(p.sched.fires),
             static_cast<double>(p.sched.fires) / wall_s,
             static_cast<unsigned long long>(p.sched.steals),
             static_cast<unsigned long long>(p.sched.spurious_pops),
             static_cast<unsigned long long>(p.sched.notifications));
    }
    WriteSchedulerJson(points, sweep_queries, rows);
    if (smoke) return 0;
  }

  Banner("E5", "multi-query networks over one shared basket");

  printf("\n%4s | %12s %14s | %12s %12s %14s\n", "N", "wall ms",
         "rows/s", "exec ms", "exec/query", "basket peak");
  printf("%s\n", std::string(80, '-').c_str());
  for (int n : {1, 2, 4, 8, 16, 32, 64}) {
    Engine engine(Sync());
    DC_CHECK_OK(engine.Execute(workload::PacketDdl("pkts")));
    std::vector<int> qids;
    for (int i = 0; i < n; ++i) {
      auto qid = engine.SubmitContinuous(
          QuerySql(i), QueryOpts(ExecMode::kIncremental,
                                 StrFormat("q%d", i), bench::NullSink()));
      DC_CHECK_OK(qid.status());
      qids.push_back(*qid);
    }
    uint64_t peak_resident = 0;
    Stopwatch watch;
    for (const auto& batch : batches) {
      DC_CHECK_OK(engine.PushColumns("pkts", batch));
      engine.Pump();
      peak_resident =
          std::max(peak_resident, engine.StreamStats("pkts")->resident_rows);
    }
    DC_CHECK_OK(engine.SealStream("pkts"));
    engine.Pump();
    const Micros wall = watch.ElapsedMicros();
    Micros exec_total = 0;
    for (int qid : qids) {
      exec_total += engine.GetFactory(qid)->Stats().total_exec_micros;
    }
    printf("%4d | %12.1f %14.0f | %12.1f %12.1f %14llu\n", n,
           static_cast<double>(wall) / 1000.0,
           static_cast<double>(kRows) * kMicrosPerSecond /
               static_cast<double>(wall),
           static_cast<double>(exec_total) / 1000.0,
           static_cast<double>(exec_total) / 1000.0 / n,
           static_cast<unsigned long long>(peak_resident));
    if (want_dot && n == 4) {
      printf("\n-- query network DOT (N=4), Fig. 1/3 reproduction --\n%s\n",
             monitor::ExportDot(engine).c_str());
    }
    // All readers consumed everything: bounded basket memory.
    const auto stats = *engine.StreamStats("pkts");
    if (stats.resident_rows > peak_resident) {
      printf("  !! basket did not shrink\n");
    }
  }
  printf("\nrun with --dot to also print the Graphviz query network.\n");
  return 0;
}
