// E5 — "Query Network Characteristics" (paper §4, Fig. 3): many standing
// queries sharing one stream basket.
//
// N queries (mixed shapes) register on one packet stream; the harness
// feeds a fixed input and reports total processing time, per-query cost,
// and the shared basket's drop behaviour (tuples leave only after the
// slowest reader consumed them). With --dot, also emits the Graphviz
// query network (Fig. 1/Fig. 3 reproduction).
//
// Expected shape: ingestion is shared (one basket append per batch
// regardless of N); total execution grows ~linearly with N; resident
// basket size is bounded by the largest window, not by N.

#include <cstring>

#include "bench/bench_common.h"
#include "monitor/network.h"
#include "workload/generators.h"

namespace dc {
namespace {

using bench::Banner;
using bench::QueryOpts;
using bench::Sync;

constexpr uint64_t kRows = 40000;
constexpr Micros kTsStep = 100;

std::string QuerySql(int i) {
  switch (i % 4) {
    case 0:
      return StrFormat(
          "SELECT count(*), sum(bytes) FROM pkts "
          "[RANGE 1 SECONDS SLIDE 250 MILLISECONDS] WHERE port = %lld",
          static_cast<long long>(i % 2 == 0 ? 80 : 443));
    case 1:
      return "SELECT port, count(*) FROM pkts "
             "[RANGE 1 SECONDS SLIDE 250 MILLISECONDS] GROUP BY port";
    case 2:
      return StrFormat(
          "SELECT src, sum(bytes) FROM pkts "
          "[RANGE 1 SECONDS SLIDE 500 MILLISECONDS] WHERE bytes > %d "
          "GROUP BY src ORDER BY sum(bytes) DESC LIMIT 10",
          200 + (i * 37) % 400);
    default:
      return "SELECT avg(bytes), max(bytes) FROM pkts "
             "[RANGE 2 SECONDS SLIDE 500 MILLISECONDS]";
  }
}

}  // namespace
}  // namespace dc

int main(int argc, char** argv) {
  using namespace dc;
  const bool want_dot = argc > 1 && strcmp(argv[1], "--dot") == 0;
  Banner("E5", "multi-query networks over one shared basket");

  workload::PacketConfig config;
  config.ts_step = kTsStep;
  std::vector<std::vector<BatPtr>> batches;
  for (uint64_t off = 0; off < kRows; off += 1000) {
    batches.push_back(workload::PacketBatch(config, off, 1000));
  }

  printf("\n%4s | %12s %14s | %12s %12s %14s\n", "N", "wall ms",
         "rows/s", "exec ms", "exec/query", "basket peak");
  printf("%s\n", std::string(80, '-').c_str());
  for (int n : {1, 2, 4, 8, 16, 32, 64}) {
    Engine engine(Sync());
    DC_CHECK_OK(engine.Execute(workload::PacketDdl("pkts")));
    std::vector<int> qids;
    for (int i = 0; i < n; ++i) {
      auto qid = engine.SubmitContinuous(
          QuerySql(i), QueryOpts(ExecMode::kIncremental,
                                 StrFormat("q%d", i), bench::NullSink()));
      DC_CHECK_OK(qid.status());
      qids.push_back(*qid);
    }
    uint64_t peak_resident = 0;
    Stopwatch watch;
    for (const auto& batch : batches) {
      DC_CHECK_OK(engine.PushColumns("pkts", batch));
      engine.Pump();
      peak_resident =
          std::max(peak_resident, engine.StreamStats("pkts")->resident_rows);
    }
    DC_CHECK_OK(engine.SealStream("pkts"));
    engine.Pump();
    const Micros wall = watch.ElapsedMicros();
    Micros exec_total = 0;
    for (int qid : qids) {
      exec_total += engine.GetFactory(qid)->Stats().total_exec_micros;
    }
    printf("%4d | %12.1f %14.0f | %12.1f %12.1f %14llu\n", n,
           static_cast<double>(wall) / 1000.0,
           static_cast<double>(kRows) * kMicrosPerSecond /
               static_cast<double>(wall),
           static_cast<double>(exec_total) / 1000.0,
           static_cast<double>(exec_total) / 1000.0 / n,
           static_cast<unsigned long long>(peak_resident));
    if (want_dot && n == 4) {
      printf("\n-- query network DOT (N=4), Fig. 1/3 reproduction --\n%s\n",
             monitor::ExportDot(engine).c_str());
    }
    // All readers consumed everything: bounded basket memory.
    const auto stats = *engine.StreamStats("pkts");
    if (stats.resident_rows > peak_resident) {
      printf("  !! basket did not shrink\n");
    }
  }
  printf("\nrun with --dot to also print the Graphviz query network.\n");
  return 0;
}
