// E3 — "Window Sizes" (paper §4): how window size and step change plans
// and performance in both execution modes.
//
// Two sweeps over a grouped sliding-window aggregation:
//  (a) fixed window/slide ratio (8 basic windows), growing window size;
//  (b) fixed window size, growing number of basic windows.
// Expected shape: full re-evaluation cost grows with the window size
// (it re-scans W every slide); incremental cost tracks the slide (fresh
// fragment) plus a merge term that grows mildly with the basic-window
// count.

#include "bench/bench_common.h"
#include "workload/generators.h"

namespace dc {
namespace {

using bench::Banner;
using bench::Collect;
using bench::FeedAndPump;
using bench::QueryOpts;
using bench::RunStats;
using bench::Sync;

constexpr uint64_t kRows = 120000;
constexpr Micros kTsStep = 100;

RunStats RunOne(ExecMode mode, Micros window, Micros slide,
                const std::vector<std::vector<BatPtr>>& batches) {
  Engine engine(Sync());
  DC_CHECK_OK(engine.Execute(workload::SensorDdl("s")));
  const std::string sql = StrFormat(
      "SELECT sensor, count(*), avg(temp) "
      "FROM s [RANGE %lld MICROSECONDS SLIDE %lld MICROSECONDS] "
      "GROUP BY sensor",
      static_cast<long long>(window), static_cast<long long>(slide));
  auto qid = engine.SubmitContinuous(
      sql, QueryOpts(mode, "agg", bench::NullSink()));
  DC_CHECK_OK(qid.status());
  // Feed without sealing so the cached-intermediate footprint is sampled
  // while windows are still live, then flush.
  const Micros wall = FeedAndPump(engine, "s", batches, /*seal=*/false);
  const size_t live_cache = engine.GetFactory(*qid)->Stats().cached_bytes;
  DC_CHECK_OK(engine.SealStream("s"));
  engine.Pump();
  RunStats out = Collect(engine, *qid, wall);
  out.cached_bytes = live_cache;
  return out;
}

void Row(const char* label, Micros window, Micros slide,
         const std::vector<std::vector<BatPtr>>& batches) {
  RunStats full = RunOne(ExecMode::kFullReeval, window, slide, batches);
  RunStats inc = RunOne(ExecMode::kIncremental, window, slide, batches);
  printf("%-18s %5lld | %14.1f | %14.1f %10zu | %7.2fx\n", label,
         static_cast<long long>(window / slide), full.ExecPerEmissionUs(),
         inc.ExecPerEmissionUs(), inc.cached_bytes,
         inc.exec_micros == 0
             ? 0.0
             : static_cast<double>(full.exec_micros) /
                   static_cast<double>(inc.exec_micros));
}

}  // namespace
}  // namespace dc

int main() {
  using namespace dc;
  Banner("E3", "window sizes and steps (grouped sliding-window agg)");
  workload::SensorConfig config;
  config.ts_step = kTsStep;
  config.num_sensors = 64;
  std::vector<std::vector<BatPtr>> batches;
  for (uint64_t off = 0; off < kRows; off += 1000) {
    batches.push_back(workload::SensorBatch(config, off, 1000));
  }

  printf("\n(a) growing window, fixed ratio window/slide = 8\n");
  printf("%-18s %5s | %14s | %14s %10s | %8s\n", "window", "n_bw",
         "full:us/emit", "inc:us/emit", "inc:cache", "speedup");
  printf("%s\n", std::string(86, '-').c_str());
  for (int64_t wsec_ms : {500, 1000, 2000, 4000, 8000}) {
    const Micros window = wsec_ms * kMicrosPerMilli;
    Row(FormatDuration(window).c_str(), window, window / 8, batches);
  }

  printf("\n(b) fixed window = 4 s, growing basic-window count\n");
  printf("%-18s %5s | %14s | %14s %10s | %8s\n", "slide", "n_bw",
         "full:us/emit", "inc:us/emit", "inc:cache", "speedup");
  printf("%s\n", std::string(86, '-').c_str());
  const Micros window = 4 * kMicrosPerSecond;
  for (int n : {1, 2, 4, 8, 16, 32, 64}) {
    const Micros slide = window / n;
    Row(FormatDuration(slide).c_str(), window, slide, batches);
  }
  return 0;
}
