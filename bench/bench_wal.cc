// E7 — durability overhead: the same fixed ingest workload with the WAL
// off, on with fsync=never (append-only logging, OS-buffered), and on
// with the default fsync=interval policy (docs/DURABILITY.md). Reports
// wall time, ingest throughput, and the wal.* counters per configuration,
// interleaving repetitions (off/never/interval, off/never/interval, ...)
// and keeping each configuration's best run so one cold file cache
// cannot bias a single arm.
//
// Emits BENCH_wal.json (schema in docs/BENCHMARKS.md), gated in CI by
// scripts/check_bench_regression.py --wal: logging without fsync must
// stay within 1.6x of durability-off (plus absolute slack for timer
// noise) — the WAL rides the existing batch-ordinal log, so its cost is
// one framed append per batch, not a per-row tax.
//
// `--smoke` shrinks the row count for CI.

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "storage/wal.h"
#include "workload/generators.h"

namespace dc {
namespace {

using bench::Banner;
using bench::QueryOpts;
using bench::Sync;

constexpr uint64_t kRows = 200000;
constexpr uint64_t kBatchRows = 1000;
constexpr Micros kTsStep = 100;
constexpr int kReps = 3;

struct WalConfig {
  const char* key;    // JSON section name
  bool durable;
  storage::FsyncPolicy fsync = storage::FsyncPolicy::kNever;
};

struct WalRun {
  Micros wall = 0;
  uint64_t records = 0;
  uint64_t bytes = 0;
  uint64_t syncs = 0;
};

std::string FreshDir() {
  std::string tmpl = std::filesystem::temp_directory_path() /
                     "dc_bench_wal_XXXXXX";
  if (::mkdtemp(tmpl.data()) == nullptr) {
    std::perror("mkdtemp");
    std::exit(1);
  }
  return tmpl;
}

WalRun RunOnce(const WalConfig& cfg,
               const std::vector<std::vector<BatPtr>>& batches) {
  EngineOptions o = Sync();
  std::string dir;
  if (cfg.durable) {
    dir = FreshDir();
    o.durability.dir = dir;
    o.durability.fsync = cfg.fsync;
  }
  WalRun r;
  {
    Engine engine(o);
    DC_CHECK_OK(engine.Execute(workload::PacketDdl("pkts")));
    DC_CHECK_OK(engine
                    .SubmitContinuous(
                        "SELECT port, count(*), sum(bytes) FROM pkts "
                        "[RANGE 1 SECONDS SLIDE 250 MILLISECONDS] "
                        "GROUP BY port",
                        QueryOpts(ExecMode::kIncremental, "agg",
                                  bench::NullSink()))
                    .status());
    DC_CHECK_OK(engine
                    .SubmitContinuous(
                        "SELECT count(*), avg(bytes) FROM pkts "
                        "[RANGE 2 SECONDS SLIDE 500 MILLISECONDS]",
                        QueryOpts(ExecMode::kIncremental, "scalar",
                                  bench::NullSink()))
                    .status());
    r.wall = bench::FeedAndPump(engine, "pkts", batches);
    r.records = engine.metrics().GetCounter("wal.records")->Value();
    r.bytes = engine.metrics().GetCounter("wal.bytes")->Value();
    r.syncs = engine.metrics().GetCounter("wal.syncs")->Value();
  }
  if (!dir.empty()) {
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
  }
  return r;
}

void PrintRow(const char* label, const WalRun& r, uint64_t rows,
              const WalRun& base) {
  const double wall_ms = static_cast<double>(r.wall) / 1000.0;
  const double rows_per_s = static_cast<double>(rows) * kMicrosPerSecond /
                            static_cast<double>(r.wall);
  printf("%14s | %10.1f %12.0f | %9llu %10llu %8llu | %6.2fx\n", label,
         wall_ms, rows_per_s, static_cast<unsigned long long>(r.records),
         static_cast<unsigned long long>(r.bytes),
         static_cast<unsigned long long>(r.syncs),
         static_cast<double>(r.wall) / static_cast<double>(base.wall));
}

void JsonSection(FILE* f, const char* key, const WalRun& r, uint64_t rows,
                 const char* trail) {
  fprintf(f,
          "  \"%s\": {\"wall_ms\": %.3f, \"rows_per_s\": %.1f, "
          "\"wal_records\": %llu, \"wal_bytes\": %llu, \"wal_syncs\": "
          "%llu}%s\n",
          key, static_cast<double>(r.wall) / 1000.0,
          static_cast<double>(rows) * kMicrosPerSecond /
              static_cast<double>(r.wall),
          static_cast<unsigned long long>(r.records),
          static_cast<unsigned long long>(r.bytes),
          static_cast<unsigned long long>(r.syncs), trail);
}

}  // namespace
}  // namespace dc

int main(int argc, char** argv) {
  using namespace dc;
  const bool smoke = argc > 1 && strcmp(argv[1], "--smoke") == 0;
  const uint64_t rows = smoke ? 20000 : kRows;

  workload::PacketConfig config;
  config.ts_step = kTsStep;
  std::vector<std::vector<BatPtr>> batches;
  for (uint64_t off = 0; off < rows; off += kBatchRows) {
    batches.push_back(workload::PacketBatch(config, off, kBatchRows));
  }

  Banner("E7", "durability overhead: WAL off vs fsync=never vs fsync=interval");
  printf("\n%llu rows in %zu batches, 2 standing queries, best of %d "
         "interleaved reps\n",
         static_cast<unsigned long long>(rows), batches.size(), kReps);

  const WalConfig configs[] = {
      {"off", false},
      {"fsync_never", true, storage::FsyncPolicy::kNever},
      {"fsync_interval", true, storage::FsyncPolicy::kInterval},
  };
  WalRun best[3];
  for (int rep = 0; rep < kReps; ++rep) {
    for (int c = 0; c < 3; ++c) {
      const WalRun r = RunOnce(configs[c], batches);
      if (rep == 0 || r.wall < best[c].wall) best[c] = r;
    }
  }

  printf("\n%14s | %10s %12s | %9s %10s %8s | %7s\n", "config", "wall ms",
         "rows/s", "records", "bytes", "syncs", "vs off");
  printf("%s\n", std::string(84, '-').c_str());
  for (int c = 0; c < 3; ++c) {
    PrintRow(configs[c].key, best[c], rows, best[0]);
  }

  FILE* f = fopen("BENCH_wal.json", "w");
  if (f == nullptr) {
    printf("  !! cannot write BENCH_wal.json\n");
    return 1;
  }
  fprintf(f, "{\n  \"bench\": \"wal\",\n  \"generated_by\": \"bench_wal\",\n");
  fprintf(f, "  \"rows\": %llu,\n  \"reps\": %d,\n",
          static_cast<unsigned long long>(rows), kReps);
  JsonSection(f, configs[0].key, best[0], rows, ",");
  JsonSection(f, configs[1].key, best[1], rows, ",");
  JsonSection(f, configs[2].key, best[2], rows, ",");
  fprintf(f, "  \"overhead_never\": %.3f,\n  \"overhead_interval\": %.3f\n}\n",
          static_cast<double>(best[1].wall) / static_cast<double>(best[0].wall),
          static_cast<double>(best[2].wall) /
              static_cast<double>(best[0].wall));
  fclose(f);
  printf("\nwrote BENCH_wal.json (never %.2fx, interval %.2fx vs off)\n",
         static_cast<double>(best[1].wall) / static_cast<double>(best[0].wall),
         static_cast<double>(best[2].wall) /
             static_cast<double>(best[0].wall));
  return 0;
}
