// E1 — "Two Query Paradigms" (paper §3, Fig. 1): continuous and one-time
// queries share one processing fabric, and a single factory can read both
// baskets and persistent tables.
//
// A threaded engine ingests a packet stream through a receptor while
//  (a) a pure-stream windowed aggregation and
//  (b) a stream⋈table windowed join
// run continuously, and the harness concurrently issues one-time SQL
// queries against the persistent table (and against the stream's basket).
// Reported: sustained stream throughput, per-emission execution time of
// both continuous shapes, and one-time query throughput during streaming.

#include <atomic>
#include <string_view>

#include "bench/bench_common.h"
#include "workload/generators.h"

namespace dc {
namespace {

using bench::Banner;
using bench::QueryOpts;
using bench::Threaded;

constexpr uint64_t kRows = 200000;
constexpr uint64_t kSmokeRows = 20000;  // --smoke: ctest anti-bit-rot run
constexpr Micros kTsStep = 100;

}  // namespace
}  // namespace dc

int main(int argc, char** argv) {
  using namespace dc;
  const bool smoke =
      argc > 1 && std::string_view(argv[1]) == std::string_view("--smoke");
  const uint64_t rows = smoke ? kSmokeRows : kRows;
  Banner("E1", "two query paradigms in one fabric (stream + persistent)");

  Engine engine(Threaded(3));
  DC_CHECK_OK(engine.Execute(workload::PacketDdl("pkts")));
  DC_CHECK_OK(engine.Execute("CREATE TABLE hosts (ip int, asn int)"));
  TablePtr hosts = *engine.catalog().GetTable("hosts");
  {
    std::vector<int64_t> ips, asns;
    for (int64_t ip = 0; ip < 5000; ++ip) {
      ips.push_back(ip);
      asns.push_back(ip % 97);
    }
    DC_CHECK_OK(
        hosts->AppendColumns({Bat::MakeI64(ips), Bat::MakeI64(asns)}));
  }

  auto stream_q = engine.SubmitContinuous(
      "SELECT port, count(*), sum(bytes) FROM pkts "
      "[RANGE 1 SECONDS SLIDE 250 MILLISECONDS] GROUP BY port",
      QueryOpts(ExecMode::kIncremental, "stream_agg", bench::NullSink()));
  DC_CHECK_OK(stream_q.status());
  auto join_q = engine.SubmitContinuous(
      "SELECT asn, sum(bytes) FROM pkts "
      "[RANGE 1 SECONDS SLIDE 250 MILLISECONDS] "
      "JOIN hosts ON pkts.src = hosts.ip GROUP BY asn",
      QueryOpts(ExecMode::kIncremental, "join_agg", bench::NullSink()));
  DC_CHECK_OK(join_q.status());

  workload::PacketConfig config;
  config.rows = rows;
  config.ts_step = kTsStep;
  dc::Receptor::Options ropts;
  ropts.rows_per_sec = 0;  // as fast as possible
  ropts.batch_rows = 512;

  Stopwatch watch;
  auto receptor =
      engine.AttachReceptor("pkts", workload::MakePacketGen(config), ropts);
  DC_CHECK_OK(receptor.status());

  // One-time queries against the table while the stream runs.
  std::atomic<bool> streaming{true};
  uint64_t onetime_queries = 0;
  std::thread onetime([&] {
    while (streaming.load()) {
      auto r = engine.Query(
          "SELECT asn, count(*) FROM hosts WHERE ip < 500 GROUP BY asn");
      DC_CHECK_OK(r.status());
      ++onetime_queries;
    }
  });

  DC_CHECK_OK(engine.WaitReceptor(*receptor));
  engine.WaitIdle();
  const Micros stream_wall = watch.ElapsedMicros();
  streaming.store(false);
  onetime.join();

  // A one-time query over the *stream's basket* (as-of-now semantics).
  auto peek = engine.Query("SELECT count(*) FROM pkts");
  DC_CHECK_OK(peek.status());

  const FactoryStats fs = engine.GetFactory(*stream_q)->Stats();
  const FactoryStats fj = engine.GetFactory(*join_q)->Stats();
  const double secs =
      static_cast<double>(stream_wall) / kMicrosPerSecond;
  printf("\nstream rows ingested      : %llu in %.2f s  (%.0f rows/s)\n",
         static_cast<unsigned long long>(rows), secs,
         static_cast<double>(rows) / secs);
  printf("stream_agg (basket only)  : %llu emissions, %.1f us/emission\n",
         static_cast<unsigned long long>(fs.emissions),
         fs.emissions ? static_cast<double>(fs.total_exec_micros) /
                            static_cast<double>(fs.emissions)
                      : 0.0);
  printf("join_agg (basket+table)   : %llu emissions, %.1f us/emission\n",
         static_cast<unsigned long long>(fj.emissions),
         fj.emissions ? static_cast<double>(fj.total_exec_micros) /
                            static_cast<double>(fj.emissions)
                      : 0.0);
  printf("one-time queries during streaming: %llu (%.0f qps)\n",
         static_cast<unsigned long long>(onetime_queries),
         static_cast<double>(onetime_queries) / secs);
  printf("one-time peek at basket    : %s rows resident\n",
         peek->cols[0]->GetValue(0).ToString().c_str());
  return 0;
}
