// E2 — "Simple Re-evaluation" vs "Incremental" (paper §4).
//
// Two scenarios, each sweeping the slide so the window spans 1..32 basic
// windows over an identical stream:
//
//   E2  (agg):  one sliding-window aggregation query. Incremental mode
//               computes one fragment per basic window and merges cached
//               partial aggregate states per emission.
//   E2b (join): a stream-stream equi-join under sliding windows. The
//               incremental path delta-joins only the newest basic window
//               against the retained window (new⋈old ∪ old⋈new ∪ new⋈new,
//               see docs/INCREMENTAL.md) and drops expiry-keyed partials
//               as basic windows leave the window; full re-evaluation
//               re-joins the whole window every slide.
//
// Both modes process the identical stream; we report per-emission
// execution time, the number of input tuples each mode touched (re-scans
// vs fragments), and the cached intermediate footprint.
//
// Expected shape (paper): at slide == window (tumbling) the modes match;
// as window/slide grows, incremental wins increasingly because every
// tuple's fragment is computed once and only merged thereafter, while full
// re-evaluation re-scans (and for E2b re-joins) the whole window every
// slide. The incremental tuples column stays flat in n_bw — work
// proportional to the new basic window, not the full window.
//
// `--smoke` shrinks the row counts so CI can run both sweeps cheaply.
// Both modes write BENCH_incremental.json (schema: docs/BENCHMARKS.md).

#include <cstring>

#include "bench/bench_common.h"
#include "workload/generators.h"

namespace dc {
namespace {

using bench::Banner;
using bench::Collect;
using bench::FeedAndPump;
using bench::QueryOpts;
using bench::RunStats;
using bench::Sync;

constexpr Micros kWindow = 4 * kMicrosPerSecond;

struct SweepPoint {
  const char* scenario;  // "agg" | "join"
  int n_bw = 1;
  Micros slide = 0;
  RunStats full;
  RunStats inc;
  uint64_t inc_delta_pairs = 0;

  double Speedup() const {
    return inc.exec_micros == 0
               ? 0.0
               : static_cast<double>(full.exec_micros) /
                     static_cast<double>(inc.exec_micros);
  }
};

RunStats RunAgg(ExecMode mode, Micros slide,
                const std::vector<std::vector<BatPtr>>& batches) {
  Engine engine(Sync());
  DC_CHECK_OK(engine.Execute(workload::SensorDdl("s")));
  const std::string sql = StrFormat(
      "SELECT count(*), sum(temp), avg(temp), min(temp), max(temp) "
      "FROM s [RANGE %lld MICROSECONDS SLIDE %lld MICROSECONDS]",
      static_cast<long long>(kWindow), static_cast<long long>(slide));
  auto qid = engine.SubmitContinuous(
      sql, QueryOpts(mode, "agg", bench::NullSink()));
  DC_CHECK_OK(qid.status());
  const Micros wall = FeedAndPump(engine, "s", batches);
  return Collect(engine, *qid, wall);
}

/// Feeds two pre-generated streams in interleaved batches (both sides
/// advance together so windows complete in step), pumping after each pair.
Micros FeedBothAndPump(Engine& engine,
                       const std::vector<std::vector<BatPtr>>& a,
                       const std::vector<std::vector<BatPtr>>& b) {
  Stopwatch watch;
  for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
    DC_CHECK_OK(engine.PushColumns("s1", a[i]));
    DC_CHECK_OK(engine.PushColumns("s2", b[i]));
    engine.Pump();
  }
  DC_CHECK_OK(engine.SealStream("s1"));
  DC_CHECK_OK(engine.SealStream("s2"));
  engine.Pump();
  return watch.ElapsedMicros();
}

RunStats RunJoin(ExecMode mode, Micros slide,
                 const std::vector<std::vector<BatPtr>>& a,
                 const std::vector<std::vector<BatPtr>>& b,
                 uint64_t* delta_pairs) {
  Engine engine(Sync());
  DC_CHECK_OK(engine.Execute(workload::SensorDdl("s1")));
  DC_CHECK_OK(engine.Execute(workload::SensorDdl("s2")));
  const std::string sql = StrFormat(
      "SELECT count(*), sum(s1.temp), sum(s2.temp) "
      "FROM s1 [RANGE %lld MICROSECONDS SLIDE %lld MICROSECONDS] "
      "JOIN s2 [RANGE %lld MICROSECONDS SLIDE %lld MICROSECONDS] "
      "ON s1.sensor = s2.sensor",
      static_cast<long long>(kWindow), static_cast<long long>(slide),
      static_cast<long long>(kWindow), static_cast<long long>(slide));
  auto qid = engine.SubmitContinuous(
      sql, QueryOpts(mode, "join", bench::NullSink()));
  DC_CHECK_OK(qid.status());
  const Micros wall = FeedBothAndPump(engine, a, b);
  *delta_pairs = engine.GetFactory(*qid)->Stats().delta_pairs;
  return Collect(engine, *qid, wall);
}

/// Runs `fn` `reps` times and keeps the fastest run (by total factory
/// execution time). Per-emission times at smoke row counts are only a few
/// milliseconds of work, so a single run is at the mercy of scheduler
/// noise; best-of-N is the standard noise-robust estimator and keeps the
/// speedup column (and the CTest bench-regression gate on it) stable.
template <typename Fn>
RunStats BestOf(int reps, Fn fn) {
  RunStats best = fn();
  for (int i = 1; i < reps; ++i) {
    const RunStats s = fn();
    if (s.exec_micros < best.exec_micros) best = s;
  }
  return best;
}

void PrintSweepHeader() {
  printf("\n%8s %5s | %11s %14s %12s | %11s %14s %12s | %8s\n", "slide",
         "n_bw", "full:emit", "full:us/emit", "full:tuples", "inc:emit",
         "inc:us/emit", "inc:tuples", "speedup");
  printf("%s\n", std::string(118, '-').c_str());
}

void PrintSweepRow(const SweepPoint& p) {
  printf("%8s %5d | %11llu %14.1f %12llu | %11llu %14.1f %12llu | %7.2fx\n",
         FormatDuration(p.slide).c_str(), p.n_bw,
         static_cast<unsigned long long>(p.full.emissions),
         p.full.ExecPerEmissionUs(),
         static_cast<unsigned long long>(p.full.tuples_in),
         static_cast<unsigned long long>(p.inc.emissions),
         p.inc.ExecPerEmissionUs(),
         static_cast<unsigned long long>(p.inc.tuples_in), p.Speedup());
}

void WriteModeJson(FILE* f, const char* name, const RunStats& s) {
  fprintf(f,
          "      \"%s\": {\"emissions\": %llu, \"exec_us_per_emission\": "
          "%.2f, \"tuples_in\": %llu, \"fragments\": %llu, "
          "\"cached_bytes\": %llu}",
          name, static_cast<unsigned long long>(s.emissions),
          s.ExecPerEmissionUs(),
          static_cast<unsigned long long>(s.tuples_in),
          static_cast<unsigned long long>(s.fragments),
          static_cast<unsigned long long>(s.cached_bytes));
}

void WriteIncrementalJson(const std::vector<SweepPoint>& points,
                          uint64_t agg_rows, uint64_t join_rows) {
  FILE* f = fopen("BENCH_incremental.json", "w");
  if (f == nullptr) {
    printf("  !! cannot write BENCH_incremental.json\n");
    return;
  }
  fprintf(f,
          "{\n  \"bench\": \"incremental\",\n"
          "  \"generated_by\": \"bench_incremental\",\n"
          "  \"window_us\": %llu,\n  \"agg_rows\": %llu,\n"
          "  \"join_rows\": %llu,\n  \"sweep\": [\n",
          static_cast<unsigned long long>(kWindow),
          static_cast<unsigned long long>(agg_rows),
          static_cast<unsigned long long>(join_rows));
  for (size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& p = points[i];
    fprintf(f,
            "    {\"scenario\": \"%s\", \"n_bw\": %d, \"slide_us\": %llu,\n",
            p.scenario, p.n_bw, static_cast<unsigned long long>(p.slide));
    WriteModeJson(f, "full", p.full);
    fprintf(f, ",\n");
    WriteModeJson(f, "incremental", p.inc);
    fprintf(f, ",\n      \"delta_pairs\": %llu, \"speedup\": %.3f}%s\n",
            static_cast<unsigned long long>(p.inc_delta_pairs), p.Speedup(),
            i + 1 < points.size() ? "," : "");
  }
  fprintf(f, "  ]\n}\n");
  fclose(f);
  printf("\nwrote BENCH_incremental.json (%zu sweep points)\n",
         points.size());
}

}  // namespace
}  // namespace dc

int main(int argc, char** argv) {
  using namespace dc;
  const bool smoke = argc > 1 && strcmp(argv[1], "--smoke") == 0;
  const uint64_t agg_rows = smoke ? 24000 : 120000;
  const uint64_t join_rows = smoke ? 8000 : 24000;
  constexpr uint64_t kBatch = 1000;
  constexpr int kReps = 3;  // best-of-3 per mode per sweep point
  std::vector<SweepPoint> points;

  Banner("E2", "full re-evaluation vs incremental (sliding-window agg)");
  printf("window = %s, stream = %llu rows\n", FormatDuration(kWindow).c_str(),
         static_cast<unsigned long long>(agg_rows));
  {
    workload::SensorConfig config;
    config.ts_step = 100;  // 10k rows per simulated second
    std::vector<std::vector<BatPtr>> batches;
    for (uint64_t off = 0; off < agg_rows; off += kBatch) {
      batches.push_back(workload::SensorBatch(config, off, kBatch));
    }
    PrintSweepHeader();
    for (int n : {1, 2, 4, 8, 16, 32}) {
      SweepPoint p;
      p.scenario = "agg";
      p.n_bw = n;
      p.slide = kWindow / n;
      p.full = BestOf(kReps, [&] {
        return RunAgg(ExecMode::kFullReeval, p.slide, batches);
      });
      p.inc = BestOf(kReps, [&] {
        return RunAgg(ExecMode::kIncremental, p.slide, batches);
      });
      PrintSweepRow(p);
      points.push_back(std::move(p));
    }
  }

  Banner("E2b", "full re-evaluation vs incremental (stream-stream join)");
  printf("window = %s, 2 streams x %llu rows, join on sensor id\n",
         FormatDuration(kWindow).c_str(),
         static_cast<unsigned long long>(join_rows));
  {
    // Sparser streams than E2 (2ms per row) keep the per-window join
    // output moderate while the window still spans thousands of rows.
    workload::SensorConfig ca, cb;
    ca.ts_step = cb.ts_step = 2000;
    ca.num_sensors = cb.num_sensors = 500;
    ca.seed = 7;
    cb.seed = 19;
    std::vector<std::vector<BatPtr>> a, b;
    for (uint64_t off = 0; off < join_rows; off += kBatch) {
      a.push_back(workload::SensorBatch(ca, off, kBatch));
      b.push_back(workload::SensorBatch(cb, off, kBatch));
    }
    PrintSweepHeader();
    for (int n : {1, 2, 4, 8}) {
      SweepPoint p;
      p.scenario = "join";
      p.n_bw = n;
      p.slide = kWindow / n;
      p.full = BestOf(kReps, [&] {
        uint64_t ignored = 0;
        return RunJoin(ExecMode::kFullReeval, p.slide, a, b, &ignored);
      });
      p.inc = BestOf(kReps, [&] {
        return RunJoin(ExecMode::kIncremental, p.slide, a, b,
                       &p.inc_delta_pairs);
      });
      PrintSweepRow(p);
      points.push_back(std::move(p));
    }
  }

  WriteIncrementalJson(points, agg_rows, join_rows);
  printf("\nnote: 'tuples' counts stream tuples read by the factory; in\n"
         "incremental mode each tuple enters exactly one basic-window\n"
         "fragment (and one delta join), independent of the slide.\n");
  return 0;
}
