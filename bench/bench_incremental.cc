// E2 — "Simple Re-evaluation" vs "Incremental" (paper §4).
//
// One sliding-window aggregation query, fixed window size, slide swept so
// the window spans 1..32 basic windows. Both execution modes process the
// identical stream; we report per-emission execution time, the number of
// input tuples each mode touched (re-scans vs fragments), and the cached
// intermediate footprint.
//
// Expected shape (paper): at slide == window (tumbling) the modes match;
// as window/slide grows, incremental wins increasingly because every
// tuple's fragment is computed once and only merged thereafter, while full
// re-evaluation re-scans the whole window every slide.

#include "bench/bench_common.h"
#include "workload/generators.h"

namespace dc {
namespace {

using bench::Banner;
using bench::Collect;
using bench::FeedAndPump;
using bench::QueryOpts;
using bench::RunStats;
using bench::Sync;

constexpr Micros kWindow = 4 * kMicrosPerSecond;
constexpr uint64_t kRows = 120000;
constexpr Micros kTsStep = 100;  // 10k rows per simulated second
constexpr uint64_t kBatch = 1000;

RunStats RunOne(ExecMode mode, Micros slide,
                const std::vector<std::vector<BatPtr>>& batches) {
  Engine engine(Sync());
  DC_CHECK_OK(engine.Execute(workload::SensorDdl("s")));
  const std::string sql = StrFormat(
      "SELECT count(*), sum(temp), avg(temp), min(temp), max(temp) "
      "FROM s [RANGE %lld MICROSECONDS SLIDE %lld MICROSECONDS]",
      static_cast<long long>(kWindow), static_cast<long long>(slide));
  auto qid = engine.SubmitContinuous(
      sql, QueryOpts(mode, "agg", bench::NullSink()));
  DC_CHECK_OK(qid.status());
  const Micros wall = FeedAndPump(engine, "s", batches);
  return Collect(engine, *qid, wall);
}

}  // namespace
}  // namespace dc

int main() {
  using namespace dc;
  Banner("E2", "full re-evaluation vs incremental (sliding-window agg)");
  printf("window = %s, stream = %llu rows (%.0f simulated seconds)\n",
         FormatDuration(kWindow).c_str(),
         static_cast<unsigned long long>(kRows),
         static_cast<double>(kRows) * kTsStep / kMicrosPerSecond);

  workload::SensorConfig config;
  config.ts_step = kTsStep;
  std::vector<std::vector<BatPtr>> batches;
  for (uint64_t off = 0; off < kRows; off += kBatch) {
    batches.push_back(workload::SensorBatch(config, off, kBatch));
  }

  printf("\n%8s %5s | %11s %14s %12s | %11s %14s %12s | %8s\n", "slide",
         "n_bw", "full:emit", "full:us/emit", "full:tuples", "inc:emit",
         "inc:us/emit", "inc:tuples", "speedup");
  printf("%s\n", std::string(118, '-').c_str());
  for (int n : {1, 2, 4, 8, 16, 32}) {
    const Micros slide = kWindow / n;
    RunStats full = RunOne(ExecMode::kFullReeval, slide, batches);
    RunStats inc = RunOne(ExecMode::kIncremental, slide, batches);
    printf("%8s %5d | %11llu %14.1f %12llu | %11llu %14.1f %12llu | %7.2fx\n",
           FormatDuration(slide).c_str(), n,
           static_cast<unsigned long long>(full.emissions),
           full.ExecPerEmissionUs(),
           static_cast<unsigned long long>(full.tuples_in),
           static_cast<unsigned long long>(inc.emissions),
           inc.ExecPerEmissionUs(),
           static_cast<unsigned long long>(inc.tuples_in),
           inc.exec_micros == 0
               ? 0.0
               : static_cast<double>(full.exec_micros) /
                     static_cast<double>(inc.exec_micros));
  }
  printf("\nnote: 'tuples' counts stream tuples read by the factory; in\n"
         "incremental mode each tuple enters exactly one basic-window\n"
         "fragment, independent of the slide.\n");
  return 0;
}
