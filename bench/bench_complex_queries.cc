// E4 — "Complex Queries" (paper §4): the incremental benefit for plans
// with joins vs simple select-project-aggregate plans.
//
// Three query shapes over the same sliding window, both modes:
//   SPA          filtered grouped aggregation over one stream
//   stream⋈table window join against a persistent dimension table + agg
//   stream⋈stream two windowed streams equi-joined + agg
// Expected shape: incremental wins on all three, and the win is larger
// for join plans — rebuilding a join for the whole window every slide is
// far costlier than joining only the fresh basic window (and, for
// stream⋈stream, only the fresh pairs).

#include "bench/bench_common.h"
#include "workload/generators.h"

namespace dc {
namespace {

using bench::Banner;
using bench::Collect;
using bench::FeedAndPump;
using bench::QueryOpts;
using bench::RunStats;
using bench::Sync;

constexpr Micros kWindow = 2 * kMicrosPerSecond;
constexpr Micros kSlide = kWindow / 8;
constexpr uint64_t kRows = 40000;
constexpr Micros kTsStep = 200;  // 5k rows per simulated second

void Prepare(Engine& engine) {
  DC_CHECK_OK(engine.Execute(workload::PacketDdl("pkts")));
  DC_CHECK_OK(engine.Execute(workload::SensorDdl("sens")));
  DC_CHECK_OK(engine.Execute("CREATE TABLE hosts (ip int, asn int)"));
  TablePtr hosts = *engine.catalog().GetTable("hosts");
  std::vector<int64_t> ips, asns;
  for (int64_t ip = 0; ip < 5000; ++ip) {
    ips.push_back(ip);
    asns.push_back(ip % 97);
  }
  DC_CHECK_OK(
      hosts->AppendColumns({Bat::MakeI64(ips), Bat::MakeI64(asns)}));
}

struct Shape {
  const char* label;
  std::string sql;
  const char* stream;   // primary stream fed by the harness
  bool dual = false;    // also feed the sensor stream
};

std::vector<Shape> Shapes() {
  const std::string win = StrFormat(
      "[RANGE %lld MICROSECONDS SLIDE %lld MICROSECONDS]",
      static_cast<long long>(kWindow), static_cast<long long>(kSlide));
  return {
      {"SPA",
       StrFormat("SELECT port, count(*), sum(bytes) FROM pkts %s "
                 "WHERE bytes > 256 GROUP BY port",
                 win.c_str()),
       "pkts", false},
      {"stream JOIN table",
       StrFormat("SELECT asn, count(*), sum(bytes) FROM pkts %s "
                 "JOIN hosts ON pkts.src = hosts.ip GROUP BY asn",
                 win.c_str()),
       "pkts", false},
      {"stream JOIN stream",
       StrFormat("SELECT count(*) FROM pkts %s JOIN sens %s "
                 "ON pkts.port = sens.sensor WHERE bytes > 512",
                 win.c_str(), win.c_str()),
       "pkts", true},
  };
}

RunStats RunOne(const Shape& shape, ExecMode mode,
                const std::vector<std::vector<BatPtr>>& pkts,
                const std::vector<std::vector<BatPtr>>& sens) {
  Engine engine(Sync());
  Prepare(engine);
  auto qid = engine.SubmitContinuous(
      shape.sql, QueryOpts(mode, "q", bench::NullSink()));
  DC_CHECK_OK(qid.status());
  Stopwatch watch;
  for (size_t i = 0; i < pkts.size(); ++i) {
    DC_CHECK_OK(engine.PushColumns("pkts", pkts[i]));
    if (shape.dual) DC_CHECK_OK(engine.PushColumns("sens", sens[i]));
    engine.Pump();
  }
  DC_CHECK_OK(engine.SealStream("pkts"));
  if (shape.dual) DC_CHECK_OK(engine.SealStream("sens"));
  engine.Pump();
  return Collect(engine, *qid, watch.ElapsedMicros());
}

}  // namespace
}  // namespace dc

int main() {
  using namespace dc;
  Banner("E4", "complex (join) queries vs simple SPA under both modes");
  printf("window = %s, slide = %s (8 basic windows), %llu rows/stream\n",
         FormatDuration(kWindow).c_str(), FormatDuration(kSlide).c_str(),
         static_cast<unsigned long long>(kRows));

  workload::PacketConfig pcfg;
  pcfg.ts_step = kTsStep;
  workload::SensorConfig scfg;
  scfg.ts_step = kTsStep;
  scfg.num_sensors = 100;
  std::vector<std::vector<BatPtr>> pkts, sens;
  for (uint64_t off = 0; off < kRows; off += 500) {
    pkts.push_back(workload::PacketBatch(pcfg, off, 500));
    sens.push_back(workload::SensorBatch(scfg, off, 500));
  }

  printf("\n%-20s | %14s | %14s | %8s\n", "query shape", "full:us/emit",
         "inc:us/emit", "speedup");
  printf("%s\n", std::string(66, '-').c_str());
  for (const auto& shape : Shapes()) {
    bench::RunStats full =
        RunOne(shape, ExecMode::kFullReeval, pkts, sens);
    bench::RunStats inc =
        RunOne(shape, ExecMode::kIncremental, pkts, sens);
    printf("%-20s | %14.1f | %14.1f | %7.2fx\n", shape.label,
           full.ExecPerEmissionUs(), inc.ExecPerEmissionUs(),
           inc.exec_micros == 0
               ? 0.0
               : static_cast<double>(full.exec_micros) /
                     static_cast<double>(inc.exec_micros));
  }
  return 0;
}
