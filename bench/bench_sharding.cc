// E10 (baseline) — naive stream sharding: N independent engine shards
// behind a trivial facade. Rows are key-partitioned (shard = g mod N),
// but the query is REPLICATED onto every shard and every shard receives
// every heartbeat, so each shard fires every slide and the facade merges
// by re-emission rather than by partial-aggregate combination.
//
// This is deliberately the flat-lining prototype recorded in ROADMAP.md:
// 4 shards => 4x total fires while the merged output stays at the same
// 13 emissions a single shard produces, and ingest throughput DROPS with
// shard count (the per-slide window work is duplicated N times and this
// box gives it no extra cores). It is committed as the measured baseline
// the real keyed-ingest + partial-merge design must beat; it emits
// BENCH_sharding.json (schema in docs/BENCHMARKS.md) and is NOT gated —
// the numbers document the anti-pattern.
//
// `--smoke` shrinks the row count for CI.

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "util/random.h"

namespace dc {
namespace {

using bench::Banner;
using bench::QueryOpts;
using bench::Sync;

constexpr uint64_t kRows = 60000;
constexpr int64_t kSpanSec = 12;  // tape covers [0, 12) seconds
constexpr uint64_t kSeed = 20260809;

struct ShardRow {
  int64_t ts_us;
  int64_t g;
  int64_t v;
};

std::vector<ShardRow> MakeTape(uint64_t n) {
  Rng rng(kSeed);
  std::vector<ShardRow> rows;
  rows.reserve(n);
  const int64_t span_us = kSpanSec * kMicrosPerSecond;
  for (uint64_t i = 0; i < n; ++i) {
    rows.push_back(ShardRow{
        static_cast<int64_t>(i) * span_us / static_cast<int64_t>(n),
        rng.UniformInt(0, 7), rng.UniformInt(-100, 100)});
  }
  return rows;
}

struct ShardingPoint {
  int shards = 0;
  Micros wall = 0;
  uint64_t fires = 0;             // total emissions across all shards
  uint64_t merged_emissions = 0;  // distinct window slides at the facade
};

ShardingPoint RunSharded(int nshards, const std::vector<ShardRow>& rows) {
  std::vector<std::unique_ptr<Engine>> shards;
  std::vector<int> qids;
  for (int s = 0; s < nshards; ++s) {
    shards.push_back(std::make_unique<Engine>(Sync()));
    DC_CHECK_OK(
        shards.back()->Execute("CREATE STREAM s (ts timestamp, g int, v int)"));
    auto qid = shards.back()->SubmitContinuous(
        "SELECT g, count(*), sum(v) FROM s "
        "[RANGE 2 SECONDS SLIDE 1 SECONDS] GROUP BY g ORDER BY g",
        QueryOpts(ExecMode::kIncremental, "agg", bench::NullSink()));
    DC_CHECK_OK(qid.status());
    qids.push_back(*qid);
  }

  Stopwatch watch;
  for (size_t i = 0; i < rows.size(); ++i) {
    const ShardRow& r = rows[i];
    const int target = static_cast<int>(r.g % nshards);
    DC_CHECK_OK(shards[target]->PushRow(
        "s", {Value::Ts(r.ts_us), Value::I64(r.g), Value::I64(r.v)}));
    if (i % 1000 == 999) {
      // The naive facade broadcasts time to every shard, so shards with
      // no matching keys still open, advance, and fire every window.
      for (auto& e : shards) DC_CHECK_OK(e->Heartbeat("s", r.ts_us));
      for (auto& e : shards) e->Pump();
    }
  }
  for (auto& e : shards) DC_CHECK_OK(e->SealStream("s"));
  for (auto& e : shards) e->Pump();

  ShardingPoint p;
  p.shards = nshards;
  p.wall = watch.ElapsedMicros();
  for (int s = 0; s < nshards; ++s) {
    const uint64_t em = shards[s]->GetFactory(qids[s])->Stats().emissions;
    p.fires += em;
    // Replicated queries + broadcast heartbeats: every shard fires every
    // slide, so the facade's re-emission merge dedups to one shard's
    // emission sequence.
    p.merged_emissions = std::max(p.merged_emissions, em);
  }
  return p;
}

}  // namespace
}  // namespace dc

int main(int argc, char** argv) {
  using namespace dc;
  const bool smoke = argc > 1 && strcmp(argv[1], "--smoke") == 0;
  const uint64_t nrows = smoke ? 6000 : kRows;
  const std::vector<ShardRow> rows = MakeTape(nrows);

  Banner("E10", "naive sharding baseline: replicated queries, broadcast time");
  printf("\n%llu rows over %llds, shard = g mod N, RANGE 2s SLIDE 1s\n",
         static_cast<unsigned long long>(nrows),
         static_cast<long long>(kSpanSec));
  printf("\n%6s | %10s %12s | %8s %10s\n", "shards", "wall ms", "rows/s",
         "fires", "merged");
  printf("%s\n", std::string(58, '-').c_str());

  std::vector<ShardingPoint> points;
  for (int n : {1, 2, 4}) {
    points.push_back(RunSharded(n, rows));
    const ShardingPoint& p = points.back();
    printf("%6d | %10.1f %12.0f | %8llu %10llu\n", p.shards,
           static_cast<double>(p.wall) / 1000.0,
           static_cast<double>(nrows) * kMicrosPerSecond /
               static_cast<double>(p.wall),
           static_cast<unsigned long long>(p.fires),
           static_cast<unsigned long long>(p.merged_emissions));
  }

  FILE* f = fopen("BENCH_sharding.json", "w");
  if (f == nullptr) {
    printf("  !! cannot write BENCH_sharding.json\n");
    return 1;
  }
  fprintf(f, "{\n  \"bench\": \"sharding\",\n");
  fprintf(f, "  \"generated_by\": \"bench_sharding\",\n");
  fprintf(f, "  \"design\": \"naive-replicated-baseline\",\n");
  fprintf(f, "  \"rows\": %llu,\n  \"sweep\": [\n",
          static_cast<unsigned long long>(nrows));
  for (size_t i = 0; i < points.size(); ++i) {
    const ShardingPoint& p = points[i];
    fprintf(f,
            "    {\"shards\": %d, \"wall_ms\": %.3f, \"rows_per_s\": %.1f, "
            "\"fires\": %llu, \"merged_emissions\": %llu}%s\n",
            p.shards, static_cast<double>(p.wall) / 1000.0,
            static_cast<double>(nrows) * kMicrosPerSecond /
                static_cast<double>(p.wall),
            static_cast<unsigned long long>(p.fires),
            static_cast<unsigned long long>(p.merged_emissions),
            i + 1 < points.size() ? "," : "");
  }
  fprintf(f, "  ]\n}\n");
  fclose(f);
  printf("\nwrote BENCH_sharding.json (%zu sweep points) — baseline for the "
         "keyed-ingest redesign\n",
         points.size());
  return 0;
}
