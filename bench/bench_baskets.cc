// E7 — basket mechanics (paper §3, "Baskets"): the cost of the stream
// buffer vs ordinary persistent tables, and the append/consume cycle.
// google-benchmark microbenches:
//   * basket column-batch append (the receptor hot path)
//   * basket row append
//   * COW table append (why baskets exist: tables are read-optimized)
//   * full append->read->advance->shrink cycle at steady state
//   * indexed table lookup vs basket scan (the indexing trade)
//   * bounded-basket producer/consumer throughput (the backpressure path)
//
// `--smoke` runs the suite at a tiny time budget and writes
// BENCH_baskets.json next to the binary (the CI anti-bit-rot entry that
// tracks ingest throughput under bounded memory).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/basket.h"
#include "storage/table.h"
#include "workload/generators.h"

namespace dc {
namespace {

Schema SensorSchema() {
  Schema s;
  DC_CHECK_OK(s.AddColumn("ts", TypeId::kTs));
  DC_CHECK_OK(s.AddColumn("sensor", TypeId::kI64));
  DC_CHECK_OK(s.AddColumn("temp", TypeId::kF64));
  return s;
}

void BM_BasketAppendBatch(benchmark::State& state) {
  const uint64_t batch_rows = state.range(0);
  workload::SensorConfig config;
  auto batch = workload::SensorBatch(config, 0, batch_rows);
  Basket basket("s", SensorSchema(), 0);
  const int reader = basket.RegisterReader(true);
  uint64_t consumed = 0;
  for (auto _ : state) {
    DC_CHECK_OK(basket.Append(batch));
    // Consume immediately so the basket stays small (steady state).
    consumed += batch_rows;
    basket.AdvanceReader(reader, consumed);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch_rows));
}
BENCHMARK(BM_BasketAppendBatch)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

void BM_BasketAppendRow(benchmark::State& state) {
  Basket basket("s", SensorSchema(), 0);
  const int reader = basket.RegisterReader(true);
  int64_t i = 0;
  for (auto _ : state) {
    DC_CHECK_OK(basket.AppendRow(
        {Value::Ts(i), Value::I64(i % 100), Value::F64(20.0)}));
    ++i;
    basket.AdvanceReader(reader, static_cast<uint64_t>(i));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BasketAppendRow);

void BM_TableAppendBatchCow(benchmark::State& state) {
  const uint64_t batch_rows = state.range(0);
  workload::SensorConfig config;
  auto batch = workload::SensorBatch(config, 0, batch_rows);
  for (auto _ : state) {
    state.PauseTiming();
    // Fresh table per iteration so COW cost reflects the growing-table
    // append the paper's design avoids on the hot path.
    Table table("t", SensorSchema());
    state.ResumeTiming();
    for (int k = 0; k < 8; ++k) {
      DC_CHECK_OK(table.AppendColumns(batch));
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 8 *
                          static_cast<int64_t>(batch_rows));
}
BENCHMARK(BM_TableAppendBatchCow)->Arg(1024);

void BM_BasketWindowReadCycle(benchmark::State& state) {
  const uint64_t window_rows = state.range(0);
  workload::SensorConfig config;
  auto batch = workload::SensorBatch(config, 0, window_rows);
  Basket basket("s", SensorSchema(), 0);
  const int reader = basket.RegisterReader(true);
  uint64_t cursor = 0;
  for (auto _ : state) {
    DC_CHECK_OK(basket.Append(batch));
    BasketView view = basket.Read(cursor, window_rows);
    benchmark::DoNotOptimize(view.rows);
    cursor += window_rows;
    basket.AdvanceReader(reader, cursor);  // triggers shrink
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(window_rows));
}
BENCHMARK(BM_BasketWindowReadCycle)->Arg(1024)->Arg(8192);

void BM_BasketBackpressureCycle(benchmark::State& state) {
  // Producer/consumer through a bounded basket: the producer blocks when
  // the bound is hit, the consumer thread drains in window-sized chunks.
  // Items/s is end-to-end ingest throughput under bounded memory.
  const uint64_t cap_rows = state.range(0);
  constexpr uint64_t kBatchRows = 256;
  workload::SensorConfig config;
  auto batch = workload::SensorBatch(config, 0, kBatchRows);
  BasketLimits limits;
  limits.max_rows = cap_rows;
  Basket basket("s", SensorSchema(), 0, limits);
  const int reader = basket.RegisterReader(true);

  std::atomic<bool> done{false};
  std::thread consumer([&] {
    uint64_t cursor = 0;
    while (!done.load(std::memory_order_acquire)) {
      const uint64_t high = basket.HighSeq();
      if (high == cursor) {
        std::this_thread::yield();
        continue;
      }
      BasketView view = basket.Read(cursor, high - cursor);
      benchmark::DoNotOptimize(view.rows);
      cursor = view.first_seq + view.rows;
      basket.AdvanceReader(reader, cursor);
    }
  });
  for (auto _ : state) {
    DC_CHECK_OK(basket.Append(batch));  // blocks at the bound
  }
  done.store(true, std::memory_order_release);
  consumer.join();
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kBatchRows));
  state.counters["stalls"] =
      static_cast<double>(basket.Stats().append_stalls);
  state.counters["hwm_rows"] =
      static_cast<double>(basket.Stats().resident_hwm_rows);
}
BENCHMARK(BM_BasketBackpressureCycle)->Arg(1024)->Arg(10000)->UseRealTime();

void BM_TableIndexedLookup(benchmark::State& state) {
  Table table("t", SensorSchema());
  workload::SensorConfig config;
  DC_CHECK_OK(table.AppendColumns(workload::SensorBatch(config, 0, 100000)));
  auto idx = table.GetHashIndex("sensor");
  DC_CHECK_OK(idx.status());
  int64_t key = 0;
  for (auto _ : state) {
    auto hits = (*idx)->Lookup(Value::I64(key % 100));
    benchmark::DoNotOptimize(hits->size());
    ++key;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TableIndexedLookup);

}  // namespace
}  // namespace dc

// `--smoke` expands to a tiny time budget plus a JSON report, so CI can run
// the suite cheaply and archive BENCH_baskets.json for the perf trajectory.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::vector<std::string> smoke_flags;
  const auto smoke_it = std::find_if(args.begin(), args.end(), [](char* a) {
    return std::string_view(a) == "--smoke";
  });
  if (smoke_it != args.end()) {
    args.erase(smoke_it);
    smoke_flags = {"--benchmark_min_time=0.01",
                   "--benchmark_out=BENCH_baskets.json",
                   "--benchmark_out_format=json"};
    for (std::string& f : smoke_flags) args.push_back(f.data());
  }
  int bench_argc = static_cast<int>(args.size());
  benchmark::Initialize(&bench_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
