// E7 — basket mechanics (paper §3, "Baskets"): the cost of the stream
// buffer vs ordinary persistent tables, and the append/consume cycle.
// google-benchmark microbenches:
//   * basket column-batch append (the receptor hot path)
//   * basket row append
//   * COW table append (why baskets exist: tables are read-optimized)
//   * full append->read->advance->shrink cycle at steady state
//   * indexed table lookup vs basket scan (the indexing trade)

#include <benchmark/benchmark.h>

#include "core/basket.h"
#include "storage/table.h"
#include "workload/generators.h"

namespace dc {
namespace {

Schema SensorSchema() {
  Schema s;
  DC_CHECK_OK(s.AddColumn("ts", TypeId::kTs));
  DC_CHECK_OK(s.AddColumn("sensor", TypeId::kI64));
  DC_CHECK_OK(s.AddColumn("temp", TypeId::kF64));
  return s;
}

void BM_BasketAppendBatch(benchmark::State& state) {
  const uint64_t batch_rows = state.range(0);
  workload::SensorConfig config;
  auto batch = workload::SensorBatch(config, 0, batch_rows);
  Basket basket("s", SensorSchema(), 0);
  const int reader = basket.RegisterReader(true);
  uint64_t consumed = 0;
  for (auto _ : state) {
    DC_CHECK_OK(basket.Append(batch));
    // Consume immediately so the basket stays small (steady state).
    consumed += batch_rows;
    basket.AdvanceReader(reader, consumed);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch_rows));
}
BENCHMARK(BM_BasketAppendBatch)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

void BM_BasketAppendRow(benchmark::State& state) {
  Basket basket("s", SensorSchema(), 0);
  const int reader = basket.RegisterReader(true);
  int64_t i = 0;
  for (auto _ : state) {
    DC_CHECK_OK(basket.AppendRow(
        {Value::Ts(i), Value::I64(i % 100), Value::F64(20.0)}));
    ++i;
    basket.AdvanceReader(reader, static_cast<uint64_t>(i));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BasketAppendRow);

void BM_TableAppendBatchCow(benchmark::State& state) {
  const uint64_t batch_rows = state.range(0);
  workload::SensorConfig config;
  auto batch = workload::SensorBatch(config, 0, batch_rows);
  for (auto _ : state) {
    state.PauseTiming();
    // Fresh table per iteration so COW cost reflects the growing-table
    // append the paper's design avoids on the hot path.
    Table table("t", SensorSchema());
    state.ResumeTiming();
    for (int k = 0; k < 8; ++k) {
      DC_CHECK_OK(table.AppendColumns(batch));
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 8 *
                          static_cast<int64_t>(batch_rows));
}
BENCHMARK(BM_TableAppendBatchCow)->Arg(1024);

void BM_BasketWindowReadCycle(benchmark::State& state) {
  const uint64_t window_rows = state.range(0);
  workload::SensorConfig config;
  auto batch = workload::SensorBatch(config, 0, window_rows);
  Basket basket("s", SensorSchema(), 0);
  const int reader = basket.RegisterReader(true);
  uint64_t cursor = 0;
  for (auto _ : state) {
    DC_CHECK_OK(basket.Append(batch));
    BasketView view = basket.Read(cursor, window_rows);
    benchmark::DoNotOptimize(view.rows);
    cursor += window_rows;
    basket.AdvanceReader(reader, cursor);  // triggers shrink
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(window_rows));
}
BENCHMARK(BM_BasketWindowReadCycle)->Arg(1024)->Arg(8192);

void BM_TableIndexedLookup(benchmark::State& state) {
  Table table("t", SensorSchema());
  workload::SensorConfig config;
  DC_CHECK_OK(table.AppendColumns(workload::SensorBatch(config, 0, 100000)));
  auto idx = table.GetHashIndex("sensor");
  DC_CHECK_OK(idx.status());
  int64_t key = 0;
  for (auto _ : state) {
    auto hits = (*idx)->Lookup(Value::I64(key % 100));
    benchmark::DoNotOptimize(hits->size());
    ++key;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TableIndexedLookup);

}  // namespace
}  // namespace dc

BENCHMARK_MAIN();
