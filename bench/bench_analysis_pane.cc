// E9 / F4 — the analysis pane (paper §4 "Analysis", Fig. 4): aggregation
// of performance metrics over a running query network — elapsed time,
// incoming data rate per basket, per-query and whole-network series.
//
// A threaded engine runs two streams and three standing queries for a few
// seconds while the pane samples at 50 ms; the harness then prints the
// trailing aggregates (the pane's table), a metric list, and the start of
// the exportable CSV (the pane's data series).

#include <chrono>
#include <thread>

#include "bench/bench_common.h"
#include "monitor/analysis.h"
#include "monitor/network.h"
#include "workload/generators.h"

int main() {
  using namespace dc;
  bench::Banner("E9", "analysis pane: metric aggregation over a run");

  Engine engine(bench::Threaded(2));
  DC_CHECK_OK(engine.Execute(workload::SensorDdl("sensors")));
  DC_CHECK_OK(engine.Execute(workload::TradesDdl("trades")));

  DC_CHECK_OK(engine
                  .SubmitContinuous(
                      "SELECT sensor, avg(temp) FROM sensors "
                      "[RANGE 500 MILLISECONDS SLIDE 100 MILLISECONDS] "
                      "GROUP BY sensor",
                      bench::QueryOpts(ExecMode::kIncremental, "avg_temp",
                                       bench::NullSink()))
                  .status());
  DC_CHECK_OK(engine
                  .SubmitContinuous(
                      "SELECT count(*) FROM sensors "
                      "[RANGE 1 SECONDS SLIDE 250 MILLISECONDS] "
                      "WHERE temp > 25.0",
                      bench::QueryOpts(ExecMode::kIncremental, "hot_count",
                                       bench::NullSink()))
                  .status());
  DC_CHECK_OK(engine
                  .SubmitContinuous(
                      "SELECT sym, min(px), max(px) FROM trades "
                      "[RANGE 1 SECONDS SLIDE 500 MILLISECONDS] GROUP BY sym",
                      bench::QueryOpts(ExecMode::kIncremental, "px_range",
                                       bench::NullSink()))
                  .status());

  workload::SensorConfig scfg;
  scfg.rows = 150000;
  scfg.ts_step = 50;
  Receptor::Options sropts;
  sropts.rows_per_sec = 50000;
  auto r1 = engine.AttachReceptor("sensors", workload::MakeSensorGen(scfg),
                                  sropts);
  DC_CHECK_OK(r1.status());
  workload::TradesConfig tcfg;
  tcfg.rows = 60000;
  tcfg.ts_step = 100;
  Receptor::Options tropts;
  tropts.rows_per_sec = 20000;
  auto r2 = engine.AttachReceptor("trades", workload::MakeTradesGen(tcfg),
                                  tropts);
  DC_CHECK_OK(r2.status());

  monitor::AnalysisPane pane;
  while (true) {
    pane.Sample(engine);
    const auto s1 = engine.StreamStats("sensors");
    const auto s2 = engine.StreamStats("trades");
    if (s1->appended_total >= scfg.rows && s2->appended_total >= tcfg.rows) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  engine.WaitIdle();
  pane.Sample(engine);

  printf("\n== trailing aggregates (whole run) ==\n%s\n",
         pane.RenderSummary().c_str());
  printf("== last-second aggregates ==\n%s\n",
         pane.RenderSummary(kMicrosPerSecond).c_str());
  printf("== query network during the run ==\n%s\n",
         monitor::RenderNetworkTable(engine).c_str());
  const std::string csv = pane.ToCsv();
  printf("== exportable CSV (first 3 lines of %zu bytes) ==\n", csv.size());
  size_t pos = 0;
  for (int line = 0; line < 3 && pos != std::string::npos; ++line) {
    const size_t next = csv.find('\n', pos);
    printf("%.*s\n", static_cast<int>(next - pos), csv.c_str() + pos);
    pos = next == std::string::npos ? next : next + 1;
  }
  return 0;
}
