// E8 — columnar kernel microbenchmarks (paper §3, "A Column-oriented
// DBMS"): the bulk operators DataCell reuses. Validates that the substrate
// behaves like a column store: selection scans at memory speed, candidate
// lists keep downstream operators proportional to selectivity, hash
// join/group scale with input, not with window bookkeeping.

#include <benchmark/benchmark.h>

#include "bat/ops_aggregate.h"
#include "bat/ops_arith.h"
#include "bat/ops_group.h"
#include "bat/ops_join.h"
#include "bat/ops_select.h"
#include "bat/ops_sort.h"
#include "util/random.h"

namespace dc {
namespace {

BatPtr RandomI64(uint64_t n, int64_t lo, int64_t hi, uint64_t seed = 1) {
  Rng rng(seed);
  std::vector<int64_t> v(n);
  for (auto& x : v) x = rng.UniformInt(lo, hi);
  return Bat::MakeI64(std::move(v));
}

BatPtr RandomF64(uint64_t n, uint64_t seed = 2) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.UniformDouble(0, 1000);
  return Bat::MakeF64(std::move(v));
}

void BM_SelectCmp(benchmark::State& state) {
  const uint64_t n = 1 << 20;
  const int64_t sel_pct = state.range(0);
  auto col = RandomI64(n, 0, 99);
  const Value lit = Value::I64(sel_pct);
  for (auto _ : state) {
    auto cand = ops::SelectCmp(*col, CmpOp::kLt, lit);
    benchmark::DoNotOptimize(cand->size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_SelectCmp)->Arg(1)->Arg(10)->Arg(50)->Arg(100);

void BM_SelectThenGather(benchmark::State& state) {
  const uint64_t n = 1 << 20;
  const int64_t sel_pct = state.range(0);
  auto key = RandomI64(n, 0, 99);
  auto payload = RandomF64(n);
  const Value lit = Value::I64(sel_pct);
  for (auto _ : state) {
    auto cand = ops::SelectCmp(*key, CmpOp::kLt, lit);
    auto out = payload->Gather(*cand);
    benchmark::DoNotOptimize(out->size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_SelectThenGather)->Arg(1)->Arg(10)->Arg(100);

void BM_MapArith(benchmark::State& state) {
  const uint64_t n = 1 << 20;
  auto a = RandomF64(n, 3);
  auto b = RandomF64(n, 4);
  for (auto _ : state) {
    auto out = ops::MapArith(*a, ArithOp::kMul, *b);
    benchmark::DoNotOptimize((*out)->size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_MapArith);

void BM_HashJoin(benchmark::State& state) {
  const uint64_t n = state.range(0);
  auto left = RandomI64(n, 0, static_cast<int64_t>(n) - 1, 5);
  auto right = RandomI64(n / 4, 0, static_cast<int64_t>(n) - 1, 6);
  for (auto _ : state) {
    auto jr = ops::HashJoin(*left, *right);
    benchmark::DoNotOptimize(jr->size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_HashJoin)->Arg(1 << 14)->Arg(1 << 17)->Arg(1 << 20);

void BM_GroupBy(benchmark::State& state) {
  const uint64_t n = 1 << 19;
  const int64_t cardinality = state.range(0);
  auto keys = RandomI64(n, 0, cardinality - 1, 7);
  for (auto _ : state) {
    auto groups = ops::GroupBy({keys.get()});
    benchmark::DoNotOptimize(groups->num_groups);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_GroupBy)->Arg(16)->Arg(1024)->Arg(65536);

void BM_ScalarAggregate(benchmark::State& state) {
  const uint64_t n = 1 << 20;
  auto col = RandomF64(n, 8);
  for (auto _ : state) {
    ops::AggState st;
    st.AddColumn(*col, nullptr);
    benchmark::DoNotOptimize(st.dsum);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_ScalarAggregate);

void BM_Sort(benchmark::State& state) {
  const uint64_t n = state.range(0);
  auto col = RandomI64(n, 0, 1 << 30, 9);
  for (auto _ : state) {
    auto order = ops::SortOrder({{col.get(), true}});
    benchmark::DoNotOptimize(order->size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_Sort)->Arg(1 << 14)->Arg(1 << 17);

// Ablation for the compiler's predicate strategy (DESIGN.md §4.3): a
// conjunction evaluated as a candidate chain (select on the shrinking
// candidate list) vs the boolean-map fallback (materialize full bool
// columns, AND them, then filter). The chain wins whenever the first
// conjunct is selective, which is why the optimizer orders conjuncts
// cheapest/most-selective first.
void BM_AblationCandidateChain(benchmark::State& state) {
  const uint64_t n = 1 << 20;
  const int64_t first_sel = state.range(0);  // % passing the first conjunct
  auto a = RandomI64(n, 0, 99, 12);
  auto b = RandomI64(n, 0, 99, 13);
  for (auto _ : state) {
    auto c1 = ops::SelectCmp(*a, CmpOp::kLt, Value::I64(first_sel));
    auto c2 = ops::SelectCmp(*b, CmpOp::kLt, Value::I64(50), &*c1);
    benchmark::DoNotOptimize(c2->size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_AblationCandidateChain)->Arg(1)->Arg(50)->Arg(100);

void BM_AblationBoolMapFallback(benchmark::State& state) {
  const uint64_t n = 1 << 20;
  const int64_t first_sel = state.range(0);
  auto a = RandomI64(n, 0, 99, 12);
  auto b = RandomI64(n, 0, 99, 13);
  for (auto _ : state) {
    auto m1 = ops::MapCmpConst(*a, CmpOp::kLt, Value::I64(first_sel));
    auto m2 = ops::MapCmpConst(*b, CmpOp::kLt, Value::I64(50));
    auto both = ops::MapAnd(**m1, **m2);
    auto cand = ops::SelectTrue(**both);
    benchmark::DoNotOptimize(cand->size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_AblationBoolMapFallback)->Arg(1)->Arg(50)->Arg(100);

void BM_CandidateIntersect(benchmark::State& state) {
  const uint64_t n = 1 << 20;
  auto a = RandomI64(n, 0, 99, 10);
  auto b = RandomI64(n, 0, 99, 11);
  auto ca = *ops::SelectCmp(*a, CmpOp::kLt, Value::I64(50));
  auto cb = *ops::SelectCmp(*b, CmpOp::kLt, Value::I64(50));
  for (auto _ : state) {
    auto out = Candidates::Intersect(ca, cb);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_CandidateIntersect);

}  // namespace
}  // namespace dc

BENCHMARK_MAIN();
