// Tracing overhead guard (ISSUE 9): the event tracer must be effectively
// free when EngineOptions::enable_tracing is off (one relaxed atomic load
// per span site) and cheap when on. This harness runs a fixed deterministic
// workload — sync engine, incremental windowed aggregate, bulk batches —
// with tracing off and on, interleaved, and fails (exit 1) if the best-of-N
// traced time exceeds the best-of-N untraced time by more than ~3% plus an
// absolute slack that absorbs timer noise at smoke scale.
//
// Side product: writes trace.json (Chrome trace_event JSON, loadable in
// Perfetto / chrome://tracing) from the traced runs, and checks the dump
// round-trips the expected span names. CI uploads it as an artifact.

#include <algorithm>
#include <string>

#include "bench/bench_common.h"
#include "monitor/trace.h"
#include "workload/generators.h"

namespace dc {
namespace {

using bench::Banner;
using bench::FeedAndPump;
using workload::SensorBatch;
using workload::SensorConfig;

constexpr uint64_t kRows = 400000;
constexpr uint64_t kBatchRows = 512;
constexpr int kReps = 5;

// Relative + absolute slack. The absolute floor keeps sub-second smoke
// runs from flaking on scheduler jitter a pure percentage would amplify.
constexpr double kMaxOverheadFrac = 0.03;
constexpr Micros kAbsSlackMicros = 75 * kMicrosPerMilli;

Micros RunOnce(bool tracing, const std::vector<std::vector<BatPtr>>& batches) {
  EngineOptions opts = bench::Sync();
  opts.enable_tracing = tracing;
  Engine engine(opts);
  DC_CHECK_OK(engine.Execute(workload::SensorDdl("s")));
  auto q = engine.SubmitContinuous(
      "SELECT sensor, AVG(temp), COUNT(*) FROM s "
      "[RANGE 200 MILLISECONDS SLIDE 50 MILLISECONDS] GROUP BY sensor",
      bench::QueryOpts(ExecMode::kIncremental, "trace_probe",
                       bench::NullSink()));
  DC_CHECK_OK(q.status());
  return FeedAndPump(engine, "s", batches);
}

bool DumpAndCheckTrace() {
  const std::string json = trace::DumpJson();
  FILE* f = fopen("trace.json", "w");
  if (f == nullptr) {
    printf("  !! cannot write trace.json\n");
    return false;
  }
  fwrite(json.data(), 1, json.size(), f);
  fclose(f);
  printf("wrote trace.json (%zu bytes, %llu buffered events)\n", json.size(),
         static_cast<unsigned long long>(trace::BufferedEventsForTest()));
  bool ok = true;
  for (const char* span : {"traceEvents", "factory.fire", "basket.append",
                           "emitter.drain"}) {
    if (json.find(span) == std::string::npos) {
      printf("  !! trace.json is missing \"%s\"\n", span);
      ok = false;
    }
  }
  return ok;
}

}  // namespace
}  // namespace dc

int main() {
  using namespace dc;
  Banner("T1", "tracing overhead: fixed workload, tracing off vs on");

  SensorConfig config;
  config.rows = kRows;
  std::vector<std::vector<BatPtr>> batches;
  for (uint64_t off = 0; off < kRows; off += kBatchRows) {
    batches.push_back(
        SensorBatch(config, off, std::min(kBatchRows, kRows - off)));
  }

  RunOnce(false, batches);  // warm-up: page in code + allocator state

  Micros best_off = INT64_MAX;
  Micros best_on = INT64_MAX;
  printf("\n%4s | %12s %12s\n", "rep", "off", "on");
  for (int rep = 0; rep < kReps; ++rep) {
    const Micros off = RunOnce(false, batches);
    const Micros on = RunOnce(true, batches);
    best_off = std::min(best_off, off);
    best_on = std::min(best_on, on);
    printf("%4d | %12s %12s\n", rep, FormatDuration(off).c_str(),
           FormatDuration(on).c_str());
  }

  const Micros slack = std::max(
      static_cast<Micros>(kMaxOverheadFrac * static_cast<double>(best_off)),
      kAbsSlackMicros);
  const Micros delta = best_on - best_off;
  printf("\nbest off %s, best on %s, delta %+lld us (allowed +%lld us)\n",
         FormatDuration(best_off).c_str(), FormatDuration(best_on).c_str(),
         static_cast<long long>(delta), static_cast<long long>(slack));

  const bool trace_ok = DumpAndCheckTrace();
  if (delta > slack) {
    printf("FAIL: tracing overhead above budget\n");
    return 1;
  }
  if (!trace_ok) {
    printf("FAIL: trace.json round-trip incomplete\n");
    return 1;
  }
  printf("PASS: tracing overhead within budget\n");
  return 0;
}
