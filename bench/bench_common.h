// Shared helpers for the experiment harnesses (bench_* binaries).
// Each binary regenerates one experiment from DESIGN.md §3 and prints a
// paper-style table; EXPERIMENTS.md records the measured shapes.

#ifndef DATACELL_BENCH_BENCH_COMMON_H_
#define DATACELL_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>
#include <vector>

#include "core/engine.h"
#include "util/clock.h"
#include "util/string_util.h"

namespace dc::bench {

/// Prints the experiment banner.
inline void Banner(const char* id, const char* title) {
  printf("\n================================================================\n");
  printf("%s  %s\n", id, title);
  printf("================================================================\n");
}

/// Feeds `batches` of pre-generated columns into a stream of a synchronous
/// engine, pumping after every batch; returns wall time in µs.
inline Micros FeedAndPump(Engine& engine, const std::string& stream,
                          const std::vector<std::vector<BatPtr>>& batches,
                          bool seal = true) {
  Stopwatch watch;
  for (const auto& batch : batches) {
    DC_CHECK_OK(engine.PushColumns(stream, batch));
    engine.Pump();
  }
  if (seal) {
    DC_CHECK_OK(engine.SealStream(stream));
    engine.Pump();
  }
  return watch.ElapsedMicros();
}

/// Per-query outcome of one run.
struct RunStats {
  uint64_t emissions = 0;
  uint64_t tuples_in = 0;
  uint64_t tuples_out = 0;
  uint64_t fragments = 0;
  Micros exec_micros = 0;      // total factory execution time
  size_t cached_bytes = 0;     // intermediate cache footprint at end
  Micros wall_micros = 0;

  double ExecPerEmissionUs() const {
    return emissions == 0 ? 0
                          : static_cast<double>(exec_micros) /
                                static_cast<double>(emissions);
  }
};

inline RunStats Collect(Engine& engine, int qid, Micros wall) {
  RunStats out;
  const FactoryStats fs = engine.GetFactory(qid)->Stats();
  out.emissions = fs.emissions;
  out.tuples_in = fs.tuples_in;
  out.tuples_out = fs.tuples_out;
  out.fragments = fs.fragments_computed;
  out.exec_micros = fs.total_exec_micros;
  out.cached_bytes = fs.cached_bytes;
  out.wall_micros = wall;
  return out;
}

inline dc::EngineOptions Sync() {
  dc::EngineOptions o;
  o.scheduler_workers = 0;
  return o;
}

inline dc::EngineOptions Threaded(int workers = 2) {
  dc::EngineOptions o;
  o.scheduler_workers = workers;
  return o;
}

inline Engine::ContinuousOptions QueryOpts(ExecMode mode,
                                           std::string name = "",
                                           Emitter::Sink sink = nullptr) {
  Engine::ContinuousOptions o;
  o.mode = mode;
  o.name = std::move(name);
  o.sink = std::move(sink);
  return o;
}

/// Swallows emissions (throughput experiments).
inline Emitter::Sink NullSink() {
  return [](const ColumnSet&) {};
}

}  // namespace dc::bench

#endif  // DATACELL_BENCH_BENCH_COMMON_H_
