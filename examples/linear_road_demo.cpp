// Linear Road (lite) demo: the benchmark the paper reports DataCell
// "easily meeting" [16]. Simulates traffic on L expressways, runs the
// segment-statistics and accident standing queries, and applies the toll
// formula to the statistics emissions.

#include <cstdio>

#include "core/engine.h"
#include "workload/linear_road.h"

using dc::Engine;
using dc::ExecMode;
using dc::workload::LinearRoadGenerator;
using dc::workload::LrConfig;

int main(int argc, char** argv) {
  LrConfig config;
  config.xways = argc > 1 ? atoi(argv[1]) : 1;
  config.vehicles_per_xway = 150;
  config.duration_sec = 90;
  config.stop_prob = 0.004;

  dc::EngineOptions opts;
  opts.scheduler_workers = 0;
  Engine engine(opts);
  DC_CHECK_OK(engine.Execute(dc::workload::LrPositionDdl("pos")));

  uint64_t toll_notifications = 0;
  double tolls_collected = 0;
  auto stats_sink = [&](const dc::ColumnSet& e) {
    for (uint64_t r = 0; r < e.NumRows(); ++r) {
      const double avg_speed = e.cols[3]->GetValue(r).AsF64();
      const int64_t reports = e.cols[4]->GetValue(r).AsI64();
      const double toll = dc::workload::LrToll(avg_speed, reports);
      if (toll > 0) {
        ++toll_notifications;
        tolls_collected += toll;
      }
    }
  };
  uint64_t accident_alerts = 0;
  auto accident_sink = [&](const dc::ColumnSet& e) {
    for (uint64_t r = 0; r < e.NumRows(); ++r) {
      ++accident_alerts;
      printf("  ACCIDENT xway=%lld dir=%lld seg=%lld (%lld stopped "
             "reports)\n",
             static_cast<long long>(e.cols[0]->GetValue(r).AsI64()),
             static_cast<long long>(e.cols[1]->GetValue(r).AsI64()),
             static_cast<long long>(e.cols[2]->GetValue(r).AsI64()),
             static_cast<long long>(e.cols[3]->GetValue(r).AsI64()));
    }
  };

  auto queries = dc::workload::SetupLrQueries(
      engine, "pos", ExecMode::kIncremental, stats_sink, accident_sink);
  DC_CHECK_OK(queries.status());

  printf("Linear Road lite: L=%d, %d vehicles/xway, %d simulated seconds\n",
         config.xways, config.vehicles_per_xway, config.duration_sec);
  printf("accident alerts as windows close:\n");

  LinearRoadGenerator gen(config);
  std::vector<dc::Value> row;
  uint64_t pushed = 0;
  while (gen.NextRow(&row)) {
    DC_CHECK_OK(engine.PushRow("pos", row));
    if (++pushed % 2048 == 0) engine.Pump();
  }
  DC_CHECK_OK(engine.SealStream("pos"));
  engine.Pump();

  printf("\nposition reports processed : %llu\n",
         static_cast<unsigned long long>(pushed));
  printf("toll notifications         : %llu (%.2f collected)\n",
         static_cast<unsigned long long>(toll_notifications),
         tolls_collected);
  printf("accident alerts            : %llu\n",
         static_cast<unsigned long long>(accident_alerts));
  const auto stats = engine.GetFactory(queries->seg_stats)->Stats();
  printf("segment-stats factory      : %llu emissions, %s total exec\n",
         static_cast<unsigned long long>(stats.emissions),
         dc::FormatDuration(stats.total_exec_micros).c_str());
  return 0;
}
