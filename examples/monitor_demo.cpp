// Monitor demo: reproduces the demo paper's GUI panes as terminal output —
// the live query network (Fig. 1/3, as Graphviz DOT and a text table),
// pause/resume of queries and streams, tuple-location inspection, and the
// analysis pane (Fig. 4, as a summary table and CSV).

#include <chrono>
#include <cstdio>
#include <thread>

#include "core/engine.h"
#include "monitor/analysis.h"
#include "monitor/network.h"
#include "workload/generators.h"

using dc::Engine;
using dc::ExecMode;

int main() {
  dc::EngineOptions opts;
  opts.scheduler_workers = 2;
  Engine engine(opts);

  DC_CHECK_OK(engine.Execute(dc::workload::SensorDdl("sensors")));
  DC_CHECK_OK(engine.Execute(dc::workload::TradesDdl("trades")));
  DC_CHECK_OK(engine.Execute(
      "CREATE TABLE thresholds (sensor int, max_temp double);"
      "INSERT INTO thresholds VALUES (1, 24.0), (2, 22.0), (3, 26.0);"));

  Engine::ContinuousOptions o1;
  o1.mode = ExecMode::kIncremental;
  o1.name = "avg_temp";
  DC_CHECK_OK(engine
                  .SubmitContinuous(
                      "SELECT sensor, avg(temp) FROM sensors "
                      "[RANGE 1 SECONDS SLIDE 250 MILLISECONDS] "
                      "GROUP BY sensor",
                      o1)
                  .status());
  Engine::ContinuousOptions o2;
  o2.mode = ExecMode::kFullReeval;
  o2.name = "overheat";
  DC_CHECK_OK(engine
                  .SubmitContinuous(
                      "SELECT sensors.sensor, temp, max_temp FROM sensors "
                      "JOIN thresholds ON sensors.sensor = "
                      "thresholds.sensor WHERE temp > max_temp",
                      o2)
                  .status());
  Engine::ContinuousOptions o3;
  o3.mode = ExecMode::kIncremental;
  o3.name = "px_stats";
  auto q3 = engine.SubmitContinuous(
      "SELECT sym, min(px), max(px) FROM trades "
      "[RANGE 1 SECONDS SLIDE 500 MILLISECONDS] GROUP BY sym",
      o3);
  DC_CHECK_OK(q3.status());

  // Two receptors feeding at different rates.
  dc::workload::SensorConfig scfg;
  scfg.rows = 40000;
  scfg.ts_step = 100;  // 10k readings per simulated second
  dc::Receptor::Options sropts;
  sropts.rows_per_sec = 20000;
  auto r1 = engine.AttachReceptor("sensors",
                                  dc::workload::MakeSensorGen(scfg), sropts);
  dc::workload::TradesConfig tcfg;
  tcfg.rows = 20000;
  tcfg.ts_step = 200;
  dc::Receptor::Options tropts;
  tropts.rows_per_sec = 10000;
  auto r2 = engine.AttachReceptor("trades",
                                  dc::workload::MakeTradesGen(tcfg), tropts);
  DC_CHECK_OK(r1.status());
  DC_CHECK_OK(r2.status());

  // Sample the analysis pane while the network runs.
  dc::monitor::AnalysisPane pane;
  for (int tick = 0; tick < 10; ++tick) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    pane.Sample(engine);
    if (tick == 4) {
      printf(">>> pausing query 'px_stats' and the trades receptor\n");
      DC_CHECK_OK(engine.PauseQuery(*q3));
      DC_CHECK_OK(engine.PauseReceptor(*r2));
    }
    if (tick == 7) {
      printf(">>> resuming both\n");
      DC_CHECK_OK(engine.ResumeQuery(*q3));
      DC_CHECK_OK(engine.ResumeReceptor(*r2));
    }
  }
  DC_CHECK_OK(engine.WaitReceptor(*r1));
  DC_CHECK_OK(engine.WaitReceptor(*r2));
  engine.WaitIdle();
  pane.Sample(engine);

  printf("\n== query network (text) ==\n%s\n",
         dc::monitor::RenderNetworkTable(engine).c_str());
  printf("== tuple locations ==\n%s\n",
         dc::monitor::RenderTupleLocations(engine).c_str());
  printf("== analysis pane (trailing aggregates) ==\n%s\n",
         pane.RenderSummary().c_str());
  printf("== query network (Graphviz DOT; render with `dot -Tsvg`) ==\n%s\n",
         dc::monitor::ExportDot(engine).c_str());
  printf("== analysis CSV (first 400 chars) ==\n%.400s...\n",
         pane.ToCsv().c_str());
  return 0;
}
