// Quickstart: the smallest end-to-end DataCell program (reproduces the
// demo's "posing queries" scenario, Fig. 2).
//
//  1. create a stream and a persistent table through SQL,
//  2. register a continuous sliding-window query and a stream-table query,
//  3. push events,
//  4. receive emissions, run a one-time query over the same fabric,
//  5. print the plan transformation (one-time vs continuous incremental).

#include <cstdio>

#include "core/engine.h"

using dc::Engine;
using dc::ExecMode;
using dc::Value;
using dc::kMicrosPerSecond;

int main() {
  dc::EngineOptions opts;
  opts.scheduler_workers = 0;  // synchronous: we drive with Pump()
  Engine engine(opts);

  // --- Declare inputs via SQL (DataCell's CREATE STREAM extension). -------
  DC_CHECK_OK(engine.Execute(
      "CREATE STREAM trades (ts timestamp, sym string, px double, qty int)"));
  DC_CHECK_OK(engine.Execute(
      "CREATE TABLE limits (sym string, cap double);"
      "INSERT INTO limits VALUES ('aa', 11.0), ('bb', 20.5);"));

  // --- A continuous sliding-window aggregation (incremental mode). --------
  Engine::ContinuousOptions inc;
  inc.mode = ExecMode::kIncremental;
  inc.name = "vwap";
  auto vwap = engine.SubmitContinuous(
      "SELECT sym, sum(px * qty) / sum(qty) AS vwap, count(*) AS trades "
      "FROM trades [RANGE 10 SECONDS SLIDE 5 SECONDS] "
      "GROUP BY sym ORDER BY sym",
      inc);
  DC_CHECK_OK(vwap.status());

  // --- A continuous stream-table join ("two query paradigms"). ------------
  Engine::ContinuousOptions alerts;
  alerts.mode = ExecMode::kFullReeval;
  alerts.name = "alerts";
  auto breach = engine.SubmitContinuous(
      "SELECT trades.sym, px, cap FROM trades JOIN limits "
      "ON trades.sym = limits.sym WHERE px > cap",
      alerts);
  DC_CHECK_OK(breach.status());

  // --- Push a few events (receptors would normally do this). --------------
  auto push = [&](int64_t sec, const char* sym, double px, int64_t qty) {
    DC_CHECK_OK(engine.PushRow(
        "trades", {Value::Ts(sec * kMicrosPerSecond), Value::Str(sym),
                   Value::F64(px), Value::I64(qty)}));
  };
  push(1, "aa", 10.0, 100);
  push(2, "bb", 21.0, 50);  // breaches bb's cap of 20.5
  push(4, "aa", 12.0, 200); // breaches aa's cap of 11.0
  push(6, "aa", 11.5, 100);
  push(11, "bb", 19.0, 10); // advances the watermark past 10 s
  engine.Pump();

  // --- Collect emissions. ---------------------------------------------------
  printf("== continuous VWAP emissions (10 s window, 5 s slide) ==\n");
  const std::vector<dc::ColumnSet> vwap_out =
      std::move(engine.TakeResults(*vwap)).ValueOrDie();
  for (const auto& emission : vwap_out) {
    printf("%s\n", emission.ToString().c_str());
  }
  printf("== limit breach alerts (stream JOIN table) ==\n");
  const std::vector<dc::ColumnSet> breach_out =
      std::move(engine.TakeResults(*breach)).ValueOrDie();
  for (const auto& emission : breach_out) {
    printf("%s\n", emission.ToString().c_str());
  }

  // --- One-time query over the same engine. --------------------------------
  auto one_time = engine.Query("SELECT sym, cap FROM limits ORDER BY cap");
  DC_CHECK_OK(one_time.status());
  printf("== one-time query over the persistent table ==\n%s\n",
         one_time->ToString().c_str());

  // --- Plan transformation pane. --------------------------------------------
  const char* sql =
      "SELECT sym, avg(px) FROM trades [RANGE 10 SECONDS SLIDE 5 SECONDS] "
      "GROUP BY sym";
  printf("== the same query as a one-time plan ==\n%s\n",
         engine.ExplainSql(sql, dc::plan::PlanMode::kOneTime)->c_str());
  printf("== ... and as a continuous incremental plan ==\n%s\n",
         engine.ExplainSql(sql, dc::plan::PlanMode::kContinuousIncremental)
             ->c_str());
  return 0;
}
