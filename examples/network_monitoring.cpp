// Network monitoring: one of the paper's motivating applications (§1).
// A packet stream is watched by a standing-query network:
//   * per-source traffic volume over a sliding window (heavy hitters),
//   * alert on any traffic from a persistent blacklist table,
//   * port-level error surface via a second aggregate query.
// Runs threaded: a receptor ingests generated packets at a target rate,
// the Petri-net scheduler fires factories, emitters deliver to sinks.

#include <atomic>
#include <cstdio>

#include "core/engine.h"
#include "monitor/network.h"
#include "workload/generators.h"

using dc::Engine;
using dc::ExecMode;
using dc::Value;

int main() {
  dc::EngineOptions opts;
  opts.scheduler_workers = 2;
  Engine engine(opts);

  DC_CHECK_OK(engine.Execute(dc::workload::PacketDdl("packets")));
  DC_CHECK_OK(engine.Execute(
      "CREATE TABLE blacklist (src int, reason string);"
      "INSERT INTO blacklist VALUES (0, 'botnet'), (1, 'scanner'), "
      "(2, 'spam relay');"));

  // Heavy hitters: top sources by bytes in the last 2 seconds of traffic.
  Engine::ContinuousOptions hh;
  hh.mode = ExecMode::kIncremental;
  hh.name = "heavy_hitters";
  std::atomic<int> hh_emissions{0};
  hh.sink = [&](const dc::ColumnSet& e) {
    if (++hh_emissions % 4 == 1) {  // print every 4th emission
      printf("-- heavy hitters (window close #%d) --\n%s\n",
             hh_emissions.load(), e.ToString(5).c_str());
    }
  };
  auto hh_id = engine.SubmitContinuous(
      "SELECT src, sum(bytes) AS bytes, count(*) AS pkts "
      "FROM packets [RANGE 2 SECONDS SLIDE 500 MILLISECONDS] "
      "GROUP BY src ORDER BY bytes DESC LIMIT 5",
      hh);
  DC_CHECK_OK(hh_id.status());

  // Blacklist alerts: per-batch stream-table join (no window).
  Engine::ContinuousOptions bl;
  bl.mode = ExecMode::kFullReeval;
  bl.name = "blacklist_hits";
  std::atomic<uint64_t> alerts{0};
  bl.sink = [&](const dc::ColumnSet& e) { alerts += e.NumRows(); };
  auto bl_id = engine.SubmitContinuous(
      "SELECT packets.src, reason, bytes FROM packets JOIN blacklist "
      "ON packets.src = blacklist.src",
      bl);
  DC_CHECK_OK(bl_id.status());

  // Port mix over tumbling windows.
  Engine::ContinuousOptions pm;
  pm.mode = ExecMode::kFullReeval;
  pm.name = "port_mix";
  auto pm_id = engine.SubmitContinuous(
      "SELECT port, count(*) AS pkts FROM packets [RANGE 2 SECONDS] "
      "GROUP BY port ORDER BY pkts DESC",
      pm);
  DC_CHECK_OK(pm_id.status());

  // Ingest 60k packets (6 simulated seconds of traffic) at 120k rows/s.
  dc::workload::PacketConfig config;
  config.rows = 60000;
  config.ts_step = 100;  // 10k packets per simulated second
  dc::Receptor::Options ropts;
  ropts.rows_per_sec = 120000;
  ropts.batch_rows = 256;
  auto receptor = engine.AttachReceptor(
      "packets", dc::workload::MakePacketGen(config), ropts);
  DC_CHECK_OK(receptor.status());
  DC_CHECK_OK(engine.WaitReceptor(*receptor));
  engine.WaitIdle();

  printf("== query network (paper Fig. 3 pane) ==\n%s\n",
         dc::monitor::RenderNetworkTable(engine).c_str());
  printf("== tuple locations ==\n%s\n",
         dc::monitor::RenderTupleLocations(engine).c_str());
  printf("blacklist alerts delivered: %llu\n",
         static_cast<unsigned long long>(alerts.load()));
  auto port_mix = engine.TakeResults(*pm_id);
  DC_CHECK_OK(port_mix.status());
  if (!port_mix->empty()) {
    printf("== final port mix window ==\n%s\n",
           port_mix->back().ToString().c_str());
  }
  return 0;
}
