// datacell_shell: a minimal interactive console over the engine — the
// closest terminal equivalent of the demo's interactive GUI. Reads SQL and
// backslash-commands from stdin:
//
//   CREATE STREAM/TABLE ... ;  INSERT ... ;       DDL/DML
//   SELECT ... ;                                  one-time query
//   \submit [full|inc] SELECT ... ;               register continuous query
//   \push <stream> v1,v2,... ;                    append one event
//   \seal <stream> ;                              end-of-stream flush
//   \results <qid> ;                              drain buffered emissions
//   \explain [onetime|full|inc] SELECT ... ;      plan pane
//   \network ;   \tuples ;   \dot ;               monitoring panes
//   \pause <qid> ;  \resume <qid> ;  \remove <qid> ;
//   \quit ;
//
// Try:  printf 'CREATE STREAM s (ts timestamp, v int);\n
//   \\submit inc SELECT sum(v) FROM s [RANGE 2 SECONDS];\n
//   \\push s 0,5; \\push s 1500000,7; \\seal s; \\results 1; \\quit;'
//   | ./build/examples/datacell_shell

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "core/engine.h"
#include "monitor/network.h"
#include "util/string_util.h"

namespace dc {
namespace {

// Splits "\push s 1,2,3" -> command, arg, rest.
struct Command {
  std::string verb;
  std::string rest;
};

Command ParseCommand(const std::string& line) {
  std::istringstream in(line);
  Command c;
  in >> c.verb;
  std::getline(in, c.rest);
  c.rest = std::string(StrTrim(c.rest));
  return c;
}

void PrintStatus(const Status& s) {
  if (!s.ok()) printf("error: %s\n", s.ToString().c_str());
}

class Shell {
 public:
  Shell() : engine_(EngineOptions{.scheduler_workers = 2}) {}

  // Returns false when the session ends.
  bool Handle(const std::string& raw) {
    const std::string stmt = std::string(StrTrim(raw));
    if (stmt.empty()) return true;
    if (stmt[0] != '\\') {
      if (EqualsIgnoreCase(stmt.substr(0, 6), "select")) {
        auto result = engine_.Query(stmt);
        if (result.ok()) {
          printf("%s", result->ToString().c_str());
        } else {
          printf("error: %s\n", result.status().ToString().c_str());
        }
      } else {
        PrintStatus(engine_.Execute(stmt));
      }
      return true;
    }
    const Command c = ParseCommand(stmt.substr(1));
    if (c.verb == "quit" || c.verb == "q") return false;
    if (c.verb == "submit") {
      Command mode = ParseCommand(c.rest);
      Engine::ContinuousOptions opts;
      std::string sql = c.rest;
      if (mode.verb == "full" || mode.verb == "inc") {
        opts.mode = mode.verb == "full" ? ExecMode::kFullReeval
                                        : ExecMode::kIncremental;
        sql = mode.rest;
      }
      auto qid = engine_.SubmitContinuous(sql, opts);
      if (qid.ok()) {
        printf("registered continuous query %d (%s mode)\n", *qid,
               ExecModeName(opts.mode));
      } else {
        printf("error: %s\n", qid.status().ToString().c_str());
      }
      return true;
    }
    if (c.verb == "push") {
      const Command target = ParseCommand(c.rest);
      std::vector<Value> row;
      for (const std::string& field : StrSplit(target.rest, ',')) {
        row.push_back(Value::Str(std::string(StrTrim(field))));
      }
      PrintStatus(engine_.PushRow(target.verb, row));
      return true;
    }
    if (c.verb == "seal") {
      PrintStatus(engine_.SealStream(c.rest));
      engine_.WaitIdle(2000);
      return true;
    }
    if (c.verb == "results") {
      engine_.WaitIdle(2000);
      auto results = engine_.TakeResults(atoi(c.rest.c_str()));
      if (!results.ok()) {
        printf("error: %s\n", results.status().ToString().c_str());
        return true;
      }
      printf("%zu emission(s):\n", results->size());
      for (const ColumnSet& e : *results) printf("%s\n", e.ToString().c_str());
      return true;
    }
    if (c.verb == "explain") {
      Command mode = ParseCommand(c.rest);
      plan::PlanMode pm = plan::PlanMode::kContinuousIncremental;
      std::string sql = c.rest;
      if (mode.verb == "onetime" || mode.verb == "full" ||
          mode.verb == "inc") {
        pm = mode.verb == "onetime" ? plan::PlanMode::kOneTime
             : mode.verb == "full"  ? plan::PlanMode::kContinuousFull
                                    : plan::PlanMode::kContinuousIncremental;
        sql = mode.rest;
      }
      auto text = engine_.ExplainSql(sql, pm);
      if (text.ok()) {
        printf("%s", text->c_str());
      } else {
        printf("error: %s\n", text.status().ToString().c_str());
      }
      return true;
    }
    if (c.verb == "network") {
      printf("%s", monitor::RenderNetworkTable(engine_).c_str());
      return true;
    }
    if (c.verb == "tuples") {
      printf("%s", monitor::RenderTupleLocations(engine_).c_str());
      return true;
    }
    if (c.verb == "dot") {
      printf("%s", monitor::ExportDot(engine_).c_str());
      return true;
    }
    if (c.verb == "pause") {
      PrintStatus(engine_.PauseQuery(atoi(c.rest.c_str())));
      return true;
    }
    if (c.verb == "resume") {
      PrintStatus(engine_.ResumeQuery(atoi(c.rest.c_str())));
      return true;
    }
    if (c.verb == "remove") {
      PrintStatus(engine_.RemoveContinuous(atoi(c.rest.c_str())));
      return true;
    }
    printf("unknown command \\%s\n", c.verb.c_str());
    return true;
  }

  void Run() {
    printf("DataCell shell — ';'-terminated SQL, \\submit, \\push, "
           "\\results, \\network, \\quit\n");
    std::string buffer;
    std::string line;
    while (true) {
      printf(buffer.empty() ? "datacell> " : "      ...> ");
      fflush(stdout);
      if (!std::getline(std::cin, line)) break;
      buffer += line + "\n";
      size_t pos;
      bool keep_going = true;
      while ((pos = buffer.find(';')) != std::string::npos) {
        const std::string stmt = buffer.substr(0, pos);
        buffer.erase(0, pos + 1);
        keep_going = Handle(stmt);
        if (!keep_going) break;
      }
      if (!keep_going) break;
    }
  }

 private:
  Engine engine_;
};

}  // namespace
}  // namespace dc

int main() {
  dc::Shell shell;
  shell.Run();
  return 0;
}
