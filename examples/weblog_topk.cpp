// Web log analytics: the paper's decision-support motivation (§1).
// Clickstream in, three standing queries out:
//   * top-5 pages per sliding window (incremental grouped aggregation),
//   * per-window error rate (5xx fraction) via two aggregates,
//   * p95-ish latency proxy (max + avg) per window.
// Demonstrates comparing the two execution modes on the same query.

#include <cstdio>

#include "core/engine.h"
#include "util/clock.h"
#include "workload/generators.h"

using dc::Engine;
using dc::ExecMode;

namespace {

// Pushes the same generated click batch to the engine.
void Feed(Engine& engine, const dc::workload::WebLogConfig& config,
          uint64_t rows) {
  const uint64_t kBatch = 512;
  for (uint64_t off = 0; off < rows; off += kBatch) {
    const uint64_t n = std::min(kBatch, rows - off);
    DC_CHECK_OK(engine.PushColumns(
        "clicks", dc::workload::WebLogBatch(config, off, n)));
    engine.Pump();
  }
  DC_CHECK_OK(engine.SealStream("clicks"));
  engine.Pump();
}

}  // namespace

int main() {
  dc::EngineOptions opts;
  opts.scheduler_workers = 0;
  Engine engine(opts);

  DC_CHECK_OK(engine.Execute(dc::workload::WebLogDdl("clicks")));

  Engine::ContinuousOptions topk;
  topk.mode = ExecMode::kIncremental;
  topk.name = "top_pages";
  auto topk_id = engine.SubmitContinuous(
      "SELECT url, count(*) AS hits FROM clicks "
      "[RANGE 5 SECONDS SLIDE 1 SECONDS] "
      "GROUP BY url ORDER BY hits DESC LIMIT 5",
      topk);
  DC_CHECK_OK(topk_id.status());

  Engine::ContinuousOptions err;
  err.mode = ExecMode::kIncremental;
  err.name = "error_rate";
  auto err_id = engine.SubmitContinuous(
      "SELECT count(*) AS errors FROM clicks "
      "[RANGE 5 SECONDS SLIDE 1 SECONDS] WHERE status >= 500",
      err);
  DC_CHECK_OK(err_id.status());

  Engine::ContinuousOptions lat;
  lat.mode = ExecMode::kIncremental;
  lat.name = "latency";
  auto lat_id = engine.SubmitContinuous(
      "SELECT count(*) AS total, avg(latency_ms) AS avg_ms, "
      "max(latency_ms) AS max_ms "
      "FROM clicks [RANGE 5 SECONDS SLIDE 1 SECONDS]",
      lat);
  DC_CHECK_OK(lat_id.status());

  dc::workload::WebLogConfig config;
  config.ts_step = 2000;  // 500 clicks per simulated second
  const uint64_t kRows = 8000;  // 16 simulated seconds
  Feed(engine, config, kRows);

  auto top = engine.TakeResults(*topk_id);
  DC_CHECK_OK(top.status());
  printf("== top pages, last window ==\n%s\n",
         top->empty() ? "(none)" : top->back().ToString().c_str());

  auto errors = engine.TakeResults(*err_id);
  auto latency = engine.TakeResults(*lat_id);
  DC_CHECK_OK(errors.status());
  DC_CHECK_OK(latency.status());
  printf("== error rate per window ==\n");
  const size_t windows = std::min(errors->size(), latency->size());
  for (size_t w = 0; w < windows; ++w) {
    const double errs = (*errors)[w].cols[0]->GetValue(0).NumericAsDouble();
    const double total =
        (*latency)[w].cols[0]->GetValue(0).NumericAsDouble();
    printf("  total=%6.0f  errors=%4.0f  rate=%.3f%%\n", total, errs,
           total == 0 ? 0 : 100.0 * errs / total);
  }
  if (!latency->empty()) {
    printf("== latency, last window ==\n%s\n",
           latency->back().ToString().c_str());
  }
  return 0;
}
