// Unit tests for the CAL interpreter and the QueryExecutor stage/partial
// machinery, including the core incremental invariant:
// merging per-portion partials == executing over the whole input.

#include <gtest/gtest.h>

#include <stdexcept>

#include "exec/executor.h"
#include "exec/interpreter.h"
#include "storage/catalog.h"
#include "tests/test_util.h"

namespace dc::exec {
namespace {

class ExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Schema s;
    ASSERT_TRUE(s.AddColumn("g", TypeId::kI64).ok());
    ASSERT_TRUE(s.AddColumn("v", TypeId::kI64).ok());
    ASSERT_TRUE(s.AddColumn("w", TypeId::kF64).ok());
    StreamDef def;
    def.name = "s";
    def.schema = s;
    ASSERT_TRUE(catalog_.RegisterStream(def).ok());

    Schema names;
    ASSERT_TRUE(names.AddColumn("g", TypeId::kI64).ok());
    ASSERT_TRUE(names.AddColumn("label", TypeId::kStr).ok());
    auto table = std::make_shared<Table>("names", names);
    ASSERT_TRUE(table
                    ->AppendColumns({Bat::MakeI64({0, 1, 2}),
                                     Bat::MakeStr({"zero", "one", "two"})})
                    .ok());
    table_rows_ = 3;
    ASSERT_TRUE(catalog_.RegisterTable(table).ok());
    table_ = table;
  }

  QueryExecutor MakeExecutor(const std::string& sql) {
    auto ex = dc::testutil::CompileQuery(sql, catalog_);
    if (!ex) {
      // CompileQuery already recorded the gtest failure; throwing fails
      // just this test instead of segfaulting the whole binary.
      throw std::runtime_error("CompileQuery failed: " + sql);
    }
    return std::move(*ex);
  }

  // Stream data: g cycles 0..2, v = i, w = i/2.0.
  StageInput StreamData(int n, int offset = 0) {
    std::vector<int64_t> g, v;
    std::vector<double> w;
    for (int i = offset; i < offset + n; ++i) {
      g.push_back(i % 3);
      v.push_back(i);
      w.push_back(i / 2.0);
    }
    return StageInput{
        {Bat::MakeI64(g), Bat::MakeI64(v), Bat::MakeF64(w)},
        static_cast<uint64_t>(n)};
  }

  StageInput TableData() {
    const TableVersionPtr snap = table_->Snapshot();
    return StageInput{snap->cols, snap->NumRows()};
  }

  Catalog catalog_;
  TablePtr table_;
  uint64_t table_rows_ = 0;
};

TEST_F(ExecTest, SelectProject) {
  QueryExecutor ex = MakeExecutor("SELECT v, v * 2 FROM s WHERE v >= 3");
  auto result = ex.ExecuteFull({StreamData(6)});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->NumRows(), 3u);
  EXPECT_EQ(result->cols[0]->GetValue(0).AsI64(), 3);
  EXPECT_EQ(result->cols[1]->GetValue(2).AsI64(), 10);
}

TEST_F(ExecTest, ScalarAggregates) {
  QueryExecutor ex =
      MakeExecutor("SELECT count(*), sum(v), min(v), max(v), avg(v) FROM s");
  auto result = ex.ExecuteFull({StreamData(5)});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->NumRows(), 1u);
  EXPECT_EQ(result->cols[0]->GetValue(0).AsI64(), 5);
  EXPECT_EQ(result->cols[1]->GetValue(0).AsI64(), 10);
  EXPECT_EQ(result->cols[2]->GetValue(0).AsI64(), 0);
  EXPECT_EQ(result->cols[3]->GetValue(0).AsI64(), 4);
  EXPECT_EQ(result->cols[4]->GetValue(0).AsF64(), 2.0);
}

TEST_F(ExecTest, ScalarAggregateOverEmptyInputEmitsOneRow) {
  QueryExecutor ex = MakeExecutor("SELECT count(*), sum(v) FROM s");
  auto result = ex.ExecuteFull({StreamData(0)});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->NumRows(), 1u);
  EXPECT_EQ(result->cols[0]->GetValue(0).AsI64(), 0);
  // SQL empty-input conventions: COUNT is 0, SUM is NULL.
  EXPECT_TRUE(result->cols[1]->GetValue(0).is_null());
  EXPECT_TRUE(result->cols[1]->IsNull(0));
}

TEST_F(ExecTest, GroupedAggregateWithHavingOrderLimit) {
  QueryExecutor ex = MakeExecutor(
      "SELECT g, count(*) AS c, sum(v) AS sv FROM s GROUP BY g "
      "HAVING sum(v) > 10 ORDER BY sv DESC LIMIT 1");
  auto result = ex.ExecuteFull({StreamData(9)});  // v=0..8, groups of 3
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // sums: g0:0+3+6=9, g1:1+4+7=12, g2:2+5+8=15 -> having keeps g1,g2;
  // order desc by sum -> g2 first; limit 1.
  ASSERT_EQ(result->NumRows(), 1u);
  EXPECT_EQ(result->cols[0]->GetValue(0).AsI64(), 2);
  EXPECT_EQ(result->cols[2]->GetValue(0).AsI64(), 15);
}

TEST_F(ExecTest, StreamTableJoin) {
  QueryExecutor ex = MakeExecutor(
      "SELECT label, sum(v) FROM s JOIN names ON s.g = names.g "
      "GROUP BY label ORDER BY label");
  auto result = ex.ExecuteFull({StreamData(6), TableData()});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->NumRows(), 3u);
  // g0: v 0+3, g1: 1+4, g2: 2+5.
  EXPECT_EQ(result->cols[0]->GetValue(0).AsStr(), "one");
  EXPECT_EQ(result->cols[1]->GetValue(0).AsI64(), 5);
  EXPECT_EQ(result->cols[0]->GetValue(2).AsStr(), "zero");
  EXPECT_EQ(result->cols[1]->GetValue(2).AsI64(), 3);
}

TEST_F(ExecTest, PartialMergeEqualsWholeScalar) {
  QueryExecutor ex =
      MakeExecutor("SELECT count(*), sum(v), avg(w), min(v), max(w) FROM s "
                   "WHERE v % 2 = 0");
  auto whole = ex.ExecuteFull({StreamData(20)});
  ASSERT_TRUE(whole.ok());

  std::vector<Partial> parts;
  for (int off = 0; off < 20; off += 5) {
    auto p = ex.ComputePartial({StreamData(5, off)});
    ASSERT_TRUE(p.ok());
    parts.push_back(std::move(*p));
  }
  std::vector<const Partial*> ptrs;
  for (const Partial& p : parts) ptrs.push_back(&p);
  auto merged = ex.Finish(ptrs);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(whole->ToString(), merged->ToString());
}

TEST_F(ExecTest, PartialMergeEqualsWholeGrouped) {
  QueryExecutor ex = MakeExecutor(
      "SELECT g, count(*), sum(v), avg(w) FROM s GROUP BY g ORDER BY g");
  auto whole = ex.ExecuteFull({StreamData(21)});
  ASSERT_TRUE(whole.ok());
  std::vector<Partial> parts;
  for (int off = 0; off < 21; off += 7) {
    auto p = ex.ComputePartial({StreamData(7, off)});
    ASSERT_TRUE(p.ok());
    parts.push_back(std::move(*p));
  }
  std::vector<const Partial*> ptrs;
  for (const Partial& p : parts) ptrs.push_back(&p);
  auto merged = ex.Finish(ptrs);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(whole->ToString(), merged->ToString());
}

TEST_F(ExecTest, PartialMergeEqualsWholeNonAgg) {
  QueryExecutor ex =
      MakeExecutor("SELECT v, w FROM s WHERE v % 3 = 1 ORDER BY v DESC");
  auto whole = ex.ExecuteFull({StreamData(12)});
  ASSERT_TRUE(whole.ok());
  std::vector<Partial> parts;
  for (int off = 0; off < 12; off += 4) {
    auto p = ex.ComputePartial({StreamData(4, off)});
    ASSERT_TRUE(p.ok());
    parts.push_back(std::move(*p));
  }
  std::vector<const Partial*> ptrs;
  for (const Partial& p : parts) ptrs.push_back(&p);
  auto merged = ex.Finish(ptrs);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(whole->ToString(), merged->ToString());
}

TEST_F(ExecTest, FinishWithNoPartials) {
  QueryExecutor agg = MakeExecutor("SELECT count(*) FROM s");
  auto r1 = agg.Finish({});
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->NumRows(), 1u);
  EXPECT_EQ(r1->cols[0]->GetValue(0).AsI64(), 0);

  QueryExecutor grouped = MakeExecutor("SELECT g, count(*) FROM s GROUP BY g");
  auto r2 = grouped.Finish({});
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->NumRows(), 0u);

  QueryExecutor plain = MakeExecutor("SELECT v FROM s");
  auto r3 = plain.Finish({});
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(r3->NumRows(), 0u);
}

TEST_F(ExecTest, OrFilterCompilesToCandidateUnion) {
  QueryExecutor ex =
      MakeExecutor("SELECT v FROM s WHERE v < 2 OR v > 17");
  auto result = ex.ExecuteFull({StreamData(20)});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->NumRows(), 4u);  // 0,1,18,19
}

TEST_F(ExecTest, NotFilter) {
  QueryExecutor ex = MakeExecutor(
      "SELECT v FROM s WHERE NOT (v < 2 OR v > 3)");
  auto result = ex.ExecuteFull({StreamData(6)});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->NumRows(), 2u);
  EXPECT_EQ(result->cols[0]->GetValue(0).AsI64(), 2);
}

TEST_F(ExecTest, ComputedPredicateFallback) {
  QueryExecutor ex = MakeExecutor("SELECT v FROM s WHERE v + w > 10");
  auto result = ex.ExecuteFull({StreamData(10)});
  ASSERT_TRUE(result.ok());
  // v + v/2 > 10  =>  1.5v > 10  =>  v >= 7.
  EXPECT_EQ(result->NumRows(), 3u);
}

TEST_F(ExecTest, ConstantProjection) {
  QueryExecutor ex = MakeExecutor("SELECT 7, v FROM s WHERE v < 2");
  auto result = ex.ExecuteFull({StreamData(5)});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->NumRows(), 2u);
  EXPECT_EQ(result->cols[0]->GetValue(1).AsI64(), 7);
}

}  // namespace
}  // namespace dc::exec
