// Unit tests for the Petri-net scheduler: enablement, manual draining,
// threaded workers, removal while running.

#include "core/scheduler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "storage/catalog.h"
#include "tests/test_util.h"
#include "util/string_util.h"

namespace dc {
namespace {

// A small fixture that wires N per-batch factories onto one basket.
class SchedulerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Schema s;
    ASSERT_TRUE(s.AddColumn("v", TypeId::kI64).ok());
    StreamDef def;
    def.name = "s";
    def.schema = s;
    ASSERT_TRUE(catalog_.RegisterStream(def).ok());
    basket_ = std::make_unique<Basket>("s", s);
  }

  FactoryPtr MakeFactory(int id) {
    auto ex = testutil::CompileQuery("SELECT v FROM s", catalog_);
    Schema out;
    DC_CHECK_OK(out.AddColumn("v", TypeId::kI64));
    auto out_basket = std::make_shared<Basket>("out", out);
    FactoryInput in;
    in.is_stream = true;
    in.basket = basket_.get();
    in.reader_id = basket_->RegisterReader(true);
    auto f = Factory::Create(id, StrFormat("f%d", id), ex,
                             ExecMode::kFullReeval, {in}, out_basket);
    DC_CHECK_OK(f.status());
    return *f;
  }

  void Push(int64_t v) {
    ASSERT_TRUE(basket_->AppendRow({Value::I64(v)}).ok());
  }

  Catalog catalog_;
  std::unique_ptr<Basket> basket_;
};

TEST_F(SchedulerTest, DrainFiresAllEnabled) {
  Scheduler sched;
  auto f1 = MakeFactory(1);
  auto f2 = MakeFactory(2);
  sched.AddFactory(f1);
  sched.AddFactory(f2);
  EXPECT_EQ(sched.DrainReady(), 0);
  Push(42);
  const int fires = sched.DrainReady();
  EXPECT_EQ(fires, 2);
  EXPECT_EQ(f1->Stats().emissions, 1u);
  EXPECT_EQ(f2->Stats().emissions, 1u);
  EXPECT_FALSE(sched.AnyBusyOrReady());
  EXPECT_EQ(sched.Stats().fires, 2u);
}

TEST_F(SchedulerTest, RemoveFactoryStopsFiring) {
  Scheduler sched;
  auto f1 = MakeFactory(1);
  sched.AddFactory(f1);
  Push(1);
  sched.DrainReady();
  sched.RemoveFactory(1);
  Push(2);
  EXPECT_EQ(sched.DrainReady(), 0);
  EXPECT_EQ(sched.Factories().size(), 0u);
}

TEST_F(SchedulerTest, ThreadedWorkersFireOnNotify) {
  Scheduler::Options opts;
  opts.num_workers = 2;
  Scheduler sched(opts);
  auto f1 = MakeFactory(1);
  auto f2 = MakeFactory(2);
  sched.AddFactory(f1);
  sched.AddFactory(f2);
  basket_->AddListener([&] { sched.Notify(); });
  sched.Start();
  for (int i = 0; i < 50; ++i) Push(i);
  const Micros deadline = SteadyMicros() + 5 * kMicrosPerSecond;
  while (SteadyMicros() < deadline) {
    if (f1->Stats().tuples_out == 50 && f2->Stats().tuples_out == 50) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  sched.Stop();
  EXPECT_EQ(f1->Stats().tuples_out, 50u);
  EXPECT_EQ(f2->Stats().tuples_out, 50u);
  EXPECT_GE(sched.Stats().notifications, 50u);
}

TEST_F(SchedulerTest, StartStopIdempotent) {
  Scheduler sched;
  sched.Start();
  sched.Start();
  sched.Stop();
  sched.Stop();
  sched.Start();
  sched.Stop();
}

TEST_F(SchedulerTest, RemoveFactoryWhileDrainReadyFires) {
  // RemoveFactory from another thread must not hang while a manual-mode
  // DrainReady loop is firing the factory: clearing the busy flag has to
  // wake the remover (regression: DrainReady never notified the cv).
  Scheduler sched;
  auto f1 = MakeFactory(1);
  sched.AddFactory(f1);
  std::atomic<bool> done{false};
  std::thread driver([&] {
    while (!done.load()) {
      sched.DrainReady();
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  });
  std::thread feeder([&] {
    for (int i = 0; i < 2000 && !done.load(); ++i) {
      ASSERT_TRUE(basket_->AppendRow({Value::I64(i)}).ok());
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  sched.RemoveFactory(1);  // must return despite concurrent firing
  done.store(true);
  feeder.join();
  driver.join();
  EXPECT_EQ(sched.Factories().size(), 0u);
}

TEST_F(SchedulerTest, ConcurrentAddRemoveUnderFire) {
  // A busy entry must never be destroyed mid-fire: workers fire factories
  // while another thread churns add/remove. TSan + repeat-until-fail in CI
  // make this a race hunt.
  Scheduler::Options opts;
  opts.num_workers = 4;
  Scheduler sched(opts);
  basket_->AddListener([&] { sched.Notify(); });
  sched.Start();
  std::atomic<bool> done{false};
  std::thread feeder([&] {
    int64_t i = 0;
    while (!done.load()) {
      ASSERT_TRUE(basket_->AppendRow({Value::I64(i++)}).ok());
      std::this_thread::sleep_for(std::chrono::microseconds(20));
    }
  });
  for (int round = 0; round < 50; ++round) {
    auto f = MakeFactory(100 + round);
    sched.AddFactory(f);
    // Give workers a chance to claim and fire it, then rip it out.
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    sched.RemoveFactory(100 + round);
  }
  done.store(true);
  feeder.join();
  sched.Stop();
  EXPECT_EQ(sched.Factories().size(), 0u);
}

// Regression: two threads calling Stop() concurrently used to race on
// joining the same worker threads (std::thread::join on a joinable-by-
// both handle). Stop() now elects one joiner; the loser blocks until
// teardown completes, and a Start() issued mid-teardown must not
// relaunch workers that are still being joined.
TEST_F(SchedulerTest, ConcurrentStopIsSingleJoin) {
  for (int round = 0; round < 20; ++round) {
    Scheduler::Options opts;
    opts.num_workers = 2;
    Scheduler sched(opts);
    auto f1 = MakeFactory(1);
    sched.AddFactory(f1);
    sched.Start();
    Push(round);
    std::vector<std::thread> stoppers;
    for (int i = 0; i < 4; ++i) {
      stoppers.emplace_back([&] { sched.Stop(); });
    }
    for (auto& t : stoppers) t.join();
    // Stop/Start/Stop afterwards still behaves.
    sched.Start();
    sched.Stop();
  }
}

TEST_F(SchedulerTest, PausedFactoriesAreSkipped) {
  Scheduler sched;
  auto f1 = MakeFactory(1);
  sched.AddFactory(f1);
  f1->Pause();
  Push(1);
  EXPECT_EQ(sched.DrainReady(), 0);
  f1->Resume();
  EXPECT_EQ(sched.DrainReady(), 1);
}

}  // namespace
}  // namespace dc
