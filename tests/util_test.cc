// Unit tests for the utility layer: Status/Result, strings, CSV, RNG,
// histogram, clock.

#include <gtest/gtest.h>

#include "util/clock.h"
#include "util/csv.h"
#include "util/histogram.h"
#include "util/random.h"
#include "util/result.h"
#include "util/status.h"
#include "util/string_util.h"

namespace dc {
namespace {

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(Status::OK().ok());
  EXPECT_EQ(Status::OK().ToString(), "OK");
  Status s = Status::NotFound("thing is missing");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: thing is missing");
}

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v * 2;
}

Result<int> Chain(int v) {
  DC_ASSIGN_OR_RETURN(int doubled, ParsePositive(v));
  return doubled + 1;
}

TEST(ResultTest, ValueAndError) {
  auto ok = Chain(5);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 11);
  auto err = Chain(-5);
  ASSERT_FALSE(err.ok());
  EXPECT_TRUE(err.status().IsInvalidArgument());
}

TEST(StringUtilTest, Format) {
  EXPECT_EQ(StrFormat("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(StrFormat("%s", std::string(500, 'a').c_str()).size(), 500u);
}

TEST(StringUtilTest, SplitJoinTrim) {
  EXPECT_EQ(StrSplit("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(StrJoin({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(StrTrim("  x y \t"), "x y");
  EXPECT_TRUE(EqualsIgnoreCase("SeLeCt", "select"));
  EXPECT_FALSE(EqualsIgnoreCase("selec", "select"));
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.0), "3");
  EXPECT_EQ(FormatDouble(2.5), "2.5");
  EXPECT_EQ(FormatDouble(-1.0), "-1");
}

TEST(CsvTest, SimpleLine) {
  auto fields = ParseCsvLine("a,b,c");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(*fields, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(CsvTest, QuotedFields) {
  auto fields = ParseCsvLine(R"("a,b",plain,"say ""hi""")");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(*fields,
            (std::vector<std::string>{"a,b", "plain", "say \"hi\""}));
}

TEST(CsvTest, TrailingSeparator) {
  auto fields = ParseCsvLine("a,b,");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(*fields, (std::vector<std::string>{"a", "b", ""}));
}

TEST(CsvTest, UnterminatedQuoteFails) {
  EXPECT_FALSE(ParseCsvLine("\"abc").ok());
}

TEST(CsvTest, RoundTrip) {
  std::vector<std::string> fields{"plain", "with,comma", "with\"quote"};
  auto parsed = ParseCsvLine(FormatCsvLine(fields));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, fields);
}

TEST(RngTest, Deterministic) {
  Rng a(7), b(7), c(8);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-3, 9);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, UniformDoubleMoments) {
  Rng rng(2);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.UniformDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(ZipfTest, SkewConcentratesMass) {
  ZipfGenerator zipf(1000, 0.99, 3);
  uint64_t head = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (zipf.Next() < 10) ++head;
  }
  // With theta=0.99 the top-10 of 1000 items receive far more than the
  // uniform 1%.
  EXPECT_GT(head, static_cast<uint64_t>(0.3 * n));
}

TEST(ZipfTest, UniformWhenThetaZero) {
  ZipfGenerator zipf(100, 0.0, 4);
  uint64_t head = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (zipf.Next() < 10) ++head;
  }
  EXPECT_NEAR(static_cast<double>(head) / n, 0.10, 0.03);
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.Record(i);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 100);
  EXPECT_NEAR(h.Mean(), 50.5, 0.01);
  // Log-bucketed: percentile has bounded relative error.
  EXPECT_NEAR(static_cast<double>(h.Percentile(0.5)), 50, 10);
  EXPECT_NEAR(static_cast<double>(h.Percentile(0.99)), 99, 14);
}

TEST(HistogramTest, MergeAndReset) {
  Histogram a, b;
  a.Record(10);
  b.Record(1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 10);
  EXPECT_EQ(a.max(), 1000);
  a.Reset();
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.Percentile(0.5), 0);
}

TEST(HistogramTest, NegativeClampedToZero) {
  Histogram h;
  h.Record(-5);
  EXPECT_EQ(h.min(), 0);
}

TEST(ClockTest, ManualClock) {
  ManualClock clock(100);
  EXPECT_EQ(clock.Now(), 100);
  clock.Advance(50);
  EXPECT_EQ(clock.Now(), 150);
  clock.Set(10);
  EXPECT_EQ(clock.Now(), 10);
}

TEST(ClockTest, SteadyMonotonic) {
  const Micros a = SteadyMicros();
  const Micros b = SteadyMicros();
  EXPECT_LE(a, b);
}

TEST(ClockTest, FormatDuration) {
  EXPECT_EQ(FormatDuration(500), "500 us");
  EXPECT_EQ(FormatDuration(2500), "2.50 ms");
  EXPECT_EQ(FormatDuration(3 * kMicrosPerSecond), "3.000 s");
}

}  // namespace
}  // namespace dc
