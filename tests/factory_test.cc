// Unit tests for Factory: shape validation, firing rules, consumption/
// dropping behaviour, incremental caching and fallback, pause semantics.

#include "core/factory.h"

#include <gtest/gtest.h>

#include "storage/catalog.h"
#include "tests/test_util.h"
#include "util/string_util.h"

namespace dc {
namespace {

class FactoryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const Schema s = testutil::TsI64Schema();
    StreamDef def;
    def.name = "s";
    def.schema = s;
    def.ts_column = 0;
    ASSERT_TRUE(catalog_.RegisterStream(def).ok());
    basket_ = std::make_unique<Basket>("s", s, 0);

    Schema out;
    ASSERT_TRUE(out.AddColumn("x", TypeId::kI64).ok());
    out_schema_ = out;
  }

  std::shared_ptr<exec::QueryExecutor> MakeExecutor(const std::string& sql) {
    return testutil::CompileQuery(sql, catalog_);
  }

  FactoryInput StreamInput(std::optional<plan::WindowSpec> window) {
    FactoryInput in;
    in.is_stream = true;
    in.basket = basket_.get();
    in.reader_id = basket_->RegisterReader(true);
    in.window = window;
    return in;
  }

  std::shared_ptr<Basket> OutBasket(const exec::QueryExecutor& ex) {
    Schema out;
    const auto types = exec::OutputTypes(ex.compiled());
    for (size_t i = 0; i < types.size(); ++i) {
      DC_CHECK_OK(out.AddColumn(StrFormat("c%zu", i), types[i]));
    }
    return std::make_shared<Basket>("out", out);
  }

  void Push(int64_t ts_sec, int64_t v) {
    ASSERT_TRUE(basket_
                    ->AppendRow({Value::Ts(ts_sec * kMicrosPerSecond),
                                 Value::I64(v)})
                    .ok());
  }

  Catalog catalog_;
  std::unique_ptr<Basket> basket_;
  Schema out_schema_;
};

TEST_F(FactoryTest, PerBatchFiresOnlyWithData) {
  auto ex = MakeExecutor("SELECT v FROM s");
  auto out = OutBasket(*ex);
  auto f = Factory::Create(1, "f", ex, ExecMode::kFullReeval,
                           {StreamInput(std::nullopt)}, out);
  ASSERT_TRUE(f.ok()) << f.status().ToString();
  EXPECT_FALSE((*f)->CheckReady());
  Push(1, 10);
  EXPECT_TRUE((*f)->CheckReady());
  ASSERT_TRUE((*f)->Fire().ok());
  EXPECT_FALSE((*f)->CheckReady());
  EXPECT_EQ(out->HighSeq(), 1u);
  // Consumed tuples are dropped from the input basket.
  EXPECT_EQ(basket_->Stats().resident_rows, 0u);
}

TEST_F(FactoryTest, RowsWindowFiringAndConsumption) {
  plan::WindowSpec w;
  w.rows = true;
  w.size = 4;
  w.slide = 2;
  auto ex = MakeExecutor("SELECT sum(v) FROM s");
  auto out = OutBasket(*ex);
  auto f = Factory::Create(1, "f", ex, ExecMode::kFullReeval,
                           {StreamInput(w)}, out);
  ASSERT_TRUE(f.ok());
  for (int i = 1; i <= 3; ++i) Push(i, i);
  EXPECT_FALSE((*f)->CheckReady());  // 3 rows < window of 4
  Push(4, 4);
  ASSERT_TRUE((*f)->CheckReady());
  ASSERT_TRUE((*f)->Fire().ok());
  // Window [0,4) emitted sum 10; rows 0,1 (below next window start) drop.
  EXPECT_EQ(out->Read(0).cols[0]->I64Data()[0], 10);
  EXPECT_EQ(basket_->Stats().dropped_total, 2u);
  EXPECT_FALSE((*f)->CheckReady());
  Push(5, 5);
  Push(6, 6);
  ASSERT_TRUE((*f)->CheckReady());
  ASSERT_TRUE((*f)->Fire().ok());
  EXPECT_EQ(out->Read(1).cols[0]->I64Data()[0], 3 + 4 + 5 + 6);
}

TEST_F(FactoryTest, IncrementalCachesFragmentsPerBasicWindow) {
  plan::WindowSpec w;
  w.rows = true;
  w.size = 4;
  w.slide = 1;
  auto ex = MakeExecutor("SELECT sum(v), count(*) FROM s");
  auto out = OutBasket(*ex);
  auto f = Factory::Create(1, "f", ex, ExecMode::kIncremental,
                           {StreamInput(w)}, out);
  ASSERT_TRUE(f.ok());
  for (int i = 0; i < 10; ++i) {
    Push(i, 1);
    while ((*f)->CheckReady()) ASSERT_TRUE((*f)->Fire().ok());
  }
  const FactoryStats stats = (*f)->Stats();
  EXPECT_EQ(stats.emissions, 7u);  // windows ending at rows 4..10
  // Each row entered exactly one fragment: 10 tuples in, not 7*4.
  EXPECT_EQ(stats.tuples_in, 10u);
  EXPECT_FALSE(stats.fell_back_to_full);
  EXPECT_LE(stats.cached_partials, 4u);  // bounded by n_bw
}

TEST_F(FactoryTest, IncrementalFallsBackWhenNotDivisible) {
  plan::WindowSpec w;
  w.rows = true;
  w.size = 5;
  w.slide = 2;  // 5 % 2 != 0
  auto ex = MakeExecutor("SELECT sum(v) FROM s");
  auto out = OutBasket(*ex);
  auto f = Factory::Create(1, "f", ex, ExecMode::kIncremental,
                           {StreamInput(w)}, out);
  ASSERT_TRUE(f.ok());
  EXPECT_TRUE((*f)->Stats().fell_back_to_full);
  for (int i = 0; i < 7; ++i) Push(i, i);
  while ((*f)->CheckReady()) ASSERT_TRUE((*f)->Fire().ok());
  // Still correct: window [0,5) then [2,7).
  EXPECT_EQ(out->Read(0).cols[0]->I64Data()[0], 0 + 1 + 2 + 3 + 4);
  EXPECT_EQ(out->Read(1).cols[0]->I64Data()[0], 2 + 3 + 4 + 5 + 6);
}

TEST_F(FactoryTest, RangeWindowSkipsEmptyLeadingWindows) {
  plan::WindowSpec w;
  w.rows = false;
  w.size = 4 * kMicrosPerSecond;
  w.slide = 2 * kMicrosPerSecond;
  auto ex = MakeExecutor("SELECT count(*) FROM s");
  auto out = OutBasket(*ex);
  auto f = Factory::Create(1, "f", ex, ExecMode::kIncremental,
                           {StreamInput(w)}, out);
  ASSERT_TRUE(f.ok());
  // Stream starts late: first event at t=100 s.
  Push(100, 1);
  Push(101, 2);
  EXPECT_FALSE((*f)->CheckReady());  // watermark 101 < boundary 102
  Push(103, 3);
  ASSERT_TRUE((*f)->CheckReady());
  ASSERT_TRUE((*f)->Fire().ok());
  // First window ends at 102 s and contains the events at 100/101.
  EXPECT_EQ(out->Read(0).cols[0]->I64Data()[0], 2);
}

TEST_F(FactoryTest, PausedFactoryIsNotReady) {
  auto ex = MakeExecutor("SELECT v FROM s");
  auto out = OutBasket(*ex);
  auto f = Factory::Create(1, "f", ex, ExecMode::kFullReeval,
                           {StreamInput(std::nullopt)}, out);
  ASSERT_TRUE(f.ok());
  Push(1, 1);
  (*f)->Pause();
  EXPECT_TRUE((*f)->paused());
  EXPECT_FALSE((*f)->CheckReady());
  (*f)->Resume();
  EXPECT_TRUE((*f)->CheckReady());
}

TEST_F(FactoryTest, ValidationErrors) {
  auto ex = MakeExecutor("SELECT v FROM s");
  auto out = OutBasket(*ex);
  // No inputs at all.
  EXPECT_FALSE(
      Factory::Create(1, "f", ex, ExecMode::kFullReeval, {}, out).ok());
  // Stream input without a basket.
  FactoryInput bad;
  bad.is_stream = true;
  EXPECT_FALSE(
      Factory::Create(1, "f", ex, ExecMode::kFullReeval, {bad}, out).ok());
}

TEST_F(FactoryTest, FireIsIdempotentWhenNotReady) {
  auto ex = MakeExecutor("SELECT v FROM s");
  auto out = OutBasket(*ex);
  auto f = Factory::Create(1, "f", ex, ExecMode::kFullReeval,
                           {StreamInput(std::nullopt)}, out);
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE((*f)->Fire().ok());  // no data: no-op
  EXPECT_EQ((*f)->Stats().emissions, 0u);
}

}  // namespace
}  // namespace dc
