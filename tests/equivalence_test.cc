// Two-paradigm equivalence — the paper's core claim, end-to-end: a
// continuous query and a one-time query over identical data, through the
// same binder/optimizer/compiler/executor stack, must produce identical
// results.
//
// Every row is fed both to a stream (consumed by SubmitContinuous) and to a
// persistent table (read by Query). For each continuous emission the test
// derives the window's exact extent from WindowMath and replays it as a
// one-time query:
//  * RANGE windows: `WHERE ts >= start AND ts < end` over the table;
//  * ROWS windows: a per-window table holding exactly that row chunk.
// Swept over aggregate shapes × window geometries × both execution modes
// (incremental and full re-evaluation).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/engine.h"
#include "core/window.h"
#include "tests/test_util.h"
#include "util/random.h"
#include "util/string_util.h"

namespace dc {
namespace {

using testutil::RowStrings;

struct EquivCase {
  const char* label;
  const char* select;  // projection / aggregate list
  const char* where;   // extra predicate ("" = none)
  const char* tail;    // GROUP BY / ORDER BY clause ("" = none)
  int64_t size;        // window size (seconds for RANGE, rows for ROWS)
  int64_t slide;
  ExecMode mode;
};

std::string CaseName(const ::testing::TestParamInfo<EquivCase>& info) {
  return StrFormat("%s_%lld_%lld_%s", info.param.label,
                   static_cast<long long>(info.param.size),
                   static_cast<long long>(info.param.slide),
                   info.param.mode == ExecMode::kIncremental ? "inc" : "full");
}

/// Rows of one emission as printable strings.
std::vector<std::string> Cells(const ColumnSet& cs) {
  return RowStrings({cs});
}

/// Matches the continuous emission sequence 1:1 against the one-time
/// replay of every window. Since zero-row emissions keep their batch
/// boundary in the output basket and emitters deliver them, every window —
/// empty or not — must produce exactly one emission equal to its replay,
/// cell-for-cell and in order.
void CheckEmissionsMatchReplays(Engine& engine,
                                const std::vector<ColumnSet>& emissions,
                                const std::vector<std::string>& window_sqls,
                                const std::string& continuous_sql) {
  ASSERT_EQ(emissions.size(), window_sqls.size())
      << "one emission per window expected\ncontinuous: " << continuous_sql;
  for (size_t i = 0; i < window_sqls.size(); ++i) {
    const std::string& onetime = window_sqls[i];
    auto replay = engine.Query(onetime);
    ASSERT_TRUE(replay.ok()) << replay.status().ToString()
                             << "\nsql: " << onetime;
    EXPECT_EQ(Cells(emissions[i]), Cells(*replay))
        << "emission " << i << " differs from its window replay"
        << "\ncontinuous: " << continuous_sql << "\none-time:   " << onetime
        << "\nreplay:\n"
        << replay->ToString(1 << 20) << "\nemission:\n"
        << emissions[i].ToString(1 << 20);
  }
}

std::string ContinuousSql(const EquivCase& c, bool rows_window) {
  std::string sql = StrFormat(
      rows_window ? "SELECT %s FROM s [ROWS %lld SLIDE %lld]"
                  : "SELECT %s FROM s [RANGE %lld SECONDS SLIDE %lld SECONDS]",
      c.select, static_cast<long long>(c.size),
      static_cast<long long>(c.slide));
  if (*c.where) sql += StrFormat(" WHERE %s", c.where);
  if (*c.tail) sql += StrFormat(" %s", c.tail);
  return sql;
}

// Both paradigms must agree bit-for-bit on doubles, so w values are dyadic
// rationals (k/16) that round-trip exactly through the SQL literal below.
struct Row {
  int64_t ts_us;
  int64_t g;
  int64_t v;
  int64_t w16;  // w = w16 / 16.0
};

std::vector<Row> MakeRows(uint64_t seed, int n) {
  Rng rng(seed);
  std::vector<Row> rows;
  int64_t ts_sec = 0;
  for (int i = 0; i < n; ++i) {
    ts_sec += rng.UniformInt(0, 3) / 2;  // 0 or 1 s per row, duplicates kept
    rows.push_back(Row{ts_sec * kMicrosPerSecond, rng.UniformInt(0, 5),
                       rng.UniformInt(-50, 50), rng.UniformInt(0, 160)});
  }
  return rows;
}

std::string ValuesList(const std::vector<Row>& rows, size_t lo, size_t hi) {
  std::string values;
  for (size_t i = lo; i < hi; ++i) {
    values += StrFormat("%s(%lld, %lld, %lld, %.6f)", i == lo ? "" : ", ",
                        static_cast<long long>(rows[i].ts_us),
                        static_cast<long long>(rows[i].g),
                        static_cast<long long>(rows[i].v),
                        static_cast<double>(rows[i].w16) / 16.0);
  }
  return values;
}

class TwoParadigms : public testutil::SyncEngineTest,
                     public ::testing::WithParamInterface<EquivCase> {};

// --- RANGE windows: replayed as ts-interval predicates over the table ----

TEST_P(TwoParadigms, RangeWindowMatchesOneTimeQuery) {
  const EquivCase& c = GetParam();
  Exec("CREATE STREAM s (ts timestamp, g int, v int, w double)");
  Exec("CREATE TABLE t (ts timestamp, g int, v int, w double)");

  const std::string sql = ContinuousSql(c, /*rows_window=*/false);
  auto qid = engine_.SubmitContinuous(sql, testutil::WithMode(c.mode));
  ASSERT_TRUE(qid.ok()) << qid.status().ToString() << "\nsql: " << sql;

  const std::vector<Row> rows = MakeRows(7 * c.size + c.slide, 300);
  for (size_t i = 0; i < rows.size(); i += 50) {
    const size_t hi = std::min(i + 50, rows.size());
    Exec(StrFormat("INSERT INTO t VALUES %s",
                   ValuesList(rows, i, hi).c_str()));
  }
  for (const Row& r : rows) {
    PushPump("s", {Value::Ts(r.ts_us), Value::I64(r.g), Value::I64(r.v),
                   Value::F64(static_cast<double>(r.w16) / 16.0)});
  }
  Seal("s");

  const std::vector<ColumnSet> emissions = Take(*qid);
  ASSERT_GT(emissions.size(), 2u) << sql;

  // Candidate windows end at boundaries m0*slide .. m_last*slide: from the
  // first window containing an event through the last one flushed by seal
  // (every window whose start lies at or before the last event).
  plan::WindowSpec spec;
  spec.size = c.size * kMicrosPerSecond;
  spec.slide = c.slide * kMicrosPerSecond;
  const WindowMath wm(spec);
  const int64_t m0 = wm.FirstRangeEmission(rows.front().ts_us);
  const int64_t m_last =
      (rows.back().ts_us + spec.size) / spec.slide;  // non-negative ts
  std::vector<std::string> window_sqls;
  for (int64_t m = m0; m <= m_last; ++m) {
    const auto [start, end] = wm.RangeExtent(m);
    std::string onetime = StrFormat(
        "SELECT %s FROM t WHERE ts >= %lld AND ts < %lld", c.select,
        static_cast<long long>(start), static_cast<long long>(end));
    if (*c.where) onetime += StrFormat(" AND %s", c.where);
    if (*c.tail) onetime += StrFormat(" %s", c.tail);
    window_sqls.push_back(std::move(onetime));
  }
  CheckEmissionsMatchReplays(engine_, emissions, window_sqls, sql);
}

constexpr const char* kScalar = "count(*), sum(v), min(v), max(v), avg(w)";
constexpr const char* kGrouped = "g, count(*), sum(v), avg(w)";
constexpr const char* kGroupTail = "GROUP BY g ORDER BY g";
constexpr const char* kProjection = "ts, g, v";
constexpr const char* kProjTail = "ORDER BY ts, g, v";

std::vector<EquivCase> RangeCases() {
  std::vector<EquivCase> cases;
  // (size, slide) seconds: tumbling, divisible sliding (true incremental
  // path), and non-divisible sliding (falls back to full re-evaluation).
  const std::pair<int64_t, int64_t> windows[] = {{4, 4}, {8, 2}, {6, 4}};
  const EquivCase shapes[] = {
      {"scalar", kScalar, "", "", 0, 0, ExecMode::kIncremental},
      {"grouped", kGrouped, "", kGroupTail, 0, 0, ExecMode::kIncremental},
      {"filtered", kGrouped, "v > 0", kGroupTail, 0, 0,
       ExecMode::kIncremental},
      {"projection", kProjection, "v % 2 = 0", kProjTail, 0, 0,
       ExecMode::kIncremental},
  };
  for (const EquivCase& shape : shapes) {
    for (auto [size, slide] : windows) {
      for (ExecMode mode : {ExecMode::kIncremental, ExecMode::kFullReeval}) {
        EquivCase c = shape;
        c.size = size;
        c.slide = slide;
        c.mode = mode;
        cases.push_back(c);
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Range, TwoParadigms,
                         ::testing::ValuesIn(RangeCases()), CaseName);

// --- ROWS windows: replayed as per-window row-chunk tables ---------------

class TwoParadigmsRows : public testutil::SyncEngineTest,
                         public ::testing::WithParamInterface<EquivCase> {};

TEST_P(TwoParadigmsRows, RowsWindowMatchesOneTimeQuery) {
  const EquivCase& c = GetParam();
  Exec("CREATE STREAM s (ts timestamp, g int, v int, w double)");

  const std::string sql = ContinuousSql(c, /*rows_window=*/true);
  auto qid = engine_.SubmitContinuous(sql, testutil::WithMode(c.mode));
  ASSERT_TRUE(qid.ok()) << qid.status().ToString() << "\nsql: " << sql;

  const std::vector<Row> rows = MakeRows(13 * c.size + c.slide, 120);
  for (const Row& r : rows) {
    PushPump("s", {Value::Ts(r.ts_us), Value::I64(r.g), Value::I64(r.v),
                   Value::F64(static_cast<double>(r.w16) / 16.0)});
  }
  // No seal: ROWS emission k fires exactly when row k*slide + size arrives.
  const std::vector<ColumnSet> emissions = Take(*qid);
  ASSERT_GT(emissions.size(), 2u) << sql;

  // Candidate window k covers the row chunk [k*slide, k*slide + size).
  const size_t num_windows =
      (rows.size() - static_cast<size_t>(c.size)) /
          static_cast<size_t>(c.slide) +
      1;
  std::vector<std::string> window_sqls;
  for (size_t k = 0; k < num_windows; ++k) {
    const size_t lo = k * static_cast<size_t>(c.slide);
    const size_t hi = lo + static_cast<size_t>(c.size);
    const std::string table = StrFormat("w%lld", static_cast<long long>(k));
    Exec(StrFormat("CREATE TABLE %s (ts timestamp, g int, v int, w double)",
                   table.c_str()));
    Exec(StrFormat("INSERT INTO %s VALUES %s", table.c_str(),
                   ValuesList(rows, lo, hi).c_str()));
    std::string onetime =
        StrFormat("SELECT %s FROM %s", c.select, table.c_str());
    if (*c.where) onetime += StrFormat(" WHERE %s", c.where);
    if (*c.tail) onetime += StrFormat(" %s", c.tail);
    window_sqls.push_back(std::move(onetime));
  }
  CheckEmissionsMatchReplays(engine_, emissions, window_sqls, sql);
}

std::vector<EquivCase> RowsCases() {
  std::vector<EquivCase> cases;
  const std::pair<int64_t, int64_t> windows[] = {{10, 10}, {12, 4}};
  const EquivCase shapes[] = {
      {"scalar", kScalar, "", "", 0, 0, ExecMode::kIncremental},
      {"grouped", kGrouped, "", kGroupTail, 0, 0, ExecMode::kIncremental},
      {"filtered", kGrouped, "v > 0", kGroupTail, 0, 0,
       ExecMode::kIncremental},
  };
  for (const EquivCase& shape : shapes) {
    for (auto [size, slide] : windows) {
      for (ExecMode mode : {ExecMode::kIncremental, ExecMode::kFullReeval}) {
        EquivCase c = shape;
        c.size = size;
        c.slide = slide;
        c.mode = mode;
        cases.push_back(c);
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Rows, TwoParadigmsRows,
                         ::testing::ValuesIn(RowsCases()), CaseName);

}  // namespace
}  // namespace dc
