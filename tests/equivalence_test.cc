// Two-paradigm equivalence — the paper's core claim, end-to-end: a
// continuous query and a one-time query over identical data, through the
// same binder/optimizer/compiler/executor stack, must produce identical
// results.
//
// Every row is fed both to a stream (consumed by SubmitContinuous) and to a
// persistent table (read by Query). For each continuous emission the test
// derives the window's exact extent from WindowMath and replays it as a
// one-time query:
//  * RANGE windows: `WHERE ts >= start AND ts < end` over the table;
//  * ROWS windows: a per-window table holding exactly that row chunk.
// Swept over aggregate shapes × window geometries × both execution modes
// (incremental and full re-evaluation).

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "core/engine.h"
#include "core/window.h"
#include "storage/wal.h"
#include "tests/crash_util.h"
#include "tests/durability_workload.h"
#include "tests/test_util.h"
#include "util/random.h"
#include "util/string_util.h"

namespace dc {
namespace {

using testutil::RowStrings;

struct EquivCase {
  const char* label;
  const char* select;  // projection / aggregate list
  const char* where;   // extra predicate ("" = none)
  const char* tail;    // GROUP BY / ORDER BY clause ("" = none)
  int64_t size;        // window size (seconds for RANGE, rows for ROWS)
  int64_t slide;
  ExecMode mode;
};

std::string CaseName(const ::testing::TestParamInfo<EquivCase>& info) {
  return StrFormat("%s_%lld_%lld_%s", info.param.label,
                   static_cast<long long>(info.param.size),
                   static_cast<long long>(info.param.slide),
                   info.param.mode == ExecMode::kIncremental ? "inc" : "full");
}

/// Rows of one emission as printable strings.
std::vector<std::string> Cells(const ColumnSet& cs) {
  return RowStrings({cs});
}

/// Matches the continuous emission sequence 1:1 against the one-time
/// replay of every window. Since zero-row emissions keep their batch
/// boundary in the output basket and emitters deliver them, every window —
/// empty or not — must produce exactly one emission equal to its replay,
/// cell-for-cell and in order.
void CheckEmissionsMatchReplays(Engine& engine,
                                const std::vector<ColumnSet>& emissions,
                                const std::vector<std::string>& window_sqls,
                                const std::string& continuous_sql) {
  ASSERT_EQ(emissions.size(), window_sqls.size())
      << "one emission per window expected\ncontinuous: " << continuous_sql;
  for (size_t i = 0; i < window_sqls.size(); ++i) {
    const std::string& onetime = window_sqls[i];
    auto replay = engine.Query(onetime);
    ASSERT_TRUE(replay.ok()) << replay.status().ToString()
                             << "\nsql: " << onetime;
    EXPECT_EQ(Cells(emissions[i]), Cells(*replay))
        << "emission " << i << " differs from its window replay"
        << "\ncontinuous: " << continuous_sql << "\none-time:   " << onetime
        << "\nreplay:\n"
        << replay->ToString(1 << 20) << "\nemission:\n"
        << emissions[i].ToString(1 << 20);
  }
}

std::string ContinuousSql(const EquivCase& c, bool rows_window) {
  std::string sql = StrFormat(
      rows_window ? "SELECT %s FROM s [ROWS %lld SLIDE %lld]"
                  : "SELECT %s FROM s [RANGE %lld SECONDS SLIDE %lld SECONDS]",
      c.select, static_cast<long long>(c.size),
      static_cast<long long>(c.slide));
  if (*c.where) sql += StrFormat(" WHERE %s", c.where);
  if (*c.tail) sql += StrFormat(" %s", c.tail);
  return sql;
}

// Both paradigms must agree bit-for-bit on doubles, so w values are dyadic
// rationals (k/16) that round-trip exactly through the SQL literal below.
struct Row {
  int64_t ts_us;
  int64_t g;
  int64_t v;
  int64_t w16;  // w = w16 / 16.0
};

std::vector<Row> MakeRows(uint64_t seed, int n) {
  Rng rng(seed);
  std::vector<Row> rows;
  int64_t ts_sec = 0;
  for (int i = 0; i < n; ++i) {
    ts_sec += rng.UniformInt(0, 3) / 2;  // 0 or 1 s per row, duplicates kept
    rows.push_back(Row{ts_sec * kMicrosPerSecond, rng.UniformInt(0, 5),
                       rng.UniformInt(-50, 50), rng.UniformInt(0, 160)});
  }
  return rows;
}

std::string ValuesList(const std::vector<Row>& rows, size_t lo, size_t hi) {
  std::string values;
  for (size_t i = lo; i < hi; ++i) {
    values += StrFormat("%s(%lld, %lld, %lld, %.6f)", i == lo ? "" : ", ",
                        static_cast<long long>(rows[i].ts_us),
                        static_cast<long long>(rows[i].g),
                        static_cast<long long>(rows[i].v),
                        static_cast<double>(rows[i].w16) / 16.0);
  }
  return values;
}

class TwoParadigms : public testutil::SyncEngineTest,
                     public ::testing::WithParamInterface<EquivCase> {};

// --- RANGE windows: replayed as ts-interval predicates over the table ----

TEST_P(TwoParadigms, RangeWindowMatchesOneTimeQuery) {
  const EquivCase& c = GetParam();
  Exec("CREATE STREAM s (ts timestamp, g int, v int, w double)");
  Exec("CREATE TABLE t (ts timestamp, g int, v int, w double)");

  const std::string sql = ContinuousSql(c, /*rows_window=*/false);
  auto qid = engine_.SubmitContinuous(sql, testutil::WithMode(c.mode));
  ASSERT_TRUE(qid.ok()) << qid.status().ToString() << "\nsql: " << sql;

  const std::vector<Row> rows = MakeRows(7 * c.size + c.slide, 300);
  for (size_t i = 0; i < rows.size(); i += 50) {
    const size_t hi = std::min(i + 50, rows.size());
    Exec(StrFormat("INSERT INTO t VALUES %s",
                   ValuesList(rows, i, hi).c_str()));
  }
  for (const Row& r : rows) {
    PushPump("s", {Value::Ts(r.ts_us), Value::I64(r.g), Value::I64(r.v),
                   Value::F64(static_cast<double>(r.w16) / 16.0)});
  }
  Seal("s");

  const std::vector<ColumnSet> emissions = Take(*qid);
  ASSERT_GT(emissions.size(), 2u) << sql;

  // Candidate windows end at boundaries m0*slide .. m_last*slide: from the
  // first window containing an event through the last one flushed by seal
  // (every window whose start lies at or before the last event).
  plan::WindowSpec spec;
  spec.size = c.size * kMicrosPerSecond;
  spec.slide = c.slide * kMicrosPerSecond;
  const WindowMath wm(spec);
  const int64_t m0 = wm.FirstRangeEmission(rows.front().ts_us);
  const int64_t m_last =
      (rows.back().ts_us + spec.size) / spec.slide;  // non-negative ts
  std::vector<std::string> window_sqls;
  for (int64_t m = m0; m <= m_last; ++m) {
    const auto [start, end] = wm.RangeExtent(m);
    std::string onetime = StrFormat(
        "SELECT %s FROM t WHERE ts >= %lld AND ts < %lld", c.select,
        static_cast<long long>(start), static_cast<long long>(end));
    if (*c.where) onetime += StrFormat(" AND %s", c.where);
    if (*c.tail) onetime += StrFormat(" %s", c.tail);
    window_sqls.push_back(std::move(onetime));
  }
  CheckEmissionsMatchReplays(engine_, emissions, window_sqls, sql);
}

constexpr const char* kScalar = "count(*), sum(v), min(v), max(v), avg(w)";
constexpr const char* kGrouped = "g, count(*), sum(v), avg(w)";
constexpr const char* kGroupTail = "GROUP BY g ORDER BY g";
constexpr const char* kProjection = "ts, g, v";
constexpr const char* kProjTail = "ORDER BY ts, g, v";

std::vector<EquivCase> RangeCases() {
  std::vector<EquivCase> cases;
  // (size, slide) seconds: tumbling, divisible sliding (true incremental
  // path), and non-divisible sliding (falls back to full re-evaluation).
  const std::pair<int64_t, int64_t> windows[] = {{4, 4}, {8, 2}, {6, 4}};
  const EquivCase shapes[] = {
      {"scalar", kScalar, "", "", 0, 0, ExecMode::kIncremental},
      {"grouped", kGrouped, "", kGroupTail, 0, 0, ExecMode::kIncremental},
      {"filtered", kGrouped, "v > 0", kGroupTail, 0, 0,
       ExecMode::kIncremental},
      {"projection", kProjection, "v % 2 = 0", kProjTail, 0, 0,
       ExecMode::kIncremental},
  };
  for (const EquivCase& shape : shapes) {
    for (auto [size, slide] : windows) {
      for (ExecMode mode : {ExecMode::kIncremental, ExecMode::kFullReeval}) {
        EquivCase c = shape;
        c.size = size;
        c.slide = slide;
        c.mode = mode;
        cases.push_back(c);
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Range, TwoParadigms,
                         ::testing::ValuesIn(RangeCases()), CaseName);

// --- ROWS windows: replayed as per-window row-chunk tables ---------------

class TwoParadigmsRows : public testutil::SyncEngineTest,
                         public ::testing::WithParamInterface<EquivCase> {};

TEST_P(TwoParadigmsRows, RowsWindowMatchesOneTimeQuery) {
  const EquivCase& c = GetParam();
  Exec("CREATE STREAM s (ts timestamp, g int, v int, w double)");

  const std::string sql = ContinuousSql(c, /*rows_window=*/true);
  auto qid = engine_.SubmitContinuous(sql, testutil::WithMode(c.mode));
  ASSERT_TRUE(qid.ok()) << qid.status().ToString() << "\nsql: " << sql;

  const std::vector<Row> rows = MakeRows(13 * c.size + c.slide, 120);
  for (const Row& r : rows) {
    PushPump("s", {Value::Ts(r.ts_us), Value::I64(r.g), Value::I64(r.v),
                   Value::F64(static_cast<double>(r.w16) / 16.0)});
  }
  // No seal: ROWS emission k fires exactly when row k*slide + size arrives.
  const std::vector<ColumnSet> emissions = Take(*qid);
  ASSERT_GT(emissions.size(), 2u) << sql;

  // Candidate window k covers the row chunk [k*slide, k*slide + size).
  const size_t num_windows =
      (rows.size() - static_cast<size_t>(c.size)) /
          static_cast<size_t>(c.slide) +
      1;
  std::vector<std::string> window_sqls;
  for (size_t k = 0; k < num_windows; ++k) {
    const size_t lo = k * static_cast<size_t>(c.slide);
    const size_t hi = lo + static_cast<size_t>(c.size);
    const std::string table = StrFormat("w%lld", static_cast<long long>(k));
    Exec(StrFormat("CREATE TABLE %s (ts timestamp, g int, v int, w double)",
                   table.c_str()));
    Exec(StrFormat("INSERT INTO %s VALUES %s", table.c_str(),
                   ValuesList(rows, lo, hi).c_str()));
    std::string onetime =
        StrFormat("SELECT %s FROM %s", c.select, table.c_str());
    if (*c.where) onetime += StrFormat(" WHERE %s", c.where);
    if (*c.tail) onetime += StrFormat(" %s", c.tail);
    window_sqls.push_back(std::move(onetime));
  }
  CheckEmissionsMatchReplays(engine_, emissions, window_sqls, sql);
}

std::vector<EquivCase> RowsCases() {
  std::vector<EquivCase> cases;
  const std::pair<int64_t, int64_t> windows[] = {{10, 10}, {12, 4}};
  const EquivCase shapes[] = {
      {"scalar", kScalar, "", "", 0, 0, ExecMode::kIncremental},
      {"grouped", kGrouped, "", kGroupTail, 0, 0, ExecMode::kIncremental},
      {"filtered", kGrouped, "v > 0", kGroupTail, 0, 0,
       ExecMode::kIncremental},
  };
  for (const EquivCase& shape : shapes) {
    for (auto [size, slide] : windows) {
      for (ExecMode mode : {ExecMode::kIncremental, ExecMode::kFullReeval}) {
        EquivCase c = shape;
        c.size = size;
        c.slide = slide;
        c.mode = mode;
        cases.push_back(c);
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Rows, TwoParadigmsRows,
                         ::testing::ValuesIn(RowsCases()), CaseName);

// --- Stream-stream delta joins vs one-time recompute ----------------------
//
// The incremental delta-join claim (docs/INCREMENTAL.md): joining only the
// newest basic window against the retained window and merging the cached
// pair partials must equal a one-time full-window recompute, for every
// emission, across slide/size ratios (incl. unequal sizes and the
// non-divisible fallback), empty basic windows, and duplicate join keys.

struct JoinCase {
  const char* label;
  const char* select;  // projection / aggregate list
  const char* tail;    // GROUP BY / ORDER BY clause ("" = none)
  int64_t lsize;       // left window size, seconds
  int64_t rsize;       // right window size, seconds
  int64_t slide;       // shared slide, seconds
  ExecMode mode;
};

std::string JoinCaseName(const ::testing::TestParamInfo<JoinCase>& info) {
  return StrFormat("%s_%lld_%lld_%lld_%s", info.param.label,
                   static_cast<long long>(info.param.lsize),
                   static_cast<long long>(info.param.rsize),
                   static_cast<long long>(info.param.slide),
                   info.param.mode == ExecMode::kIncremental ? "inc" : "full");
}

struct JoinRow {
  int64_t ts_us;
  int64_t k;
  int64_t v;
};

/// Monotone event times with occasional multi-second jumps so some basic
/// windows are empty; keys drawn from a small domain so duplicates are
/// guaranteed on both sides.
std::vector<JoinRow> MakeJoinRows(uint64_t seed, int n) {
  Rng rng(seed);
  std::vector<JoinRow> rows;
  int64_t ts_sec = 0;
  for (int i = 0; i < n; ++i) {
    ts_sec += rng.UniformInt(0, 3) / 2;             // 0 or 1 s per row
    if (rng.UniformInt(0, 15) == 0) ts_sec += 4;    // gap: empty basic windows
    rows.push_back(JoinRow{ts_sec * kMicrosPerSecond, rng.UniformInt(0, 4),
                           rng.UniformInt(-30, 30)});
  }
  return rows;
}

class TwoParadigmsJoin : public testutil::SyncEngineTest,
                         public ::testing::WithParamInterface<JoinCase> {};

TEST_P(TwoParadigmsJoin, DeltaJoinMatchesOneTimeRecompute) {
  const JoinCase& c = GetParam();
  Exec("CREATE STREAM a (ats timestamp, ka int, x int)");
  Exec("CREATE STREAM b (bts timestamp, kb int, y int)");
  Exec("CREATE TABLE ta (ats timestamp, ka int, x int)");
  Exec("CREATE TABLE tb (bts timestamp, kb int, y int)");

  const std::string sql = StrFormat(
      "SELECT %s FROM a [RANGE %lld SECONDS SLIDE %lld SECONDS] JOIN "
      "b [RANGE %lld SECONDS SLIDE %lld SECONDS] ON ka = kb%s%s",
      c.select, static_cast<long long>(c.lsize),
      static_cast<long long>(c.slide), static_cast<long long>(c.rsize),
      static_cast<long long>(c.slide), *c.tail ? " " : "", c.tail);
  auto qid = engine_.SubmitContinuous(sql, testutil::WithMode(c.mode));
  ASSERT_TRUE(qid.ok()) << qid.status().ToString() << "\nsql: " << sql;

  const std::vector<JoinRow> la = MakeJoinRows(11 * c.lsize + c.slide, 260);
  const std::vector<JoinRow> lb = MakeJoinRows(17 * c.rsize + c.slide, 260);
  auto values = [](const std::vector<JoinRow>& rows, size_t lo, size_t hi) {
    std::string out;
    for (size_t i = lo; i < hi; ++i) {
      out += StrFormat("%s(%lld, %lld, %lld)", i == lo ? "" : ", ",
                       static_cast<long long>(rows[i].ts_us),
                       static_cast<long long>(rows[i].k),
                       static_cast<long long>(rows[i].v));
    }
    return out;
  };
  for (size_t i = 0; i < la.size(); i += 65) {
    const size_t hi = std::min(i + 65, la.size());
    Exec(StrFormat("INSERT INTO ta VALUES %s", values(la, i, hi).c_str()));
    Exec(StrFormat("INSERT INTO tb VALUES %s", values(lb, i, hi).c_str()));
  }
  for (size_t i = 0; i < la.size(); ++i) {
    PushPump("a", {Value::Ts(la[i].ts_us), Value::I64(la[i].k),
                   Value::I64(la[i].v)});
    PushPump("b", {Value::Ts(lb[i].ts_us), Value::I64(lb[i].k),
                   Value::I64(lb[i].v)});
  }
  Seal("a");
  Seal("b");

  const std::vector<ColumnSet> emissions = Take(*qid);
  ASSERT_GT(emissions.size(), 2u) << sql;

  // Emission boundaries are shared (equal slide): the factory starts at
  // the later of the two sides' first windows and the seal flushes every
  // window both sides can still cover.
  plan::WindowSpec lspec, rspec;
  lspec.size = c.lsize * kMicrosPerSecond;
  lspec.slide = c.slide * kMicrosPerSecond;
  rspec.size = c.rsize * kMicrosPerSecond;
  rspec.slide = c.slide * kMicrosPerSecond;
  const WindowMath wl(lspec), wr(rspec);
  const int64_t m0 = std::max(wl.FirstRangeEmission(la.front().ts_us),
                              wr.FirstRangeEmission(lb.front().ts_us));
  const int64_t m_last =
      std::min((la.back().ts_us + lspec.size) / lspec.slide,
               (lb.back().ts_us + rspec.size) / rspec.slide);
  std::vector<std::string> window_sqls;
  for (int64_t m = m0; m <= m_last; ++m) {
    const auto [lstart, lend] = wl.RangeExtent(m);
    const auto [rstart, rend] = wr.RangeExtent(m);
    std::string onetime = StrFormat(
        "SELECT %s FROM ta JOIN tb ON ka = kb "
        "WHERE ats >= %lld AND ats < %lld AND bts >= %lld AND bts < %lld",
        c.select, static_cast<long long>(std::max<int64_t>(lstart, 0)),
        static_cast<long long>(lend),
        static_cast<long long>(std::max<int64_t>(rstart, 0)),
        static_cast<long long>(rend));
    if (*c.tail) onetime += StrFormat(" %s", c.tail);
    window_sqls.push_back(std::move(onetime));
  }
  CheckEmissionsMatchReplays(engine_, emissions, window_sqls, sql);

  // The incremental path must actually have used delta joins (not the
  // fallback) whenever the windows divide.
  const FactoryStats fs = engine_.GetFactory(*qid)->Stats();
  const bool divisible =
      c.lsize % c.slide == 0 && c.rsize % c.slide == 0;
  if (c.mode == ExecMode::kIncremental && divisible) {
    EXPECT_FALSE(fs.fell_back_to_full);
    EXPECT_GT(fs.fragments_computed, 0u);
  }
  if (c.mode == ExecMode::kIncremental && !divisible) {
    EXPECT_TRUE(fs.fell_back_to_full);
  }
}

constexpr const char* kJoinScalar = "count(*), sum(x), sum(y), min(x), max(y)";
constexpr const char* kJoinGrouped = "ka, count(*), sum(x), sum(y)";
constexpr const char* kJoinGroupTail =
    "GROUP BY ka HAVING count(*) > 2 ORDER BY ka";
constexpr const char* kJoinProjection = "ats, ka, x, y";
// Total order over every output column: stable-merge ties carry no
// information, so FULL, INCREMENTAL, and the one-time replay agree
// cell-for-cell.
constexpr const char* kJoinProjTail = "ORDER BY ats, ka, x, y";

std::vector<JoinCase> JoinCases() {
  std::vector<JoinCase> cases;
  // (lsize, rsize, slide) seconds: tumbling, divisible sliding with equal
  // and unequal sizes (true delta-join path), and a non-divisible pair
  // (full re-evaluation fallback).
  const std::tuple<int64_t, int64_t, int64_t> windows[] = {
      {4, 4, 4}, {8, 8, 2}, {8, 4, 2}, {6, 4, 4}};
  const JoinCase shapes[] = {
      {"scalar", kJoinScalar, "", 0, 0, 0, ExecMode::kIncremental},
      {"grouped", kJoinGrouped, kJoinGroupTail, 0, 0, 0,
       ExecMode::kIncremental},
      {"projection", kJoinProjection, kJoinProjTail, 0, 0, 0,
       ExecMode::kIncremental},
  };
  for (const JoinCase& shape : shapes) {
    for (const auto& [lsize, rsize, slide] : windows) {
      for (ExecMode mode : {ExecMode::kIncremental, ExecMode::kFullReeval}) {
        JoinCase c = shape;
        c.lsize = lsize;
        c.rsize = rsize;
        c.slide = slide;
        c.mode = mode;
        cases.push_back(c);
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Join, TwoParadigmsJoin,
                         ::testing::ValuesIn(JoinCases()), JoinCaseName);

// --- Delta join under churn (threaded engine; exercised under TSan) -------
//
// Two producer threads feed both join sides while scheduler workers fire
// the incremental join factory and the main thread polls stats and
// pauses/resumes the query. Hunts for data races in the delta-join state
// (compact cache, expiry-keyed partials) rather than for exact values —
// the equivalence cases above pin those.
TEST(DeltaJoinChurn, ThreadedProducersStatsAndPauseResume) {
  Engine engine(testutil::Threaded(2));
  ASSERT_TRUE(
      engine.Execute("CREATE STREAM a (ats timestamp, ka int, x int)").ok());
  ASSERT_TRUE(
      engine.Execute("CREATE STREAM b (bts timestamp, kb int, y int)").ok());
  auto qid = engine.SubmitContinuous(
      "SELECT ka, count(*), sum(x), sum(y) FROM "
      "a [RANGE 4 SECONDS SLIDE 1 SECONDS] JOIN "
      "b [RANGE 8 SECONDS SLIDE 1 SECONDS] ON ka = kb "
      "GROUP BY ka ORDER BY ka",
      testutil::WithMode(ExecMode::kIncremental));
  ASSERT_TRUE(qid.ok()) << qid.status().ToString();

  constexpr int kRows = 600;
  auto produce = [&](const char* stream, uint64_t seed) {
    Rng rng(seed);
    int64_t ts_sec = 0;
    for (int i = 0; i < kRows; ++i) {
      ts_sec += rng.UniformInt(0, 3) / 2;
      ASSERT_TRUE(engine
                      .PushRow(stream, {Value::Ts(ts_sec * kMicrosPerSecond),
                                        Value::I64(rng.UniformInt(0, 6)),
                                        Value::I64(rng.UniformInt(0, 50))})
                      .ok());
    }
  };
  std::thread ta([&] { produce("a", 101); });
  std::thread tb([&] { produce("b", 202); });
  for (int i = 0; i < 20; ++i) {
    (void)engine.GetFactory(*qid)->Stats();
    if (i == 8) ASSERT_TRUE(engine.PauseQuery(*qid).ok());
    if (i == 12) ASSERT_TRUE(engine.ResumeQuery(*qid).ok());
    std::this_thread::yield();
  }
  ta.join();
  tb.join();
  ASSERT_TRUE(engine.SealStream("a").ok());
  ASSERT_TRUE(engine.SealStream("b").ok());
  ASSERT_TRUE(engine.WaitIdle());

  const FactoryStats fs = engine.GetFactory(*qid)->Stats();
  EXPECT_TRUE(fs.last_error.empty()) << fs.last_error;
  EXPECT_FALSE(fs.fell_back_to_full);
  EXPECT_GT(fs.emissions, 0u);
  auto results = engine.TakeResults(*qid);
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(results->size(), fs.emissions);
}

// --- Long-horizon churn: delta-join bookkeeping vs brute force ------------
//
// Drives a delta join through many times the full window turnover (shared
// timestamp sequence with a forced 16 s dead zone, so several emissions
// see empty windows) and cross-checks the incremental path's counters
// against brute-force references computed from the raw rows:
//  * delta_pairs — every matching pair that ever co-exists in the window
//    is created exactly once; the raw and pre-aggregated paths must agree
//    with the same reference;
//  * retained_rows / index_entries — the rolling retained-side state and
//    its hash index must end holding exactly the final window (rows on
//    the raw path, per-basic-window key groups on the pre-agg path).
// The scalar case also pins the empty-window convention: COUNT 0, other
// aggregates NULL.

struct ChurnRows {
  std::vector<JoinRow> a, b;
};

/// Both sides share one timestamp sequence so the dead zone is empty on
/// both, guaranteeing emissions whose join windows hold no rows at all.
ChurnRows MakeChurnRows(int n) {
  Rng ts_rng(991), ra(11), rb(22);
  ChurnRows d;
  int64_t ts_sec = 0;
  for (int i = 0; i < n; ++i) {
    ts_sec += ts_rng.UniformInt(0, 3) / 2;  // 0 or 1 s per row
    if (i == n / 2) ts_sec += 16;           // dead zone: empty windows
    d.a.push_back(JoinRow{ts_sec * kMicrosPerSecond, ra.UniformInt(0, 4),
                          ra.UniformInt(-30, 30)});
    d.b.push_back(JoinRow{ts_sec * kMicrosPerSecond, rb.UniformInt(0, 4),
                          rb.UniformInt(-30, 30)});
  }
  return d;
}

class DeltaJoinLongHorizon : public testutil::SyncEngineTest {
 protected:
  static constexpr int64_t kLSize = 4, kRSize = 8, kSlide = 1;  // seconds
  static constexpr int64_t kSlideUs = kSlide * kMicrosPerSecond;
  static constexpr int64_t kNl = kLSize / kSlide, kNr = kRSize / kSlide;
  static constexpr int kRows = 300;

  void RunChurn(const char* select, const char* tail,
                std::vector<ColumnSet>* emissions, FactoryStats* fs) {
    Exec("CREATE STREAM a (ats timestamp, ka int, x int)");
    Exec("CREATE STREAM b (bts timestamp, kb int, y int)");
    const std::string sql = StrFormat(
        "SELECT %s FROM a [RANGE %lld SECONDS SLIDE %lld SECONDS] JOIN "
        "b [RANGE %lld SECONDS SLIDE %lld SECONDS] ON ka = kb%s%s",
        select, static_cast<long long>(kLSize), static_cast<long long>(kSlide),
        static_cast<long long>(kRSize), static_cast<long long>(kSlide),
        *tail ? " " : "", tail);
    auto qid = engine_.SubmitContinuous(
        sql, testutil::WithMode(ExecMode::kIncremental));
    ASSERT_TRUE(qid.ok()) << qid.status().ToString() << "\nsql: " << sql;

    rows_ = MakeChurnRows(kRows);
    for (int i = 0; i < kRows; ++i) {
      PushPump("a", {Value::Ts(rows_.a[i].ts_us), Value::I64(rows_.a[i].k),
                     Value::I64(rows_.a[i].v)});
      PushPump("b", {Value::Ts(rows_.b[i].ts_us), Value::I64(rows_.b[i].k),
                     Value::I64(rows_.b[i].v)});
    }
    Seal("a");
    Seal("b");

    *emissions = Take(*qid);
    *fs = engine_.GetFactory(*qid)->Stats();
    ASSERT_TRUE(fs->last_error.empty()) << fs->last_error;
    EXPECT_FALSE(fs->fell_back_to_full);

    m0_ = rows_.a.front().ts_us / kSlideUs + 1;
    m_last_ = std::min(
        (rows_.a.back().ts_us + kLSize * kMicrosPerSecond) / kSlideUs,
        (rows_.b.back().ts_us + kRSize * kMicrosPerSecond) / kSlideUs);
    ASSERT_EQ(emissions->size(), static_cast<size_t>(m_last_ - m0_ + 1));
    // Long horizon: the data must churn through >= 4 full window turnovers.
    ASSERT_GE(m_last_ - m0_, 4 * std::max(kNl, kNr));
  }

  /// Matching pairs whose joint window-membership range intersects the
  /// fired emissions [m0_, m_last_]: row ts is in window m iff
  /// m in [ts/slide + 1, ts/slide + n]. Each such pair is created by
  /// exactly one fire on either delta path.
  uint64_t ExpectedDeltaPairs() const {
    uint64_t pairs = 0;
    for (const JoinRow& l : rows_.a) {
      const int64_t llo = l.ts_us / kSlideUs + 1, lhi = l.ts_us / kSlideUs + kNl;
      for (const JoinRow& r : rows_.b) {
        if (l.k != r.k) continue;
        const int64_t rlo = r.ts_us / kSlideUs + 1;
        const int64_t rhi = r.ts_us / kSlideUs + kNr;
        if (std::max({llo, rlo, m0_}) <= std::min({lhi, rhi, m_last_})) ++pairs;
      }
    }
    return pairs;
  }

  /// Rows of the final retained window, i.e. ts in RangeExtent(m_last_),
  /// summed over both sides (every row's ts is below the last boundary).
  uint64_t ExpectedRetainedRows() const {
    uint64_t rows = 0;
    for (const JoinRow& l : rows_.a)
      if (l.ts_us >= (m_last_ - kNl) * kSlideUs) ++rows;
    for (const JoinRow& r : rows_.b)
      if (r.ts_us >= (m_last_ - kNr) * kSlideUs) ++rows;
    return rows;
  }

  /// Pre-agg path: one group per (live basic window, distinct key).
  uint64_t ExpectedRetainedGroups() const {
    auto side = [&](const std::vector<JoinRow>& rows, int64_t n) {
      uint64_t groups = 0;
      for (int64_t j = m_last_ - n; j < m_last_; ++j) {
        std::set<int64_t> keys;
        for (const JoinRow& r : rows)
          if (r.ts_us / kSlideUs == j) keys.insert(r.k);
        groups += keys.size();
      }
      return groups;
    };
    return side(rows_.a, kNl) + side(rows_.b, kNr);
  }

  ChurnRows rows_;
  int64_t m0_ = 0, m_last_ = 0;
};

TEST_F(DeltaJoinLongHorizon, RawPathCountersMatchBruteForce) {
  std::vector<ColumnSet> emissions;
  FactoryStats fs;
  ASSERT_NO_FATAL_FAILURE(
      RunChurn(kJoinProjection, kJoinProjTail, &emissions, &fs));
  EXPECT_EQ(fs.delta_pairs, ExpectedDeltaPairs());
  EXPECT_EQ(fs.retained_rows, ExpectedRetainedRows());
  EXPECT_EQ(fs.index_entries, ExpectedRetainedRows());
}

TEST_F(DeltaJoinLongHorizon, PreAggPathCountersMatchBruteForce) {
  std::vector<ColumnSet> emissions;
  FactoryStats fs;
  ASSERT_NO_FATAL_FAILURE(RunChurn(kJoinScalar, "", &emissions, &fs));
  // Path-independent: the group-pairing product rule represents exactly
  // the pairs the raw path would have materialized.
  EXPECT_EQ(fs.delta_pairs, ExpectedDeltaPairs());
  EXPECT_EQ(fs.retained_rows, ExpectedRetainedGroups());
  EXPECT_EQ(fs.index_entries, ExpectedRetainedGroups());

  // The dead zone forces emissions whose join result is empty: COUNT is 0
  // and every other scalar aggregate is SQL NULL (not 0).
  int empty_emissions = 0;
  for (const ColumnSet& cs : emissions) {
    ASSERT_EQ(cs.NumRows(), 1u);
    if (cs.cols[0]->GetValue(0).AsI64() != 0) continue;
    ++empty_emissions;
    for (size_t c = 1; c < cs.cols.size(); ++c) {
      EXPECT_TRUE(cs.cols[c]->IsNull(0)) << "col " << c;
      EXPECT_TRUE(cs.cols[c]->GetValue(0).is_null()) << "col " << c;
    }
  }
  EXPECT_GT(empty_emissions, 0);
}

// --- Shared vs unshared differential matrix (docs/SHARING.md) -------------
//
// The sharing registry must be invisible in the output: every query running
// in a shared engine (one receptor fan-out per stream, shared window nodes,
// deduplicated factories) must emit byte-for-byte what it emits alone in an
// engine with EngineOptions::enable_sharing = false. The matrix covers
// factory-level dedup (identical texts, incl. joins and full re-evaluation
// mode), shared window nodes (same fragment prefix, differing HAVING/LIMIT
// tails), window subsumption (coarser compatible slides riding a finer
// grid), and the paths sharing must NOT capture (non-divisible fallback,
// incompatible slides).

EngineOptions SharingOpts(bool enable) {
  EngineOptions o = testutil::SyncOptions();
  o.enable_sharing = enable;
  return o;
}

class SharingDifferential : public ::testing::Test {
 protected:
  struct ShareCase {
    std::string sql;
    ExecMode mode = ExecMode::kIncremental;
  };

  static void Ddl(Engine& e) {
    ASSERT_TRUE(
        e.Execute("CREATE STREAM s (ts timestamp, g int, v int, w double)")
            .ok());
    ASSERT_TRUE(
        e.Execute("CREATE STREAM r (rts timestamp, kr int, y int)").ok());
  }

  /// Identical deterministic feed for the shared engine and every solo
  /// replay: both streams advance on one timestamp sequence.
  static void Feed(Engine& e) {
    const std::vector<Row> rows = MakeRows(4242, 240);
    for (const Row& r : rows) {
      ASSERT_TRUE(
          e.PushRow("s", {Value::Ts(r.ts_us), Value::I64(r.g), Value::I64(r.v),
                          Value::F64(static_cast<double>(r.w16) / 16.0)})
              .ok());
      ASSERT_TRUE(e.PushRow("r", {Value::Ts(r.ts_us), Value::I64(r.v % 5),
                                  Value::I64(r.w16)})
                      .ok());
      e.Pump();
    }
    ASSERT_TRUE(e.SealStream("s").ok());
    ASSERT_TRUE(e.SealStream("r").ok());
    e.Pump();
  }

  /// Runs every case concurrently in `shared` and each case alone in a
  /// fresh unshared engine; emissions must match byte-for-byte.
  void RunMatrix(const std::vector<ShareCase>& cases, Engine* shared) {
    ASSERT_NO_FATAL_FAILURE(Ddl(*shared));
    for (const ShareCase& c : cases) {
      auto qid = shared->SubmitContinuous(c.sql, testutil::WithMode(c.mode));
      ASSERT_TRUE(qid.ok()) << qid.status().ToString() << "\nsql: " << c.sql;
      query_ids_.push_back(*qid);
    }
    ASSERT_NO_FATAL_FAILURE(Feed(*shared));
    for (size_t i = 0; i < cases.size(); ++i) {
      auto got = shared->TakeResults(query_ids_[i]);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      ASSERT_GT(got->size(), 2u) << cases[i].sql;

      Engine solo(SharingOpts(false));
      ASSERT_NO_FATAL_FAILURE(Ddl(solo));
      auto sq = solo.SubmitContinuous(cases[i].sql,
                                      testutil::WithMode(cases[i].mode));
      ASSERT_TRUE(sq.ok()) << sq.status().ToString() << "\nsql: "
                           << cases[i].sql;
      ASSERT_NO_FATAL_FAILURE(Feed(solo));
      auto want = solo.TakeResults(*sq);
      ASSERT_TRUE(want.ok()) << want.status().ToString();
      EXPECT_EQ(testutil::EmissionStrings(*got),
                testutil::EmissionStrings(*want))
          << "query " << i << " diverges under sharing\nsql: " << cases[i].sql;
    }
  }

  std::vector<int> query_ids_;
};

TEST_F(SharingDifferential, RangePrefixFamilyWithSubsumptionAndFallback) {
  std::vector<ShareCase> cases;
  // Same fragment prefix, four HAVING constants: one shared node, four tails.
  for (int i = 0; i < 4; ++i) {
    cases.push_back({StrFormat(
        "SELECT g, count(*), sum(v), avg(w) FROM s "
        "[RANGE 4 SECONDS SLIDE 1 SECONDS] "
        "GROUP BY g HAVING count(*) > %d ORDER BY g", i)});
  }
  // Coarser compatible geometry rides the same node (slide 2 on grid 1).
  cases.push_back({"SELECT g, count(*), sum(v), avg(w) FROM s "
                   "[RANGE 8 SECONDS SLIDE 2 SECONDS] "
                   "GROUP BY g HAVING count(*) > 1 ORDER BY g"});
  // Non-divisible window: must stay on the solo full-reevaluation fallback.
  cases.push_back({"SELECT g, count(*), sum(v), avg(w) FROM s "
                   "[RANGE 6 SECONDS SLIDE 4 SECONDS] "
                   "GROUP BY g HAVING count(*) > 1 ORDER BY g"});

  Engine shared(SharingOpts(true));
  RunMatrix(cases, &shared);

  const SharingStats ss = shared.GetSharingStats();
  EXPECT_TRUE(ss.enabled);
  ASSERT_EQ(ss.shared_nodes, 1u);
  EXPECT_EQ(ss.nodes[0].subscribers, 5);
  EXPECT_EQ(ss.prefix_hits, 4u);
  EXPECT_GT(ss.sharing_hits, 0u);
  // Six queries, two basket readers: the shared node plus the one fallback
  // factory — receptor fan-out is per shared node, not per query.
  EXPECT_EQ(shared.StreamStats("s")->readers, 2u);
  EXPECT_TRUE(shared.GetFactory(query_ids_.back())->Stats().fell_back_to_full);
  EXPECT_FALSE(
      shared.GetFactory(query_ids_.front())->Stats().fell_back_to_full);

  // The monitor-facing per-query sharing note names the node for members.
  int noted = 0;
  for (const ContinuousQueryInfo& q : shared.Queries()) {
    if (q.sharing.find("node") != std::string::npos) ++noted;
  }
  EXPECT_EQ(noted, 5);
}

TEST_F(SharingDifferential, RowsPrefixFamilyWithSubsumption) {
  std::vector<ShareCase> cases;
  for (int i = 0; i < 3; ++i) {
    cases.push_back({StrFormat(
        "SELECT g, count(*), sum(v) FROM s [ROWS 12 SLIDE 4] "
        "GROUP BY g HAVING count(*) > %d ORDER BY g", i)});
  }
  // ROWS subsumption: slide 8 rides the 4-row grid.
  cases.push_back({"SELECT g, count(*), sum(v) FROM s [ROWS 24 SLIDE 8] "
                   "GROUP BY g HAVING count(*) > 0 ORDER BY g"});

  Engine shared(SharingOpts(true));
  RunMatrix(cases, &shared);

  const SharingStats ss = shared.GetSharingStats();
  ASSERT_EQ(ss.shared_nodes, 1u);
  EXPECT_EQ(ss.nodes[0].subscribers, 4);
  EXPECT_EQ(ss.prefix_hits, 3u);
  EXPECT_EQ(shared.StreamStats("s")->readers, 1u);
}

TEST_F(SharingDifferential, FactoryDedupForDuplicateTextsJoinsAndFullMode) {
  const char* kAgg =
      "SELECT count(*), sum(v) FROM s [RANGE 2 SECONDS SLIDE 2 SECONDS]";
  const char* kFull =
      "SELECT g, count(*) FROM s [RANGE 4 SECONDS SLIDE 2 SECONDS] "
      "GROUP BY g ORDER BY g";
  const char* kJoin =
      "SELECT count(*), sum(v), sum(y) FROM "
      "s [RANGE 4 SECONDS SLIDE 2 SECONDS] JOIN "
      "r [RANGE 4 SECONDS SLIDE 2 SECONDS] ON g = kr";
  const std::vector<ShareCase> cases = {
      {kAgg}, {kAgg},  // identical incremental window aggregates
      {kFull, ExecMode::kFullReeval},  // identical full-reeval queries
      {kFull, ExecMode::kFullReeval},
      {kJoin}, {kJoin},  // identical stream-stream delta joins
      // Same join text in the other mode: must NOT dedup across modes.
      {kJoin, ExecMode::kFullReeval},
  };

  Engine shared(SharingOpts(true));
  RunMatrix(cases, &shared);

  const SharingStats ss = shared.GetSharingStats();
  EXPECT_EQ(ss.full_hits, 3u);
  EXPECT_EQ(ss.shared_factories, 3u);
  int aliased = 0;
  for (const ContinuousQueryInfo& q : shared.Queries()) {
    if (q.shared_with > 1) {
      EXPECT_EQ(q.shared_with, 2);
      ++aliased;
    }
  }
  EXPECT_EQ(aliased, 6);
}

TEST_F(SharingDifferential, IncompatibleSlidesSplitNodes) {
  // Grid 2 s first; slide 3 s does not divide it, so the same prefix gets a
  // second node. Later queries join the first compatible node.
  const std::vector<ShareCase> cases = {
      {"SELECT g, count(*) FROM s [RANGE 4 SECONDS SLIDE 2 SECONDS] "
       "GROUP BY g ORDER BY g"},
      {"SELECT g, count(*) FROM s [RANGE 9 SECONDS SLIDE 3 SECONDS] "
       "GROUP BY g ORDER BY g"},
      {"SELECT g, count(*) FROM s [RANGE 12 SECONDS SLIDE 6 SECONDS] "
       "GROUP BY g ORDER BY g"},
      {"SELECT g, count(*) FROM s [RANGE 12 SECONDS SLIDE 3 SECONDS] "
       "GROUP BY g ORDER BY g"},
  };

  Engine shared(SharingOpts(true));
  RunMatrix(cases, &shared);

  const SharingStats ss = shared.GetSharingStats();
  ASSERT_EQ(ss.shared_nodes, 2u);
  EXPECT_EQ(ss.prefix_hits, 2u);
  EXPECT_EQ(shared.StreamStats("s")->readers, 2u);
  int subs = 0;
  for (const SharedNodeStats& n : ss.nodes) subs += n.subscribers;
  EXPECT_EQ(subs, 4);
}

// ---------------------------------------------------------------------------
// RecoveryDifferential: kill-and-recover mid-stream must be invisible in
// the output. The durability workload (tier-P shared-prefix pair, ROWS
// ordinal anchoring, empty-window scalar, stream-stream delta join) runs
// once uninterrupted and once killed at a checkpoint: emissions drained
// before the kill concatenated with emissions after recovery must equal
// the unkilled run BATCH FOR BATCH — same ordinals, same rows, including
// the n == 0 emissions the empty-window scalar produces. Swept over both
// execution modes and several kill fractions.
// ---------------------------------------------------------------------------

class RecoveryDifferential : public ::testing::TestWithParam<ExecMode> {
 protected:
  static constexpr int kTapeRows = 36;

  std::vector<int> Submit(Engine& e) {
    std::vector<int> qids;
    for (const std::string& sql : testutil::WorkloadQueries()) {
      auto q = e.SubmitContinuous(sql, testutil::WithMode(GetParam()));
      EXPECT_TRUE(q.ok()) << q.status().ToString() << "\nsql: " << sql;
      qids.push_back(q.ok() ? *q : -1);
    }
    return qids;
  }
};

TEST_P(RecoveryDifferential, KillAtCheckpointThenRecoverMatchesBatchForBatch) {
  const std::vector<testutil::WRow> rows = testutil::WorkloadRows(kTapeRows);

  // Unkilled oracle.
  std::vector<std::vector<std::string>> oracle;
  {
    const std::string odir = testutil::MakeTempDir("rdiff_oracle");
    Engine e(testutil::DurableSyncOptions(odir, nullptr,
                                          storage::FsyncPolicy::kInterval));
    testutil::WorkloadDdl(e);
    const std::vector<int> qids = Submit(e);
    testutil::WorkloadFeed(e, rows, 0, 0, rows.size());
    testutil::WorkloadSeal(e);
    oracle = testutil::WorkloadTake(e, qids);
    testutil::RemoveDirRecursive(odir);
  }
  for (const auto& per_query : oracle) ASSERT_GT(per_query.size(), 3u);

  for (const size_t kill_at : {rows.size() / 3, rows.size() / 2,
                               3 * rows.size() / 4}) {
    SCOPED_TRACE("kill_at=" + std::to_string(kill_at));
    const std::string dir = testutil::MakeTempDir("rdiff");

    // Phase 1: feed to the kill point, drain what has been emitted so
    // far, checkpoint, and die (destructor = clean process exit; the
    // hard-kill spectrum is recovery_test's crash-point enumeration).
    std::vector<std::vector<std::string>> head;
    {
      Engine e(testutil::DurableSyncOptions(dir, nullptr,
                                            storage::FsyncPolicy::kInterval));
      testutil::WorkloadDdl(e);
      const std::vector<int> qids = Submit(e);
      testutil::WorkloadFeed(e, rows, 0, 0, kill_at);
      head = testutil::WorkloadTake(e, qids);
      ASSERT_TRUE(e.Checkpoint().ok());
    }

    // Phase 2: recover, resume the tape from the replayed low marks,
    // seal, and drain the tail.
    Engine rec(testutil::DurableSyncOptions(dir, nullptr,
                                            storage::FsyncPolicy::kInterval));
    ASSERT_TRUE(rec.recovery_status().ok())
        << rec.recovery_status().ToString();
    std::map<std::string, int> by_sql;
    for (const ContinuousQueryInfo& q : rec.Queries()) by_sql[q.sql] = q.id;
    std::vector<int> qids;
    for (const std::string& sql : testutil::WorkloadQueries()) {
      ASSERT_EQ(by_sql.count(sql), 1u) << "lost across restart: " << sql;
      qids.push_back(by_sql[sql]);
    }
    const uint64_t lo_s = rec.GetBasket("s")->HighSeq();
    const uint64_t lo_r = rec.GetBasket("r")->HighSeq();
    ASSERT_EQ(lo_s, kill_at);  // graceful exit synced the whole prefix
    ASSERT_EQ(lo_r, kill_at);
    testutil::WorkloadFeed(rec, rows, lo_s, lo_r, rows.size());
    testutil::WorkloadSeal(rec);
    const std::vector<std::vector<std::string>> tail =
        testutil::WorkloadTake(rec, qids);

    // head ++ tail == oracle, batch for batch: no lost, duplicated, or
    // reordered emission anywhere in the matrix.
    for (size_t q = 0; q < oracle.size(); ++q) {
      SCOPED_TRACE("query " + std::to_string(q));
      std::vector<std::string> stitched = head[q];
      stitched.insert(stitched.end(), tail[q].begin(), tail[q].end());
      EXPECT_EQ(stitched, oracle[q]);
    }
    testutil::RemoveDirRecursive(dir);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Modes, RecoveryDifferential,
    ::testing::Values(ExecMode::kIncremental, ExecMode::kFullReeval),
    [](const ::testing::TestParamInfo<ExecMode>& info) {
      return std::string(ExecModeName(info.param));
    });

}  // namespace
}  // namespace dc
