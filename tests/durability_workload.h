// Copyright 2026 The DataCell Authors.
//
// The shared durability workload: one deterministic row tape over two
// streams, five continuous queries spanning every recovery-relevant shape
// (tier-P shared-node pair, ROWS ordinal anchoring, empty-window scalar,
// stream-stream delta join), and feed/resume helpers whose per-stream low
// marks let a recovered engine continue exactly where WAL replay left its
// baskets. Used by recovery_test.cc (crash-point enumeration) and
// wal_fuzz_test.cc (torn-file fuzzing) against the same oracle protocol.

#ifndef DATACELL_TESTS_DURABILITY_WORKLOAD_H_
#define DATACELL_TESTS_DURABILITY_WORKLOAD_H_

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "storage/wal.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace dc {
namespace testutil {

struct WRow {
  int64_t ts_us;
  int64_t g;
  int64_t v;
  int64_t w16;  // w = w16 / 16.0, dyadic so replay round-trips exactly
};

inline std::vector<WRow> WorkloadRows(int n, uint64_t seed = 20260809) {
  Rng rng(seed);
  std::vector<WRow> rows;
  int64_t ts_sec = 0;
  for (int i = 0; i < n; ++i) {
    ts_sec += rng.UniformInt(0, 3) / 2;  // 0 or 1 s per row
    rows.push_back(WRow{ts_sec * kMicrosPerSecond, rng.UniformInt(0, 5),
                        rng.UniformInt(-50, 50), rng.UniformInt(0, 160)});
  }
  return rows;
}

inline EngineOptions DurableSyncOptions(const std::string& dir,
                                        storage::WalEnv* env,
                                        storage::FsyncPolicy fsync,
                                        int fsync_interval = 4) {
  EngineOptions o = SyncOptions();
  o.durability.dir = dir;
  o.durability.env = env;
  o.durability.fsync = fsync;
  o.durability.fsync_interval_batches = fsync_interval;
  return o;
}

inline void WorkloadDdl(Engine& e) {
  ASSERT_TRUE(
      e.Execute("CREATE STREAM s (ts timestamp, g int, v int, w double)")
          .ok());
  ASSERT_TRUE(e.Execute("CREATE STREAM r (rts timestamp, kr int, y int)").ok());
}

inline std::vector<std::string> WorkloadQueries() {
  return {
      // Tier-P pair: same fragment prefix, different HAVING tails — one
      // shared window node whose origin must survive recovery.
      "SELECT g, count(*), sum(v), avg(w) FROM s "
      "[RANGE 4 SECONDS SLIDE 2 SECONDS] "
      "GROUP BY g HAVING count(*) > 0 ORDER BY g",
      "SELECT g, count(*), sum(v), avg(w) FROM s "
      "[RANGE 4 SECONDS SLIDE 2 SECONDS] "
      "GROUP BY g HAVING count(*) > 1 ORDER BY g",
      // ROWS geometry: origins are ordinal row seqs, not timestamps.
      "SELECT g, count(*), sum(v) FROM s [ROWS 8 SLIDE 4] "
      "GROUP BY g ORDER BY g",
      // Narrow scalar window: guarantees empty (n == 0) emissions, whose
      // COUNT-0/NULL convention must survive a kill-and-recover.
      "SELECT count(*), sum(v), max(v) FROM s "
      "[RANGE 2 SECONDS SLIDE 2 SECONDS]",
      // Stream-stream delta join: RollingJoinIndex is rebuilt by replay.
      "SELECT count(*), sum(v), sum(y) FROM s "
      "[RANGE 4 SECONDS SLIDE 2 SECONDS] JOIN "
      "r [RANGE 4 SECONDS SLIDE 2 SECONDS] ON g = kr",
  };
}

inline std::vector<int> WorkloadSubmit(Engine& e) {
  std::vector<int> qids;
  for (const std::string& sql : WorkloadQueries()) {
    auto q = e.SubmitContinuous(sql, WithMode(ExecMode::kIncremental));
    EXPECT_TRUE(q.ok()) << q.status().ToString() << "\nsql: " << sql;
    qids.push_back(q.ok() ? *q : -1);
  }
  return qids;
}

/// Feeds tape rows [*, hi): stream s from row lo_s, stream r from lo_r.
/// A fresh run passes lo_s == lo_r == 0; a recovered run passes each
/// basket's replayed HighSeq so the tape continues without gap or dup.
/// Heartbeats re-fire on their original schedule (watermarks are
/// monotone, so re-sending an already-replayed heartbeat is a no-op).
inline void WorkloadFeed(Engine& e, const std::vector<WRow>& rows,
                         uint64_t lo_s, uint64_t lo_r, size_t hi) {
  const size_t lo = std::min(static_cast<size_t>(std::min(lo_s, lo_r)), hi);
  for (size_t i = lo; i < hi; ++i) {
    if (i >= lo_s) {
      ASSERT_TRUE(
          e.PushRow("s", {Value::Ts(rows[i].ts_us), Value::I64(rows[i].g),
                          Value::I64(rows[i].v),
                          Value::F64(static_cast<double>(rows[i].w16) / 16.0)})
              .ok());
    }
    if (i >= lo_r) {
      ASSERT_TRUE(e.PushRow("r", {Value::Ts(rows[i].ts_us),
                                  Value::I64(rows[i].v % 5),
                                  Value::I64(rows[i].w16)})
                      .ok());
    }
    if (i % 10 == 9) {
      ASSERT_TRUE(e.Heartbeat("s", rows[i].ts_us).ok());
      ASSERT_TRUE(e.Heartbeat("r", rows[i].ts_us).ok());
    }
    e.Pump();
  }
}

inline void WorkloadSeal(Engine& e) {
  ASSERT_TRUE(e.SealStream("s").ok());
  ASSERT_TRUE(e.SealStream("r").ok());
  e.Pump();
}

/// Drains every query's buffered emissions as comparable strings
/// (EmissionStrings keeps zero-row emissions as entries, so n == 0
/// ordinals participate in the suffix comparison).
inline std::vector<std::vector<std::string>> WorkloadTake(
    Engine& e, const std::vector<int>& qids) {
  std::vector<std::vector<std::string>> out;
  for (int q : qids) {
    auto r = e.TakeResults(q);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    out.push_back(r.ok() ? EmissionStrings(*r) : std::vector<std::string>{});
  }
  return out;
}

/// True iff `got` is a contiguous suffix of `want`.
inline ::testing::AssertionResult IsSuffixOf(
    const std::vector<std::string>& got, const std::vector<std::string>& want) {
  if (got.size() > want.size()) {
    return ::testing::AssertionFailure()
           << "recovered run emitted " << got.size() << " > oracle "
           << want.size();
  }
  const size_t skip = want.size() - got.size();
  for (size_t i = 0; i < got.size(); ++i) {
    if (got[i] != want[skip + i]) {
      return ::testing::AssertionFailure()
             << "emission " << i << " (oracle " << skip + i
             << ") diverges:\n got: " << got[i]
             << "\nwant: " << want[skip + i];
    }
  }
  return ::testing::AssertionSuccess();
}

}  // namespace testutil
}  // namespace dc

#endif  // DATACELL_TESTS_DURABILITY_WORKLOAD_H_
