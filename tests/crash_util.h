// Copyright 2026 The DataCell Authors.
//
// Deterministic crash-point injection for the durability layer
// (docs/DURABILITY.md). CrashEnv is a WalEnv whose files buffer every
// append and persist to the real filesystem only on Sync (and on a clean
// Close) — the power-loss model: at the armed trip point the environment
// goes dead, unsynced buffers vanish, and every later operation is
// swallowed silently while the engine keeps running none the wiser.
// Recovery then reads the REAL files (ReadWalFile / LoadSnapshot bypass
// the env by design), so a test sees exactly what a restarted process
// would.
//
// Protocol: run the workload once unarmed and read OpCount() == N; then
// for every k in [0, N) and every Style, rerun armed with ArmTrip(k, ...),
// destroy the engine, recover on a fresh engine with the default env, and
// compare against the uninterrupted oracle. Pre-trip op sequences are
// identical across runs (the engine is deterministic in sync mode), so k
// indexes a well-defined crash point: before an append, between an append
// and its fsync, mid-snapshot-rename, after-snapshot-before-truncate, ...

#ifndef DATACELL_TESTS_CRASH_UTIL_H_
#define DATACELL_TESTS_CRASH_UTIL_H_

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>

#include <gtest/gtest.h>

#include "storage/wal.h"
#include "util/random.h"

namespace dc {
namespace testutil {

/// A crash-point injection environment. Thread-safe (hooks run under the
/// basket lock, checkpoints under dur_mu_); uses a plain std::mutex so it
/// stays invisible to the lock-rank validator, and never calls back into
/// engine code while holding it.
class CrashEnv : public storage::WalEnv {
 public:
  enum class Style {
    kDropTail,  // the tripped operation (and everything after) is lost whole
    kTorn,      // a Sync trip persists a seed-chosen prefix of the buffer
  };

  CrashEnv() = default;

  /// Arms the trip: the `trip_at`-th counted operation (0-based) dies.
  /// Call before handing the env to an Engine. trip_at < 0 disarms
  /// (counting mode).
  void ArmTrip(int64_t trip_at, Style style, uint64_t torn_seed) {
    std::lock_guard<std::mutex> l(mu_);
    trip_at_ = trip_at;
    style_ = style;
    torn_seed_ = torn_seed;
  }

  /// Counted operations so far (Open/Append/Sync/Close/Rename/Truncate/
  /// Remove). After an unarmed run this is N, the crash-point count.
  int64_t OpCount() const {
    std::lock_guard<std::mutex> l(mu_);
    return op_count_;
  }

  /// True once the armed trip actually fired.
  bool tripped() const {
    std::lock_guard<std::mutex> l(mu_);
    return dead_;
  }

  Result<std::unique_ptr<storage::WalFile>> Open(const std::string& path,
                                                 bool truncate) override {
    if (NextOp(/*op=*/nullptr) != Action::kExecute) {
      return {std::unique_ptr<storage::WalFile>(new File(this, path))};
    }
    if (truncate) {
      const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
      if (fd < 0) return Status::Internal("CrashEnv: open " + path);
      ::close(fd);
    }
    return {std::unique_ptr<storage::WalFile>(new File(this, path))};
  }

  Status Rename(const std::string& from, const std::string& to) override {
    if (NextOp(nullptr) != Action::kExecute) return Status::OK();
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return Status::Internal("CrashEnv: rename " + from + " -> " + to);
    }
    return Status::OK();
  }

  Status RemoveFile(const std::string& path) override {
    if (NextOp(nullptr) != Action::kExecute) return Status::OK();
    ::unlink(path.c_str());
    return Status::OK();
  }

  /// Directory fsync is a counted crash point like any other op. (The
  /// env executes renames eagerly, so it does not model losing an
  /// un-SyncDir'd rename — the op is counted so the enumeration still
  /// kills before/at/after it.)
  Status SyncDir(const std::string& path) override {
    if (NextOp(nullptr) != Action::kExecute) return Status::OK();
    return storage::WalEnv::Default()->SyncDir(path);
  }

  Status TruncateFile(const std::string& path, uint64_t len) override {
    if (NextOp(nullptr) != Action::kExecute) return Status::OK();
    if (::truncate(path.c_str(), static_cast<off_t>(len)) != 0) {
      return Status::Internal("CrashEnv: truncate " + path);
    }
    return Status::OK();
  }

  bool FileExists(const std::string& path) override {
    return ::access(path.c_str(), F_OK) == 0;  // not a counted op
  }

  Status CreateDirs(const std::string& path) override {
    return storage::WalEnv::Default()->CreateDirs(path);  // not counted
  }

 private:
  enum class Action { kExecute, kSwallow, kTear };

  /// Buffered file: appends accumulate in `pending_` and reach the real
  /// file only when a Sync (or clean Close) executes. A trip or dead env
  /// loses the buffer — exactly what a power cut does to the page cache.
  class File : public storage::WalFile {
   public:
    File(CrashEnv* env, std::string path)
        : env_(env), path_(std::move(path)) {}

    Status Append(std::string_view data) override {
      if (env_->NextOp(nullptr) != Action::kExecute) return Status::OK();
      pending_.append(data.data(), data.size());
      return Status::OK();
    }

    Status Sync() override { return Flush(/*syncable=*/true); }
    Status Close() override { return Flush(/*syncable=*/false); }

   private:
    Status Flush(bool syncable) {
      int64_t op = 0;
      switch (env_->NextOp(&op)) {
        case Action::kExecute:
          PersistPrefix(pending_.size());
          break;
        case Action::kTear:
          if (syncable) {
            // Seed-and-op-derived torn length in [0, |pending|]: zero
            // models "fsync never reached the platter", full models
            // "data hit disk, the ack did not".
            Rng rng(env_->torn_seed_ ^
                    (0x9e3779b97f4a7c15ull * static_cast<uint64_t>(op + 1)));
            PersistPrefix(static_cast<size_t>(
                rng.UniformInt(0, static_cast<int64_t>(pending_.size()))));
          }
          break;
        case Action::kSwallow:
          break;  // buffer lost
      }
      pending_.clear();
      return Status::OK();
    }

    void PersistPrefix(size_t n) {
      if (n == 0) return;
      const int fd = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND,
                            0644);
      if (fd < 0) {
        ADD_FAILURE() << "CrashEnv: cannot persist to " << path_;
        return;
      }
      size_t off = 0;
      while (off < n) {
        const ssize_t w = ::write(fd, pending_.data() + off, n - off);
        if (w <= 0) {
          ADD_FAILURE() << "CrashEnv: short write to " << path_;
          break;
        }
        off += static_cast<size_t>(w);
      }
      ::close(fd);
    }

    CrashEnv* const env_;
    const std::string path_;
    std::string pending_;
  };

  /// Counts one operation and decides its fate. `op_out` (may be null)
  /// receives the operation's index, for torn-length derivation.
  Action NextOp(int64_t* op_out) {
    std::lock_guard<std::mutex> l(mu_);
    const int64_t k = op_count_++;
    if (op_out != nullptr) *op_out = k;
    if (dead_) return Action::kSwallow;
    if (trip_at_ >= 0 && k == trip_at_) {
      dead_ = true;
      return style_ == Style::kTorn ? Action::kTear : Action::kSwallow;
    }
    return Action::kExecute;
  }

  mutable std::mutex mu_;
  int64_t op_count_ = 0;
  int64_t trip_at_ = -1;
  Style style_ = Style::kDropTail;
  uint64_t torn_seed_ = 0;
  bool dead_ = false;
};

/// Fresh private directory under the test temp root.
inline std::string MakeTempDir(const char* tag) {
  std::string tmpl = ::testing::TempDir() + "dc_" + tag + "_XXXXXX";
  char* made = ::mkdtemp(tmpl.data());
  EXPECT_NE(made, nullptr) << "mkdtemp " << tmpl;
  return tmpl;
}

inline void RemoveDirRecursive(const std::string& dir) {
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

/// Byte-identical copy of a durability directory (for fuzzing many
/// corruptions of one pristine state).
inline void CopyDir(const std::string& from, const std::string& to) {
  std::error_code ec;
  std::filesystem::copy(from, to,
                        std::filesystem::copy_options::recursive |
                            std::filesystem::copy_options::overwrite_existing,
                        ec);
  EXPECT_FALSE(ec) << "copy " << from << " -> " << to << ": " << ec.message();
}

}  // namespace testutil
}  // namespace dc

#endif  // DATACELL_TESTS_CRASH_UTIL_H_
