// Unit tests for baskets (multi-reader consumption, dropping, watermarks,
// batch boundaries) and the window-boundary math.

#include <gtest/gtest.h>

#include "core/basket.h"
#include "core/window.h"
#include "tests/test_util.h"

namespace dc {
namespace {

using testutil::TsI64Schema;

TEST(BasketTest, AppendAndRead) {
  Basket b("s", TsI64Schema(), 0);
  ASSERT_TRUE(b.AppendRow({Value::Ts(10), Value::I64(1)}).ok());
  ASSERT_TRUE(b.AppendRow({Value::Ts(20), Value::I64(2)}).ok());
  EXPECT_EQ(b.HighSeq(), 2u);
  BasketView view = b.Read(0);
  EXPECT_EQ(view.rows, 2u);
  EXPECT_EQ(view.cols[1]->I64Data()[1], 2);
  EXPECT_EQ(b.EventWatermark(), 20);
}

TEST(BasketTest, TypeAndArityChecks) {
  Basket b("s", TsI64Schema(), 0);
  EXPECT_FALSE(b.Append({Bat::MakeI64({1})}).ok());  // wrong arity
  EXPECT_FALSE(
      b.Append({Bat::MakeI64({1}), Bat::MakeI64({1})}).ok());  // ts type
  EXPECT_FALSE(
      b.Append({Bat::MakeTs({1, 2}), Bat::MakeI64({1})}).ok());  // ragged
}

TEST(BasketTest, OutOfOrderTimestampsClamped) {
  Basket b("s", TsI64Schema(), 0);
  ASSERT_TRUE(b.AppendRow({Value::Ts(100), Value::I64(1)}).ok());
  ASSERT_TRUE(b.AppendRow({Value::Ts(50), Value::I64(2)}).ok());
  BasketView view = b.Read(0);
  EXPECT_EQ(view.cols[0]->I64Data()[1], 100);  // clamped
  EXPECT_EQ(b.EventWatermark(), 100);
}

TEST(BasketTest, ReadersGateDropping) {
  Basket b("s", TsI64Schema(), 0);
  const int r1 = b.RegisterReader(true);
  const int r2 = b.RegisterReader(true);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(b.AppendRow({Value::Ts(i), Value::I64(i)}).ok());
  }
  b.AdvanceReader(r1, 7);
  EXPECT_EQ(b.DropHorizon(), 0u);  // r2 still at 0
  b.AdvanceReader(r2, 4);
  EXPECT_EQ(b.DropHorizon(), 4u);  // min cursor
  EXPECT_EQ(b.Stats().resident_rows, 6u);
  EXPECT_EQ(b.Stats().dropped_total, 4u);
  // Reading below the horizon clamps up.
  BasketView view = b.Read(0);
  EXPECT_EQ(view.first_seq, 4u);
  EXPECT_EQ(view.cols[1]->I64Data()[0], 4);
  // Unregistering the slow reader lets r1's cursor take effect.
  b.UnregisterReader(r2);
  EXPECT_EQ(b.DropHorizon(), 7u);
}

TEST(BasketTest, NoReadersMeansNoDropping) {
  Basket b("s", TsI64Schema(), 0);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(b.AppendRow({Value::Ts(i), Value::I64(i)}).ok());
  }
  EXPECT_EQ(b.DropHorizon(), 0u);
  EXPECT_EQ(b.Stats().resident_rows, 5u);
}

TEST(BasketTest, ReaderFromNowVsStart) {
  Basket b("s", TsI64Schema(), 0);
  ASSERT_TRUE(b.AppendRow({Value::Ts(1), Value::I64(1)}).ok());
  const int from_start = b.RegisterReader(true);
  const int from_now = b.RegisterReader(false);
  EXPECT_EQ(b.ReaderCursor(from_start), 0u);
  EXPECT_EQ(b.ReaderCursor(from_now), 1u);
}

TEST(BasketTest, SeqRangeForTs) {
  Basket b("s", TsI64Schema(), 0);
  for (int64_t ts : {10, 20, 20, 30, 40}) {
    ASSERT_TRUE(b.AppendRow({Value::Ts(ts), Value::I64(0)}).ok());
  }
  auto range = b.SeqRangeForTs(20, 40);
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(range->first, 1u);
  EXPECT_EQ(range->second, 4u);
  // After dropping, sequence numbers stay absolute.
  const int r = b.RegisterReader(true);
  b.AdvanceReader(r, 2);
  range = b.SeqRangeForTs(20, 40);
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(range->first, 2u);  // first resident row with ts >= 20
  EXPECT_EQ(range->second, 4u);
}

TEST(BasketTest, BatchBoundariesSurviveUpToDrop) {
  Basket b("s", TsI64Schema(), 0);
  ASSERT_TRUE(b.Append({Bat::MakeTs({1, 2}), Bat::MakeI64({1, 2})}).ok());
  ASSERT_TRUE(b.Append({Bat::MakeTs({3}), Bat::MakeI64({3})}).ok());
  EXPECT_EQ(b.BatchBoundariesAfter(0), (std::vector<uint64_t>{2, 3}));
  EXPECT_EQ(b.BatchBoundariesAfter(2), (std::vector<uint64_t>{3}));
  const int r = b.RegisterReader(true);
  b.AdvanceReader(r, 2);
  EXPECT_EQ(b.BatchBoundariesAfter(0), (std::vector<uint64_t>{3}));
}

TEST(BasketTest, HeartbeatAndSeal) {
  Basket b("s", TsI64Schema(), 0);
  b.Heartbeat(500);
  EXPECT_EQ(b.EventWatermark(), 500);
  EXPECT_FALSE(b.sealed());
  b.Seal();
  EXPECT_TRUE(b.sealed());
}

TEST(BasketTest, ListenersFire) {
  Basket b("s", TsI64Schema(), 0);
  int pulses = 0;
  b.AddListener([&] { ++pulses; });
  ASSERT_TRUE(b.AppendRow({Value::Ts(1), Value::I64(1)}).ok());
  b.Heartbeat(2);
  b.Seal();
  EXPECT_EQ(pulses, 3);
}

// --- WindowMath -------------------------------------------------------------

TEST(WindowMathTest, RowsWindows) {
  plan::WindowSpec spec;
  spec.rows = true;
  spec.size = 10;
  spec.slide = 3;
  WindowMath wm(spec);
  EXPECT_FALSE(wm.Divisible());
  EXPECT_EQ(wm.RowsWindowStart(0), 0);
  EXPECT_EQ(wm.RowsWindowEnd(0), 10);
  EXPECT_EQ(wm.RowsWindowStart(2), 6);
  EXPECT_TRUE(wm.RowsReady(0, 10));
  EXPECT_FALSE(wm.RowsReady(1, 12));
  EXPECT_TRUE(wm.RowsReady(1, 13));
}

TEST(WindowMathTest, BasicWindowsForRows) {
  plan::WindowSpec spec;
  spec.rows = true;
  spec.size = 12;
  spec.slide = 4;
  WindowMath wm(spec);
  ASSERT_TRUE(wm.Divisible());
  EXPECT_EQ(wm.NumBasicWindows(), 3);
  auto [first, last] = wm.BasicWindowsForRows(2);
  EXPECT_EQ(first, 2);
  EXPECT_EQ(last, 5);
  auto [lo, hi] = wm.BasicWindowExtent(2);
  EXPECT_EQ(lo, 8);
  EXPECT_EQ(hi, 12);
}

TEST(WindowMathTest, RangeWindows) {
  plan::WindowSpec spec;
  spec.rows = false;
  spec.size = 100;
  spec.slide = 25;
  WindowMath wm(spec);
  EXPECT_EQ(wm.FirstRangeEmission(0), 1);
  EXPECT_EQ(wm.FirstRangeEmission(24), 1);
  EXPECT_EQ(wm.FirstRangeEmission(25), 2);
  EXPECT_EQ(wm.RangeBoundary(4), 100);
  auto [lo, hi] = wm.RangeExtent(4);
  EXPECT_EQ(lo, 0);
  EXPECT_EQ(hi, 100);
  EXPECT_TRUE(wm.RangeReady(4, 100));
  EXPECT_FALSE(wm.RangeReady(4, 99));
  auto [first, last] = wm.BasicWindowsForRange(4);
  EXPECT_EQ(first, 0);
  EXPECT_EQ(last, 4);
}

TEST(WindowMathTest, NegativeCoordinatesFloorCorrectly) {
  plan::WindowSpec spec;
  spec.rows = false;
  spec.size = 10;
  spec.slide = 5;
  WindowMath wm(spec);
  EXPECT_EQ(wm.BasicWindowOf(-1), -1);
  EXPECT_EQ(wm.BasicWindowOf(-5), -1);
  EXPECT_EQ(wm.BasicWindowOf(-6), -2);
  EXPECT_EQ(wm.BasicWindowOf(0), 0);
}

}  // namespace
}  // namespace dc
