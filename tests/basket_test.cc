// Unit tests for baskets (multi-reader consumption, dropping, watermarks,
// batch boundaries) and the window-boundary math.

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "core/basket.h"
#include "core/window.h"
#include "tests/test_util.h"

namespace dc {
namespace {

using testutil::TsI64Schema;

TEST(BasketTest, AppendAndRead) {
  Basket b("s", TsI64Schema(), 0);
  ASSERT_TRUE(b.AppendRow({Value::Ts(10), Value::I64(1)}).ok());
  ASSERT_TRUE(b.AppendRow({Value::Ts(20), Value::I64(2)}).ok());
  EXPECT_EQ(b.HighSeq(), 2u);
  BasketView view = b.Read(0);
  EXPECT_EQ(view.rows, 2u);
  EXPECT_EQ(view.cols[1]->I64Data()[1], 2);
  EXPECT_EQ(b.EventWatermark(), 20);
}

TEST(BasketTest, TypeAndArityChecks) {
  Basket b("s", TsI64Schema(), 0);
  EXPECT_FALSE(b.Append({Bat::MakeI64({1})}).ok());  // wrong arity
  EXPECT_FALSE(
      b.Append({Bat::MakeI64({1}), Bat::MakeI64({1})}).ok());  // ts type
  EXPECT_FALSE(
      b.Append({Bat::MakeTs({1, 2}), Bat::MakeI64({1})}).ok());  // ragged
}

TEST(BasketTest, OutOfOrderTimestampsClamped) {
  Basket b("s", TsI64Schema(), 0);
  ASSERT_TRUE(b.AppendRow({Value::Ts(100), Value::I64(1)}).ok());
  ASSERT_TRUE(b.AppendRow({Value::Ts(50), Value::I64(2)}).ok());
  BasketView view = b.Read(0);
  EXPECT_EQ(view.cols[0]->I64Data()[1], 100);  // clamped
  EXPECT_EQ(b.EventWatermark(), 100);
}

TEST(BasketTest, ReadersGateDropping) {
  Basket b("s", TsI64Schema(), 0);
  const int r1 = b.RegisterReader(true);
  const int r2 = b.RegisterReader(true);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(b.AppendRow({Value::Ts(i), Value::I64(i)}).ok());
  }
  b.AdvanceReader(r1, 7);
  EXPECT_EQ(b.DropHorizon(), 0u);  // r2 still at 0
  b.AdvanceReader(r2, 4);
  EXPECT_EQ(b.DropHorizon(), 4u);  // min cursor
  EXPECT_EQ(b.Stats().resident_rows, 6u);
  EXPECT_EQ(b.Stats().dropped_total, 4u);
  // Reading below the horizon clamps up.
  BasketView view = b.Read(0);
  EXPECT_EQ(view.first_seq, 4u);
  EXPECT_EQ(view.cols[1]->I64Data()[0], 4);
  // Unregistering the slow reader lets r1's cursor take effect.
  b.UnregisterReader(r2);
  EXPECT_EQ(b.DropHorizon(), 7u);
}

TEST(BasketTest, NoReadersMeansNoDropping) {
  Basket b("s", TsI64Schema(), 0);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(b.AppendRow({Value::Ts(i), Value::I64(i)}).ok());
  }
  EXPECT_EQ(b.DropHorizon(), 0u);
  EXPECT_EQ(b.Stats().resident_rows, 5u);
}

TEST(BasketTest, ReaderFromNowVsStart) {
  Basket b("s", TsI64Schema(), 0);
  ASSERT_TRUE(b.AppendRow({Value::Ts(1), Value::I64(1)}).ok());
  const int from_start = b.RegisterReader(true);
  const int from_now = b.RegisterReader(false);
  EXPECT_EQ(b.ReaderCursor(from_start), 0u);
  EXPECT_EQ(b.ReaderCursor(from_now), 1u);
}

TEST(BasketTest, SeqRangeForTs) {
  Basket b("s", TsI64Schema(), 0);
  for (int64_t ts : {10, 20, 20, 30, 40}) {
    ASSERT_TRUE(b.AppendRow({Value::Ts(ts), Value::I64(0)}).ok());
  }
  auto range = b.SeqRangeForTs(20, 40);
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(range->first, 1u);
  EXPECT_EQ(range->second, 4u);
  // After dropping, sequence numbers stay absolute.
  const int r = b.RegisterReader(true);
  b.AdvanceReader(r, 2);
  range = b.SeqRangeForTs(20, 40);
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(range->first, 2u);  // first resident row with ts >= 20
  EXPECT_EQ(range->second, 4u);
}

TEST(BasketTest, BatchLogSurvivesUpToDrop) {
  Basket b("s", TsI64Schema(), 0);
  ASSERT_TRUE(b.Append({Bat::MakeTs({1, 2}), Bat::MakeI64({1, 2})}).ok());
  ASSERT_TRUE(b.Append({Bat::MakeTs({3}), Bat::MakeI64({3})}).ok());
  auto batches = b.BatchesAfter(0);
  ASSERT_EQ(batches.size(), 2u);
  EXPECT_EQ(batches[0].end_seq, 2u);
  EXPECT_EQ(batches[1].end_seq, 3u);
  ASSERT_EQ(b.BatchesAfter(1).size(), 1u);
  EXPECT_EQ(b.BatchesAfter(1)[0].end_seq, 3u);
  // Entries below the drop horizon are trimmed (no tracking reader here).
  const int r = b.RegisterReader(true);
  b.AdvanceReader(r, 2);
  batches = b.BatchesAfter(0);
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].end_seq, 3u);
}

TEST(BasketTest, EmptyBatchKeepsBoundaryForTrackingReader) {
  Basket b("s", TsI64Schema(), 0);
  b.RegisterReader(/*from_start=*/true, /*track_batches=*/true);
  ASSERT_TRUE(b.Append({Bat::MakeTs({1, 2}), Bat::MakeI64({1, 2})}).ok());
  ASSERT_TRUE(
      b.Append({Bat::MakeEmpty(TypeId::kTs), Bat::MakeEmpty(TypeId::kI64)})
          .ok());
  ASSERT_TRUE(b.Append({Bat::MakeTs({3}), Bat::MakeI64({3})}).ok());
  EXPECT_EQ(b.HighSeq(), 3u);  // the empty batch added no rows
  EXPECT_EQ(b.Stats().append_batches, 3u);
  EXPECT_EQ(b.Stats().empty_batches, 1u);
  const auto batches = b.BatchesAfter(0);
  ASSERT_EQ(batches.size(), 3u);
  EXPECT_EQ(batches[1].begin_seq, 2u);
  EXPECT_EQ(batches[1].end_seq, 2u);  // zero-row boundary preserved
  EXPECT_EQ(batches[2].end_seq, 3u);
}

TEST(BasketTest, EmptyBatchNotRetainedWithoutTrackingReader) {
  // With nobody consuming the batch log, zero-row boundaries have no
  // consumer: they count in stats but are not retained, so keep-alive
  // empty appends cannot grow the log without bound.
  Basket b("s", TsI64Schema(), 0);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        b.Append({Bat::MakeEmpty(TypeId::kTs), Bat::MakeEmpty(TypeId::kI64)})
            .ok());
  }
  EXPECT_EQ(b.Stats().empty_batches, 3u);
  EXPECT_TRUE(b.BatchesAfter(0).empty());
}

TEST(BasketTest, EmptyBatchAtDropHorizonSurvivesUntilAcked) {
  Basket b("s", TsI64Schema(), 0);
  const int r = b.RegisterReader(/*from_start=*/true, /*track_batches=*/true);
  ASSERT_TRUE(b.Append({Bat::MakeTs({1, 2}), Bat::MakeI64({1, 2})}).ok());
  ASSERT_TRUE(
      b.Append({Bat::MakeEmpty(TypeId::kTs), Bat::MakeEmpty(TypeId::kI64)})
          .ok());
  ASSERT_TRUE(b.Append({Bat::MakeTs({3}), Bat::MakeI64({3})}).ok());
  // Deliver batch 0 only: rows [0,2) drop, leaving the zero-row boundary
  // sitting exactly at the drop horizon (seq 2). It must not be trimmed.
  b.AdvanceReaderBatches(r, 2, 1);
  EXPECT_EQ(b.DropHorizon(), 2u);
  auto pending = b.BatchesAfter(1);
  ASSERT_EQ(pending.size(), 2u);
  EXPECT_EQ(pending[0].ordinal, 1u);
  EXPECT_EQ(pending[0].end_seq, 2u);  // the empty boundary, still alive
  // Acking it trims it without touching the following data batch — a
  // delivered empty batch can never reappear (no double delivery).
  b.AdvanceReaderBatches(r, 2, 2);
  pending = b.BatchesAfter(0);
  ASSERT_EQ(pending.size(), 1u);
  EXPECT_EQ(pending[0].ordinal, 2u);
}

TEST(BasketTest, BoundedAppendTimesOutWhenFull) {
  BasketLimits limits;
  limits.max_rows = 4;
  Basket b("s", TsI64Schema(), 0, limits);
  const int r = b.RegisterReader(true);
  // Below the bound: admitted even though the batch overshoots it.
  ASSERT_TRUE(b.Append({Bat::MakeTs({1, 2, 3}), Bat::MakeI64({1, 2, 3})},
                       /*timeout_micros=*/0)
                  .ok());
  ASSERT_TRUE(b.Append({Bat::MakeTs({4, 5}), Bat::MakeI64({4, 5})},
                       /*timeout_micros=*/0)
                  .ok());
  EXPECT_EQ(b.Stats().resident_rows, 5u);  // cap + one in-flight batch
  // At capacity: a non-blocking append fails, a short wait times out.
  const Status st = b.Append({Bat::MakeTs({6}), Bat::MakeI64({6})},
                             /*timeout_micros=*/0);
  EXPECT_TRUE(st.IsResourceExhausted()) << st.ToString();
  EXPECT_TRUE(b.Append({Bat::MakeTs({6}), Bat::MakeI64({6})},
                       /*timeout_micros=*/2 * kMicrosPerMilli)
                  .IsResourceExhausted());
  const BasketStats stats = b.Stats();
  EXPECT_EQ(stats.capacity_rows, 4u);
  EXPECT_EQ(stats.resident_hwm_rows, 5u);
  EXPECT_GE(stats.append_stalls, 2u);
  EXPECT_GE(stats.append_timeouts, 2u);
  // Draining frees space; the append is admitted again.
  b.AdvanceReader(r, 3);
  ASSERT_TRUE(b.Append({Bat::MakeTs({6}), Bat::MakeI64({6})},
                       /*timeout_micros=*/0)
                  .ok());
  // Zero-row batches bypass the capacity gate entirely.
  ASSERT_TRUE(
      b.Append({Bat::MakeEmpty(TypeId::kTs), Bat::MakeEmpty(TypeId::kI64)},
               /*timeout_micros=*/0)
          .ok());
}

TEST(BasketTest, BlockingAppendFailsFastWithNoReaders) {
  // An unbounded wait on a reader-less basket can never be satisfied
  // (nothing frees space): Append must fail fast instead of deadlocking
  // the producer — e.g. Engine::PushRow into a stream no query consumes.
  BasketLimits limits;
  limits.max_rows = 2;
  Basket b("s", TsI64Schema(), 0, limits);
  ASSERT_TRUE(b.Append({Bat::MakeTs({1, 2}), Bat::MakeI64({1, 2})}).ok());
  const Status st = b.Append({Bat::MakeTs({3}), Bat::MakeI64({3})});
  EXPECT_TRUE(st.IsResourceExhausted()) << st.ToString();
}

TEST(BasketTest, BlockedAppendWakesWhenReaderFreesSpace) {
  BasketLimits limits;
  limits.max_rows = 2;
  Basket b("s", TsI64Schema(), 0, limits);
  const int r = b.RegisterReader(true);
  ASSERT_TRUE(b.Append({Bat::MakeTs({1, 2}), Bat::MakeI64({1, 2})}).ok());
  std::thread consumer([&] {
    // Wait for the producer to actually stall (the counter bumps before
    // the wait) so the stall assertion below can't race a loaded machine.
    while (b.Stats().append_stalls == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    b.AdvanceReader(r, 2);
  });
  // Blocks until the consumer drains, then lands without loss.
  ASSERT_TRUE(b.Append({Bat::MakeTs({3}), Bat::MakeI64({3})}).ok());
  consumer.join();
  EXPECT_EQ(b.HighSeq(), 3u);
  EXPECT_GE(b.Stats().append_stalls, 1u);
  EXPECT_EQ(b.Stats().append_timeouts, 0u);
}

TEST(BasketTest, SetLimitsWakesBlockedProducer) {
  BasketLimits limits;
  limits.max_rows = 1;
  Basket b("s", TsI64Schema(), 0, limits);
  b.RegisterReader(true);
  ASSERT_TRUE(b.Append({Bat::MakeTs({1}), Bat::MakeI64({1})}).ok());
  std::thread lifter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    b.SetLimits(BasketLimits{});  // unbounded
  });
  ASSERT_TRUE(b.Append({Bat::MakeTs({2}), Bat::MakeI64({2})}).ok());
  lifter.join();
  EXPECT_EQ(b.HighSeq(), 2u);
}

TEST(BasketTest, HeartbeatAndSeal) {
  Basket b("s", TsI64Schema(), 0);
  b.Heartbeat(500);
  EXPECT_EQ(b.EventWatermark(), 500);
  EXPECT_FALSE(b.sealed());
  b.Seal();
  EXPECT_TRUE(b.sealed());
}

TEST(BasketTest, ListenersFire) {
  Basket b("s", TsI64Schema(), 0);
  int pulses = 0;
  b.AddListener([&] { ++pulses; });
  ASSERT_TRUE(b.AppendRow({Value::Ts(1), Value::I64(1)}).ok());
  b.Heartbeat(2);
  b.Seal();
  EXPECT_EQ(pulses, 3);
}

// --- WindowMath -------------------------------------------------------------

TEST(WindowMathTest, RowsWindows) {
  plan::WindowSpec spec;
  spec.rows = true;
  spec.size = 10;
  spec.slide = 3;
  WindowMath wm(spec);
  EXPECT_FALSE(wm.Divisible());
  EXPECT_EQ(wm.RowsWindowStart(0), 0);
  EXPECT_EQ(wm.RowsWindowEnd(0), 10);
  EXPECT_EQ(wm.RowsWindowStart(2), 6);
  EXPECT_TRUE(wm.RowsReady(0, 10));
  EXPECT_FALSE(wm.RowsReady(1, 12));
  EXPECT_TRUE(wm.RowsReady(1, 13));
}

TEST(WindowMathTest, BasicWindowsForRows) {
  plan::WindowSpec spec;
  spec.rows = true;
  spec.size = 12;
  spec.slide = 4;
  WindowMath wm(spec);
  ASSERT_TRUE(wm.Divisible());
  EXPECT_EQ(wm.NumBasicWindows(), 3);
  auto [first, last] = wm.BasicWindowsForRows(2);
  EXPECT_EQ(first, 2);
  EXPECT_EQ(last, 5);
  auto [lo, hi] = wm.BasicWindowExtent(2);
  EXPECT_EQ(lo, 8);
  EXPECT_EQ(hi, 12);
}

TEST(WindowMathTest, RangeWindows) {
  plan::WindowSpec spec;
  spec.rows = false;
  spec.size = 100;
  spec.slide = 25;
  WindowMath wm(spec);
  EXPECT_EQ(wm.FirstRangeEmission(0), 1);
  EXPECT_EQ(wm.FirstRangeEmission(24), 1);
  EXPECT_EQ(wm.FirstRangeEmission(25), 2);
  EXPECT_EQ(wm.RangeBoundary(4), 100);
  auto [lo, hi] = wm.RangeExtent(4);
  EXPECT_EQ(lo, 0);
  EXPECT_EQ(hi, 100);
  EXPECT_TRUE(wm.RangeReady(4, 100));
  EXPECT_FALSE(wm.RangeReady(4, 99));
  auto [first, last] = wm.BasicWindowsForRange(4);
  EXPECT_EQ(first, 0);
  EXPECT_EQ(last, 4);
}

TEST(WindowMathTest, NegativeCoordinatesFloorCorrectly) {
  plan::WindowSpec spec;
  spec.rows = false;
  spec.size = 10;
  spec.slide = 5;
  WindowMath wm(spec);
  EXPECT_EQ(wm.BasicWindowOf(-1), -1);
  EXPECT_EQ(wm.BasicWindowOf(-5), -1);
  EXPECT_EQ(wm.BasicWindowOf(-6), -2);
  EXPECT_EQ(wm.BasicWindowOf(0), 0);
}

}  // namespace
}  // namespace dc
