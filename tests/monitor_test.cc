// Tests for the monitoring layer: DOT/text network rendering, tuple
// locations, and the analysis pane's series/aggregation/CSV.

#include <gtest/gtest.h>

#include "monitor/analysis.h"
#include "monitor/network.h"
#include "tests/test_util.h"
#include "util/string_util.h"

namespace dc::monitor {
namespace {

class MonitorTest : public ::testing::Test {
 protected:
  MonitorTest() : engine_(testutil::SyncOptions()) {
    DC_CHECK_OK(engine_.Execute(
        "CREATE STREAM s (ts timestamp, v int);"
        "CREATE TABLE dim (v int, label string);"
        "INSERT INTO dim VALUES (1, 'one')"));
    Engine::ContinuousOptions o1 = testutil::WithMode(ExecMode::kIncremental);
    o1.name = "agg";
    q1_ = *engine_.SubmitContinuous(
        "SELECT count(*) FROM s [RANGE 2 SECONDS SLIDE 1 SECONDS]", o1);
    Engine::ContinuousOptions o2 = testutil::WithMode(ExecMode::kFullReeval);
    o2.name = "joiner";
    q2_ = *engine_.SubmitContinuous(
        "SELECT label FROM s JOIN dim ON s.v = dim.v", o2);
    for (int i = 0; i < 5; ++i) {
      DC_CHECK_OK(engine_.PushRow(
          "s", {Value::Ts(i * kMicrosPerSecond), Value::I64(i % 2)}));
    }
    engine_.Pump();
  }

  Engine engine_;
  int q1_ = 0, q2_ = 0;
};

TEST_F(MonitorTest, DotExportContainsAllComponents) {
  const std::string dot = ExportDot(engine_);
  EXPECT_NE(dot.find("digraph datacell"), std::string::npos);
  EXPECT_NE(dot.find("basket:s"), std::string::npos);
  EXPECT_NE(dot.find("recv:s"), std::string::npos);
  EXPECT_NE(dot.find("table:dim"), std::string::npos);
  EXPECT_NE(dot.find("agg"), std::string::npos);
  EXPECT_NE(dot.find("joiner"), std::string::npos);
  EXPECT_NE(dot.find("emit:"), std::string::npos);
  // Edges: basket feeds both factories.
  EXPECT_NE(dot.find("\"basket:s\" -> \"factory:"), std::string::npos);
}

TEST_F(MonitorTest, DotReflectsPausedState) {
  DC_CHECK_OK(engine_.PauseQuery(q1_));
  const std::string dot = ExportDot(engine_);
  EXPECT_NE(dot.find("(paused)"), std::string::npos);
}

TEST_F(MonitorTest, NetworkTableListsQueries) {
  const std::string table = RenderNetworkTable(engine_);
  EXPECT_NE(table.find("agg"), std::string::npos);
  EXPECT_NE(table.find("incremental"), std::string::npos);
  EXPECT_NE(table.find("joiner"), std::string::npos);
  EXPECT_NE(table.find("s+dim"), std::string::npos);
}

TEST_F(MonitorTest, TupleLocationsShowResidency) {
  const std::string loc = RenderTupleLocations(engine_);
  EXPECT_NE(loc.find("baskets:"), std::string::npos);
  EXPECT_NE(loc.find("appended=5"), std::string::npos);
  EXPECT_NE(loc.find("factories"), std::string::npos);
}

TEST_F(MonitorTest, AnalysisPaneSeriesAndAggregates) {
  AnalysisPane pane;
  pane.Sample(engine_);
  for (int i = 5; i < 10; ++i) {
    DC_CHECK_OK(engine_.PushRow(
        "s", {Value::Ts(i * kMicrosPerSecond), Value::I64(i % 2)}));
  }
  engine_.Pump();
  pane.Sample(engine_);

  EXPECT_FALSE(pane.MetricNames().empty());
  auto agg = pane.Aggregate("stream.s.resident_rows");
  ASSERT_TRUE(agg.ok()) << agg.status().ToString();
  EXPECT_EQ(agg->samples, 2u);
  auto series = pane.Series("query.agg.emissions");
  ASSERT_TRUE(series.ok());
  EXPECT_EQ(series->size(), 2u);
  EXPECT_GE((*series)[1].value, (*series)[0].value);
  EXPECT_FALSE(pane.Aggregate("no.such.metric").ok());
}

TEST_F(MonitorTest, AnalysisPaneCsvWellFormed) {
  AnalysisPane pane;
  pane.Sample(engine_);
  pane.Sample(engine_);
  const std::string csv = pane.ToCsv();
  ASSERT_FALSE(csv.empty());
  // Header plus two sample rows.
  const size_t lines = std::count(csv.begin(), csv.end(), '\n');
  EXPECT_EQ(lines, 3u);
  EXPECT_EQ(csv.rfind("t_us,", 0), 0u);
  // Every row has the same number of separators as the header.
  const size_t header_commas =
      std::count(csv.begin(), csv.begin() + csv.find('\n'), ',');
  size_t pos = csv.find('\n') + 1;
  while (pos < csv.size()) {
    const size_t end = csv.find('\n', pos);
    EXPECT_EQ(static_cast<size_t>(std::count(csv.begin() + pos,
                                             csv.begin() + end, ',')),
              header_commas);
    pos = end + 1;
  }
}

TEST_F(MonitorTest, SummaryRendersAllMetrics) {
  AnalysisPane pane;
  pane.Sample(engine_);
  const std::string summary = pane.RenderSummary();
  EXPECT_NE(summary.find("metric"), std::string::npos);
  EXPECT_NE(summary.find("stream.s.resident_rows"), std::string::npos);
}

TEST_F(MonitorTest, AnalysisPaneLatencyPercentiles) {
  AnalysisPane pane;
  pane.Sample(engine_);
  // The fixture already pumped emissions through both queries, so their
  // end-to-end latency histograms have points and the pane exposes
  // percentile series for them.
  for (const char* metric :
       {"query.agg.latency_p50_us", "query.agg.latency_p95_us",
        "query.agg.latency_p99_us"}) {
    auto agg = pane.Aggregate(metric);
    ASSERT_TRUE(agg.ok()) << metric << ": " << agg.status().ToString();
    EXPECT_GT(agg->last, 0.0) << metric;
  }
  // Sampled points are mirrored into the engine's metrics registry as
  // gauges, next to the per-query latency histograms themselves.
  const std::string json = engine_.metrics().ToJson();
  EXPECT_NE(json.find("query.agg.latency_p99_us"), std::string::npos);
  EXPECT_NE(json.find("\"query.agg.latency_us\":{"), std::string::npos);
}

TEST_F(MonitorTest, RateSeriesHasNoSpuriousFirstSamplePoint) {
  AnalysisPane pane;
  pane.Sample(engine_);
  // First sample: no baseline yet, so no rate point may be recorded —
  // a fabricated 0 would poison min/mean aggregates of the series.
  EXPECT_FALSE(pane.Series("stream.s.rate_rows_per_s").ok());
  for (int i = 5; i < 10; ++i) {
    DC_CHECK_OK(engine_.PushRow(
        "s", {Value::Ts(i * kMicrosPerSecond), Value::I64(i % 2)}));
  }
  engine_.Pump();
  pane.Sample(engine_);
  auto series = pane.Series("stream.s.rate_rows_per_s");
  ASSERT_TRUE(series.ok());
  ASSERT_EQ(series->size(), 1u);
  EXPECT_GT((*series)[0].value, 0.0);
}

class SharedNetworkTest : public ::testing::Test {
 protected:
  SharedNetworkTest() : engine_(testutil::SyncOptions()) {
    DC_CHECK_OK(engine_.Execute("CREATE STREAM s (ts timestamp, v int)"));
    // Two identical submissions: tier-F aliases one factory. A third with
    // a divisible window shares the stream's window node (tier P).
    Engine::ContinuousOptions o = testutil::WithMode(ExecMode::kIncremental);
    o.name = "a";
    qa_ = *engine_.SubmitContinuous(
        "SELECT sum(v) FROM s [RANGE 2 SECONDS SLIDE 1 SECONDS]", o);
    o.name = "b";
    qb_ = *engine_.SubmitContinuous(
        "SELECT sum(v) FROM s [RANGE 2 SECONDS SLIDE 1 SECONDS]", o);
    o.name = "c";
    qc_ = *engine_.SubmitContinuous(
        "SELECT count(*) FROM s [RANGE 4 SECONDS SLIDE 1 SECONDS]", o);
    for (int i = 0; i < 6; ++i) {
      DC_CHECK_OK(engine_.PushRow(
          "s", {Value::Ts(i * kMicrosPerSecond), Value::I64(i)}));
    }
    engine_.Pump();
  }

  Engine engine_;
  int qa_ = 0, qb_ = 0, qc_ = 0;
};

TEST_F(SharedNetworkTest, DotRendersSharedNodeAndAliasEdges) {
  const std::string dot = ExportDot(engine_);
  // The shared window node appears as its own box, fed by the basket.
  EXPECT_NE(dot.find("shared window s#"), std::string::npos);
  EXPECT_NE(dot.find("\"basket:s\" -> \"node:s#"), std::string::npos);
  // Merge tails consume partials from the node, not the basket directly.
  EXPECT_NE(dot.find("[label=\"partials\"]"), std::string::npos);
  EXPECT_EQ(dot.find("\"basket:s\" -> \"factory:"), std::string::npos);
  // a and b alias ONE factory box listing both names...
  EXPECT_NE(dot.find("a | b"), std::string::npos);
  EXPECT_NE(dot.find("shared x2"), std::string::npos);
  EXPECT_EQ(dot.find(StrFormat("\"factory:%d\"", qb_)), std::string::npos);
  // ...and the alias gets its own emitter off the shared output basket.
  EXPECT_NE(dot.find(StrFormat("\"out:%d\" -> \"emit:%d\""
                               " [style=dashed, label=\"alias\"]",
                               qa_, qb_)),
            std::string::npos);
  // The non-aliased query keeps a plain factory box.
  EXPECT_NE(dot.find(StrFormat("\"factory:%d\"", qc_)), std::string::npos);
}

TEST_F(SharedNetworkTest, NetworkTableShowsSharing) {
  const std::string table = RenderNetworkTable(engine_);
  EXPECT_NE(table.find("sharing"), std::string::npos);
  // Every node-backed query names its shared window node in the table.
  EXPECT_NE(table.find("node s#"), std::string::npos);
}

TEST(FactoryAliasTest, NonDivisibleWindowAliasesFactoryOnly) {
  // A window the shared-node grid cannot serve (size % slide != 0) still
  // dedups at tier F when submitted twice: one factory, "factory x2" in
  // the table, and alias grouping in the DOT export.
  Engine engine(testutil::SyncOptions());
  DC_CHECK_OK(engine.Execute("CREATE STREAM s (ts timestamp, v int)"));
  Engine::ContinuousOptions o = testutil::WithMode(ExecMode::kIncremental);
  o.name = "d";
  const int qd = *engine.SubmitContinuous(
      "SELECT sum(v) FROM s [RANGE 3 SECONDS SLIDE 2 SECONDS]", o);
  o.name = "e";
  const int qe = *engine.SubmitContinuous(
      "SELECT sum(v) FROM s [RANGE 3 SECONDS SLIDE 2 SECONDS]", o);
  const std::string table = RenderNetworkTable(engine);
  EXPECT_NE(table.find("factory x2"), std::string::npos);
  const std::string dot = ExportDot(engine);
  EXPECT_NE(dot.find("d | e"), std::string::npos);
  EXPECT_NE(dot.find("\"basket:s\" -> \"factory:"), std::string::npos);
  EXPECT_EQ(dot.find(StrFormat("\"factory:%d\"", qe)), std::string::npos);
  EXPECT_NE(dot.find(StrFormat("\"out:%d\" -> \"emit:%d\"", qd, qe)),
            std::string::npos);
}

}  // namespace
}  // namespace dc::monitor
