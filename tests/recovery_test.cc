// Copyright 2026 The DataCell Authors.
//
// Durability proof (docs/DURABILITY.md): kill-and-recover at EVERY
// filesystem operation the durability layer performs — mid-WAL-record,
// between an append and its fsync, mid-snapshot-rename, after a snapshot
// lands but before the WALs truncate — then recover on the real files,
// resume the deterministic row tape, and compare every query's emission
// sequence against an uninterrupted oracle:
//
//   recovered emissions  ==  a contiguous SUFFIX of the oracle's, and
//   |oracle| - |recovered|  <=  emissions already delivered at the last
//                               checkpoint that STARTED before the trip
//                               (0 when no checkpoint had started).
//
// The suffix half proves no divergence and no duplication; the bound half
// proves nothing is lost beyond what a checkpoint had durably handed to
// sinks before the crash. Storage-level unit tests (framing, torn-tail
// scans, snapshot prev-fallback), an fsync-policy sweep, and a threaded
// background-checkpointer round-trip ride along.

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "storage/snapshot.h"
#include "storage/wal.h"
#include "tests/crash_util.h"
#include "tests/durability_workload.h"
#include "tests/test_util.h"
#include "util/string_util.h"

// Full crash-point enumeration is cheap in a normal build but 10-20x
// slower under sanitizers; stride the kill points there (coverage still
// spans the whole op range, offset per style so the two styles interleave).
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define DC_SANITIZED_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define DC_SANITIZED_BUILD 1
#endif
#endif

namespace dc {
namespace {

using storage::FsyncPolicy;
using testutil::CrashEnv;
using testutil::DurableSyncOptions;
using testutil::IsSuffixOf;
using testutil::MakeTempDir;
using testutil::RemoveDirRecursive;
using testutil::WorkloadDdl;
using testutil::WorkloadFeed;
using testutil::WorkloadQueries;
using testutil::WorkloadRows;
using testutil::WorkloadSeal;
using testutil::WorkloadSubmit;
using testutil::WorkloadTake;
using testutil::WRow;

// --------------------------------------------------------------------------
// Storage-level unit coverage.
// --------------------------------------------------------------------------

TEST(WalCodec, RecordsRoundTripThroughWriterAndScan) {
  const std::string dir = MakeTempDir("walcodec");
  const std::string path = dir + "/t.wal";

  storage::WalReset reset;
  reset.start_seq = 17;
  reset.next_ordinal = 5;
  reset.watermark = 123456;
  reset.sealed = true;
  storage::WalSubmit sub;
  sub.token = 42;
  sub.sql = "SELECT count(*) FROM s [ROWS 4 SLIDE 4]";
  sub.mode = 1;
  sub.name = "q";
  sub.origins = {7, 9};
  sub.batch_cursor = 3;
  sub.node_label = "s#1";
  sub.node_origin = 7;

  {
    auto w = storage::WalWriter::Open(storage::WalEnv::Default(), path,
                                      FsyncPolicy::kAlways, 1,
                                      storage::WalCounters{});
    ASSERT_TRUE(w.ok()) << w.status().ToString();
    ASSERT_TRUE((*w)->Append(storage::EncodeReset(reset)).ok());
    ASSERT_TRUE((*w)->Append(storage::EncodeBatch(5, 17, 0, {})).ok());
    ASSERT_TRUE((*w)->Append(storage::EncodeHeartbeat(-7)).ok());
    ASSERT_TRUE((*w)->Append(storage::EncodeSeal()).ok());
    ASSERT_TRUE((*w)->Append(storage::EncodeStatement("CREATE TABLE t (x int)"))
                    .ok());
    ASSERT_TRUE((*w)->Append(storage::EncodeSubmit(sub)).ok());
    ASSERT_TRUE((*w)->Append(storage::EncodeRemove(42)).ok());
  }

  auto scan = storage::ReadWalFile(path);
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  EXPECT_TRUE(scan->clean_tail);
  ASSERT_EQ(scan->records.size(), 7u);

  auto r0 = storage::DecodeReset(scan->records[0]);
  ASSERT_TRUE(r0.ok());
  EXPECT_EQ(r0->start_seq, 17u);
  EXPECT_EQ(r0->next_ordinal, 5u);
  EXPECT_EQ(r0->watermark, 123456);
  EXPECT_TRUE(r0->sealed);

  auto r1 = storage::DecodeBatch(scan->records[1]);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->ordinal, 5u);
  EXPECT_EQ(r1->begin_seq, 17u);
  EXPECT_EQ(r1->rows, 0u);

  auto r2 = storage::DecodeHeartbeat(scan->records[2]);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(*r2, -7);
  EXPECT_EQ(scan->records[3].type, storage::WalRecordType::kSeal);

  auto r4 = storage::DecodeStatement(scan->records[4]);
  ASSERT_TRUE(r4.ok());
  EXPECT_EQ(*r4, "CREATE TABLE t (x int)");

  auto r5 = storage::DecodeSubmit(scan->records[5]);
  ASSERT_TRUE(r5.ok());
  EXPECT_EQ(r5->token, 42u);
  EXPECT_EQ(r5->sql, sub.sql);
  EXPECT_EQ(r5->mode, 1);
  EXPECT_EQ(r5->name, "q");
  EXPECT_EQ(r5->origins, sub.origins);
  EXPECT_EQ(r5->batch_cursor, 3u);
  EXPECT_EQ(r5->node_label, "s#1");
  EXPECT_EQ(r5->node_origin, 7u);

  auto r6 = storage::DecodeRemove(scan->records[6]);
  ASSERT_TRUE(r6.ok());
  EXPECT_EQ(*r6, 42u);

  RemoveDirRecursive(dir);
}

TEST(WalCodec, TornAndGarbageTailsScanToTheValidPrefix) {
  const std::string dir = MakeTempDir("waltorn");
  const std::string path = dir + "/t.wal";
  {
    auto w = storage::WalWriter::Open(storage::WalEnv::Default(), path,
                                      FsyncPolicy::kAlways, 1,
                                      storage::WalCounters{});
    ASSERT_TRUE(w.ok());
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE((*w)->Append(storage::EncodeHeartbeat(i)).ok());
    }
  }
  auto full = storage::ReadWalFile(path);
  ASSERT_TRUE(full.ok());
  ASSERT_EQ(full->records.size(), 4u);
  ASSERT_TRUE(full->clean_tail);

  // Garbage appended past the last record: same records, dirty tail.
  {
    FILE* f = fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    fwrite("\x03\x00\x00", 1, 3, f);
    fclose(f);
  }
  auto dirty = storage::ReadWalFile(path);
  ASSERT_TRUE(dirty.ok());
  EXPECT_EQ(dirty->records.size(), 4u);
  EXPECT_FALSE(dirty->clean_tail);
  EXPECT_EQ(dirty->valid_bytes, full->valid_bytes);

  // Truncation mid-record: one fewer record, dirty tail.
  ASSERT_TRUE(storage::WalEnv::Default()
                  ->TruncateFile(path, full->valid_bytes - 3)
                  .ok());
  auto torn = storage::ReadWalFile(path);
  ASSERT_TRUE(torn.ok());
  EXPECT_EQ(torn->records.size(), 3u);
  EXPECT_FALSE(torn->clean_tail);

  // Re-opening a writer truncates to the valid prefix and appends cleanly.
  {
    auto w = storage::WalWriter::Open(storage::WalEnv::Default(), path,
                                      FsyncPolicy::kAlways, 1,
                                      storage::WalCounters{});
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE((*w)->Append(storage::EncodeHeartbeat(99)).ok());
  }
  auto fixed = storage::ReadWalFile(path);
  ASSERT_TRUE(fixed.ok());
  ASSERT_EQ(fixed->records.size(), 4u);
  EXPECT_TRUE(fixed->clean_tail);
  auto hb = storage::DecodeHeartbeat(fixed->records[3]);
  ASSERT_TRUE(hb.ok());
  EXPECT_EQ(*hb, 99);

  RemoveDirRecursive(dir);
}

TEST(SnapshotFiles, AtomicRotationWithPrevFallback) {
  const std::string dir = MakeTempDir("snap");
  ASSERT_TRUE(storage::LoadSnapshot(dir).status().IsNotFound());

  storage::SnapshotData one;
  one.checkpoint_id = 1;
  one.baskets.push_back({"s", 10});
  storage::SnapshotData two;
  two.checkpoint_id = 2;
  two.baskets.push_back({"s", 20});
  two.queries.push_back({7, storage::FactoryProgress{{20}, true, 5, 3, 11}});
  two.nodes.push_back({"s#1", 20});

  ASSERT_TRUE(
      storage::WriteSnapshot(storage::WalEnv::Default(), dir, one).ok());
  ASSERT_TRUE(
      storage::WriteSnapshot(storage::WalEnv::Default(), dir, two).ok());

  auto loaded = storage::LoadSnapshot(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->checkpoint_id, 2u);
  ASSERT_EQ(loaded->queries.size(), 1u);
  EXPECT_EQ(loaded->queries[0].token, 7u);
  EXPECT_EQ(loaded->queries[0].progress.origins, std::vector<uint64_t>{20});
  EXPECT_TRUE(loaded->queries[0].progress.has_next_emission);
  EXPECT_EQ(loaded->queries[0].progress.emissions, 11u);
  ASSERT_EQ(loaded->nodes.size(), 1u);
  EXPECT_EQ(loaded->nodes[0].label, "s#1");

  // Corrupt the current snapshot: the previous one must serve.
  {
    FILE* f = fopen(storage::SnapshotPath(dir).c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    fseek(f, 12, SEEK_SET);
    fputc(0x5a, f);
    fclose(f);
  }
  auto fallback = storage::LoadSnapshot(dir);
  ASSERT_TRUE(fallback.ok()) << fallback.status().ToString();
  EXPECT_EQ(fallback->checkpoint_id, 1u);

  // Both corrupt: refuse (the WAL tail alone cannot be trusted once a
  // checkpoint may have truncated it).
  {
    FILE* f = fopen(storage::SnapshotPrevPath(dir).c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    fseek(f, 12, SEEK_SET);
    fputc(0x5a, f);
    fclose(f);
  }
  EXPECT_FALSE(storage::LoadSnapshot(dir).ok());
  EXPECT_FALSE(storage::LoadSnapshot(dir).status().IsNotFound());

  RemoveDirRecursive(dir);
}

// --------------------------------------------------------------------------
// Engine-level recovery harness.
// --------------------------------------------------------------------------

struct ScriptMarks {
  std::vector<int64_t> ops;                   // env op count at ckpt start
  std::vector<std::vector<uint64_t>> counts;  // per-query emissions there
};

/// DDL + submits + segmented feed with a Checkpoint between segments.
/// No seal — the tape is resumable. Checkpoint failures are tolerated
/// only once the env has tripped (a dead env can surface a short read).
std::vector<int> RunScript(Engine& e, const std::vector<WRow>& rows,
                           const std::vector<size_t>& ckpts, CrashEnv* env,
                           ScriptMarks* marks) {
  WorkloadDdl(e);
  std::vector<int> qids = WorkloadSubmit(e);
  size_t lo = 0;
  for (size_t c : ckpts) {
    WorkloadFeed(e, rows, lo, lo, c);
    lo = c;
    if (marks != nullptr) {
      marks->ops.push_back(env != nullptr ? env->OpCount() : 0);
      std::vector<uint64_t> cnt;
      for (int q : qids) cnt.push_back(e.GetFactory(q)->Stats().emissions);
      marks->counts.push_back(cnt);
    }
    const Status cs = e.Checkpoint();
    if (env == nullptr || !env->tripped()) {
      EXPECT_TRUE(cs.ok()) << cs.ToString();
    }
  }
  WorkloadFeed(e, rows, lo, lo, rows.size());
  return qids;
}

/// Recovers from `dir` on the real filesystem, re-creates whatever part
/// of the catalog the crash predated (a lost CREATE/submit implies the
/// trip came before any data op — the catalog log is fsync-always and
/// strictly precedes feeding — which the HighSeq assertions verify),
/// resumes the tape from each basket's replayed HighSeq, seals, and
/// returns per-query emissions in workload order.
void RecoverAndResume(const std::string& dir, FsyncPolicy fsync,
                      const std::vector<WRow>& rows,
                      std::vector<std::vector<std::string>>* out) {
  Engine rec(DurableSyncOptions(dir, nullptr, fsync));
  ASSERT_TRUE(rec.recovery_status().ok())
      << rec.recovery_status().ToString();

  bool rebuilt_catalog = false;
  if (!rec.StreamStats("s").ok()) {
    rebuilt_catalog = true;
    ASSERT_TRUE(
        rec.Execute("CREATE STREAM s (ts timestamp, g int, v int, w double)")
            .ok());
  }
  if (!rec.StreamStats("r").ok()) {
    rebuilt_catalog = true;
    ASSERT_TRUE(
        rec.Execute("CREATE STREAM r (rts timestamp, kr int, y int)").ok());
  }

  std::map<std::string, int> by_sql;
  for (const ContinuousQueryInfo& q : rec.Queries()) by_sql[q.sql] = q.id;
  std::vector<int> qids;
  for (const std::string& sql : WorkloadQueries()) {
    if (auto it = by_sql.find(sql); it != by_sql.end()) {
      qids.push_back(it->second);
      continue;
    }
    rebuilt_catalog = true;
    auto q = rec.SubmitContinuous(sql,
                                  testutil::WithMode(ExecMode::kIncremental));
    ASSERT_TRUE(q.ok()) << q.status().ToString() << "\nsql: " << sql;
    qids.push_back(*q);
  }
  if (rebuilt_catalog) {
    // Catalog loss can only mean the crash predated every data append.
    ASSERT_EQ(rec.GetBasket("s")->HighSeq(), 0u);
    ASSERT_EQ(rec.GetBasket("r")->HighSeq(), 0u);
  }

  const uint64_t lo_s = rec.GetBasket("s")->HighSeq();
  const uint64_t lo_r = rec.GetBasket("r")->HighSeq();
  ASSERT_LE(lo_s, rows.size());
  ASSERT_LE(lo_r, rows.size());
  WorkloadFeed(rec, rows, lo_s, lo_r, rows.size());
  WorkloadSeal(rec);
  *out = WorkloadTake(rec, qids);
}

/// Index of the last checkpoint whose first op precedes trip `k`
/// (its emission count upper-bounds what recovery may not re-emit).
int64_t LastStartedCheckpoint(const ScriptMarks& marks, int64_t k) {
  int64_t j = -1;
  for (size_t i = 0; i < marks.ops.size(); ++i) {
    if (marks.ops[i] <= k) j = static_cast<int64_t>(i);
  }
  return j;
}

void AssertRecoveredAgainstOracle(
    const std::vector<std::vector<std::string>>& got,
    const std::vector<std::vector<std::string>>& oracle,
    const ScriptMarks& marks, int64_t k) {
  ASSERT_EQ(got.size(), oracle.size());
  const int64_t j = LastStartedCheckpoint(marks, k);
  for (size_t q = 0; q < oracle.size(); ++q) {
    ASSERT_TRUE(IsSuffixOf(got[q], oracle[q])) << "query " << q;
    const size_t missing = oracle[q].size() - got[q].size();
    const uint64_t bound = j >= 0 ? marks.counts[j][q] : 0;
    EXPECT_LE(missing, bound)
        << "query " << q << ": recovery lost emissions a checkpoint never "
        << "covered (trip op " << k << ", last started checkpoint " << j
        << ")";
  }
}

class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override { dir_ = MakeTempDir("recovery"); }
  void TearDown() override { testutil::RemoveDirRecursive(dir_); }

  /// Uninterrupted durable run: the oracle emissions and per-checkpoint
  /// emission counts every crash run is judged against.
  void RunOracle(const std::vector<WRow>& rows,
                 const std::vector<size_t>& ckpts, FsyncPolicy fsync,
                 std::vector<std::vector<std::string>>* emissions,
                 ScriptMarks* marks) {
    const std::string odir = MakeTempDir("oracle");
    {
      Engine e(DurableSyncOptions(odir, nullptr, fsync));
      ASSERT_TRUE(e.recovery_status().ok());
      std::vector<int> qids = RunScript(e, rows, ckpts, nullptr, marks);
      WorkloadSeal(e);
      *emissions = WorkloadTake(e, qids);
    }
    RemoveDirRecursive(odir);
    for (const auto& per_query : *emissions) {
      ASSERT_GT(per_query.size(), 3u) << "oracle produced a trivial tape";
    }
  }

  std::string dir_;
};

TEST_F(RecoveryTest, ColdStartOnEmptyDirIsANoOp) {
  Engine e(DurableSyncOptions(dir_, nullptr, FsyncPolicy::kAlways));
  EXPECT_TRUE(e.recovery_status().ok());
  EXPECT_EQ(e.metrics().GetCounter("recovery.runs")->Value(), 0u);
  WorkloadDdl(e);
  EXPECT_GT(e.metrics().GetCounter("wal.records")->Value(), 0u);
}

// Graceful shutdown + no checkpoint: the destructor syncs every log, so
// a restart replays the WHOLE history and re-emits every emission — the
// recovered engine's output equals the oracle exactly, with no resume
// feed at all (the seal was logged too).
TEST_F(RecoveryTest, GracefulRestartReplaysTheFullTape) {
  const std::vector<WRow> rows = WorkloadRows(36);
  std::vector<std::vector<std::string>> oracle;
  std::vector<int> qids;
  {
    Engine e(DurableSyncOptions(dir_, nullptr, FsyncPolicy::kNever));
    qids = RunScript(e, rows, {}, nullptr, nullptr);
    WorkloadSeal(e);
    oracle = WorkloadTake(e, qids);
  }
  Engine rec(DurableSyncOptions(dir_, nullptr, FsyncPolicy::kNever));
  ASSERT_TRUE(rec.recovery_status().ok())
      << rec.recovery_status().ToString();
  EXPECT_EQ(rec.metrics().GetCounter("recovery.runs")->Value(), 1u);
  EXPECT_GT(rec.metrics().GetCounter("recovery.replayed_rows")->Value(), 0u);
  // Replay happens in the constructor; emissions are already buffered.
  EXPECT_EQ(WorkloadTake(rec, qids), oracle);
  // The shared-window nodes came back under their original deterministic
  // labels: one per distinct window on s, with the tier-P pair (HAVING
  // twins) still co-subscribed to s#1.
  const SharingStats ss = rec.GetSharingStats();
  ASSERT_EQ(ss.shared_nodes, 3u);
  bool found_pair = false;
  for (const auto& n : ss.nodes) {
    if (n.label == "s#1") {
      EXPECT_EQ(n.subscribers, 2);
      found_pair = true;
    }
  }
  EXPECT_TRUE(found_pair) << "tier-P node s#1 did not survive recovery";
}

// Checkpoint then graceful restart: recovery restores the checkpoint's
// progress cursors, so the replay re-emits EXACTLY the post-checkpoint
// tail — equality, not just a bound.
TEST_F(RecoveryTest, CheckpointCutsReplayExactlyAtItsEmissionCounts) {
  const std::vector<WRow> rows = WorkloadRows(36);
  ScriptMarks marks;
  std::vector<std::vector<std::string>> oracle;
  std::vector<int> qids;
  {
    Engine e(DurableSyncOptions(dir_, nullptr, FsyncPolicy::kInterval));
    qids = RunScript(e, rows, {24}, nullptr, &marks);
    WorkloadSeal(e);
    oracle = WorkloadTake(e, qids);
  }
  Engine rec(DurableSyncOptions(dir_, nullptr, FsyncPolicy::kInterval));
  ASSERT_TRUE(rec.recovery_status().ok())
      << rec.recovery_status().ToString();
  const std::vector<std::vector<std::string>> got = WorkloadTake(rec, qids);
  ASSERT_EQ(got.size(), oracle.size());
  ASSERT_EQ(marks.counts.size(), 1u);
  for (size_t q = 0; q < oracle.size(); ++q) {
    const size_t cut = static_cast<size_t>(marks.counts[0][q]);
    ASSERT_LE(cut, oracle[q].size());
    EXPECT_EQ(got[q],
              std::vector<std::string>(oracle[q].begin() + cut,
                                       oracle[q].end()))
        << "query " << q << " did not resume exactly at checkpoint cut "
        << cut;
  }
}

// RemoveContinuous is logged and replayed: a removed query stays removed
// after restart, and the survivors still match the oracle.
TEST_F(RecoveryTest, RemoveContinuousSurvivesRestart) {
  const std::vector<WRow> rows = WorkloadRows(24);
  std::vector<int> qids;
  {
    Engine e(DurableSyncOptions(dir_, nullptr, FsyncPolicy::kAlways));
    WorkloadDdl(e);
    qids = WorkloadSubmit(e);
    WorkloadFeed(e, rows, 0, 0, 12);
    ASSERT_TRUE(e.RemoveContinuous(qids[1]).ok());
    WorkloadFeed(e, rows, 12, 12, rows.size());
  }
  Engine rec(DurableSyncOptions(dir_, nullptr, FsyncPolicy::kAlways));
  ASSERT_TRUE(rec.recovery_status().ok())
      << rec.recovery_status().ToString();
  std::map<std::string, int> by_sql;
  for (const ContinuousQueryInfo& q : rec.Queries()) by_sql[q.sql] = q.id;
  const std::vector<std::string> sqls = WorkloadQueries();
  EXPECT_EQ(by_sql.count(sqls[1]), 0u) << "removed query resurrected";
  EXPECT_EQ(by_sql.size(), sqls.size() - 1);
  WorkloadSeal(rec);
  for (const auto& [sql, id] : by_sql) {
    auto r = rec.TakeResults(id);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_GT(r->size(), 0u) << sql;
  }
}

// A tier-F alias whose FOUNDING query was removed before the last
// checkpoint: the founder's token has no snapshot entry, so its replay
// restores stale submit-time origins — below the WAL truncation floor
// once a second checkpoint cut the logs. The surviving alias's snapshot
// progress must be re-applied when its kSubmit replays, or recovery
// re-reads rows that no longer exist / re-emits delivered output.
TEST_F(RecoveryTest, AliasRestoresSnapshotProgressAfterFounderRemoval) {
  const std::vector<WRow> rows = WorkloadRows(36);
  // The stream-stream join: not tier-P eligible, so the alias shares the
  // factory directly (tier F) and the restored FACTORY origins — not a
  // shared node's snapshot-restored origin — are what recovery must fix.
  const std::string sql = WorkloadQueries()[4];

  // Oracle: same submit/remove schedule on a transient engine.
  std::vector<std::string> oracle;
  {
    Engine e(testutil::SyncOptions());
    WorkloadDdl(e);
    auto a = e.SubmitContinuous(sql, testutil::WithMode(ExecMode::kIncremental));
    auto b = e.SubmitContinuous(sql, testutil::WithMode(ExecMode::kIncremental));
    ASSERT_TRUE(a.ok() && b.ok());
    WorkloadFeed(e, rows, 0, 0, 12);
    ASSERT_TRUE(e.RemoveContinuous(*a).ok());
    WorkloadFeed(e, rows, 12, 12, rows.size());
    WorkloadSeal(e);
    auto r = e.TakeResults(*b);
    ASSERT_TRUE(r.ok());
    oracle = testutil::EmissionStrings(*r);
    ASSERT_GT(oracle.size(), 3u);
  }

  uint64_t at_ckpt = 0;  // alias emissions already counted at checkpoint
  {
    Engine e(DurableSyncOptions(dir_, nullptr, FsyncPolicy::kAlways));
    ASSERT_TRUE(e.recovery_status().ok());
    WorkloadDdl(e);
    auto a = e.SubmitContinuous(sql, testutil::WithMode(ExecMode::kIncremental));
    auto b = e.SubmitContinuous(sql, testutil::WithMode(ExecMode::kIncremental));
    ASSERT_TRUE(a.ok() && b.ok());
    WorkloadFeed(e, rows, 0, 0, 12);
    ASSERT_TRUE(e.RemoveContinuous(*a).ok());
    at_ckpt = e.GetFactory(*b)->Stats().emissions;
    // Two checkpoints: the second truncates the WALs to the first's
    // horizon, making the founder's submit-time origins unreplayable.
    ASSERT_TRUE(e.Checkpoint().ok());
    ASSERT_TRUE(e.Checkpoint().ok());
    WorkloadFeed(e, rows, 12, 12, 24);
  }

  Engine rec(DurableSyncOptions(dir_, nullptr, FsyncPolicy::kAlways));
  ASSERT_TRUE(rec.recovery_status().ok())
      << rec.recovery_status().ToString();
  std::map<std::string, int> by_sql;
  for (const ContinuousQueryInfo& q : rec.Queries()) by_sql[q.sql] = q.id;
  ASSERT_EQ(by_sql.size(), 1u) << "only the alias should survive";
  const uint64_t lo = rec.GetBasket("s")->HighSeq();
  ASSERT_LE(lo, rows.size());
  WorkloadFeed(rec, rows, lo, lo, rows.size());
  WorkloadSeal(rec);
  auto r = rec.TakeResults(by_sql[sql]);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const std::vector<std::string> got = testutil::EmissionStrings(*r);
  ASSERT_TRUE(IsSuffixOf(got, oracle));
  EXPECT_LE(oracle.size() - got.size(), at_ckpt)
      << "recovery lost emissions the checkpoint never covered";
}

// The tentpole: enumerate every crash point of the scripted run (two
// checkpoints, fsync=interval) under both loss styles and hold recovery
// to the suffix + checkpoint-bound contract.
TEST_F(RecoveryTest, CrashPointEnumerationMatchesOracle) {
  const std::vector<WRow> rows = WorkloadRows(40);
  const std::vector<size_t> ckpts = {14, 28};
  const FsyncPolicy policy = FsyncPolicy::kInterval;

  std::vector<std::vector<std::string>> oracle;
  ScriptMarks oracle_marks;
  ASSERT_NO_FATAL_FAILURE(
      RunOracle(rows, ckpts, policy, &oracle, &oracle_marks));

  // Counting run: identical script under an unarmed CrashEnv. Its op
  // marks index the same op sequence every armed run replays pre-trip.
  int64_t n_ops = 0;
  ScriptMarks marks;
  {
    const std::string cdir = MakeTempDir("count");
    CrashEnv env;
    {
      Engine e(DurableSyncOptions(cdir, &env, policy));
      RunScript(e, rows, ckpts, &env, &marks);
    }
    n_ops = env.OpCount();
    RemoveDirRecursive(cdir);
  }
  ASSERT_GT(n_ops, 60) << "enumeration would be vacuous";
  // Determinism cross-check: buffering must not change what fires when.
  ASSERT_EQ(marks.counts, oracle_marks.counts);

#ifdef DC_SANITIZED_BUILD
  int64_t stride = 9;
#else
  int64_t stride = 1;
#endif
  if (const char* s = std::getenv("DC_CRASH_STRIDE")) stride = atoll(s);
  if (stride < 1) stride = 1;

  for (const CrashEnv::Style style :
       {CrashEnv::Style::kDropTail, CrashEnv::Style::kTorn}) {
    const int64_t offset =
        style == CrashEnv::Style::kTorn ? stride / 2 : 0;
    for (int64_t k = offset; k < n_ops; k += stride) {
      SCOPED_TRACE(StrFormat(
          "trip=%lld/%lld style=%s", static_cast<long long>(k),
          static_cast<long long>(n_ops),
          style == CrashEnv::Style::kTorn ? "torn" : "drop-tail"));
      const std::string kdir = MakeTempDir("crash");
      CrashEnv env;
      env.ArmTrip(k, style, /*torn_seed=*/0xC0FFEEull ^
                                static_cast<uint64_t>(k) * 2654435761ull);
      {
        Engine e(DurableSyncOptions(kdir, &env, policy));
        RunScript(e, rows, ckpts, &env, nullptr);
      }
      ASSERT_TRUE(env.tripped());
      std::vector<std::vector<std::string>> got;
      ASSERT_NO_FATAL_FAILURE(RecoverAndResume(kdir, policy, rows, &got));
      ASSERT_NO_FATAL_FAILURE(
          AssertRecoveredAgainstOracle(got, oracle, marks, k));
      RemoveDirRecursive(kdir);
    }
  }
}

// Every fsync policy honors the same contract at representative mid-run
// crash points (kNever only persists via checkpoints and clean Sync;
// kAlways tightens the loss window to at most the in-flight record).
TEST_F(RecoveryTest, FsyncPolicySweepAtRepresentativeCrashPoints) {
  const std::vector<WRow> rows = WorkloadRows(40);
  const std::vector<size_t> ckpts = {14, 28};

  for (const FsyncPolicy policy :
       {FsyncPolicy::kNever, FsyncPolicy::kInterval, FsyncPolicy::kAlways}) {
    std::vector<std::vector<std::string>> oracle;
    ScriptMarks oracle_marks;
    ASSERT_NO_FATAL_FAILURE(
        RunOracle(rows, ckpts, policy, &oracle, &oracle_marks));

    int64_t n_ops = 0;
    ScriptMarks marks;
    {
      const std::string cdir = MakeTempDir("count");
      CrashEnv env;
      {
        Engine e(DurableSyncOptions(cdir, &env, policy));
        RunScript(e, rows, ckpts, &env, &marks);
      }
      n_ops = env.OpCount();
      RemoveDirRecursive(cdir);
    }
    ASSERT_GT(n_ops, 20);

    for (const CrashEnv::Style style :
         {CrashEnv::Style::kDropTail, CrashEnv::Style::kTorn}) {
      for (const int64_t k :
           {n_ops / 4, n_ops / 2, (3 * n_ops) / 4, n_ops - 1}) {
        SCOPED_TRACE(StrFormat(
            "policy=%d trip=%lld style=%s", static_cast<int>(policy),
            static_cast<long long>(k),
            style == CrashEnv::Style::kTorn ? "torn" : "drop-tail"));
        const std::string kdir = MakeTempDir("sweep");
        CrashEnv env;
        env.ArmTrip(k, style, 0xFACEull + static_cast<uint64_t>(k));
        {
          Engine e(DurableSyncOptions(kdir, &env, policy));
          RunScript(e, rows, ckpts, &env, nullptr);
        }
        std::vector<std::vector<std::string>> got;
        ASSERT_NO_FATAL_FAILURE(RecoverAndResume(kdir, policy, rows, &got));
        ASSERT_NO_FATAL_FAILURE(
            AssertRecoveredAgainstOracle(got, oracle, marks, k));
        RemoveDirRecursive(kdir);
      }
    }
  }
}

// Durability must be output-invisible: the durable engine's emissions
// equal a plain in-memory engine's, checkpoint calls and all.
TEST_F(RecoveryTest, DurabilityDoesNotChangeEmissions) {
  const std::vector<WRow> rows = WorkloadRows(36);
  std::vector<std::vector<std::string>> plain;
  {
    Engine e(testutil::SyncOptions());
    WorkloadDdl(e);
    std::vector<int> qids = WorkloadSubmit(e);
    WorkloadFeed(e, rows, 0, 0, rows.size());
    WorkloadSeal(e);
    plain = WorkloadTake(e, qids);
  }
  std::vector<std::vector<std::string>> durable;
  {
    Engine e(DurableSyncOptions(dir_, nullptr, FsyncPolicy::kInterval));
    std::vector<int> qids = RunScript(e, rows, {12, 24}, nullptr, nullptr);
    WorkloadSeal(e);
    durable = WorkloadTake(e, qids);
  }
  EXPECT_EQ(durable, plain);
}

// Threaded engine with the background checkpointer: snapshots happen on
// their own, a restart recovers cleanly, and the resumed sync-mode run
// still lands on a suffix of the deterministic per-window oracle.
TEST(RecoveryThreaded, BackgroundCheckpointerRecovers) {
  const std::string dir = MakeTempDir("ckptloop");
  const std::vector<WRow> rows = WorkloadRows(240);

  std::vector<std::vector<std::string>> oracle;
  {
    Engine e(testutil::SyncOptions());
    WorkloadDdl(e);
    std::vector<int> qids = WorkloadSubmit(e);
    WorkloadFeed(e, rows, 0, 0, rows.size());
    WorkloadSeal(e);
    oracle = WorkloadTake(e, qids);
  }

  {
    EngineOptions o = testutil::Threaded(2);
    o.durability.dir = dir;
    o.durability.fsync = FsyncPolicy::kInterval;
    o.durability.fsync_interval_batches = 8;
    o.durability.checkpoint_interval_ms = 5;
    Engine e(o);
    ASSERT_TRUE(e.recovery_status().ok());
    WorkloadDdl(e);
    WorkloadSubmit(e);
    for (size_t i = 0; i < rows.size(); ++i) {
      ASSERT_TRUE(
          e.PushRow("s", {Value::Ts(rows[i].ts_us), Value::I64(rows[i].g),
                          Value::I64(rows[i].v),
                          Value::F64(static_cast<double>(rows[i].w16) / 16.0)})
              .ok());
      ASSERT_TRUE(e.PushRow("r", {Value::Ts(rows[i].ts_us),
                                  Value::I64(rows[i].v % 5),
                                  Value::I64(rows[i].w16)})
                      .ok());
      if (i % 10 == 9) {
        ASSERT_TRUE(e.Heartbeat("s", rows[i].ts_us).ok());
        ASSERT_TRUE(e.Heartbeat("r", rows[i].ts_us).ok());
      }
      if (i % 48 == 47) {
        std::this_thread::sleep_for(std::chrono::milliseconds(8));
      }
    }
    ASSERT_TRUE(e.WaitIdle());
    EXPECT_GE(e.metrics().GetCounter("snapshot.writes")->Value(), 1u);
  }

  Engine rec(DurableSyncOptions(dir, nullptr, FsyncPolicy::kInterval));
  ASSERT_TRUE(rec.recovery_status().ok())
      << rec.recovery_status().ToString();
  EXPECT_GT(rec.metrics().GetCounter("recovery.replayed_records")->Value(),
            0u);
  std::map<std::string, int> by_sql;
  for (const ContinuousQueryInfo& q : rec.Queries()) by_sql[q.sql] = q.id;
  std::vector<int> qids;
  for (const std::string& sql : WorkloadQueries()) {
    ASSERT_EQ(by_sql.count(sql), 1u) << sql;
    qids.push_back(by_sql[sql]);
  }
  const uint64_t lo_s = rec.GetBasket("s")->HighSeq();
  const uint64_t lo_r = rec.GetBasket("r")->HighSeq();
  ASSERT_EQ(lo_s, rows.size());  // graceful shutdown synced everything
  ASSERT_EQ(lo_r, rows.size());
  WorkloadSeal(rec);
  const std::vector<std::vector<std::string>> got = WorkloadTake(rec, qids);
  for (size_t q = 0; q < got.size(); ++q) {
    EXPECT_TRUE(IsSuffixOf(got[q], oracle[q])) << "query " << q;
  }
  RemoveDirRecursive(dir);
}

TEST_F(RecoveryTest, DurabilityMetricsAreExposed) {
  const std::vector<WRow> rows = WorkloadRows(24);
  Engine e(DurableSyncOptions(dir_, nullptr, FsyncPolicy::kAlways));
  // Two checkpoints: a WAL is only truncated to the PREVIOUS checkpoint's
  // horizon, so the first checkpoint snapshots but cannot cut yet.
  std::vector<int> qids = RunScript(e, rows, {8, 16}, nullptr, nullptr);
  WorkloadSeal(e);
  WorkloadTake(e, qids);
  EXPECT_GT(e.metrics().GetCounter("wal.records")->Value(), 0u);
  EXPECT_GT(e.metrics().GetCounter("wal.bytes")->Value(), 0u);
  EXPECT_GT(e.metrics().GetCounter("wal.syncs")->Value(), 0u);
  EXPECT_GT(e.metrics().GetCounter("wal.truncations")->Value(), 0u);
  EXPECT_EQ(e.metrics().GetCounter("snapshot.writes")->Value(), 2u);
  EXPECT_GT(e.metrics().GetCounter("snapshot.bytes")->Value(), 0u);
}

}  // namespace
}  // namespace dc
