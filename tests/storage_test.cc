// Unit tests for schemas, COW tables, indexes, and the catalog.

#include <gtest/gtest.h>

#include "storage/catalog.h"
#include "storage/index.h"
#include "storage/schema.h"
#include "storage/table.h"

namespace dc {
namespace {

Schema TwoColSchema() {
  Schema s;
  EXPECT_TRUE(s.AddColumn("k", TypeId::kI64).ok());
  EXPECT_TRUE(s.AddColumn("name", TypeId::kStr).ok());
  return s;
}

TEST(SchemaTest, AddFindDuplicate) {
  Schema s = TwoColSchema();
  EXPECT_EQ(*s.Find("name"), 1u);
  EXPECT_FALSE(s.Find("missing").ok());
  EXPECT_TRUE(s.AddColumn("k", TypeId::kI64).IsInvalidArgument() ||
              s.AddColumn("k", TypeId::kI64).code() ==
                  StatusCode::kAlreadyExists);
  EXPECT_EQ(s.ToString(), "(k i64, name str)");
}

TEST(TableTest, AppendRowAndSnapshot) {
  Table t("t", TwoColSchema());
  EXPECT_EQ(t.NumRows(), 0u);
  ASSERT_TRUE(t.AppendRow({Value::I64(1), Value::Str("a")}).ok());
  ASSERT_TRUE(t.AppendRow({Value::I64(2), Value::Str("b")}).ok());
  EXPECT_EQ(t.NumRows(), 2u);
  EXPECT_EQ(t.Snapshot()->cols[1]->StrAt(1), "b");
}

TEST(TableTest, SnapshotIsImmutableUnderAppends) {
  Table t("t", TwoColSchema());
  ASSERT_TRUE(t.AppendRow({Value::I64(1), Value::Str("a")}).ok());
  TableVersionPtr snap = t.Snapshot();
  ASSERT_TRUE(t.AppendRow({Value::I64(2), Value::Str("b")}).ok());
  EXPECT_EQ(snap->NumRows(), 1u);        // old version untouched
  EXPECT_EQ(t.Snapshot()->NumRows(), 2u);
  EXPECT_GT(t.Snapshot()->version, snap->version);
}

TEST(TableTest, TypeChecking) {
  Table t("t", TwoColSchema());
  EXPECT_FALSE(t.AppendRow({Value::Str("nope"), Value::Str("a")}).ok());
  EXPECT_FALSE(t.AppendRow({Value::I64(1)}).ok());
  // I64 -> STR coercion goes through CastTo (allowed: renders as string).
  EXPECT_TRUE(t.AppendRow({Value::I64(1), Value::I64(7)}).ok());
  EXPECT_EQ(t.Snapshot()->cols[1]->StrAt(0), "7");
}

TEST(TableBuilderTest, BulkLoad) {
  TableBuilder b(TwoColSchema());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(b.AddRow({Value::I64(i), Value::Str("row")}).ok());
  }
  auto table = std::move(b).Build("bulk");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->NumRows(), 100u);
}

TEST(HashIndexTest, IntLookup) {
  auto col = Bat::MakeI64({5, 3, 5, 9});
  auto idx = HashIndex::Build(*col, 1);
  ASSERT_TRUE(idx.ok());
  auto hits = (*idx)->Lookup(Value::I64(5));
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->ToVector(), (std::vector<Oid>{0, 2}));
  EXPECT_EQ((*idx)->Lookup(Value::I64(4))->size(), 0u);
}

TEST(HashIndexTest, StringLookupAndTypeError) {
  auto col = Bat::MakeStr({"x", "y", "x"});
  auto idx = HashIndex::Build(*col, 1);
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ((*idx)->Lookup(Value::Str("x"))->size(), 2u);
  EXPECT_FALSE((*idx)->Lookup(Value::F64(1.0)).ok());
}

TEST(TableIndexTest, RebuiltAfterAppend) {
  Table t("t", TwoColSchema());
  ASSERT_TRUE(t.AppendRow({Value::I64(7), Value::Str("a")}).ok());
  auto idx1 = t.GetHashIndex("k");
  ASSERT_TRUE(idx1.ok());
  EXPECT_EQ((*idx1)->Lookup(Value::I64(7))->size(), 1u);
  ASSERT_TRUE(t.AppendRow({Value::I64(7), Value::Str("b")}).ok());
  auto idx2 = t.GetHashIndex("k");
  ASSERT_TRUE(idx2.ok());
  EXPECT_EQ((*idx2)->Lookup(Value::I64(7))->size(), 2u);
  EXPECT_NE((*idx1)->version(), (*idx2)->version());
}

TEST(CatalogTest, RegisterAndResolve) {
  Catalog c;
  ASSERT_TRUE(
      c.RegisterTable(std::make_shared<Table>("t", TwoColSchema())).ok());
  StreamDef def;
  def.name = "s";
  def.schema = TwoColSchema();
  ASSERT_TRUE(c.RegisterStream(def).ok());
  EXPECT_TRUE(c.IsTable("t"));
  EXPECT_TRUE(c.IsStream("s"));
  EXPECT_FALSE(c.IsStream("t"));
  EXPECT_TRUE(c.GetTable("t").ok());
  EXPECT_TRUE(c.GetStream("s").ok());
  EXPECT_FALSE(c.GetTable("s").ok());
}

TEST(CatalogTest, NamespaceShared) {
  Catalog c;
  ASSERT_TRUE(
      c.RegisterTable(std::make_shared<Table>("x", TwoColSchema())).ok());
  StreamDef def;
  def.name = "x";
  def.schema = TwoColSchema();
  EXPECT_EQ(c.RegisterStream(def).code(), StatusCode::kAlreadyExists);
}

TEST(CatalogTest, StreamTsValidation) {
  Catalog c;
  StreamDef def;
  def.name = "s";
  def.schema = TwoColSchema();
  def.ts_column = 0;  // column 0 is I64, not TS
  EXPECT_TRUE(c.RegisterStream(def).IsTypeError());
  def.ts_column = 5;  // out of range
  EXPECT_TRUE(c.RegisterStream(def).IsInvalidArgument());
}

TEST(CatalogTest, Drop) {
  Catalog c;
  ASSERT_TRUE(
      c.RegisterTable(std::make_shared<Table>("t", TwoColSchema())).ok());
  EXPECT_TRUE(c.DropTable("t").ok());
  EXPECT_FALSE(c.DropTable("t").ok());
  EXPECT_FALSE(c.IsTable("t"));
}

}  // namespace
}  // namespace dc
