// Stress tests for the sharded, event-driven scheduler: targeted (arc)
// enablement, shard affinity, work stealing, and RemoveFactory racing
// entries that are queued or in flight on remote shards. CI runs this
// suite under TSan with --repeat until-fail:3.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "core/scheduler.h"
#include "storage/catalog.h"
#include "tests/test_util.h"
#include "util/string_util.h"

namespace dc {
namespace {

// Wires N per-batch factories onto one (or two) baskets via explicit arcs,
// the way Engine does: AttachArc first, then AddFactory.
class SchedulerShardTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Schema s;
    ASSERT_TRUE(s.AddColumn("v", TypeId::kI64).ok());
    for (const char* name : {"s", "t"}) {
      StreamDef def;
      def.name = name;
      def.schema = s;
      ASSERT_TRUE(catalog_.RegisterStream(def).ok());
    }
    basket_ = std::make_unique<Basket>("s", s);
    basket_t_ = std::make_unique<Basket>("t", s);
  }

  FactoryPtr MakeFactory(int id, Basket* basket = nullptr,
                         const char* stream = "s") {
    if (basket == nullptr) basket = basket_.get();
    auto ex = testutil::CompileQuery(StrFormat("SELECT v FROM %s", stream),
                                     catalog_);
    Schema out;
    DC_CHECK_OK(out.AddColumn("v", TypeId::kI64));
    auto out_basket = std::make_shared<Basket>("out", out);
    FactoryInput in;
    in.is_stream = true;
    in.basket = basket;
    in.reader_id = basket->RegisterReader(true);
    auto f = Factory::Create(id, StrFormat("f%d", id), ex,
                             ExecMode::kFullReeval, {in}, out_basket);
    DC_CHECK_OK(f.status());
    return *f;
  }

  // Engine-style registration: arc before the factory itself.
  void Wire(Scheduler& sched, const FactoryPtr& f) {
    for (Basket* b : f->InputBaskets()) sched.AttachArc(b, f->id());
    sched.AddFactory(f);
  }

  void Push(int64_t v) {
    ASSERT_TRUE(basket_->AppendRow({Value::I64(v)}).ok());
  }

  static bool WaitAllConsumed(const std::vector<FactoryPtr>& factories,
                              uint64_t tuples, Micros timeout_micros) {
    const Micros deadline = SteadyMicros() + timeout_micros;
    while (SteadyMicros() < deadline) {
      bool all = true;
      for (const FactoryPtr& f : factories) {
        all = all && f->Stats().tuples_out == tuples;
      }
      if (all) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return false;
  }

  Catalog catalog_;
  std::unique_ptr<Basket> basket_;
  std::unique_ptr<Basket> basket_t_;
};

TEST_F(SchedulerShardTest, TargetedPulseEnqueuesOnlySubscribedArcs) {
  Scheduler::Options opts;
  opts.num_workers = 0;  // manual mode; shards stay inspectable
  opts.num_shards = 2;
  Scheduler sched(opts);
  auto f0 = MakeFactory(0);                          // home shard 0, reads s
  auto f1 = MakeFactory(1, basket_t_.get(), "t");    // home shard 1, reads t
  Wire(sched, f0);
  Wire(sched, f1);

  Push(7);                          // pulse on s: enables f0 only
  EXPECT_EQ(sched.DrainReady(), 1); // f1's probe never held
  EXPECT_EQ(f0->Stats().emissions, 1u);
  EXPECT_EQ(f1->Stats().emissions, 0u);

  // f0 went idle after its fire; the next pulse on s re-enqueues it on its
  // home shard. f1 sits queued from its registration kick, not ready.
  Push(8);
  const SchedulerStats before = sched.Stats();
  ASSERT_EQ(before.shards.size(), 2u);
  EXPECT_EQ(before.shards[0].enqueues, 2u);  // registration kick + pulse
  EXPECT_EQ(before.shards[1].enqueues, 1u);  // registration kick only
  EXPECT_EQ(before.notifications, 2u);       // two appends = two pulses
  EXPECT_EQ(sched.DrainReady(), 1);

  const SchedulerStats after = sched.Stats();
  EXPECT_EQ(after.fires, 2u);
  EXPECT_EQ(after.shards[0].fires, 2u);
  EXPECT_EQ(after.shards[1].fires, 0u);
  EXPECT_EQ(after.shards[1].queue_depth, 1u);  // still queued, never enabled
}

TEST_F(SchedulerShardTest, ManyFactoriesFewWorkersAllEventuallyFire) {
  Scheduler::Options opts;
  opts.num_workers = 2;
  opts.num_shards = 8;  // most shards served via ownership striping
  Scheduler sched(opts);
  std::vector<FactoryPtr> factories;
  for (int id = 0; id < 24; ++id) {
    factories.push_back(MakeFactory(id));
    Wire(sched, factories.back());
  }
  sched.Start();
  constexpr uint64_t kRows = 40;
  for (uint64_t i = 0; i < kRows; ++i) Push(static_cast<int64_t>(i));
  ASSERT_TRUE(WaitAllConsumed(factories, kRows, 10 * kMicrosPerSecond));
  sched.Stop();
  // Exactly-once delivery per factory: no duplicated and no lost fires —
  // a factory never fires concurrently with itself, or tuples_out would
  // overshoot kRows.
  for (const FactoryPtr& f : factories) {
    EXPECT_EQ(f->Stats().tuples_out, kRows) << f->name();
  }
  const SchedulerStats stats = sched.Stats();
  EXPECT_GE(stats.fires, 24u);
  uint64_t shard_fires = 0;
  for (const auto& sh : stats.shards) shard_fires += sh.fires;
  EXPECT_EQ(shard_fires, stats.fires);
}

TEST_F(SchedulerShardTest, WorkStealingDrainsRemoteShards) {
  Scheduler::Options opts;
  opts.num_workers = 2;
  opts.num_shards = 2;
  opts.work_stealing = true;
  Scheduler sched(opts);
  // Even ids only: every factory homes on shard 0, so worker 1 (owner of
  // the permanently empty shard 1) can make progress only by stealing.
  std::vector<FactoryPtr> factories;
  for (int i = 0; i < 16; ++i) {
    factories.push_back(MakeFactory(2 * i));
    Wire(sched, factories.back());
  }
  sched.Start();
  // Push in waves until worker 1 demonstrably stole (bounded): each wave
  // re-enqueues all 16 factories on shard 0, so a non-stealing worker 1
  // would leave steals at 0 forever.
  uint64_t rows = 0;
  const Micros deadline = SteadyMicros() + 20 * kMicrosPerSecond;
  do {
    for (int i = 0; i < 20; ++i) Push(static_cast<int64_t>(rows + i));
    rows += 20;
    ASSERT_TRUE(WaitAllConsumed(factories, rows, 10 * kMicrosPerSecond));
  } while (sched.Stats().steals == 0 && SteadyMicros() < deadline);
  sched.Stop();
  const SchedulerStats stats = sched.Stats();
  EXPECT_GE(stats.steals, 1u);
  // Steals are counted on the shard they drained.
  EXPECT_EQ(stats.shards[0].steals, stats.steals);
  EXPECT_EQ(stats.shards[1].enqueues, 0u);
  for (const FactoryPtr& f : factories) {
    EXPECT_EQ(f->Stats().tuples_out, rows) << f->name();
  }
}

TEST_F(SchedulerShardTest, StealingDisabledOwnershipStillCoversAllShards) {
  Scheduler::Options opts;
  opts.num_workers = 2;
  opts.num_shards = 4;  // worker 0 owns shards {0,2}, worker 1 owns {1,3}
  opts.work_stealing = false;
  Scheduler sched(opts);
  std::vector<FactoryPtr> factories;
  for (int id = 0; id < 8; ++id) {
    factories.push_back(MakeFactory(id));
    Wire(sched, factories.back());
  }
  sched.Start();
  constexpr uint64_t kRows = 20;
  for (uint64_t i = 0; i < kRows; ++i) Push(static_cast<int64_t>(i));
  ASSERT_TRUE(WaitAllConsumed(factories, kRows, 10 * kMicrosPerSecond));
  sched.Stop();
  EXPECT_EQ(sched.Stats().steals, 0u);
}

TEST_F(SchedulerShardTest, RemoveFactoryWhileQueuedOnRemoteShard) {
  Scheduler::Options opts;
  opts.num_workers = 0;  // no workers: queued entries stay queued
  opts.num_shards = 4;
  Scheduler sched(opts);
  std::vector<FactoryPtr> factories;
  for (int id = 0; id < 8; ++id) {
    factories.push_back(MakeFactory(id));
    Wire(sched, factories.back());
  }
  Push(1);  // all 8 queued (registration kick), all enabled
  // Factory 5 homes on shard 1 — remote from any popping context. Removal
  // must unlink the queued entry without a worker ever claiming it.
  sched.RemoveFactory(5);
  EXPECT_EQ(sched.Factories().size(), 7u);
  EXPECT_EQ(sched.DrainReady(), 7);
  EXPECT_EQ(factories[5]->Stats().invocations, 0u);
  const SchedulerStats stats = sched.Stats();
  EXPECT_EQ(stats.fires, 7u);
  for (const auto& sh : stats.shards) EXPECT_EQ(sh.queue_depth, 0u);
}

TEST_F(SchedulerShardTest, ConcurrentChurnWithArcsAndStealing) {
  // Add/remove factories while workers fire and steal across shards and a
  // feeder pulses the basket: no entry may be destroyed mid-fire, and
  // RemoveFactory must reap entries queued on any shard. Race hunt for
  // TSan + --repeat until-fail in CI.
  Scheduler::Options opts;
  opts.num_workers = 4;
  opts.num_shards = 4;
  Scheduler sched(opts);
  sched.Start();
  std::atomic<bool> done{false};
  std::thread feeder([&] {
    int64_t i = 0;
    while (!done.load()) {
      ASSERT_TRUE(basket_->AppendRow({Value::I64(i++)}).ok());
      std::this_thread::sleep_for(std::chrono::microseconds(20));
    }
  });
  for (int round = 0; round < 50; ++round) {
    auto f = MakeFactory(100 + round);
    Wire(sched, f);
    // Give workers a chance to claim and fire it, then rip it out.
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    sched.RemoveFactory(100 + round);
  }
  done.store(true);
  feeder.join();
  sched.Stop();
  EXPECT_EQ(sched.Factories().size(), 0u);
}

}  // namespace
}  // namespace dc
