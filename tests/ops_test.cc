// Unit tests for the bulk kernel operators: select, arith maps, join,
// group/aggregate (incl. the mergeable partial states), sort.

#include <gtest/gtest.h>

#include <set>

#include "bat/ops_aggregate.h"
#include "bat/ops_arith.h"
#include "bat/ops_group.h"
#include "bat/ops_index.h"
#include "bat/ops_join.h"
#include "bat/ops_select.h"
#include "bat/ops_sort.h"

namespace dc {
namespace {

using ops::AggKind;

TEST(SelectTest, CmpOnI64) {
  auto col = Bat::MakeI64({5, 1, 9, 3, 7});
  auto c = ops::SelectCmp(*col, CmpOp::kGt, Value::I64(4));
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->ToVector(), (std::vector<Oid>{0, 2, 4}));
  c = ops::SelectCmp(*col, CmpOp::kEq, Value::I64(3));
  EXPECT_EQ(c->ToVector(), (std::vector<Oid>{3}));
  c = ops::SelectCmp(*col, CmpOp::kLe, Value::I64(3));
  EXPECT_EQ(c->ToVector(), (std::vector<Oid>{1, 3}));
}

TEST(SelectTest, CmpWithCandidates) {
  auto col = Bat::MakeI64({5, 1, 9, 3, 7});
  auto base = Candidates::FromVector({0, 1, 2});
  auto c = ops::SelectCmp(*col, CmpOp::kGt, Value::I64(4), &base);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->ToVector(), (std::vector<Oid>{0, 2}));
}

TEST(SelectTest, F64LiteralAgainstIntColumn) {
  auto col = Bat::MakeI64({1, 2, 3});
  auto c = ops::SelectCmp(*col, CmpOp::kGt, Value::F64(1.5));
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->size(), 2u);
}

TEST(SelectTest, StringCmp) {
  auto col = Bat::MakeStr({"pear", "apple", "fig"});
  auto c = ops::SelectCmp(*col, CmpOp::kEq, Value::Str("fig"));
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->ToVector(), (std::vector<Oid>{2}));
  EXPECT_FALSE(ops::SelectCmp(*col, CmpOp::kEq, Value::I64(1)).ok());
}

TEST(SelectTest, Range) {
  auto col = Bat::MakeI64({1, 5, 10, 15, 20});
  auto c = ops::SelectRange(*col, Value::I64(5), true, Value::I64(15), false);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->ToVector(), (std::vector<Oid>{1, 2}));
}

TEST(SelectTest, CmpColVsCol) {
  auto a = Bat::MakeI64({1, 5, 3});
  auto b = Bat::MakeI64({2, 4, 3});
  auto c = ops::SelectCmpCol(*a, CmpOp::kLt, *b);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->ToVector(), (std::vector<Oid>{0}));
  c = ops::SelectCmpCol(*a, CmpOp::kGe, *b);
  EXPECT_EQ(c->ToVector(), (std::vector<Oid>{1, 2}));
}

TEST(SelectTest, SelectTrue) {
  auto col = Bat::MakeBool({1, 0, 1, 0});
  auto c = ops::SelectTrue(*col);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->ToVector(), (std::vector<Oid>{0, 2}));
}

TEST(ArithTest, IntAddMul) {
  auto a = Bat::MakeI64({1, 2, 3});
  auto b = Bat::MakeI64({10, 20, 30});
  auto sum = ops::MapArith(*a, ArithOp::kAdd, *b);
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ((*sum)->type(), TypeId::kI64);
  EXPECT_EQ((*sum)->I64Data()[2], 33);
  auto mul = ops::MapArithConst(*a, ArithOp::kMul, Value::I64(5));
  EXPECT_EQ((*mul)->I64Data()[1], 10);
}

TEST(ArithTest, DivisionAlwaysF64) {
  auto a = Bat::MakeI64({10, 9});
  auto d = ops::MapArithConst(*a, ArithOp::kDiv, Value::I64(4));
  ASSERT_TRUE(d.ok());
  EXPECT_EQ((*d)->type(), TypeId::kF64);
  EXPECT_EQ((*d)->F64Data()[0], 2.5);
}

TEST(ArithTest, DivByZeroSaturates) {
  auto a = Bat::MakeI64({10});
  auto d = ops::MapArithConst(*a, ArithOp::kDiv, Value::I64(0));
  ASSERT_TRUE(d.ok());
  EXPECT_EQ((*d)->F64Data()[0], 0.0);
  auto m = ops::MapArithConst(*a, ArithOp::kMod, Value::I64(0));
  ASSERT_TRUE(m.ok());
  EXPECT_EQ((*m)->I64Data()[0], 0);
}

TEST(ArithTest, LiteralLeft) {
  auto a = Bat::MakeI64({1, 2});
  auto r = ops::MapArithConst(*a, ArithOp::kSub, Value::I64(10),
                              /*literal_left=*/true);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->I64Data()[0], 9);
  EXPECT_EQ((*r)->I64Data()[1], 8);
}

TEST(ArithTest, MixedPromotesToF64) {
  auto a = Bat::MakeI64({1, 2});
  auto b = Bat::MakeF64({0.5, 0.5});
  auto r = ops::MapArith(*a, ArithOp::kAdd, *b);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->type(), TypeId::kF64);
  EXPECT_EQ((*r)->F64Data()[0], 1.5);
}

TEST(ArithTest, BoolMaps) {
  auto a = Bat::MakeBool({1, 1, 0, 0});
  auto b = Bat::MakeBool({1, 0, 1, 0});
  EXPECT_EQ((*ops::MapAnd(*a, *b))->BoolData()[0], 1);
  EXPECT_EQ((*ops::MapAnd(*a, *b))->BoolData()[1], 0);
  EXPECT_EQ((*ops::MapOr(*a, *b))->BoolData()[2], 1);
  EXPECT_EQ((*ops::MapNot(*a))->BoolData()[3], 1);
  EXPECT_FALSE(ops::MapAnd(*a, *Bat::MakeI64({1, 2, 3, 4})).ok());
}

TEST(ArithTest, CmpMaps) {
  auto a = Bat::MakeI64({1, 5, 3});
  auto r = ops::MapCmpConst(*a, CmpOp::kGe, Value::I64(3));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->BoolData()[0], 0);
  EXPECT_EQ((*r)->BoolData()[1], 1);
  EXPECT_EQ((*r)->BoolData()[2], 1);
}

TEST(ArithTest, Cast) {
  auto a = Bat::MakeI64({1, 2});
  auto f = ops::MapCast(*a, TypeId::kF64);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ((*f)->F64Data()[1], 2.0);
  auto s = ops::MapCast(*a, TypeId::kStr);
  EXPECT_EQ((*s)->StrAt(0), "1");
}

TEST(ArithTest, ConstColumn) {
  auto c = ops::MakeConstColumn(Value::Str("x"), 3);
  EXPECT_EQ(c->size(), 3u);
  EXPECT_EQ(c->StrAt(2), "x");
}

TEST(JoinTest, IntInnerJoin) {
  auto l = Bat::MakeI64({1, 2, 3, 2});
  auto r = Bat::MakeI64({2, 4, 2});
  auto jr = ops::HashJoin(*l, *r);
  ASSERT_TRUE(jr.ok());
  // Left rows 1 and 3 (value 2) each match right rows 0 and 2.
  EXPECT_EQ(jr->size(), 4u);
  for (size_t i = 0; i < jr->size(); ++i) {
    EXPECT_EQ(l->I64Data()[jr->left[i]], r->I64Data()[jr->right[i]]);
  }
}

TEST(JoinTest, StringJoin) {
  auto l = Bat::MakeStr({"a", "b", "c"});
  auto r = Bat::MakeStr({"b", "c", "d"});
  auto jr = ops::HashJoin(*l, *r);
  ASSERT_TRUE(jr.ok());
  EXPECT_EQ(jr->size(), 2u);
}

TEST(JoinTest, MixedNumericJoinViaDouble) {
  auto l = Bat::MakeI64({1, 2});
  auto r = Bat::MakeF64({2.0, 3.0});
  auto jr = ops::HashJoin(*l, *r);
  ASSERT_TRUE(jr.ok());
  EXPECT_EQ(jr->size(), 1u);
  EXPECT_EQ(jr->left[0], 1u);
}

TEST(JoinTest, WithCandidates) {
  auto l = Bat::MakeI64({1, 2, 2});
  auto r = Bat::MakeI64({2, 2});
  auto lcand = Candidates::FromVector({0, 1});
  auto rcand = Candidates::FromVector({1});
  auto jr = ops::HashJoin(*l, *r, &lcand, &rcand);
  ASSERT_TRUE(jr.ok());
  EXPECT_EQ(jr->size(), 1u);
  EXPECT_EQ(jr->left[0], 1u);
  EXPECT_EQ(jr->right[0], 1u);
}

TEST(JoinTest, TypeMismatchFails) {
  auto l = Bat::MakeStr({"a"});
  auto r = Bat::MakeI64({1});
  EXPECT_FALSE(ops::HashJoin(*l, *r).ok());
}

// Reference check: DeltaJoin([old;new], split) must produce exactly the
// full-join pairs that involve at least one row past the split, on each
// side — the incremental-join invariant (new⋈old ∪ old⋈new ∪ new⋈new).
void CheckDeltaEqualsNewFullPairs(const Bat& l, uint64_t l_old, const Bat& r,
                                  uint64_t r_old) {
  auto full = ops::HashJoin(l, r);
  ASSERT_TRUE(full.ok());
  std::multiset<std::pair<Oid, Oid>> want;
  for (size_t i = 0; i < full->size(); ++i) {
    if (full->left[i] >= l_old || full->right[i] >= r_old) {
      want.emplace(full->left[i], full->right[i]);
    }
  }
  auto delta = ops::DeltaJoin(l, l_old, r, r_old);
  ASSERT_TRUE(delta.ok());
  std::multiset<std::pair<Oid, Oid>> got;
  for (size_t i = 0; i < delta->size(); ++i) {
    got.emplace(delta->left[i], delta->right[i]);
  }
  EXPECT_EQ(got, want);
}

TEST(JoinTest, DeltaJoinMatchesNewFullJoinPairs) {
  // Duplicate keys on both sides, old and new portions both matching.
  auto l = Bat::MakeI64({1, 2, 2, 3, 2, 1});  // old: rows 0-3, new: 4-5
  auto r = Bat::MakeI64({2, 1, 4, 2, 1});     // old: rows 0-2, new: 3-4
  CheckDeltaEqualsNewFullPairs(*l, 4, *r, 3);
  // Empty old portions degenerate to a full join.
  CheckDeltaEqualsNewFullPairs(*l, 0, *r, 3);
  CheckDeltaEqualsNewFullPairs(*l, 4, *r, 0);
  CheckDeltaEqualsNewFullPairs(*l, 0, *r, 0);
  // Empty new portions: only cross-side-new pairs remain.
  CheckDeltaEqualsNewFullPairs(*l, l->size(), *r, 3);
  CheckDeltaEqualsNewFullPairs(*l, l->size(), *r, r->size());
}

TEST(JoinTest, DeltaJoinSplitBeyondSizeFails) {
  auto l = Bat::MakeI64({1});
  auto r = Bat::MakeI64({1});
  EXPECT_FALSE(ops::DeltaJoin(*l, 2, *r, 0).ok());
}

TEST(JoinTest, JoinKeyDomain) {
  auto dom = ops::JoinKeyDomain(TypeId::kI64, TypeId::kI64);
  ASSERT_TRUE(dom.ok());
  EXPECT_EQ(*dom, TypeId::kI64);
  dom = ops::JoinKeyDomain(TypeId::kI64, TypeId::kF64);
  ASSERT_TRUE(dom.ok());
  EXPECT_EQ(*dom, TypeId::kF64);
  dom = ops::JoinKeyDomain(TypeId::kStr, TypeId::kStr);
  ASSERT_TRUE(dom.ok());
  EXPECT_EQ(*dom, TypeId::kStr);
  EXPECT_FALSE(ops::JoinKeyDomain(TypeId::kStr, TypeId::kI64).ok());
}

// Reference check: IndexedDeltaJoin with indexes covering exactly the
// retained (old) rows must produce the same pair multiset as the
// non-indexed DeltaJoin over the same split.
void CheckIndexedEqualsDeltaJoin(const Bat& l, uint64_t l_old, const Bat& r,
                                 uint64_t r_old) {
  auto dom = ops::JoinKeyDomain(l.type(), r.type());
  ASSERT_TRUE(dom.ok());
  ops::RollingJoinIndex li(*dom), ri(*dom);
  ASSERT_TRUE(li.Append(l, 0, l_old).ok());
  ASSERT_TRUE(ri.Append(r, 0, r_old).ok());
  auto got = ops::IndexedDeltaJoin(l, l_old, li, r, r_old, ri);
  ASSERT_TRUE(got.ok());
  auto want = ops::DeltaJoin(l, l_old, r, r_old);
  ASSERT_TRUE(want.ok());
  std::multiset<std::pair<Oid, Oid>> got_set, want_set;
  for (size_t i = 0; i < got->size(); ++i) {
    got_set.emplace(got->left[i], got->right[i]);
  }
  for (size_t i = 0; i < want->size(); ++i) {
    want_set.emplace(want->left[i], want->right[i]);
  }
  EXPECT_EQ(got_set, want_set);
}

TEST(JoinTest, IndexedDeltaJoinMatchesDeltaJoin) {
  auto l = Bat::MakeI64({1, 2, 2, 3, 2, 1});  // old: rows 0-3, new: 4-5
  auto r = Bat::MakeI64({2, 1, 4, 2, 1});     // old: rows 0-2, new: 3-4
  CheckIndexedEqualsDeltaJoin(*l, 4, *r, 3);
  // Empty retained portions (the seed fire): everything from new x new.
  CheckIndexedEqualsDeltaJoin(*l, 0, *r, 0);
  // Empty new portions: no pairs at all.
  CheckIndexedEqualsDeltaJoin(*l, l->size(), *r, r->size());
  // Mixed-type keys meet in the f64 domain.
  auto rf = Bat::MakeF64({2.0, 1.0, 4.5, 2.0, 1.0});
  CheckIndexedEqualsDeltaJoin(*l, 4, *rf, 3);
  // String keys.
  auto ls = Bat::MakeStr({"a", "b", "a", "c"});
  auto rs = Bat::MakeStr({"b", "a", "a"});
  CheckIndexedEqualsDeltaJoin(*ls, 2, *rs, 2);
}

TEST(RollingJoinIndexTest, AppendProbeEvict) {
  auto keys = Bat::MakeI64({7, 8, 7, 9});
  ops::RollingJoinIndex idx(TypeId::kI64);
  ASSERT_TRUE(idx.Append(*keys, 0, keys->size()).ok());
  EXPECT_EQ(idx.next_pos(), 4u);
  EXPECT_EQ(idx.live_entries(), 4u);

  auto probe = Bat::MakeI64({7, 9, 5});
  std::vector<Oid> probe_out, pos_out;
  ASSERT_TRUE(idx.Probe(*probe, 0, probe->size(), &probe_out, &pos_out).ok());
  EXPECT_EQ(probe_out, (std::vector<Oid>{0, 0, 1}));
  EXPECT_EQ(pos_out, (std::vector<Oid>{0, 2, 3}));  // ascending per probe row

  // Evicting positions < 2 hides the first 7 but keeps the second.
  idx.EvictBelow(2);
  EXPECT_EQ(idx.live_entries(), 2u);
  probe_out.clear();
  pos_out.clear();
  ASSERT_TRUE(idx.Probe(*probe, 0, probe->size(), &probe_out, &pos_out).ok());
  EXPECT_EQ(probe_out, (std::vector<Oid>{0, 1}));
  EXPECT_EQ(pos_out, (std::vector<Oid>{2, 3}));
}

TEST(RollingJoinIndexTest, RebaseShiftsPositionsWithOwnerTrim) {
  // Mirrors the factory's physical trim: DropHead on the rolling column
  // and Rebase on the index in the same step keep positions == row ids.
  auto keys = Bat::MakeStr({"x", "y", "x", "z"});
  ops::RollingJoinIndex idx(TypeId::kStr);
  ASSERT_TRUE(idx.Append(*keys, 0, keys->size()).ok());
  idx.EvictBelow(2);
  EXPECT_EQ(idx.Rebase(), 2u);
  keys->DropHead(2);
  EXPECT_EQ(idx.next_pos(), 2u);
  EXPECT_EQ(idx.dead_entries(), 0u);

  auto probe = Bat::MakeStr({"x", "y", "z"});
  std::vector<Oid> probe_out, pos_out;
  ASSERT_TRUE(idx.Probe(*probe, 0, probe->size(), &probe_out, &pos_out).ok());
  // Surviving rows are "x" (now row 0) and "z" (now row 1); "y" was
  // evicted with the prefix.
  EXPECT_EQ(probe_out, (std::vector<Oid>{0, 2}));
  EXPECT_EQ(pos_out, (std::vector<Oid>{0, 1}));
  for (size_t i = 0; i < pos_out.size(); ++i) {
    EXPECT_EQ(keys->StrAt(pos_out[i]), probe->StrAt(probe_out[i]));
  }
}

TEST(RollingJoinIndexTest, F64DomainPromotesAndNormalizesZero) {
  auto keys = Bat::MakeF64({1.0, -0.0, 2.5});
  ops::RollingJoinIndex idx(TypeId::kF64);
  ASSERT_TRUE(idx.Append(*keys, 0, keys->size()).ok());
  // i64 probe keys are promoted; +0.0 must find the indexed -0.0.
  auto probe = Bat::MakeI64({1, 0});
  std::vector<Oid> probe_out, pos_out;
  ASSERT_TRUE(idx.Probe(*probe, 0, probe->size(), &probe_out, &pos_out).ok());
  EXPECT_EQ(probe_out, (std::vector<Oid>{0, 1}));
  EXPECT_EQ(pos_out, (std::vector<Oid>{0, 1}));
}

TEST(JoinTest, FetchOids) {
  auto col = Bat::MakeStr({"x", "y", "z"});
  auto out = ops::FetchOids(*col, {2, 0, 2});
  EXPECT_EQ(out->size(), 3u);
  EXPECT_EQ(out->StrAt(0), "z");
  EXPECT_EQ(out->StrAt(2), "z");
}

TEST(GroupTest, SingleKey) {
  auto key = Bat::MakeI64({1, 2, 1, 3, 2});
  auto groups = ops::GroupBy({key.get()});
  ASSERT_TRUE(groups.ok());
  EXPECT_EQ(groups->num_groups, 3u);
  EXPECT_EQ(groups->group_ids,
            (std::vector<uint32_t>{0, 1, 0, 2, 1}));
}

TEST(GroupTest, MultiKey) {
  auto k1 = Bat::MakeI64({1, 1, 2, 1});
  auto k2 = Bat::MakeStr({"a", "b", "a", "a"});
  auto groups = ops::GroupBy({k1.get(), k2.get()});
  ASSERT_TRUE(groups.ok());
  EXPECT_EQ(groups->num_groups, 3u);
  EXPECT_EQ(groups->group_ids[3], groups->group_ids[0]);
}

TEST(GroupTest, GroupedAggregates) {
  auto key = Bat::MakeI64({1, 2, 1, 2});
  auto val = Bat::MakeI64({10, 20, 30, 40});
  auto groups = ops::GroupBy({key.get()});
  ASSERT_TRUE(groups.ok());
  auto sums = ops::GroupedAgg(AggKind::kSum, val.get(), nullptr, *groups);
  ASSERT_TRUE(sums.ok());
  EXPECT_EQ((*sums)->I64Data()[0], 40);
  EXPECT_EQ((*sums)->I64Data()[1], 60);
  auto counts = ops::GroupedAgg(AggKind::kCount, nullptr, nullptr, *groups);
  EXPECT_EQ((*counts)->I64Data()[0], 2);
  auto avgs = ops::GroupedAgg(AggKind::kAvg, val.get(), nullptr, *groups);
  EXPECT_EQ((*avgs)->F64Data()[0], 20.0);
}

TEST(AggStateTest, ScalarAggregates) {
  auto col = Bat::MakeI64({4, 8, 2, 6});
  EXPECT_EQ(ops::ScalarAgg(AggKind::kSum, col.get(), nullptr, 4)->AsI64(),
            20);
  EXPECT_EQ(ops::ScalarAgg(AggKind::kMin, col.get(), nullptr, 4)->AsI64(), 2);
  EXPECT_EQ(ops::ScalarAgg(AggKind::kMax, col.get(), nullptr, 4)->AsI64(), 8);
  EXPECT_EQ(ops::ScalarAgg(AggKind::kAvg, col.get(), nullptr, 4)->AsF64(),
            5.0);
  EXPECT_EQ(ops::ScalarAgg(AggKind::kCount, nullptr, nullptr, 4)->AsI64(), 4);
}

TEST(AggStateTest, MergeEqualsWhole) {
  // The incremental invariant in miniature: folding two halves and merging
  // must equal folding the whole.
  auto whole = Bat::MakeF64({1.5, -2.0, 7.25, 0.0, 3.5, 9.0});
  auto a = whole->Slice(0, 3);
  auto b = whole->Slice(3, 6);
  ops::AggState sa, sb, sw;
  sa.AddColumn(*a, nullptr);
  sb.AddColumn(*b, nullptr);
  sw.AddColumn(*whole, nullptr);
  sa.Merge(sb);
  for (AggKind k : {AggKind::kCount, AggKind::kSum, AggKind::kAvg,
                    AggKind::kMin, AggKind::kMax}) {
    EXPECT_EQ(sa.Finalize(k, TypeId::kF64).ToString(),
              sw.Finalize(k, TypeId::kF64).ToString())
        << ops::AggKindName(k);
  }
}

// SQL empty-input conventions: COUNT over zero rows is 0, everything else
// is a typed NULL (SUM keeps its result-type rule: f64 in, f64 NULL out).
TEST(AggStateTest, EmptyInputConventions) {
  ops::AggState s;
  EXPECT_EQ(s.Finalize(AggKind::kCount, TypeId::kI64).AsI64(), 0);
  EXPECT_TRUE(s.Finalize(AggKind::kSum, TypeId::kI64).is_null());
  EXPECT_EQ(s.Finalize(AggKind::kSum, TypeId::kI64).type(), TypeId::kI64);
  EXPECT_TRUE(s.Finalize(AggKind::kSum, TypeId::kF64).is_null());
  EXPECT_EQ(s.Finalize(AggKind::kSum, TypeId::kF64).type(), TypeId::kF64);
  EXPECT_TRUE(s.Finalize(AggKind::kAvg, TypeId::kI64).is_null());
  EXPECT_EQ(s.Finalize(AggKind::kAvg, TypeId::kI64).type(), TypeId::kF64);
  EXPECT_TRUE(s.Finalize(AggKind::kMin, TypeId::kStr).is_null());
  EXPECT_TRUE(s.Finalize(AggKind::kMax, TypeId::kStr).is_null());
  EXPECT_TRUE(s.Finalize(AggKind::kMin, TypeId::kI64).is_null());
  EXPECT_TRUE(s.Finalize(AggKind::kMax, TypeId::kF64).is_null());
  EXPECT_TRUE(s.Finalize(AggKind::kMin, TypeId::kTs).is_null());
  EXPECT_EQ(s.Finalize(AggKind::kMin, TypeId::kTs).type(), TypeId::kTs);
  EXPECT_EQ(s.Finalize(AggKind::kSum, TypeId::kI64).ToString(), "NULL");
}

TEST(AggStateTest, ScaledMergeEqualsRepeatedMerge) {
  // Product rule of the pre-aggregated delta join: pairing a group of
  // rows with `times` opposite-side rows replicates count/sums `times`
  // times but leaves min/max untouched.
  auto col = Bat::MakeI64({4, -1, 7});
  ops::AggState other;
  other.AddColumn(*col, nullptr);

  ops::AggState scaled;
  scaled.ScaledMerge(other, 3);
  ops::AggState repeated;
  for (int i = 0; i < 3; ++i) repeated.Merge(other);

  EXPECT_EQ(scaled.count, repeated.count);
  EXPECT_EQ(scaled.isum, repeated.isum);
  EXPECT_EQ(scaled.dsum, repeated.dsum);
  for (AggKind k : {AggKind::kCount, AggKind::kSum, AggKind::kAvg,
                    AggKind::kMin, AggKind::kMax}) {
    EXPECT_EQ(scaled.Finalize(k, TypeId::kI64).ToString(),
              repeated.Finalize(k, TypeId::kI64).ToString())
        << ops::AggKindName(k);
  }
}

TEST(AggStateTest, ScaledMergeZeroTimesIsIdentity) {
  auto col = Bat::MakeI64({5});
  ops::AggState other;
  other.AddColumn(*col, nullptr);
  ops::AggState s;
  s.ScaledMerge(other, 0);
  EXPECT_EQ(s.count, 0u);
  EXPECT_TRUE(s.Finalize(AggKind::kSum, TypeId::kI64).is_null());
}

TEST(GroupedMergerTest, MergePartialsEqualsWhole) {
  const std::vector<TypeId> key_types{TypeId::kStr};
  const std::vector<std::pair<AggKind, TypeId>> aggs{
      {AggKind::kSum, TypeId::kI64}, {AggKind::kCount, TypeId::kI64}};

  auto keys = Bat::MakeStr({"a", "b", "a", "c", "b", "a"});
  auto vals = Bat::MakeI64({1, 2, 3, 4, 5, 6});

  ops::GroupedAggMerger whole(key_types, aggs);
  ASSERT_TRUE(whole.AddPartial({keys.get()}, {vals.get(), nullptr}).ok());

  ops::GroupedAggMerger m1(key_types, aggs), m2(key_types, aggs);
  auto k1 = keys->Slice(0, 3);
  auto v1 = vals->Slice(0, 3);
  auto k2 = keys->Slice(3, 6);
  auto v2 = vals->Slice(3, 6);
  ASSERT_TRUE(m1.AddPartial({k1.get()}, {v1.get(), nullptr}).ok());
  ASSERT_TRUE(m2.AddPartial({k2.get()}, {v2.get(), nullptr}).ok());
  ASSERT_TRUE(m1.MergeFrom(m2).ok());

  auto cw = std::move(whole).Finalize();
  auto cm = m1.Finalize();
  ASSERT_TRUE(cw.ok() && cm.ok());
  ASSERT_EQ((*cw)[0]->size(), (*cm)[0]->size());
  for (uint64_t i = 0; i < (*cw)[0]->size(); ++i) {
    EXPECT_EQ((*cw)[0]->GetValue(i).ToString(),
              (*cm)[0]->GetValue(i).ToString());
    EXPECT_EQ((*cw)[1]->GetValue(i).AsI64(), (*cm)[1]->GetValue(i).AsI64());
    EXPECT_EQ((*cw)[2]->GetValue(i).AsI64(), (*cm)[2]->GetValue(i).AsI64());
  }
}

// Expands MergeSortedRuns' run-length slices back to (run, row) pairs.
static std::vector<std::pair<int, Oid>> ExpandSlices(
    const std::vector<ops::MergeSlice>& slices) {
  std::vector<std::pair<int, Oid>> out;
  for (const ops::MergeSlice& s : slices) {
    for (uint64_t i = 0; i < s.len; ++i) out.emplace_back(s.run, s.begin + i);
  }
  return out;
}

TEST(SortTest, MergeSortedRunsEqualsStableSortOfConcat) {
  // Three runs with duplicate keys; merging must equal a stable sort of
  // the concatenation (ties keep run order, then in-run order) — the
  // incremental ORDER BY tail invariant.
  auto r0 = Bat::MakeI64({1, 3, 3, 8});
  auto r1 = Bat::MakeI64({2, 3, 9});
  auto r2 = Bat::MakeI64({3});
  auto merged = ops::MergeSortedRuns(
      {{{r0.get(), true}}, {{r1.get(), true}}, {{r2.get(), true}}});
  ASSERT_TRUE(merged.ok());
  const std::vector<std::pair<int, Oid>> want{
      {0, 0}, {1, 0}, {0, 1}, {0, 2}, {1, 1}, {2, 0}, {0, 3}, {1, 2}};
  EXPECT_EQ(ExpandSlices(*merged), want);
  // Slices are maximal: consecutive rows from one run coalesce, so the
  // 3,3 tie inside r0 is a single slice.
  for (size_t i = 1; i < merged->size(); ++i) {
    const ops::MergeSlice& prev = (*merged)[i - 1];
    const ops::MergeSlice& cur = (*merged)[i];
    EXPECT_FALSE(prev.run == cur.run && prev.begin + prev.len == cur.begin)
        << "slices " << i - 1 << " and " << i << " should have coalesced";
  }
}

TEST(SortTest, MergeSortedRunsDescendingAndEmptyRuns) {
  auto r0 = Bat::MakeI64({9, 4});
  auto r1 = Bat::MakeEmpty(TypeId::kI64);
  auto r2 = Bat::MakeI64({7});
  auto merged = ops::MergeSortedRuns(
      {{{r0.get(), false}}, {{r1.get(), false}}, {{r2.get(), false}}});
  ASSERT_TRUE(merged.ok());
  const std::vector<std::pair<int, Oid>> want{{0, 0}, {2, 0}, {0, 1}};
  EXPECT_EQ(ExpandSlices(*merged), want);
}

TEST(SortTest, MergeSortedRunsSingleRunIsOneSlice) {
  auto r0 = Bat::MakeI64({1, 2, 3, 4});
  auto merged = ops::MergeSortedRuns({{{r0.get(), true}}});
  ASSERT_TRUE(merged.ok());
  ASSERT_EQ(merged->size(), 1u);
  EXPECT_EQ((*merged)[0].run, 0);
  EXPECT_EQ((*merged)[0].begin, 0u);
  EXPECT_EQ((*merged)[0].len, 4u);
}

TEST(SortTest, SingleKeyAscDesc) {
  auto col = Bat::MakeI64({3, 1, 2});
  auto asc = ops::SortOrder({{col.get(), true}});
  ASSERT_TRUE(asc.ok());
  EXPECT_EQ(*asc, (std::vector<Oid>{1, 2, 0}));
  auto desc = ops::SortOrder({{col.get(), false}});
  EXPECT_EQ(*desc, (std::vector<Oid>{0, 2, 1}));
}

TEST(SortTest, MultiKeyStable) {
  auto k1 = Bat::MakeI64({1, 2, 1, 2});
  auto k2 = Bat::MakeStr({"z", "a", "a", "z"});
  auto order = ops::SortOrder({{k1.get(), true}, {k2.get(), true}});
  ASSERT_TRUE(order.ok());
  EXPECT_EQ(*order, (std::vector<Oid>{2, 0, 1, 3}));
}

TEST(SortTest, WithCandidates) {
  auto col = Bat::MakeI64({9, 3, 7, 1});
  auto cand = Candidates::FromVector({0, 2, 3});
  auto order = ops::SortOrder({{col.get(), true}}, &cand);
  ASSERT_TRUE(order.ok());
  EXPECT_EQ(*order, (std::vector<Oid>{3, 2, 0}));
}

}  // namespace
}  // namespace dc
