// Threaded integration tests: the full architecture running concurrently —
// receptors ingesting, the Petri-net scheduler firing factories from worker
// threads, emitters delivering — checked for completeness and mode
// equivalence under real concurrency.

#include <gtest/gtest.h>

#include <atomic>

#include "core/engine.h"
#include "tests/test_util.h"
#include "util/string_util.h"
#include "workload/generators.h"

namespace dc {
namespace {

using testutil::Threaded;

TEST(IntegrationTest, ReceptorToEmitterPipeline) {
  Engine engine(Threaded());
  ASSERT_TRUE(engine.Execute(workload::SensorDdl("s")).ok());

  std::atomic<uint64_t> rows_delivered{0};
  std::atomic<uint64_t> emissions{0};
  Engine::ContinuousOptions opts;
  opts.mode = ExecMode::kIncremental;
  opts.sink = [&](const ColumnSet& e) {
    rows_delivered += e.NumRows();
    ++emissions;
  };
  auto qid = engine.SubmitContinuous(
      "SELECT sensor, count(*) FROM s "
      "[RANGE 1 SECONDS SLIDE 500 MILLISECONDS] GROUP BY sensor",
      opts);
  ASSERT_TRUE(qid.ok()) << qid.status().ToString();

  workload::SensorConfig config;
  config.rows = 20000;
  config.ts_step = 500;  // 10 simulated seconds
  config.num_sensors = 16;
  auto r = engine.AttachReceptor("s", workload::MakeSensorGen(config),
                                 Receptor::Options{});
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(engine.WaitReceptor(*r).ok());
  ASSERT_TRUE(engine.WaitIdle());

  // 10 simulated seconds, windows every 500 ms: boundary at 0.5..10.0 fire
  // by watermark/seal except those starting past the last event.
  EXPECT_GE(emissions.load(), 18u);
  EXPECT_GT(rows_delivered.load(), 0u);
  // Everything was consumed and dropped.
  auto stats = engine.StreamStats("s");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->appended_total, 20000u);
  EXPECT_EQ(stats->resident_rows, 0u);
}

TEST(IntegrationTest, ModeEquivalenceUnderThreading) {
  // Run the same query in both modes concurrently on one threaded engine;
  // the emission sequences must match exactly despite arbitrary worker
  // interleavings.
  Engine engine(Threaded(3));
  ASSERT_TRUE(engine.Execute(workload::PacketDdl("p")).ok());
  const char* sql =
      "SELECT port, count(*), sum(bytes) FROM p "
      "[RANGE 1 SECONDS SLIDE 250 MILLISECONDS] GROUP BY port ORDER BY port";
  auto full =
      engine.SubmitContinuous(sql, testutil::WithMode(ExecMode::kFullReeval));
  auto inc = engine.SubmitContinuous(
      sql, testutil::WithMode(ExecMode::kIncremental));
  ASSERT_TRUE(full.ok() && inc.ok());

  workload::PacketConfig config;
  config.rows = 50000;
  config.ts_step = 100;
  auto r = engine.AttachReceptor("p", workload::MakePacketGen(config),
                                 Receptor::Options{});
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(engine.WaitReceptor(*r).ok());
  ASSERT_TRUE(engine.WaitIdle());

  auto fr = engine.TakeResults(*full);
  auto ir = engine.TakeResults(*inc);
  ASSERT_TRUE(fr.ok() && ir.ok());
  ASSERT_GT(fr->size(), 0u);
  EXPECT_EQ(testutil::EmissionStrings(*fr), testutil::EmissionStrings(*ir));
}

TEST(IntegrationTest, ManyQueriesManyWorkers) {
  Engine engine(Threaded(4));
  ASSERT_TRUE(engine.Execute(workload::PacketDdl("p")).ok());
  std::vector<int> qids;
  std::atomic<uint64_t> total_emissions{0};
  for (int i = 0; i < 12; ++i) {
    Engine::ContinuousOptions o;
    o.mode = i % 2 == 0 ? ExecMode::kIncremental : ExecMode::kFullReeval;
    o.sink = [&](const ColumnSet&) { ++total_emissions; };
    auto qid = engine.SubmitContinuous(
        StrFormat("SELECT count(*) FROM p [RANGE 1 SECONDS SLIDE 500 "
                  "MILLISECONDS] WHERE bytes > %d",
                  i * 100),
        o);
    ASSERT_TRUE(qid.ok());
    qids.push_back(*qid);
  }
  workload::PacketConfig config;
  config.rows = 30000;
  config.ts_step = 200;  // 6 simulated seconds
  auto r = engine.AttachReceptor("p", workload::MakePacketGen(config),
                                 Receptor::Options{});
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(engine.WaitReceptor(*r).ok());
  ASSERT_TRUE(engine.WaitIdle());

  // All factories saw the same boundaries (scalar count: every window
  // emits exactly one row).
  const uint64_t per_query = engine.GetFactory(qids[0])->Stats().emissions;
  EXPECT_GT(per_query, 0u);
  for (int qid : qids) {
    EXPECT_EQ(engine.GetFactory(qid)->Stats().emissions, per_query);
  }
  EXPECT_EQ(total_emissions.load(), per_query * qids.size());
  EXPECT_EQ(engine.StreamStats("p")->resident_rows, 0u);
}

TEST(IntegrationTest, RemoveQueryWhileStreaming) {
  Engine engine(Threaded(2));
  ASSERT_TRUE(engine.Execute(workload::SensorDdl("s")).ok());
  Engine::ContinuousOptions o;
  o.mode = ExecMode::kIncremental;
  auto q1 = engine.SubmitContinuous(
      "SELECT count(*) FROM s [RANGE 1 SECONDS SLIDE 500 MILLISECONDS]", o);
  auto q2 = engine.SubmitContinuous(
      "SELECT avg(temp) FROM s [RANGE 1 SECONDS SLIDE 500 MILLISECONDS]", o);
  ASSERT_TRUE(q1.ok() && q2.ok());
  workload::SensorConfig config;
  config.rows = 50000;
  config.ts_step = 100;
  Receptor::Options ropts;
  ropts.rows_per_sec = 100000;
  auto r = engine.AttachReceptor("s", workload::MakeSensorGen(config),
                                 ropts);
  ASSERT_TRUE(r.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  // Remove one query mid-stream; the other keeps running, and the basket
  // now drops tuples based on the survivor alone.
  ASSERT_TRUE(engine.RemoveContinuous(*q1).ok());
  ASSERT_TRUE(engine.WaitReceptor(*r).ok());
  ASSERT_TRUE(engine.WaitIdle());
  EXPECT_FALSE(engine.GetFactory(*q1));
  EXPECT_GT(engine.GetFactory(*q2)->Stats().emissions, 0u);
  EXPECT_EQ(engine.StreamStats("s")->resident_rows, 0u);
}

TEST(IntegrationTest, PauseStreamAndQueryUnderLoad) {
  Engine engine(Threaded(2));
  ASSERT_TRUE(engine.Execute(workload::SensorDdl("s")).ok());
  Engine::ContinuousOptions o;
  o.mode = ExecMode::kIncremental;
  auto qid = engine.SubmitContinuous(
      "SELECT count(*) FROM s [RANGE 1 SECONDS SLIDE 500 MILLISECONDS]", o);
  ASSERT_TRUE(qid.ok());
  workload::SensorConfig config;
  config.rows = 200000;
  config.ts_step = 100;
  Receptor::Options ropts;
  ropts.rows_per_sec = 50000;
  auto r = engine.AttachReceptor("s", workload::MakeSensorGen(config),
                                 ropts);
  ASSERT_TRUE(r.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_TRUE(engine.PauseQuery(*qid).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  const uint64_t paused_emissions = engine.GetFactory(*qid)->Stats().emissions;
  // While the query is paused, tuples accumulate (nothing consumes them).
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(engine.GetFactory(*qid)->Stats().emissions, paused_emissions);
  EXPECT_GT(engine.StreamStats("s")->resident_rows, 0u);
  ASSERT_TRUE(engine.ResumeQuery(*qid).ok());
  ASSERT_TRUE(engine.WaitReceptor(*r).ok());
  ASSERT_TRUE(engine.WaitIdle());
  EXPECT_GT(engine.GetFactory(*qid)->Stats().emissions, paused_emissions);
  EXPECT_EQ(engine.StreamStats("s")->resident_rows, 0u);
}

}  // namespace
}  // namespace dc
