// Copyright 2026 The DataCell Authors.
//
// Seeded torn-write / truncation fuzzer for the durability files
// (docs/DURABILITY.md). Each round copies one pristine post-checkpoint
// durability directory, mutates a single file (truncate to a random
// length, or flip one byte), and recovers:
//
//   * recovery must never crash or hang;
//   * if it reports OK, every query that survived in the catalog must —
//     after resuming the tape and sealing — emit a contiguous suffix of
//     the uninterrupted oracle (CRC framing turns arbitrary damage into
//     a shorter valid prefix, never divergent output);
//   * if the damage makes the snapshot/WAL pair inconsistent, recovery
//     must refuse loudly (non-OK status), not mis-emit.
//
// Deterministic and seeded like the other fuzzers: DC_FUZZ_SEED overrides
// the base seed, DC_FUZZ_ROUNDS the round count. On failure the round is
// greedily shrunk (truncations restore half the chopped tail at a time)
// to the mildest mutation that still fails, and the repro line printed.

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "core/engine.h"
#include "storage/wal.h"
#include "tests/crash_util.h"
#include "tests/durability_workload.h"
#include "tests/test_util.h"
#include "util/random.h"
#include "util/string_util.h"

namespace dc {
namespace {

using storage::FsyncPolicy;
using testutil::CopyDir;
using testutil::DurableSyncOptions;
using testutil::MakeTempDir;
using testutil::RemoveDirRecursive;
using testutil::WorkloadDdl;
using testutil::WorkloadFeed;
using testutil::WorkloadQueries;
using testutil::WorkloadRows;
using testutil::WorkloadSeal;
using testutil::WorkloadSubmit;
using testutil::WorkloadTake;
using testutil::WRow;

constexpr int kRows = 40;
const std::vector<size_t> kCkpts = {14, 28};

struct Mutation {
  std::string file;  // basename within the durability dir
  enum Kind { kTruncate, kFlip } kind = kTruncate;
  uint64_t arg = 0;  // kTruncate: new length; kFlip: byte offset
};

std::string Describe(const Mutation& m) {
  return StrFormat("%s(%s, %llu)",
                   m.kind == Mutation::kTruncate ? "truncate" : "flip",
                   m.file.c_str(), static_cast<unsigned long long>(m.arg));
}

/// True iff `got` is a contiguous suffix of `want` (non-asserting —
/// rounds report through return strings so the shrinker can re-run them).
bool SuffixOf(const std::vector<std::string>& got,
              const std::vector<std::string>& want) {
  if (got.size() > want.size()) return false;
  return std::equal(got.begin(), got.end(), want.end() - got.size());
}

/// One fuzz round against a mutated copy of the pristine dir. Returns ""
/// on success (including a loud refusal), else a failure description.
std::string RunRound(const std::string& pristine,
                     const std::vector<WRow>& rows,
                     const std::vector<std::vector<std::string>>& oracle,
                     const Mutation& m) {
  const std::string fdir = MakeTempDir("fuzz");
  CopyDir(pristine, fdir);
  {
    const std::string path = fdir + "/" + m.file;
    if (m.kind == Mutation::kTruncate) {
      if (::truncate(path.c_str(), static_cast<off_t>(m.arg)) != 0) {
        RemoveDirRecursive(fdir);
        return "mutation failed: " + Describe(m);
      }
    } else {
      FILE* f = fopen(path.c_str(), "r+b");
      if (f == nullptr) {
        RemoveDirRecursive(fdir);
        return "mutation failed: " + Describe(m);
      }
      fseek(f, static_cast<long>(m.arg), SEEK_SET);
      const int c = fgetc(f);
      fseek(f, static_cast<long>(m.arg), SEEK_SET);
      fputc((c ^ 0xa5) & 0xff, f);
      fclose(f);
    }
  }

  std::string err;
  {
    Engine rec(DurableSyncOptions(fdir, nullptr, FsyncPolicy::kInterval));
    if (!rec.recovery_status().ok()) {
      // A loud, documented refusal is a correct outcome for damage the
      // snapshot/WAL pair cannot cover.
      RemoveDirRecursive(fdir);
      return "";
    }

    // Rebuild whatever part of the catalog the damage erased; queries we
    // must resubmit see a basket state the original never did, so only
    // the intact ones participate in the oracle comparison.
    if (!rec.StreamStats("s").ok() &&
        !rec.Execute("CREATE STREAM s (ts timestamp, g int, v int, w double)")
             .ok()) {
      err = "re-create of stream s failed";
    }
    if (err.empty() && !rec.StreamStats("r").ok() &&
        !rec.Execute("CREATE STREAM r (rts timestamp, kr int, y int)").ok()) {
      err = "re-create of stream r failed";
    }
    std::map<std::string, int> by_sql;
    for (const ContinuousQueryInfo& q : rec.Queries()) by_sql[q.sql] = q.id;
    std::vector<int> qids;
    std::vector<bool> intact;
    const std::vector<std::string> sqls = WorkloadQueries();
    for (size_t i = 0; err.empty() && i < sqls.size(); ++i) {
      if (auto it = by_sql.find(sqls[i]); it != by_sql.end()) {
        qids.push_back(it->second);
        intact.push_back(true);
        continue;
      }
      auto q = rec.SubmitContinuous(
          sqls[i], testutil::WithMode(ExecMode::kIncremental));
      if (!q.ok()) {
        err = "resubmit failed: " + q.status().ToString();
        break;
      }
      qids.push_back(*q);
      intact.push_back(false);
    }

    if (err.empty()) {
      const uint64_t lo_s = rec.GetBasket("s")->HighSeq();
      const uint64_t lo_r = rec.GetBasket("r")->HighSeq();
      if (lo_s > rows.size() || lo_r > rows.size()) {
        err = StrFormat("replayed beyond the tape: s=%llu r=%llu",
                        static_cast<unsigned long long>(lo_s),
                        static_cast<unsigned long long>(lo_r));
      } else {
        WorkloadFeed(rec, rows, lo_s, lo_r, rows.size());
        WorkloadSeal(rec);
        for (size_t i = 0; err.empty() && i < qids.size(); ++i) {
          auto r = rec.TakeResults(qids[i]);
          if (!r.ok()) {
            err = "TakeResults: " + r.status().ToString();
            break;
          }
          if (!intact[i]) continue;
          const std::vector<std::string> got = testutil::EmissionStrings(*r);
          if (!SuffixOf(got, oracle[i])) {
            err = StrFormat(
                "query %d: recovered emissions (%d) are not a suffix of the "
                "oracle (%d)",
                static_cast<int>(i), static_cast<int>(got.size()),
                static_cast<int>(oracle[i].size()));
          }
        }
      }
    }
  }
  RemoveDirRecursive(fdir);
  return err;
}

TEST(WalFuzz, RandomTornAndTruncatedFilesNeverDiverge) {
  uint64_t base_seed = 20260809;
  if (const char* s = std::getenv("DC_FUZZ_SEED")) base_seed = strtoull(s, nullptr, 10);
  int rounds = 3;
  if (const char* s = std::getenv("DC_FUZZ_ROUNDS")) rounds = atoi(s);

  const std::vector<WRow> rows = WorkloadRows(kRows);

  // Uninterrupted oracle (fresh dir, full tape, sealed).
  std::vector<std::vector<std::string>> oracle;
  {
    const std::string odir = MakeTempDir("fuzzoracle");
    Engine e(DurableSyncOptions(odir, nullptr, FsyncPolicy::kInterval));
    WorkloadDdl(e);
    std::vector<int> qids = WorkloadSubmit(e);
    WorkloadFeed(e, rows, 0, 0, rows.size());
    WorkloadSeal(e);
    oracle = WorkloadTake(e, qids);
    RemoveDirRecursive(odir);
  }
  for (const auto& per_query : oracle) ASSERT_GT(per_query.size(), 3u);

  // Pristine mid-stream state: two checkpoints deep, unsealed, gracefully
  // shut down — catalog.wal, s.wal, r.wal, snapshot.dc, snapshot.prev.dc.
  const std::string pristine = MakeTempDir("fuzzpristine");
  {
    Engine e(DurableSyncOptions(pristine, nullptr, FsyncPolicy::kInterval));
    WorkloadDdl(e);
    std::vector<int> qids = WorkloadSubmit(e);
    size_t lo = 0;
    for (size_t c : kCkpts) {
      WorkloadFeed(e, rows, lo, lo, c);
      lo = c;
      ASSERT_TRUE(e.Checkpoint().ok());
    }
    WorkloadFeed(e, rows, lo, lo, rows.size());
  }
  std::vector<std::string> files;
  for (const auto& ent : std::filesystem::directory_iterator(pristine)) {
    if (ent.is_regular_file()) files.push_back(ent.path().filename().string());
  }
  std::sort(files.begin(), files.end());
  ASSERT_GE(files.size(), 5u) << "pristine dir is missing durability files";

  for (int round = 0; round < rounds; ++round) {
    const uint64_t seed = base_seed + static_cast<uint64_t>(round);
    Rng rng(seed);
    Mutation m;
    m.file = files[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(files.size()) - 1))];
    const auto size = static_cast<int64_t>(
        std::filesystem::file_size(pristine + "/" + m.file));
    if (size < 2 || rng.UniformInt(0, 1) == 0) {
      m.kind = Mutation::kTruncate;
      m.arg = static_cast<uint64_t>(rng.UniformInt(0, std::max<int64_t>(size - 1, 0)));
    } else {
      m.kind = Mutation::kFlip;
      m.arg = static_cast<uint64_t>(rng.UniformInt(0, size - 1));
    }

    std::string err = RunRound(pristine, rows, oracle, m);
    if (err.empty()) continue;

    // Greedy shrink: restore half the chopped tail at a time, keeping the
    // mildest truncation that still fails.
    if (m.kind == Mutation::kTruncate) {
      Mutation best = m;
      std::string best_err = err;
      uint64_t lo_len = m.arg;
      uint64_t hi_len = static_cast<uint64_t>(size);
      while (hi_len - lo_len > 1) {
        Mutation cand = m;
        cand.arg = lo_len + (hi_len - lo_len) / 2;
        const std::string cand_err = RunRound(pristine, rows, oracle, cand);
        if (!cand_err.empty()) {
          best = cand;
          best_err = cand_err;
          lo_len = cand.arg;
        } else {
          hi_len = cand.arg;
        }
      }
      m = best;
      err = best_err;
    }
    ADD_FAILURE() << "fuzz round " << round << " failed: " << err
                  << "\n  mutation: " << Describe(m)
                  << "\n  repro: DC_FUZZ_SEED="
                  << seed << " DC_FUZZ_ROUNDS=1 ./wal_fuzz_test";
  }
  RemoveDirRecursive(pristine);
}

}  // namespace
}  // namespace dc
