// Backpressure and empty-emission semantics, end to end:
//  * bounded baskets keep occupancy within cap + one in-flight batch while
//    a fast producer outruns a slow/paused consumer,
//  * parked receptors resume without tuple loss once consumers drain, and
//    Engine::Stop() while a receptor is parked does not deadlock,
//  * heartbeat watermarks keep advancing while ingest is parked,
//  * zero-row emissions are delivered (SQL count=0 over empty windows) and
//    FactoryStats::emissions equals emitter-delivered emissions.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "core/engine.h"
#include "tests/test_util.h"

namespace dc {
namespace {

Receptor::RowGen SequentialGen(int64_t n, Micros ts_step = 1000) {
  auto i = std::make_shared<int64_t>(0);
  return [n, i, ts_step](std::vector<Value>* row) {
    if (n >= 0 && *i >= n) return false;
    row->resize(2);
    (*row)[0] = Value::Ts(*i * ts_step);
    (*row)[1] = Value::I64(*i);
    ++*i;
    return true;
  };
}

EngineOptions BoundedThreaded(uint64_t max_rows, int workers = 2) {
  EngineOptions o;
  o.scheduler_workers = workers;
  o.basket_limits.max_rows = max_rows;
  return o;
}

bool WaitUntil(const std::function<bool()>& pred, int timeout_ms = 10000) {
  const Micros deadline = SteadyMicros() + timeout_ms * kMicrosPerMilli;
  while (SteadyMicros() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return pred();
}

TEST(BackpressureTest, BoundedOccupancyAndLosslessResume) {
  constexpr uint64_t kCap = 10000;
  constexpr uint64_t kBatch = 256;
  constexpr int64_t kRows = 30000;
  Engine engine(BoundedThreaded(kCap));
  ASSERT_TRUE(engine.Execute("CREATE STREAM s (ts timestamp, v int)").ok());

  std::atomic<uint64_t> delivered{0};
  Engine::ContinuousOptions qo;
  qo.mode = ExecMode::kFullReeval;
  qo.sink = [&](const ColumnSet& e) { delivered.fetch_add(e.NumRows()); };
  auto qid = engine.SubmitContinuous("SELECT v FROM s", qo);
  ASSERT_TRUE(qid.ok()) << qid.status().ToString();
  // Pause the only consumer so the basket must fill to its cap.
  ASSERT_TRUE(engine.PauseQuery(*qid).ok());

  Receptor::Options ro;
  ro.batch_rows = kBatch;
  auto rid = engine.AttachReceptor("s", SequentialGen(kRows), ro);
  ASSERT_TRUE(rid.ok());

  // The receptor must park against the full basket...
  ASSERT_TRUE(WaitUntil([&] {
    auto stats = engine.StreamStats("s");
    return stats.ok() && stats->append_stalls > 0;
  }));
  // ...and occupancy must never exceed cap + one in-flight batch, sampled
  // while the producer keeps hammering the bound.
  for (int i = 0; i < 50; ++i) {
    auto stats = engine.StreamStats("s");
    ASSERT_TRUE(stats.ok());
    EXPECT_LE(stats->resident_rows, kCap + kBatch);
    EXPECT_LE(stats->resident_hwm_rows, kCap + kBatch);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Heartbeats are not subject to capacity: the watermark keeps advancing
  // while ingest is parked.
  const Micros wm_before = engine.StreamStats("s")->event_watermark;
  ASSERT_TRUE(engine.Heartbeat("s", wm_before + 1).ok());
  EXPECT_GE(engine.StreamStats("s")->event_watermark, wm_before + 1);

  // Resume the consumer: ingest drains through the bound without loss.
  ASSERT_TRUE(engine.ResumeQuery(*qid).ok());
  ASSERT_TRUE(engine.WaitReceptor(*rid).ok());
  ASSERT_TRUE(engine.WaitIdle());
  EXPECT_TRUE(WaitUntil([&] { return delivered.load() == kRows; }));
  EXPECT_EQ(delivered.load(), static_cast<uint64_t>(kRows));
  auto stats = engine.StreamStats("s");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->appended_total, static_cast<uint64_t>(kRows));
  EXPECT_LE(stats->resident_hwm_rows, kCap + kBatch);
  EXPECT_GT(stats->append_stalls, 0u);
}

TEST(BackpressureTest, StopWhileReceptorParkedDoesNotDeadlock) {
  uint64_t appended = 0;
  {
    Engine engine(BoundedThreaded(/*max_rows=*/1000));
    ASSERT_TRUE(engine.Execute("CREATE STREAM s (ts timestamp, v int)").ok());
    // No query consumes the stream: an endless source must park for good.
    Receptor::Options ro;
    ro.batch_rows = 128;
    auto rid = engine.AttachReceptor("s", SequentialGen(-1), ro);
    ASSERT_TRUE(rid.ok());
    ASSERT_TRUE(WaitUntil([&] {
      auto stats = engine.StreamStats("s");
      return stats.ok() && stats->append_timeouts > 0;
    }));
    auto stats = engine.StreamStats("s");
    ASSERT_TRUE(stats.ok());
    EXPECT_LE(stats->resident_rows, 1000u + 128u);
    appended = stats->appended_total;
    // Engine destruction stops the parked receptor; reaching the end of
    // this scope (under the test timeout) is the assertion.
  }
  EXPECT_GT(appended, 0u);
}

TEST(BackpressureTest, PauseWhileParkedStaysSynchronous) {
  Engine engine(BoundedThreaded(/*max_rows=*/500));
  ASSERT_TRUE(engine.Execute("CREATE STREAM s (ts timestamp, v int)").ok());
  Receptor::Options ro;
  ro.batch_rows = 100;
  auto rid = engine.AttachReceptor("s", SequentialGen(-1), ro);
  ASSERT_TRUE(rid.ok());
  ASSERT_TRUE(WaitUntil([&] {
    auto stats = engine.StreamStats("s");
    return stats.ok() && stats->append_stalls > 0;
  }));
  // Pause() must return promptly even though the ingestion thread is
  // parked on basket space, and nothing may land after the ack.
  ASSERT_TRUE(engine.PauseReceptor(*rid).ok());
  const uint64_t at_pause = engine.StreamStats("s")->appended_total;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(engine.StreamStats("s")->appended_total, at_pause);
  ASSERT_TRUE(engine.ResumeReceptor(*rid).ok());
}

TEST(BackpressureTest, SyncModePushFailsFastInsteadOfSelfDeadlocking) {
  // In synchronous mode only the pushing thread could ever Pump(), so a
  // blocking wait for basket space can never be satisfied: the push must
  // surface ResourceExhausted, not hang.
  EngineOptions o = testutil::SyncOptions();
  o.basket_limits.max_rows = 2;
  Engine engine(o);
  ASSERT_TRUE(engine.Execute("CREATE STREAM s (ts timestamp, v int)").ok());
  auto qid = engine.SubmitContinuous("SELECT v FROM s");
  ASSERT_TRUE(qid.ok());
  ASSERT_TRUE(engine.PushRow("s", {Value::Ts(0), Value::I64(0)}).ok());
  ASSERT_TRUE(engine.PushRow("s", {Value::Ts(1), Value::I64(1)}).ok());
  const Status st = engine.PushRow("s", {Value::Ts(2), Value::I64(2)});
  EXPECT_TRUE(st.IsResourceExhausted()) << st.ToString();
  // Pump() drains the backlog; pushing works again.
  engine.Pump();
  EXPECT_TRUE(engine.PushRow("s", {Value::Ts(2), Value::I64(2)}).ok());
}

// --- Empty emissions (the headline bugfix) -------------------------------

using testutil::SyncEngineTest;

class EmptyEmissionTest : public SyncEngineTest {};

TEST_F(EmptyEmissionTest, ScalarAggregateOverEmptyWindowEmitsCountZero) {
  Exec("CREATE STREAM s (ts timestamp, v int)");
  const int q = Submit(
      "SELECT count(*), sum(v), min(v), max(v) FROM s "
      "[RANGE 2 SECONDS SLIDE 2 SECONDS]",
      ExecMode::kFullReeval);
  // One row in the first window, then four windows of pure silence closed
  // by heartbeats.
  PushPump("s", {Value::Ts(1 * kMicrosPerSecond), Value::I64(7)});
  ASSERT_TRUE(engine_.Heartbeat("s", 10 * kMicrosPerSecond).ok());
  engine_.Pump();
  const std::vector<ColumnSet> emissions = Take(q);
  ASSERT_EQ(emissions.size(), 5u);  // boundaries at 2,4,6,8,10 s
  EXPECT_TRUE(testutil::ColumnSetMatches(emissions[0],
                                         {{"1", "7", "7", "7"}}));
  for (size_t i = 1; i < emissions.size(); ++i) {
    // SQL semantics for the empty window: one row, count = 0. (NULLs are a
    // documented non-feature; sum/min/max render as 0 over empty input.)
    ASSERT_EQ(emissions[i].NumRows(), 1u) << "emission " << i;
    EXPECT_EQ(emissions[i].Row(0)[0].ToString(), "0") << "emission " << i;
  }
}

TEST_F(EmptyEmissionTest, ProjectionOverEmptyWindowDeliversEmptyResultSet) {
  Exec("CREATE STREAM s (ts timestamp, v int)");
  const int q = Submit(
      "SELECT ts, v FROM s [RANGE 2 SECONDS SLIDE 2 SECONDS] WHERE v > 100",
      ExecMode::kFullReeval);
  PushPump("s", {Value::Ts(1 * kMicrosPerSecond), Value::I64(7)});  // filtered
  PushPump("s", {Value::Ts(3 * kMicrosPerSecond), Value::I64(200)});
  ASSERT_TRUE(engine_.Heartbeat("s", 6 * kMicrosPerSecond).ok());
  engine_.Pump();
  const std::vector<ColumnSet> emissions = Take(q);
  // Windows (0,2], (2,4], (4,6]: empty, one row, empty — all delivered.
  ASSERT_EQ(emissions.size(), 3u);
  EXPECT_EQ(emissions[0].NumRows(), 0u);
  ASSERT_EQ(emissions[0].cols.size(), 2u);  // schema survives empty results
  EXPECT_EQ(emissions[0].names[1], "v");
  EXPECT_EQ(emissions[1].NumRows(), 1u);
  EXPECT_EQ(emissions[2].NumRows(), 0u);
}

TEST_F(EmptyEmissionTest, FactoryEmissionsMatchEmitterDeliveries) {
  Exec("CREATE STREAM s (ts timestamp, v int)");
  const int q = Submit(
      "SELECT v FROM s [RANGE 1 SECONDS SLIDE 1 SECONDS] WHERE v < 0",
      ExecMode::kFullReeval);
  PushPump("s", {Value::Ts(0), Value::I64(5)});
  ASSERT_TRUE(engine_.Heartbeat("s", 8 * kMicrosPerSecond).ok());
  engine_.Pump();
  const std::vector<ColumnSet> emissions = Take(q);  // drains the emitter
  // Every window is empty (v < 0 never holds), yet every emission is
  // delivered: the producer and consumer sides must agree exactly.
  const FactoryStats fs = engine_.GetFactory(q)->Stats();
  std::vector<ContinuousQueryInfo> infos = engine_.Queries();
  ASSERT_EQ(infos.size(), 1u);
  const EmitterStats es = infos[0].emitter;
  EXPECT_GT(fs.emissions, 0u);
  EXPECT_EQ(fs.emissions, es.emissions);
  EXPECT_EQ(fs.empty_emissions, es.empty_emissions);
  EXPECT_EQ(fs.emissions, emissions.size());
  EXPECT_EQ(fs.empty_emissions, fs.emissions);
  EXPECT_EQ(infos[0].out_basket.empty_batches, fs.empty_emissions);
}

}  // namespace
}  // namespace dc
