// Unit tests for src/util/sync.h: the capability-annotated wrappers and
// the debug-build lock-rank validator. The compile-time layer (Clang TSA)
// is exercised by the `thread-safety` preset and the configure-time
// compile-fail gate (tests/compile_fail/requires_misuse.cc); this suite
// covers the runtime layer.

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/sync.h"

namespace dc {
namespace {

TEST(MutexTest, LockUnlockTryLock) {
  Mutex mu(LockRank::kLeaf);
  mu.Lock();
  // Contended TryLock from another thread must fail, not block.
  std::atomic<bool> acquired{true};
  std::thread t([&] { acquired = mu.TryLock(); });
  t.join();
  EXPECT_FALSE(acquired);
  mu.Unlock();
  EXPECT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(MutexTest, MutexLockProvidesExclusion) {
  Mutex mu(LockRank::kLeaf);
  int counter = 0;
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&] {
      for (int j = 0; j < 1000; ++j) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, 4000);
}

TEST(SharedMutexTest, ReadersShareWritersExclude) {
  SharedMutex mu(LockRank::kLeaf);
  int value = 0;
  std::atomic<int> concurrent_readers{0};
  std::atomic<int> max_concurrent{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 3; ++i) {
    threads.emplace_back([&] {
      for (int j = 0; j < 200; ++j) {
        ReaderLock lock(mu);
        int now = ++concurrent_readers;
        int prev = max_concurrent.load();
        while (now > prev && !max_concurrent.compare_exchange_weak(prev, now)) {
        }
        --concurrent_readers;
      }
    });
  }
  threads.emplace_back([&] {
    for (int j = 0; j < 200; ++j) {
      WriterLock lock(mu);
      ++value;
    }
  });
  for (auto& t : threads) t.join();
  EXPECT_EQ(value, 200);
  // Not guaranteed by the API, but with 3 readers hammering it the
  // overlap is effectively certain; a regression to exclusive-only
  // reader locks would show up here.
  EXPECT_GE(max_concurrent.load(), 1);
}

TEST(CondVarTest, WaitNotify) {
  Mutex mu(LockRank::kLeaf);
  CondVar cv;
  bool ready = false;
  std::thread t([&] {
    MutexLock lock(mu);
    ready = true;
    cv.NotifyOne();
  });
  {
    MutexLock lock(mu);
    while (!ready) cv.Wait(mu);
    EXPECT_TRUE(ready);
  }
  t.join();
}

TEST(CondVarTest, WaitForTimesOut) {
  Mutex mu(LockRank::kLeaf);
  CondVar cv;
  MutexLock lock(mu);
  EXPECT_FALSE(cv.WaitFor(mu, 1000));  // nobody notifies: times out
  EXPECT_FALSE(cv.WaitFor(mu, 0));     // non-positive: immediate false
  EXPECT_FALSE(cv.WaitFor(mu, -5));
}

#if DC_LOCK_VALIDATOR

TEST(LockValidatorTest, TracksHeldDepth) {
  EXPECT_EQ(sync_internal::HeldLockDepthForTest(), 0);
  Mutex outer(LockRank::kEngine);
  Mutex inner(LockRank::kBasket);
  {
    MutexLock l1(outer);
    EXPECT_EQ(sync_internal::HeldLockDepthForTest(), 1);
    {
      MutexLock l2(inner);
      EXPECT_EQ(sync_internal::HeldLockDepthForTest(), 2);
    }
    EXPECT_EQ(sync_internal::HeldLockDepthForTest(), 1);
  }
  EXPECT_EQ(sync_internal::HeldLockDepthForTest(), 0);
}

TEST(LockValidatorTest, ToleratesOutOfOrderRelease) {
  // Hand-over-hand: release the first-acquired lock first. The held-lock
  // stack must stay consistent (releases scan, not pop).
  Mutex a(LockRank::kEngine);
  Mutex b(LockRank::kBasket);
  a.Lock();
  b.Lock();
  a.Unlock();
  EXPECT_EQ(sync_internal::HeldLockDepthForTest(), 1);
  b.Unlock();
  EXPECT_EQ(sync_internal::HeldLockDepthForTest(), 0);
}

TEST(LockValidatorDeathTest, AbortsOnRankInversion) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex basket(LockRank::kBasket);
  Mutex engine(LockRank::kEngine);
  EXPECT_DEATH(
      {
        MutexLock l1(basket);   // rank 100
        MutexLock l2(engine);   // rank 30: inversion
      },
      "lock rank inversion: acquiring 'engine' \\(rank 30\\) while holding "
      "'basket' \\(rank 100\\)");
}

TEST(LockValidatorDeathTest, AbortsOnEqualRankReacquisition) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Equal ranks are forbidden too — that is what catches self-deadlock
  // (recursive acquisition of one mutex) on any schedule.
  Mutex mu(LockRank::kLeaf);
  EXPECT_DEATH(
      {
        MutexLock l1(mu);
        MutexLock l2(mu);
      },
      "lock rank inversion");
}

TEST(LockValidatorDeathTest, SharedAcquisitionChecksRankToo) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  SharedMutex reg(LockRank::kSchedRegistry);
  Mutex monitor(LockRank::kMonitor);
  EXPECT_DEATH(
      {
        ReaderLock l1(reg);      // rank 70, shared mode
        MutexLock l2(monitor);   // rank 10: inversion
      },
      "lock rank inversion");
}

#else  // !DC_LOCK_VALIDATOR

TEST(LockValidatorTest, CompiledOut) {
  GTEST_SKIP() << "lock validator compiled out (NDEBUG build without "
                  "DC_LOCK_VALIDATOR=ON); the Debug/asan/tsan presets "
                  "exercise it";
}

#endif  // DC_LOCK_VALIDATOR

}  // namespace
}  // namespace dc
