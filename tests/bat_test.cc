// Unit tests for the columnar kernel containers: Value, Bat, StringHeap,
// Candidates, ColumnSet.

#include <gtest/gtest.h>

#include "bat/bat.h"
#include "bat/candidates.h"
#include "bat/string_heap.h"
#include "bat/types.h"

namespace dc {
namespace {

TEST(ValueTest, BasicsAndToString) {
  EXPECT_EQ(Value::I64(42).ToString(), "42");
  EXPECT_EQ(Value::F64(2.5).ToString(), "2.5");
  EXPECT_EQ(Value::F64(3.0).ToString(), "3");
  EXPECT_EQ(Value::Str("hi").ToString(), "hi");
  EXPECT_EQ(Value::Bool(true).ToString(), "true");
  EXPECT_EQ(Value::Ts(5).type(), TypeId::kTs);
}

TEST(ValueTest, Compare) {
  EXPECT_LT(Value::I64(1).Compare(Value::I64(2)), 0);
  EXPECT_EQ(Value::I64(2).Compare(Value::F64(2.0)), 0);
  EXPECT_GT(Value::Str("b").Compare(Value::Str("a")), 0);
  EXPECT_LT(Value::Bool(false).Compare(Value::Bool(true)), 0);
}

TEST(ValueTest, Casts) {
  EXPECT_EQ(Value::I64(3).CastTo(TypeId::kF64)->AsF64(), 3.0);
  EXPECT_EQ(Value::Str("17").CastTo(TypeId::kI64)->AsI64(), 17);
  EXPECT_EQ(Value::Str("2.5").CastTo(TypeId::kF64)->AsF64(), 2.5);
  EXPECT_EQ(Value::F64(9.9).CastTo(TypeId::kI64)->AsI64(), 9);
  EXPECT_EQ(Value::I64(5).CastTo(TypeId::kTs)->AsI64(), 5);
  EXPECT_EQ(Value::I64(12).CastTo(TypeId::kStr)->AsStr(), "12");
  EXPECT_FALSE(Value::Str("abc").CastTo(TypeId::kI64).ok());
}

TEST(TypeTest, Names) {
  EXPECT_STREQ(TypeName(TypeId::kI64), "i64");
  EXPECT_EQ(*TypeFromName("BIGINT"), TypeId::kI64);
  EXPECT_EQ(*TypeFromName("varchar"), TypeId::kStr);
  EXPECT_EQ(*TypeFromName("timestamp"), TypeId::kTs);
  EXPECT_FALSE(TypeFromName("blob").ok());
}

TEST(StringHeapTest, AddAndGet) {
  StringHeap heap;
  const uint64_t a = heap.Add("hello");
  const uint64_t b = heap.Add("");
  const uint64_t c = heap.Add("world");
  EXPECT_EQ(heap.Get(a), "hello");
  EXPECT_EQ(heap.Get(b), "");
  EXPECT_EQ(heap.Get(c), "world");
}

TEST(BatTest, AppendAndRead) {
  auto b = Bat::MakeI64({1, 2, 3});
  EXPECT_EQ(b->size(), 3u);
  b->AppendI64(4);
  EXPECT_EQ(b->I64Data()[3], 4);
  EXPECT_EQ(b->GetValue(0).AsI64(), 1);
}

TEST(BatTest, StringColumn) {
  auto b = Bat::MakeStr({"aa", "bb", "cc"});
  EXPECT_EQ(b->StrAt(1), "bb");
  b->AppendStr("dd");
  EXPECT_EQ(b->size(), 4u);
  EXPECT_EQ(b->GetValue(3).AsStr(), "dd");
}

TEST(BatTest, SliceAndGather) {
  auto b = Bat::MakeI64({10, 20, 30, 40, 50});
  auto s = b->Slice(1, 4);
  EXPECT_EQ(s->size(), 3u);
  EXPECT_EQ(s->I64Data()[0], 20);
  auto g = b->Gather(Candidates::FromVector({0, 2, 4}));
  EXPECT_EQ(g->size(), 3u);
  EXPECT_EQ(g->I64Data()[2], 50);
}

TEST(BatTest, DropHeadIntColumn) {
  auto b = Bat::MakeI64({1, 2, 3, 4});
  b->DropHead(2);
  EXPECT_EQ(b->size(), 2u);
  EXPECT_EQ(b->I64Data()[0], 3);
}

TEST(BatTest, DropHeadRebuildsStringHeap) {
  auto b = Bat::MakeStr({"first", "second", "third"});
  const size_t before = b->MemoryBytes();
  b->DropHead(2);
  EXPECT_EQ(b->size(), 1u);
  EXPECT_EQ(b->StrAt(0), "third");
  EXPECT_LT(b->MemoryBytes(), before);
}

TEST(BatTest, AppendRangeAcrossTypes) {
  auto src = Bat::MakeF64({1.5, 2.5, 3.5});
  Bat dst(TypeId::kF64);
  dst.AppendRange(*src, 1, 3);
  EXPECT_EQ(dst.size(), 2u);
  EXPECT_EQ(dst.F64Data()[0], 2.5);
}

TEST(BatTest, AppendValueCoercesNumeric) {
  Bat dst(TypeId::kF64);
  dst.AppendValue(Value::I64(3));
  EXPECT_EQ(dst.F64Data()[0], 3.0);
}

TEST(CandidatesTest, DenseRange) {
  auto c = Candidates::Range(5, 3);
  EXPECT_TRUE(c.is_dense());
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c.At(0), 5u);
  EXPECT_EQ(c.At(2), 7u);
  EXPECT_TRUE(c.Contains(6));
  EXPECT_FALSE(c.Contains(8));
}

TEST(CandidatesTest, VectorNormalizesToDense) {
  auto c = Candidates::FromVector({3, 4, 5});
  EXPECT_TRUE(c.is_dense());
  auto sparse = Candidates::FromVector({3, 5, 9});
  EXPECT_FALSE(sparse.is_dense());
  EXPECT_TRUE(sparse.Contains(5));
}

TEST(CandidatesTest, IntersectDense) {
  auto a = Candidates::Range(0, 10);
  auto b = Candidates::Range(5, 10);
  auto c = Candidates::Intersect(a, b);
  EXPECT_EQ(c.size(), 5u);
  EXPECT_EQ(c.At(0), 5u);
}

TEST(CandidatesTest, IntersectSparse) {
  auto a = Candidates::FromVector({1, 3, 5, 7});
  auto b = Candidates::FromVector({3, 4, 7, 9});
  auto c = Candidates::Intersect(a, b);
  EXPECT_EQ(c.ToVector(), (std::vector<Oid>{3, 7}));
}

TEST(CandidatesTest, UnionAndDifference) {
  auto a = Candidates::FromVector({1, 3, 5});
  auto b = Candidates::FromVector({2, 3, 6});
  EXPECT_EQ(Candidates::Union(a, b).ToVector(),
            (std::vector<Oid>{1, 2, 3, 5, 6}));
  auto domain = Candidates::Range(0, 7);
  EXPECT_EQ(Candidates::Difference(domain, a).ToVector(),
            (std::vector<Oid>{0, 2, 4, 6}));
}

TEST(CandidatesTest, EmptyBehaviour) {
  Candidates empty;
  EXPECT_TRUE(empty.empty());
  auto a = Candidates::Range(0, 5);
  EXPECT_EQ(Candidates::Intersect(empty, a).size(), 0u);
  EXPECT_EQ(Candidates::Union(empty, a).size(), 5u);
}

TEST(ColumnSetTest, FindAndRow) {
  ColumnSet cs;
  cs.names = {"a", "b"};
  cs.cols = {Bat::MakeI64({1, 2}), Bat::MakeStr({"x", "y"})};
  EXPECT_EQ(*cs.Find("b"), 1u);
  EXPECT_FALSE(cs.Find("z").ok());
  auto row = cs.Row(1);
  EXPECT_EQ(row[0].AsI64(), 2);
  EXPECT_EQ(row[1].AsStr(), "y");
  EXPECT_NE(cs.ToString().find("a"), std::string::npos);
}

}  // namespace
}  // namespace dc
