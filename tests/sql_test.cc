// Unit tests for the SQL front-end: lexer and parser (incl. the DataCell
// window extension).

#include <gtest/gtest.h>

#include "sql/parser.h"
#include "sql/token.h"

namespace dc::sql {
namespace {

TEST(LexerTest, BasicTokens) {
  auto tokens = Lex("SELECT x, 42 FROM t WHERE y >= 1.5");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "select");  // lower-cased
  EXPECT_EQ((*tokens)[3].int_val, 42);
  EXPECT_EQ((*tokens)[8].type, TokenType::kGe);
  EXPECT_EQ((*tokens)[9].float_val, 1.5);
  EXPECT_EQ(tokens->back().type, TokenType::kEnd);
}

TEST(LexerTest, StringsAndEscapes) {
  auto tokens = Lex("'it''s'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kString);
  EXPECT_EQ((*tokens)[0].text, "it's");
  EXPECT_FALSE(Lex("'unterminated").ok());
}

TEST(LexerTest, CommentsSkipped) {
  auto tokens = Lex("select x -- trailing comment\nfrom t");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[2].text, "from");
}

TEST(LexerTest, OperatorsAndBrackets) {
  auto tokens = Lex("<> != <= >= [ ] ( ) . ; %");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kNe);
  EXPECT_EQ((*tokens)[1].type, TokenType::kNe);
  EXPECT_EQ((*tokens)[2].type, TokenType::kLe);
  EXPECT_EQ((*tokens)[3].type, TokenType::kGe);
  EXPECT_EQ((*tokens)[4].type, TokenType::kLBracket);
  EXPECT_EQ((*tokens)[10].type, TokenType::kPercent);
}

const SelectStmt& AsSelect(const Statement& s) {
  return std::get<SelectStmt>(s);
}

TEST(ParserTest, SimpleSelect) {
  auto stmt = ParseStatement("SELECT a, b FROM t WHERE a > 5");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const SelectStmt& sel = AsSelect(*stmt);
  EXPECT_EQ(sel.items.size(), 2u);
  EXPECT_EQ(sel.from.size(), 1u);
  EXPECT_EQ(sel.from[0].name, "t");
  ASSERT_NE(sel.where, nullptr);
  EXPECT_EQ(sel.where->ToString(), "(a > 5)");
}

TEST(ParserTest, SelectStar) {
  auto stmt = ParseStatement("SELECT * FROM t");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE(AsSelect(*stmt).items[0].star);
}

TEST(ParserTest, ExpressionPrecedence) {
  auto stmt = ParseStatement("SELECT a + b * 2 - c FROM t");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(AsSelect(*stmt).items[0].expr->ToString(),
            "((a + (b * 2)) - c)");
}

TEST(ParserTest, LogicalPrecedence) {
  auto stmt =
      ParseStatement("SELECT a FROM t WHERE a > 1 AND b < 2 OR NOT c = 3");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(AsSelect(*stmt).where->ToString(),
            "(((a > 1) AND (b < 2)) OR (NOT (c = 3)))");
}

TEST(ParserTest, BetweenAndAliases) {
  auto stmt = ParseStatement(
      "SELECT price * 2 AS dbl FROM trades t WHERE price BETWEEN 1 AND 9");
  ASSERT_TRUE(stmt.ok());
  const SelectStmt& sel = AsSelect(*stmt);
  EXPECT_EQ(sel.items[0].alias, "dbl");
  EXPECT_EQ(sel.from[0].alias, "t");
  EXPECT_EQ(sel.where->ToString(), "(price BETWEEN 1 AND 9)");
}

TEST(ParserTest, Aggregates) {
  auto stmt = ParseStatement(
      "SELECT g, count(*), sum(v), avg(v) FROM t GROUP BY g "
      "HAVING count(*) > 2 ORDER BY sum(v) DESC LIMIT 10");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const SelectStmt& sel = AsSelect(*stmt);
  EXPECT_EQ(sel.items[1].expr->ToString(), "count(*)");
  EXPECT_EQ(sel.group_by.size(), 1u);
  ASSERT_NE(sel.having, nullptr);
  EXPECT_EQ(sel.order_by.size(), 1u);
  EXPECT_FALSE(sel.order_by[0].ascending);
  EXPECT_EQ(sel.limit, 10);
}

TEST(ParserTest, CountStarOnlyForCount) {
  EXPECT_FALSE(ParseStatement("SELECT sum(*) FROM t").ok());
}

TEST(ParserTest, JoinOn) {
  auto stmt = ParseStatement(
      "SELECT a.x FROM a JOIN b ON a.k = b.k WHERE a.x > 0");
  ASSERT_TRUE(stmt.ok());
  const SelectStmt& sel = AsSelect(*stmt);
  EXPECT_EQ(sel.from.size(), 2u);
  // Join condition folded into WHERE.
  EXPECT_EQ(sel.where->ToString(), "((a.x > 0) AND (a.k = b.k))");
}

TEST(ParserTest, CommaJoin) {
  auto stmt = ParseStatement("SELECT a.x FROM a, b WHERE a.k = b.k");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(AsSelect(*stmt).from.size(), 2u);
}

TEST(ParserTest, RowsWindow) {
  auto stmt = ParseStatement("SELECT sum(v) FROM s [ROWS 100 SLIDE 10]");
  ASSERT_TRUE(stmt.ok());
  const auto& w = AsSelect(*stmt).from[0].window;
  ASSERT_TRUE(w.has_value());
  EXPECT_TRUE(w->rows);
  EXPECT_EQ(w->size, 100);
  EXPECT_EQ(w->slide, 10);
}

TEST(ParserTest, RangeWindowUnits) {
  auto stmt = ParseStatement(
      "SELECT sum(v) FROM s [RANGE 2 MINUTES SLIDE 30 SECONDS]");
  ASSERT_TRUE(stmt.ok());
  const auto& w = AsSelect(*stmt).from[0].window;
  ASSERT_TRUE(w.has_value());
  EXPECT_FALSE(w->rows);
  EXPECT_EQ(w->size, 2 * kMicrosPerMinute);
  EXPECT_EQ(w->slide, 30 * kMicrosPerSecond);
}

TEST(ParserTest, TumblingWindowDefaultsSlide) {
  auto stmt = ParseStatement("SELECT sum(v) FROM s [ROWS 50]");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(AsSelect(*stmt).from[0].window->slide, 50);
}

TEST(ParserTest, WindowValidation) {
  EXPECT_FALSE(ParseStatement("SELECT v FROM s [ROWS 0]").ok());
  EXPECT_FALSE(ParseStatement("SELECT v FROM s [ROWS 5 SLIDE 10]").ok());
  EXPECT_FALSE(ParseStatement("SELECT v FROM s [RANGE 5 PARSECS]").ok());
}

TEST(ParserTest, CreateTableAndStream) {
  auto t = ParseStatement("CREATE TABLE t (a int, b varchar, c double)");
  ASSERT_TRUE(t.ok());
  const auto& ct = std::get<CreateStmt>(*t);
  EXPECT_FALSE(ct.is_stream);
  EXPECT_EQ(ct.columns.size(), 3u);
  EXPECT_EQ(ct.columns[1].second, TypeId::kStr);

  auto s = ParseStatement("CREATE STREAM s (ts timestamp, v int)");
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(std::get<CreateStmt>(*s).is_stream);
}

TEST(ParserTest, Insert) {
  auto stmt = ParseStatement(
      "INSERT INTO t VALUES (1, 'x', 2.5), (-2, 'y', 0.5)");
  ASSERT_TRUE(stmt.ok());
  const auto& ins = std::get<InsertStmt>(*stmt);
  EXPECT_EQ(ins.rows.size(), 2u);
  EXPECT_EQ(ins.rows[1][0].AsI64(), -2);
  EXPECT_EQ(ins.rows[0][1].AsStr(), "x");
}

TEST(ParserTest, Script) {
  auto script = ParseScript(
      "CREATE TABLE t (a int); INSERT INTO t VALUES (1); SELECT a FROM t;");
  ASSERT_TRUE(script.ok());
  EXPECT_EQ(script->size(), 3u);
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseStatement("SELECT").ok());
  EXPECT_FALSE(ParseStatement("SELECT a").ok());                 // no FROM
  EXPECT_FALSE(ParseStatement("SELECT a FROM t WHERE").ok());
  EXPECT_FALSE(ParseStatement("FROB x").ok());
  EXPECT_FALSE(ParseStatement("SELECT a FROM t LIMIT -1").ok());
  EXPECT_FALSE(ParseStatement("SELECT a FROM t extra garbage ,").ok());
  EXPECT_FALSE(ParseStatement("SELECT a FROM a JOIN b").ok());   // missing ON
}

}  // namespace
}  // namespace dc::sql
