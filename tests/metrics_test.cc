// Unit tests for src/monitor/metrics.h: handle semantics (create-on-first-
// use, shared handles, Remove keeps handles valid), snapshot collection,
// and the JSON / Prometheus exposition formats.

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "monitor/metrics.h"

namespace dc::monitor {
namespace {

TEST(MetricsRegistryTest, GetReturnsSameHandle) {
  MetricsRegistry reg;
  auto c1 = reg.GetCounter("ingest.rows");
  auto c2 = reg.GetCounter("ingest.rows");
  EXPECT_EQ(c1.get(), c2.get());
  c1->Add(3);
  c2->Add(2);
  EXPECT_EQ(c1->Value(), 5u);

  auto h1 = reg.GetHistogram("lat");
  auto h2 = reg.GetHistogram("lat");
  EXPECT_EQ(h1.get(), h2.get());
}

TEST(MetricsRegistryTest, GaugeLastWriteWins) {
  MetricsRegistry reg;
  auto g = reg.GetGauge("basket.rows");
  g->Set(10.5);
  g->Set(7.0);
  EXPECT_DOUBLE_EQ(g->Value(), 7.0);
}

TEST(MetricsRegistryTest, HistogramRecordsAndSnapshots) {
  MetricsRegistry reg;
  auto h = reg.GetHistogram("lat_us");
  for (int i = 1; i <= 100; ++i) h->Record(i * 1000);
  const Histogram snap = h->Snapshot();
  EXPECT_EQ(snap.count(), 100u);
  EXPECT_GE(snap.Percentile(0.99), snap.Percentile(0.50));
  h->Reset();
  EXPECT_EQ(h->Snapshot().count(), 0u);
}

TEST(MetricsRegistryTest, RemoveDropsFromExpositionButKeepsHandle) {
  MetricsRegistry reg;
  auto c = reg.GetCounter("gone");
  c->Add(1);
  EXPECT_TRUE(reg.Remove("gone"));
  EXPECT_FALSE(reg.Remove("gone"));
  EXPECT_EQ(reg.ToJson().find("gone"), std::string::npos);
  c->Add(1);  // handle stays valid after Remove
  EXPECT_EQ(c->Value(), 2u);
  // Re-registering the name starts a fresh metric.
  auto c2 = reg.GetCounter("gone");
  EXPECT_EQ(c2->Value(), 0u);
  EXPECT_NE(c2.get(), c.get());
}

TEST(MetricsRegistryTest, CollectReturnsAllKindsSorted) {
  MetricsRegistry reg;
  reg.GetCounter("b.count")->Add(4);
  reg.GetGauge("a.rate")->Set(1.5);
  reg.GetHistogram("c.lat")->Record(42);
  const std::vector<MetricSnapshot> snaps = reg.Collect();
  ASSERT_EQ(snaps.size(), 3u);
  EXPECT_EQ(snaps[0].name, "a.rate");
  EXPECT_EQ(snaps[0].kind, MetricSnapshot::Kind::kGauge);
  EXPECT_DOUBLE_EQ(snaps[0].value, 1.5);
  EXPECT_EQ(snaps[1].name, "b.count");
  EXPECT_EQ(snaps[1].kind, MetricSnapshot::Kind::kCounter);
  EXPECT_DOUBLE_EQ(snaps[1].value, 4.0);
  EXPECT_EQ(snaps[2].name, "c.lat");
  EXPECT_EQ(snaps[2].kind, MetricSnapshot::Kind::kHistogram);
  EXPECT_EQ(snaps[2].hist.count(), 1u);
}

TEST(MetricsRegistryTest, ToJsonShape) {
  MetricsRegistry reg;
  reg.GetCounter("fires")->Add(7);
  reg.GetGauge("rate")->Set(2.5);
  auto h = reg.GetHistogram("query.q1.latency_us");
  h->Record(1000);
  h->Record(3000);
  const std::string json = reg.ToJson();
  EXPECT_NE(json.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(json.find("\"fires\":7"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\":{"), std::string::npos);
  EXPECT_NE(json.find("\"rate\":2.5"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\":{"), std::string::npos);
  EXPECT_NE(json.find("\"query.q1.latency_us\":{"), std::string::npos);
  EXPECT_NE(json.find("\"count\":2"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
}

TEST(MetricsRegistryTest, ToJsonEscapesNames) {
  MetricsRegistry reg;
  reg.GetCounter("weird\"name\\x")->Add(1);
  const std::string json = reg.ToJson();
  EXPECT_NE(json.find("\"weird\\\"name\\\\x\":1"), std::string::npos);
}

TEST(MetricsRegistryTest, ToPrometheusShape) {
  MetricsRegistry reg;
  reg.GetCounter("query.q1.fires")->Add(3);
  reg.GetGauge("sched.queue")->Set(4);
  auto h = reg.GetHistogram("query.q1.latency_us");
  for (int i = 0; i < 10; ++i) h->Record(100 * (i + 1));
  const std::string text = reg.ToPrometheus();
  // Names sanitized to [a-zA-Z0-9_:]; dots become underscores.
  EXPECT_NE(text.find("# TYPE query_q1_fires counter"), std::string::npos);
  EXPECT_NE(text.find("query_q1_fires 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE sched_queue gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE query_q1_latency_us summary"),
            std::string::npos);
  EXPECT_NE(text.find("query_q1_latency_us{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(text.find("query_q1_latency_us_count 10"), std::string::npos);
  // Names (not values — quantile labels contain dots) are sanitized.
  EXPECT_EQ(text.find("query.q1"), std::string::npos)
      << "unsanitized metric name leaked into Prometheus exposition";
}

TEST(MetricsRegistryTest, ConcurrentGetAndUpdate) {
  MetricsRegistry reg;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&reg] {
      for (int i = 0; i < 1000; ++i) {
        reg.GetCounter("shared")->Add(1);
        reg.GetHistogram("lat")->Record(i);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.GetCounter("shared")->Value(), 4000u);
  EXPECT_EQ(reg.GetHistogram("lat")->Snapshot().count(), 4000u);
}

TEST(MetricsRegistryTest, GlobalIsASingleton) {
  MetricsRegistry& a = MetricsRegistry::Global();
  MetricsRegistry& b = MetricsRegistry::Global();
  EXPECT_EQ(&a, &b);
}

}  // namespace
}  // namespace dc::monitor
