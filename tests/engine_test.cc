// End-to-end tests of the Engine facade: DDL, one-time queries, continuous
// queries in both execution modes, pause/resume, stream-table joins.
// The engine runs in synchronous mode (0 workers) and is driven by Pump()
// for determinism (see tests/test_util.h).

#include "core/engine.h"

#include <gtest/gtest.h>

#include <thread>

#include "tests/test_util.h"
#include "util/string_util.h"

namespace dc {
namespace {

using testutil::RowStrings;

class EngineTest : public testutil::SyncEngineTest {};

TEST_F(EngineTest, CreateTableInsertAndQuery) {
  Exec("CREATE TABLE items (id int, name string, price double)");
  Exec("INSERT INTO items VALUES (1, 'apple', 1.5), (2, 'pear', 2.0), "
       "(3, 'fig', 9.0)");
  const ColumnSet result = MustQuery(
      "SELECT name, price FROM items WHERE price > 1.7 ORDER BY price");
  ASSERT_EQ(result.NumRows(), 2u);
  EXPECT_EQ(result.cols[0]->GetValue(0).AsStr(), "pear");
  EXPECT_EQ(result.cols[0]->GetValue(1).AsStr(), "fig");
}

TEST_F(EngineTest, OneTimeAggregation) {
  Exec("CREATE TABLE t (g int, v int)");
  Exec("INSERT INTO t VALUES (1, 10), (1, 20), (2, 5), (2, 7), (3, 100)");
  const ColumnSet result = MustQuery(
      "SELECT g, sum(v) AS s, count(*) AS c FROM t GROUP BY g "
      "HAVING count(*) > 1 ORDER BY s DESC");
  ASSERT_EQ(result.NumRows(), 2u);
  EXPECT_EQ(result.cols[0]->GetValue(0).AsI64(), 1);  // sum 30
  EXPECT_EQ(result.cols[1]->GetValue(0).AsI64(), 30);
  EXPECT_EQ(result.cols[0]->GetValue(1).AsI64(), 2);  // sum 12
  EXPECT_EQ(result.cols[2]->GetValue(1).AsI64(), 2);
}

TEST_F(EngineTest, OneTimeJoin) {
  Exec("CREATE TABLE a (k int, x string)");
  Exec("CREATE TABLE b (k int, y double)");
  Exec("INSERT INTO a VALUES (1,'one'), (2,'two'), (3,'three')");
  Exec("INSERT INTO b VALUES (2, 2.5), (3, 3.5), (4, 4.5)");
  const ColumnSet result = MustQuery(
      "SELECT a.x, b.y FROM a JOIN b ON a.k = b.k ORDER BY b.y");
  ASSERT_EQ(result.NumRows(), 2u);
  EXPECT_EQ(result.cols[0]->GetValue(0).AsStr(), "two");
  EXPECT_EQ(result.cols[0]->GetValue(1).AsStr(), "three");
}

TEST_F(EngineTest, PerBatchContinuousQuery) {
  Exec("CREATE STREAM s (v int)");
  const int qid = Submit("SELECT v FROM s WHERE v >= 10",
                         ExecMode::kFullReeval);
  Push("s", {Value::I64(5)});
  PushPump("s", {Value::I64(15)});
  PushPump("s", {Value::I64(25)});
  auto rows = RowStrings(Take(qid));
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], "15|");
  EXPECT_EQ(rows[1], "25|");
}

TEST_F(EngineTest, RowsWindowAggregation) {
  Exec("CREATE STREAM s (v int)");
  // Tumbling window of 4 rows: sum per window.
  const int qid = Submit("SELECT sum(v) FROM s [ROWS 4]",
                         ExecMode::kFullReeval);
  for (int i = 1; i <= 10; ++i) Push("s", {Value::I64(i)});
  engine_.Pump();
  const std::vector<ColumnSet> results = Take(qid);
  ASSERT_EQ(results.size(), 2u);  // rows 1-4 and 5-8; 9,10 pending
  EXPECT_EQ(results[0].cols[0]->GetValue(0).AsI64(), 10);
  EXPECT_EQ(results[1].cols[0]->GetValue(0).AsI64(), 26);
}

TEST_F(EngineTest, SlidingRowsWindowFullVsIncremental) {
  Exec("CREATE STREAM s (v int)");
  const char* sql =
      "SELECT sum(v), count(*), min(v), max(v), avg(v) "
      "FROM s [ROWS 6 SLIDE 2]";
  const int full = Submit(sql, ExecMode::kFullReeval);
  const int inc = Submit(sql, ExecMode::kIncremental);
  for (int i = 0; i < 25; ++i) PushPump("s", {Value::I64(i * 7 % 13)});
  const auto fr = Take(full);
  ASSERT_GT(fr.size(), 0u);
  EXPECT_EQ(RowStrings(fr), RowStrings(Take(inc)));
  // Incremental mode must actually be active (not the fallback).
  EXPECT_FALSE(engine_.GetFactory(inc)->Stats().fell_back_to_full);
}

TEST_F(EngineTest, RangeWindowGroupedAggregation) {
  Exec("CREATE STREAM m (ts timestamp, sym string, px double)");
  const int qid = Submit(
      "SELECT sym, count(*) AS n, avg(px) AS apx "
      "FROM m [RANGE 10 SECONDS SLIDE 5 SECONDS] "
      "GROUP BY sym ORDER BY sym");

  auto push = [&](int64_t sec, const char* sym, double px) {
    Push("m", {Value::Ts(sec * kMicrosPerSecond), Value::Str(sym),
               Value::F64(px)});
  };
  push(1, "aa", 10);
  push(2, "bb", 20);
  push(4, "aa", 30);
  push(6, "aa", 40);
  push(9, "bb", 60);
  engine_.Pump();
  // Watermark is 9s: no window boundary (5s: window [-5,5) needs wm>=5 --
  // that one fired; [0,10) needs wm>=10).
  push(11, "aa", 70);
  engine_.Pump();
  const std::vector<ColumnSet> results = Take(qid);
  // Boundary 5s: window [-5,5) = rows at 1,2,4 -> aa:2, bb:1.
  // Boundary 10s: window [0,10) = rows 1..9 -> aa:3, bb:2.
  ASSERT_EQ(results.size(), 2u);
  const ColumnSet& w1 = results[0];
  ASSERT_EQ(w1.NumRows(), 2u);
  EXPECT_EQ(w1.cols[0]->GetValue(0).AsStr(), "aa");
  EXPECT_EQ(w1.cols[1]->GetValue(0).AsI64(), 2);
  const ColumnSet& w2 = results[1];
  EXPECT_EQ(w2.cols[1]->GetValue(0).AsI64(), 3);
  EXPECT_EQ(w2.cols[1]->GetValue(1).AsI64(), 2);
}

TEST_F(EngineTest, StreamTableJoinContinuous) {
  Exec("CREATE TABLE ref (k int, label string)");
  Exec("INSERT INTO ref VALUES (1,'one'), (2,'two')");
  Exec("CREATE STREAM s (k int, v int)");
  const int qid = Submit("SELECT label, v FROM s JOIN ref ON s.k = ref.k",
                         ExecMode::kFullReeval);
  Push("s", {Value::I64(1), Value::I64(100)});
  Push("s", {Value::I64(9), Value::I64(200)});
  Push("s", {Value::I64(2), Value::I64(300)});
  engine_.Pump();
  auto rows = RowStrings(Take(qid));
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], "one|100|");
  EXPECT_EQ(rows[1], "two|300|");
}

TEST_F(EngineTest, PauseAndResumeQuery) {
  Exec("CREATE STREAM s (v int)");
  const int qid = Submit("SELECT v FROM s", ExecMode::kFullReeval);
  PushPump("s", {Value::I64(1)});
  ASSERT_TRUE(engine_.PauseQuery(qid).ok());
  PushPump("s", {Value::I64(2)});
  EXPECT_EQ(RowStrings(Take(qid)).size(), 1u);  // second row not processed
  ASSERT_TRUE(engine_.ResumeQuery(qid).ok());
  engine_.Pump();
  EXPECT_EQ(RowStrings(Take(qid)).size(), 1u);  // row 2 arrives after resume
}

TEST_F(EngineTest, SealFlushesRangeWindows) {
  Exec("CREATE STREAM s (ts timestamp, v int)");
  const int qid =
      Submit("SELECT sum(v) FROM s [RANGE 4 SECONDS SLIDE 2 SECONDS]");
  Push("s", {Value::Ts(1 * kMicrosPerSecond), Value::I64(10)});
  PushPump("s", {Value::Ts(3 * kMicrosPerSecond), Value::I64(20)});
  Seal("s");
  const std::vector<ColumnSet> results = Take(qid);
  // Windows: [-2,2)->10 (boundary 2 fired by watermark 3),
  // [0,4)->30, [2,6)->20 flushed by seal. Window [4,8) starts past the
  // last event: dormant.
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].cols[0]->GetValue(0).AsI64(), 10);
  EXPECT_EQ(results[1].cols[0]->GetValue(0).AsI64(), 30);
  EXPECT_EQ(results[2].cols[0]->GetValue(0).AsI64(), 20);
}

TEST_F(EngineTest, MultipleQueriesShareOneBasket) {
  Exec("CREATE STREAM s (v int)");
  const int q1 = Submit("SELECT v FROM s WHERE v % 2 = 0",
                        ExecMode::kFullReeval);
  const int q2 = Submit("SELECT v FROM s WHERE v % 2 = 1",
                        ExecMode::kFullReeval);
  for (int i = 0; i < 6; ++i) Push("s", {Value::I64(i)});
  engine_.Pump();
  EXPECT_EQ(RowStrings(Take(q1)).size(), 3u);
  EXPECT_EQ(RowStrings(Take(q2)).size(), 3u);
  // Both consumed everything: the basket dropped all tuples.
  auto stats = engine_.StreamStats("s");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->resident_rows, 0u);
  EXPECT_EQ(stats->dropped_total, 6u);
}

TEST_F(EngineTest, ExplainShowsPlanTransformation) {
  Exec("CREATE STREAM s (ts timestamp, v int)");
  const std::string sql =
      "SELECT sum(v) FROM s [RANGE 10 SECONDS SLIDE 2 SECONDS] WHERE v > 3";
  auto onetime = engine_.ExplainSql(sql, plan::PlanMode::kOneTime);
  auto incr = engine_.ExplainSql(sql, plan::PlanMode::kContinuousIncremental);
  ASSERT_TRUE(onetime.ok() && incr.ok());
  EXPECT_NE(onetime->find("scan.candidates"), std::string::npos);
  EXPECT_NE(incr->find("basket.candidates"), std::string::npos);
  EXPECT_NE(incr->find("per basic window"), std::string::npos);
  EXPECT_NE(incr->find("merge"), std::string::npos);
}

TEST_F(EngineTest, ExplainReportsObservedLatencyOfStandingQueries) {
  Exec("CREATE STREAM s (v int)");
  const std::string sql = "SELECT count(*) FROM s [ROWS 2 SLIDE 2]";
  // No standing query with this identity yet: no latency line.
  auto before = engine_.ExplainSql(sql, plan::PlanMode::kContinuousIncremental);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->find("latency:"), std::string::npos);
  Submit(sql);
  for (int i = 0; i < 4; ++i) PushPump("s", {Value::I64(i)});
  // Two windows closed and delivered, so the query's ingest→delivery
  // histogram has points and EXPLAIN merges them into a latency line.
  auto after = engine_.ExplainSql(sql, plan::PlanMode::kContinuousIncremental);
  ASSERT_TRUE(after.ok());
  EXPECT_NE(after->find("latency:"), std::string::npos);
  EXPECT_NE(after->find("count=2"), std::string::npos);
}

// Regression: Pump()/WaitIdle()/TakeResults() used to hold the engine
// registry lock across emitter drains, so a sink that re-enters the
// engine (the monitor does exactly this) self-deadlocked. Drains now run
// on a snapshot outside the lock; under the lock-rank validator the
// re-entry is also checked (kEmitterDrain < kEngine).
TEST_F(EngineTest, SinkMayReenterEngineDuringPump) {
  Exec("CREATE STREAM s (ts timestamp, v int)");
  int reentries = 0;
  Engine::ContinuousOptions opts;
  opts.name = "reenter";
  opts.sink = [&](const ColumnSet&) {
    // Introspection re-entry, as the analysis pane performs per sample.
    EXPECT_FALSE(engine_.Queries().empty());
    EXPECT_TRUE(engine_.StreamStats("s").ok());
    ++reentries;
  };
  auto qid = engine_.SubmitContinuous("SELECT v FROM s", opts);
  ASSERT_TRUE(qid.ok()) << qid.status().ToString();
  for (int i = 0; i < 3; ++i) {
    PushPump("s", {Value::Ts(i), Value::I64(i)});
  }
  EXPECT_GE(reentries, 1);
}

// Regression: TakeResults() snapshotted a raw Emitter* under the lock and
// drained it after release, so a concurrent RemoveContinuous() destroyed
// the emitter mid-drain (use-after-free under ASan). The entry now holds
// a shared_ptr that drainers copy.
TEST(EngineConcurrencyTest, TakeResultsRacesRemoveContinuous) {
  Engine engine;  // threaded mode: 2 scheduler workers
  ASSERT_TRUE(
      engine.Execute("CREATE STREAM s (ts timestamp, v int)").ok());
  for (int round = 0; round < 25; ++round) {
    auto qid = engine.SubmitContinuous("SELECT v FROM s");
    ASSERT_TRUE(qid.ok()) << qid.status().ToString();
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(engine.PushRow("s", {Value::Ts(i), Value::I64(i)}).ok());
    }
    std::thread taker([&] {
      // Races the removal: NotFound after the removal wins is expected.
      for (int i = 0; i < 16; ++i) (void)engine.TakeResults(*qid);
    });
    std::thread remover([&] { (void)engine.RemoveContinuous(*qid); });
    taker.join();
    remover.join();
  }
}

TEST_F(EngineTest, ErrorsSurfaceCleanly) {
  EXPECT_FALSE(engine_.Query("SELECT v FROM nosuch").ok());
  EXPECT_FALSE(engine_.Execute("CREATE TABLE t (x whatever)").ok());
  Exec("CREATE TABLE t (x int)");
  EXPECT_FALSE(engine_.Query("SELECT y FROM t").ok());
  EXPECT_FALSE(engine_.Query("SELECT sum(x), y FROM t").ok());
  EXPECT_FALSE(engine_.SubmitContinuous("SELECT x FROM t").ok());
  // Window on a table is rejected.
  EXPECT_FALSE(engine_.Query("SELECT x FROM t [ROWS 5]").ok());
}

}  // namespace
}  // namespace dc
