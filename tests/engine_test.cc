// End-to-end tests of the Engine facade: DDL, one-time queries, continuous
// queries in both execution modes, pause/resume, stream-table joins.
// The engine runs in synchronous mode (0 workers) and is driven by Pump()
// for determinism.

#include "core/engine.h"

#include <gtest/gtest.h>

#include "util/string_util.h"

namespace dc {
namespace {

EngineOptions SyncOptions() {
  EngineOptions o;
  o.scheduler_workers = 0;
  return o;
}

Engine::ContinuousOptions WithMode(ExecMode mode) {
  Engine::ContinuousOptions o;
  o.mode = mode;
  return o;
}

// Collects all rows of a set of emissions as printable row strings.
std::vector<std::string> RowStrings(const std::vector<ColumnSet>& emissions) {
  std::vector<std::string> out;
  for (const ColumnSet& e : emissions) {
    for (uint64_t r = 0; r < e.NumRows(); ++r) {
      std::string row;
      for (const Value& v : e.Row(r)) row += v.ToString() + "|";
      out.push_back(row);
    }
  }
  return out;
}

class EngineTest : public ::testing::Test {
 protected:
  EngineTest() : engine_(SyncOptions()) {}
  Engine engine_;
};

TEST_F(EngineTest, CreateTableInsertAndQuery) {
  ASSERT_TRUE(engine_
                  .Execute("CREATE TABLE items (id int, name string, "
                           "price double)")
                  .ok());
  ASSERT_TRUE(engine_
                  .Execute("INSERT INTO items VALUES (1, 'apple', 1.5), "
                           "(2, 'pear', 2.0), (3, 'fig', 9.0)")
                  .ok());
  auto result = engine_.Query(
      "SELECT name, price FROM items WHERE price > 1.7 ORDER BY price");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->NumRows(), 2u);
  EXPECT_EQ(result->cols[0]->GetValue(0).AsStr(), "pear");
  EXPECT_EQ(result->cols[0]->GetValue(1).AsStr(), "fig");
}

TEST_F(EngineTest, OneTimeAggregation) {
  ASSERT_TRUE(engine_.Execute("CREATE TABLE t (g int, v int)").ok());
  ASSERT_TRUE(engine_
                  .Execute("INSERT INTO t VALUES (1, 10), (1, 20), (2, 5), "
                           "(2, 7), (3, 100)")
                  .ok());
  auto result = engine_.Query(
      "SELECT g, sum(v) AS s, count(*) AS c FROM t GROUP BY g "
      "HAVING count(*) > 1 ORDER BY s DESC");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->NumRows(), 2u);
  EXPECT_EQ(result->cols[0]->GetValue(0).AsI64(), 1);  // sum 30
  EXPECT_EQ(result->cols[1]->GetValue(0).AsI64(), 30);
  EXPECT_EQ(result->cols[0]->GetValue(1).AsI64(), 2);  // sum 12
  EXPECT_EQ(result->cols[2]->GetValue(1).AsI64(), 2);
}

TEST_F(EngineTest, OneTimeJoin) {
  ASSERT_TRUE(engine_.Execute("CREATE TABLE a (k int, x string)").ok());
  ASSERT_TRUE(engine_.Execute("CREATE TABLE b (k int, y double)").ok());
  ASSERT_TRUE(
      engine_.Execute("INSERT INTO a VALUES (1,'one'), (2,'two'), (3,'three')")
          .ok());
  ASSERT_TRUE(
      engine_.Execute("INSERT INTO b VALUES (2, 2.5), (3, 3.5), (4, 4.5)")
          .ok());
  auto result = engine_.Query(
      "SELECT a.x, b.y FROM a JOIN b ON a.k = b.k ORDER BY b.y");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->NumRows(), 2u);
  EXPECT_EQ(result->cols[0]->GetValue(0).AsStr(), "two");
  EXPECT_EQ(result->cols[0]->GetValue(1).AsStr(), "three");
}

TEST_F(EngineTest, PerBatchContinuousQuery) {
  ASSERT_TRUE(engine_.Execute("CREATE STREAM s (v int)").ok());
  auto qid = engine_.SubmitContinuous(
      "SELECT v FROM s WHERE v >= 10", WithMode(ExecMode::kFullReeval));
  ASSERT_TRUE(qid.ok()) << qid.status().ToString();

  ASSERT_TRUE(engine_.PushRow("s", {Value::I64(5)}).ok());
  ASSERT_TRUE(engine_.PushRow("s", {Value::I64(15)}).ok());
  engine_.Pump();
  ASSERT_TRUE(engine_.PushRow("s", {Value::I64(25)}).ok());
  engine_.Pump();

  auto results = engine_.TakeResults(*qid);
  ASSERT_TRUE(results.ok());
  auto rows = RowStrings(*results);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], "15|");
  EXPECT_EQ(rows[1], "25|");
}

TEST_F(EngineTest, RowsWindowAggregation) {
  ASSERT_TRUE(engine_.Execute("CREATE STREAM s (v int)").ok());
  // Tumbling window of 4 rows: sum per window.
  auto qid = engine_.SubmitContinuous("SELECT sum(v) FROM s [ROWS 4]",
                                      WithMode(ExecMode::kFullReeval));
  ASSERT_TRUE(qid.ok()) << qid.status().ToString();
  for (int i = 1; i <= 10; ++i) {
    ASSERT_TRUE(engine_.PushRow("s", {Value::I64(i)}).ok());
  }
  engine_.Pump();
  auto results = engine_.TakeResults(*qid);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 2u);  // rows 1-4 and 5-8; 9,10 pending
  EXPECT_EQ((*results)[0].cols[0]->GetValue(0).AsI64(), 10);
  EXPECT_EQ((*results)[1].cols[0]->GetValue(0).AsI64(), 26);
}

TEST_F(EngineTest, SlidingRowsWindowFullVsIncremental) {
  ASSERT_TRUE(engine_.Execute("CREATE STREAM s (v int)").ok());
  auto full = engine_.SubmitContinuous(
      "SELECT sum(v), count(*), min(v), max(v), avg(v) "
      "FROM s [ROWS 6 SLIDE 2]",
      WithMode(ExecMode::kFullReeval));
  auto inc = engine_.SubmitContinuous(
      "SELECT sum(v), count(*), min(v), max(v), avg(v) "
      "FROM s [ROWS 6 SLIDE 2]",
      WithMode(ExecMode::kIncremental));
  ASSERT_TRUE(full.ok() && inc.ok());
  for (int i = 0; i < 25; ++i) {
    ASSERT_TRUE(engine_.PushRow("s", {Value::I64(i * 7 % 13)}).ok());
    engine_.Pump();
  }
  auto fr = engine_.TakeResults(*full);
  auto ir = engine_.TakeResults(*inc);
  ASSERT_TRUE(fr.ok() && ir.ok());
  ASSERT_GT(fr->size(), 0u);
  EXPECT_EQ(RowStrings(*fr), RowStrings(*ir));
  // Incremental mode must actually be active (not the fallback).
  EXPECT_FALSE(engine_.GetFactory(*inc)->Stats().fell_back_to_full);
}

TEST_F(EngineTest, RangeWindowGroupedAggregation) {
  ASSERT_TRUE(
      engine_.Execute("CREATE STREAM m (ts timestamp, sym string, px double)")
          .ok());
  auto qid = engine_.SubmitContinuous(
      "SELECT sym, count(*) AS n, avg(px) AS apx "
      "FROM m [RANGE 10 SECONDS SLIDE 5 SECONDS] "
      "GROUP BY sym ORDER BY sym",
      WithMode(ExecMode::kIncremental));
  ASSERT_TRUE(qid.ok()) << qid.status().ToString();

  auto push = [&](int64_t sec, const char* sym, double px) {
    ASSERT_TRUE(engine_
                    .PushRow("m", {Value::Ts(sec * kMicrosPerSecond),
                                   Value::Str(sym), Value::F64(px)})
                    .ok());
  };
  push(1, "aa", 10);
  push(2, "bb", 20);
  push(4, "aa", 30);
  push(6, "aa", 40);
  push(9, "bb", 60);
  engine_.Pump();
  // Watermark is 9s: no window boundary (5s: window [-5,5) needs wm>=5 --
  // that one fired; [0,10) needs wm>=10).
  push(11, "aa", 70);
  engine_.Pump();
  auto results = engine_.TakeResults(*qid);
  ASSERT_TRUE(results.ok());
  // Boundary 5s: window [-5,5) = rows at 1,2,4 -> aa:2, bb:1.
  // Boundary 10s: window [0,10) = rows 1..9 -> aa:3, bb:2.
  ASSERT_EQ(results->size(), 2u);
  const ColumnSet& w1 = (*results)[0];
  ASSERT_EQ(w1.NumRows(), 2u);
  EXPECT_EQ(w1.cols[0]->GetValue(0).AsStr(), "aa");
  EXPECT_EQ(w1.cols[1]->GetValue(0).AsI64(), 2);
  const ColumnSet& w2 = (*results)[1];
  EXPECT_EQ(w2.cols[1]->GetValue(0).AsI64(), 3);
  EXPECT_EQ(w2.cols[1]->GetValue(1).AsI64(), 2);
}

TEST_F(EngineTest, StreamTableJoinContinuous) {
  ASSERT_TRUE(engine_.Execute("CREATE TABLE ref (k int, label string)").ok());
  ASSERT_TRUE(
      engine_.Execute("INSERT INTO ref VALUES (1,'one'), (2,'two')").ok());
  ASSERT_TRUE(engine_.Execute("CREATE STREAM s (k int, v int)").ok());
  auto qid = engine_.SubmitContinuous(
      "SELECT label, v FROM s JOIN ref ON s.k = ref.k",
      WithMode(ExecMode::kFullReeval));
  ASSERT_TRUE(qid.ok()) << qid.status().ToString();
  ASSERT_TRUE(engine_.PushRow("s", {Value::I64(1), Value::I64(100)}).ok());
  ASSERT_TRUE(engine_.PushRow("s", {Value::I64(9), Value::I64(200)}).ok());
  ASSERT_TRUE(engine_.PushRow("s", {Value::I64(2), Value::I64(300)}).ok());
  engine_.Pump();
  auto results = engine_.TakeResults(*qid);
  ASSERT_TRUE(results.ok());
  auto rows = RowStrings(*results);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], "one|100|");
  EXPECT_EQ(rows[1], "two|300|");
}

TEST_F(EngineTest, PauseAndResumeQuery) {
  ASSERT_TRUE(engine_.Execute("CREATE STREAM s (v int)").ok());
  auto qid = engine_.SubmitContinuous("SELECT v FROM s",
                                      WithMode(ExecMode::kFullReeval));
  ASSERT_TRUE(qid.ok());
  ASSERT_TRUE(engine_.PushRow("s", {Value::I64(1)}).ok());
  engine_.Pump();
  ASSERT_TRUE(engine_.PauseQuery(*qid).ok());
  ASSERT_TRUE(engine_.PushRow("s", {Value::I64(2)}).ok());
  engine_.Pump();
  auto r1 = engine_.TakeResults(*qid);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(RowStrings(*r1).size(), 1u);  // second row not processed
  ASSERT_TRUE(engine_.ResumeQuery(*qid).ok());
  engine_.Pump();
  auto r2 = engine_.TakeResults(*qid);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(RowStrings(*r2).size(), 1u);  // row 2 arrives after resume
}

TEST_F(EngineTest, SealFlushesRangeWindows) {
  ASSERT_TRUE(engine_.Execute("CREATE STREAM s (ts timestamp, v int)").ok());
  auto qid = engine_.SubmitContinuous(
      "SELECT sum(v) FROM s [RANGE 4 SECONDS SLIDE 2 SECONDS]",
      WithMode(ExecMode::kIncremental));
  ASSERT_TRUE(qid.ok());
  ASSERT_TRUE(engine_
                  .PushRow("s", {Value::Ts(1 * kMicrosPerSecond),
                                 Value::I64(10)})
                  .ok());
  ASSERT_TRUE(engine_
                  .PushRow("s", {Value::Ts(3 * kMicrosPerSecond),
                                 Value::I64(20)})
                  .ok());
  engine_.Pump();
  ASSERT_TRUE(engine_.SealStream("s").ok());
  engine_.Pump();
  auto results = engine_.TakeResults(*qid);
  ASSERT_TRUE(results.ok());
  // Windows: [-2,2)->10 (boundary 2 fired by watermark 3),
  // [0,4)->30, [2,6)->20 flushed by seal. Window [4,8) starts past the
  // last event: dormant.
  ASSERT_EQ(results->size(), 3u);
  EXPECT_EQ((*results)[0].cols[0]->GetValue(0).AsI64(), 10);
  EXPECT_EQ((*results)[1].cols[0]->GetValue(0).AsI64(), 30);
  EXPECT_EQ((*results)[2].cols[0]->GetValue(0).AsI64(), 20);
}

TEST_F(EngineTest, MultipleQueriesShareOneBasket) {
  ASSERT_TRUE(engine_.Execute("CREATE STREAM s (v int)").ok());
  auto q1 = engine_.SubmitContinuous("SELECT v FROM s WHERE v % 2 = 0",
                                     WithMode(ExecMode::kFullReeval));
  auto q2 = engine_.SubmitContinuous("SELECT v FROM s WHERE v % 2 = 1",
                                     WithMode(ExecMode::kFullReeval));
  ASSERT_TRUE(q1.ok() && q2.ok());
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(engine_.PushRow("s", {Value::I64(i)}).ok());
  }
  engine_.Pump();
  auto r1 = engine_.TakeResults(*q1);
  auto r2 = engine_.TakeResults(*q2);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(RowStrings(*r1).size(), 3u);
  EXPECT_EQ(RowStrings(*r2).size(), 3u);
  // Both consumed everything: the basket dropped all tuples.
  auto stats = engine_.StreamStats("s");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->resident_rows, 0u);
  EXPECT_EQ(stats->dropped_total, 6u);
}

TEST_F(EngineTest, ExplainShowsPlanTransformation) {
  ASSERT_TRUE(engine_.Execute("CREATE STREAM s (ts timestamp, v int)").ok());
  const std::string sql =
      "SELECT sum(v) FROM s [RANGE 10 SECONDS SLIDE 2 SECONDS] WHERE v > 3";
  auto onetime = engine_.ExplainSql(sql, plan::PlanMode::kOneTime);
  auto incr = engine_.ExplainSql(sql, plan::PlanMode::kContinuousIncremental);
  ASSERT_TRUE(onetime.ok() && incr.ok());
  EXPECT_NE(onetime->find("scan.candidates"), std::string::npos);
  EXPECT_NE(incr->find("basket.candidates"), std::string::npos);
  EXPECT_NE(incr->find("per basic window"), std::string::npos);
  EXPECT_NE(incr->find("merge"), std::string::npos);
}

TEST_F(EngineTest, ErrorsSurfaceCleanly) {
  EXPECT_FALSE(engine_.Query("SELECT v FROM nosuch").ok());
  EXPECT_FALSE(engine_.Execute("CREATE TABLE t (x whatever)").ok());
  ASSERT_TRUE(engine_.Execute("CREATE TABLE t (x int)").ok());
  EXPECT_FALSE(engine_.Query("SELECT y FROM t").ok());
  EXPECT_FALSE(engine_.Query("SELECT sum(x), y FROM t").ok());
  EXPECT_FALSE(engine_.SubmitContinuous("SELECT x FROM t").ok());
  // Window on a table is rejected.
  EXPECT_FALSE(engine_.Query("SELECT x FROM t [ROWS 5]").ok());
}

}  // namespace
}  // namespace dc
