// Unit tests for the plan stack: binder (resolution, typing, predicate
// classification), optimizer rules, compiler output, explain rendering.

#include <gtest/gtest.h>

#include "plan/binder.h"
#include "plan/compiler.h"
#include "plan/explain.h"
#include "plan/optimizer.h"
#include "sql/parser.h"
#include "storage/catalog.h"

namespace dc::plan {
namespace {

class PlanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Schema trades;
    ASSERT_TRUE(trades.AddColumn("ts", TypeId::kTs).ok());
    ASSERT_TRUE(trades.AddColumn("sym", TypeId::kStr).ok());
    ASSERT_TRUE(trades.AddColumn("px", TypeId::kF64).ok());
    ASSERT_TRUE(trades.AddColumn("qty", TypeId::kI64).ok());
    StreamDef def;
    def.name = "trades";
    def.schema = trades;
    def.ts_column = 0;
    ASSERT_TRUE(catalog_.RegisterStream(def).ok());

    Schema ref;
    ASSERT_TRUE(ref.AddColumn("sym", TypeId::kStr).ok());
    ASSERT_TRUE(ref.AddColumn("sector", TypeId::kStr).ok());
    ASSERT_TRUE(ref.AddColumn("cap", TypeId::kF64).ok());
    ASSERT_TRUE(
        catalog_.RegisterTable(std::make_shared<Table>("ref", ref)).ok());

    Schema quotes;
    ASSERT_TRUE(quotes.AddColumn("ts", TypeId::kTs).ok());
    ASSERT_TRUE(quotes.AddColumn("qsym", TypeId::kStr).ok());
    ASSERT_TRUE(quotes.AddColumn("bid", TypeId::kF64).ok());
    StreamDef qdef;
    qdef.name = "quotes";
    qdef.schema = quotes;
    qdef.ts_column = 0;
    ASSERT_TRUE(catalog_.RegisterStream(qdef).ok());
  }

  Result<BoundQuery> BindSql(const std::string& sql) {
    DC_ASSIGN_OR_RETURN(sql::Statement stmt, sql::ParseStatement(sql));
    return Bind(std::get<sql::SelectStmt>(stmt), catalog_);
  }

  Result<CompiledQuery> CompileSql(const std::string& sql) {
    DC_ASSIGN_OR_RETURN(BoundQuery q, BindSql(sql));
    Optimize(&q);
    return Compile(std::move(q));
  }

  Catalog catalog_;
};

TEST_F(PlanTest, ResolvesColumnsAndTypes) {
  auto q = BindSql("SELECT sym, px * 2 FROM trades WHERE qty > 10");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_TRUE(q->is_continuous);
  EXPECT_FALSE(q->is_aggregate);
  ASSERT_EQ(q->select_exprs.size(), 2u);
  EXPECT_EQ(q->select_exprs[0]->type, TypeId::kStr);
  EXPECT_EQ(q->select_exprs[1]->type, TypeId::kF64);
  EXPECT_EQ(q->out_names[0], "sym");
  ASSERT_EQ(q->rel_filters[0].size(), 1u);
}

TEST_F(PlanTest, UnknownAndAmbiguousColumns) {
  EXPECT_TRUE(BindSql("SELECT nosuch FROM trades").status().IsNotFound());
  // 'sym' exists in both relations.
  auto q = BindSql(
      "SELECT sym FROM trades JOIN ref ON trades.sym = ref.sym");
  EXPECT_TRUE(q.status().IsInvalidArgument());
}

TEST_F(PlanTest, TypeChecks) {
  EXPECT_TRUE(BindSql("SELECT sym + 1 FROM trades").status().IsTypeError());
  EXPECT_TRUE(
      BindSql("SELECT px FROM trades WHERE sym > 5").status().IsTypeError());
  EXPECT_TRUE(BindSql("SELECT px FROM trades WHERE px").status().ok() ==
              false);
  EXPECT_TRUE(BindSql("SELECT sum(sym) FROM trades").status().IsTypeError());
}

TEST_F(PlanTest, AggregateRules) {
  // Bare column without GROUP BY.
  EXPECT_FALSE(BindSql("SELECT sym, sum(px) FROM trades").ok());
  // Grouped column is fine; aggregate dedup happens.
  auto q = BindSql(
      "SELECT sym, sum(px), sum(px) FROM trades GROUP BY sym "
      "HAVING sum(px) > 10");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_TRUE(q->is_aggregate);
  EXPECT_EQ(q->aggs.size(), 1u);  // deduplicated
  ASSERT_NE(q->having, nullptr);
  // HAVING without aggregation is rejected.
  EXPECT_FALSE(BindSql("SELECT px FROM trades HAVING px > 1").ok());
}

TEST_F(PlanTest, JoinKeyExtraction) {
  auto q = BindSql(
      "SELECT px, cap FROM trades JOIN ref ON trades.sym = ref.sym "
      "WHERE px > 1 AND cap > 2 AND px < cap");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_TRUE(q->join.has_value());
  EXPECT_EQ(q->join->left->rel, 0);
  EXPECT_EQ(q->join->right->rel, 1);
  EXPECT_EQ(q->rel_filters[0].size(), 1u);       // px > 1 pushed to trades
  EXPECT_EQ(q->rel_filters[1].size(), 1u);       // cap > 2 pushed to ref
  EXPECT_EQ(q->post_join_filters.size(), 1u);    // px < cap after join
}

TEST_F(PlanTest, CrossProductRejected) {
  EXPECT_FALSE(BindSql("SELECT px FROM trades, ref").ok());
  EXPECT_FALSE(BindSql("SELECT px FROM trades, ref WHERE px > cap").ok());
}

TEST_F(PlanTest, WindowValidation) {
  auto q = BindSql("SELECT sum(px) FROM trades [ROWS 100 SLIDE 10]");
  ASSERT_TRUE(q.ok());
  ASSERT_TRUE(q->rels[0].window.has_value());
  EXPECT_TRUE(q->rels[0].window->rows);
  // Window on a table is invalid.
  EXPECT_FALSE(BindSql("SELECT cap FROM ref [ROWS 10]").ok());
}

TEST_F(PlanTest, BetweenDesugarsToRange) {
  auto q = BindSql("SELECT px FROM trades WHERE px BETWEEN 1 AND 2");
  ASSERT_TRUE(q.ok());
  // Split into two conjuncts by the binder's AND flattening.
  EXPECT_EQ(q->rel_filters[0].size(), 2u);
}

TEST_F(PlanTest, ConstantFolding) {
  auto q = BindSql("SELECT px * (2 + 3) FROM trades");
  ASSERT_TRUE(q.ok());
  // (2+3) folded to a literal, so the expression is px * 5.
  const BExpr& e = *q->select_exprs[0];
  ASSERT_EQ(e.kind, BKind::kArith);
  EXPECT_EQ(e.children[1]->kind, BKind::kLiteral);
  EXPECT_EQ(e.children[1]->literal.AsI64(), 5);
}

TEST_F(PlanTest, OptimizerNotPushdownAndTrivial) {
  auto q = BindSql(
      "SELECT px FROM trades WHERE NOT px > 3 AND 1 = 1 AND qty > 0");
  ASSERT_TRUE(q.ok());
  OptimizerReport report = Optimize(&*q);
  // NOT(px > 3) became px <= 3; 1=1 was folded and removed.
  bool has_not = false;
  for (const auto& f : q->rel_filters[0]) {
    if (f->kind == BKind::kNot) has_not = true;
  }
  EXPECT_FALSE(has_not);
  EXPECT_EQ(q->rel_filters[0].size(), 2u);
  EXPECT_FALSE(report.applied.empty());
}

TEST_F(PlanTest, OptimizerOrdersFiltersCheapestFirst) {
  auto q = BindSql(
      "SELECT px FROM trades WHERE px + 1 > 2 AND sym = 'aa' AND qty > 3");
  ASSERT_TRUE(q.ok());
  Optimize(&*q);
  const auto& filters = q->rel_filters[0];
  ASSERT_EQ(filters.size(), 3u);
  // Equality first, range second, computed comparison last.
  EXPECT_EQ(filters[0]->cmp_op, CmpOp::kEq);
  EXPECT_EQ(filters[2]->children[0]->kind, BKind::kArith);
}

TEST_F(PlanTest, CompiledStagesHaveExpectedShape) {
  auto cq = CompileSql(
      "SELECT sym, count(*), avg(px) FROM trades [ROWS 100 SLIDE 10] "
      "WHERE qty > 5 GROUP BY sym");
  ASSERT_TRUE(cq.ok()) << cq.status().ToString();
  EXPECT_EQ(cq->prejoin.size(), 1u);
  EXPECT_EQ(cq->num_keys, 1);
  ASSERT_EQ(cq->agg_arg_slots.size(), 2u);
  EXPECT_EQ(cq->agg_arg_slots[0], -1);  // count(*)
  EXPECT_GE(cq->agg_arg_slots[1], 0);   // avg arg column
  EXPECT_TRUE(cq->finish.is_aggregate);
  // Projection pruning: only sym/px/qty are touched; prejoin outputs
  // exclude ts.
  for (const std::string& name : cq->prejoin[0].output_names) {
    EXPECT_NE(name, "ts");
  }
}

TEST_F(PlanTest, ExplainRendersAllModes) {
  auto cq = CompileSql(
      "SELECT sym, sum(px * qty) FROM trades [RANGE 60 SECONDS SLIDE 10 "
      "SECONDS] WHERE px > 0 GROUP BY sym ORDER BY sym LIMIT 5");
  ASSERT_TRUE(cq.ok()) << cq.status().ToString();
  const std::string onetime = Explain(*cq, PlanMode::kOneTime);
  const std::string full = Explain(*cq, PlanMode::kContinuousFull);
  const std::string inc = Explain(*cq, PlanMode::kContinuousIncremental);
  EXPECT_NE(onetime.find("algebra.select"), std::string::npos);
  EXPECT_NE(full.find("basket"), std::string::npos);
  EXPECT_NE(inc.find("per basic window"), std::string::npos);
  EXPECT_NE(inc.find("merge"), std::string::npos);
  EXPECT_NE(inc.find("limit"), std::string::npos);
}

TEST_F(PlanTest, DeltaPostjoinEmittedForStreamStreamJoins) {
  auto cq = CompileSql(
      "SELECT count(*), sum(px) FROM trades [RANGE 8 SECONDS SLIDE 2 "
      "SECONDS] JOIN quotes [RANGE 8 SECONDS SLIDE 2 SECONDS] "
      "ON trades.sym = quotes.qsym");
  ASSERT_TRUE(cq.ok()) << cq.status().ToString();
  EXPECT_TRUE(cq->has_delta_postjoin);
  // The delta stage joins with datacell.delta_join and carries the hidden
  // basic-window ordinal columns as its trailing outputs.
  const std::string delta = cq->delta_postjoin.ToString();
  EXPECT_NE(delta.find("delta_join"), std::string::npos);
  ASSERT_GE(cq->delta_postjoin.output_names.size(), 2u);
  EXPECT_EQ(cq->delta_postjoin.output_names.end()[-2], "bw$l");
  EXPECT_EQ(cq->delta_postjoin.output_names.end()[-1], "bw$r");
  // The regular postjoin stays a plain join (FULL mode / one-time).
  EXPECT_EQ(cq->postjoin.ToString().find("delta_join"), std::string::npos);

  // Stream-table joins keep the cached-compact path instead.
  auto st = CompileSql(
      "SELECT count(*) FROM trades [RANGE 8 SECONDS SLIDE 2 SECONDS] "
      "JOIN ref ON trades.sym = ref.sym");
  ASSERT_TRUE(st.ok()) << st.status().ToString();
  EXPECT_FALSE(st->has_delta_postjoin);
}

TEST_F(PlanTest, ExplainClassifiesIncrementalOperators) {
  // Divisible windows: every operator classifies as incremental, the join
  // as a delta join.
  auto cq = CompileSql(
      "SELECT qsym, count(*), sum(px) FROM trades [RANGE 8 SECONDS SLIDE 2 "
      "SECONDS] JOIN quotes [RANGE 8 SECONDS SLIDE 2 SECONDS] "
      "ON trades.sym = quotes.qsym GROUP BY qsym "
      "HAVING count(*) > 1 ORDER BY qsym");
  ASSERT_TRUE(cq.ok()) << cq.status().ToString();
  const std::string inc = Explain(*cq, PlanMode::kContinuousIncremental);
  EXPECT_NE(inc.find("fragment classification:"), std::string::npos);
  EXPECT_NE(inc.find("delta-join"), std::string::npos);
  EXPECT_NE(inc.find("delta_join"), std::string::npos);  // CAL listing too
  EXPECT_NE(inc.find("per-basic-window partial"), std::string::npos);
  EXPECT_NE(inc.find("finish tail"), std::string::npos);
  EXPECT_EQ(inc.find("recompute"), std::string::npos);
  // The classification is incremental-mode-only output.
  const std::string full = Explain(*cq, PlanMode::kContinuousFull);
  EXPECT_EQ(full.find("fragment classification:"), std::string::npos);

  // Non-divisible window: everything falls back to recompute, with the
  // reason surfaced.
  auto nd = CompileSql(
      "SELECT sym, count(*) FROM trades [RANGE 6 SECONDS SLIDE 4 SECONDS] "
      "GROUP BY sym");
  ASSERT_TRUE(nd.ok()) << nd.status().ToString();
  const std::string ndinc = Explain(*nd, PlanMode::kContinuousIncremental);
  EXPECT_NE(ndinc.find("recompute"), std::string::npos);
  EXPECT_NE(ndinc.find("not divisible"), std::string::npos);

  // Plain ORDER BY classifies as a merge of pre-sorted runs.
  auto proj = CompileSql(
      "SELECT ts, px FROM trades [RANGE 8 SECONDS SLIDE 2 SECONDS] "
      "ORDER BY ts");
  ASSERT_TRUE(proj.ok()) << proj.status().ToString();
  const std::string pinc = Explain(*proj, PlanMode::kContinuousIncremental);
  EXPECT_NE(pinc.find("merge of sorted runs"), std::string::npos);
  EXPECT_NE(pinc.find("merge_sorted_runs"), std::string::npos);
}

TEST_F(PlanTest, WindowSpecHelpers) {
  WindowSpec w;
  w.rows = true;
  w.size = 100;
  w.slide = 25;
  EXPECT_FALSE(w.tumbling());
  EXPECT_EQ(w.NumBasicWindows(), 4);
  w.slide = 100;
  EXPECT_TRUE(w.tumbling());
  EXPECT_NE(w.ToString().find("ROWS"), std::string::npos);
}

}  // namespace
}  // namespace dc::plan
