// Tests for the workload generators (determinism, batch/rowgen agreement,
// distribution shape) and the Linear Road lite pipeline, validated against
// an independent offline reference computation.

#include <gtest/gtest.h>

#include <map>

#include "core/engine.h"
#include "tests/test_util.h"
#include "workload/generators.h"
#include "workload/linear_road.h"

namespace dc::workload {
namespace {

TEST(GeneratorTest, SensorBatchMatchesRowGen) {
  SensorConfig config;
  config.rows = 100;
  auto gen = MakeSensorGen(config);
  auto batch = SensorBatch(config, 0, 100);
  std::vector<Value> row;
  for (uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(gen(&row));
    EXPECT_EQ(row[0].AsI64(), batch[0]->GetValue(i).AsI64());
    EXPECT_EQ(row[1].AsI64(), batch[1]->GetValue(i).AsI64());
    EXPECT_EQ(row[2].AsF64(), batch[2]->GetValue(i).AsF64());
  }
  EXPECT_FALSE(gen(&row));  // row limit respected
}

TEST(GeneratorTest, OffsetBatchesAreConsistent) {
  PacketConfig config;
  auto whole = PacketBatch(config, 0, 200);
  auto part = PacketBatch(config, 150, 50);
  for (uint64_t i = 0; i < 50; ++i) {
    EXPECT_EQ(whole[1]->GetValue(150 + i).AsI64(),
              part[1]->GetValue(i).AsI64());
  }
}

TEST(GeneratorTest, SeedsChangeData) {
  WebLogConfig a, b;
  b.seed = 777;
  auto ba = WebLogBatch(a, 0, 50);
  auto bb = WebLogBatch(b, 0, 50);
  int diffs = 0;
  for (uint64_t i = 0; i < 50; ++i) {
    if (ba[1]->GetValue(i).AsI64() != bb[1]->GetValue(i).AsI64()) ++diffs;
  }
  EXPECT_GT(diffs, 25);
}

TEST(GeneratorTest, TimestampsAreMonotone) {
  TradesConfig config;
  auto batch = TradesBatch(config, 0, 1000);
  auto ts = batch[0]->I64Data();
  for (size_t i = 1; i < ts.size(); ++i) EXPECT_GE(ts[i], ts[i - 1]);
}

TEST(GeneratorTest, PacketSourcesAreSkewed) {
  PacketConfig config;
  config.num_hosts = 1000;
  config.src_skew = 0.99;
  auto batch = PacketBatch(config, 0, 20000);
  std::map<int64_t, int> counts;
  auto src = batch[1]->I64Data();
  for (int64_t s : src) counts[s]++;
  int head = 0;
  for (int64_t s = 0; s < 50; ++s) head += counts.count(s) ? counts[s] : 0;
  // Top 5% of hosts should carry far more than 5% of the traffic.
  EXPECT_GT(head, 20000 / 5);
}

TEST(GeneratorTest, WebLogErrorRateApproximatesConfig) {
  WebLogConfig config;
  config.error_rate = 0.1;
  auto batch = WebLogBatch(config, 0, 20000);
  auto status = batch[4]->I64Data();
  int errors = 0;
  for (int64_t s : status) errors += s >= 500 ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(errors) / 20000.0, 0.1, 0.02);
}

TEST(LinearRoadTest, GeneratorShape) {
  LrConfig config;
  config.xways = 2;
  config.vehicles_per_xway = 10;
  config.duration_sec = 5;
  LinearRoadGenerator gen(config);
  EXPECT_EQ(gen.TotalReports(), 100u);
  std::vector<Value> row;
  uint64_t n = 0;
  int64_t prev_ts = INT64_MIN;
  while (gen.NextRow(&row)) {
    ++n;
    ASSERT_EQ(row.size(), 6u);
    EXPECT_GE(row[0].AsI64(), prev_ts);
    prev_ts = row[0].AsI64();
    const int64_t xway = row[3].AsI64();
    EXPECT_GE(xway, 0);
    EXPECT_LT(xway, 2);
    const int64_t seg = row[5].AsI64();
    EXPECT_GE(seg, 0);
    EXPECT_LT(seg, kLrSegments);
    EXPECT_GE(row[2].AsF64(), 0.0);
  }
  EXPECT_EQ(n, 100u);
}

TEST(LinearRoadTest, DeterministicAcrossInstances) {
  LrConfig config;
  config.vehicles_per_xway = 20;
  config.duration_sec = 10;
  LinearRoadGenerator g1(config), g2(config);
  std::vector<Value> r1, r2;
  while (true) {
    const bool a = g1.NextRow(&r1);
    const bool b = g2.NextRow(&r2);
    ASSERT_EQ(a, b);
    if (!a) break;
    for (size_t i = 0; i < r1.size(); ++i) {
      EXPECT_EQ(r1[i].ToString(), r2[i].ToString());
    }
  }
}

TEST(LinearRoadTest, TollFormula) {
  EXPECT_EQ(LrToll(60.0, 500), 0.0);   // traffic flowing
  EXPECT_EQ(LrToll(20.0, 30), 0.0);    // too few vehicles
  EXPECT_GT(LrToll(20.0, 200), 0.0);
  EXPECT_GT(LrToll(20.0, 400), LrToll(20.0, 200));  // quadratic growth
}

// The flagship integration check: the DataCell accident query produces
// exactly the accidents an independent offline computation finds.
TEST(LinearRoadTest, AccidentQueryMatchesReference) {
  LrConfig config;
  config.xways = 1;
  config.vehicles_per_xway = 80;
  config.duration_sec = 60;
  config.stop_prob = 0.01;  // plenty of breakdowns

  Engine engine(testutil::SyncOptions());
  ASSERT_TRUE(engine.Execute(LrPositionDdl("pos")).ok());
  auto queries = SetupLrQueries(engine, "pos", ExecMode::kIncremental);
  ASSERT_TRUE(queries.ok()) << queries.status().ToString();

  LinearRoadGenerator gen(config);
  std::vector<Value> row;
  while (gen.NextRow(&row)) {
    ASSERT_TRUE(engine.PushRow("pos", row).ok());
  }
  ASSERT_TRUE(engine.SealStream("pos").ok());
  engine.Pump();

  // Emissions with zero rows leave no trace in the output basket, so the
  // engine's visible emission sequence is exactly the sequence of windows
  // with at least one accident, in boundary order. Compare that sequence
  // against the reference (restricted to the boundaries the factory fired
  // before going dormant: event horizon + window).
  auto emissions = engine.TakeResults(queries->accidents);
  ASSERT_TRUE(emissions.ok());
  std::vector<std::vector<std::tuple<int64_t, int64_t, int64_t>>> engine_seq;
  for (const ColumnSet& e : *emissions) {
    std::vector<std::tuple<int64_t, int64_t, int64_t>> segs;
    for (uint64_t r = 0; r < e.NumRows(); ++r) {
      segs.emplace_back(e.cols[0]->GetValue(r).AsI64(),
                        e.cols[1]->GetValue(r).AsI64(),
                        e.cols[2]->GetValue(r).AsI64());
    }
    engine_seq.push_back(std::move(segs));
  }

  const auto reference = ReferenceAccidents(config, 30, 10);
  ASSERT_FALSE(reference.empty()) << "workload produced no accidents; "
                                     "raise stop_prob";
  // Sealed-stream dormancy: windows whose start lies past the last event
  // never fire. Last event is at duration_sec - 1.
  std::vector<std::vector<std::tuple<int64_t, int64_t, int64_t>>> ref_seq;
  for (const auto& [boundary, segs] : reference) {
    if (boundary - 30 > config.duration_sec - 1) continue;  // dormant
    ref_seq.push_back(segs);
  }
  EXPECT_EQ(engine_seq, ref_seq);
}

}  // namespace
}  // namespace dc::workload
