// Randomized multi-query sharing fuzzer (docs/SHARING.md).
//
// Draws 8-32 queries from a small grammar biased toward shareable shapes
// (same fragment prefixes, compatible window grids) and runs them all in
// one sharing engine against a per-query solo oracle (a fresh engine with
// EngineOptions::enable_sharing = false over identical data). Any
// divergence is shrunk by greedily dropping co-registered queries until a
// minimal diverging set remains, which is what the failure message prints.
//
// Also hosts the register/unregister-during-ingest lifecycle churn test:
// queries come and go while a producer thread feeds the stream, and at the
// end every refcount must have hit zero — no shared nodes, no scheduler
// arcs or factories, no basket readers left behind. Run under ASan/TSan in
// CI (the `multiquery_churn` CTest entry is in the repeat-until-fail set).

#include <gtest/gtest.h>

#include <cstdlib>
#include <deque>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "tests/test_util.h"
#include "util/random.h"
#include "util/string_util.h"

namespace dc {
namespace {

EngineOptions FuzzOpts(bool sharing) {
  EngineOptions o = testutil::SyncOptions();
  o.enable_sharing = sharing;
  return o;
}

/// One query from the grammar: aggregate / grouped / projection shapes over
/// RANGE and ROWS windows whose slides mostly share a grid (1, 2, 4), with
/// occasional non-divisible geometries to exercise the solo fallback and
/// occasional full re-evaluation mode to exercise factory-level dedup.
std::string GenQuery(Rng& rng, ExecMode* mode) {
  *mode = rng.UniformInt(0, 7) == 0 ? ExecMode::kFullReeval
                                    : ExecMode::kIncremental;
  std::string window;
  if (rng.UniformInt(0, 3) == 0) {
    const int64_t slide = 4 * (1 + rng.UniformInt(0, 1));          // 4 or 8
    const int64_t size = slide * (1 + rng.UniformInt(0, 2));       // 1-3 grids
    window = StrFormat("ROWS %lld SLIDE %lld", static_cast<long long>(size),
                       static_cast<long long>(slide));
  } else if (rng.UniformInt(0, 9) == 0) {
    window = "RANGE 6 SECONDS SLIDE 4 SECONDS";  // non-divisible fallback
  } else {
    const int64_t slide = int64_t{1} << rng.UniformInt(0, 2);      // 1, 2, 4
    const int64_t size = slide * (1 + rng.UniformInt(0, 3));       // 1-4 grids
    window =
        StrFormat("RANGE %lld SECONDS SLIDE %lld SECONDS",
                  static_cast<long long>(size), static_cast<long long>(slide));
  }
  switch (rng.UniformInt(0, 3)) {
    case 0:
      return StrFormat(
          "SELECT g, count(*), sum(v) FROM s [%s] "
          "GROUP BY g HAVING count(*) > %lld ORDER BY g",
          window.c_str(), static_cast<long long>(rng.UniformInt(0, 6)));
    case 1:
      return StrFormat("SELECT count(*), sum(v), min(v), max(v) FROM s [%s]",
                       window.c_str());
    case 2:
      return StrFormat(
          "SELECT g, count(*), avg(w) FROM s [%s] GROUP BY g ORDER BY g",
          window.c_str());
    default:
      return StrFormat(
          "SELECT ts, g, v FROM s [%s] WHERE v > %lld ORDER BY ts, g, v",
          window.c_str(), static_cast<long long>(rng.UniformInt(-20, 20)));
  }
}

struct FuzzQuery {
  std::string sql;
  ExecMode mode;
};

void Ddl(Engine& e) {
  ASSERT_TRUE(
      e.Execute("CREATE STREAM s (ts timestamp, g int, v int, w double)")
          .ok());
}

void Feed(Engine& e, uint64_t data_seed, int n) {
  Rng rng(data_seed);
  int64_t ts_sec = 0;
  for (int i = 0; i < n; ++i) {
    ts_sec += rng.UniformInt(0, 3) / 2;  // 0 or 1 s per row
    ASSERT_TRUE(
        e.PushRow("s",
                  {Value::Ts(ts_sec * kMicrosPerSecond),
                   Value::I64(rng.UniformInt(0, 5)),
                   Value::I64(rng.UniformInt(-50, 50)),
                   Value::F64(static_cast<double>(rng.UniformInt(0, 160)) /
                              16.0)})
            .ok());
    e.Pump();
  }
  ASSERT_TRUE(e.SealStream("s").ok());
  e.Pump();
}

constexpr int kFeedRows = 200;

/// All queries in one sharing engine; one emission-string vector per query.
std::vector<std::vector<std::string>> RunShared(
    const std::vector<FuzzQuery>& queries, uint64_t data_seed) {
  Engine engine(FuzzOpts(true));
  Ddl(engine);
  std::vector<int> ids;
  for (const FuzzQuery& q : queries) {
    auto qid = engine.SubmitContinuous(q.sql, testutil::WithMode(q.mode));
    EXPECT_TRUE(qid.ok()) << qid.status().ToString() << "\nsql: " << q.sql;
    ids.push_back(qid.ok() ? *qid : -1);
  }
  Feed(engine, data_seed, kFeedRows);
  std::vector<std::vector<std::string>> out;
  for (int id : ids) {
    auto res = engine.TakeResults(id);
    EXPECT_TRUE(res.ok()) << res.status().ToString();
    out.push_back(res.ok() ? testutil::EmissionStrings(*res)
                           : std::vector<std::string>{});
  }
  return out;
}

/// The oracle: the same query alone in an engine with sharing disabled.
std::vector<std::string> RunSolo(const FuzzQuery& q, uint64_t data_seed) {
  Engine engine(FuzzOpts(false));
  Ddl(engine);
  auto qid = engine.SubmitContinuous(q.sql, testutil::WithMode(q.mode));
  EXPECT_TRUE(qid.ok()) << qid.status().ToString() << "\nsql: " << q.sql;
  if (!qid.ok()) return {};
  Feed(engine, data_seed, kFeedRows);
  auto res = engine.TakeResults(*qid);
  EXPECT_TRUE(res.ok()) << res.status().ToString();
  return res.ok() ? testutil::EmissionStrings(*res)
                  : std::vector<std::string>{};
}

/// Greedy shrink: drop co-registered queries one at a time as long as the
/// victim query still diverges from its solo oracle in the reduced set.
std::vector<FuzzQuery> Shrink(std::vector<FuzzQuery> queries, size_t victim,
                              const std::vector<std::string>& oracle,
                              uint64_t data_seed) {
  for (size_t j = 0; j < queries.size();) {
    if (j == victim) {
      ++j;
      continue;
    }
    std::vector<FuzzQuery> reduced = queries;
    reduced.erase(reduced.begin() + static_cast<ptrdiff_t>(j));
    const size_t v = victim - (j < victim ? 1 : 0);
    if (RunShared(reduced, data_seed)[v] != oracle) {
      queries = std::move(reduced);
      victim = v;
    } else {
      ++j;
    }
  }
  return queries;
}

TEST(MultiQueryFuzz, SharedMatchesSoloOracle) {
  uint64_t base_seed = 20260809;
  int rounds = 3;
  if (const char* env = std::getenv("DC_FUZZ_SEED")) {
    base_seed = static_cast<uint64_t>(std::strtoull(env, nullptr, 10));
  }
  if (const char* env = std::getenv("DC_FUZZ_ROUNDS")) {
    rounds = std::atoi(env);
  }
  for (int round = 0; round < rounds; ++round) {
    const uint64_t seed = base_seed + static_cast<uint64_t>(round);
    Rng rng(seed);
    const int nq = static_cast<int>(rng.UniformInt(8, 32));
    std::vector<FuzzQuery> queries;
    for (int i = 0; i < nq; ++i) {
      FuzzQuery q;
      q.sql = GenQuery(rng, &q.mode);
      queries.push_back(std::move(q));
    }
    const uint64_t data_seed = seed * 31 + 7;
    const std::vector<std::vector<std::string>> shared =
        RunShared(queries, data_seed);
    ASSERT_EQ(shared.size(), queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      const std::vector<std::string> oracle = RunSolo(queries[i], data_seed);
      if (shared[i] == oracle) continue;
      const std::vector<FuzzQuery> minimal =
          Shrink(queries, i, oracle, data_seed);
      std::string repro = StrFormat(
          "seed %llu: query diverges under sharing\nvictim: %s\n"
          "minimal co-registered set (%zu queries):\n",
          static_cast<unsigned long long>(seed), queries[i].sql.c_str(),
          minimal.size());
      for (const FuzzQuery& q : minimal) {
        repro += "  " + q.sql +
                 (q.mode == ExecMode::kFullReeval ? "  [full]\n" : "\n");
      }
      FAIL() << repro;
    }
  }
}

// --- Register/unregister churn during ingest (lifecycle) ------------------
//
// Queries come and go while a producer feeds the stream: every submit may
// create or join a shared node / alias a factory, every remove drops a
// refcount, and removal of the last subscriber must tear the shared state
// down while fires are still in flight. Asserts the end state only (all
// refcounts zero, nothing orphaned); emission equality for steady-state
// registrations is pinned by the differential suites. Sanitizer presets
// make this a use-after-free and race hunt.
TEST(MultiQueryChurn, RegisterUnregisterDuringIngest) {
  EngineOptions opts = testutil::Threaded(2);
  opts.enable_sharing = true;
  Engine engine(opts);
  ASSERT_TRUE(
      engine.Execute("CREATE STREAM s (ts timestamp, g int, v int, w double)")
          .ok());

  constexpr int kRows = 2000;
  std::thread producer([&] {
    Rng rng(555);
    int64_t ts_sec = 0;
    for (int i = 0; i < kRows; ++i) {
      ts_sec += rng.UniformInt(0, 3) / 2;
      ASSERT_TRUE(
          engine
              .PushRow("s",
                       {Value::Ts(ts_sec * kMicrosPerSecond),
                        Value::I64(rng.UniformInt(0, 5)),
                        Value::I64(rng.UniformInt(-50, 50)),
                        Value::F64(
                            static_cast<double>(rng.UniformInt(0, 160)) /
                            16.0)})
              .ok());
    }
  });

  Rng rng(717);
  std::deque<int> active;
  for (int i = 0; i < 80; ++i) {
    FuzzQuery q;
    q.sql = GenQuery(rng, &q.mode);
    auto qid = engine.SubmitContinuous(q.sql, testutil::WithMode(q.mode));
    ASSERT_TRUE(qid.ok()) << qid.status().ToString() << "\nsql: " << q.sql;
    active.push_back(*qid);
    while (active.size() > 8) {
      ASSERT_TRUE(engine.RemoveContinuous(active.front()).ok());
      active.pop_front();
    }
    if (i % 5 == 0) (void)engine.GetSharingStats();
    std::this_thread::yield();
  }
  producer.join();
  ASSERT_TRUE(engine.SealStream("s").ok());
  ASSERT_TRUE(engine.WaitIdle());
  while (!active.empty()) {
    ASSERT_TRUE(engine.RemoveContinuous(active.front()).ok());
    active.pop_front();
  }

  // Every refcount must have hit zero: no shared nodes, no scheduler
  // factories or arcs, no basket readers left registered.
  const SharingStats ss = engine.GetSharingStats();
  EXPECT_EQ(ss.shared_nodes, 0u);
  EXPECT_EQ(ss.shared_factories, 0u);
  const SchedulerStats sched = engine.SchedStats();
  EXPECT_EQ(sched.factories, 0u);
  EXPECT_EQ(sched.arcs, 0u);
  EXPECT_EQ(engine.StreamStats("s")->readers, 0u);
}

}  // namespace
}  // namespace dc
