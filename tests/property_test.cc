// Property-based suites (parameterized gtest sweeps).
//
// P1 — the paper's central invariant: FULL re-evaluation and INCREMENTAL
//      processing produce identical emissions, swept over query shapes ×
//      window kinds × (size, slide) combinations × data seeds.
// P2 — candidate-list algebra obeys set semantics against a reference
//      std::set implementation, over random universes.
// P3 — aggregate partial states: any partition of the input merges to the
//      same result as the whole, over random splits and types.

#include <gtest/gtest.h>

#include <set>

#include "bat/ops_aggregate.h"
#include "bat/ops_select.h"
#include "core/engine.h"
#include "tests/test_util.h"
#include "util/random.h"
#include "util/string_util.h"

namespace dc {
namespace {

using testutil::EmissionStrings;

// --- P1: FULL == INCREMENTAL --------------------------------------------------

struct ModeCase {
  const char* label;
  const char* select;   // query text after FROM clause injection
  bool rows_window;
  int64_t size;         // rows, or seconds
  int64_t slide;
  uint64_t seed;
};

std::string CaseSql(const ModeCase& c) {
  const std::string window =
      c.rows_window
          ? StrFormat("[ROWS %lld SLIDE %lld]",
                      static_cast<long long>(c.size),
                      static_cast<long long>(c.slide))
          : StrFormat("[RANGE %lld SECONDS SLIDE %lld SECONDS]",
                      static_cast<long long>(c.size),
                      static_cast<long long>(c.slide));
  std::string sql = c.select;
  const size_t pos = sql.find("$W");
  EXPECT_NE(pos, std::string::npos);
  sql.replace(pos, 2, window);
  return sql;
}

class FullVsIncremental : public ::testing::TestWithParam<ModeCase> {};

TEST_P(FullVsIncremental, EmissionsIdentical) {
  const ModeCase& c = GetParam();
  Engine engine(testutil::SyncOptions());
  ASSERT_TRUE(
      engine.Execute("CREATE STREAM s (ts timestamp, g int, v int, w double)")
          .ok());
  ASSERT_TRUE(engine
                  .Execute("CREATE TABLE dim (g int, label string);"
                           "INSERT INTO dim VALUES (0,'a'), (1,'b'), "
                           "(2,'c'), (3,'d')")
                  .ok());

  const std::string sql = CaseSql(c);
  auto full =
      engine.SubmitContinuous(sql, testutil::WithMode(ExecMode::kFullReeval));
  auto inc = engine.SubmitContinuous(
      sql, testutil::WithMode(ExecMode::kIncremental));
  ASSERT_TRUE(full.ok()) << full.status().ToString() << " sql: " << sql;
  ASSERT_TRUE(inc.ok()) << inc.status().ToString();
  ASSERT_FALSE(engine.GetFactory(*inc)->Stats().fell_back_to_full);

  Rng rng(c.seed);
  const int rows = 400;
  int64_t ts_sec = 0;
  for (int i = 0; i < rows; ++i) {
    // Event time advances by 0..1 s per row (duplicates included).
    ts_sec += rng.UniformInt(0, 3) / 2;
    ASSERT_TRUE(engine
                    .PushRow("s", {Value::Ts(ts_sec * kMicrosPerSecond),
                                   Value::I64(rng.UniformInt(0, 5)),
                                   Value::I64(rng.UniformInt(-50, 50)),
                                   Value::F64(rng.UniformDouble(0, 10))})
                    .ok());
    engine.Pump();
  }
  ASSERT_TRUE(engine.SealStream("s").ok());
  engine.Pump();

  auto full_results = engine.TakeResults(*full);
  auto inc_results = engine.TakeResults(*inc);
  ASSERT_TRUE(full_results.ok() && inc_results.ok());
  ASSERT_GT(full_results->size(), 0u) << sql;
  EXPECT_EQ(EmissionStrings(*full_results), EmissionStrings(*inc_results))
      << sql;
}

constexpr const char* kScalarAgg =
    "SELECT count(*), sum(v), avg(w), min(v), max(v) FROM s $W";
constexpr const char* kGroupedAgg =
    "SELECT g, count(*), sum(v), avg(w) FROM s $W GROUP BY g ORDER BY g";
constexpr const char* kFilteredAgg =
    "SELECT g, sum(v) FROM s $W WHERE v > 0 AND w < 8.0 GROUP BY g "
    "ORDER BY g";
constexpr const char* kHavingLimit =
    "SELECT g, count(*) AS c FROM s $W GROUP BY g HAVING count(*) > 2 "
    "ORDER BY c DESC, g LIMIT 3";
constexpr const char* kProjection =
    "SELECT ts, v * 2, w FROM s $W WHERE v % 3 = 0 ORDER BY ts, v";
constexpr const char* kJoinTable =
    "SELECT label, sum(v), count(*) FROM s $W JOIN dim ON s.g = dim.g "
    "GROUP BY label ORDER BY label";

std::vector<ModeCase> MakeCases() {
  std::vector<ModeCase> cases;
  const std::pair<int64_t, int64_t> rows_windows[] = {
      {8, 8}, {8, 4}, {12, 3}, {20, 5}, {32, 4}};
  const std::pair<int64_t, int64_t> range_windows[] = {
      {4, 4}, {4, 2}, {8, 2}, {12, 3}};
  const char* queries[] = {kScalarAgg, kGroupedAgg, kFilteredAgg,
                           kHavingLimit, kProjection, kJoinTable};
  uint64_t seed = 1;
  for (const char* q : queries) {
    for (auto [size, slide] : rows_windows) {
      cases.push_back(ModeCase{"rows", q, true, size, slide, seed++});
    }
    for (auto [size, slide] : range_windows) {
      cases.push_back(ModeCase{"range", q, false, size, slide, seed++});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, FullVsIncremental,
                         ::testing::ValuesIn(MakeCases()));

// --- P1b: stream-stream join equivalence (separate: needs two streams) ----

class DualStreamCase : public ::testing::TestWithParam<int> {};

TEST_P(DualStreamCase, JoinFullVsIncremental) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  Engine engine(testutil::SyncOptions());
  ASSERT_TRUE(
      engine.Execute("CREATE STREAM a (ts timestamp, k int, x int)").ok());
  ASSERT_TRUE(
      engine.Execute("CREATE STREAM b (ts timestamp, k int, y int)").ok());
  const char* sql =
      "SELECT count(*), sum(x), sum(y) FROM "
      "a [RANGE 4 SECONDS SLIDE 2 SECONDS] JOIN "
      "b [RANGE 6 SECONDS SLIDE 2 SECONDS] ON a.k = b.k";
  auto full =
      engine.SubmitContinuous(sql, testutil::WithMode(ExecMode::kFullReeval));
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  auto inc = engine.SubmitContinuous(
      sql, testutil::WithMode(ExecMode::kIncremental));
  ASSERT_TRUE(inc.ok());

  Rng rng(seed);
  int64_t ta = 0, tb = 0;
  for (int i = 0; i < 300; ++i) {
    ta += rng.UniformInt(0, 2) / 2;
    tb += rng.UniformInt(0, 2) / 2;
    ASSERT_TRUE(engine
                    .PushRow("a", {Value::Ts(ta * kMicrosPerSecond),
                                   Value::I64(rng.UniformInt(0, 8)),
                                   Value::I64(rng.UniformInt(0, 100))})
                    .ok());
    ASSERT_TRUE(engine
                    .PushRow("b", {Value::Ts(tb * kMicrosPerSecond),
                                   Value::I64(rng.UniformInt(0, 8)),
                                   Value::I64(rng.UniformInt(0, 100))})
                    .ok());
    engine.Pump();
  }
  ASSERT_TRUE(engine.SealStream("a").ok());
  ASSERT_TRUE(engine.SealStream("b").ok());
  engine.Pump();

  auto fr = engine.TakeResults(*full);
  auto ir = engine.TakeResults(*inc);
  ASSERT_TRUE(fr.ok() && ir.ok());
  ASSERT_GT(fr->size(), 0u);
  EXPECT_EQ(EmissionStrings(*fr), EmissionStrings(*ir));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DualStreamCase, ::testing::Range(1, 6));

// --- P2: candidate algebra vs std::set reference ---------------------------

class CandidateAlgebra : public ::testing::TestWithParam<int> {};

TEST_P(CandidateAlgebra, MatchesReferenceSets) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 977);
  const uint64_t domain = 200;
  auto random_set = [&] {
    std::set<Oid> s;
    const int n = static_cast<int>(rng.UniformInt(0, 60));
    for (int i = 0; i < n; ++i) {
      s.insert(static_cast<Oid>(rng.UniformInt(0, domain - 1)));
    }
    return s;
  };
  auto to_cand = [](const std::set<Oid>& s) {
    return Candidates::FromVector(std::vector<Oid>(s.begin(), s.end()));
  };
  auto to_vec = [](const std::set<Oid>& s) {
    return std::vector<Oid>(s.begin(), s.end());
  };
  for (int round = 0; round < 20; ++round) {
    const std::set<Oid> sa = random_set();
    const std::set<Oid> sb = random_set();
    const Candidates a = to_cand(sa);
    const Candidates b = to_cand(sb);
    std::set<Oid> ref_and, ref_or, ref_diff;
    std::set_intersection(sa.begin(), sa.end(), sb.begin(), sb.end(),
                          std::inserter(ref_and, ref_and.begin()));
    std::set_union(sa.begin(), sa.end(), sb.begin(), sb.end(),
                   std::inserter(ref_or, ref_or.begin()));
    std::set_difference(sa.begin(), sa.end(), sb.begin(), sb.end(),
                        std::inserter(ref_diff, ref_diff.begin()));
    EXPECT_EQ(Candidates::Intersect(a, b).ToVector(), to_vec(ref_and));
    EXPECT_EQ(Candidates::Union(a, b).ToVector(), to_vec(ref_or));
    EXPECT_EQ(Candidates::Difference(a, b).ToVector(), to_vec(ref_diff));
    // Membership agrees everywhere.
    for (Oid o = 0; o < domain; o += 7) {
      EXPECT_EQ(a.Contains(o), sa.count(o) > 0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CandidateAlgebra, ::testing::Range(1, 9));

// --- P3: partial-state merges over random partitions ------------------------

class AggMergePartition : public ::testing::TestWithParam<int> {};

TEST_P(AggMergePartition, AnyPartitionMergesToWhole) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 131);
  const uint64_t n = 200 + rng.Next() % 200;
  std::vector<double> data(n);
  for (auto& x : data) x = rng.UniformDouble(-100, 100);
  auto whole_col = Bat::MakeF64(data);

  ops::AggState whole;
  whole.AddColumn(*whole_col, nullptr);

  // Random partition into 1..10 contiguous chunks.
  ops::AggState merged;
  uint64_t pos = 0;
  while (pos < n) {
    const uint64_t len =
        std::min<uint64_t>(n - pos, 1 + rng.Next() % (n / 3 + 1));
    auto chunk = whole_col->Slice(pos, pos + len);
    ops::AggState part;
    part.AddColumn(*chunk, nullptr);
    merged.Merge(part);
    pos += len;
  }
  for (ops::AggKind k :
       {ops::AggKind::kCount, ops::AggKind::kSum, ops::AggKind::kMin,
        ops::AggKind::kMax}) {
    EXPECT_EQ(merged.Finalize(k, TypeId::kF64).ToString(),
              whole.Finalize(k, TypeId::kF64).ToString());
  }
  // AVG within floating-point tolerance (associativity of the division).
  EXPECT_NEAR(merged.Finalize(ops::AggKind::kAvg, TypeId::kF64).AsF64(),
              whole.Finalize(ops::AggKind::kAvg, TypeId::kF64).AsF64(),
              1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AggMergePartition, ::testing::Range(1, 13));

}  // namespace
}  // namespace dc
