// Copyright 2026 The DataCell Authors.
//
// MUST NOT COMPILE under Clang with -Werror=thread-safety. CMake's
// configure step try_compile()s this file when DC_THREAD_SAFETY is ON and
// fails the configure if it is *accepted* — proving the DC_GUARDED_BY /
// DC_REQUIRES contracts in src/util/sync.h are still enforced and not
// accidentally compiled out.
//
// Both violations below are the two misuse classes the analysis exists to
// catch: touching a guarded field without the lock, and calling a
// DC_REQUIRES helper without holding its capability.

#include "util/sync.h"

namespace {

class Counter {
 public:
  void BumpWithoutLock() {
    // Violation 1: guarded field written without holding mu_.
    ++value_;
  }

  void CallHelperWithoutLock() {
    // Violation 2: DC_REQUIRES(mu_) helper invoked lock-free.
    BumpLocked();
  }

 private:
  void BumpLocked() DC_REQUIRES(mu_) { ++value_; }

  dc::Mutex mu_{dc::LockRank::kLeaf};
  int value_ DC_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.BumpWithoutLock();
  c.CallHelperWithoutLock();
  return 0;
}
