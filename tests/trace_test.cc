// Unit tests for src/monitor/trace.h: refcounted enablement, span /
// instant recording, ring-buffer overwrite, per-thread tids, the Chrome
// trace_event JSON dump, and the engine integration (factory fire /
// basket append / emitter drain spans appear when
// EngineOptions::enable_tracing is set).

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "monitor/trace.h"

namespace dc {
namespace {

/// Balanced enable scope so a failing test cannot leak an enable ref
/// into later tests.
struct EnableScope {
  EnableScope() { trace::AddEnableRef(); }
  ~EnableScope() { trace::ReleaseEnableRef(); }
};

TEST(TraceTest, DisabledByDefaultRecordsNothing) {
  trace::ClearForTest();
  ASSERT_FALSE(trace::Enabled());
  { trace::Span span("noop", "test", 1); }
  trace::Instant("noop.instant", "test");
  EXPECT_EQ(trace::BufferedEventsForTest(), 0u);
}

TEST(TraceTest, EnableRefsAreRefcounted) {
  trace::AddEnableRef();
  trace::AddEnableRef();
  EXPECT_TRUE(trace::Enabled());
  trace::ReleaseEnableRef();
  EXPECT_TRUE(trace::Enabled());  // one ref still held
  trace::ReleaseEnableRef();
  EXPECT_FALSE(trace::Enabled());
}

TEST(TraceTest, SpanRecordsCompleteEvent) {
  trace::ClearForTest();
  EnableScope on;
  { trace::Span span("unit.work", "test", 7); }
  EXPECT_EQ(trace::BufferedEventsForTest(), 1u);
  const std::string json = trace::DumpJson();
  EXPECT_NE(json.find("\"name\":\"unit.work\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"test\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"v\":7}"), std::string::npos);
}

TEST(TraceTest, CancelSuppressesTheSpan) {
  trace::ClearForTest();
  EnableScope on;
  {
    trace::Span span("cancelled", "test");
    span.Cancel();
  }
  EXPECT_EQ(trace::BufferedEventsForTest(), 0u);
}

TEST(TraceTest, SetArgUpdatesPayload) {
  trace::ClearForTest();
  EnableScope on;
  {
    trace::Span span("late.arg", "test");
    span.set_arg(42);
  }
  EXPECT_NE(trace::DumpJson().find("\"args\":{\"v\":42}"), std::string::npos);
}

TEST(TraceTest, InstantHasZeroDuration) {
  trace::ClearForTest();
  EnableScope on;
  trace::Instant("tick", "test", 3);
  const std::string json = trace::DumpJson();
  EXPECT_NE(json.find("\"name\":\"tick\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":0"), std::string::npos);
}

TEST(TraceTest, SpanArmedAtConstructionSurvivesDisable) {
  // Enablement is sampled once in the ctor: a span open across the last
  // ReleaseEnableRef still records (late, not torn).
  trace::ClearForTest();
  trace::AddEnableRef();
  {
    trace::Span span("crossing", "test");
    trace::ReleaseEnableRef();
  }
  EXPECT_FALSE(trace::Enabled());
  EXPECT_EQ(trace::BufferedEventsForTest(), 1u);
}

TEST(TraceTest, RingOverwritesOldest) {
  trace::ClearForTest();
  EnableScope on;
  const uint64_t n = 9000;  // > kEventsPerThread (8192)
  for (uint64_t i = 0; i < n; ++i) trace::Instant("flood", "test");
  EXPECT_EQ(trace::BufferedEventsForTest(), 8192u);
}

TEST(TraceTest, ThreadsGetDistinctTids) {
  trace::ClearForTest();
  EnableScope on;
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([] { trace::Instant("worker.evt", "test"); });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(trace::BufferedEventsForTest(), 2u);
  // Both events present, on different tid values — find the two tid
  // fields and check they differ.
  const std::string json = trace::DumpJson();
  const size_t first = json.find("\"tid\":");
  const size_t second = json.find("\"tid\":", first + 1);
  ASSERT_NE(second, std::string::npos);
  const std::string tid1 = json.substr(first, json.find(',', first) - first);
  const std::string tid2 =
      json.substr(second, json.find(',', second) - second);
  EXPECT_NE(tid1, tid2);
}

TEST(TraceTest, DumpJsonIsWellFormedWhenEmpty) {
  trace::ClearForTest();
  EXPECT_EQ(trace::DumpJson(), "{\"traceEvents\":[]}");
}

TEST(TraceTest, EngineIntegrationEmitsPipelineSpans) {
  trace::ClearForTest();
  EngineOptions opts;
  opts.scheduler_workers = 0;
  opts.enable_tracing = true;
  {
    Engine engine(opts);
    ASSERT_TRUE(engine.Execute("CREATE STREAM s (v int)").ok());
    auto q = engine.SubmitContinuous(
        "SELECT SUM(v) FROM s [ROWS 4 SLIDE 2]");
    ASSERT_TRUE(q.ok());
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(engine.PushRow("s", {Value::I64(i)}).ok());
    }
    engine.Pump();
  }
  EXPECT_FALSE(trace::Enabled());  // engine dtor released the ref
  const std::string json = trace::DumpJson();
  EXPECT_NE(json.find("\"name\":\"basket.append\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"factory.fire\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"emitter.drain\""), std::string::npos);
}

}  // namespace
}  // namespace dc
