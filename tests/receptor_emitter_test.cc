// Unit tests for receptors (ingestion threads, pacing, pause, CSV source)
// and emitters (boundary-preserving delivery, collector sink).

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/emitter.h"
#include "core/receptor.h"
#include "tests/test_util.h"

namespace dc {
namespace {

using testutil::TsI64Schema;

Receptor::RowGen CountingGen(int64_t n) {
  auto i = std::make_shared<int64_t>(0);
  return [n, i](std::vector<Value>* row) {
    if (*i >= n) return false;
    row->resize(2);
    (*row)[0] = Value::Ts(*i);
    (*row)[1] = Value::I64(*i);
    ++*i;
    return true;
  };
}

TEST(ReceptorTest, IngestsEverythingAndSeals) {
  Basket basket("s", TsI64Schema(), 0);
  Receptor::Options opts;
  opts.batch_rows = 7;  // deliberately not a divisor of 100
  Receptor r("r", &basket, CountingGen(100), opts);
  r.Start();
  r.WaitFinished();
  EXPECT_EQ(basket.HighSeq(), 100u);
  EXPECT_TRUE(basket.sealed());
  EXPECT_TRUE(r.Stats().finished);
  EXPECT_EQ(r.Stats().rows, 100u);
  // Values arrived in order.
  BasketView view = basket.Read(0);
  EXPECT_EQ(view.cols[1]->I64Data()[99], 99);
}

// Regression: start_time_ was a plain Micros written by Start() and read
// by Stats() from other threads — a data race TSan flags. It is atomic
// now; this test keeps the racing pair exercised so the TSan CI preset
// would catch a reintroduction.
TEST(ReceptorTest, StatsRacesIngestionThread) {
  Basket basket("s", TsI64Schema(), 0);
  Receptor::Options opts;
  opts.rows_per_sec = 50000;
  opts.batch_rows = 16;
  Receptor r("r", &basket, CountingGen(2000), opts);
  r.Start();
  uint64_t last_rows = 0;
  while (!r.Stats().finished) {
    const ReceptorStats st = r.Stats();
    EXPECT_GE(st.rows, last_rows);
    EXPECT_GE(st.running_micros, 0);
    last_rows = st.rows;
  }
  r.WaitFinished();
  EXPECT_EQ(r.Stats().rows, 2000u);
}

TEST(ReceptorTest, RateControlApproximatesTarget) {
  Basket basket("s", TsI64Schema(), 0);
  Receptor::Options opts;
  opts.rows_per_sec = 20000;
  opts.batch_rows = 100;
  Receptor r("r", &basket, CountingGen(4000), opts);
  const Micros start = SteadyMicros();
  r.Start();
  r.WaitFinished();
  const double secs =
      static_cast<double>(SteadyMicros() - start) / kMicrosPerSecond;
  // 4000 rows at 20k/s should take ~0.2 s; the upper bound is generous so
  // sanitizer builds under parallel ctest load stay comfortably inside it.
  EXPECT_GT(secs, 0.1);
  EXPECT_LT(secs, 2.0);
}

TEST(ReceptorTest, PauseStopsIngestion) {
  Basket basket("s", TsI64Schema(), 0);
  Receptor::Options opts;
  opts.rows_per_sec = 5000;
  opts.batch_rows = 10;
  Receptor r("r", &basket, CountingGen(1000000), opts);
  r.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  // Pause() is synchronous: once it returns, nothing more is appended.
  r.Pause();
  const uint64_t at_pause = basket.HighSeq();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(basket.HighSeq(), at_pause);
  r.Resume();
  const Micros deadline = SteadyMicros() + 5 * kMicrosPerSecond;
  while (basket.HighSeq() <= at_pause && SteadyMicros() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  r.Stop();
  EXPECT_GT(basket.HighSeq(), at_pause);
}

TEST(ReceptorTest, CsvSourceParsesAndCoerces) {
  const char* path = "/tmp/dc_receptor_test.csv";
  {
    std::ofstream f(path);
    f << "100,1\n200,2\n\nbadline\n300,3\n";
  }
  Schema schema = TsI64Schema();
  auto gen = CsvRowGen(path, schema);
  ASSERT_TRUE(gen.ok());
  Basket basket("s", schema, 0);
  Receptor r("r", &basket, *gen, Receptor::Options{});
  r.Start();
  r.WaitFinished();
  EXPECT_EQ(basket.HighSeq(), 3u);  // blank + malformed lines skipped
  EXPECT_EQ(basket.Read(0).cols[0]->I64Data()[2], 300);
  std::remove(path);
  EXPECT_FALSE(CsvRowGen("/nonexistent/x.csv", schema).ok());
}

TEST(EmitterTest, PreservesEmissionBoundaries) {
  auto basket = std::make_shared<Basket>("out", TsI64Schema(), SIZE_MAX);
  ResultCollector collector;
  Emitter emitter("e", basket, {"ts", "v"}, collector.AsSink());
  // Three "emissions" of different sizes.
  DC_CHECK_OK(basket->Append({Bat::MakeTs({1, 2}), Bat::MakeI64({1, 2})}));
  DC_CHECK_OK(basket->Append({Bat::MakeTs({3}), Bat::MakeI64({3})}));
  DC_CHECK_OK(
      basket->Append({Bat::MakeTs({4, 5, 6}), Bat::MakeI64({4, 5, 6})}));
  EXPECT_EQ(emitter.Drain(), 3);
  auto emissions = collector.TakeAll();
  ASSERT_EQ(emissions.size(), 3u);
  EXPECT_EQ(emissions[0].NumRows(), 2u);
  EXPECT_EQ(emissions[1].NumRows(), 1u);
  EXPECT_EQ(emissions[2].NumRows(), 3u);
  EXPECT_EQ(emissions[2].names[1], "v");
  // Delivered tuples are consumed from the output basket.
  EXPECT_EQ(basket->Stats().resident_rows, 0u);
  EXPECT_EQ(emitter.Stats().emissions, 3u);
  EXPECT_EQ(emitter.Stats().rows, 6u);
}

TEST(EmitterTest, ThreadedDeliveryOnAppend) {
  auto basket = std::make_shared<Basket>("out", TsI64Schema(), SIZE_MAX);
  ResultCollector collector;
  Emitter emitter("e", basket, {"ts", "v"}, collector.AsSink());
  emitter.Start();
  for (int i = 0; i < 10; ++i) {
    DC_CHECK_OK(basket->Append({Bat::MakeTs({i}), Bat::MakeI64({i})}));
  }
  const Micros deadline = SteadyMicros() + 5 * kMicrosPerSecond;
  while (collector.EmissionCount() < 10 && SteadyMicros() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  emitter.Stop();
  EXPECT_EQ(collector.EmissionCount(), 10u);
}

TEST(EmitterTest, DeliversZeroRowEmissions) {
  auto basket = std::make_shared<Basket>("out", TsI64Schema(), SIZE_MAX);
  ResultCollector collector;
  Emitter emitter("e", basket, {"ts", "v"}, collector.AsSink());
  DC_CHECK_OK(basket->Append({Bat::MakeTs({1}), Bat::MakeI64({1})}));
  DC_CHECK_OK(basket->Append(
      {Bat::MakeEmpty(TypeId::kTs), Bat::MakeEmpty(TypeId::kI64)}));
  DC_CHECK_OK(basket->Append({Bat::MakeTs({2}), Bat::MakeI64({2})}));
  EXPECT_EQ(emitter.Drain(), 3);
  auto emissions = collector.TakeAll();
  ASSERT_EQ(emissions.size(), 3u);
  EXPECT_EQ(emissions[0].NumRows(), 1u);
  EXPECT_EQ(emissions[1].NumRows(), 0u);  // empty emission, schema intact
  ASSERT_EQ(emissions[1].cols.size(), 2u);
  EXPECT_EQ(emissions[1].cols[1]->type(), TypeId::kI64);
  EXPECT_EQ(emissions[2].NumRows(), 1u);
  EXPECT_EQ(emitter.Stats().emissions, 3u);
  EXPECT_EQ(emitter.Stats().empty_emissions, 1u);
  EXPECT_EQ(emitter.Stats().rows, 2u);
  // Draining again delivers nothing: the empty boundary is not replayed.
  EXPECT_EQ(emitter.Drain(), 0);
}

TEST(EmitterTest, DrainOnEmptyBasketIsNoop) {
  auto basket = std::make_shared<Basket>("out", TsI64Schema(), SIZE_MAX);
  ResultCollector collector;
  Emitter emitter("e", basket, {"ts", "v"}, collector.AsSink());
  EXPECT_EQ(emitter.Drain(), 0);
  EXPECT_EQ(collector.EmissionCount(), 0u);
}

}  // namespace
}  // namespace dc
