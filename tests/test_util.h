// Shared gtest harness for the DataCell suites.
//
// Provides the pieces every engine-facing suite needs:
//  * SyncOptions()/Threaded(): EngineOptions for a deterministic threadless
//    engine (driven by Pump()) or a threaded one (driven by WaitIdle()).
//  * SyncEngineTest: fixture owning a synchronous engine plus must-succeed
//    helpers (Exec / Push / PushPump / Seal / Submit / Take).
//  * EventClock: manual event-time source handing out monotone timestamps.
//  * RowStrings / EmissionStrings / ColumnSetMatches: golden comparators
//    for emission sequences and ColumnSet contents.

#ifndef DATACELL_TESTS_TEST_UTIL_H_
#define DATACELL_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "exec/executor.h"
#include "plan/binder.h"
#include "plan/compiler.h"
#include "plan/optimizer.h"
#include "sql/parser.h"
#include "util/clock.h"

namespace dc {
namespace testutil {

/// Synchronous mode: no threads anywhere; the test drives execution with
/// Pump() so factory firings interleave deterministically.
inline EngineOptions SyncOptions() {
  EngineOptions o;
  o.scheduler_workers = 0;
  return o;
}

/// Threaded mode for concurrency suites; drive with WaitIdle().
inline EngineOptions Threaded(int workers = 2) {
  EngineOptions o;
  o.scheduler_workers = workers;
  return o;
}

/// ContinuousOptions with just the mode (buffered results, default name).
inline Engine::ContinuousOptions WithMode(ExecMode mode) {
  Engine::ContinuousOptions o;
  o.mode = mode;
  return o;
}

/// Schema (ts timestamp, v int) — the minimal event shape the basket/
/// receptor/factory unit suites feed through the pipeline.
inline Schema TsI64Schema() {
  Schema s;
  EXPECT_TRUE(s.AddColumn("ts", TypeId::kTs).ok());
  EXPECT_TRUE(s.AddColumn("v", TypeId::kI64).ok());
  return s;
}

/// Compiles a SELECT through the full parse→bind→optimize→compile stack,
/// recording a gtest failure (and returning null) on any stage error.
inline std::shared_ptr<exec::QueryExecutor> CompileQuery(
    std::string_view sql, const Catalog& catalog) {
  auto stmt = sql::ParseStatement(sql);
  EXPECT_TRUE(stmt.ok()) << stmt.status().ToString() << "\nsql: " << sql;
  if (!stmt.ok()) return nullptr;
  auto bound = plan::Bind(std::get<sql::SelectStmt>(*stmt), catalog);
  EXPECT_TRUE(bound.ok()) << bound.status().ToString() << "\nsql: " << sql;
  if (!bound.ok()) return nullptr;
  plan::Optimize(&*bound);
  auto cq = plan::Compile(std::move(*bound));
  EXPECT_TRUE(cq.ok()) << cq.status().ToString() << "\nsql: " << sql;
  if (!cq.ok()) return nullptr;
  return std::make_shared<exec::QueryExecutor>(std::move(*cq));
}

/// Manual event-time source: hands out monotone Value::Ts timestamps for
/// feeding streams; the test advances time explicitly.
class EventClock {
 public:
  explicit EventClock(Micros start = 0) : clock_(start) {}

  Micros Now() const { return clock_.Now(); }
  Value Ts() const { return Value::Ts(clock_.Now()); }

  void Advance(Micros delta) { clock_.Advance(delta); }
  void AdvanceMillis(int64_t ms) { clock_.Advance(ms * kMicrosPerMilli); }
  void AdvanceSeconds(int64_t s) { clock_.Advance(s * kMicrosPerSecond); }
  void Set(Micros t) { clock_.Set(t); }

 private:
  ManualClock clock_;
};

/// All rows across all emissions as "v1|v2|...|" strings (order-sensitive).
inline std::vector<std::string> RowStrings(
    const std::vector<ColumnSet>& emissions) {
  std::vector<std::string> out;
  for (const ColumnSet& e : emissions) {
    for (uint64_t r = 0; r < e.NumRows(); ++r) {
      std::string row;
      for (const Value& v : e.Row(r)) row += v.ToString() + "|";
      out.push_back(row);
    }
  }
  return out;
}

/// Each emission rendered as a full (untruncated) ASCII table — the golden
/// form for comparing whole emission sequences across execution modes.
inline std::vector<std::string> EmissionStrings(
    const std::vector<ColumnSet>& emissions) {
  std::vector<std::string> out;
  out.reserve(emissions.size());
  for (const ColumnSet& e : emissions) out.push_back(e.ToString(1 << 20));
  return out;
}

/// Golden comparator: cell-by-cell match of a ColumnSet against expected
/// rows (each cell in its Value::ToString() rendering). Produces a readable
/// diff naming the first mismatching cell.
inline ::testing::AssertionResult ColumnSetMatches(
    const ColumnSet& got, const std::vector<std::vector<std::string>>& want) {
  if (got.NumRows() != want.size()) {
    return ::testing::AssertionFailure()
           << "row count " << got.NumRows() << " != expected " << want.size()
           << "\n"
           << got.ToString(1 << 20);
  }
  for (uint64_t r = 0; r < want.size(); ++r) {
    const std::vector<Value> row = got.Row(r);
    if (row.size() != want[r].size()) {
      return ::testing::AssertionFailure()
             << "row " << r << ": column count " << row.size()
             << " != expected " << want[r].size();
    }
    for (size_t c = 0; c < row.size(); ++c) {
      if (row[c].ToString() != want[r][c]) {
        return ::testing::AssertionFailure()
               << "cell (" << r << "," << c << "): got '" << row[c].ToString()
               << "', expected '" << want[r][c] << "'\n"
               << got.ToString(1 << 20);
      }
    }
  }
  return ::testing::AssertionSuccess();
}

/// Fixture owning a deterministic (synchronous) engine. All helpers record
/// a gtest failure on error, so tests read as straight-line scripts:
///
///   Exec("CREATE STREAM s (v int)");
///   const int q = Submit("SELECT v FROM s", ExecMode::kFullReeval);
///   PushPump("s", {Value::I64(1)});
///   auto rows = RowStrings(Take(q));
class SyncEngineTest : public ::testing::Test {
 protected:
  SyncEngineTest() : engine_(SyncOptions()) {}

  /// Runs DDL/DML (or a ';' script); fails the test on error.
  void Exec(std::string_view sql) {
    const Status s = engine_.Execute(sql);
    ASSERT_TRUE(s.ok()) << s.ToString() << "\nsql: " << sql;
  }

  /// Appends one row; no pump.
  void Push(std::string_view stream, const std::vector<Value>& row) {
    const Status s = engine_.PushRow(stream, row);
    ASSERT_TRUE(s.ok()) << s.ToString();
  }

  /// Appends one row and pumps, so windows fire exactly as time advances.
  void PushPump(std::string_view stream, const std::vector<Value>& row) {
    Push(stream, row);
    engine_.Pump();
  }

  /// Declares end-of-stream and pumps the flushed windows.
  void Seal(std::string_view stream) {
    const Status s = engine_.SealStream(stream);
    ASSERT_TRUE(s.ok()) << s.ToString();
    engine_.Pump();
  }

  /// Registers a continuous query; returns its id (-1 on failure, which is
  /// recorded as a test failure).
  int Submit(std::string_view sql, ExecMode mode = ExecMode::kIncremental) {
    auto r = engine_.SubmitContinuous(sql, WithMode(mode));
    EXPECT_TRUE(r.ok()) << r.status().ToString() << "\nsql: " << sql;
    return r.ok() ? *r : -1;
  }

  /// Buffered emissions of `query_id` (empty on error, recorded).
  std::vector<ColumnSet> Take(int query_id) {
    auto r = engine_.TakeResults(query_id);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? std::move(*r) : std::vector<ColumnSet>{};
  }

  /// One-time query that must succeed.
  ColumnSet MustQuery(std::string_view sql) {
    auto r = engine_.Query(sql);
    EXPECT_TRUE(r.ok()) << r.status().ToString() << "\nsql: " << sql;
    return r.ok() ? std::move(*r) : ColumnSet{};
  }

  Engine engine_;
};

}  // namespace testutil
}  // namespace dc

#endif  // DATACELL_TESTS_TEST_UTIL_H_
