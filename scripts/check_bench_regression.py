#!/usr/bin/env python3
"""Bench-regression guard over the BENCH_*.json artifacts.

Default mode (BENCH_incremental.json): fails (exit 1) when the E2b
stream-stream join sweep no longer shows the incremental win the indexed
delta-join path is supposed to deliver: the speedup at --n-bw (default 8)
must be >= --min-speedup (default 2.0).

--multiquery mode (BENCH_multiquery.json): fails when the sharing
registry no longer collapses the shared-prefix family (docs/SHARING.md):
at N standing queries sharing a fragment prefix, the shared run must keep
one basket reader and do O(1) partial builds per slide, i.e.
build_ratio (unshared builds / shared builds) >= N / 2, and both runs
must produce the same emission count.

--linear-road mode (BENCH_linear_road.json): fails when the p99
notification response time measured on the engine's ingest->delivery
latency path (docs/OBSERVABILITY.md) exceeds --max-p99-ms (default: the
artifact's own scaled LRB deadline, 250 ms at 20x replay), or when any
notification missed the deadline.

--wal mode (BENCH_wal.json): fails when WAL logging without fsync costs
more than max(1.6x the durability-off wall time, off + 150 ms absolute
slack) — the WAL rides the batch-ordinal log, one framed append per
batch, so anything beyond that is a regression on the ingest hot path.
fsync=interval is reported but not gated (its cost is the disk's, not
the engine's).

Non-fatal diagnostics: the join speedup curve is expected to be
monotonically increasing in n_bw; inversions are printed as warnings so
noisy smoke timings do not flake CI, while the headline points stay hard
gates.

Usage: check_bench_regression.py BENCH_incremental.json [--n-bw N]
       [--min-speedup X]
       check_bench_regression.py BENCH_multiquery.json --multiquery
       check_bench_regression.py BENCH_linear_road.json --linear-road
       [--max-p99-ms X]
       check_bench_regression.py BENCH_wal.json --wal
       [--max-wal-ratio X] [--wal-slack-ms X]
"""

import argparse
import json
import sys


def check_join(bench, args) -> int:
    sweep = [p for p in bench.get("sweep", [])
             if p.get("scenario") == args.scenario]
    if not sweep:
        print(f"FAIL: no '{args.scenario}' sweep points in {args.json_path}")
        return 1

    sweep.sort(key=lambda p: p["n_bw"])
    print(f"{args.scenario} sweep ({args.json_path}):")
    for p in sweep:
        print(f"  n_bw={p['n_bw']:<3} speedup={p['speedup']:.3f}x")

    prev = None
    for p in sweep:
        if prev is not None and p["speedup"] < prev["speedup"]:
            print(f"WARN: speedup not monotone: n_bw={p['n_bw']} "
                  f"({p['speedup']:.3f}x) < n_bw={prev['n_bw']} "
                  f"({prev['speedup']:.3f}x)")
        prev = p

    gate = [p for p in sweep if p["n_bw"] == args.n_bw]
    if not gate:
        print(f"FAIL: no {args.scenario} sweep point at n_bw={args.n_bw}")
        return 1
    speedup = gate[0]["speedup"]
    if speedup < args.min_speedup:
        print(f"FAIL: {args.scenario} speedup at n_bw={args.n_bw} is "
              f"{speedup:.3f}x, below the {args.min_speedup:.1f}x floor")
        return 1
    print(f"OK: {args.scenario} speedup at n_bw={args.n_bw} is "
          f"{speedup:.3f}x (floor {args.min_speedup:.1f}x)")
    return 0


def check_multiquery(bench, args) -> int:
    try:
        queries = bench["queries"]
        shared = bench["shared"]
        unshared = bench["unshared"]
        ratio = bench["build_ratio"]
    except KeyError as e:
        print(f"FAIL: {args.json_path} is missing key {e}")
        return 1

    print(f"multiquery sharing ({args.json_path}): {queries} queries")
    print(f"  shared:   builds={shared['partial_builds']} "
          f"readers={shared['stream_readers']} "
          f"nodes={shared['shared_nodes']} wall={shared['wall_ms']:.1f}ms")
    print(f"  unshared: builds={unshared['partial_builds']} "
          f"readers={unshared['stream_readers']} "
          f"wall={unshared['wall_ms']:.1f}ms")

    failed = False
    # One receptor fan-out for the whole family: the shared node owns the
    # only basket reader regardless of query count.
    if shared["stream_readers"] != 1:
        print(f"FAIL: shared run holds {shared['stream_readers']} basket "
              f"readers for {queries} shared-prefix queries, expected 1")
        failed = True
    if shared["shared_nodes"] < 1:
        print("FAIL: shared run registered no shared window node")
        failed = True
    # O(1) builds per slide: the unshared run builds each basic-window
    # partial once per query, the shared run once total — so the ratio
    # tracks the query count. Half of N leaves slack for boundary windows.
    floor = queries / 2
    if ratio < floor:
        print(f"FAIL: build ratio {ratio:.2f}x is below the {floor:.0f}x "
              f"floor at {queries} queries — partial builds are no longer "
              f"O(1) per slide")
        failed = True
    if shared["emissions"] != unshared["emissions"]:
        print(f"FAIL: emission counts diverge (shared "
              f"{shared['emissions']} vs unshared {unshared['emissions']})")
        failed = True
    if failed:
        return 1
    print(f"OK: build ratio {ratio:.2f}x (floor {floor:.0f}x), "
          f"1 reader, {shared['shared_nodes']} node(s)")
    return 0


def check_linear_road(bench, args) -> int:
    try:
        latency = bench["latency_ms"]
        deadline = bench["deadline_ms"]
        misses = bench["deadline_misses"]
        emissions = bench["emissions"]
    except KeyError as e:
        print(f"FAIL: {args.json_path} is missing key {e}")
        return 1

    budget = args.max_p99_ms if args.max_p99_ms is not None else deadline
    print(f"linear road ({args.json_path}): xways={bench.get('xways')} "
          f"rows={bench.get('rows')} emissions={emissions}")
    print(f"  p50={latency['p50']:.3f}ms p99={latency['p99']:.3f}ms "
          f"max={latency['max']:.3f}ms misses={misses} "
          f"(deadline {deadline:.0f}ms)")

    failed = False
    if emissions == 0:
        print("FAIL: no notifications were delivered — the latency path "
              "recorded nothing")
        failed = True
    if latency["p99"] > budget:
        print(f"FAIL: p99 notification latency {latency['p99']:.3f}ms "
              f"exceeds the {budget:.0f}ms budget")
        failed = True
    if misses > 0:
        print(f"FAIL: {misses} notification(s) missed the scaled LRB "
              f"deadline")
        failed = True
    if failed:
        return 1
    print(f"OK: p99 {latency['p99']:.3f}ms within {budget:.0f}ms, "
          f"0 deadline misses over {emissions} notifications")
    return 0


def check_wal(bench, args) -> int:
    try:
        off = bench["off"]
        never = bench["fsync_never"]
        interval = bench["fsync_interval"]
    except KeyError as e:
        print(f"FAIL: {args.json_path} is missing key {e}")
        return 1

    print(f"wal overhead ({args.json_path}): {bench.get('rows')} rows, "
          f"best of {bench.get('reps')} interleaved reps")
    for key, run in (("off", off), ("fsync_never", never),
                     ("fsync_interval", interval)):
        print(f"  {key:>14}: wall={run['wall_ms']:.1f}ms "
              f"rows/s={run['rows_per_s']:.0f} "
              f"records={run['wal_records']} syncs={run['wal_syncs']}")

    failed = False
    if never["wal_records"] == 0:
        print("FAIL: fsync_never logged no WAL records — the bench "
              "measured nothing")
        failed = True
    # One framed append per batch: logging without fsync must stay within
    # the ratio gate, with absolute slack so tiny smoke walls can't flake.
    budget = max(args.max_wal_ratio * off["wall_ms"],
                 off["wall_ms"] + args.wal_slack_ms)
    if never["wall_ms"] > budget:
        print(f"FAIL: fsync_never wall {never['wall_ms']:.1f}ms exceeds "
              f"the budget {budget:.1f}ms "
              f"(max({args.max_wal_ratio:.1f}x off, off + "
              f"{args.wal_slack_ms:.0f}ms))")
        failed = True
    if failed:
        return 1
    ratio = never["wall_ms"] / off["wall_ms"] if off["wall_ms"] > 0 else 0.0
    print(f"OK: fsync_never {ratio:.2f}x of durability-off "
          f"(budget max({args.max_wal_ratio:.1f}x, +{args.wal_slack_ms:.0f}ms)); "
          f"fsync_interval {interval['wall_ms']:.1f}ms reported ungated")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("json_path", help="path to a BENCH_*.json artifact")
    parser.add_argument("--multiquery", action="store_true",
                        help="gate BENCH_multiquery.json sharing results")
    parser.add_argument("--linear-road", action="store_true",
                        help="gate BENCH_linear_road.json response times")
    parser.add_argument("--wal", action="store_true",
                        help="gate BENCH_wal.json durability overhead")
    parser.add_argument("--max-wal-ratio", type=float, default=1.6,
                        help="fsync_never wall budget as a multiple of "
                             "durability-off (default 1.6)")
    parser.add_argument("--wal-slack-ms", type=float, default=150.0,
                        help="absolute slack added to the --wal gate "
                             "(default 150)")
    parser.add_argument("--scenario", default="join")
    parser.add_argument("--n-bw", type=int, default=8)
    parser.add_argument("--min-speedup", type=float, default=2.0)
    parser.add_argument("--max-p99-ms", type=float, default=None,
                        help="p99 budget for --linear-road (default: the "
                             "artifact's deadline_ms)")
    args = parser.parse_args()

    try:
        with open(args.json_path, "r", encoding="utf-8") as f:
            bench = json.load(f)
    except (OSError, ValueError) as e:
        print(f"FAIL: cannot read {args.json_path}: {e}")
        return 1

    if args.multiquery:
        return check_multiquery(bench, args)
    if args.linear_road:
        return check_linear_road(bench, args)
    if args.wal:
        return check_wal(bench, args)
    return check_join(bench, args)


if __name__ == "__main__":
    sys.exit(main())
