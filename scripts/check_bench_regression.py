#!/usr/bin/env python3
"""Bench-regression guard over BENCH_incremental.json.

Fails (exit 1) when the E2b stream-stream join sweep no longer shows the
incremental win the indexed delta-join path is supposed to deliver:
the speedup at --n-bw (default 8) must be >= --min-speedup (default 2.0).

Non-fatal diagnostics: the join speedup curve is expected to be
monotonically increasing in n_bw; inversions are printed as warnings so
noisy smoke timings do not flake CI, while the headline point stays a
hard gate.

Usage: check_bench_regression.py BENCH_incremental.json [--n-bw N]
       [--min-speedup X]
"""

import argparse
import json
import sys


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("json_path", help="path to BENCH_incremental.json")
    parser.add_argument("--scenario", default="join")
    parser.add_argument("--n-bw", type=int, default=8)
    parser.add_argument("--min-speedup", type=float, default=2.0)
    args = parser.parse_args()

    try:
        with open(args.json_path, "r", encoding="utf-8") as f:
            bench = json.load(f)
    except (OSError, ValueError) as e:
        print(f"FAIL: cannot read {args.json_path}: {e}")
        return 1

    sweep = [p for p in bench.get("sweep", [])
             if p.get("scenario") == args.scenario]
    if not sweep:
        print(f"FAIL: no '{args.scenario}' sweep points in {args.json_path}")
        return 1

    sweep.sort(key=lambda p: p["n_bw"])
    print(f"{args.scenario} sweep ({args.json_path}):")
    for p in sweep:
        print(f"  n_bw={p['n_bw']:<3} speedup={p['speedup']:.3f}x")

    prev = None
    for p in sweep:
        if prev is not None and p["speedup"] < prev["speedup"]:
            print(f"WARN: speedup not monotone: n_bw={p['n_bw']} "
                  f"({p['speedup']:.3f}x) < n_bw={prev['n_bw']} "
                  f"({prev['speedup']:.3f}x)")
        prev = p

    gate = [p for p in sweep if p["n_bw"] == args.n_bw]
    if not gate:
        print(f"FAIL: no {args.scenario} sweep point at n_bw={args.n_bw}")
        return 1
    speedup = gate[0]["speedup"]
    if speedup < args.min_speedup:
        print(f"FAIL: {args.scenario} speedup at n_bw={args.n_bw} is "
              f"{speedup:.3f}x, below the {args.min_speedup:.1f}x floor")
        return 1
    print(f"OK: {args.scenario} speedup at n_bw={args.n_bw} is "
          f"{speedup:.3f}x (floor {args.min_speedup:.1f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
