#!/usr/bin/env python3
"""Markdown link check for README.md and docs/*.md.

Validates that every relative link target exists on disk and that every
intra-document or cross-document `#anchor` resolves to a heading. External
links (http/https/mailto) are recorded but not fetched — CI must stay
hermetic. Exits non-zero listing every broken link.

Usage: check_markdown_links.py [repo_root]
"""

import os
import re
import sys

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)


def anchor_of(heading: str) -> str:
    """GitHub-style anchor: lowercase, strip punctuation, dashes for spaces."""
    heading = re.sub(r"[`*_]", "", heading.strip())
    heading = re.sub(r"[^\w\- ]", "", heading.lower())
    return heading.replace(" ", "-")


def md_files(root: str):
    for name in sorted(os.listdir(root)):
        if name.endswith(".md"):
            yield os.path.join(root, name)
    docs = os.path.join(root, "docs")
    if os.path.isdir(docs):
        for name in sorted(os.listdir(docs)):
            if name.endswith(".md"):
                yield os.path.join(docs, name)


def headings(path: str):
    with open(path, encoding="utf-8") as f:
        text = CODE_FENCE_RE.sub("", f.read())
    return {anchor_of(m.group(1)) for m in HEADING_RE.finditer(text)}


def main() -> int:
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else ".")
    files = list(md_files(root))
    anchors = {path: headings(path) for path in files}
    broken = []
    external = 0

    for path in files:
        with open(path, encoding="utf-8") as f:
            text = CODE_FENCE_RE.sub("", f.read())
        rel = os.path.relpath(path, root)
        for m in LINK_RE.finditer(text):
            target = m.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                external += 1
                continue
            base, _, fragment = target.partition("#")
            if base:
                dest = os.path.normpath(
                    os.path.join(os.path.dirname(path), base))
                if not os.path.exists(dest):
                    broken.append(f"{rel}: missing target '{target}'")
                    continue
            else:
                dest = path
            if fragment:
                known = anchors.get(dest)
                if known is not None and fragment.lower() not in known:
                    broken.append(f"{rel}: dead anchor '{target}'")

    if broken:
        print(f"{len(broken)} broken markdown link(s):")
        for b in broken:
            print(f"  {b}")
        return 1
    print(f"{len(files)} files OK "
          f"({external} external links not fetched)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
