#!/usr/bin/env python3
"""Run clang-tidy over the DataCell sources.

Drives clang-tidy (config: .clang-tidy at the repo root) against a build
directory's compile_commands.json (CMake exports it by default here —
CMAKE_EXPORT_COMPILE_COMMANDS is ON in CMakeLists.txt). Paths may be
narrowed to a subtree; findings print in the familiar compiler format.

Exit status: 0 clean, 1 findings, 2 environment problems (no clang-tidy,
no compile database). Pass --allow-missing to exit 0 when clang-tidy is
not installed, so developer machines without LLVM are not broken while CI
— which installs it — still enforces the gate.

Usage:
  run_clang_tidy.py [--build-dir build] [--jobs N] [--fix]
                    [--allow-missing] [--blocking] [paths...]
  paths default to src/ (tests/bench/examples are opt-in).

--blocking runs the curated blocking set (BLOCKING_PATHS below) that CI's
lint job enforces with a hard failure; other subtrees stay advisory until
they are cleaned up and promoted into the set.
"""

import argparse
import json
import multiprocessing
import os
import shutil
import subprocess
import sys
from concurrent.futures import ThreadPoolExecutor

SOURCE_EXTS = (".cc", ".cpp")

# Subtrees clang-tidy must pass on — CI's lint job fails the build on any
# finding here (--blocking). Promote a subtree once it is warning-clean.
BLOCKING_PATHS = ("src/core", "src/exec", "src/monitor")


def repo_root() -> str:
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def compile_database_files(build_dir: str):
    """Absolute source paths listed in the compile database."""
    db_path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.exists(db_path):
        return None
    with open(db_path, encoding="utf-8") as f:
        db = json.load(f)
    files = set()
    for entry in db:
        path = entry["file"]
        if not os.path.isabs(path):
            path = os.path.join(entry["directory"], path)
        files.add(os.path.normpath(path))
    return files


def select_sources(paths, db_files):
    """Compilable sources under the requested paths, per the database."""
    selected = []
    for path in paths:
        path = os.path.abspath(path)
        if os.path.isfile(path):
            candidates = [path]
        else:
            candidates = [
                os.path.join(dirpath, name)
                for dirpath, _, names in os.walk(path)
                for name in names
                if name.endswith(SOURCE_EXTS)
            ]
        for c in sorted(candidates):
            if os.path.normpath(c) in db_files:
                selected.append(c)
    return selected


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default=os.path.join(repo_root(), "build"))
    parser.add_argument("--jobs", type=int,
                        default=multiprocessing.cpu_count())
    parser.add_argument("--fix", action="store_true",
                        help="apply clang-tidy's suggested fixes in place")
    parser.add_argument("--allow-missing", action="store_true",
                        help="exit 0 when clang-tidy is not installed")
    parser.add_argument("--blocking", action="store_true",
                        help="check the curated blocking set "
                             f"({', '.join(BLOCKING_PATHS)})")
    parser.add_argument("paths", nargs="*",
                        default=[os.path.join(repo_root(), "src")])
    args = parser.parse_args()
    if args.blocking:
        if args.paths != [os.path.join(repo_root(), "src")]:
            print("run_clang_tidy.py: --blocking takes no paths",
                  file=sys.stderr)
            return 2
        args.paths = [os.path.join(repo_root(), p) for p in BLOCKING_PATHS]

    tidy = shutil.which("clang-tidy")
    if tidy is None:
        print("run_clang_tidy.py: clang-tidy not found in PATH",
              file=sys.stderr)
        return 0 if args.allow_missing else 2

    db_files = compile_database_files(args.build_dir)
    if db_files is None:
        print(
            f"run_clang_tidy.py: no compile_commands.json in "
            f"{args.build_dir} — configure first (cmake -B {args.build_dir})",
            file=sys.stderr)
        return 2

    sources = select_sources(args.paths, db_files)
    if not sources:
        print("run_clang_tidy.py: no sources matched", file=sys.stderr)
        return 2

    cmd_base = [tidy, "-p", args.build_dir, "--quiet"]
    if args.fix:
        cmd_base.append("--fix")

    failed = []

    def run_one(source: str):
        proc = subprocess.run(cmd_base + [source], capture_output=True,
                              text=True)
        return source, proc.returncode, proc.stdout, proc.stderr

    # --fix must run serially: parallel fixers race on shared headers.
    workers = 1 if args.fix else max(1, args.jobs)
    with ThreadPoolExecutor(max_workers=workers) as pool:
        for source, code, out, err in pool.map(run_one, sources):
            rel = os.path.relpath(source, repo_root())
            if out.strip() or code != 0:
                print(f"--- {rel}")
                if out.strip():
                    print(out.strip())
                if code != 0:
                    failed.append(rel)
                    if err.strip():
                        print(err.strip(), file=sys.stderr)

    print(f"run_clang_tidy.py: checked {len(sources)} files, "
          f"{len(failed)} with errors")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
