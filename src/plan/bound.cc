#include "plan/bound.h"

#include "util/string_util.h"

namespace dc::plan {

BExprPtr BLiteral(Value v) {
  auto e = std::make_shared<BExpr>();
  e->kind = BKind::kLiteral;
  e->type = v.type();
  e->literal = std::move(v);
  return e;
}

BExprPtr BColRef(int rel, int col, TypeId type) {
  auto e = std::make_shared<BExpr>();
  e->kind = BKind::kColRef;
  e->rel = rel;
  e->col = col;
  e->type = type;
  return e;
}

BExprPtr BKeyRef(int index, TypeId type) {
  auto e = std::make_shared<BExpr>();
  e->kind = BKind::kKeyRef;
  e->index = index;
  e->type = type;
  return e;
}

BExprPtr BAggRef(int index, TypeId type) {
  auto e = std::make_shared<BExpr>();
  e->kind = BKind::kAggRef;
  e->index = index;
  e->type = type;
  return e;
}

BExprPtr BArith(ArithOp op, BExprPtr l, BExprPtr r, TypeId type) {
  auto e = std::make_shared<BExpr>();
  e->kind = BKind::kArith;
  e->arith_op = op;
  e->type = type;
  e->children = {std::move(l), std::move(r)};
  return e;
}

BExprPtr BCmp(CmpOp op, BExprPtr l, BExprPtr r) {
  auto e = std::make_shared<BExpr>();
  e->kind = BKind::kCmp;
  e->cmp_op = op;
  e->type = TypeId::kBool;
  e->children = {std::move(l), std::move(r)};
  return e;
}

BExprPtr BLogical(BKind kind, BExprPtr l, BExprPtr r) {
  auto e = std::make_shared<BExpr>();
  e->kind = kind;
  e->type = TypeId::kBool;
  e->children = {std::move(l), std::move(r)};
  return e;
}

BExprPtr BNot(BExprPtr inner) {
  auto e = std::make_shared<BExpr>();
  e->kind = BKind::kNot;
  e->type = TypeId::kBool;
  e->children = {std::move(inner)};
  return e;
}

bool BExpr::Equals(const BExpr& other) const {
  if (kind != other.kind || type != other.type) return false;
  switch (kind) {
    case BKind::kLiteral:
      if (!(literal == other.literal)) return false;
      break;
    case BKind::kColRef:
      if (rel != other.rel || col != other.col) return false;
      break;
    case BKind::kKeyRef:
    case BKind::kAggRef:
      if (index != other.index) return false;
      break;
    case BKind::kArith:
      if (arith_op != other.arith_op) return false;
      break;
    case BKind::kCmp:
      if (cmp_op != other.cmp_op) return false;
      break;
    default:
      break;
  }
  if (children.size() != other.children.size()) return false;
  for (size_t i = 0; i < children.size(); ++i) {
    if (!children[i]->Equals(*other.children[i])) return false;
  }
  return true;
}

std::string BExpr::ToString() const {
  switch (kind) {
    case BKind::kLiteral:
      return literal.type() == TypeId::kStr
                 ? StrFormat("'%s'", literal.AsStr().c_str())
                 : literal.ToString();
    case BKind::kColRef:
      return StrFormat("r%d.c%d", rel, col);
    case BKind::kKeyRef:
      return StrFormat("key#%d", index);
    case BKind::kAggRef:
      return StrFormat("agg#%d", index);
    case BKind::kArith:
      return StrFormat("(%s %s %s)", children[0]->ToString().c_str(),
                       ArithOpName(arith_op), children[1]->ToString().c_str());
    case BKind::kCmp:
      return StrFormat("(%s %s %s)", children[0]->ToString().c_str(),
                       CmpOpName(cmp_op), children[1]->ToString().c_str());
    case BKind::kAnd:
      return StrFormat("(%s AND %s)", children[0]->ToString().c_str(),
                       children[1]->ToString().c_str());
    case BKind::kOr:
      return StrFormat("(%s OR %s)", children[0]->ToString().c_str(),
                       children[1]->ToString().c_str());
    case BKind::kNot:
      return StrFormat("(NOT %s)", children[0]->ToString().c_str());
  }
  return "?";
}

std::string WindowSpec::ToString() const {
  if (rows) {
    return StrFormat("[ROWS %lld SLIDE %lld]", static_cast<long long>(size),
                     static_cast<long long>(slide));
  }
  return StrFormat("[RANGE %s SLIDE %s]", FormatDuration(size).c_str(),
                   FormatDuration(slide).c_str());
}

std::string BoundAgg::ToString() const {
  return StrFormat("%s(%s)", ops::AggKindName(kind),
                   arg ? arg->ToString().c_str() : "*");
}

int BoundQuery::NumStreams() const {
  int n = 0;
  for (const auto& r : rels) n += r.is_stream ? 1 : 0;
  return n;
}

bool IncrementalEligible(const std::vector<const WindowSpec*>& windows) {
  bool any = false;
  for (const WindowSpec* w : windows) {
    if (w == nullptr) continue;
    any = true;
    if (w->size % w->slide != 0) return false;
  }
  return any;
}

}  // namespace dc::plan
