// Copyright 2026 The DataCell Authors.
//
// EXPLAIN: renders compiled plans. Shows the demo's headline transformation:
// the same query as a one-time DBMS plan, as a continuous (FULL
// re-evaluation) plan with basket binds, and as an incremental plan split
// into a per-basic-window fragment plus a merge step.

#ifndef DATACELL_PLAN_EXPLAIN_H_
#define DATACELL_PLAN_EXPLAIN_H_

#include <string>

#include "plan/compiler.h"
#include "plan/optimizer.h"

namespace dc::plan {

enum class PlanMode { kOneTime, kContinuousFull, kContinuousIncremental };

/// How this plan would share work with the engine's standing queries
/// (filled by Engine::ExplainSql from the sharing registry,
/// docs/SHARING.md). Rendered as the "sharing:" section.
struct SharingNote {
  bool enabled = false;  // EngineOptions::enable_sharing
  /// Standing queries this plan would share a factory or shared window
  /// node with (0: it would run alone).
  int shared_with = 0;
  std::string detail;  // e.g. "factory-level dedup", "window node pkts#1"
  /// Merged ingest→delivery latency summary of standing queries with the
  /// same compiled identity ("" when none have delivered yet). Rendered
  /// as the "latency:" line.
  std::string latency;
};

/// Human-readable plan listing for `mode`. Pass the optimizer report to
/// include the applied-rewrites section; pass `sharing` to include the
/// continuous-plan sharing section.
std::string Explain(const CompiledQuery& cq, PlanMode mode,
                    const OptimizerReport* report = nullptr,
                    const SharingNote* sharing = nullptr);

}  // namespace dc::plan

#endif  // DATACELL_PLAN_EXPLAIN_H_
