// Copyright 2026 The DataCell Authors.
//
// EXPLAIN: renders compiled plans. Shows the demo's headline transformation:
// the same query as a one-time DBMS plan, as a continuous (FULL
// re-evaluation) plan with basket binds, and as an incremental plan split
// into a per-basic-window fragment plus a merge step.

#ifndef DATACELL_PLAN_EXPLAIN_H_
#define DATACELL_PLAN_EXPLAIN_H_

#include <string>

#include "plan/compiler.h"
#include "plan/optimizer.h"

namespace dc::plan {

enum class PlanMode { kOneTime, kContinuousFull, kContinuousIncremental };

/// Human-readable plan listing for `mode`. Pass the optimizer report to
/// include the applied-rewrites section.
std::string Explain(const CompiledQuery& cq, PlanMode mode,
                    const OptimizerReport* report = nullptr);

}  // namespace dc::plan

#endif  // DATACELL_PLAN_EXPLAIN_H_
