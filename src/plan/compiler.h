// Copyright 2026 The DataCell Authors.
//
// Compiler: BoundQuery -> CompiledQuery. A compiled query is structured as
// the stages DataCell's incremental mode needs (DESIGN.md §4.6):
//
//   prejoin[r]  per-relation CAL program: raw columns -> filtered compact
//               columns (selection chain + projection pruning). In
//               incremental mode this fragment runs once per basic window.
//   postjoin    CAL program over the compact relations: equi-join,
//               post-join filters, and evaluation of the fragment output
//               expressions (group keys + aggregate arguments, or the
//               projected output columns for non-aggregate queries).
//   finish      merge/finalization metadata executed by the engine: merge
//               partial aggregates, evaluate the select list over
//               keys/aggregates, HAVING, ORDER BY, LIMIT.
//
// One-time execution and FULL re-evaluation run prejoin+postjoin on the
// whole input and finish with a single partial; INCREMENTAL caches per-
// basic-window partials and merges them — both paths share all stage code,
// which is what guarantees FULL == INCREMENTAL results.

#ifndef DATACELL_PLAN_COMPILER_H_
#define DATACELL_PLAN_COMPILER_H_

#include <vector>

#include "plan/bound.h"
#include "plan/cal.h"
#include "util/result.h"

namespace dc::plan {

/// Finalization (merge-side) specification.
struct FinishSpec {
  bool is_aggregate = false;

  // Aggregate queries:
  std::vector<TypeId> key_types;
  std::vector<std::pair<ops::AggKind, TypeId>> agg_layout;
  std::vector<BExprPtr> select_exprs;               // finish-domain
  BExprPtr having;                                  // finish-domain or null
  std::vector<std::pair<BExprPtr, bool>> order_by;  // finish-domain

  // Non-aggregate queries: fragment outputs are the visible columns
  // followed by hidden sort columns.
  int num_visible = 0;
  std::vector<std::pair<int, bool>> sort_cols;  // fragment slot, ascending

  int64_t limit = -1;
  std::vector<std::string> out_names;
};

/// EXPLAIN-facing classification of one operator under incremental mode:
/// does it run per basic window / as a delta / as a cheap merge tail, or
/// does it force full recomputation of the window?
struct StageClass {
  std::string op;            // "prejoin r0", "join", "order_by", ...
  bool incremental = false;  // false: recompute over the full window
  std::string note;          // how it is incrementalized / why it is not
};

/// A fully compiled query, ready for the executor / factories.
struct CompiledQuery {
  BoundQuery bound;

  std::vector<cal::Program> prejoin;
  /// compact_cols[r][slot] = raw column index of prejoin output `slot`.
  std::vector<std::vector<int>> compact_cols;

  cal::Program postjoin;

  /// Delta variant of the postjoin stage, emitted for stream-stream
  /// equi-joins: the join instruction is datacell.delta_join (new pairs
  /// only; the interpreter reads each side's old/new split from
  /// StageInput::delta_old_rows), each input carries one extra
  /// basic-window-ordinal column at slot compact_cols[r].size(), and the
  /// two ordinal columns ride through the post-join filters as the last
  /// two outputs so the factory can bucket result rows by expiry.
  cal::Program delta_postjoin;
  bool has_delta_postjoin = false;

  /// Compact slot of the delta join key per side and the equality domain
  /// both keys meet in (ops::JoinKeyDomain) — the factory builds each
  /// side's rolling retained-side hash index over this column. Valid iff
  /// has_delta_postjoin.
  int delta_key_slots[2] = {-1, -1};
  TypeId delta_key_domain = TypeId::kI64;

  /// Delta pre-aggregation push-down: when the query tail is a scalar
  /// aggregate whose arguments are bare single-side columns (or
  /// COUNT(*)), with no GROUP BY and no post-join filters, each side can
  /// be pre-aggregated per join key per basic window and the delta join
  /// pairs groups instead of rows (AggState::ScaledMerge applies the
  /// product rule). Per-emission cost then scales with distinct keys, not
  /// join pairs.
  struct DeltaPreAgg {
    bool eligible = false;
    /// Per aggregate: the join side (0/1) its argument lives on, or -1
    /// for COUNT(*); and the compact slot of that argument on its side.
    std::vector<int> agg_side;
    std::vector<int> agg_slot;
  };
  DeltaPreAgg delta_pre_agg;

  /// Per-operator incremental-vs-recompute classification (EXPLAIN).
  std::vector<StageClass> classification;

  /// Incremental eligibility of the bound windows, via the shared rule
  /// plan::IncrementalEligible (the factory applies the same rule to its
  /// actual input windows — FactoryStats::fell_back_to_full). Rendered by
  /// EXPLAIN's classification.
  bool incremental_eligible = false;

  /// Aggregate fragment layout: postjoin outputs [0, num_keys) are group
  /// keys; agg_arg_slots[i] is the postjoin output carrying agg i's
  /// argument, or -1 for COUNT(*).
  int num_keys = 0;
  std::vector<int> agg_arg_slots;

  FinishSpec finish;

  /// Canonical fragment signatures for multi-query sharing (the engine's
  /// shared-node registry, docs/SHARING.md). `prefix_signature` covers
  /// everything that shapes the per-basic-window fragment — relations,
  /// filters, join, grouping, aggregates (and, for non-aggregate queries,
  /// the select list and sort exprs, which the fragment materializes) —
  /// but NOT window geometry (registered separately, so window
  /// subsumption can share partials across geometries) and NOT literal
  /// constants, which are rendered as `?` with their values collected in
  /// traversal order into `sig_params`. `finish_signature` covers the
  /// per-query merge tail (finish-domain select/HAVING/ORDER BY, LIMIT,
  /// output names). Two queries share work iff the relevant signatures
  /// AND their sig_params match — masking constants makes near-identical
  /// queries collide on the signature key so the registry can compare
  /// params cheaply.
  std::string prefix_signature;
  std::string finish_signature;
  std::vector<std::string> sig_params;
};

/// Compiles a bound query. Run the optimizer first (plan/optimizer.h).
Result<CompiledQuery> Compile(BoundQuery q);

}  // namespace dc::plan

#endif  // DATACELL_PLAN_COMPILER_H_
