// Copyright 2026 The DataCell Authors.
//
// Bound (resolved, type-checked) query representation: the output of the
// binder and the input of the optimizer/compiler.
//
// A bound query is held in canonical select-project-join-aggregate form:
// relations (1 or 2), per-relation filter conjuncts (predicate pushdown
// happens during classification), an optional equi-join, post-join filters,
// grouping keys, aggregate list, and finish-stage expressions (select list,
// HAVING, ORDER BY) over the key/aggregate columns.

#ifndef DATACELL_PLAN_BOUND_H_
#define DATACELL_PLAN_BOUND_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bat/ops_aggregate.h"
#include "bat/types.h"
#include "sql/ast.h"
#include "storage/schema.h"

namespace dc::plan {

struct BExpr;
using BExprPtr = std::shared_ptr<BExpr>;

/// Bound expression node kinds. Input-domain expressions use kColRef;
/// finish-domain expressions (select list / HAVING / ORDER BY of aggregate
/// queries) use kKeyRef / kAggRef instead.
enum class BKind {
  kLiteral,
  kColRef,   // input column: (rel, col)
  kKeyRef,   // group key column by index
  kAggRef,   // aggregate result column by index
  kArith,
  kCmp,
  kAnd,
  kOr,
  kNot,
};

/// Type-annotated bound expression.
struct BExpr {
  BKind kind;
  TypeId type = TypeId::kI64;

  Value literal;                     // kLiteral
  int rel = -1;                      // kColRef
  int col = -1;                      // kColRef
  int index = -1;                    // kKeyRef / kAggRef
  ArithOp arith_op = ArithOp::kAdd;  // kArith
  CmpOp cmp_op = CmpOp::kEq;         // kCmp
  std::vector<BExprPtr> children;

  /// Structural equality (used for GROUP BY matching and agg dedup).
  bool Equals(const BExpr& other) const;

  /// Rendering for plan dumps ("s.price", "sum#0", "key#1").
  std::string ToString() const;
};

BExprPtr BLiteral(Value v);
BExprPtr BColRef(int rel, int col, TypeId type);
BExprPtr BKeyRef(int index, TypeId type);
BExprPtr BAggRef(int index, TypeId type);
BExprPtr BArith(ArithOp op, BExprPtr l, BExprPtr r, TypeId type);
BExprPtr BCmp(CmpOp op, BExprPtr l, BExprPtr r);
BExprPtr BLogical(BKind kind, BExprPtr l, BExprPtr r);
BExprPtr BNot(BExprPtr e);

/// Window specification in engine form (units resolved).
struct WindowSpec {
  bool rows = false;
  int64_t size = 0;   // rows or µs
  int64_t slide = 0;  // rows or µs

  bool tumbling() const { return slide == size; }
  /// Number of basic windows a full window spans.
  int64_t NumBasicWindows() const { return (size + slide - 1) / slide; }
  std::string ToString() const;
};

/// The incremental-eligibility rule, shared by the compiler
/// (CompiledQuery::incremental_eligible, EXPLAIN's classification) and
/// the factory (FactoryStats::fell_back_to_full) so the two can never
/// disagree: at least one window present, and every window a whole
/// number of basic windows (slide divides size). Null entries mean
/// "no window on this input".
bool IncrementalEligible(const std::vector<const WindowSpec*>& windows);

/// One input relation of a bound query.
struct BoundRelation {
  std::string name;
  std::string alias;
  Schema schema;
  bool is_stream = false;
  size_t ts_column = SIZE_MAX;  // event-time column (streams)
  std::optional<WindowSpec> window;
};

/// One aggregate computed by the query.
struct BoundAgg {
  ops::AggKind kind = ops::AggKind::kCount;
  BExprPtr arg;               // input-domain; null for COUNT(*)
  TypeId arg_type = TypeId::kI64;
  TypeId out_type = TypeId::kI64;

  std::string ToString() const;
};

/// Equi-join key pair (both sides are input-domain column expressions).
struct JoinSpec {
  BExprPtr left;   // over relation 0
  BExprPtr right;  // over relation 1
};

/// Fully bound and classified query.
struct BoundQuery {
  std::vector<BoundRelation> rels;

  /// Per-relation filter conjuncts (pushed down).
  std::vector<std::vector<BExprPtr>> rel_filters;

  /// Equi-join (present iff rels.size() == 2).
  std::optional<JoinSpec> join;

  /// Conjuncts over both relations evaluated after the join.
  std::vector<BExprPtr> post_join_filters;

  /// GROUP BY keys (input-domain column refs).
  std::vector<BExprPtr> group_by;

  /// All aggregates (from select list, HAVING and ORDER BY), deduplicated.
  std::vector<BoundAgg> aggs;

  /// Select-list expressions. For aggregate queries these are
  /// finish-domain (kKeyRef/kAggRef); otherwise input-domain.
  std::vector<BExprPtr> select_exprs;
  std::vector<std::string> out_names;

  /// HAVING (finish-domain; aggregate queries only), or null.
  BExprPtr having;

  /// ORDER BY. For aggregate queries finish-domain; otherwise input-domain
  /// (the compiler materializes hidden sort columns).
  std::vector<std::pair<BExprPtr, bool>> order_by;  // (expr, ascending)

  int64_t limit = -1;

  bool is_aggregate = false;
  bool is_continuous = false;

  /// Index of the (single) windowed stream relation, or -1.
  int NumStreams() const;
};

}  // namespace dc::plan

#endif  // DATACELL_PLAN_BOUND_H_
