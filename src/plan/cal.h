// Copyright 2026 The DataCell Authors.
//
// CAL ("column algebra language"): the physical plan representation.
// A compiled query stage is a flat instruction program over virtual
// registers, mirroring MonetDB's MAL — each instruction is one bulk
// operator call that materializes its whole result. Register contents are
// columns (Bat), candidate lists, or join oid lists.
//
// EXPLAIN prints these programs; the continuous rewriter's output is a
// visibly different program (basket binds, window slices), reproducing the
// demo's "how query plans transform" pane.

#ifndef DATACELL_PLAN_CAL_H_
#define DATACELL_PLAN_CAL_H_

#include <string>
#include <vector>

#include "bat/types.h"

namespace dc::cal {

enum class OpCode {
  kBindCol,        // V := scan.col(rel, col)
  kBindCand,       // C := scan.candidates(rel)
  kSelectCmp,      // C' := algebra.select(V, op, lit ; C?)
  kSelectCmpCol,   // C' := algebra.select(Va, op, Vb ; C?)
  kSelectTrue,     // C' := algebra.select_true(Vbool ; C?)
  kCandAnd,        // C := algebra.intersect(Ca, Cb)
  kCandOr,         // C := algebra.union(Ca, Cb)
  kCandDiff,       // C := algebra.difference(Cdomain, Ca)
  kGather,         // V' := algebra.project(V ; C)
  kJoin,           // (OL, OR) := algebra.join(Vl, Vr)
  kDeltaJoin,      // (OL, OR) := datacell.delta_join(Vl, Vr) — new pairs only
  kFetch,          // V' := algebra.fetch(V, OL)
  kMapArith,       // V := batcalc.arith(Va, op, Vb)
  kMapArithConst,  // V := batcalc.arith(Va, op, lit)
  kMapCmp,         // V := batcalc.cmp(Va, op, Vb)
  kMapCmpConst,    // V := batcalc.cmp(Va, op, lit)
  kMapAnd,         // V := batcalc.and(Va, Vb)
  kMapOr,          // V := batcalc.or(Va, Vb)
  kMapNot,         // V := batcalc.not(Va)
  kMapCast,        // V := batcalc.cast(Va, type)
  kConstCol,       // V := batcalc.const(lit, count_like=Va)
};

/// One instruction. Register operands are indices into the program's
/// register file; unused operands are -1.
struct Instr {
  OpCode op;
  int dst = -1;
  int dst2 = -1;            // kJoin: right oid list
  int a = -1;
  int b = -1;
  int c = -1;               // optional candidate operand
  Value imm;                // literal operand
  CmpOp cmp = CmpOp::kEq;
  ArithOp arith = ArithOp::kAdd;
  TypeId cast_type = TypeId::kI64;
  bool lit_left = false;    // kMapArithConst: literal is the left operand
  int rel = -1;             // kBindCol/kBindCand; kDeltaJoin: left input
  int rel2 = -1;            // kDeltaJoin: right input (old/new split source)
  int col = -1;             // kBindCol
  std::string note;         // column name etc., for rendering

  std::string ToString() const;
};

/// How to compute the row count of the final stage domain (scalar COUNT(*)
/// needs it even when no output column exists).
enum class DomainKind { kNone, kColumn, kCand, kOidList };

/// A straight-line stage program.
struct Program {
  int num_regs = 0;
  std::vector<Instr> instrs;
  std::vector<int> output_regs;
  std::vector<std::string> output_names;
  int domain_reg = -1;
  DomainKind domain_kind = DomainKind::kNone;

  int NewReg() { return num_regs++; }

  /// MAL-like listing. `bind_name` styles input binds ("scan" for
  /// one-time/table inputs, "basket" for continuous stream inputs).
  std::string ToString(const std::string& bind_name = "scan") const;
};

}  // namespace dc::cal

#endif  // DATACELL_PLAN_CAL_H_
