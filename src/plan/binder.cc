#include "plan/binder.h"

#include <set>

#include "util/string_util.h"

namespace dc::plan {

namespace {

using sql::Expr;
using sql::ExprKind;
using sql::ExprPtr;

/// Result type of `l op r` arithmetic, or TypeError.
Result<TypeId> ArithResultType(ArithOp op, TypeId l, TypeId r) {
  if (!IsNumeric(l) || !IsNumeric(r)) {
    return Status::TypeError(StrFormat("arithmetic %s over %s and %s",
                                       ArithOpName(op), TypeName(l),
                                       TypeName(r)));
  }
  if (op == ArithOp::kDiv) return TypeId::kF64;
  if (op == ArithOp::kMod) {
    if (!StoredAsI64(l) || !StoredAsI64(r)) {
      return Status::TypeError("'%' requires integer operands");
    }
    return TypeId::kI64;
  }
  if (l == TypeId::kF64 || r == TypeId::kF64) return TypeId::kF64;
  // TS +/- I64 stays TS; TS - TS is I64; otherwise I64.
  if (l == TypeId::kTs && r == TypeId::kTs) {
    return op == ArithOp::kSub ? TypeId::kI64 : TypeId::kTs;
  }
  if (l == TypeId::kTs || r == TypeId::kTs) return TypeId::kTs;
  return TypeId::kI64;
}

bool Comparable(TypeId l, TypeId r) {
  if (l == r) return true;
  if (IsNumeric(l) && IsNumeric(r)) return true;
  return false;
}

class Binder {
 public:
  Binder(const sql::SelectStmt& stmt, const Catalog& catalog)
      : stmt_(stmt), catalog_(catalog) {}

  Result<BoundQuery> Run() {
    DC_RETURN_NOT_OK(BindRelations());
    DC_RETURN_NOT_OK(BindWhere());
    DC_RETURN_NOT_OK(BindGroupBy());
    DC_RETURN_NOT_OK(BindSelectList());
    DC_RETURN_NOT_OK(BindHaving());
    DC_RETURN_NOT_OK(BindOrderBy());
    q_.limit = stmt_.limit;
    q_.is_continuous = q_.NumStreams() > 0;
    DC_RETURN_NOT_OK(ValidateWindows());
    return std::move(q_);
  }

 private:
  // --- Relations ------------------------------------------------------------

  Status BindRelations() {
    if (stmt_.from.empty()) {
      return Status::InvalidArgument("query needs a FROM clause");
    }
    if (stmt_.from.size() > 2) {
      return Status::NotImplemented(
          "at most two relations per query (one join) are supported");
    }
    std::set<std::string> aliases;
    for (const sql::FromItem& item : stmt_.from) {
      BoundRelation rel;
      rel.name = item.name;
      rel.alias = item.alias;
      if (!aliases.insert(rel.alias).second) {
        return Status::InvalidArgument(
            StrFormat("duplicate relation alias '%s'", rel.alias.c_str()));
      }
      if (catalog_.IsStream(item.name)) {
        DC_ASSIGN_OR_RETURN(StreamDef def, catalog_.GetStream(item.name));
        rel.is_stream = true;
        rel.schema = def.schema;
        rel.ts_column = def.ts_column;
      } else {
        DC_ASSIGN_OR_RETURN(TablePtr table, catalog_.GetTable(item.name));
        rel.is_stream = false;
        rel.schema = table->schema();
      }
      if (item.window.has_value()) {
        if (!rel.is_stream) {
          return Status::InvalidArgument(StrFormat(
              "window clause on persistent table '%s'", item.name.c_str()));
        }
        WindowSpec w;
        w.rows = item.window->rows;
        w.size = item.window->size;
        w.slide = item.window->slide;
        if (!w.rows && rel.ts_column == SIZE_MAX) {
          return Status::InvalidArgument(StrFormat(
              "RANGE window on stream '%s' which has no event-time (ts) "
              "column; use a ROWS window",
              item.name.c_str()));
        }
        rel.window = w;
      }
      q_.rels.push_back(std::move(rel));
    }
    q_.rel_filters.resize(q_.rels.size());
    return Status::OK();
  }

  Status ValidateWindows() {
    // Windowed stream-stream joins are supported; windows on both inputs.
    int windowed_streams = 0;
    for (const auto& r : q_.rels) {
      if (r.is_stream && r.window.has_value()) ++windowed_streams;
    }
    (void)windowed_streams;
    return Status::OK();
  }

  // --- Name resolution ------------------------------------------------------

  Result<BExprPtr> ResolveColumn(const std::string& table,
                                 const std::string& column) {
    int found_rel = -1;
    int found_col = -1;
    for (size_t r = 0; r < q_.rels.size(); ++r) {
      const BoundRelation& rel = q_.rels[r];
      if (!table.empty() && rel.alias != table && rel.name != table) continue;
      auto idx = rel.schema.Find(column);
      if (idx.ok()) {
        if (found_rel >= 0) {
          return Status::InvalidArgument(
              StrFormat("column '%s' is ambiguous", column.c_str()));
        }
        found_rel = static_cast<int>(r);
        found_col = static_cast<int>(*idx);
      }
    }
    if (found_rel < 0) {
      return Status::NotFound(
          table.empty()
              ? StrFormat("unknown column '%s'", column.c_str())
              : StrFormat("unknown column '%s.%s'", table.c_str(),
                          column.c_str()));
    }
    const TypeId t =
        q_.rels[found_rel].schema.column(found_col).type;
    return BColRef(found_rel, found_col, t);
  }

  // --- Expression binding ---------------------------------------------------

  /// Binds an input-domain expression. If `allow_aggs` is true, aggregate
  /// calls are deduplicated into q_.aggs and returned as kAggRef nodes
  /// (making the result finish-domain when aggregates occur).
  Result<BExprPtr> BindExpr(const ExprPtr& e, bool allow_aggs) {
    switch (e->kind) {
      case ExprKind::kLiteral:
        return BLiteral(e->literal);
      case ExprKind::kColumnRef:
        return ResolveColumn(e->table, e->column);
      case ExprKind::kStar:
        return Status::InvalidArgument("'*' is not valid here");
      case ExprKind::kNeg: {
        DC_ASSIGN_OR_RETURN(BExprPtr c, BindExpr(e->children[0], allow_aggs));
        if (c->kind == BKind::kLiteral && IsNumeric(c->type)) {
          // Constant folding.
          if (c->type == TypeId::kF64) {
            return BLiteral(Value::F64(-c->literal.AsF64()));
          }
          return BLiteral(Value::I64(-c->literal.AsI64()));
        }
        DC_ASSIGN_OR_RETURN(TypeId t,
                            ArithResultType(ArithOp::kSub, TypeId::kI64,
                                            c->type));
        return BArith(ArithOp::kSub, BLiteral(Value::I64(0)), std::move(c),
                      t);
      }
      case ExprKind::kArith: {
        DC_ASSIGN_OR_RETURN(BExprPtr l, BindExpr(e->children[0], allow_aggs));
        DC_ASSIGN_OR_RETURN(BExprPtr r, BindExpr(e->children[1], allow_aggs));
        DC_ASSIGN_OR_RETURN(TypeId t,
                            ArithResultType(e->arith_op, l->type, r->type));
        if (l->kind == BKind::kLiteral && r->kind == BKind::kLiteral) {
          // Constant folding for literal subtrees.
          DC_ASSIGN_OR_RETURN(Value v,
                              FoldArith(e->arith_op, l->literal, r->literal,
                                        t));
          return BLiteral(std::move(v));
        }
        return BArith(e->arith_op, std::move(l), std::move(r), t);
      }
      case ExprKind::kCmp: {
        DC_ASSIGN_OR_RETURN(BExprPtr l, BindExpr(e->children[0], allow_aggs));
        DC_ASSIGN_OR_RETURN(BExprPtr r, BindExpr(e->children[1], allow_aggs));
        if (!Comparable(l->type, r->type)) {
          return Status::TypeError(
              StrFormat("cannot compare %s with %s", TypeName(l->type),
                        TypeName(r->type)));
        }
        return BCmp(e->cmp_op, std::move(l), std::move(r));
      }
      case ExprKind::kBetween: {
        // a BETWEEN lo AND hi  =>  a >= lo AND a <= hi
        DC_ASSIGN_OR_RETURN(BExprPtr a, BindExpr(e->children[0], allow_aggs));
        DC_ASSIGN_OR_RETURN(BExprPtr lo, BindExpr(e->children[1], allow_aggs));
        DC_ASSIGN_OR_RETURN(BExprPtr hi, BindExpr(e->children[2], allow_aggs));
        if (!Comparable(a->type, lo->type) || !Comparable(a->type, hi->type)) {
          return Status::TypeError("BETWEEN bounds not comparable");
        }
        // Build the conjuncts in sequence: argument evaluation order is
        // unspecified and both sides need `a`.
        BExprPtr ge = BCmp(CmpOp::kGe, a, std::move(lo));
        BExprPtr le = BCmp(CmpOp::kLe, std::move(a), std::move(hi));
        return BLogical(BKind::kAnd, std::move(ge), std::move(le));
      }
      case ExprKind::kAnd:
      case ExprKind::kOr: {
        DC_ASSIGN_OR_RETURN(BExprPtr l, BindExpr(e->children[0], allow_aggs));
        DC_ASSIGN_OR_RETURN(BExprPtr r, BindExpr(e->children[1], allow_aggs));
        if (l->type != TypeId::kBool || r->type != TypeId::kBool) {
          return Status::TypeError("AND/OR operands must be boolean");
        }
        return BLogical(e->kind == ExprKind::kAnd ? BKind::kAnd : BKind::kOr,
                        std::move(l), std::move(r));
      }
      case ExprKind::kNot: {
        DC_ASSIGN_OR_RETURN(BExprPtr c, BindExpr(e->children[0], allow_aggs));
        if (c->type != TypeId::kBool) {
          return Status::TypeError("NOT operand must be boolean");
        }
        return BNot(std::move(c));
      }
      case ExprKind::kAgg: {
        if (!allow_aggs) {
          return Status::InvalidArgument(
              "aggregate function not allowed in this clause");
        }
        BoundAgg agg;
        agg.kind = e->agg;
        if (!e->agg_star) {
          DC_ASSIGN_OR_RETURN(agg.arg,
                              BindExpr(e->children[0], /*allow_aggs=*/false));
          if (ContainsAggRef(*agg.arg)) {
            return Status::InvalidArgument("nested aggregates not allowed");
          }
          agg.arg_type = agg.arg->type;
        }
        DC_ASSIGN_OR_RETURN(agg.out_type,
                            ops::AggResultType(agg.kind, agg.arg_type));
        // Deduplicate structurally identical aggregates.
        for (size_t i = 0; i < q_.aggs.size(); ++i) {
          const BoundAgg& existing = q_.aggs[i];
          const bool both_star = (existing.arg == nullptr) == (agg.arg == nullptr);
          if (existing.kind == agg.kind && both_star &&
              (agg.arg == nullptr || existing.arg->Equals(*agg.arg))) {
            return BAggRef(static_cast<int>(i), existing.out_type);
          }
        }
        q_.aggs.push_back(agg);
        return BAggRef(static_cast<int>(q_.aggs.size() - 1), agg.out_type);
      }
    }
    return Status::Internal("BindExpr: unhandled node");
  }

  static Result<Value> FoldArith(ArithOp op, const Value& l, const Value& r,
                                 TypeId out) {
    if (out == TypeId::kF64) {
      const double x = l.NumericAsDouble();
      const double y = r.NumericAsDouble();
      switch (op) {
        case ArithOp::kAdd:
          return Value::F64(x + y);
        case ArithOp::kSub:
          return Value::F64(x - y);
        case ArithOp::kMul:
          return Value::F64(x * y);
        case ArithOp::kDiv:
          return Value::F64(y == 0 ? 0 : x / y);
        case ArithOp::kMod:
          return Status::TypeError("'%' requires integers");
      }
    }
    const int64_t x = l.AsI64();
    const int64_t y = r.AsI64();
    int64_t v = 0;
    switch (op) {
      case ArithOp::kAdd:
        v = x + y;
        break;
      case ArithOp::kSub:
        v = x - y;
        break;
      case ArithOp::kMul:
        v = x * y;
        break;
      case ArithOp::kMod:
        v = y == 0 ? 0 : x % y;
        break;
      case ArithOp::kDiv:
        return Status::Internal("int division folded as f64");
    }
    return out == TypeId::kTs ? Value::Ts(v) : Value::I64(v);
  }

  static bool ContainsAggRef(const BExpr& e) {
    if (e.kind == BKind::kAggRef) return true;
    for (const auto& c : e.children) {
      if (ContainsAggRef(*c)) return true;
    }
    return false;
  }

  static bool ContainsColRef(const BExpr& e) {
    if (e.kind == BKind::kColRef) return true;
    for (const auto& c : e.children) {
      if (ContainsColRef(*c)) return true;
    }
    return false;
  }

  /// Which relations does `e` reference? Bitmask over rel indices.
  static uint32_t RelMask(const BExpr& e) {
    uint32_t m = e.kind == BKind::kColRef ? (1u << e.rel) : 0;
    for (const auto& c : e.children) m |= RelMask(*c);
    return m;
  }

  // --- WHERE classification ---------------------------------------------------

  Status BindWhere() {
    if (!stmt_.where) {
      if (q_.rels.size() == 2) {
        return Status::InvalidArgument(
            "two-relation query requires an equi-join predicate");
      }
      return Status::OK();
    }
    DC_ASSIGN_OR_RETURN(BExprPtr pred,
                        BindExpr(stmt_.where, /*allow_aggs=*/false));
    if (pred->type != TypeId::kBool) {
      return Status::TypeError("WHERE must be boolean");
    }
    std::vector<BExprPtr> conjuncts;
    SplitConjuncts(pred, &conjuncts);
    for (BExprPtr& c : conjuncts) {
      const uint32_t mask = RelMask(*c);
      if (mask == 0) {
        // Constant predicate; keep as a post-filter on relation 0.
        q_.rel_filters[0].push_back(std::move(c));
      } else if (mask == 1u) {
        q_.rel_filters[0].push_back(std::move(c));
      } else if (mask == 2u) {
        q_.rel_filters[1].push_back(std::move(c));
      } else {
        // Cross-relation: join key if `colref = colref`, else post-join.
        if (!q_.join.has_value() && c->kind == BKind::kCmp &&
            c->cmp_op == CmpOp::kEq &&
            c->children[0]->kind == BKind::kColRef &&
            c->children[1]->kind == BKind::kColRef &&
            c->children[0]->rel != c->children[1]->rel) {
          JoinSpec js;
          if (c->children[0]->rel == 0) {
            js.left = c->children[0];
            js.right = c->children[1];
          } else {
            js.left = c->children[1];
            js.right = c->children[0];
          }
          if (!Comparable(js.left->type, js.right->type)) {
            return Status::TypeError("join keys not comparable");
          }
          q_.join = std::move(js);
        } else {
          q_.post_join_filters.push_back(std::move(c));
        }
      }
    }
    if (q_.rels.size() == 2 && !q_.join.has_value()) {
      return Status::InvalidArgument(
          "two-relation query requires an equi-join predicate "
          "(cross products are not supported)");
    }
    if (q_.rels.size() == 1 && !q_.post_join_filters.empty()) {
      return Status::Internal("cross-relation filter in single-rel query");
    }
    return Status::OK();
  }

  static void SplitConjuncts(const BExprPtr& e, std::vector<BExprPtr>* out) {
    if (e->kind == BKind::kAnd) {
      SplitConjuncts(e->children[0], out);
      SplitConjuncts(e->children[1], out);
      return;
    }
    out->push_back(e);
  }

  // --- GROUP BY / select list -------------------------------------------------

  Status BindGroupBy() {
    for (const ExprPtr& g : stmt_.group_by) {
      DC_ASSIGN_OR_RETURN(BExprPtr b, BindExpr(g, /*allow_aggs=*/false));
      if (b->kind != BKind::kColRef) {
        return Status::NotImplemented(
            "GROUP BY supports plain column references only");
      }
      q_.group_by.push_back(std::move(b));
    }
    return Status::OK();
  }

  /// Finds `e` among the group keys; returns key index or -1.
  int FindGroupKey(const BExpr& e) const {
    for (size_t i = 0; i < q_.group_by.size(); ++i) {
      if (q_.group_by[i]->Equals(e)) return static_cast<int>(i);
    }
    return -1;
  }

  /// Rewrites an input-domain/finish-mixed expression into pure finish
  /// domain: colrefs must match group keys (-> kKeyRef); kAggRef passes
  /// through. Errors on bare columns that are not grouped.
  Result<BExprPtr> ToFinishDomain(const BExprPtr& e) {
    if (e->kind == BKind::kColRef) {
      const int k = FindGroupKey(*e);
      if (k < 0) {
        return Status::InvalidArgument(StrFormat(
            "column %s must appear in GROUP BY or inside an aggregate",
            e->ToString().c_str()));
      }
      return BKeyRef(k, e->type);
    }
    if (e->children.empty()) return e;
    auto out = std::make_shared<BExpr>(*e);
    for (size_t i = 0; i < out->children.size(); ++i) {
      DC_ASSIGN_OR_RETURN(out->children[i],
                          ToFinishDomain(out->children[i]));
    }
    return out;
  }

  Status BindSelectList() {
    // Expand bare '*' (non-aggregate queries only).
    std::vector<std::pair<BExprPtr, std::string>> items;
    for (const sql::SelectItem& item : stmt_.items) {
      if (item.star) {
        for (size_t r = 0; r < q_.rels.size(); ++r) {
          const Schema& s = q_.rels[r].schema;
          for (size_t c = 0; c < s.NumColumns(); ++c) {
            items.emplace_back(BColRef(static_cast<int>(r),
                                       static_cast<int>(c),
                                       s.column(c).type),
                               s.column(c).name);
          }
        }
        continue;
      }
      DC_ASSIGN_OR_RETURN(BExprPtr b, BindExpr(item.expr, /*allow_aggs=*/true));
      std::string name = item.alias;
      if (name.empty()) {
        name = item.expr->kind == ExprKind::kColumnRef
                   ? item.expr->column
                   : DeriveName(*item.expr);
      }
      items.emplace_back(std::move(b), std::move(name));
    }

    q_.is_aggregate = !q_.aggs.empty() || !q_.group_by.empty();

    for (auto& [expr, name] : items) {
      if (q_.is_aggregate) {
        DC_ASSIGN_OR_RETURN(expr, ToFinishDomain(expr));
      } else if (ContainsAggRef(*expr)) {
        return Status::Internal("agg ref in non-aggregate query");
      }
      q_.select_exprs.push_back(std::move(expr));
      q_.out_names.push_back(std::move(name));
    }
    if (q_.select_exprs.empty()) {
      return Status::InvalidArgument("empty select list");
    }
    // '*' in aggregate queries would have produced ungrouped colrefs and
    // failed in ToFinishDomain with a clear message — nothing more to do.
    return Status::OK();
  }

  static std::string DeriveName(const Expr& e) {
    if (e.kind == ExprKind::kAgg) {
      std::string base = ops::AggKindName(e.agg);
      if (e.agg_star) return base;
      if (e.children[0]->kind == ExprKind::kColumnRef) {
        return base + "_" + e.children[0]->column;
      }
      return base;
    }
    return "expr";
  }

  Status BindHaving() {
    if (!stmt_.having) return Status::OK();
    if (!q_.is_aggregate) {
      return Status::InvalidArgument("HAVING without GROUP BY/aggregates");
    }
    DC_ASSIGN_OR_RETURN(BExprPtr b, BindExpr(stmt_.having, /*allow_aggs=*/true));
    if (b->type != TypeId::kBool) {
      return Status::TypeError("HAVING must be boolean");
    }
    DC_ASSIGN_OR_RETURN(q_.having, ToFinishDomain(b));
    // is_aggregate may have gained aggs via HAVING; keep flag consistent.
    q_.is_aggregate = true;
    return Status::OK();
  }

  Status BindOrderBy() {
    for (const sql::OrderItem& item : stmt_.order_by) {
      // Allow ordering by a select-list alias.
      BExprPtr bound;
      if (item.expr->kind == ExprKind::kColumnRef && item.expr->table.empty()) {
        for (size_t i = 0; i < q_.out_names.size(); ++i) {
          if (q_.out_names[i] == item.expr->column) {
            bound = q_.select_exprs[i];
            break;
          }
        }
      }
      if (!bound) {
        DC_ASSIGN_OR_RETURN(bound, BindExpr(item.expr, /*allow_aggs=*/true));
        if (q_.is_aggregate) {
          DC_ASSIGN_OR_RETURN(bound, ToFinishDomain(bound));
        } else if (ContainsAggRef(*bound)) {
          return Status::InvalidArgument(
              "aggregate in ORDER BY of a non-aggregate query");
        }
      }
      q_.order_by.emplace_back(std::move(bound), item.ascending);
    }
    return Status::OK();
  }

  const sql::SelectStmt& stmt_;
  const Catalog& catalog_;
  BoundQuery q_;
};

}  // namespace

Result<BoundQuery> Bind(const sql::SelectStmt& stmt, const Catalog& catalog) {
  Binder b(stmt, catalog);
  return b.Run();
}

}  // namespace dc::plan
