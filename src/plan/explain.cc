#include "plan/explain.h"

#include "util/string_util.h"

namespace dc::plan {

namespace {

std::string FinishToString(const CompiledQuery& cq, PlanMode mode) {
  const FinishSpec& f = cq.finish;
  std::string out;
  if (f.is_aggregate) {
    if (f.key_types.empty()) {
      out += "  merge := aggr.merge_states(partials)\n";
    } else {
      out += "  merge := aggr.merge_groups(partials)\n";
    }
    for (size_t i = 0; i < f.select_exprs.size(); ++i) {
      out += StrFormat("  out%zu := batcalc.eval(%s)\n", i,
                       f.select_exprs[i]->ToString().c_str());
    }
    if (f.having) {
      out += StrFormat("  having := algebra.select_true(%s)\n",
                       f.having->ToString().c_str());
    }
    for (const auto& [e, asc] : f.order_by) {
      out += StrFormat("  order := algebra.sort(%s, %s)\n",
                       e->ToString().c_str(), asc ? "asc" : "desc");
    }
  } else if (mode == PlanMode::kContinuousIncremental &&
             !f.sort_cols.empty()) {
    // Each cached partial is a sorted run; the tail merges runs instead
    // of re-sorting the window.
    out += "  order := datacell.merge_sorted_runs(partials)\n";
  } else {
    out += "  concat := datacell.concat(partials)\n";
    for (const auto& [slot, asc] : f.sort_cols) {
      out += StrFormat("  order := algebra.sort(frag[%d], %s)\n", slot,
                       asc ? "asc" : "desc");
    }
  }
  if (f.limit >= 0) {
    out += StrFormat("  limit := algebra.slice(0, %lld)\n",
                     static_cast<long long>(f.limit));
  }
  return out;
}

}  // namespace

std::string Explain(const CompiledQuery& cq, PlanMode mode,
                    const OptimizerReport* report,
                    const SharingNote* sharing) {
  const BoundQuery& q = cq.bound;
  std::string out;
  switch (mode) {
    case PlanMode::kOneTime:
      out += "PLAN (one-time)\n";
      break;
    case PlanMode::kContinuousFull:
      out += "PLAN (continuous, full re-evaluation)\n";
      break;
    case PlanMode::kContinuousIncremental:
      out += "PLAN (continuous, incremental)\n";
      break;
  }
  out += "relations:\n";
  for (size_t r = 0; r < q.rels.size(); ++r) {
    const BoundRelation& rel = q.rels[r];
    out += StrFormat("  r%zu: %s%s %s%s\n", r,
                     rel.is_stream ? "stream " : "table ", rel.name.c_str(),
                     rel.window ? rel.window->ToString().c_str() : "",
                     rel.is_stream && mode != PlanMode::kOneTime
                         ? " (via basket)"
                         : "");
  }
  if (report != nullptr) {
    out += "optimizer rewrites:\n" + report->ToString();
    if (!out.empty() && out.back() != '\n') out += '\n';
  }
  if (mode == PlanMode::kContinuousIncremental &&
      !cq.classification.empty()) {
    // Per-operator incremental-vs-recompute classification: which stages
    // run per basic window / as a delta / as a merge tail, and which force
    // full re-evaluation of the window.
    out += "fragment classification:\n";
    for (const StageClass& sc : cq.classification) {
      out += StrFormat("  %-12s %-12s %s\n", sc.op.c_str(),
                       sc.incremental ? "incremental" : "recompute",
                       sc.note.c_str());
    }
  }
  for (size_t r = 0; r < cq.prejoin.size(); ++r) {
    const bool basket = mode != PlanMode::kOneTime && q.rels[r].is_stream;
    if (mode == PlanMode::kContinuousIncremental && q.rels[r].is_stream) {
      out += StrFormat("fragment r%zu (runs once per basic window):\n", r);
    } else {
      out += StrFormat("stage prejoin r%zu:\n", r);
    }
    out += cq.prejoin[r].ToString(basket ? "basket" : "scan");
  }
  if (mode == PlanMode::kContinuousIncremental && cq.has_delta_postjoin) {
    out +=
        "stage delta postjoin (newest basic window vs retained window; "
        "new pairs bucketed by expiry):\n";
    out += cq.delta_postjoin.ToString("frag");
  } else if (mode == PlanMode::kContinuousIncremental) {
    out += "stage postjoin (per new portion; cached per basic window):\n";
    out += cq.postjoin.ToString("frag");
  } else {
    out += "stage postjoin:\n";
    out += cq.postjoin.ToString("frag");
  }
  if (mode == PlanMode::kContinuousIncremental) {
    out += "stage merge (per emission, over cached partials):\n";
  } else {
    out += "stage finish:\n";
  }
  out += FinishToString(cq, mode);
  if (sharing != nullptr && mode != PlanMode::kOneTime) {
    if (!sharing->enabled) {
      out += "sharing: disabled (EngineOptions::enable_sharing = false)\n";
    } else if (sharing->shared_with > 0) {
      out += StrFormat("sharing: shared with %d quer%s (%s)\n",
                       sharing->shared_with,
                       sharing->shared_with == 1 ? "y" : "ies",
                       sharing->detail.c_str());
    } else {
      out += "sharing: not shared (no matching standing queries)\n";
    }
    if (!sharing->latency.empty()) {
      out += StrFormat("latency: %s\n", sharing->latency.c_str());
    }
  }
  out += "output: (";
  for (size_t i = 0; i < cq.finish.out_names.size(); ++i) {
    if (i > 0) out += ", ";
    out += cq.finish.out_names[i];
  }
  out += ")\n";
  return out;
}

}  // namespace dc::plan
