// Copyright 2026 The DataCell Authors.
//
// Binder: resolves a parsed SELECT against the catalog, type-checks every
// expression, classifies WHERE conjuncts (predicate pushdown + join-key
// extraction), validates aggregate/grouping rules, and produces a
// BoundQuery ready for the optimizer/compiler.

#ifndef DATACELL_PLAN_BINDER_H_
#define DATACELL_PLAN_BINDER_H_

#include "plan/bound.h"
#include "sql/ast.h"
#include "storage/catalog.h"
#include "util/result.h"

namespace dc::plan {

/// Binds `stmt` against `catalog`. Errors carry user-facing messages
/// (unknown names, type mismatches, aggregate misuse, window misuse).
Result<BoundQuery> Bind(const sql::SelectStmt& stmt, const Catalog& catalog);

}  // namespace dc::plan

#endif  // DATACELL_PLAN_BINDER_H_
