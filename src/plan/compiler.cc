#include "plan/compiler.h"

#include <functional>
#include <map>
#include <set>

#include "bat/ops_join.h"
#include "util/string_util.h"

namespace dc::plan {

namespace {

using cal::Instr;
using cal::OpCode;
using cal::Program;

CmpOp FlipCmp(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return CmpOp::kEq;
    case CmpOp::kNe:
      return CmpOp::kNe;
    case CmpOp::kLt:
      return CmpOp::kGt;
    case CmpOp::kLe:
      return CmpOp::kGe;
    case CmpOp::kGt:
      return CmpOp::kLt;
    case CmpOp::kGe:
      return CmpOp::kLe;
  }
  return op;
}

/// Column environment for expression emission: resolves (rel, col) to a
/// register, and provides a register whose length equals the current row
/// domain (for constant columns).
struct ColumnEnv {
  std::function<Result<int>(int rel, int col)> resolve;
  std::function<Result<int>()> size_ref;
};

class Compiler {
 public:
  explicit Compiler(BoundQuery q) { out_.bound = std::move(q); }

  Result<CompiledQuery> Run() {
    const BoundQuery& q = out_.bound;
    DC_RETURN_NOT_OK(CollectFragmentExprs());
    DC_RETURN_NOT_OK(CollectNeededColumns());
    out_.prejoin.resize(q.rels.size());
    out_.compact_cols.resize(q.rels.size());
    for (size_t r = 0; r < q.rels.size(); ++r) {
      DC_RETURN_NOT_OK(CompilePrejoin(static_cast<int>(r)));
    }
    DC_RETURN_NOT_OK(CompilePostjoin(&out_.postjoin, /*delta=*/false));
    if (q.join.has_value() && q.rels.size() == 2 && q.rels[0].is_stream &&
        q.rels[1].is_stream) {
      DC_RETURN_NOT_OK(CompilePostjoin(&out_.delta_postjoin, /*delta=*/true));
      out_.has_delta_postjoin = true;
      DC_ASSIGN_OR_RETURN(
          out_.delta_key_slots[0],
          CompactSlot(q.join->left->rel, q.join->left->col));
      DC_ASSIGN_OR_RETURN(
          out_.delta_key_slots[1],
          CompactSlot(q.join->right->rel, q.join->right->col));
      DC_ASSIGN_OR_RETURN(
          out_.delta_key_domain,
          ops::JoinKeyDomain(q.join->left->type, q.join->right->type));
      BuildDeltaPreAgg();
    }
    DC_RETURN_NOT_OK(BuildFinish());
    BuildClassification();
    BuildSignatures();
    return std::move(out_);
  }

 private:
  // --- Needed-column analysis (projection pruning) --------------------------

  /// Fragment output expressions (input-domain), in postjoin output order.
  Status CollectFragmentExprs() {
    const BoundQuery& q = out_.bound;
    if (q.is_aggregate) {
      for (const BExprPtr& k : q.group_by) fragment_exprs_.push_back(k);
      out_.num_keys = static_cast<int>(q.group_by.size());
      for (const BoundAgg& agg : q.aggs) {
        if (agg.arg) {
          out_.agg_arg_slots.push_back(
              static_cast<int>(fragment_exprs_.size()));
          fragment_exprs_.push_back(agg.arg);
        } else {
          out_.agg_arg_slots.push_back(-1);
        }
      }
      fragment_names_.resize(fragment_exprs_.size());
      for (size_t i = 0; i < fragment_exprs_.size(); ++i) {
        fragment_names_[i] =
            i < q.group_by.size()
                ? StrFormat("key%zu", i)
                : StrFormat("arg%zu", i - q.group_by.size());
      }
    } else {
      for (size_t i = 0; i < q.select_exprs.size(); ++i) {
        fragment_exprs_.push_back(q.select_exprs[i]);
        fragment_names_.push_back(q.out_names[i]);
      }
      for (size_t i = 0; i < q.order_by.size(); ++i) {
        fragment_exprs_.push_back(q.order_by[i].first);
        fragment_names_.push_back(StrFormat("sortkey%zu", i));
      }
    }
    return Status::OK();
  }

  static void CollectCols(const BExpr& e, std::set<std::pair<int, int>>* out) {
    if (e.kind == BKind::kColRef) out->emplace(e.rel, e.col);
    for (const auto& c : e.children) CollectCols(*c, out);
  }

  static bool HasColRef(const BExpr& e) {
    if (e.kind == BKind::kColRef) return true;
    for (const auto& c : e.children) {
      if (HasColRef(*c)) return true;
    }
    return false;
  }

  Status CollectNeededColumns() {
    const BoundQuery& q = out_.bound;
    std::set<std::pair<int, int>> needed;
    if (q.join.has_value()) {
      CollectCols(*q.join->left, &needed);
      CollectCols(*q.join->right, &needed);
    }
    for (const BExprPtr& f : q.post_join_filters) CollectCols(*f, &needed);
    bool need_size_ref = false;
    for (const BExprPtr& e : fragment_exprs_) {
      CollectCols(*e, &needed);
      if (!HasColRef(*e)) need_size_ref = true;
    }
    if ((need_size_ref || fragment_exprs_.empty()) &&
        q.rels[0].schema.NumColumns() > 0) {
      // Constant fragment expressions (and COUNT(*)-only queries executed
      // through the postjoin join path) need one real column as row-count
      // reference.
      if (q.rels.size() == 2 || need_size_ref) needed.emplace(0, 0);
    }
    needed_.assign(q.rels.size(), {});
    for (const auto& [rel, col] : needed) {
      needed_[static_cast<size_t>(rel)].push_back(col);
    }
    return Status::OK();
  }

  // --- Expression emission ----------------------------------------------------

  Result<int> EmitMapExpr(Program* p, const BExpr& e, const ColumnEnv& env) {
    switch (e.kind) {
      case BKind::kColRef:
        return env.resolve(e.rel, e.col);
      case BKind::kLiteral: {
        DC_ASSIGN_OR_RETURN(int ref, env.size_ref());
        Instr ins;
        ins.op = OpCode::kConstCol;
        ins.a = ref;
        ins.imm = e.literal;
        ins.dst = p->NewReg();
        p->instrs.push_back(ins);
        return ins.dst;
      }
      case BKind::kArith: {
        const BExpr& l = *e.children[0];
        const BExpr& r = *e.children[1];
        if (l.kind == BKind::kLiteral && r.kind != BKind::kLiteral) {
          DC_ASSIGN_OR_RETURN(int rr, EmitMapExpr(p, r, env));
          Instr ins;
          ins.op = OpCode::kMapArithConst;
          ins.a = rr;
          ins.imm = l.literal;
          ins.arith = e.arith_op;
          ins.lit_left = true;
          ins.dst = p->NewReg();
          p->instrs.push_back(ins);
          return ins.dst;
        }
        if (r.kind == BKind::kLiteral) {
          DC_ASSIGN_OR_RETURN(int lr, EmitMapExpr(p, l, env));
          Instr ins;
          ins.op = OpCode::kMapArithConst;
          ins.a = lr;
          ins.imm = r.literal;
          ins.arith = e.arith_op;
          ins.dst = p->NewReg();
          p->instrs.push_back(ins);
          return ins.dst;
        }
        DC_ASSIGN_OR_RETURN(int lr, EmitMapExpr(p, l, env));
        DC_ASSIGN_OR_RETURN(int rr, EmitMapExpr(p, r, env));
        Instr ins;
        ins.op = OpCode::kMapArith;
        ins.a = lr;
        ins.b = rr;
        ins.arith = e.arith_op;
        ins.dst = p->NewReg();
        p->instrs.push_back(ins);
        return ins.dst;
      }
      case BKind::kCmp: {
        const BExpr& l = *e.children[0];
        const BExpr& r = *e.children[1];
        if (l.kind == BKind::kLiteral && r.kind != BKind::kLiteral) {
          DC_ASSIGN_OR_RETURN(int rr, EmitMapExpr(p, r, env));
          Instr ins;
          ins.op = OpCode::kMapCmpConst;
          ins.a = rr;
          ins.imm = l.literal;
          ins.cmp = FlipCmp(e.cmp_op);
          ins.dst = p->NewReg();
          p->instrs.push_back(ins);
          return ins.dst;
        }
        if (r.kind == BKind::kLiteral) {
          DC_ASSIGN_OR_RETURN(int lr, EmitMapExpr(p, l, env));
          Instr ins;
          ins.op = OpCode::kMapCmpConst;
          ins.a = lr;
          ins.imm = r.literal;
          ins.cmp = e.cmp_op;
          ins.dst = p->NewReg();
          p->instrs.push_back(ins);
          return ins.dst;
        }
        DC_ASSIGN_OR_RETURN(int lr, EmitMapExpr(p, l, env));
        DC_ASSIGN_OR_RETURN(int rr, EmitMapExpr(p, r, env));
        Instr ins;
        ins.op = OpCode::kMapCmp;
        ins.a = lr;
        ins.b = rr;
        ins.cmp = e.cmp_op;
        ins.dst = p->NewReg();
        p->instrs.push_back(ins);
        return ins.dst;
      }
      case BKind::kAnd:
      case BKind::kOr: {
        DC_ASSIGN_OR_RETURN(int lr, EmitMapExpr(p, *e.children[0], env));
        DC_ASSIGN_OR_RETURN(int rr, EmitMapExpr(p, *e.children[1], env));
        Instr ins;
        ins.op = e.kind == BKind::kAnd ? OpCode::kMapAnd : OpCode::kMapOr;
        ins.a = lr;
        ins.b = rr;
        ins.dst = p->NewReg();
        p->instrs.push_back(ins);
        return ins.dst;
      }
      case BKind::kNot: {
        DC_ASSIGN_OR_RETURN(int cr, EmitMapExpr(p, *e.children[0], env));
        Instr ins;
        ins.op = OpCode::kMapNot;
        ins.a = cr;
        ins.dst = p->NewReg();
        p->instrs.push_back(ins);
        return ins.dst;
      }
      case BKind::kKeyRef:
      case BKind::kAggRef:
        return Status::Internal(
            "finish-domain expression in a CAL stage program");
    }
    return Status::Internal("EmitMapExpr: unhandled node");
  }

  // --- Prejoin ---------------------------------------------------------------

  /// Compiles a predicate into a candidate chain; returns the new candidate
  /// register. `cand` is the incoming candidate register.
  Result<int> CompilePred(Program* p, const BExpr& e, int cand,
                          const ColumnEnv& env) {
    switch (e.kind) {
      case BKind::kCmp: {
        const BExpr& l = *e.children[0];
        const BExpr& r = *e.children[1];
        if (l.kind == BKind::kColRef && r.kind == BKind::kLiteral) {
          DC_ASSIGN_OR_RETURN(int col, env.resolve(l.rel, l.col));
          Instr ins;
          ins.op = OpCode::kSelectCmp;
          ins.a = col;
          ins.b = cand;
          ins.imm = r.literal;
          ins.cmp = e.cmp_op;
          ins.dst = p->NewReg();
          p->instrs.push_back(ins);
          return ins.dst;
        }
        if (l.kind == BKind::kLiteral && r.kind == BKind::kColRef) {
          DC_ASSIGN_OR_RETURN(int col, env.resolve(r.rel, r.col));
          Instr ins;
          ins.op = OpCode::kSelectCmp;
          ins.a = col;
          ins.b = cand;
          ins.imm = l.literal;
          ins.cmp = FlipCmp(e.cmp_op);
          ins.dst = p->NewReg();
          p->instrs.push_back(ins);
          return ins.dst;
        }
        if (l.kind == BKind::kColRef && r.kind == BKind::kColRef) {
          DC_ASSIGN_OR_RETURN(int la, env.resolve(l.rel, l.col));
          DC_ASSIGN_OR_RETURN(int rb, env.resolve(r.rel, r.col));
          Instr ins;
          ins.op = OpCode::kSelectCmpCol;
          ins.a = la;
          ins.b = rb;
          ins.c = cand;
          ins.cmp = e.cmp_op;
          ins.dst = p->NewReg();
          p->instrs.push_back(ins);
          return ins.dst;
        }
        break;  // complex comparison: fall through to map fallback
      }
      case BKind::kAnd: {
        DC_ASSIGN_OR_RETURN(int c1, CompilePred(p, *e.children[0], cand, env));
        return CompilePred(p, *e.children[1], c1, env);
      }
      case BKind::kOr: {
        DC_ASSIGN_OR_RETURN(int c1, CompilePred(p, *e.children[0], cand, env));
        DC_ASSIGN_OR_RETURN(int c2, CompilePred(p, *e.children[1], cand, env));
        Instr ins;
        ins.op = OpCode::kCandOr;
        ins.a = c1;
        ins.b = c2;
        ins.dst = p->NewReg();
        p->instrs.push_back(ins);
        return ins.dst;
      }
      case BKind::kNot: {
        DC_ASSIGN_OR_RETURN(int ci, CompilePred(p, *e.children[0], cand, env));
        Instr ins;
        ins.op = OpCode::kCandDiff;
        ins.a = cand;
        ins.b = ci;
        ins.dst = p->NewReg();
        p->instrs.push_back(ins);
        return ins.dst;
      }
      case BKind::kLiteral: {
        if (e.type != TypeId::kBool) break;
        if (e.literal.AsBool()) return cand;  // WHERE TRUE: no-op
        Instr ins;  // WHERE FALSE: empty candidates
        ins.op = OpCode::kCandDiff;
        ins.a = cand;
        ins.b = cand;
        ins.dst = p->NewReg();
        p->instrs.push_back(ins);
        return ins.dst;
      }
      default:
        break;
    }
    // Fallback: evaluate as a boolean map over the raw domain, then filter.
    DC_ASSIGN_OR_RETURN(int boolreg, EmitMapExpr(p, e, env));
    Instr ins;
    ins.op = OpCode::kSelectTrue;
    ins.a = boolreg;
    ins.b = cand;
    ins.dst = p->NewReg();
    p->instrs.push_back(ins);
    return ins.dst;
  }

  Status CompilePrejoin(int r) {
    const BoundQuery& q = out_.bound;
    Program& p = out_.prejoin[r];
    std::map<int, int> bound_cols;  // raw col -> reg

    ColumnEnv env;
    env.resolve = [&, r](int rel, int col) -> Result<int> {
      if (rel != r) {
        return Status::Internal("prejoin: foreign column reference");
      }
      auto it = bound_cols.find(col);
      if (it != bound_cols.end()) return it->second;
      Instr ins;
      ins.op = OpCode::kBindCol;
      ins.rel = rel;
      ins.col = col;
      ins.note = q.rels[rel].schema.column(col).name;
      ins.dst = p.NewReg();
      p.instrs.push_back(ins);
      bound_cols[col] = ins.dst;
      return ins.dst;
    };
    env.size_ref = [&]() -> Result<int> { return env.resolve(r, 0); };

    Instr bind_cand;
    bind_cand.op = OpCode::kBindCand;
    bind_cand.rel = r;
    bind_cand.dst = p.NewReg();
    p.instrs.push_back(bind_cand);
    int cand = bind_cand.dst;

    for (const BExprPtr& f : q.rel_filters[r]) {
      DC_ASSIGN_OR_RETURN(cand, CompilePred(&p, *f, cand, env));
    }

    for (int col : needed_[r]) {
      DC_ASSIGN_OR_RETURN(int colreg, env.resolve(r, col));
      Instr g;
      g.op = OpCode::kGather;
      g.a = colreg;
      g.b = cand;
      g.dst = p.NewReg();
      p.instrs.push_back(g);
      p.output_regs.push_back(g.dst);
      p.output_names.push_back(q.rels[r].schema.column(col).name);
      out_.compact_cols[r].push_back(col);
    }
    p.domain_reg = cand;
    p.domain_kind = cal::DomainKind::kCand;
    return Status::OK();
  }

  // --- Postjoin ----------------------------------------------------------------

  /// Compact slot of raw column (rel, col), or error.
  Result<int> CompactSlot(int rel, int col) const {
    const auto& slots = out_.compact_cols[rel];
    for (size_t i = 0; i < slots.size(); ++i) {
      if (slots[i] == col) return static_cast<int>(i);
    }
    return Status::Internal(
        StrFormat("column r%d.c%d not in compact set", rel, col));
  }

  /// Compiles the postjoin stage into `*p`. With `delta` set the join
  /// instruction becomes datacell.delta_join and each side's hidden
  /// basic-window-ordinal column (input slot compact_cols[rel].size()) is
  /// carried through the join and the post-join filters, emitted as the
  /// last two outputs ("bw$l", "bw$r") for the factory's expiry bucketing.
  Status CompilePostjoin(Program* pp, bool delta) {
    const BoundQuery& q = out_.bound;
    Program& p = *pp;

    // (rel, col) -> register holding that column in the current domain.
    // The hidden ordinal columns use col = schema.NumColumns() (one past
    // the raw columns, never produced by a kColRef).
    std::map<std::pair<int, int>, int> regs;
    auto ord_key = [&](int rel) {
      return std::make_pair(
          rel, static_cast<int>(q.rels[rel].schema.NumColumns()));
    };
    auto bind_compact = [&](int rel, int col) -> Result<int> {
      auto key = std::make_pair(rel, col);
      auto it = regs.find(key);
      if (it != regs.end()) return it->second;
      DC_ASSIGN_OR_RETURN(int slot, CompactSlot(rel, col));
      Instr ins;
      ins.op = OpCode::kBindCol;
      ins.rel = rel;
      ins.col = slot;
      ins.note = q.rels[rel].schema.column(col).name;
      ins.dst = p.NewReg();
      p.instrs.push_back(ins);
      regs[key] = ins.dst;
      return ins.dst;
    };

    if (q.join.has_value()) {
      // Bind keys, join, then fetch every needed column into the joined
      // domain.
      DC_ASSIGN_OR_RETURN(int lkey,
                          bind_compact(q.join->left->rel, q.join->left->col));
      DC_ASSIGN_OR_RETURN(
          int rkey, bind_compact(q.join->right->rel, q.join->right->col));
      Instr j;
      j.op = delta ? OpCode::kDeltaJoin : OpCode::kJoin;
      j.a = lkey;
      j.b = rkey;
      if (delta) {
        j.rel = q.join->left->rel;
        j.rel2 = q.join->right->rel;
      }
      j.dst = p.NewReg();
      j.dst2 = p.NewReg();
      p.instrs.push_back(j);
      const int lo = j.dst;
      const int ro = j.dst2;

      std::map<std::pair<int, int>, int> joined;
      for (int rel = 0; rel < 2; ++rel) {
        for (int col : out_.compact_cols[rel]) {
          DC_ASSIGN_OR_RETURN(int src, bind_compact(rel, col));
          Instr f;
          f.op = OpCode::kFetch;
          f.a = src;
          f.b = rel == 0 ? lo : ro;
          f.dst = p.NewReg();
          p.instrs.push_back(f);
          joined[{rel, col}] = f.dst;
        }
      }
      if (delta) {
        // Bind + fetch the per-side basic-window ordinal columns.
        for (int rel = 0; rel < 2; ++rel) {
          Instr bind;
          bind.op = OpCode::kBindCol;
          bind.rel = rel;
          bind.col = static_cast<int>(out_.compact_cols[rel].size());
          bind.note = rel == 0 ? "bw$l" : "bw$r";
          bind.dst = p.NewReg();
          p.instrs.push_back(bind);
          Instr f;
          f.op = OpCode::kFetch;
          f.a = bind.dst;
          f.b = rel == 0 ? lo : ro;
          f.dst = p.NewReg();
          p.instrs.push_back(f);
          joined[ord_key(rel)] = f.dst;
        }
      }
      regs = std::move(joined);
      p.domain_reg = lo;
      p.domain_kind = cal::DomainKind::kOidList;
    } else {
      // Single relation: compact columns are already the domain.
      for (int col : out_.compact_cols[0]) {
        DC_RETURN_NOT_OK(bind_compact(0, col).status());
      }
      p.domain_kind = cal::DomainKind::kNone;  // rows = input rel0 rows
    }

    ColumnEnv env;
    env.resolve = [&](int rel, int col) -> Result<int> {
      auto it = regs.find({rel, col});
      if (it != regs.end()) return it->second;
      return Status::Internal("postjoin: unbound column");
    };
    env.size_ref = [&]() -> Result<int> {
      if (!regs.empty()) return regs.begin()->second;
      return Status::Internal("postjoin: no size-reference column");
    };

    // Post-join filters: boolean map -> select_true -> gather all columns.
    if (!q.post_join_filters.empty()) {
      int boolreg = -1;
      for (const BExprPtr& f : q.post_join_filters) {
        DC_ASSIGN_OR_RETURN(int br, EmitMapExpr(&p, *f, env));
        if (boolreg < 0) {
          boolreg = br;
        } else {
          Instr a;
          a.op = OpCode::kMapAnd;
          a.a = boolreg;
          a.b = br;
          a.dst = p.NewReg();
          p.instrs.push_back(a);
          boolreg = a.dst;
        }
      }
      Instr st;
      st.op = OpCode::kSelectTrue;
      st.a = boolreg;
      st.dst = p.NewReg();
      p.instrs.push_back(st);
      const int cand = st.dst;
      for (auto& [key, reg] : regs) {
        Instr g;
        g.op = OpCode::kGather;
        g.a = reg;
        g.b = cand;
        g.dst = p.NewReg();
        p.instrs.push_back(g);
        reg = g.dst;
      }
      p.domain_reg = cand;
      p.domain_kind = cal::DomainKind::kCand;
    }

    // Fragment outputs.
    for (size_t i = 0; i < fragment_exprs_.size(); ++i) {
      DC_ASSIGN_OR_RETURN(int reg, EmitMapExpr(&p, *fragment_exprs_[i], env));
      p.output_regs.push_back(reg);
      p.output_names.push_back(fragment_names_[i]);
    }
    if (delta) {
      for (int rel = 0; rel < 2; ++rel) {
        p.output_regs.push_back(regs[ord_key(rel)]);
        p.output_names.push_back(rel == 0 ? "bw$l" : "bw$r");
      }
    }
    if (!p.output_regs.empty()) {
      p.domain_reg = p.output_regs[0];
      p.domain_kind = cal::DomainKind::kColumn;
    }
    return Status::OK();
  }

  // --- Finish -------------------------------------------------------------------

  Status BuildFinish() {
    const BoundQuery& q = out_.bound;
    FinishSpec& f = out_.finish;
    f.is_aggregate = q.is_aggregate;
    f.limit = q.limit;
    f.out_names = q.out_names;
    if (q.is_aggregate) {
      for (const BExprPtr& k : q.group_by) f.key_types.push_back(k->type);
      for (const BoundAgg& a : q.aggs) {
        f.agg_layout.emplace_back(a.kind, a.arg_type);
      }
      f.select_exprs = q.select_exprs;
      f.having = q.having;
      f.order_by = q.order_by;
    } else {
      f.num_visible = static_cast<int>(q.select_exprs.size());
      for (size_t i = 0; i < q.order_by.size(); ++i) {
        f.sort_cols.emplace_back(f.num_visible + static_cast<int>(i),
                                 q.order_by[i].second);
      }
    }
    return Status::OK();
  }

  // --- Delta pre-aggregation eligibility -----------------------------------

  /// Fills out_.delta_pre_agg. The push-down applies when the whole tail
  /// above the delta join is a scalar aggregate over bare columns: each
  /// side is then pre-aggregated per join key per basic window and the
  /// delta join pairs (key, count, states) groups, applying the product
  /// rule (AggState::ScaledMerge). Any GROUP BY, post-join filter, or
  /// computed aggregate argument keeps the raw row-pairing path.
  void BuildDeltaPreAgg() {
    const BoundQuery& q = out_.bound;
    auto& pa = out_.delta_pre_agg;
    pa.eligible = false;
    if (!q.is_aggregate || !q.group_by.empty() ||
        !q.post_join_filters.empty()) {
      return;
    }
    std::vector<int> side;
    std::vector<int> slot;
    for (const BoundAgg& a : q.aggs) {
      if (!a.arg) {  // COUNT(*): contribution is cnt_l * cnt_r
        side.push_back(-1);
        slot.push_back(-1);
        continue;
      }
      if (a.arg->kind != BKind::kColRef) return;  // computed arg: raw path
      Result<int> s = CompactSlot(a.arg->rel, a.arg->col);
      if (!s.ok()) return;
      side.push_back(a.arg->rel);
      slot.push_back(*s);
    }
    pa.eligible = true;
    pa.agg_side = std::move(side);
    pa.agg_slot = std::move(slot);
  }

  // --- Classification -----------------------------------------------------

  /// Per-operator incremental-vs-recompute classification, surfaced by
  /// EXPLAIN in incremental mode. Divisibility (slide | size) is decidable
  /// here because windows are part of the bound query; the factory applies
  /// the same rule at registration time (FactoryStats::fell_back_to_full).
  void BuildClassification() {
    const BoundQuery& q = out_.bound;
    auto add = [&](std::string op, bool inc, std::string note) {
      out_.classification.push_back(
          StageClass{std::move(op), inc, std::move(note)});
    };

    bool any_window = false;
    std::vector<const WindowSpec*> windows;
    for (const BoundRelation& rel : q.rels) {
      if (!rel.is_stream) continue;
      windows.push_back(rel.window.has_value() ? &*rel.window : nullptr);
      any_window = any_window || rel.window.has_value();
    }
    const bool inc_ok = IncrementalEligible(windows);
    out_.incremental_eligible = inc_ok;
    const std::string fallback =
        !any_window ? "no window: per-batch, each batch processed once"
                    : "window size not divisible by slide -> full "
                      "re-evaluation every slide";

    int num_streams = 0;
    for (size_t r = 0; r < q.rels.size(); ++r) {
      const BoundRelation& rel = q.rels[r];
      const std::string op = StrFormat("prejoin r%zu", r);
      if (!rel.is_stream) {
        add(op, true, "table compact cached; recomputed on version change");
        continue;
      }
      ++num_streams;
      add(op, inc_ok, inc_ok ? "one fragment per basic window, cached"
                             : fallback);
    }

    if (q.join.has_value()) {
      if (num_streams == 2) {
        std::string note =
            "delta-join: rolling retained-side hash index, O(new) "
            "probes (retained⋈new via index, new⋈new hashed); "
            "partials dropped on expiry";
        if (out_.delta_pre_agg.eligible) {
          note +=
              "; pre-aggregated below the join (groups paired, "
              "product rule)";
        }
        add("join", inc_ok, inc_ok ? note : fallback);
      } else {
        add("join", inc_ok,
            inc_ok ? "stream fragments cached; re-joined against the "
                     "table snapshot on version change"
                   : fallback);
      }
    }

    if (q.is_aggregate) {
      add("aggregate", inc_ok,
          inc_ok ? "per-basic-window partial states, merged per emission"
                 : fallback);
      if (q.having) {
        add("having", inc_ok,
            inc_ok ? "finish tail over merged groups (O(groups), not "
                     "O(window))"
                   : fallback);
      }
      if (!q.order_by.empty()) {
        add("order_by", inc_ok,
            inc_ok ? "finish tail: re-sorts merged groups (group set "
                     "changes every slide)"
                   : fallback);
      }
    } else if (!q.order_by.empty()) {
      add("order_by", inc_ok,
          inc_ok ? "merge of sorted runs (each partial pre-sorted once)"
                 : fallback);
    }
  }

  // --- Sharing signatures (docs/SHARING.md) ---------------------------------

  /// Canonical rendering of a bound expression. With `mask` set, literal
  /// values become `?:<type>` and the value is filed into sig_params in
  /// traversal order — so constant-differing queries collide on the
  /// signature and the registry compares params separately. Unmasked
  /// rendering inlines the value (used for the finish signature, where
  /// only full identity shares).
  void SigExpr(const BExpr& e, bool mask, std::string* out) {
    switch (e.kind) {
      case BKind::kLiteral:
        if (mask) {
          *out += StrFormat("?:%s", TypeName(e.literal.type()));
          out_.sig_params.push_back(e.literal.ToString());
        } else {
          *out += e.literal.ToString();
        }
        return;
      case BKind::kColRef:
        *out += StrFormat("r%d.c%d", e.rel, e.col);
        return;
      case BKind::kKeyRef:
        *out += StrFormat("key#%d", e.index);
        return;
      case BKind::kAggRef:
        *out += StrFormat("agg#%d", e.index);
        return;
      case BKind::kArith:
        *out += "(";
        SigExpr(*e.children[0], mask, out);
        *out += StrFormat(" %s ", ArithOpName(e.arith_op));
        SigExpr(*e.children[1], mask, out);
        *out += ")";
        return;
      case BKind::kCmp:
        *out += "(";
        SigExpr(*e.children[0], mask, out);
        *out += StrFormat(" %s ", CmpOpName(e.cmp_op));
        SigExpr(*e.children[1], mask, out);
        *out += ")";
        return;
      case BKind::kAnd:
      case BKind::kOr:
        *out += "(";
        SigExpr(*e.children[0], mask, out);
        *out += e.kind == BKind::kAnd ? " AND " : " OR ";
        SigExpr(*e.children[1], mask, out);
        *out += ")";
        return;
      case BKind::kNot:
        *out += "(NOT ";
        SigExpr(*e.children[0], mask, out);
        *out += ")";
        return;
    }
  }

  /// Fills prefix_signature / finish_signature / sig_params. The prefix
  /// covers everything that shapes the per-basic-window fragment;
  /// binder-resolved structures (not SQL text) make the rendering
  /// canonical: aliases are gone, columns are (rel, col) indices, filters
  /// appear in pushed-down order, aggregates are deduplicated. Window
  /// geometry is deliberately excluded (only ROWS-vs-RANGE is part of the
  /// prefix) so a shared node can serve subsumable geometries.
  void BuildSignatures() {
    const BoundQuery& q = out_.bound;
    std::string p;
    for (size_t r = 0; r < q.rels.size(); ++r) {
      const BoundRelation& rel = q.rels[r];
      p += StrFormat("rel%zu=%s:%s%s;", r, rel.is_stream ? "stream" : "table",
                     rel.name.c_str(),
                     rel.window ? (rel.window->rows ? "|rows" : "|range")
                                : "");
    }
    for (size_t r = 0; r < q.rel_filters.size(); ++r) {
      for (const BExprPtr& f : q.rel_filters[r]) {
        p += StrFormat("filter%zu=", r);
        SigExpr(*f, /*mask=*/true, &p);
        p += ";";
      }
    }
    if (q.join.has_value()) {
      p += "join=";
      SigExpr(*q.join->left, /*mask=*/true, &p);
      p += "=";
      SigExpr(*q.join->right, /*mask=*/true, &p);
      p += ";";
    }
    for (const BExprPtr& f : q.post_join_filters) {
      p += "postfilter=";
      SigExpr(*f, /*mask=*/true, &p);
      p += ";";
    }
    for (const BExprPtr& g : q.group_by) {
      p += "key=";
      SigExpr(*g, /*mask=*/true, &p);
      p += ";";
    }
    for (const BoundAgg& a : q.aggs) {
      p += StrFormat("agg=%s(", ops::AggKindName(a.kind));
      if (a.arg) {
        SigExpr(*a.arg, /*mask=*/true, &p);
      } else {
        p += "*";
      }
      p += StrFormat("):%s;", TypeName(a.out_type));
    }
    if (!q.is_aggregate) {
      // Non-aggregate fragments materialize the select list and the
      // hidden sort columns, so both belong to the prefix.
      for (const BExprPtr& s : q.select_exprs) {
        p += "sel=";
        SigExpr(*s, /*mask=*/true, &p);
        p += ";";
      }
      for (const auto& [e, asc] : q.order_by) {
        p += asc ? "sortA=" : "sortD=";
        SigExpr(*e, /*mask=*/true, &p);
        p += ";";
      }
    }
    out_.prefix_signature = std::move(p);

    // Finish tail: only full identity shares it, so literals stay inline.
    std::string t;
    if (q.is_aggregate) {
      for (const BExprPtr& s : q.select_exprs) {
        t += "sel=";
        SigExpr(*s, /*mask=*/false, &t);
        t += ";";
      }
      if (q.having) {
        t += "having=";
        SigExpr(*q.having, /*mask=*/false, &t);
        t += ";";
      }
      for (const auto& [e, asc] : q.order_by) {
        t += asc ? "sortA=" : "sortD=";
        SigExpr(*e, /*mask=*/false, &t);
        t += ";";
      }
    }
    t += StrFormat("limit=%lld;", static_cast<long long>(q.limit));
    for (const std::string& n : q.out_names) t += "name=" + n + ";";
    out_.finish_signature = std::move(t);
  }

  CompiledQuery out_;
  std::vector<BExprPtr> fragment_exprs_;
  std::vector<std::string> fragment_names_;
  std::vector<std::vector<int>> needed_;
};

}  // namespace

Result<CompiledQuery> Compile(BoundQuery q) {
  Compiler c(std::move(q));
  return c.Run();
}

}  // namespace dc::plan
