// Copyright 2026 The DataCell Authors.
//
// Rule-based optimizer over the bound canonical form. Predicate pushdown
// and projection pruning are structural (binder/compiler); the passes here
// are the remaining classic rewrites. Each applied rule is recorded so the
// demo's plan pane can show what the optimizer did.

#ifndef DATACELL_PLAN_OPTIMIZER_H_
#define DATACELL_PLAN_OPTIMIZER_H_

#include <string>
#include <vector>

#include "plan/bound.h"
#include "util/result.h"

namespace dc::plan {

/// Report of applied rewrites (explain pane).
struct OptimizerReport {
  std::vector<std::string> applied;

  std::string ToString() const;
};

/// Applies, in order:
///   1. not-pushdown:        NOT(a cmp b) -> a !cmp b; double-NOT removal
///   2. trivial-filter:      drop WHERE TRUE conjuncts; a FALSE conjunct
///                           collapses the relation's filters to FALSE
///   3. filter-ordering:     per relation, order conjuncts cheapest-first
///                           (equality < range < other; column-literal
///                           before column-column before complex)
///   4. const-cmp-folding:   literal-literal comparisons -> TRUE/FALSE
OptimizerReport Optimize(BoundQuery* q);

}  // namespace dc::plan

#endif  // DATACELL_PLAN_OPTIMIZER_H_
