#include "plan/optimizer.h"

#include <algorithm>

#include "util/string_util.h"

namespace dc::plan {

namespace {

CmpOp NegateCmp(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return CmpOp::kNe;
    case CmpOp::kNe:
      return CmpOp::kEq;
    case CmpOp::kLt:
      return CmpOp::kGe;
    case CmpOp::kLe:
      return CmpOp::kGt;
    case CmpOp::kGt:
      return CmpOp::kLe;
    case CmpOp::kGe:
      return CmpOp::kLt;
  }
  return op;
}

/// NOT(cmp) -> negated cmp; NOT(NOT(x)) -> x. Returns the rewritten node.
BExprPtr PushdownNot(const BExprPtr& e, bool* changed) {
  if (!e) return e;
  if (e->kind == BKind::kNot) {
    const BExprPtr& inner = e->children[0];
    if (inner->kind == BKind::kCmp) {
      *changed = true;
      auto out = std::make_shared<BExpr>(*inner);
      out->cmp_op = NegateCmp(inner->cmp_op);
      out->children = {PushdownNot(inner->children[0], changed),
                       PushdownNot(inner->children[1], changed)};
      return out;
    }
    if (inner->kind == BKind::kNot) {
      *changed = true;
      return PushdownNot(inner->children[0], changed);
    }
  }
  if (e->children.empty()) return e;
  auto out = std::make_shared<BExpr>(*e);
  for (auto& c : out->children) c = PushdownNot(c, changed);
  return out;
}

/// literal cmp literal -> TRUE/FALSE literal.
BExprPtr FoldConstCmp(const BExprPtr& e, bool* changed) {
  if (!e) return e;
  auto out = std::make_shared<BExpr>(*e);
  for (auto& c : out->children) c = FoldConstCmp(c, changed);
  if (out->kind == BKind::kCmp &&
      out->children[0]->kind == BKind::kLiteral &&
      out->children[1]->kind == BKind::kLiteral) {
    *changed = true;
    const int cmp =
        out->children[0]->literal.Compare(out->children[1]->literal);
    return BLiteral(Value::Bool(CmpHolds(out->cmp_op, cmp)));
  }
  return out;
}

bool IsLiteralBool(const BExpr& e, bool value) {
  return e.kind == BKind::kLiteral && e.type == TypeId::kBool &&
         e.literal.AsBool() == value;
}

/// Filter ordering cost: lower runs first.
int FilterCost(const BExpr& e) {
  if (e.kind == BKind::kCmp) {
    const auto& l = *e.children[0];
    const auto& r = *e.children[1];
    const bool col_lit =
        (l.kind == BKind::kColRef && r.kind == BKind::kLiteral) ||
        (l.kind == BKind::kLiteral && r.kind == BKind::kColRef);
    const bool cols = l.kind == BKind::kColRef && r.kind == BKind::kColRef;
    if (col_lit && e.cmp_op == CmpOp::kEq) return 0;  // point predicate
    if (col_lit) return 1;                            // range predicate
    if (cols) return 2;                               // column-column
    return 3;                                         // computed comparison
  }
  return 4;  // OR / NOT / complex boolean structure
}

}  // namespace

std::string OptimizerReport::ToString() const {
  if (applied.empty()) return "(no rewrites)";
  std::string out;
  for (const std::string& r : applied) out += "  * " + r + "\n";
  return out;
}

OptimizerReport Optimize(BoundQuery* q) {
  OptimizerReport report;

  bool not_changed = false;
  bool fold_changed = false;
  auto rewrite = [&](BExprPtr& e) {
    e = PushdownNot(e, &not_changed);
    e = FoldConstCmp(e, &fold_changed);
  };
  for (auto& filters : q->rel_filters) {
    for (auto& f : filters) rewrite(f);
  }
  for (auto& f : q->post_join_filters) rewrite(f);
  if (q->having) rewrite(q->having);
  if (not_changed) report.applied.push_back("not-pushdown");
  if (fold_changed) report.applied.push_back("const-cmp-folding");

  // Trivial filter elimination.
  bool trivial = false;
  for (auto& filters : q->rel_filters) {
    bool always_false = false;
    for (const auto& f : filters) {
      if (IsLiteralBool(*f, false)) always_false = true;
    }
    if (always_false) {
      // Keep a single FALSE conjunct: the compiler emits an empty-candidate
      // chain and everything downstream sees zero rows.
      filters.clear();
      filters.push_back(BLiteral(Value::Bool(false)));
      trivial = true;
      continue;
    }
    const size_t before = filters.size();
    filters.erase(std::remove_if(filters.begin(), filters.end(),
                                 [](const BExprPtr& f) {
                                   return IsLiteralBool(*f, true);
                                 }),
                  filters.end());
    if (filters.size() != before) trivial = true;
  }
  if (trivial) report.applied.push_back("trivial-filter");

  // Cheapest-first conjunct ordering.
  bool reordered = false;
  for (auto& filters : q->rel_filters) {
    if (std::is_sorted(filters.begin(), filters.end(),
                       [](const BExprPtr& a, const BExprPtr& b) {
                         return FilterCost(*a) < FilterCost(*b);
                       })) {
      continue;
    }
    std::stable_sort(filters.begin(), filters.end(),
                     [](const BExprPtr& a, const BExprPtr& b) {
                       return FilterCost(*a) < FilterCost(*b);
                     });
    reordered = true;
  }
  if (reordered) report.applied.push_back("filter-ordering");

  return report;
}

}  // namespace dc::plan
