#include "plan/cal.h"

#include "util/string_util.h"

namespace dc::cal {

namespace {
std::string Lit(const Value& v) {
  return v.type() == TypeId::kStr ? StrFormat("'%s'", v.AsStr().c_str())
                                  : v.ToString();
}
}  // namespace

std::string Instr::ToString() const {
  switch (op) {
    case OpCode::kBindCol:
      return StrFormat("V%d := %%bind%%.col(r%d, \"%s\")", dst, rel,
                       note.c_str());
    case OpCode::kBindCand:
      return StrFormat("C%d := %%bind%%.candidates(r%d)", dst, rel);
    case OpCode::kSelectCmp:
      return b >= 0 ? StrFormat("C%d := algebra.select(V%d, %s, %s; C%d)",
                                dst, a, CmpOpName(cmp), Lit(imm).c_str(), b)
                    : StrFormat("C%d := algebra.select(V%d, %s, %s)", dst, a,
                                CmpOpName(cmp), Lit(imm).c_str());
    case OpCode::kSelectCmpCol:
      return c >= 0 ? StrFormat("C%d := algebra.select(V%d, %s, V%d; C%d)",
                                dst, a, CmpOpName(cmp), b, c)
                    : StrFormat("C%d := algebra.select(V%d, %s, V%d)", dst, a,
                                CmpOpName(cmp), b);
    case OpCode::kSelectTrue:
      return b >= 0
                 ? StrFormat("C%d := algebra.select_true(V%d; C%d)", dst, a, b)
                 : StrFormat("C%d := algebra.select_true(V%d)", dst, a);
    case OpCode::kCandAnd:
      return StrFormat("C%d := algebra.intersect(C%d, C%d)", dst, a, b);
    case OpCode::kCandOr:
      return StrFormat("C%d := algebra.union(C%d, C%d)", dst, a, b);
    case OpCode::kCandDiff:
      return StrFormat("C%d := algebra.difference(C%d, C%d)", dst, a, b);
    case OpCode::kGather:
      return StrFormat("V%d := algebra.project(V%d; C%d)", dst, a, b);
    case OpCode::kJoin:
      return StrFormat("(O%d, O%d) := algebra.join(V%d, V%d)", dst, dst2, a,
                       b);
    case OpCode::kDeltaJoin:
      return StrFormat(
          "(O%d, O%d) := datacell.delta_join(V%d, V%d)  "
          "# new⋈old ∪ old⋈new ∪ new⋈new",
          dst, dst2, a, b);
    case OpCode::kFetch:
      return StrFormat("V%d := algebra.fetch(V%d, O%d)", dst, a, b);
    case OpCode::kMapArith:
      return StrFormat("V%d := batcalc.%s(V%d, V%d)", dst,
                       ArithOpName(arith), a, b);
    case OpCode::kMapArithConst:
      return lit_left
                 ? StrFormat("V%d := batcalc.%s(%s, V%d)", dst,
                             ArithOpName(arith), Lit(imm).c_str(), a)
                 : StrFormat("V%d := batcalc.%s(V%d, %s)", dst,
                             ArithOpName(arith), a, Lit(imm).c_str());
    case OpCode::kMapCmp:
      return StrFormat("V%d := batcalc.cmp(V%d, %s, V%d)", dst, a,
                       CmpOpName(cmp), b);
    case OpCode::kMapCmpConst:
      return StrFormat("V%d := batcalc.cmp(V%d, %s, %s)", dst, a,
                       CmpOpName(cmp), Lit(imm).c_str());
    case OpCode::kMapAnd:
      return StrFormat("V%d := batcalc.and(V%d, V%d)", dst, a, b);
    case OpCode::kMapOr:
      return StrFormat("V%d := batcalc.or(V%d, V%d)", dst, a, b);
    case OpCode::kMapNot:
      return StrFormat("V%d := batcalc.not(V%d)", dst, a);
    case OpCode::kMapCast:
      return StrFormat("V%d := batcalc.cast(V%d, :%s)", dst, a,
                       TypeName(cast_type));
    case OpCode::kConstCol:
      return StrFormat("V%d := batcalc.const(%s, count(V%d))", dst,
                       Lit(imm).c_str(), a);
  }
  return "?";
}

std::string Program::ToString(const std::string& bind_name) const {
  std::string out;
  for (const Instr& i : instrs) {
    std::string line = "  " + i.ToString();
    // Substitute the bind module name (scan vs basket).
    const std::string placeholder = "%bind%";
    size_t pos;
    while ((pos = line.find(placeholder)) != std::string::npos) {
      line.replace(pos, placeholder.size(), bind_name);
    }
    out += line + "\n";
  }
  out += "  return (";
  for (size_t i = 0; i < output_regs.size(); ++i) {
    if (i > 0) out += ", ";
    out += StrFormat("V%d as \"%s\"", output_regs[i],
                     output_names.size() > i ? output_names[i].c_str() : "?");
  }
  out += ")\n";
  return out;
}

}  // namespace dc::cal
