// Copyright 2026 The DataCell Authors.
//
// RollingJoinIndex: an incrementally maintained hash index over the
// retained side of a stream-stream delta join. The retained window is a
// rolling concatenation of basic windows: new rows are appended at the
// back (Append), expired prefixes are marked dead (EvictBelow) and
// reclaimed lazily (Rebase, coupled with the owner's physical trim so
// positions stay aligned). Probing with the newest basic window's keys is
// then O(new rows + matches) per emission — the index is never rebuilt,
// which is what turns the delta join's probe cost from O(window) into
// O(new basic window).

#ifndef DATACELL_BAT_OPS_INDEX_H_
#define DATACELL_BAT_OPS_INDEX_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "bat/bat.h"
#include "util/result.h"

namespace dc::ops {

class RollingJoinIndex {
 public:
  /// `key_domain` is the joint equality domain of both join sides
  /// (JoinKeyDomain in ops_join.h): kI64, kF64 (numeric promotion) or
  /// kStr. String keys are stored owned — the indexed column's heap may
  /// be rebuilt by trims.
  explicit RollingJoinIndex(TypeId key_domain = TypeId::kI64)
      : domain_(key_domain) {}

  /// Drops all entries and switches the key domain.
  void Reset(TypeId key_domain);

  TypeId key_domain() const { return domain_; }

  /// Indexes rows [from, to) of `keys` under positions
  /// [next_pos(), next_pos() + to - from). Positions are dense append
  /// order — the caller appends the same rows to its rolling
  /// concatenation, so a position is a row id there.
  Status Append(const Bat& keys, uint64_t from, uint64_t to);

  /// Marks every position below `pos` dead (its basic window left the
  /// window). Dead entries are skipped by Probe and reclaimed by Rebase.
  void EvictBelow(uint64_t pos);

  /// Physically erases dead entries and shifts surviving positions down
  /// by the eviction threshold; returns that threshold (the number of
  /// rows the owner must drop from the front of its rolling
  /// concatenation in the same breath).
  uint64_t Rebase();

  /// For every probe row i in [from, to) and every live indexed position
  /// p with an equal key, appends i to `probe_out` and p to `pos_out`
  /// (positions ascending per probe row). Cost: O(to - from + matches).
  Status Probe(const Bat& probe, uint64_t from, uint64_t to,
               std::vector<Oid>* probe_out, std::vector<Oid>* pos_out) const;

  /// Next position Append would assign (== rows appended since Rebase).
  uint64_t next_pos() const { return next_pos_; }
  /// Positions below this are dead.
  uint64_t live_from() const { return live_from_; }
  uint64_t live_entries() const { return next_pos_ - live_from_; }
  uint64_t dead_entries() const { return live_from_; }

 private:
  struct StrHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const;
  };

  TypeId domain_;
  uint64_t next_pos_ = 0;
  uint64_t live_from_ = 0;
  // One of these is active, keyed by domain_. Position vectors are sorted
  // (append order); Probe binary-searches past the dead prefix.
  std::unordered_map<int64_t, std::vector<uint64_t>> i64_map_;
  std::unordered_map<double, std::vector<uint64_t>> f64_map_;
  std::unordered_map<std::string, std::vector<uint64_t>, StrHash,
                     std::equal_to<>>
      str_map_;
};

}  // namespace dc::ops

#endif  // DATACELL_BAT_OPS_INDEX_H_
