// Copyright 2026 The DataCell Authors.
//
// Hashing for join/group-by hash tables. 64-bit mix for integers and
// FNV-1a for strings; combiner for multi-key grouping.

#ifndef DATACELL_BAT_HASH_H_
#define DATACELL_BAT_HASH_H_

#include <cstdint>
#include <string_view>

namespace dc {

/// Finalizer from MurmurHash3; good avalanche for integer keys.
inline uint64_t HashU64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

inline uint64_t HashI64(int64_t x) { return HashU64(static_cast<uint64_t>(x)); }

inline uint64_t HashDouble(double d) {
  // Normalize -0.0 to +0.0 so equal doubles hash equally.
  if (d == 0.0) d = 0.0;
  uint64_t bits;
  __builtin_memcpy(&bits, &d, sizeof(bits));
  return HashU64(bits);
}

inline uint64_t HashBytes(std::string_view s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return HashU64(h);
}

inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return HashU64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

}  // namespace dc

#endif  // DATACELL_BAT_HASH_H_
