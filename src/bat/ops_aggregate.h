// Copyright 2026 The DataCell Authors.
//
// Aggregation: scalar (whole-input) and grouped, plus the mergeable partial
// state that powers DataCell's incremental sliding-window mode (partial
// aggregates per basic window, merged per emission — DESIGN.md §4.6).

#ifndef DATACELL_BAT_OPS_AGGREGATE_H_
#define DATACELL_BAT_OPS_AGGREGATE_H_

#include <cstdint>
#include <string>

#include "bat/bat.h"
#include "bat/candidates.h"
#include "util/result.h"

namespace dc::ops {

/// Supported aggregate functions.
enum class AggKind { kCount, kSum, kAvg, kMin, kMax };

const char* AggKindName(AggKind k);

/// Result type of `kind` over a column of type `input` (COUNT->I64,
/// AVG->F64, SUM over I64->I64, ...). `input` is ignored for COUNT.
Result<TypeId> AggResultType(AggKind kind, TypeId input);

/// Mergeable partial aggregate state. One AggState summarizes any subset of
/// rows; Merge() combines disjoint subsets. This is the unit DataCell
/// caches per basic window.
struct AggState {
  uint64_t count = 0;
  int64_t isum = 0;   // running sum for int-like inputs
  double dsum = 0;    // running sum for f64 inputs
  bool has_minmax = false;
  Value min;
  Value max;

  /// Folds one value in.
  void Add(const Value& v);
  /// Folds a whole column subset in (bulk path).
  void AddColumn(const Bat& col, const Candidates* cand);
  /// Combines another disjoint partial state.
  void Merge(const AggState& other);
  /// Extracts the final value for `kind` given the input column type.
  /// Empty input yields COUNT=0, SUM=0, AVG=0, MIN/MAX=0/"" (no NULLs).
  Value Finalize(AggKind kind, TypeId input_type) const;
};

/// Scalar aggregate of `kind` over `col` restricted to `cand`.
/// For COUNT, `col` may be null (COUNT(*)): pass the row count via `cand`
/// or `domain_size`.
Result<Value> ScalarAgg(AggKind kind, const Bat* col, const Candidates* cand,
                        uint64_t domain_size);

}  // namespace dc::ops

#endif  // DATACELL_BAT_OPS_AGGREGATE_H_
