// Copyright 2026 The DataCell Authors.
//
// Aggregation: scalar (whole-input) and grouped, plus the mergeable partial
// state that powers DataCell's incremental sliding-window mode (partial
// aggregates per basic window, merged per emission — DESIGN.md §4.6).

#ifndef DATACELL_BAT_OPS_AGGREGATE_H_
#define DATACELL_BAT_OPS_AGGREGATE_H_

#include <cstdint>
#include <string>

#include "bat/bat.h"
#include "bat/candidates.h"
#include "util/result.h"

namespace dc::ops {

/// Supported aggregate functions.
enum class AggKind { kCount, kSum, kAvg, kMin, kMax };

const char* AggKindName(AggKind k);

/// Result type of `kind` over a column of type `input` (COUNT->I64,
/// AVG->F64, SUM over I64->I64, ...). `input` is ignored for COUNT.
Result<TypeId> AggResultType(AggKind kind, TypeId input);

/// Mergeable partial aggregate state. One AggState summarizes any subset of
/// rows; Merge() combines disjoint subsets. This is the unit DataCell
/// caches per basic window.
struct AggState {
  uint64_t count = 0;
  int64_t isum = 0;   // running sum for int-like inputs
  double dsum = 0;    // running sum for f64 inputs
  bool has_minmax = false;
  Value min;
  Value max;

  /// Folds one value in.
  void Add(const Value& v);
  /// Folds one cell of `col` in (typed hot path: no Value is materialized
  /// for numeric columns unless a new extremum is recorded). Callers whose
  /// aggregate never reads the extrema pass `with_minmax = false` to skip
  /// the tracking entirely (the delta pre-agg per-row fold).
  void AddCell(const Bat& col, Oid o, bool with_minmax = true);
  /// Folds a whole column subset in (bulk path).
  void AddColumn(const Bat& col, const Candidates* cand);
  /// Combines another disjoint partial state.
  void Merge(const AggState& other);
  /// Combines `other` as if it were merged `times` times over — the
  /// product rule of delta pre-aggregation: when a per-key group on one
  /// join side pairs with `times` rows on the other side, every one of
  /// its rows appears in `times` join pairs. Sums and counts scale;
  /// MIN/MAX merge unscaled (repetition does not move extrema). Callers
  /// whose aggregate never reads the extrema (SUM/AVG/COUNT) pass
  /// `with_minmax = false` to skip the boxed-Value compares — this is the
  /// innermost loop of the delta pre-agg pairing.
  void ScaledMerge(const AggState& other, uint64_t times,
                   bool with_minmax = true);
  /// Extracts the final value for `kind` given the input column type.
  /// Empty input follows SQL: COUNT=0, SUM/AVG/MIN/MAX=NULL.
  Value Finalize(AggKind kind, TypeId input_type) const;
};

/// Scalar aggregate of `kind` over `col` restricted to `cand`.
/// For COUNT, `col` may be null (COUNT(*)): pass the row count via `cand`
/// or `domain_size`.
Result<Value> ScalarAgg(AggKind kind, const Bat* col, const Candidates* cand,
                        uint64_t domain_size);

}  // namespace dc::ops

#endif  // DATACELL_BAT_OPS_AGGREGATE_H_
