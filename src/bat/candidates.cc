#include "bat/candidates.h"

#include <algorithm>

#include "util/string_util.h"

namespace dc {

Candidates Candidates::FromVector(std::vector<Oid> oids) {
  // Normalize a contiguous run back to the dense representation so that
  // downstream operators keep their fast paths.
  if (!oids.empty() && oids.back() - oids.front() + 1 == oids.size()) {
    return Range(oids.front(), oids.size());
  }
  Candidates c;
  c.dense_ = false;
  c.oids_ = std::move(oids);
  return c;
}

bool Candidates::Contains(Oid oid) const {
  if (dense_) return oid >= first_ && oid < first_ + count_;
  return std::binary_search(oids_.begin(), oids_.end(), oid);
}

Candidates Candidates::Intersect(const Candidates& a, const Candidates& b) {
  if (a.dense_ && b.dense_) {
    const Oid lo = std::max(a.first_, b.first_);
    const Oid hi = std::min(a.first_ + a.count_, b.first_ + b.count_);
    return hi > lo ? Range(lo, hi - lo) : Candidates();
  }
  std::vector<Oid> out;
  out.reserve(std::min(a.size(), b.size()));
  uint64_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const Oid x = a.At(i), y = b.At(j);
    if (x == y) {
      out.push_back(x);
      ++i;
      ++j;
    } else if (x < y) {
      ++i;
    } else {
      ++j;
    }
  }
  return FromVector(std::move(out));
}

Candidates Candidates::Union(const Candidates& a, const Candidates& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  std::vector<Oid> out;
  out.reserve(a.size() + b.size());
  uint64_t i = 0, j = 0;
  while (i < a.size() || j < b.size()) {
    if (i >= a.size()) {
      out.push_back(b.At(j++));
    } else if (j >= b.size()) {
      out.push_back(a.At(i++));
    } else {
      const Oid x = a.At(i), y = b.At(j);
      if (x == y) {
        out.push_back(x);
        ++i;
        ++j;
      } else if (x < y) {
        out.push_back(x);
        ++i;
      } else {
        out.push_back(y);
        ++j;
      }
    }
  }
  return FromVector(std::move(out));
}

Candidates Candidates::Difference(const Candidates& domain,
                                  const Candidates& a) {
  std::vector<Oid> out;
  out.reserve(domain.size());
  uint64_t j = 0;
  for (uint64_t i = 0; i < domain.size(); ++i) {
    const Oid x = domain.At(i);
    while (j < a.size() && a.At(j) < x) ++j;
    if (j < a.size() && a.At(j) == x) continue;
    out.push_back(x);
  }
  return FromVector(std::move(out));
}

std::vector<Oid> Candidates::ToVector() const {
  std::vector<Oid> out;
  out.reserve(size());
  ForEach([&](Oid o) { out.push_back(o); });
  return out;
}

std::string Candidates::ToString() const {
  if (dense_) {
    if (count_ == 0) return "[]";
    return StrFormat("[%llu..%llu]", static_cast<unsigned long long>(first_),
                     static_cast<unsigned long long>(first_ + count_ - 1));
  }
  std::string out = "[";
  for (size_t i = 0; i < oids_.size(); ++i) {
    if (i > 0) out += ",";
    if (i >= 16) {
      out += StrFormat("...(%zu)", oids_.size());
      break;
    }
    out += StrFormat("%llu", static_cast<unsigned long long>(oids_[i]));
  }
  out += "]";
  return out;
}

}  // namespace dc
