#include "bat/ops_index.h"

#include <algorithm>

#include "bat/hash.h"
#include "util/string_util.h"

namespace dc::ops {

namespace {

// -0.0 folds to +0.0 so equal doubles land in one bucket regardless of the
// hash implementation (mirrors HashDouble).
inline double NormalizeF64(double d) { return d == 0.0 ? 0.0 : d; }

// First live entry of a (sorted) position vector.
inline size_t LiveBegin(const std::vector<uint64_t>& positions,
                        uint64_t live_from) {
  if (positions.empty() || positions.front() >= live_from) return 0;
  return std::lower_bound(positions.begin(), positions.end(), live_from) -
         positions.begin();
}

}  // namespace

size_t RollingJoinIndex::StrHash::operator()(std::string_view s) const {
  return HashBytes(s);
}

void RollingJoinIndex::Reset(TypeId key_domain) {
  domain_ = key_domain;
  next_pos_ = 0;
  live_from_ = 0;
  i64_map_.clear();
  f64_map_.clear();
  str_map_.clear();
}

Status RollingJoinIndex::Append(const Bat& keys, uint64_t from, uint64_t to) {
  if (to > keys.size() || from > to) {
    return Status::InvalidArgument("RollingJoinIndex: append out of range");
  }
  switch (domain_) {
    case TypeId::kI64: {
      if (!StoredAsI64(keys.type())) {
        return Status::TypeError("RollingJoinIndex: i64 domain needs i64 keys");
      }
      auto data = keys.I64Data();
      for (uint64_t i = from; i < to; ++i) {
        i64_map_[data[i]].push_back(next_pos_++);
      }
      return Status::OK();
    }
    case TypeId::kF64: {
      if (!IsNumeric(keys.type())) {
        return Status::TypeError(
            "RollingJoinIndex: f64 domain needs numeric keys");
      }
      const bool as_i64 = StoredAsI64(keys.type());
      for (uint64_t i = from; i < to; ++i) {
        const double k = as_i64 ? static_cast<double>(keys.I64Data()[i])
                                : keys.F64Data()[i];
        f64_map_[NormalizeF64(k)].push_back(next_pos_++);
      }
      return Status::OK();
    }
    case TypeId::kStr: {
      if (keys.type() != TypeId::kStr) {
        return Status::TypeError("RollingJoinIndex: str domain needs str keys");
      }
      for (uint64_t i = from; i < to; ++i) {
        auto it = str_map_.find(keys.StrAt(i));
        if (it == str_map_.end()) {
          it = str_map_.emplace(std::string(keys.StrAt(i)),
                                std::vector<uint64_t>())
                   .first;
        }
        it->second.push_back(next_pos_++);
      }
      return Status::OK();
    }
    default:
      return Status::TypeError(StrFormat("RollingJoinIndex: bad domain %s",
                                         TypeName(domain_)));
  }
}

void RollingJoinIndex::EvictBelow(uint64_t pos) {
  live_from_ = std::max(live_from_, std::min(pos, next_pos_));
}

uint64_t RollingJoinIndex::Rebase() {
  const uint64_t shift = live_from_;
  if (shift == 0) return 0;
  auto rebase_map = [&](auto& map) {
    for (auto it = map.begin(); it != map.end();) {
      std::vector<uint64_t>& positions = it->second;
      positions.erase(positions.begin(),
                      positions.begin() + LiveBegin(positions, shift));
      if (positions.empty()) {
        it = map.erase(it);
        continue;
      }
      for (uint64_t& p : positions) p -= shift;
      ++it;
    }
  };
  rebase_map(i64_map_);
  rebase_map(f64_map_);
  rebase_map(str_map_);
  next_pos_ -= shift;
  live_from_ = 0;
  return shift;
}

Status RollingJoinIndex::Probe(const Bat& probe, uint64_t from, uint64_t to,
                               std::vector<Oid>* probe_out,
                               std::vector<Oid>* pos_out) const {
  if (to > probe.size() || from > to) {
    return Status::InvalidArgument("RollingJoinIndex: probe out of range");
  }
  auto emit = [&](uint64_t i, const std::vector<uint64_t>& positions) {
    for (size_t k = LiveBegin(positions, live_from_); k < positions.size();
         ++k) {
      probe_out->push_back(static_cast<Oid>(i));
      pos_out->push_back(static_cast<Oid>(positions[k]));
    }
  };
  switch (domain_) {
    case TypeId::kI64: {
      if (!StoredAsI64(probe.type())) {
        return Status::TypeError("RollingJoinIndex: i64 domain needs i64 keys");
      }
      auto data = probe.I64Data();
      for (uint64_t i = from; i < to; ++i) {
        auto it = i64_map_.find(data[i]);
        if (it != i64_map_.end()) emit(i, it->second);
      }
      return Status::OK();
    }
    case TypeId::kF64: {
      if (!IsNumeric(probe.type())) {
        return Status::TypeError(
            "RollingJoinIndex: f64 domain needs numeric keys");
      }
      const bool as_i64 = StoredAsI64(probe.type());
      for (uint64_t i = from; i < to; ++i) {
        const double k = as_i64 ? static_cast<double>(probe.I64Data()[i])
                                : probe.F64Data()[i];
        auto it = f64_map_.find(NormalizeF64(k));
        if (it != f64_map_.end()) emit(i, it->second);
      }
      return Status::OK();
    }
    case TypeId::kStr: {
      if (probe.type() != TypeId::kStr) {
        return Status::TypeError("RollingJoinIndex: str domain needs str keys");
      }
      for (uint64_t i = from; i < to; ++i) {
        auto it = str_map_.find(probe.StrAt(i));
        if (it != str_map_.end()) emit(i, it->second);
      }
      return Status::OK();
    }
    default:
      return Status::TypeError(StrFormat("RollingJoinIndex: bad domain %s",
                                         TypeName(domain_)));
  }
}

}  // namespace dc::ops
