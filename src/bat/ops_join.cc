#include "bat/ops_join.h"

#include <string_view>
#include <unordered_map>

#include "bat/hash.h"
#include "util/string_util.h"

namespace dc::ops {

namespace {

struct SvHash {
  size_t operator()(std::string_view s) const { return HashBytes(s); }
};

template <typename K, typename LKey, typename RKey>
JoinResult JoinTyped(uint64_t left_size, uint64_t right_size,
                     const Candidates* lcand, const Candidates* rcand,
                     LKey&& lkey, RKey&& rkey) {
  std::unordered_multimap<K, Oid,
                          std::conditional_t<std::is_same_v<K, std::string_view>,
                                             SvHash, std::hash<K>>>
      table;
  const uint64_t build_n = rcand ? rcand->size() : right_size;
  table.reserve(build_n);
  auto build = [&](Oid o) { table.emplace(rkey(o), o); };
  if (rcand) {
    rcand->ForEach(build);
  } else {
    for (Oid o = 0; o < right_size; ++o) build(o);
  }

  JoinResult out;
  auto probe = [&](Oid o) {
    auto [it, end] = table.equal_range(lkey(o));
    for (; it != end; ++it) {
      out.left.push_back(o);
      out.right.push_back(it->second);
    }
  };
  if (lcand) {
    lcand->ForEach(probe);
  } else {
    for (Oid o = 0; o < left_size; ++o) probe(o);
  }
  return out;
}

}  // namespace

Result<JoinResult> HashJoin(const Bat& left, const Bat& right,
                            const Candidates* lcand, const Candidates* rcand) {
  const TypeId lt = left.type();
  const TypeId rt = right.type();
  if (StoredAsI64(lt) && StoredAsI64(rt)) {
    auto dl = left.I64Data();
    auto dr = right.I64Data();
    return JoinTyped<int64_t>(
        left.size(), right.size(), lcand, rcand,
        [dl](Oid o) { return dl[o]; }, [dr](Oid o) { return dr[o]; });
  }
  if (IsNumeric(lt) && IsNumeric(rt)) {
    auto get = [](const Bat& b) {
      return [&b](Oid o) {
        return StoredAsI64(b.type()) ? static_cast<double>(b.I64Data()[o])
                                     : b.F64Data()[o];
      };
    };
    return JoinTyped<double>(left.size(), right.size(), lcand, rcand,
                             get(left), get(right));
  }
  if (lt == TypeId::kStr && rt == TypeId::kStr) {
    return JoinTyped<std::string_view>(
        left.size(), right.size(), lcand, rcand,
        [&left](Oid o) { return left.StrAt(o); },
        [&right](Oid o) { return right.StrAt(o); });
  }
  return Status::TypeError(StrFormat("cannot equi-join %s with %s",
                                     TypeName(lt), TypeName(rt)));
}

Result<JoinResult> DeltaJoin(const Bat& left, uint64_t left_old,
                             const Bat& right, uint64_t right_old) {
  if (left_old > left.size() || right_old > right.size()) {
    return Status::InvalidArgument("DeltaJoin: old split beyond column size");
  }
  if (left_old == 0 || right_old == 0) {
    return HashJoin(left, right);
  }
  // old_l ⋈ new_r: build over the new right rows, probe the old left rows.
  const Candidates l_old = Candidates::Range(0, left_old);
  const Candidates r_new =
      Candidates::Range(right_old, right.size() - right_old);
  DC_ASSIGN_OR_RETURN(JoinResult out, HashJoin(left, right, &l_old, &r_new));
  // new_l ⋈ (old_r ∪ new_r): build over the new left rows by running the
  // join flipped (the build side must stay proportional to the delta),
  // then swap the oid lists back.
  const Candidates l_new = Candidates::Range(left_old, left.size() - left_old);
  DC_ASSIGN_OR_RETURN(JoinResult flipped,
                      HashJoin(right, left, /*lcand=*/nullptr, &l_new));
  out.left.insert(out.left.end(), flipped.right.begin(), flipped.right.end());
  out.right.insert(out.right.end(), flipped.left.begin(), flipped.left.end());
  return out;
}

Result<TypeId> JoinKeyDomain(TypeId l, TypeId r) {
  if (StoredAsI64(l) && StoredAsI64(r)) return TypeId::kI64;
  if (IsNumeric(l) && IsNumeric(r)) return TypeId::kF64;
  if (l == TypeId::kStr && r == TypeId::kStr) return TypeId::kStr;
  return Status::TypeError(
      StrFormat("cannot equi-join %s with %s", TypeName(l), TypeName(r)));
}

Result<JoinResult> IndexedDeltaJoin(const Bat& left, uint64_t left_old,
                                    const RollingJoinIndex& left_index,
                                    const Bat& right, uint64_t right_old,
                                    const RollingJoinIndex& right_index) {
  if (left_old > left.size() || right_old > right.size()) {
    return Status::InvalidArgument(
        "IndexedDeltaJoin: old split beyond column size");
  }
  JoinResult out;
  // retained_l ⋈ new_r: probe the left index with the new right keys.
  DC_RETURN_NOT_OK(left_index.Probe(right, right_old, right.size(),
                                    &out.right, &out.left));
  // new_l ⋈ retained_r: probe the right index with the new left keys.
  DC_RETURN_NOT_OK(right_index.Probe(left, left_old, left.size(), &out.left,
                                     &out.right));
  // new_l ⋈ new_r: both portions are one basic window; plain hash join.
  const Candidates l_new = Candidates::Range(left_old, left.size() - left_old);
  const Candidates r_new =
      Candidates::Range(right_old, right.size() - right_old);
  DC_ASSIGN_OR_RETURN(JoinResult nn, HashJoin(left, right, &l_new, &r_new));
  out.left.insert(out.left.end(), nn.left.begin(), nn.left.end());
  out.right.insert(out.right.end(), nn.right.begin(), nn.right.end());
  return out;
}

BatPtr FetchOids(const Bat& col, const std::vector<Oid>& oids) {
  auto out = std::make_shared<Bat>(col.type());
  out->Reserve(oids.size());
  switch (col.type()) {
    case TypeId::kBool: {
      auto data = col.BoolData();
      for (Oid o : oids) out->AppendBool(data[o] != 0);
      break;
    }
    case TypeId::kI64:
    case TypeId::kTs: {
      auto data = col.I64Data();
      for (Oid o : oids) out->AppendI64(data[o]);
      break;
    }
    case TypeId::kF64: {
      auto data = col.F64Data();
      for (Oid o : oids) out->AppendF64(data[o]);
      break;
    }
    case TypeId::kStr:
      for (Oid o : oids) out->AppendStr(col.StrAt(o));
      break;
  }
  return out;
}

}  // namespace dc::ops
