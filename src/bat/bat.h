// Copyright 2026 The DataCell Authors.
//
// Bat: a single column — MonetDB's Binary Association Table with a void
// (dense, implicit) head and a typed tail. Tables, baskets and every
// intermediate result in the engine are collections of Bats; operators are
// bulk: they read whole Bats (optionally restricted by a candidate list) and
// materialize whole result Bats. That full materialization is exactly what
// DataCell exploits: per-basic-window intermediates are ordinary Bats that
// can be cached and merged later.

#ifndef DATACELL_BAT_BAT_H_
#define DATACELL_BAT_BAT_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "bat/candidates.h"
#include "bat/string_heap.h"
#include "bat/types.h"
#include "util/result.h"

namespace dc {

class Bat;
/// Bats are shared between plans, caches and result sets; operators return
/// shared handles.
using BatPtr = std::shared_ptr<Bat>;

/// A typed column with dense row ids [0, size).
class Bat {
 public:
  /// Creates an empty column of logical type `t`.
  explicit Bat(TypeId t);

  /// Convenience constructors from host vectors.
  static BatPtr MakeBool(std::vector<uint8_t> v);
  static BatPtr MakeI64(std::vector<int64_t> v);
  static BatPtr MakeF64(std::vector<double> v);
  static BatPtr MakeStr(const std::vector<std::string>& v);
  static BatPtr MakeTs(std::vector<int64_t> v);
  static BatPtr MakeEmpty(TypeId t) { return std::make_shared<Bat>(t); }

  TypeId type() const { return type_; }
  uint64_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Approximate memory footprint in bytes (monitoring / Fig. 4 pane).
  size_t MemoryBytes() const;

  // --- Appending (builders, baskets, tables) -------------------------------

  void Reserve(uint64_t n);
  void AppendBool(bool v);
  void AppendI64(int64_t v);
  void AppendF64(double v);
  void AppendStr(std::string_view v);
  /// Bulk-appends `n` copies of `v` (I64/TS columns; the hidden
  /// basic-window-ordinal column of delta joins is built this way).
  void AppendRepeatedI64(int64_t v, uint64_t n);
  /// Appends a boxed value (NULL allowed); aborts on type mismatch
  /// (callers type-check).
  void AppendValue(const Value& v);
  /// Appends one SQL NULL row (scalar aggregates over empty windows).
  void AppendNull();
  /// Bulk-appends rows [from, to) of `src` (same type required); null
  /// rows stay null.
  void AppendRange(const Bat& src, uint64_t from, uint64_t to);
  /// Bulk-appends the candidate rows of `src`; null rows stay null.
  void AppendCandidates(const Bat& src, const Candidates& cand);

  /// Drops the first `n` rows in place (basket shrink after consumption).
  /// Row ids of survivors shift down by n. For STR columns the heap is
  /// rebuilt to reclaim arena space.
  void DropHead(uint64_t n);

  // --- Typed access ---------------------------------------------------------

  std::span<const uint8_t> BoolData() const { return {bools_.data(), size_}; }
  std::span<const int64_t> I64Data() const { return {ints_.data(), size_}; }
  std::span<const double> F64Data() const { return {dbls_.data(), size_}; }
  /// View of the string at row `i`; valid until the column is mutated.
  std::string_view StrAt(uint64_t i) const { return heap_.Get(strs_[i]); }

  /// True when row `i` is SQL NULL. NULL rows store the type's zero in
  /// the typed payload, so bulk kernels that ignore the bitmap stay
  /// well-defined (documented divergence: expressions over NULL).
  bool IsNull(uint64_t i) const {
    return i < nulls_.size() && nulls_[i] != 0;
  }
  /// True when any row may be NULL (the bitmap exists).
  bool has_nulls() const { return !nulls_.empty(); }

  /// Boxed value at row `i` (edges: printing, tests, row assembly).
  Value GetValue(uint64_t i) const;

  // --- Whole-column helpers -------------------------------------------------

  /// Copies rows [from, to) into a fresh column.
  BatPtr Slice(uint64_t from, uint64_t to) const;

  /// Copies the candidate rows into a fresh column.
  BatPtr Gather(const Candidates& cand) const;

  /// Debug rendering with a row cap.
  std::string ToString(uint64_t max_rows = 16) const;

 private:
  TypeId type_;
  uint64_t size_;
  // Exactly one of these is active, keyed by the storage class of type_.
  // (A variant would save idle capacity; empty vectors cost nothing, and
  // this keeps hot accessors branch-free.)
  std::vector<uint8_t> bools_;
  std::vector<int64_t> ints_;
  std::vector<double> dbls_;
  std::vector<uint64_t> strs_;  // heap offsets
  StringHeap heap_;
  // Lazy null bitmap: empty while the column has no NULLs; otherwise it
  // may be shorter than size_ — rows beyond its end are non-null (appends
  // through the raw typed paths never have to touch it).
  std::vector<uint8_t> nulls_;
};

/// A named bundle of equally-sized columns: the unit flowing between
/// operators, baskets, tables and result sets.
struct ColumnSet {
  std::vector<std::string> names;
  std::vector<BatPtr> cols;

  uint64_t NumRows() const { return cols.empty() ? 0 : cols[0]->size(); }
  uint64_t NumCols() const { return cols.size(); }

  /// Index of column `name`, or error.
  Result<size_t> Find(std::string_view name) const;

  /// Renders an aligned ASCII table (result printing in examples/tests).
  std::string ToString(uint64_t max_rows = 32) const;

  /// Row `i` as boxed values.
  std::vector<Value> Row(uint64_t i) const;
};

}  // namespace dc

#endif  // DATACELL_BAT_BAT_H_
