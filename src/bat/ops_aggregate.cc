#include "bat/ops_aggregate.h"

#include "util/string_util.h"

namespace dc::ops {

const char* AggKindName(AggKind k) {
  switch (k) {
    case AggKind::kCount:
      return "count";
    case AggKind::kSum:
      return "sum";
    case AggKind::kAvg:
      return "avg";
    case AggKind::kMin:
      return "min";
    case AggKind::kMax:
      return "max";
  }
  return "?";
}

Result<TypeId> AggResultType(AggKind kind, TypeId input) {
  switch (kind) {
    case AggKind::kCount:
      return TypeId::kI64;
    case AggKind::kAvg:
      if (!IsNumeric(input)) return Status::TypeError("AVG needs numeric");
      return TypeId::kF64;
    case AggKind::kSum:
      if (!IsNumeric(input)) return Status::TypeError("SUM needs numeric");
      return input == TypeId::kF64 ? TypeId::kF64 : TypeId::kI64;
    case AggKind::kMin:
    case AggKind::kMax:
      if (input == TypeId::kBool) {
        return Status::TypeError("MIN/MAX over bool");
      }
      return input;
  }
  return Status::Internal("AggResultType");
}

void AggState::Add(const Value& v) {
  ++count;
  switch (v.type()) {
    case TypeId::kI64:
    case TypeId::kTs:
      isum += v.AsI64();
      dsum += static_cast<double>(v.AsI64());
      break;
    case TypeId::kF64:
      dsum += v.AsF64();
      break;
    default:
      break;
  }
  if (!has_minmax) {
    min = v;
    max = v;
    has_minmax = true;
  } else {
    if (v.Compare(min) < 0) min = v;
    if (v.Compare(max) > 0) max = v;
  }
}

void AggState::AddCell(const Bat& col, Oid o, bool with_minmax) {
  switch (col.type()) {
    case TypeId::kI64:
    case TypeId::kTs: {
      const int64_t x = col.I64Data()[o];
      ++count;
      isum += x;
      dsum += static_cast<double>(x);
      if (!with_minmax) return;
      if (!has_minmax) {
        min = col.type() == TypeId::kTs ? Value::Ts(x) : Value::I64(x);
        max = min;
        has_minmax = true;
      } else {
        if (x < min.AsI64()) {
          min = col.type() == TypeId::kTs ? Value::Ts(x) : Value::I64(x);
        }
        if (x > max.AsI64()) {
          max = col.type() == TypeId::kTs ? Value::Ts(x) : Value::I64(x);
        }
      }
      return;
    }
    case TypeId::kF64: {
      const double x = col.F64Data()[o];
      ++count;
      dsum += x;
      if (!with_minmax) return;
      if (!has_minmax) {
        min = Value::F64(x);
        max = Value::F64(x);
        has_minmax = true;
      } else {
        if (x < min.AsF64()) min = Value::F64(x);
        if (x > max.AsF64()) max = Value::F64(x);
      }
      return;
    }
    default:
      Add(col.GetValue(o));
      return;
  }
}

void AggState::AddColumn(const Bat& col, const Candidates* cand) {
  auto add_i64 = [&](int64_t x) {
    ++count;
    isum += x;
    dsum += static_cast<double>(x);
    if (!has_minmax) {
      min = col.type() == TypeId::kTs ? Value::Ts(x) : Value::I64(x);
      max = min;
      has_minmax = true;
    } else {
      if (x < min.AsI64()) {
        min = col.type() == TypeId::kTs ? Value::Ts(x) : Value::I64(x);
      }
      if (x > max.AsI64()) {
        max = col.type() == TypeId::kTs ? Value::Ts(x) : Value::I64(x);
      }
    }
  };
  switch (col.type()) {
    case TypeId::kI64:
    case TypeId::kTs: {
      auto data = col.I64Data();
      if (cand) {
        cand->ForEach([&](Oid o) { add_i64(data[o]); });
      } else {
        for (int64_t x : data) add_i64(x);
      }
      break;
    }
    case TypeId::kF64: {
      auto data = col.F64Data();
      auto add = [&](double x) {
        ++count;
        dsum += x;
        if (!has_minmax) {
          min = Value::F64(x);
          max = Value::F64(x);
          has_minmax = true;
        } else {
          if (x < min.AsF64()) min = Value::F64(x);
          if (x > max.AsF64()) max = Value::F64(x);
        }
      };
      if (cand) {
        cand->ForEach([&](Oid o) { add(data[o]); });
      } else {
        for (double x : data) add(x);
      }
      break;
    }
    case TypeId::kStr: {
      auto add = [&](Oid o) { Add(Value::Str(std::string(col.StrAt(o)))); };
      if (cand) {
        cand->ForEach(add);
      } else {
        for (Oid o = 0; o < col.size(); ++o) add(o);
      }
      break;
    }
    case TypeId::kBool: {
      auto data = col.BoolData();
      auto add = [&](Oid o) {
        ++count;
        isum += data[o] ? 1 : 0;
        dsum += data[o] ? 1.0 : 0.0;
      };
      if (cand) {
        cand->ForEach(add);
      } else {
        for (Oid o = 0; o < col.size(); ++o) add(o);
      }
      break;
    }
  }
}

void AggState::Merge(const AggState& other) {
  count += other.count;
  isum += other.isum;
  dsum += other.dsum;
  if (other.has_minmax) {
    if (!has_minmax) {
      min = other.min;
      max = other.max;
      has_minmax = true;
    } else {
      if (other.min.Compare(min) < 0) min = other.min;
      if (other.max.Compare(max) > 0) max = other.max;
    }
  }
}

void AggState::ScaledMerge(const AggState& other, uint64_t times,
                           bool with_minmax) {
  if (times == 0 || other.count == 0) return;
  count += other.count * times;
  isum += other.isum * static_cast<int64_t>(times);
  dsum += other.dsum * static_cast<double>(times);
  if (with_minmax && other.has_minmax) {
    if (!has_minmax) {
      min = other.min;
      max = other.max;
      has_minmax = true;
    } else {
      if (other.min.Compare(min) < 0) min = other.min;
      if (other.max.Compare(max) > 0) max = other.max;
    }
  }
}

// SQL empty-input conventions: COUNT over zero rows is 0; SUM, AVG, MIN
// and MAX over zero rows are NULL (typed to the aggregate's result type).
Value AggState::Finalize(AggKind kind, TypeId input_type) const {
  switch (kind) {
    case AggKind::kCount:
      return Value::I64(static_cast<int64_t>(count));
    case AggKind::kSum:
      if (count == 0) {
        return Value::Null(input_type == TypeId::kF64 ? TypeId::kF64
                                                      : TypeId::kI64);
      }
      if (input_type == TypeId::kF64) return Value::F64(dsum);
      return Value::I64(isum);
    case AggKind::kAvg:
      if (count == 0) return Value::Null(TypeId::kF64);
      return Value::F64(dsum / static_cast<double>(count));
    case AggKind::kMin:
      return has_minmax ? min : Value::Null(input_type);
    case AggKind::kMax:
      return has_minmax ? max : Value::Null(input_type);
  }
  return Value::Null(input_type);
}

Result<Value> ScalarAgg(AggKind kind, const Bat* col, const Candidates* cand,
                        uint64_t domain_size) {
  if (kind == AggKind::kCount) {
    return Value::I64(
        static_cast<int64_t>(cand ? cand->size() : domain_size));
  }
  if (col == nullptr) {
    return Status::InvalidArgument("aggregate requires a value column");
  }
  DC_RETURN_NOT_OK(AggResultType(kind, col->type()).status());
  AggState state;
  state.AddColumn(*col, cand);
  return state.Finalize(kind, col->type());
}

}  // namespace dc::ops
