#include "bat/ops_aggregate.h"

#include "util/string_util.h"

namespace dc::ops {

const char* AggKindName(AggKind k) {
  switch (k) {
    case AggKind::kCount:
      return "count";
    case AggKind::kSum:
      return "sum";
    case AggKind::kAvg:
      return "avg";
    case AggKind::kMin:
      return "min";
    case AggKind::kMax:
      return "max";
  }
  return "?";
}

Result<TypeId> AggResultType(AggKind kind, TypeId input) {
  switch (kind) {
    case AggKind::kCount:
      return TypeId::kI64;
    case AggKind::kAvg:
      if (!IsNumeric(input)) return Status::TypeError("AVG needs numeric");
      return TypeId::kF64;
    case AggKind::kSum:
      if (!IsNumeric(input)) return Status::TypeError("SUM needs numeric");
      return input == TypeId::kF64 ? TypeId::kF64 : TypeId::kI64;
    case AggKind::kMin:
    case AggKind::kMax:
      if (input == TypeId::kBool) {
        return Status::TypeError("MIN/MAX over bool");
      }
      return input;
  }
  return Status::Internal("AggResultType");
}

void AggState::Add(const Value& v) {
  ++count;
  switch (v.type()) {
    case TypeId::kI64:
    case TypeId::kTs:
      isum += v.AsI64();
      dsum += static_cast<double>(v.AsI64());
      break;
    case TypeId::kF64:
      dsum += v.AsF64();
      break;
    default:
      break;
  }
  if (!has_minmax) {
    min = v;
    max = v;
    has_minmax = true;
  } else {
    if (v.Compare(min) < 0) min = v;
    if (v.Compare(max) > 0) max = v;
  }
}

void AggState::AddColumn(const Bat& col, const Candidates* cand) {
  auto add_i64 = [&](int64_t x) {
    ++count;
    isum += x;
    dsum += static_cast<double>(x);
    if (!has_minmax) {
      min = col.type() == TypeId::kTs ? Value::Ts(x) : Value::I64(x);
      max = min;
      has_minmax = true;
    } else {
      if (x < min.AsI64()) {
        min = col.type() == TypeId::kTs ? Value::Ts(x) : Value::I64(x);
      }
      if (x > max.AsI64()) {
        max = col.type() == TypeId::kTs ? Value::Ts(x) : Value::I64(x);
      }
    }
  };
  switch (col.type()) {
    case TypeId::kI64:
    case TypeId::kTs: {
      auto data = col.I64Data();
      if (cand) {
        cand->ForEach([&](Oid o) { add_i64(data[o]); });
      } else {
        for (int64_t x : data) add_i64(x);
      }
      break;
    }
    case TypeId::kF64: {
      auto data = col.F64Data();
      auto add = [&](double x) {
        ++count;
        dsum += x;
        if (!has_minmax) {
          min = Value::F64(x);
          max = Value::F64(x);
          has_minmax = true;
        } else {
          if (x < min.AsF64()) min = Value::F64(x);
          if (x > max.AsF64()) max = Value::F64(x);
        }
      };
      if (cand) {
        cand->ForEach([&](Oid o) { add(data[o]); });
      } else {
        for (double x : data) add(x);
      }
      break;
    }
    case TypeId::kStr: {
      auto add = [&](Oid o) { Add(Value::Str(std::string(col.StrAt(o)))); };
      if (cand) {
        cand->ForEach(add);
      } else {
        for (Oid o = 0; o < col.size(); ++o) add(o);
      }
      break;
    }
    case TypeId::kBool: {
      auto data = col.BoolData();
      auto add = [&](Oid o) {
        ++count;
        isum += data[o] ? 1 : 0;
        dsum += data[o] ? 1.0 : 0.0;
      };
      if (cand) {
        cand->ForEach(add);
      } else {
        for (Oid o = 0; o < col.size(); ++o) add(o);
      }
      break;
    }
  }
}

void AggState::Merge(const AggState& other) {
  count += other.count;
  isum += other.isum;
  dsum += other.dsum;
  if (other.has_minmax) {
    if (!has_minmax) {
      min = other.min;
      max = other.max;
      has_minmax = true;
    } else {
      if (other.min.Compare(min) < 0) min = other.min;
      if (other.max.Compare(max) > 0) max = other.max;
    }
  }
}

// Empty-window NULL simplification (docs/INCREMENTAL.md "Known
// divergences"): SQL says SUM/MIN/MAX/AVG over zero rows are NULL, but the
// type system has no NULL, so empty input renders as the type's zero
// (I64/F64/Ts 0, STR ""). COUNT is 0 per SQL. Pinned by
// ops_test AggStateTest.EmptyInputConventions — change that test first if
// real NULLs ever land.
Value AggState::Finalize(AggKind kind, TypeId input_type) const {
  switch (kind) {
    case AggKind::kCount:
      return Value::I64(static_cast<int64_t>(count));
    case AggKind::kSum:
      if (input_type == TypeId::kF64) return Value::F64(dsum);
      return Value::I64(isum);
    case AggKind::kAvg:
      return Value::F64(count == 0 ? 0.0
                                   : dsum / static_cast<double>(count));
    case AggKind::kMin:
      if (has_minmax) return min;
      break;
    case AggKind::kMax:
      if (has_minmax) return max;
      break;
  }
  // Empty-input MIN/MAX: zero of the input type (documented; no NULLs).
  switch (input_type) {
    case TypeId::kF64:
      return Value::F64(0);
    case TypeId::kStr:
      return Value::Str("");
    case TypeId::kTs:
      return Value::Ts(0);
    default:
      return Value::I64(0);
  }
}

Result<Value> ScalarAgg(AggKind kind, const Bat* col, const Candidates* cand,
                        uint64_t domain_size) {
  if (kind == AggKind::kCount) {
    return Value::I64(
        static_cast<int64_t>(cand ? cand->size() : domain_size));
  }
  if (col == nullptr) {
    return Status::InvalidArgument("aggregate requires a value column");
  }
  DC_RETURN_NOT_OK(AggResultType(kind, col->type()).status());
  AggState state;
  state.AddColumn(*col, cand);
  return state.Finalize(kind, col->type());
}

}  // namespace dc::ops
