// Copyright 2026 The DataCell Authors.
//
// Multi-key grouping and grouped aggregation. GroupBy assigns a dense group
// id to every input row; grouped aggregates then fold value columns per
// group. Group descriptors are mergeable across basic windows via
// GroupedAggMerger (the incremental GROUP BY path).

#ifndef DATACELL_BAT_OPS_GROUP_H_
#define DATACELL_BAT_OPS_GROUP_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "bat/bat.h"
#include "bat/candidates.h"
#include "bat/ops_aggregate.h"
#include "util/result.h"

namespace dc::ops {

/// Output of GroupBy over `n` candidate rows.
struct GroupResult {
  /// group_ids[i] = dense group id of the i-th candidate row.
  std::vector<uint32_t> group_ids;
  /// representatives[g] = oid of the first row of group g (for fetching
  /// key values).
  std::vector<Oid> representatives;
  uint32_t num_groups = 0;
};

/// Groups the candidate rows of the key columns (all equal size).
Result<GroupResult> GroupBy(const std::vector<const Bat*>& keys,
                            const Candidates* cand = nullptr);

/// Grouped aggregate: folds `values` (ordered like GroupBy's candidate
/// iteration; i.e. values[i] belongs to group group_ids[i]) into one output
/// row per group. For COUNT, `values` may be null.
/// `values_cand` must be the same candidate list passed to GroupBy.
Result<BatPtr> GroupedAgg(AggKind kind, const Bat* values,
                          const Candidates* values_cand,
                          const GroupResult& groups);

/// Incremental grouped aggregation: accumulates (key-row, AggState) partial
/// tables per basic window and merges them per emission.
///
/// Usage: for each basic window, AddPartial(keys of that window's rows,
/// values, ...); at emission, Finalize() produces key columns + one value
/// column per registered aggregate.
class GroupedAggMerger {
 public:
  /// `key_types`: types of the group-by key columns.
  /// `aggs`: (kind, value column type) per output aggregate.
  GroupedAggMerger(std::vector<TypeId> key_types,
                   std::vector<std::pair<AggKind, TypeId>> aggs);

  /// Folds one basic window's rows: `keys[k]` is the k-th key column,
  /// `values[a]` the a-th aggregate's value column (null for COUNT).
  /// All columns are pre-sliced to the basic window (no candidates).
  Status AddPartial(const std::vector<const Bat*>& keys,
                    const std::vector<const Bat*>& values);

  /// Merges another merger built with identical key/agg layout.
  Status MergeFrom(const GroupedAggMerger& other);

  /// Emits key columns followed by one column per aggregate, one row per
  /// distinct key. Group order is first-appearance order.
  Result<std::vector<BatPtr>> Finalize() const;

  size_t num_groups() const { return group_keys_.size(); }

 private:
  struct GroupEntry {
    std::vector<Value> key;
    std::vector<AggState> states;
  };

  uint64_t HashKey(const std::vector<Value>& key) const;

  std::vector<TypeId> key_types_;
  std::vector<std::pair<AggKind, TypeId>> aggs_;
  std::unordered_map<uint64_t, std::vector<uint32_t>> index_;  // hash->ids
  std::vector<GroupEntry> group_keys_;
};

}  // namespace dc::ops

#endif  // DATACELL_BAT_OPS_GROUP_H_
