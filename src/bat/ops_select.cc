#include "bat/ops_select.h"

#include "util/string_util.h"

namespace dc::ops {

namespace {

// Scans either the candidate subset or the whole column, pushing qualifying
// oids. `pred(oid)` decides membership.
template <typename Pred>
Candidates ScanWith(uint64_t col_size, const Candidates* cand, Pred&& pred) {
  std::vector<Oid> out;
  if (cand != nullptr) {
    out.reserve(cand->size());
    cand->ForEach([&](Oid o) {
      if (pred(o)) out.push_back(o);
    });
  } else {
    out.reserve(col_size / 4 + 8);
    for (Oid o = 0; o < col_size; ++o) {
      if (pred(o)) out.push_back(o);
    }
  }
  return Candidates::FromVector(std::move(out));
}

template <typename T, typename Cmp>
Candidates ScanTyped(std::span<const T> data, const Candidates* cand,
                     Cmp&& cmp) {
  return ScanWith(data.size(), cand, [&](Oid o) { return cmp(data[o]); });
}

}  // namespace

Result<Candidates> SelectCmp(const Bat& col, CmpOp op, const Value& literal,
                             const Candidates* cand) {
  switch (col.type()) {
    case TypeId::kI64:
    case TypeId::kTs: {
      if (literal.type() == TypeId::kF64) {
        const double v = literal.AsF64();
        return ScanTyped<int64_t>(col.I64Data(), cand, [&](int64_t x) {
          const double dx = static_cast<double>(x);
          return CmpHolds(op, dx < v ? -1 : (dx == v ? 0 : 1));
        });
      }
      DC_ASSIGN_OR_RETURN(Value lit, literal.CastTo(TypeId::kI64));
      const int64_t v = lit.AsI64();
      switch (op) {
        case CmpOp::kEq:
          return ScanTyped<int64_t>(col.I64Data(), cand,
                                    [&](int64_t x) { return x == v; });
        case CmpOp::kNe:
          return ScanTyped<int64_t>(col.I64Data(), cand,
                                    [&](int64_t x) { return x != v; });
        case CmpOp::kLt:
          return ScanTyped<int64_t>(col.I64Data(), cand,
                                    [&](int64_t x) { return x < v; });
        case CmpOp::kLe:
          return ScanTyped<int64_t>(col.I64Data(), cand,
                                    [&](int64_t x) { return x <= v; });
        case CmpOp::kGt:
          return ScanTyped<int64_t>(col.I64Data(), cand,
                                    [&](int64_t x) { return x > v; });
        case CmpOp::kGe:
          return ScanTyped<int64_t>(col.I64Data(), cand,
                                    [&](int64_t x) { return x >= v; });
      }
      break;
    }
    case TypeId::kF64: {
      if (!IsNumeric(literal.type())) {
        return Status::TypeError("f64 select needs a numeric literal");
      }
      const double v = literal.NumericAsDouble();
      return ScanTyped<double>(col.F64Data(), cand, [&](double x) {
        return CmpHolds(op, x < v ? -1 : (x == v ? 0 : 1));
      });
    }
    case TypeId::kStr: {
      if (literal.type() != TypeId::kStr) {
        return Status::TypeError("str select needs a string literal");
      }
      const std::string& v = literal.AsStr();
      return ScanWith(col.size(), cand, [&](Oid o) {
        const std::string_view x = col.StrAt(o);
        const int c = x < v ? -1 : (x == v ? 0 : 1);
        return CmpHolds(op, c);
      });
    }
    case TypeId::kBool: {
      if (literal.type() != TypeId::kBool) {
        return Status::TypeError("bool select needs a boolean literal");
      }
      const uint8_t v = literal.AsBool() ? 1 : 0;
      auto data = col.BoolData();
      return ScanWith(col.size(), cand, [&](Oid o) {
        return CmpHolds(op, static_cast<int>(data[o]) - static_cast<int>(v));
      });
    }
  }
  return Status::Internal("SelectCmp: unhandled type");
}

Result<Candidates> SelectRange(const Bat& col, const Value& lo, bool lo_incl,
                               const Value& hi, bool hi_incl,
                               const Candidates* cand) {
  switch (col.type()) {
    case TypeId::kI64:
    case TypeId::kTs: {
      DC_ASSIGN_OR_RETURN(Value lov, lo.CastTo(TypeId::kI64));
      DC_ASSIGN_OR_RETURN(Value hiv, hi.CastTo(TypeId::kI64));
      const int64_t l = lov.AsI64();
      const int64_t h = hiv.AsI64();
      return ScanTyped<int64_t>(col.I64Data(), cand, [&](int64_t x) {
        return (lo_incl ? x >= l : x > l) && (hi_incl ? x <= h : x < h);
      });
    }
    case TypeId::kF64: {
      if (!IsNumeric(lo.type()) || !IsNumeric(hi.type())) {
        return Status::TypeError("f64 range needs numeric bounds");
      }
      const double l = lo.NumericAsDouble();
      const double h = hi.NumericAsDouble();
      return ScanTyped<double>(col.F64Data(), cand, [&](double x) {
        return (lo_incl ? x >= l : x > l) && (hi_incl ? x <= h : x < h);
      });
    }
    case TypeId::kStr: {
      if (lo.type() != TypeId::kStr || hi.type() != TypeId::kStr) {
        return Status::TypeError("str range needs string bounds");
      }
      const std::string& l = lo.AsStr();
      const std::string& h = hi.AsStr();
      return ScanWith(col.size(), cand, [&](Oid o) {
        const std::string_view x = col.StrAt(o);
        return (lo_incl ? x >= l : x > l) && (hi_incl ? x <= h : x < h);
      });
    }
    case TypeId::kBool:
      return Status::TypeError("range select on bool column");
  }
  return Status::Internal("SelectRange: unhandled type");
}

Result<Candidates> SelectCmpCol(const Bat& a, CmpOp op, const Bat& b,
                                const Candidates* cand) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument(
        StrFormat("SelectCmpCol: size mismatch %llu vs %llu",
                  static_cast<unsigned long long>(a.size()),
                  static_cast<unsigned long long>(b.size())));
  }
  const bool a_i = StoredAsI64(a.type());
  const bool b_i = StoredAsI64(b.type());
  if (a_i && b_i) {
    auto da = a.I64Data();
    auto db = b.I64Data();
    return ScanWith(a.size(), cand, [&](Oid o) {
      return CmpHolds(op, da[o] < db[o] ? -1 : (da[o] == db[o] ? 0 : 1));
    });
  }
  if (IsNumeric(a.type()) && IsNumeric(b.type())) {
    auto get = [](const Bat& col, Oid o) {
      return StoredAsI64(col.type())
                 ? static_cast<double>(col.I64Data()[o])
                 : col.F64Data()[o];
    };
    return ScanWith(a.size(), cand, [&](Oid o) {
      const double x = get(a, o);
      const double y = get(b, o);
      return CmpHolds(op, x < y ? -1 : (x == y ? 0 : 1));
    });
  }
  if (a.type() == TypeId::kStr && b.type() == TypeId::kStr) {
    return ScanWith(a.size(), cand, [&](Oid o) {
      const std::string_view x = a.StrAt(o);
      const std::string_view y = b.StrAt(o);
      return CmpHolds(op, x < y ? -1 : (x == y ? 0 : 1));
    });
  }
  return Status::TypeError(StrFormat("cannot compare %s with %s",
                                     TypeName(a.type()), TypeName(b.type())));
}

Result<Candidates> SelectTrue(const Bat& col, const Candidates* cand) {
  if (col.type() != TypeId::kBool) {
    return Status::TypeError("SelectTrue expects a bool column");
  }
  auto data = col.BoolData();
  return ScanWith(col.size(), cand, [&](Oid o) { return data[o] != 0; });
}

}  // namespace dc::ops
