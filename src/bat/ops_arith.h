// Copyright 2026 The DataCell Authors.
//
// Elementwise ("map") operators: arithmetic over columns and literals,
// boolean comparison maps, and casts. All bulk: full result columns are
// materialized.
//
// Type rules: I64 op I64 -> I64 (except '/', which is always F64, matching
// the SQL layer's AVG-friendly semantics); any F64 operand promotes to F64;
// TS behaves as I64. '%' requires integer operands.

#ifndef DATACELL_BAT_OPS_ARITH_H_
#define DATACELL_BAT_OPS_ARITH_H_

#include "bat/bat.h"
#include "util/result.h"

namespace dc::ops {

/// result[i] = a[i] op b[i]. Columns must have equal sizes.
Result<BatPtr> MapArith(const Bat& a, ArithOp op, const Bat& b);

/// result[i] = a[i] op literal (or literal op a[i] when `literal_left`).
Result<BatPtr> MapArithConst(const Bat& a, ArithOp op, const Value& literal,
                             bool literal_left = false);

/// result[i] = (a[i] cmp b[i]) as a BOOL column.
Result<BatPtr> MapCmpCol(const Bat& a, CmpOp op, const Bat& b);

/// result[i] = (a[i] cmp literal) as a BOOL column.
Result<BatPtr> MapCmpConst(const Bat& a, CmpOp op, const Value& literal);

/// Elementwise logical ops over BOOL columns.
Result<BatPtr> MapAnd(const Bat& a, const Bat& b);
Result<BatPtr> MapOr(const Bat& a, const Bat& b);
Result<BatPtr> MapNot(const Bat& a);

/// Casts every element to `target` (I64<->F64<->TS, anything->STR).
Result<BatPtr> MapCast(const Bat& a, TypeId target);

/// Fills a column of `n` copies of `literal` (constant projection).
BatPtr MakeConstColumn(const Value& literal, uint64_t n);

}  // namespace dc::ops

#endif  // DATACELL_BAT_OPS_ARITH_H_
