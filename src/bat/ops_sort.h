// Copyright 2026 The DataCell Authors.
//
// Ordering: stable multi-key sort producing an oid permutation, consumed by
// ORDER BY / top-n (LIMIT after sort).

#ifndef DATACELL_BAT_OPS_SORT_H_
#define DATACELL_BAT_OPS_SORT_H_

#include <vector>

#include "bat/bat.h"
#include "bat/candidates.h"
#include "util/result.h"

namespace dc::ops {

/// One ORDER BY key.
struct SortKey {
  const Bat* col;
  bool ascending = true;
};

/// Returns the candidate oids permuted into sort order (stable; ties keep
/// input order). `cand == nullptr` sorts the full column domain.
Result<std::vector<Oid>> SortOrder(const std::vector<SortKey>& keys,
                                   const Candidates* cand = nullptr);

}  // namespace dc::ops

#endif  // DATACELL_BAT_OPS_SORT_H_
