// Copyright 2026 The DataCell Authors.
//
// Ordering: stable multi-key sort producing an oid permutation, consumed by
// ORDER BY / top-n (LIMIT after sort).

#ifndef DATACELL_BAT_OPS_SORT_H_
#define DATACELL_BAT_OPS_SORT_H_

#include <vector>

#include "bat/bat.h"
#include "bat/candidates.h"
#include "util/result.h"

namespace dc::ops {

/// One ORDER BY key.
struct SortKey {
  const Bat* col;
  bool ascending = true;
};

/// Returns the candidate oids permuted into sort order (stable; ties keep
/// input order). `cand == nullptr` sorts the full column domain.
Result<std::vector<Oid>> SortOrder(const std::vector<SortKey>& keys,
                                   const Candidates* cand = nullptr);

/// One gather of a k-way merge: rows [begin, begin + len) of run `run`
/// are next in merged order. Emitting run-length slices instead of
/// (run, row) pairs lets consumers gather with one bulk AppendRange per
/// slice — with few runs and long ascending stretches the merge output
/// collapses to a handful of slices.
struct MergeSlice {
  int run = 0;
  Oid begin = 0;
  uint64_t len = 0;
};

/// K-way merge of already-sorted runs (incremental ORDER BY tails: each
/// per-basic-window partial is a sorted run; the finish merges them
/// instead of re-sorting the whole window). `runs[i]` holds run i's sort
/// key columns; all runs must share key arity, types, and directions.
/// Returns maximal run-length slices in merged order. Ties resolve to the
/// lower run index, then input order within a run, so merging the runs of
/// a partition equals a stable sort of their concatenation.
Result<std::vector<MergeSlice>> MergeSortedRuns(
    const std::vector<std::vector<SortKey>>& runs);

}  // namespace dc::ops

#endif  // DATACELL_BAT_OPS_SORT_H_
