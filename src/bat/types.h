// Copyright 2026 The DataCell Authors.
//
// Logical types of the columnar kernel and the boxed Value used for
// literals, scalar aggregate results and row assembly at the edges.
//
// The kernel supports five logical types, mirroring the subset of MonetDB
// types the DataCell demo exercises:
//   BOOL  -- stored as uint8_t
//   I64   -- 64-bit signed integer
//   F64   -- double
//   STR   -- variable-length string (heap-backed, see string_heap.h)
//   TS    -- event timestamp, µs since epoch, stored as int64_t
//
// NULL support is deliberately narrow: a Value can be NULL (typed, no
// payload) and a Bat carries a lazy null bitmap, which is exactly what the
// SQL empty-window convention needs (scalar SUM/MIN/MAX/AVG over zero rows
// are NULL). NULLs do not participate in selections, joins or arithmetic —
// they are produced at aggregate finalization and flow to the emitted
// result columns (docs/INCREMENTAL.md "Known divergences").

#ifndef DATACELL_BAT_TYPES_H_
#define DATACELL_BAT_TYPES_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

#include "util/result.h"

namespace dc {

/// Row identifier within a column ("void head" position in MonetDB terms).
using Oid = uint64_t;

/// Logical column/value type.
enum class TypeId : uint8_t { kBool = 0, kI64, kF64, kStr, kTs };

/// Stable lower-case name ("i64", "str", ...).
const char* TypeName(TypeId t);

/// Parses a type name as written in CREATE TABLE/STREAM ("int", "bigint",
/// "double", "float", "varchar", "string", "timestamp", "bool", ...).
Result<TypeId> TypeFromName(std::string_view name);

/// True for I64/F64/TS — types valid in arithmetic.
inline bool IsNumeric(TypeId t) {
  return t == TypeId::kI64 || t == TypeId::kF64 || t == TypeId::kTs;
}

/// Physical storage class of a logical type.
inline bool StoredAsI64(TypeId t) {
  return t == TypeId::kI64 || t == TypeId::kTs;
}

/// A boxed scalar value with its logical type.
class Value {
 public:
  Value() : type_(TypeId::kI64), repr_(int64_t{0}) {}

  static Value Bool(bool v) { return Value(TypeId::kBool, v); }
  static Value I64(int64_t v) { return Value(TypeId::kI64, v); }
  static Value F64(double v) { return Value(TypeId::kF64, v); }
  static Value Str(std::string v) {
    return Value(TypeId::kStr, std::move(v));
  }
  static Value Ts(int64_t micros) { return Value(TypeId::kTs, micros); }
  /// SQL NULL of logical type `t` (no payload; accessors abort).
  static Value Null(TypeId t) { return Value(t, std::monostate{}); }

  TypeId type() const { return type_; }
  bool is_null() const { return std::holds_alternative<std::monostate>(repr_); }

  bool AsBool() const { return std::get<bool>(repr_); }
  int64_t AsI64() const { return std::get<int64_t>(repr_); }
  double AsF64() const { return std::get<double>(repr_); }
  const std::string& AsStr() const { return std::get<std::string>(repr_); }

  /// Numeric value as double (I64/F64/TS); aborts on STR/BOOL.
  double NumericAsDouble() const;

  /// Coerces to `target` if a lossless / SQL-sanctioned conversion exists
  /// (I64->F64, I64<->TS, parses STR for any target). TypeError otherwise.
  Result<Value> CastTo(TypeId target) const;

  /// Three-way comparison; requires identical (or both-numeric) types.
  /// Returns <0, 0, >0.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const {
    return type_ == other.type_ && repr_ == other.repr_;
  }

  /// SQL-ish rendering for result printing ("42", "3.14", "abc", "NULL").
  std::string ToString() const;

 private:
  template <typename T>
  Value(TypeId t, T v) : type_(t), repr_(std::move(v)) {}

  TypeId type_;
  std::variant<std::monostate, bool, int64_t, double, std::string> repr_;
};

/// Comparison operators used by selects and expression evaluation.
enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CmpOpName(CmpOp op);

/// Evaluates `a op b` given a three-way comparison result.
inline bool CmpHolds(CmpOp op, int cmp) {
  switch (op) {
    case CmpOp::kEq:
      return cmp == 0;
    case CmpOp::kNe:
      return cmp != 0;
    case CmpOp::kLt:
      return cmp < 0;
    case CmpOp::kLe:
      return cmp <= 0;
    case CmpOp::kGt:
      return cmp > 0;
    case CmpOp::kGe:
      return cmp >= 0;
  }
  return false;
}

/// Arithmetic operators for map (elementwise) evaluation.
enum class ArithOp { kAdd, kSub, kMul, kDiv, kMod };

const char* ArithOpName(ArithOp op);

}  // namespace dc

#endif  // DATACELL_BAT_TYPES_H_
