// Copyright 2026 The DataCell Authors.
//
// StringHeap: the variable-length tail heap backing STR columns, as in
// MonetDB. A string column stores fixed-width offsets into its heap; the
// heap stores length-prefixed bytes. Appends are O(len); lookups are O(1)
// and return views into the arena (no per-row allocation).

#ifndef DATACELL_BAT_STRING_HEAP_H_
#define DATACELL_BAT_STRING_HEAP_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace dc {

/// Append-only byte arena of length-prefixed strings.
class StringHeap {
 public:
  /// Appends `s`, returning its heap offset (use with Get()).
  uint64_t Add(std::string_view s) {
    const uint64_t off = bytes_.size();
    uint32_t len = static_cast<uint32_t>(s.size());
    const size_t old = bytes_.size();
    bytes_.resize(old + sizeof(len) + s.size());
    std::memcpy(bytes_.data() + old, &len, sizeof(len));
    if (!s.empty()) {
      std::memcpy(bytes_.data() + old + sizeof(len), s.data(), s.size());
    }
    return off;
  }

  /// Returns the string at heap offset `off`. The view is valid until the
  /// heap is destroyed (the arena never relocates logically deleted data;
  /// growth may reallocate, so views must not be held across Add calls).
  std::string_view Get(uint64_t off) const {
    uint32_t len;
    std::memcpy(&len, bytes_.data() + off, sizeof(len));
    return std::string_view(
        reinterpret_cast<const char*>(bytes_.data()) + off + sizeof(len),
        len);
  }

  size_t ByteSize() const { return bytes_.size(); }
  void Reserve(size_t bytes) { bytes_.reserve(bytes); }
  void Clear() { bytes_.clear(); }

 private:
  std::vector<uint8_t> bytes_;
};

}  // namespace dc

#endif  // DATACELL_BAT_STRING_HEAP_H_
