// Copyright 2026 The DataCell Authors.
//
// Bulk selection operators: the entry point of late tuple reconstruction.
// A select scans one column (optionally restricted by an input candidate
// list) and produces the sorted candidate list of qualifying rows.

#ifndef DATACELL_BAT_OPS_SELECT_H_
#define DATACELL_BAT_OPS_SELECT_H_

#include "bat/bat.h"
#include "bat/candidates.h"
#include "util/result.h"

namespace dc::ops {

/// Rows where `col[i] cmp literal` holds. `cand` restricts the scan; pass
/// nullptr for the whole column. TypeError if the literal is not comparable
/// with the column type.
Result<Candidates> SelectCmp(const Bat& col, CmpOp op, const Value& literal,
                             const Candidates* cand = nullptr);

/// Rows where `lo <(=) col[i] <(=) hi` (both bounds required; use SelectCmp
/// for one-sided ranges). Fast path for BETWEEN / window predicates.
Result<Candidates> SelectRange(const Bat& col, const Value& lo, bool lo_incl,
                               const Value& hi, bool hi_incl,
                               const Candidates* cand = nullptr);

/// Rows where `a[i] cmp b[i]` holds (column vs column, equal sizes).
Result<Candidates> SelectCmpCol(const Bat& a, CmpOp op, const Bat& b,
                                const Candidates* cand = nullptr);

/// Rows where a BOOL column is true.
Result<Candidates> SelectTrue(const Bat& col,
                              const Candidates* cand = nullptr);

}  // namespace dc::ops

#endif  // DATACELL_BAT_OPS_SELECT_H_
