// Copyright 2026 The DataCell Authors.
//
// Candidates: the selection vector connecting kernel operators (MonetDB's
// candidate lists). A select produces the sorted list of qualifying row ids;
// downstream operators take an optional candidate list and touch only those
// rows — this is what enables late tuple reconstruction.
//
// Two representations: a dense range [first, first+count) — the common case
// for scans and window slices — and an explicit sorted oid vector.

#ifndef DATACELL_BAT_CANDIDATES_H_
#define DATACELL_BAT_CANDIDATES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "bat/types.h"

namespace dc {

/// Sorted set of row ids, dense-range optimized.
class Candidates {
 public:
  /// Empty candidate list.
  Candidates() : dense_(true), first_(0), count_(0) {}

  /// Dense range [first, first+count).
  static Candidates Range(Oid first, uint64_t count) {
    Candidates c;
    c.dense_ = true;
    c.first_ = first;
    c.count_ = count;
    return c;
  }

  /// Explicit list; `oids` must be sorted ascending and duplicate-free.
  static Candidates FromVector(std::vector<Oid> oids);

  uint64_t size() const { return dense_ ? count_ : oids_.size(); }
  bool empty() const { return size() == 0; }
  bool is_dense() const { return dense_; }
  Oid first() const { return dense_ ? first_ : (oids_.empty() ? 0 : oids_[0]); }

  Oid At(uint64_t i) const { return dense_ ? first_ + i : oids_[i]; }

  /// Applies `fn(oid)` to every candidate in ascending order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    if (dense_) {
      for (uint64_t i = 0; i < count_; ++i) fn(first_ + i);
    } else {
      for (Oid o : oids_) fn(o);
    }
  }

  /// True if `oid` is a member (binary search for sparse lists).
  bool Contains(Oid oid) const;

  /// Set intersection (AND of two selections).
  static Candidates Intersect(const Candidates& a, const Candidates& b);

  /// Set union (OR of two selections).
  static Candidates Union(const Candidates& a, const Candidates& b);

  /// Members of `domain` not present in `a` (NOT of a selection).
  static Candidates Difference(const Candidates& domain, const Candidates& a);

  /// Materializes as a vector (tests / joins needing indexed access).
  std::vector<Oid> ToVector() const;

  /// Debug rendering: "[0..99]" or "[3,7,12]".
  std::string ToString() const;

 private:
  bool dense_;
  Oid first_;
  uint64_t count_;
  std::vector<Oid> oids_;
};

}  // namespace dc

#endif  // DATACELL_BAT_CANDIDATES_H_
