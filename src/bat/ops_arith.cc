#include "bat/ops_arith.h"

#include <cmath>

#include "util/string_util.h"

namespace dc::ops {

namespace {

Result<double> NumAt(const Bat& b, uint64_t i) {
  if (StoredAsI64(b.type())) return static_cast<double>(b.I64Data()[i]);
  if (b.type() == TypeId::kF64) return b.F64Data()[i];
  return Status::TypeError("arith on non-numeric column");
}

bool BothIntLike(TypeId a, TypeId b) { return StoredAsI64(a) && StoredAsI64(b); }

int64_t IntArith(int64_t x, ArithOp op, int64_t y) {
  switch (op) {
    case ArithOp::kAdd:
      return x + y;
    case ArithOp::kSub:
      return x - y;
    case ArithOp::kMul:
      return x * y;
    case ArithOp::kMod:
      return y == 0 ? 0 : x % y;  // SQL would error; we saturate to 0.
    case ArithOp::kDiv:
      break;  // handled as f64
  }
  return 0;
}

double DblArith(double x, ArithOp op, double y) {
  switch (op) {
    case ArithOp::kAdd:
      return x + y;
    case ArithOp::kSub:
      return x - y;
    case ArithOp::kMul:
      return x * y;
    case ArithOp::kDiv:
      return y == 0.0 ? 0.0 : x / y;  // divide-by-zero saturates to 0
    case ArithOp::kMod:
      return std::fmod(x, y);
  }
  return 0;
}

}  // namespace

Result<BatPtr> MapArith(const Bat& a, ArithOp op, const Bat& b) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument("MapArith: column size mismatch");
  }
  if (!IsNumeric(a.type()) || !IsNumeric(b.type())) {
    return Status::TypeError(StrFormat("arith %s over %s and %s",
                                       ArithOpName(op), TypeName(a.type()),
                                       TypeName(b.type())));
  }
  const uint64_t n = a.size();
  if (op != ArithOp::kDiv && BothIntLike(a.type(), b.type())) {
    std::vector<int64_t> out(n);
    auto da = a.I64Data();
    auto db = b.I64Data();
    for (uint64_t i = 0; i < n; ++i) out[i] = IntArith(da[i], op, db[i]);
    return Bat::MakeI64(std::move(out));
  }
  std::vector<double> out(n);
  for (uint64_t i = 0; i < n; ++i) {
    DC_ASSIGN_OR_RETURN(double x, NumAt(a, i));
    DC_ASSIGN_OR_RETURN(double y, NumAt(b, i));
    out[i] = DblArith(x, op, y);
  }
  return Bat::MakeF64(std::move(out));
}

Result<BatPtr> MapArithConst(const Bat& a, ArithOp op, const Value& literal,
                             bool literal_left) {
  if (!IsNumeric(a.type()) || !IsNumeric(literal.type())) {
    return Status::TypeError("arith-const over non-numeric operand");
  }
  const uint64_t n = a.size();
  if (op != ArithOp::kDiv && StoredAsI64(a.type()) &&
      StoredAsI64(literal.type())) {
    const int64_t v = literal.AsI64();
    std::vector<int64_t> out(n);
    auto da = a.I64Data();
    for (uint64_t i = 0; i < n; ++i) {
      out[i] = literal_left ? IntArith(v, op, da[i]) : IntArith(da[i], op, v);
    }
    return Bat::MakeI64(std::move(out));
  }
  const double v = literal.NumericAsDouble();
  std::vector<double> out(n);
  for (uint64_t i = 0; i < n; ++i) {
    DC_ASSIGN_OR_RETURN(double x, NumAt(a, i));
    out[i] = literal_left ? DblArith(v, op, x) : DblArith(x, op, v);
  }
  return Bat::MakeF64(std::move(out));
}

Result<BatPtr> MapCmpCol(const Bat& a, CmpOp op, const Bat& b) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument("MapCmpCol: column size mismatch");
  }
  const uint64_t n = a.size();
  std::vector<uint8_t> out(n);
  if (IsNumeric(a.type()) && IsNumeric(b.type())) {
    for (uint64_t i = 0; i < n; ++i) {
      DC_ASSIGN_OR_RETURN(double x, NumAt(a, i));
      DC_ASSIGN_OR_RETURN(double y, NumAt(b, i));
      out[i] = CmpHolds(op, x < y ? -1 : (x == y ? 0 : 1)) ? 1 : 0;
    }
    return Bat::MakeBool(std::move(out));
  }
  if (a.type() == TypeId::kStr && b.type() == TypeId::kStr) {
    for (uint64_t i = 0; i < n; ++i) {
      const std::string_view x = a.StrAt(i);
      const std::string_view y = b.StrAt(i);
      out[i] = CmpHolds(op, x < y ? -1 : (x == y ? 0 : 1)) ? 1 : 0;
    }
    return Bat::MakeBool(std::move(out));
  }
  if (a.type() == TypeId::kBool && b.type() == TypeId::kBool) {
    auto da = a.BoolData();
    auto db = b.BoolData();
    for (uint64_t i = 0; i < n; ++i) {
      out[i] = CmpHolds(op, static_cast<int>(da[i]) - static_cast<int>(db[i]))
                   ? 1
                   : 0;
    }
    return Bat::MakeBool(std::move(out));
  }
  return Status::TypeError(StrFormat("cannot compare %s with %s",
                                     TypeName(a.type()), TypeName(b.type())));
}

Result<BatPtr> MapCmpConst(const Bat& a, CmpOp op, const Value& literal) {
  const uint64_t n = a.size();
  std::vector<uint8_t> out(n);
  if (IsNumeric(a.type()) && IsNumeric(literal.type())) {
    const double v = literal.NumericAsDouble();
    for (uint64_t i = 0; i < n; ++i) {
      DC_ASSIGN_OR_RETURN(double x, NumAt(a, i));
      out[i] = CmpHolds(op, x < v ? -1 : (x == v ? 0 : 1)) ? 1 : 0;
    }
    return Bat::MakeBool(std::move(out));
  }
  if (a.type() == TypeId::kStr && literal.type() == TypeId::kStr) {
    const std::string& v = literal.AsStr();
    for (uint64_t i = 0; i < n; ++i) {
      const std::string_view x = a.StrAt(i);
      out[i] = CmpHolds(op, x < v ? -1 : (x == v ? 0 : 1)) ? 1 : 0;
    }
    return Bat::MakeBool(std::move(out));
  }
  if (a.type() == TypeId::kBool && literal.type() == TypeId::kBool) {
    auto da = a.BoolData();
    const int v = literal.AsBool() ? 1 : 0;
    for (uint64_t i = 0; i < n; ++i) {
      out[i] = CmpHolds(op, static_cast<int>(da[i]) - v) ? 1 : 0;
    }
    return Bat::MakeBool(std::move(out));
  }
  return Status::TypeError(StrFormat("cannot compare %s with %s literal",
                                     TypeName(a.type()),
                                     TypeName(literal.type())));
}

Result<BatPtr> MapAnd(const Bat& a, const Bat& b) {
  if (a.type() != TypeId::kBool || b.type() != TypeId::kBool) {
    return Status::TypeError("AND expects bool columns");
  }
  if (a.size() != b.size()) {
    return Status::InvalidArgument("MapAnd: size mismatch");
  }
  std::vector<uint8_t> out(a.size());
  auto da = a.BoolData();
  auto db = b.BoolData();
  for (uint64_t i = 0; i < a.size(); ++i) out[i] = (da[i] && db[i]) ? 1 : 0;
  return Bat::MakeBool(std::move(out));
}

Result<BatPtr> MapOr(const Bat& a, const Bat& b) {
  if (a.type() != TypeId::kBool || b.type() != TypeId::kBool) {
    return Status::TypeError("OR expects bool columns");
  }
  if (a.size() != b.size()) {
    return Status::InvalidArgument("MapOr: size mismatch");
  }
  std::vector<uint8_t> out(a.size());
  auto da = a.BoolData();
  auto db = b.BoolData();
  for (uint64_t i = 0; i < a.size(); ++i) out[i] = (da[i] || db[i]) ? 1 : 0;
  return Bat::MakeBool(std::move(out));
}

Result<BatPtr> MapNot(const Bat& a) {
  if (a.type() != TypeId::kBool) {
    return Status::TypeError("NOT expects a bool column");
  }
  std::vector<uint8_t> out(a.size());
  auto da = a.BoolData();
  for (uint64_t i = 0; i < a.size(); ++i) out[i] = da[i] ? 0 : 1;
  return Bat::MakeBool(std::move(out));
}

Result<BatPtr> MapCast(const Bat& a, TypeId target) {
  if (a.type() == target) {
    return std::make_shared<Bat>(a);
  }
  auto out = std::make_shared<Bat>(target);
  out->Reserve(a.size());
  for (uint64_t i = 0; i < a.size(); ++i) {
    DC_ASSIGN_OR_RETURN(Value v, a.GetValue(i).CastTo(target));
    out->AppendValue(v);
  }
  return out;
}

BatPtr MakeConstColumn(const Value& literal, uint64_t n) {
  auto out = std::make_shared<Bat>(literal.type());
  out->Reserve(n);
  for (uint64_t i = 0; i < n; ++i) out->AppendValue(literal);
  return out;
}

}  // namespace dc::ops
