#include "bat/types.h"

#include <cmath>
#include <cstdlib>

#include "util/string_util.h"

namespace dc {

const char* TypeName(TypeId t) {
  switch (t) {
    case TypeId::kBool:
      return "bool";
    case TypeId::kI64:
      return "i64";
    case TypeId::kF64:
      return "f64";
    case TypeId::kStr:
      return "str";
    case TypeId::kTs:
      return "ts";
  }
  return "?";
}

Result<TypeId> TypeFromName(std::string_view name) {
  const std::string n = ToLower(name);
  if (n == "bool" || n == "boolean") return TypeId::kBool;
  if (n == "int" || n == "integer" || n == "bigint" || n == "i64" ||
      n == "long") {
    return TypeId::kI64;
  }
  if (n == "double" || n == "float" || n == "real" || n == "f64") {
    return TypeId::kF64;
  }
  if (n == "string" || n == "varchar" || n == "text" || n == "str") {
    return TypeId::kStr;
  }
  if (n == "timestamp" || n == "ts") return TypeId::kTs;
  return Status::TypeError(StrFormat("unknown type name '%s'", n.c_str()));
}

double Value::NumericAsDouble() const {
  switch (type_) {
    case TypeId::kI64:
    case TypeId::kTs:
      return static_cast<double>(AsI64());
    case TypeId::kF64:
      return AsF64();
    case TypeId::kBool:
      return AsBool() ? 1.0 : 0.0;
    case TypeId::kStr:
      break;
  }
  abort();
}

Result<Value> Value::CastTo(TypeId target) const {
  if (is_null()) return Value::Null(target);
  if (type_ == target) return *this;
  switch (target) {
    case TypeId::kF64:
      if (StoredAsI64(type_)) return Value::F64(static_cast<double>(AsI64()));
      if (type_ == TypeId::kStr) {
        char* end = nullptr;
        const double d = strtod(AsStr().c_str(), &end);
        if (end == AsStr().c_str() || *end != '\0') {
          return Status::TypeError(
              StrFormat("cannot parse '%s' as f64", AsStr().c_str()));
        }
        return Value::F64(d);
      }
      break;
    case TypeId::kI64:
      if (type_ == TypeId::kTs) return Value::I64(AsI64());
      if (type_ == TypeId::kF64) {
        return Value::I64(static_cast<int64_t>(AsF64()));
      }
      if (type_ == TypeId::kBool) return Value::I64(AsBool() ? 1 : 0);
      if (type_ == TypeId::kStr) {
        char* end = nullptr;
        const long long v = strtoll(AsStr().c_str(), &end, 10);
        if (end == AsStr().c_str() || *end != '\0') {
          return Status::TypeError(
              StrFormat("cannot parse '%s' as i64", AsStr().c_str()));
        }
        return Value::I64(v);
      }
      break;
    case TypeId::kTs:
      if (type_ == TypeId::kI64) return Value::Ts(AsI64());
      if (type_ == TypeId::kF64) {
        return Value::Ts(static_cast<int64_t>(AsF64()));
      }
      if (type_ == TypeId::kStr) {
        char* end = nullptr;
        const long long v = strtoll(AsStr().c_str(), &end, 10);
        if (end == AsStr().c_str() || *end != '\0') {
          return Status::TypeError(
              StrFormat("cannot parse '%s' as ts", AsStr().c_str()));
        }
        return Value::Ts(v);
      }
      break;
    case TypeId::kStr:
      return Value::Str(ToString());
    case TypeId::kBool:
      if (StoredAsI64(type_)) return Value::Bool(AsI64() != 0);
      break;
  }
  return Status::TypeError(StrFormat("cannot cast %s to %s", TypeName(type_),
                                     TypeName(target)));
}

int Value::Compare(const Value& other) const {
  if (type_ == TypeId::kStr || other.type_ == TypeId::kStr) {
    const std::string& a = AsStr();
    const std::string& b = other.AsStr();
    return a < b ? -1 : (a == b ? 0 : 1);
  }
  if (type_ == TypeId::kBool && other.type_ == TypeId::kBool) {
    return static_cast<int>(AsBool()) - static_cast<int>(other.AsBool());
  }
  if (type_ == TypeId::kF64 || other.type_ == TypeId::kF64) {
    const double a = NumericAsDouble();
    const double b = other.NumericAsDouble();
    return a < b ? -1 : (a == b ? 0 : 1);
  }
  const int64_t a = AsI64();
  const int64_t b = other.AsI64();
  return a < b ? -1 : (a == b ? 0 : 1);
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  switch (type_) {
    case TypeId::kBool:
      return AsBool() ? "true" : "false";
    case TypeId::kI64:
    case TypeId::kTs:
      return StrFormat("%lld", static_cast<long long>(AsI64()));
    case TypeId::kF64:
      return FormatDouble(AsF64());
    case TypeId::kStr:
      return AsStr();
  }
  return "?";
}

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "<>";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

const char* ArithOpName(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd:
      return "+";
    case ArithOp::kSub:
      return "-";
    case ArithOp::kMul:
      return "*";
    case ArithOp::kDiv:
      return "/";
    case ArithOp::kMod:
      return "%";
  }
  return "?";
}

}  // namespace dc
