#include "bat/bat.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "util/string_util.h"

namespace dc {

Bat::Bat(TypeId t) : type_(t), size_(0) {}

BatPtr Bat::MakeBool(std::vector<uint8_t> v) {
  auto b = std::make_shared<Bat>(TypeId::kBool);
  b->size_ = v.size();
  b->bools_ = std::move(v);
  return b;
}

BatPtr Bat::MakeI64(std::vector<int64_t> v) {
  auto b = std::make_shared<Bat>(TypeId::kI64);
  b->size_ = v.size();
  b->ints_ = std::move(v);
  return b;
}

BatPtr Bat::MakeF64(std::vector<double> v) {
  auto b = std::make_shared<Bat>(TypeId::kF64);
  b->size_ = v.size();
  b->dbls_ = std::move(v);
  return b;
}

BatPtr Bat::MakeStr(const std::vector<std::string>& v) {
  auto b = std::make_shared<Bat>(TypeId::kStr);
  for (const auto& s : v) b->AppendStr(s);
  return b;
}

BatPtr Bat::MakeTs(std::vector<int64_t> v) {
  auto b = std::make_shared<Bat>(TypeId::kTs);
  b->size_ = v.size();
  b->ints_ = std::move(v);
  return b;
}

size_t Bat::MemoryBytes() const {
  return bools_.capacity() + ints_.capacity() * sizeof(int64_t) +
         dbls_.capacity() * sizeof(double) +
         strs_.capacity() * sizeof(uint64_t) + heap_.ByteSize() +
         nulls_.capacity();
}

void Bat::Reserve(uint64_t n) {
  switch (type_) {
    case TypeId::kBool:
      bools_.reserve(n);
      break;
    case TypeId::kI64:
    case TypeId::kTs:
      ints_.reserve(n);
      break;
    case TypeId::kF64:
      dbls_.reserve(n);
      break;
    case TypeId::kStr:
      strs_.reserve(n);
      break;
  }
}

void Bat::AppendBool(bool v) {
  bools_.push_back(v ? 1 : 0);
  ++size_;
}

void Bat::AppendI64(int64_t v) {
  ints_.push_back(v);
  ++size_;
}

void Bat::AppendF64(double v) {
  dbls_.push_back(v);
  ++size_;
}

void Bat::AppendStr(std::string_view v) {
  strs_.push_back(heap_.Add(v));
  ++size_;
}

void Bat::AppendRepeatedI64(int64_t v, uint64_t n) {
  ints_.insert(ints_.end(), n, v);
  size_ += n;
}

void Bat::AppendNull() {
  nulls_.resize(size_, 0);
  switch (type_) {
    case TypeId::kBool:
      bools_.push_back(0);
      break;
    case TypeId::kI64:
    case TypeId::kTs:
      ints_.push_back(0);
      break;
    case TypeId::kF64:
      dbls_.push_back(0);
      break;
    case TypeId::kStr:
      strs_.push_back(heap_.Add(""));
      break;
  }
  ++size_;
  nulls_.push_back(1);
}

void Bat::AppendValue(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return;
  }
  switch (type_) {
    case TypeId::kBool:
      AppendBool(v.AsBool());
      return;
    case TypeId::kI64:
    case TypeId::kTs:
      AppendI64(v.AsI64());
      return;
    case TypeId::kF64:
      AppendF64(v.type() == TypeId::kF64 ? v.AsF64() : v.NumericAsDouble());
      return;
    case TypeId::kStr:
      AppendStr(v.AsStr());
      return;
  }
  abort();
}

void Bat::AppendRange(const Bat& src, uint64_t from, uint64_t to) {
  switch (type_) {
    case TypeId::kBool:
      bools_.insert(bools_.end(), src.bools_.begin() + from,
                    src.bools_.begin() + to);
      break;
    case TypeId::kI64:
    case TypeId::kTs:
      ints_.insert(ints_.end(), src.ints_.begin() + from,
                   src.ints_.begin() + to);
      break;
    case TypeId::kF64:
      dbls_.insert(dbls_.end(), src.dbls_.begin() + from,
                   src.dbls_.begin() + to);
      break;
    case TypeId::kStr:
      for (uint64_t i = from; i < to; ++i) strs_.push_back(heap_.Add(src.StrAt(i)));
      break;
  }
  size_ += to - from;
  if (src.has_nulls()) {
    bool any = false;
    for (uint64_t i = from; i < to && !any; ++i) any = src.IsNull(i);
    if (any) {
      nulls_.resize(size_ - (to - from), 0);
      for (uint64_t i = from; i < to; ++i) {
        nulls_.push_back(src.IsNull(i) ? 1 : 0);
      }
    }
  }
}

void Bat::AppendCandidates(const Bat& src, const Candidates& cand) {
  if (cand.is_dense()) {
    if (cand.empty()) return;
    AppendRange(src, cand.first(), cand.first() + cand.size());
    return;
  }
  switch (type_) {
    case TypeId::kBool:
      cand.ForEach([&](Oid o) { bools_.push_back(src.bools_[o]); });
      break;
    case TypeId::kI64:
    case TypeId::kTs:
      cand.ForEach([&](Oid o) { ints_.push_back(src.ints_[o]); });
      break;
    case TypeId::kF64:
      cand.ForEach([&](Oid o) { dbls_.push_back(src.dbls_[o]); });
      break;
    case TypeId::kStr:
      cand.ForEach([&](Oid o) { strs_.push_back(heap_.Add(src.StrAt(o))); });
      break;
  }
  size_ += cand.size();
  if (src.has_nulls()) {
    bool any = false;
    cand.ForEach([&](Oid o) { any = any || src.IsNull(o); });
    if (any) {
      nulls_.resize(size_ - cand.size(), 0);
      cand.ForEach([&](Oid o) { nulls_.push_back(src.IsNull(o) ? 1 : 0); });
    }
  }
}

void Bat::DropHead(uint64_t n) {
  if (n == 0) return;
  n = std::min(n, size_);
  switch (type_) {
    case TypeId::kBool:
      bools_.erase(bools_.begin(), bools_.begin() + n);
      break;
    case TypeId::kI64:
    case TypeId::kTs:
      ints_.erase(ints_.begin(), ints_.begin() + n);
      break;
    case TypeId::kF64:
      dbls_.erase(dbls_.begin(), dbls_.begin() + n);
      break;
    case TypeId::kStr: {
      // Rebuild the heap with the surviving strings so the arena does not
      // grow without bound as the basket slides.
      StringHeap fresh;
      std::vector<uint64_t> offs;
      offs.reserve(size_ - n);
      for (uint64_t i = n; i < size_; ++i) offs.push_back(fresh.Add(StrAt(i)));
      heap_ = std::move(fresh);
      strs_ = std::move(offs);
      break;
    }
  }
  size_ -= n;
  if (!nulls_.empty()) {
    nulls_.erase(nulls_.begin(),
                 nulls_.begin() + std::min<uint64_t>(n, nulls_.size()));
  }
}

Value Bat::GetValue(uint64_t i) const {
  if (IsNull(i)) return Value::Null(type_);
  switch (type_) {
    case TypeId::kBool:
      return Value::Bool(bools_[i] != 0);
    case TypeId::kI64:
      return Value::I64(ints_[i]);
    case TypeId::kTs:
      return Value::Ts(ints_[i]);
    case TypeId::kF64:
      return Value::F64(dbls_[i]);
    case TypeId::kStr:
      return Value::Str(std::string(StrAt(i)));
  }
  abort();
}

BatPtr Bat::Slice(uint64_t from, uint64_t to) const {
  auto out = std::make_shared<Bat>(type_);
  out->Reserve(to - from);
  out->AppendRange(*this, from, to);
  return out;
}

BatPtr Bat::Gather(const Candidates& cand) const {
  auto out = std::make_shared<Bat>(type_);
  out->Reserve(cand.size());
  out->AppendCandidates(*this, cand);
  return out;
}

std::string Bat::ToString(uint64_t max_rows) const {
  std::string out = StrFormat("Bat<%s>[%llu]{", TypeName(type_),
                              static_cast<unsigned long long>(size_));
  const uint64_t n = std::min(size_, max_rows);
  for (uint64_t i = 0; i < n; ++i) {
    if (i > 0) out += ", ";
    out += GetValue(i).ToString();
  }
  if (size_ > n) out += ", ...";
  out += "}";
  return out;
}

Result<size_t> ColumnSet::Find(std::string_view name) const {
  for (size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return i;
  }
  return Status::NotFound(StrFormat("no column named '%.*s'",
                                    static_cast<int>(name.size()),
                                    name.data()));
}

std::vector<Value> ColumnSet::Row(uint64_t i) const {
  std::vector<Value> row;
  row.reserve(cols.size());
  for (const auto& c : cols) row.push_back(c->GetValue(i));
  return row;
}

std::string ColumnSet::ToString(uint64_t max_rows) const {
  const uint64_t rows = NumRows();
  const uint64_t shown = std::min(rows, max_rows);
  // Compute column widths.
  std::vector<size_t> width(names.size());
  std::vector<std::vector<std::string>> cells(shown);
  for (size_t c = 0; c < names.size(); ++c) width[c] = names[c].size();
  for (uint64_t r = 0; r < shown; ++r) {
    cells[r].resize(names.size());
    for (size_t c = 0; c < names.size(); ++c) {
      cells[r][c] = cols[c]->GetValue(r).ToString();
      width[c] = std::max(width[c], cells[r][c].size());
    }
  }
  std::string out;
  for (size_t c = 0; c < names.size(); ++c) {
    out += StrFormat("%-*s", static_cast<int>(width[c] + 2), names[c].c_str());
  }
  out += "\n";
  for (size_t c = 0; c < names.size(); ++c) {
    out += std::string(width[c], '-') + "  ";
  }
  out += "\n";
  for (uint64_t r = 0; r < shown; ++r) {
    for (size_t c = 0; c < names.size(); ++c) {
      out += StrFormat("%-*s", static_cast<int>(width[c] + 2),
                       cells[r][c].c_str());
    }
    out += "\n";
  }
  if (rows > shown) {
    out += StrFormat("... (%llu rows total)\n",
                     static_cast<unsigned long long>(rows));
  }
  return out;
}

}  // namespace dc
