#include "bat/ops_sort.h"

#include <algorithm>
#include <queue>

namespace dc::ops {

namespace {

// Three-way comparison across two columns of the same type (rows of
// different sorted runs). SortOrder and MergeSortedRuns must order cells
// identically — the FULL == INCREMENTAL stable-merge invariant depends on
// it — so this is the single comparison routine for both.
int CompareCell2(const Bat& ca, Oid a, const Bat& cb, Oid b) {
  switch (ca.type()) {
    case TypeId::kBool: {
      const int x = ca.BoolData()[a];
      const int y = cb.BoolData()[b];
      return x - y;
    }
    case TypeId::kI64:
    case TypeId::kTs: {
      const int64_t x = ca.I64Data()[a];
      const int64_t y = cb.I64Data()[b];
      return x < y ? -1 : (x == y ? 0 : 1);
    }
    case TypeId::kF64: {
      const double x = ca.F64Data()[a];
      const double y = cb.F64Data()[b];
      return x < y ? -1 : (x == y ? 0 : 1);
    }
    case TypeId::kStr: {
      const std::string_view x = ca.StrAt(a);
      const std::string_view y = cb.StrAt(b);
      return x < y ? -1 : (x == y ? 0 : 1);
    }
  }
  return 0;
}

// Three-way comparison of two rows of one column.
int CompareCell(const Bat& col, Oid a, Oid b) {
  return CompareCell2(col, a, col, b);
}

}  // namespace

Result<std::vector<Oid>> SortOrder(const std::vector<SortKey>& keys,
                                   const Candidates* cand) {
  if (keys.empty()) {
    return Status::InvalidArgument("SortOrder requires at least one key");
  }
  const uint64_t domain = keys[0].col->size();
  for (const SortKey& k : keys) {
    if (k.col->size() != domain) {
      return Status::InvalidArgument("SortOrder: key size mismatch");
    }
  }
  std::vector<Oid> order;
  if (cand) {
    order = cand->ToVector();
  } else {
    order.resize(domain);
    for (uint64_t i = 0; i < domain; ++i) order[i] = i;
  }
  std::stable_sort(order.begin(), order.end(), [&](Oid a, Oid b) {
    for (const SortKey& k : keys) {
      const int c = CompareCell(*k.col, a, b);
      if (c != 0) return k.ascending ? c < 0 : c > 0;
    }
    return false;
  });
  return order;
}

Result<std::vector<MergeSlice>> MergeSortedRuns(
    const std::vector<std::vector<SortKey>>& runs) {
  size_t arity = 0;
  for (const auto& keys : runs) {
    if (keys.empty()) {
      return Status::InvalidArgument("MergeSortedRuns: run without keys");
    }
    if (arity == 0) arity = keys.size();
    if (keys.size() != arity) {
      return Status::InvalidArgument("MergeSortedRuns: key arity mismatch");
    }
  }
  // head[r] = next unconsumed row of run r. `less(a, b)` compares the
  // heads of two runs; equal keys fall back to the run index, which keeps
  // the merge equivalent to a stable sort of the concatenation.
  std::vector<Oid> head(runs.size(), 0);
  auto less = [&](int ra, int rb) {
    for (size_t k = 0; k < arity; ++k) {
      const SortKey& ka = runs[ra][k];
      const int c = CompareCell2(*ka.col, head[ra], *runs[rb][k].col,
                                 head[rb]);
      if (c != 0) return ka.ascending ? c < 0 : c > 0;
    }
    return ra < rb;
  };
  // Min-heap of run indices (std::priority_queue is a max-heap, so invert).
  auto heap_cmp = [&](int ra, int rb) { return less(rb, ra); };
  std::priority_queue<int, std::vector<int>, decltype(heap_cmp)> heap(
      heap_cmp);
  for (size_t r = 0; r < runs.size(); ++r) {
    if (runs[r][0].col->size() > 0) heap.push(static_cast<int>(r));
  }
  // Emit maximal slices: after popping the minimal run, keep consuming
  // from it while its head still precedes the next-best run's head.
  // `less(t, r)` applies the same tie rule (lower run index first), so
  // slice boundaries land exactly where the pairwise merge would switch
  // runs — batching changes the gather granularity, not the order.
  std::vector<MergeSlice> out;
  while (!heap.empty()) {
    const int r = heap.top();
    heap.pop();
    const Oid begin = head[r];
    const uint64_t n = runs[r][0].col->size();
    if (heap.empty()) {
      out.push_back(MergeSlice{r, begin, n - begin});
      break;
    }
    const int t = heap.top();
    do {
      ++head[r];
    } while (head[r] < n && !less(t, r));
    out.push_back(MergeSlice{r, begin, head[r] - begin});
    if (head[r] < n) heap.push(r);
  }
  return out;
}

}  // namespace dc::ops
