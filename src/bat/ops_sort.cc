#include "bat/ops_sort.h"

#include <algorithm>

namespace dc::ops {

namespace {

// Three-way comparison of two rows of one column without boxing.
int CompareCell(const Bat& col, Oid a, Oid b) {
  switch (col.type()) {
    case TypeId::kBool: {
      const int x = col.BoolData()[a];
      const int y = col.BoolData()[b];
      return x - y;
    }
    case TypeId::kI64:
    case TypeId::kTs: {
      const int64_t x = col.I64Data()[a];
      const int64_t y = col.I64Data()[b];
      return x < y ? -1 : (x == y ? 0 : 1);
    }
    case TypeId::kF64: {
      const double x = col.F64Data()[a];
      const double y = col.F64Data()[b];
      return x < y ? -1 : (x == y ? 0 : 1);
    }
    case TypeId::kStr: {
      const std::string_view x = col.StrAt(a);
      const std::string_view y = col.StrAt(b);
      return x < y ? -1 : (x == y ? 0 : 1);
    }
  }
  return 0;
}

}  // namespace

Result<std::vector<Oid>> SortOrder(const std::vector<SortKey>& keys,
                                   const Candidates* cand) {
  if (keys.empty()) {
    return Status::InvalidArgument("SortOrder requires at least one key");
  }
  const uint64_t domain = keys[0].col->size();
  for (const SortKey& k : keys) {
    if (k.col->size() != domain) {
      return Status::InvalidArgument("SortOrder: key size mismatch");
    }
  }
  std::vector<Oid> order;
  if (cand) {
    order = cand->ToVector();
  } else {
    order.resize(domain);
    for (uint64_t i = 0; i < domain; ++i) order[i] = i;
  }
  std::stable_sort(order.begin(), order.end(), [&](Oid a, Oid b) {
    for (const SortKey& k : keys) {
      const int c = CompareCell(*k.col, a, b);
      if (c != 0) return k.ascending ? c < 0 : c > 0;
    }
    return false;
  });
  return order;
}

}  // namespace dc::ops
