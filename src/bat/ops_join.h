// Copyright 2026 The DataCell Authors.
//
// Equi-join over two columns. Returns matching oid pairs (the MonetDB
// "join index"); callers fetch payload columns from either side with the
// returned oid lists (late reconstruction).

#ifndef DATACELL_BAT_OPS_JOIN_H_
#define DATACELL_BAT_OPS_JOIN_H_

#include <vector>

#include "bat/bat.h"
#include "bat/candidates.h"
#include "bat/ops_index.h"
#include "util/result.h"

namespace dc::ops {

/// Pairs of matching row ids; left[i] matches right[i]. Output is ordered
/// by left oid (probe order), ties in right build order.
struct JoinResult {
  std::vector<Oid> left;
  std::vector<Oid> right;

  uint64_t size() const { return left.size(); }
};

/// Inner hash equi-join: build on `right` (restricted to `rcand`), probe
/// with `left` (restricted to `lcand`). Join key types must match
/// (numeric types join via double promotion; STR joins STR).
Result<JoinResult> HashJoin(const Bat& left, const Bat& right,
                            const Candidates* lcand = nullptr,
                            const Candidates* rcand = nullptr);

/// Delta equi-join for incremental sliding windows. Each side is the full
/// window key column laid out as [retained ; new]: rows below
/// `left_old` / `right_old` were joined on earlier slides, rows at or
/// above it arrived with the newest basic window. Returns exactly the
/// pairs of HashJoin(left, right) that involve at least one new row —
/// new⋈old ∪ old⋈new ∪ new⋈new — so cached pair results stay disjoint
/// from the delta. Hash tables are built over the new portions only;
/// per-slide build cost is proportional to the new basic window (the old
/// portions are probed, never rebuilt). When either old portion is empty
/// every pair involves a new row and this degenerates to a full HashJoin.
Result<JoinResult> DeltaJoin(const Bat& left, uint64_t left_old,
                             const Bat& right, uint64_t right_old);

/// Equality domain two join key types meet in: both i64-like -> kI64,
/// both numeric -> kF64 (double promotion, as HashJoin), str/str -> kStr.
/// This is the domain a RollingJoinIndex over either side must use.
Result<TypeId> JoinKeyDomain(TypeId l, TypeId r);

/// Indexed delta equi-join: the O(new) variant of DeltaJoin. Layout is the
/// same ([retained ; new] per side, split at `left_old` / `right_old`),
/// but each side's retained rows are covered by a RollingJoinIndex (new
/// rows must NOT be indexed yet), so the retained portions are neither
/// re-copied nor re-probed: retained⋈new comes from two index probes with
/// only the new keys, new⋈new from a hash join over the new portions.
/// Retained rows the indexes have evicted (expired basic windows awaiting
/// a trim) are skipped, so the physical retained prefix may contain dead
/// rows. Per-emission cost is O(new rows + result pairs).
Result<JoinResult> IndexedDeltaJoin(const Bat& left, uint64_t left_old,
                                    const RollingJoinIndex& left_index,
                                    const Bat& right, uint64_t right_old,
                                    const RollingJoinIndex& right_index);

/// Materializes `col[oids[i]]` for every i — payload fetch through a join
/// index (oids may repeat; unlike Candidates they need not be sorted).
BatPtr FetchOids(const Bat& col, const std::vector<Oid>& oids);

}  // namespace dc::ops

#endif  // DATACELL_BAT_OPS_JOIN_H_
