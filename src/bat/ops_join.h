// Copyright 2026 The DataCell Authors.
//
// Equi-join over two columns. Returns matching oid pairs (the MonetDB
// "join index"); callers fetch payload columns from either side with the
// returned oid lists (late reconstruction).

#ifndef DATACELL_BAT_OPS_JOIN_H_
#define DATACELL_BAT_OPS_JOIN_H_

#include <vector>

#include "bat/bat.h"
#include "bat/candidates.h"
#include "util/result.h"

namespace dc::ops {

/// Pairs of matching row ids; left[i] matches right[i]. Output is ordered
/// by left oid (probe order), ties in right build order.
struct JoinResult {
  std::vector<Oid> left;
  std::vector<Oid> right;

  uint64_t size() const { return left.size(); }
};

/// Inner hash equi-join: build on `right` (restricted to `rcand`), probe
/// with `left` (restricted to `lcand`). Join key types must match
/// (numeric types join via double promotion; STR joins STR).
Result<JoinResult> HashJoin(const Bat& left, const Bat& right,
                            const Candidates* lcand = nullptr,
                            const Candidates* rcand = nullptr);

/// Delta equi-join for incremental sliding windows. Each side is the full
/// window key column laid out as [retained ; new]: rows below
/// `left_old` / `right_old` were joined on earlier slides, rows at or
/// above it arrived with the newest basic window. Returns exactly the
/// pairs of HashJoin(left, right) that involve at least one new row —
/// new⋈old ∪ old⋈new ∪ new⋈new — so cached pair results stay disjoint
/// from the delta. Hash tables are built over the new portions only;
/// per-slide build cost is proportional to the new basic window (the old
/// portions are probed, never rebuilt). When either old portion is empty
/// every pair involves a new row and this degenerates to a full HashJoin.
Result<JoinResult> DeltaJoin(const Bat& left, uint64_t left_old,
                             const Bat& right, uint64_t right_old);

/// Materializes `col[oids[i]]` for every i — payload fetch through a join
/// index (oids may repeat; unlike Candidates they need not be sorted).
BatPtr FetchOids(const Bat& col, const std::vector<Oid>& oids);

}  // namespace dc::ops

#endif  // DATACELL_BAT_OPS_JOIN_H_
