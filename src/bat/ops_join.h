// Copyright 2026 The DataCell Authors.
//
// Equi-join over two columns. Returns matching oid pairs (the MonetDB
// "join index"); callers fetch payload columns from either side with the
// returned oid lists (late reconstruction).

#ifndef DATACELL_BAT_OPS_JOIN_H_
#define DATACELL_BAT_OPS_JOIN_H_

#include <vector>

#include "bat/bat.h"
#include "bat/candidates.h"
#include "util/result.h"

namespace dc::ops {

/// Pairs of matching row ids; left[i] matches right[i]. Output is ordered
/// by left oid (probe order), ties in right build order.
struct JoinResult {
  std::vector<Oid> left;
  std::vector<Oid> right;

  uint64_t size() const { return left.size(); }
};

/// Inner hash equi-join: build on `right` (restricted to `rcand`), probe
/// with `left` (restricted to `lcand`). Join key types must match
/// (numeric types join via double promotion; STR joins STR).
Result<JoinResult> HashJoin(const Bat& left, const Bat& right,
                            const Candidates* lcand = nullptr,
                            const Candidates* rcand = nullptr);

/// Materializes `col[oids[i]]` for every i — payload fetch through a join
/// index (oids may repeat; unlike Candidates they need not be sorted).
BatPtr FetchOids(const Bat& col, const std::vector<Oid>& oids);

}  // namespace dc::ops

#endif  // DATACELL_BAT_OPS_JOIN_H_
