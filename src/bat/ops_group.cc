#include "bat/ops_group.h"

#include "bat/hash.h"
#include "util/string_util.h"

namespace dc::ops {

namespace {

uint64_t HashCell(const Bat& col, Oid o) {
  switch (col.type()) {
    case TypeId::kBool:
      return HashU64(col.BoolData()[o]);
    case TypeId::kI64:
    case TypeId::kTs:
      return HashI64(col.I64Data()[o]);
    case TypeId::kF64:
      return HashDouble(col.F64Data()[o]);
    case TypeId::kStr:
      return HashBytes(col.StrAt(o));
  }
  return 0;
}

bool CellsEqual(const Bat& col, Oid a, Oid b) {
  switch (col.type()) {
    case TypeId::kBool:
      return col.BoolData()[a] == col.BoolData()[b];
    case TypeId::kI64:
    case TypeId::kTs:
      return col.I64Data()[a] == col.I64Data()[b];
    case TypeId::kF64:
      return col.F64Data()[a] == col.F64Data()[b];
    case TypeId::kStr:
      return col.StrAt(a) == col.StrAt(b);
  }
  return false;
}

}  // namespace

Result<GroupResult> GroupBy(const std::vector<const Bat*>& keys,
                            const Candidates* cand) {
  if (keys.empty()) {
    return Status::InvalidArgument("GroupBy requires at least one key");
  }
  const uint64_t n = keys[0]->size();
  for (const Bat* k : keys) {
    if (k->size() != n) {
      return Status::InvalidArgument("GroupBy: key column size mismatch");
    }
  }
  GroupResult out;
  out.group_ids.reserve(cand ? cand->size() : n);
  // hash -> list of group ids with that hash (collision chain).
  std::unordered_map<uint64_t, std::vector<uint32_t>> index;

  auto row_hash = [&](Oid o) {
    uint64_t h = 0x9ae16a3b2f90404fULL;
    for (const Bat* k : keys) h = HashCombine(h, HashCell(*k, o));
    return h;
  };
  auto rows_equal = [&](Oid a, Oid b) {
    for (const Bat* k : keys) {
      if (!CellsEqual(*k, a, b)) return false;
    }
    return true;
  };
  auto visit = [&](Oid o) {
    const uint64_t h = row_hash(o);
    auto& chain = index[h];
    for (uint32_t gid : chain) {
      if (rows_equal(o, out.representatives[gid])) {
        out.group_ids.push_back(gid);
        return;
      }
    }
    const uint32_t gid = out.num_groups++;
    chain.push_back(gid);
    out.representatives.push_back(o);
    out.group_ids.push_back(gid);
  };
  if (cand) {
    cand->ForEach(visit);
  } else {
    for (Oid o = 0; o < n; ++o) visit(o);
  }
  return out;
}

Result<BatPtr> GroupedAgg(AggKind kind, const Bat* values,
                          const Candidates* values_cand,
                          const GroupResult& groups) {
  const TypeId vt = values ? values->type() : TypeId::kI64;
  DC_ASSIGN_OR_RETURN(TypeId out_type, AggResultType(kind, vt));
  std::vector<AggState> states(groups.num_groups);

  uint64_t i = 0;
  auto visit = [&](Oid o) {
    AggState& st = states[groups.group_ids[i++]];
    if (values) {
      st.Add(values->GetValue(o));
    } else {
      ++st.count;
    }
  };
  if (values_cand) {
    values_cand->ForEach(visit);
  } else {
    const uint64_t n = groups.group_ids.size();
    for (Oid o = 0; o < n; ++o) visit(o);
  }

  auto out = std::make_shared<Bat>(out_type);
  out->Reserve(groups.num_groups);
  for (const AggState& st : states) {
    out->AppendValue(st.Finalize(kind, vt));
  }
  return out;
}

GroupedAggMerger::GroupedAggMerger(
    std::vector<TypeId> key_types,
    std::vector<std::pair<AggKind, TypeId>> aggs)
    : key_types_(std::move(key_types)), aggs_(std::move(aggs)) {}

uint64_t GroupedAggMerger::HashKey(const std::vector<Value>& key) const {
  uint64_t h = 0x9ae16a3b2f90404fULL;
  for (const Value& v : key) {
    switch (v.type()) {
      case TypeId::kBool:
        h = HashCombine(h, HashU64(v.AsBool() ? 1 : 0));
        break;
      case TypeId::kI64:
      case TypeId::kTs:
        h = HashCombine(h, HashI64(v.AsI64()));
        break;
      case TypeId::kF64:
        h = HashCombine(h, HashDouble(v.AsF64()));
        break;
      case TypeId::kStr:
        h = HashCombine(h, HashBytes(v.AsStr()));
        break;
    }
  }
  return h;
}

Status GroupedAggMerger::AddPartial(const std::vector<const Bat*>& keys,
                                    const std::vector<const Bat*>& values) {
  if (keys.size() != key_types_.size()) {
    return Status::InvalidArgument("AddPartial: key column count mismatch");
  }
  if (values.size() != aggs_.size()) {
    return Status::InvalidArgument("AddPartial: value column count mismatch");
  }
  const uint64_t n = keys.empty() ? 0 : keys[0]->size();
  for (uint64_t i = 0; i < n; ++i) {
    std::vector<Value> key;
    key.reserve(keys.size());
    for (const Bat* k : keys) key.push_back(k->GetValue(i));
    const uint64_t h = HashKey(key);
    auto& chain = index_[h];
    uint32_t gid = UINT32_MAX;
    for (uint32_t g : chain) {
      if (group_keys_[g].key == key) {
        gid = g;
        break;
      }
    }
    if (gid == UINT32_MAX) {
      gid = static_cast<uint32_t>(group_keys_.size());
      chain.push_back(gid);
      GroupEntry entry;
      entry.key = std::move(key);
      entry.states.resize(aggs_.size());
      group_keys_.push_back(std::move(entry));
    }
    GroupEntry& entry = group_keys_[gid];
    for (size_t a = 0; a < aggs_.size(); ++a) {
      if (values[a] != nullptr) {
        entry.states[a].Add(values[a]->GetValue(i));
      } else {
        ++entry.states[a].count;
      }
    }
  }
  return Status::OK();
}

Status GroupedAggMerger::MergeFrom(const GroupedAggMerger& other) {
  if (other.key_types_ != key_types_ || other.aggs_ != aggs_) {
    return Status::InvalidArgument("MergeFrom: incompatible merger layout");
  }
  for (const GroupEntry& oe : other.group_keys_) {
    const uint64_t h = HashKey(oe.key);
    auto& chain = index_[h];
    uint32_t gid = UINT32_MAX;
    for (uint32_t g : chain) {
      if (group_keys_[g].key == oe.key) {
        gid = g;
        break;
      }
    }
    if (gid == UINT32_MAX) {
      gid = static_cast<uint32_t>(group_keys_.size());
      chain.push_back(gid);
      group_keys_.push_back(oe);
      continue;
    }
    GroupEntry& entry = group_keys_[gid];
    for (size_t a = 0; a < aggs_.size(); ++a) {
      entry.states[a].Merge(oe.states[a]);
    }
  }
  return Status::OK();
}

Result<std::vector<BatPtr>> GroupedAggMerger::Finalize() const {
  std::vector<BatPtr> out;
  for (TypeId t : key_types_) {
    out.push_back(Bat::MakeEmpty(t));
    out.back()->Reserve(group_keys_.size());
  }
  for (const auto& [kind, vt] : aggs_) {
    DC_ASSIGN_OR_RETURN(TypeId ot, AggResultType(kind, vt));
    out.push_back(Bat::MakeEmpty(ot));
    out.back()->Reserve(group_keys_.size());
  }
  for (const GroupEntry& entry : group_keys_) {
    for (size_t k = 0; k < key_types_.size(); ++k) {
      out[k]->AppendValue(entry.key[k]);
    }
    for (size_t a = 0; a < aggs_.size(); ++a) {
      out[key_types_.size() + a]->AppendValue(
          entry.states[a].Finalize(aggs_[a].first, aggs_[a].second));
    }
  }
  return out;
}

}  // namespace dc::ops
