// Copyright 2026 The DataCell Authors.
//
// Event tracing (docs/OBSERVABILITY.md): per-thread ring buffers of
// scoped spans, dumped as Chrome trace_event JSON (chrome://tracing,
// Perfetto). Gated by EngineOptions::enable_tracing.
//
// Hot-path contract:
//  * Disabled (the default): one relaxed atomic load per span — the
//    overhead CTest (trace_overhead_guard) holds this within noise.
//  * Enabled: each thread records into its own fixed-size ring
//    (overwrite-oldest) behind a per-thread mutex that only DumpJson()
//    ever contends — uncontended lock/unlock on the record path, and
//    TSan-clean by construction (no seqlock races).
//  * Span names/categories are `const char*` and MUST be string
//    literals; events store the pointer, not a copy.
//
// Lock ranks: the buffer registry ranks kTraceRegistry (170) and each
// ring kTraceBuffer (180) — leaf-ranked, so spans may open/close while
// holding any engine lock (docs/CONCURRENCY.md). Nothing here logs or
// re-enters the engine while holding either lock.
//
// Enablement is a process-wide refcount: each Engine constructed with
// enable_tracing=true holds one reference, so overlapping engines
// compose and tracing stops when the last one is destroyed.

#ifndef DATACELL_MONITOR_TRACE_H_
#define DATACELL_MONITOR_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "util/clock.h"

namespace dc::trace {

namespace internal {
inline std::atomic<bool> g_enabled{false};
}  // namespace internal

/// True when at least one enable reference is held. Relaxed: a span that
/// narrowly misses an enable/disable edge is dropped or recorded late,
/// which is fine for diagnostics.
inline bool Enabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}

/// Refcounted enable: Engine ctor/dtor call these when
/// EngineOptions::enable_tracing is set; tests may call them directly.
void AddEnableRef();
void ReleaseEnableRef();

/// Record a zero-duration event (ph:"X", dur 0) — e.g. a work steal.
/// `name`/`cat` must be string literals.
void Instant(const char* name, const char* cat, int64_t arg = 0);

/// RAII span: records one complete event (ph:"X") covering the scope's
/// lifetime. Enablement is sampled once at construction. `name`/`cat`
/// must be string literals.
class Span {
 public:
  Span(const char* name, const char* cat, int64_t arg = 0)
      : name_(name), cat_(cat), arg_(arg), armed_(Enabled()) {
    if (armed_) start_ = SteadyMicros();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span();

  /// Update the numeric payload before the span closes (e.g. rows
  /// actually delivered, known only at the end of the scope).
  void set_arg(int64_t arg) { arg_ = arg; }

  /// Suppress recording (e.g. the scope turned out to be a no-op tick).
  void Cancel() { armed_ = false; }

 private:
  const char* name_;
  const char* cat_;
  int64_t arg_;
  bool armed_;
  Micros start_ = 0;
};

/// Serializes every buffered event as Chrome trace JSON:
/// {"traceEvents":[{"name":...,"cat":...,"ph":"X","ts":...,"dur":...,
/// "pid":1,"tid":<buffer#>,"args":{"v":<arg>}},...]}.
/// Timestamps are SteadyMicros() values (already µs, as the format
/// expects). Buffers of exited threads are retained and included.
std::string DumpJson();

/// Total events currently buffered across all threads.
uint64_t BufferedEventsForTest();

/// Drops all buffered events (buffers stay registered).
void ClearForTest();

}  // namespace dc::trace

#endif  // DATACELL_MONITOR_TRACE_H_
