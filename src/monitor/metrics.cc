#include "monitor/metrics.h"

#include <algorithm>
#include <utility>

#include "util/string_util.h"

namespace dc::monitor {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", static_cast<unsigned>(c));
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string PromName(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(0, 1, '_');
  return out;
}

/// %g-style formatting that never produces locale surprises.
std::string Num(double v) {
  std::string s = StrFormat("%.6g", v);
  return s;
}

}  // namespace

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* g = new MetricsRegistry();
  return *g;
}

std::shared_ptr<Counter> MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_shared<Counter>();
  return slot;
}

std::shared_ptr<Gauge> MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_shared<Gauge>();
  return slot;
}

std::shared_ptr<HistogramMetric> MetricsRegistry::GetHistogram(
    const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = hists_[name];
  if (!slot) slot = std::make_shared<HistogramMetric>();
  return slot;
}

bool MetricsRegistry::Remove(const std::string& name) {
  MutexLock lock(mu_);
  bool removed = counters_.erase(name) > 0;
  removed = gauges_.erase(name) > 0 || removed;
  removed = hists_.erase(name) > 0 || removed;
  return removed;
}

std::vector<MetricSnapshot> MetricsRegistry::Collect() const {
  // Copy the handle maps under mu_ (kMetrics), then read values outside
  // it — histogram snapshots take kMetricsHistogram, which would also be
  // legal under mu_ (150 < 160) but this keeps the registry lock short.
  std::map<std::string, std::shared_ptr<Counter>> counters;
  std::map<std::string, std::shared_ptr<Gauge>> gauges;
  std::map<std::string, std::shared_ptr<HistogramMetric>> hists;
  {
    MutexLock lock(mu_);
    counters = counters_;
    gauges = gauges_;
    hists = hists_;
  }
  std::vector<MetricSnapshot> out;
  out.reserve(counters.size() + gauges.size() + hists.size());
  for (const auto& [name, c] : counters) {
    MetricSnapshot s;
    s.name = name;
    s.kind = MetricSnapshot::Kind::kCounter;
    s.value = static_cast<double>(c->Value());
    out.push_back(std::move(s));
  }
  for (const auto& [name, g] : gauges) {
    MetricSnapshot s;
    s.name = name;
    s.kind = MetricSnapshot::Kind::kGauge;
    s.value = g->Value();
    out.push_back(std::move(s));
  }
  for (const auto& [name, h] : hists) {
    MetricSnapshot s;
    s.name = name;
    s.kind = MetricSnapshot::Kind::kHistogram;
    s.hist = h->Snapshot();
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              return a.name < b.name;
            });
  return out;
}

std::string MetricsRegistry::ToJson() const {
  const std::vector<MetricSnapshot> snap = Collect();
  std::string counters, gauges, hists;
  for (const MetricSnapshot& s : snap) {
    switch (s.kind) {
      case MetricSnapshot::Kind::kCounter:
        if (!counters.empty()) counters += ",";
        counters += StrFormat("\"%s\":%llu", JsonEscape(s.name).c_str(),
                              static_cast<unsigned long long>(s.value));
        break;
      case MetricSnapshot::Kind::kGauge:
        if (!gauges.empty()) gauges += ",";
        gauges += StrFormat("\"%s\":%s", JsonEscape(s.name).c_str(),
                            Num(s.value).c_str());
        break;
      case MetricSnapshot::Kind::kHistogram:
        if (!hists.empty()) hists += ",";
        hists += StrFormat(
            "\"%s\":{\"count\":%llu,\"mean\":%s,\"p50\":%lld,\"p95\":%lld,"
            "\"p99\":%lld,\"max\":%lld}",
            JsonEscape(s.name).c_str(),
            static_cast<unsigned long long>(s.hist.count()),
            Num(s.hist.Mean()).c_str(),
            static_cast<long long>(s.hist.Percentile(0.50)),
            static_cast<long long>(s.hist.Percentile(0.95)),
            static_cast<long long>(s.hist.Percentile(0.99)),
            static_cast<long long>(s.hist.max()));
        break;
    }
  }
  return "{\"counters\":{" + counters + "},\"gauges\":{" + gauges +
         "},\"histograms\":{" + hists + "}}";
}

std::string MetricsRegistry::ToPrometheus() const {
  const std::vector<MetricSnapshot> snap = Collect();
  std::string out;
  for (const MetricSnapshot& s : snap) {
    const std::string name = PromName(s.name);
    switch (s.kind) {
      case MetricSnapshot::Kind::kCounter:
        out += StrFormat("# TYPE %s counter\n%s %llu\n", name.c_str(),
                         name.c_str(),
                         static_cast<unsigned long long>(s.value));
        break;
      case MetricSnapshot::Kind::kGauge:
        out += StrFormat("# TYPE %s gauge\n%s %s\n", name.c_str(),
                         name.c_str(), Num(s.value).c_str());
        break;
      case MetricSnapshot::Kind::kHistogram: {
        const double sum =
            s.hist.Mean() * static_cast<double>(s.hist.count());
        out += StrFormat("# TYPE %s summary\n", name.c_str());
        out += StrFormat("%s{quantile=\"0.5\"} %lld\n", name.c_str(),
                         static_cast<long long>(s.hist.Percentile(0.50)));
        out += StrFormat("%s{quantile=\"0.95\"} %lld\n", name.c_str(),
                         static_cast<long long>(s.hist.Percentile(0.95)));
        out += StrFormat("%s{quantile=\"0.99\"} %lld\n", name.c_str(),
                         static_cast<long long>(s.hist.Percentile(0.99)));
        out += StrFormat("%s_sum %s\n", name.c_str(), Num(sum).c_str());
        out += StrFormat("%s_count %llu\n", name.c_str(),
                         static_cast<unsigned long long>(s.hist.count()));
        break;
      }
    }
  }
  return out;
}

}  // namespace dc::monitor
