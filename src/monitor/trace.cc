#include "monitor/trace.h"

#include <memory>
#include <vector>

#include "util/string_util.h"
#include "util/sync.h"

namespace dc::trace {

namespace {

/// Ring capacity per thread. 8K events ≈ 320 KiB/thread; long runs keep
/// the most recent window, which is what a latency investigation wants.
constexpr size_t kEventsPerThread = 8192;

struct TraceEvent {
  const char* name = nullptr;  // string literal
  const char* cat = nullptr;   // string literal
  Micros ts = 0;
  Micros dur = 0;
  int64_t arg = 0;
};

class ThreadBuffer {
 public:
  explicit ThreadBuffer(int tid) : tid_(tid) { ring_.resize(kEventsPerThread); }

  void Record(const TraceEvent& ev) {
    MutexLock lock(mu_);
    ring_[next_] = ev;
    next_ = (next_ + 1) % kEventsPerThread;
    ++total_;
  }

  /// Oldest-first copy of the buffered events.
  std::vector<TraceEvent> Snapshot() const {
    MutexLock lock(mu_);
    std::vector<TraceEvent> out;
    const size_t n = total_ < kEventsPerThread
                         ? static_cast<size_t>(total_)
                         : kEventsPerThread;
    out.reserve(n);
    const size_t start =
        total_ < kEventsPerThread ? 0 : next_;  // oldest surviving slot
    for (size_t i = 0; i < n; ++i) {
      out.push_back(ring_[(start + i) % kEventsPerThread]);
    }
    return out;
  }

  void Clear() {
    MutexLock lock(mu_);
    next_ = 0;
    total_ = 0;
  }

  uint64_t total() const {
    MutexLock lock(mu_);
    return total_ < kEventsPerThread ? total_ : kEventsPerThread;
  }

  int tid() const { return tid_; }

 private:
  mutable Mutex mu_{LockRank::kTraceBuffer};
  std::vector<TraceEvent> ring_ DC_GUARDED_BY(mu_);
  size_t next_ DC_GUARDED_BY(mu_) = 0;
  uint64_t total_ DC_GUARDED_BY(mu_) = 0;
  const int tid_;
};

/// Registry of every thread's buffer. Buffers are shared_ptrs held both
/// here and in the owning thread's TLS slot, so a dump sees the events
/// of threads that already exited.
struct Registry {
  Mutex mu{LockRank::kTraceRegistry};
  std::vector<std::shared_ptr<ThreadBuffer>> buffers DC_GUARDED_BY(mu);
  int next_tid DC_GUARDED_BY(mu) = 1;
};

Registry& GetRegistry() {
  static Registry* g = new Registry();
  return *g;
}

ThreadBuffer& LocalBuffer() {
  thread_local std::shared_ptr<ThreadBuffer> tls_buffer;
  if (!tls_buffer) {
    Registry& reg = GetRegistry();
    MutexLock lock(reg.mu);
    tls_buffer = std::make_shared<ThreadBuffer>(reg.next_tid++);
    reg.buffers.push_back(tls_buffer);
  }
  return *tls_buffer;
}

std::atomic<int> g_enable_refs{0};

}  // namespace

void AddEnableRef() {
  if (g_enable_refs.fetch_add(1, std::memory_order_relaxed) == 0) {
    internal::g_enabled.store(true, std::memory_order_relaxed);
  }
}

void ReleaseEnableRef() {
  if (g_enable_refs.fetch_sub(1, std::memory_order_relaxed) == 1) {
    internal::g_enabled.store(false, std::memory_order_relaxed);
  }
}

void Instant(const char* name, const char* cat, int64_t arg) {
  if (!Enabled()) return;
  TraceEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.ts = SteadyMicros();
  ev.dur = 0;
  ev.arg = arg;
  LocalBuffer().Record(ev);
}

Span::~Span() {
  if (!armed_) return;
  TraceEvent ev;
  ev.name = name_;
  ev.cat = cat_;
  ev.ts = start_;
  ev.dur = SteadyMicros() - start_;
  ev.arg = arg_;
  LocalBuffer().Record(ev);
}

std::string DumpJson() {
  // Registry (170) then each buffer (180): in rank order. Events are
  // serialized outside both locks.
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    Registry& reg = GetRegistry();
    MutexLock lock(reg.mu);
    buffers = reg.buffers;
  }
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const auto& buf : buffers) {
    const int tid = buf->tid();
    for (const TraceEvent& ev : buf->Snapshot()) {
      if (ev.name == nullptr) continue;
      if (!first) out += ",";
      first = false;
      out += StrFormat(
          "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%lld,"
          "\"dur\":%lld,\"pid\":1,\"tid\":%d,\"args\":{\"v\":%lld}}",
          ev.name, ev.cat, static_cast<long long>(ev.ts),
          static_cast<long long>(ev.dur), tid,
          static_cast<long long>(ev.arg));
    }
  }
  out += "]}";
  return out;
}

uint64_t BufferedEventsForTest() {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    Registry& reg = GetRegistry();
    MutexLock lock(reg.mu);
    buffers = reg.buffers;
  }
  uint64_t n = 0;
  for (const auto& buf : buffers) n += buf->total();
  return n;
}

void ClearForTest() {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    Registry& reg = GetRegistry();
    MutexLock lock(reg.mu);
    buffers = reg.buffers;
  }
  for (const auto& buf : buffers) buf->Clear();
}

}  // namespace dc::trace
