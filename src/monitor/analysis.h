// Copyright 2026 The DataCell Authors.
//
// Analysis pane (paper Fig. 4): periodic sampling of engine metrics into a
// time series — input rates per basket, per-query emission/latency figures
// and intermediate footprints, whole-network aggregates over a period —
// rendered as text or CSV.

#ifndef DATACELL_MONITOR_ANALYSIS_H_
#define DATACELL_MONITOR_ANALYSIS_H_

#include <deque>
#include <map>
#include <string>
#include <vector>

#include "core/engine.h"
#include "monitor/metrics.h"
#include "util/clock.h"
#include "util/sync.h"

namespace dc::monitor {

/// One sampled point of one metric.
struct SamplePoint {
  Micros t = 0;      // steady time of the sample
  double value = 0;
};

/// Aggregate of a metric over a queried period.
struct SeriesAggregate {
  double min = 0;
  double max = 0;
  double mean = 0;
  double last = 0;
  size_t samples = 0;
};

/// Collects engine metrics over time. Call Sample() at your own cadence
/// (tests drive it manually; demos use a thread).
class AnalysisPane {
 public:
  /// Keeps at most `capacity` samples per metric (ring).
  explicit AnalysisPane(size_t capacity = 4096);

  /// Samples every basket and query. Rates are computed against the
  /// previous sample of the same metric.
  void Sample(Engine& engine);

  /// Known metric names ("stream.<s>.rate_rows_per_s",
  /// "query.<name>.emissions", "query.<name>.exec_us_per_fire",
  /// "query.<name>.cached_bytes", "net.total_tuples_out", ...).
  std::vector<std::string> MetricNames() const;

  /// Aggregates `metric` over the trailing `period_us` (0 = everything).
  Result<SeriesAggregate> Aggregate(const std::string& metric,
                                    Micros period_us = 0) const;

  /// Full series of one metric.
  Result<std::vector<SamplePoint>> Series(const std::string& metric) const;

  /// CSV with one row per sample instant and one column per metric
  /// (missing points empty) — the demo's exportable analysis data.
  std::string ToCsv() const;

  /// Text table of trailing-period aggregates for all metrics.
  std::string RenderSummary(Micros period_us = 0) const;

 private:
  void Record(const std::string& metric, Micros t, double value)
      DC_REQUIRES(mu_);

  const size_t capacity_;
  // kMonitor is the outermost rank: Sample() holds mu_ while calling into
  // the engine's introspection surface (engine/basket/factory locks).
  mutable Mutex mu_{LockRank::kMonitor};
  // The sampled engine's metrics registry (set on each Sample); Record
  // mirrors points here as gauges. Registry locks rank above kMonitor.
  MetricsRegistry* registry_ DC_GUARDED_BY(mu_) = nullptr;
  std::map<std::string, std::deque<SamplePoint>> series_ DC_GUARDED_BY(mu_);
  // Previous cumulative counters for rate computation.
  std::map<std::string, std::pair<Micros, double>> prev_counter_
      DC_GUARDED_BY(mu_);
};

}  // namespace dc::monitor

#endif  // DATACELL_MONITOR_ANALYSIS_H_
