#include "monitor/network.h"

#include "util/string_util.h"

namespace dc::monitor {

namespace {

std::string WindowLabel(const FactoryInput& in) {
  if (!in.window.has_value()) return "per-batch";
  return in.window->ToString();
}

}  // namespace

std::string ExportDot(Engine& engine) {
  std::string out;
  out += "digraph datacell {\n";
  out += "  rankdir=LR;\n";
  out += "  node [fontname=\"Helvetica\"];\n";

  for (const std::string& s : engine.StreamNames()) {
    auto stats = engine.StreamStats(s);
    const uint64_t resident = stats.ok() ? stats->resident_rows : 0;
    out += StrFormat(
        "  \"recv:%s\" [shape=cds, label=\"receptor\\n%s\"];\n", s.c_str(),
        s.c_str());
    out += StrFormat(
        "  \"basket:%s\" [shape=box3d, style=filled, fillcolor=lightyellow,"
        " label=\"basket %s\\n%llu resident\"];\n",
        s.c_str(), s.c_str(), static_cast<unsigned long long>(resident));
    out += StrFormat("  \"recv:%s\" -> \"basket:%s\";\n", s.c_str(),
                     s.c_str());
  }

  for (const ContinuousQueryInfo& q : engine.Queries()) {
    out += StrFormat(
        "  \"factory:%d\" [shape=component, style=filled,"
        " fillcolor=%s, label=\"%s\\n%s, %llu emissions%s\"];\n",
        q.id, q.factory.paused ? "lightgrey" : "lightblue",
        q.name.c_str(), ExecModeName(q.mode),
        static_cast<unsigned long long>(q.factory.emissions),
        q.factory.paused ? " (paused)" : "");
    for (const std::string& s : q.input_streams) {
      out += StrFormat("  \"basket:%s\" -> \"factory:%d\";\n", s.c_str(),
                       q.id);
    }
    for (const std::string& t : q.input_tables) {
      out += StrFormat(
          "  \"table:%s\" [shape=cylinder, label=\"table %s\"];\n",
          t.c_str(), t.c_str());
      out += StrFormat("  \"table:%s\" -> \"factory:%d\" [style=dashed];\n",
                       t.c_str(), q.id);
    }
    out += StrFormat(
        "  \"out:%d\" [shape=box3d, style=filled, fillcolor=lightyellow,"
        " label=\"basket %s.out\"];\n",
        q.id, q.name.c_str());
    out += StrFormat("  \"factory:%d\" -> \"out:%d\";\n", q.id, q.id);
    out += StrFormat(
        "  \"emit:%d\" [shape=cds, label=\"emitter\\n%llu rows\"];\n", q.id,
        static_cast<unsigned long long>(q.emitter.rows));
    out += StrFormat("  \"out:%d\" -> \"emit:%d\";\n", q.id, q.id);
  }
  out += "}\n";
  return out;
}

std::string RenderNetworkTable(Engine& engine) {
  std::string out;
  out += StrFormat("%-10s %-12s %-24s %-12s %10s %10s %12s\n", "query",
                   "mode", "inputs", "window", "emissions", "tuples",
                   "cached(B)");
  out += std::string(96, '-') + "\n";
  for (const ContinuousQueryInfo& q : engine.Queries()) {
    std::string inputs;
    std::string window = "-";
    FactoryPtr f = engine.GetFactory(q.id);
    for (const FactoryInput& in : f->inputs()) {
      if (!inputs.empty()) inputs += "+";
      if (in.is_stream) {
        inputs += in.basket->name();
        window = WindowLabel(in);
      } else {
        inputs += in.table->name();
      }
    }
    out += StrFormat("%-10s %-12s %-24s %-12s %10llu %10llu %12zu\n",
                     q.name.c_str(), ExecModeName(q.mode), inputs.c_str(),
                     window.c_str(),
                     static_cast<unsigned long long>(q.factory.emissions),
                     static_cast<unsigned long long>(q.factory.tuples_out),
                     q.factory.cached_bytes);
  }
  return out;
}

std::string RenderTupleLocations(Engine& engine) {
  std::string out;
  out += "baskets:\n";
  for (const std::string& s : engine.StreamNames()) {
    auto stats = engine.StreamStats(s);
    if (!stats.ok()) continue;
    out += StrFormat(
        "  %-16s resident=%llu appended=%llu dropped=%llu bytes=%zu "
        "watermark=%lld\n",
        s.c_str(), static_cast<unsigned long long>(stats->resident_rows),
        static_cast<unsigned long long>(stats->appended_total),
        static_cast<unsigned long long>(stats->dropped_total),
        stats->memory_bytes, static_cast<long long>(stats->event_watermark));
  }
  out += "factories (cached intermediates):\n";
  for (const ContinuousQueryInfo& q : engine.Queries()) {
    out += StrFormat(
        "  %-16s partials=%llu bytes=%zu fragments_computed=%llu "
        "in=%llu out=%llu%s\n",
        q.name.c_str(),
        static_cast<unsigned long long>(q.factory.cached_partials),
        q.factory.cached_bytes,
        static_cast<unsigned long long>(q.factory.fragments_computed),
        static_cast<unsigned long long>(q.factory.tuples_in),
        static_cast<unsigned long long>(q.factory.tuples_out),
        q.factory.paused ? " [paused]" : "");
  }
  return out;
}

}  // namespace dc::monitor
