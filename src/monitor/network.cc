#include "monitor/network.h"

#include <map>
#include <vector>

#include "util/string_util.h"

namespace dc::monitor {

namespace {

std::string WindowLabel(const FactoryInput& in) {
  if (!in.window.has_value()) return "per-batch";
  return in.window->ToString();
}

}  // namespace

std::string ExportDot(Engine& engine) {
  std::string out;
  out += "digraph datacell {\n";
  out += "  rankdir=LR;\n";
  out += "  node [fontname=\"Helvetica\"];\n";

  for (const std::string& s : engine.StreamNames()) {
    auto stats = engine.StreamStats(s);
    const uint64_t resident = stats.ok() ? stats->resident_rows : 0;
    out += StrFormat(
        "  \"recv:%s\" [shape=cds, label=\"receptor\\n%s\"];\n", s.c_str(),
        s.c_str());
    out += StrFormat(
        "  \"basket:%s\" [shape=box3d, style=filled, fillcolor=lightyellow,"
        " label=\"basket %s\\n%llu resident\"];\n",
        s.c_str(), s.c_str(), static_cast<unsigned long long>(resident));
    out += StrFormat("  \"recv:%s\" -> \"basket:%s\";\n", s.c_str(),
                     s.c_str());
  }

  // Shared window nodes (docs/SHARING.md): the per-prefix partial-build
  // stage that tier-P queries hang their merge tails off. Rendered as a
  // distinct box between the stream basket and the subscribing factories.
  const SharingStats sharing = engine.GetSharingStats();
  for (const SharedNodeStats& n : sharing.nodes) {
    out += StrFormat(
        "  \"node:%s\" [shape=octagon, style=filled, fillcolor=lightgreen,"
        " label=\"shared window %s\\n%d subscribers, %llu builds\"];\n",
        n.label.c_str(), n.label.c_str(), n.subscribers,
        static_cast<unsigned long long>(n.partial_builds));
    out += StrFormat("  \"basket:%s\" -> \"node:%s\";\n", n.stream.c_str(),
                     n.label.c_str());
  }

  // Group queries by physical factory so tier-F aliases render as ONE
  // factory box fanning out to per-query emitters, not as duplicates.
  std::vector<int> factory_order;
  std::map<int, std::vector<const ContinuousQueryInfo*>> by_factory;
  const std::vector<ContinuousQueryInfo> queries = engine.Queries();
  for (const ContinuousQueryInfo& q : queries) {
    FactoryPtr f = engine.GetFactory(q.id);
    const int fid = f == nullptr ? q.id : f->id();
    if (by_factory.find(fid) == by_factory.end()) {
      factory_order.push_back(fid);
    }
    by_factory[fid].push_back(&q);
  }

  for (const int fid : factory_order) {
    const std::vector<const ContinuousQueryInfo*>& group = by_factory[fid];
    const ContinuousQueryInfo& rep = *group.front();
    std::string names;
    for (const ContinuousQueryInfo* q : group) {
      if (!names.empty()) names += " | ";
      names += q->name;
    }
    const std::string shared_tag =
        group.size() > 1 ? StrFormat("\\nshared x%zu", group.size()) : "";
    out += StrFormat(
        "  \"factory:%d\" [shape=component, style=filled,"
        " fillcolor=%s, label=\"%s\\n%s, %llu emissions%s%s\"];\n",
        fid, rep.factory.paused ? "lightgrey" : "lightblue", names.c_str(),
        ExecModeName(rep.mode),
        static_cast<unsigned long long>(rep.factory.emissions),
        rep.factory.paused ? " (paused)" : "", shared_tag.c_str());
    for (const std::string& s : rep.input_streams) {
      if (!rep.shared_node.empty()) {
        // The shared node owns the basket reader; the factory is a merge
        // tail consuming its partials.
        out += StrFormat(
            "  \"node:%s\" -> \"factory:%d\" [label=\"partials\"];\n",
            rep.shared_node.c_str(), fid);
      } else {
        out += StrFormat("  \"basket:%s\" -> \"factory:%d\";\n", s.c_str(),
                         fid);
      }
    }
    for (const std::string& t : rep.input_tables) {
      out += StrFormat(
          "  \"table:%s\" [shape=cylinder, label=\"table %s\"];\n",
          t.c_str(), t.c_str());
      out += StrFormat("  \"table:%s\" -> \"factory:%d\" [style=dashed];\n",
                       t.c_str(), fid);
    }
    out += StrFormat(
        "  \"out:%d\" [shape=box3d, style=filled, fillcolor=lightyellow,"
        " label=\"basket %s.out\"];\n",
        fid, rep.name.c_str());
    out += StrFormat("  \"factory:%d\" -> \"out:%d\";\n", fid, fid);
    for (const ContinuousQueryInfo* q : group) {
      out += StrFormat(
          "  \"emit:%d\" [shape=cds, label=\"emitter %s\\n%llu rows\"];\n",
          q->id, q->name.c_str(),
          static_cast<unsigned long long>(q->emitter.rows));
      // Aliased subscribers attach to the shared output with a marked
      // edge; the owning query keeps the plain one.
      out += q->id == fid
                 ? StrFormat("  \"out:%d\" -> \"emit:%d\";\n", fid, q->id)
                 : StrFormat("  \"out:%d\" -> \"emit:%d\""
                             " [style=dashed, label=\"alias\"];\n",
                             fid, q->id);
    }
  }
  out += "}\n";
  return out;
}

std::string RenderNetworkTable(Engine& engine) {
  std::string out;
  out += StrFormat("%-10s %-12s %-24s %-12s %10s %10s %12s  %-18s\n",
                   "query", "mode", "inputs", "window", "emissions",
                   "tuples", "cached(B)", "sharing");
  out += std::string(116, '-') + "\n";
  for (const ContinuousQueryInfo& q : engine.Queries()) {
    std::string inputs;
    std::string window = "-";
    FactoryPtr f = engine.GetFactory(q.id);
    for (const FactoryInput& in : f->inputs()) {
      if (!inputs.empty()) inputs += "+";
      if (in.is_stream) {
        inputs += in.basket->name();
        window = WindowLabel(in);
      } else {
        inputs += in.table->name();
      }
    }
    out += StrFormat("%-10s %-12s %-24s %-12s %10llu %10llu %12zu  %-18s\n",
                     q.name.c_str(), ExecModeName(q.mode), inputs.c_str(),
                     window.c_str(),
                     static_cast<unsigned long long>(q.factory.emissions),
                     static_cast<unsigned long long>(q.factory.tuples_out),
                     q.factory.cached_bytes,
                     q.sharing.empty() ? "-" : q.sharing.c_str());
  }
  return out;
}

std::string RenderTupleLocations(Engine& engine) {
  std::string out;
  out += "baskets:\n";
  for (const std::string& s : engine.StreamNames()) {
    auto stats = engine.StreamStats(s);
    if (!stats.ok()) continue;
    out += StrFormat(
        "  %-16s resident=%llu appended=%llu dropped=%llu bytes=%zu "
        "watermark=%lld\n",
        s.c_str(), static_cast<unsigned long long>(stats->resident_rows),
        static_cast<unsigned long long>(stats->appended_total),
        static_cast<unsigned long long>(stats->dropped_total),
        stats->memory_bytes, static_cast<long long>(stats->event_watermark));
  }
  out += "factories (cached intermediates):\n";
  for (const ContinuousQueryInfo& q : engine.Queries()) {
    out += StrFormat(
        "  %-16s partials=%llu bytes=%zu fragments_computed=%llu "
        "in=%llu out=%llu%s\n",
        q.name.c_str(),
        static_cast<unsigned long long>(q.factory.cached_partials),
        q.factory.cached_bytes,
        static_cast<unsigned long long>(q.factory.fragments_computed),
        static_cast<unsigned long long>(q.factory.tuples_in),
        static_cast<unsigned long long>(q.factory.tuples_out),
        q.factory.paused ? " [paused]" : "");
  }
  return out;
}

}  // namespace dc::monitor
