#include "monitor/analysis.h"

#include <algorithm>
#include <set>

#include "util/string_util.h"

namespace dc::monitor {

AnalysisPane::AnalysisPane(size_t capacity) : capacity_(capacity) {}

void AnalysisPane::Record(const std::string& metric, Micros t, double value) {
  auto& dq = series_[metric];
  dq.push_back(SamplePoint{t, value});
  if (dq.size() > capacity_) dq.pop_front();
  // Mirror every sampled point into the engine's metrics registry so the
  // pane's series are also visible through ToJson()/ToPrometheus().
  // Registry locks rank above kMonitor, so this is legal under mu_.
  if (registry_ != nullptr) registry_->GetGauge(metric)->Set(value);
}

void AnalysisPane::Sample(Engine& engine) {
  const Micros now = SteadyMicros();
  MutexLock lock(mu_);
  registry_ = &engine.metrics();

  // Rate against the previous sample's cumulative value. The first sample
  // of a counter — and any sample where the counter went backwards (query
  // resubmitted under the same name, counter reset) — only re-baselines:
  // recording a fabricated 0-rate point there would drag the period
  // aggregates (mean/min) of a healthy rate series down.
  auto rate = [&](const std::string& metric, const std::string& counter,
                  double cumulative) {
    auto it = prev_counter_.find(counter);
    if (it != prev_counter_.end() && now > it->second.first &&
        cumulative >= it->second.second) {
      Record(metric, now,
             (cumulative - it->second.second) /
                 (static_cast<double>(now - it->second.first) /
                  kMicrosPerSecond));
    }
    prev_counter_[counter] = {now, cumulative};
  };

  double net_in = 0, net_out = 0;
  for (const std::string& s : engine.StreamNames()) {
    auto stats = engine.StreamStats(s);
    if (!stats.ok()) continue;
    Record("stream." + s + ".resident_rows", now,
           static_cast<double>(stats->resident_rows));
    Record("stream." + s + ".memory_bytes", now,
           static_cast<double>(stats->memory_bytes));
    rate("stream." + s + ".rate_rows_per_s", "stream." + s + ".appended",
         static_cast<double>(stats->appended_total));
    // Backpressure pane: occupancy high watermark and producer stalls.
    Record("stream." + s + ".resident_hwm_rows", now,
           static_cast<double>(stats->resident_hwm_rows));
    Record("stream." + s + ".append_stalls", now,
           static_cast<double>(stats->append_stalls));
    Record("stream." + s + ".stall_micros", now,
           static_cast<double>(stats->stall_micros));
    net_in += static_cast<double>(stats->appended_total);
  }

  for (const ContinuousQueryInfo& q : engine.Queries()) {
    const std::string p = "query." + q.name;
    Record(p + ".emissions", now, static_cast<double>(q.factory.emissions));
    Record(p + ".shared_with", now, static_cast<double>(q.shared_with));
    Record(p + ".tuples_out", now,
           static_cast<double>(q.factory.tuples_out));
    Record(p + ".cached_bytes", now,
           static_cast<double>(q.factory.cached_bytes));
    Record(p + ".exec_us_per_fire", now,
           q.factory.invocations == 0
               ? 0
               : static_cast<double>(q.factory.total_exec_micros) /
                     static_cast<double>(q.factory.invocations));
    rate(p + ".emission_rate_per_s", p + ".emissions_counter",
         static_cast<double>(q.factory.emissions));
    Record(p + ".empty_emissions", now,
           static_cast<double>(q.factory.empty_emissions));
    Record(p + ".out_resident_rows", now,
           static_cast<double>(q.out_basket.resident_rows));
    // Ingest→delivery latency pane (docs/OBSERVABILITY.md): percentiles
    // of the query's end-to-end histogram. No point until the first
    // delivery — a 0 µs p99 would read as "infinitely fast", not "idle".
    if (q.latency.count() > 0) {
      Record(p + ".latency_p50_us", now,
             static_cast<double>(q.latency.Percentile(0.50)));
      Record(p + ".latency_p95_us", now,
             static_cast<double>(q.latency.Percentile(0.95)));
      Record(p + ".latency_p99_us", now,
             static_cast<double>(q.latency.Percentile(0.99)));
    }
    net_out += static_cast<double>(q.factory.tuples_out);
  }
  Record("net.total_tuples_in", now, net_in);
  Record("net.total_tuples_out", now, net_out);

  // Sharing pane (docs/SHARING.md): how much multi-query work the shared
  // registry is absorbing, plus per-node subscriber/build counts.
  const SharingStats sharing = engine.GetSharingStats();
  Record("sharing.shared_nodes", now,
         static_cast<double>(sharing.shared_nodes));
  Record("sharing.shared_factories", now,
         static_cast<double>(sharing.shared_factories));
  Record("sharing.sharing_hits", now,
         static_cast<double>(sharing.sharing_hits));
  rate("sharing.hit_rate_per_s", "sharing.hits_counter",
       static_cast<double>(sharing.sharing_hits));
  for (const SharedNodeStats& n : sharing.nodes) {
    const std::string p = "sharing.node." + n.label;
    Record(p + ".subscribers", now, static_cast<double>(n.subscribers));
    Record(p + ".partial_builds", now,
           static_cast<double>(n.partial_builds));
    Record(p + ".sharing_hits", now, static_cast<double>(n.sharing_hits));
    Record(p + ".cached_bytes", now, static_cast<double>(n.cached_bytes));
  }

  // Scheduler pane: global fire throughput and the per-shard ready-queue
  // picture (fires, steals, depths) of the sharded scheduler.
  const SchedulerStats sched = engine.SchedStats();
  Record("sched.fires", now, static_cast<double>(sched.fires));
  rate("sched.fire_rate_per_s", "sched.fires_counter",
       static_cast<double>(sched.fires));
  Record("sched.notifications", now,
         static_cast<double>(sched.notifications));
  Record("sched.enqueues", now, static_cast<double>(sched.enqueues));
  Record("sched.steals", now, static_cast<double>(sched.steals));
  Record("sched.spurious_pops", now,
         static_cast<double>(sched.spurious_pops));
  for (size_t i = 0; i < sched.shards.size(); ++i) {
    const SchedulerShardStats& sh = sched.shards[i];
    const std::string p = StrFormat("sched.shard%zu", i);
    Record(p + ".fires", now, static_cast<double>(sh.fires));
    Record(p + ".steals", now, static_cast<double>(sh.steals));
    Record(p + ".queue_depth", now, static_cast<double>(sh.queue_depth));
    Record(p + ".max_queue_depth", now,
           static_cast<double>(sh.max_queue_depth));
  }
}

std::vector<std::string> AnalysisPane::MetricNames() const {
  MutexLock lock(mu_);
  std::vector<std::string> out;
  for (const auto& [name, dq] : series_) out.push_back(name);
  return out;
}

Result<SeriesAggregate> AnalysisPane::Aggregate(const std::string& metric,
                                                Micros period_us) const {
  MutexLock lock(mu_);
  auto it = series_.find(metric);
  if (it == series_.end()) {
    return Status::NotFound("unknown metric '" + metric + "'");
  }
  const auto& dq = it->second;
  SeriesAggregate agg;
  if (dq.empty()) return agg;
  const Micros cutoff = period_us == 0 ? INT64_MIN : dq.back().t - period_us;
  double sum = 0;
  for (const SamplePoint& p : dq) {
    if (p.t < cutoff) continue;
    if (agg.samples == 0) {
      agg.min = agg.max = p.value;
    } else {
      agg.min = std::min(agg.min, p.value);
      agg.max = std::max(agg.max, p.value);
    }
    sum += p.value;
    agg.last = p.value;
    ++agg.samples;
  }
  if (agg.samples > 0) agg.mean = sum / static_cast<double>(agg.samples);
  return agg;
}

Result<std::vector<SamplePoint>> AnalysisPane::Series(
    const std::string& metric) const {
  MutexLock lock(mu_);
  auto it = series_.find(metric);
  if (it == series_.end()) {
    return Status::NotFound("unknown metric '" + metric + "'");
  }
  return std::vector<SamplePoint>(it->second.begin(), it->second.end());
}

std::string AnalysisPane::ToCsv() const {
  MutexLock lock(mu_);
  std::set<Micros> instants;
  for (const auto& [name, dq] : series_) {
    for (const SamplePoint& p : dq) instants.insert(p.t);
  }
  std::string out = "t_us";
  for (const auto& [name, dq] : series_) out += "," + name;
  out += "\n";
  for (Micros t : instants) {
    out += StrFormat("%lld", static_cast<long long>(t));
    for (const auto& [name, dq] : series_) {
      out += ",";
      auto it = std::lower_bound(
          dq.begin(), dq.end(), t,
          [](const SamplePoint& p, Micros x) { return p.t < x; });
      if (it != dq.end() && it->t == t) out += FormatDouble(it->value);
    }
    out += "\n";
  }
  return out;
}

std::string AnalysisPane::RenderSummary(Micros period_us) const {
  std::string out = StrFormat("%-40s %12s %12s %12s %12s\n", "metric", "min",
                              "mean", "max", "last");
  out += std::string(92, '-') + "\n";
  for (const std::string& name : MetricNames()) {
    auto agg = Aggregate(name, period_us);
    if (!agg.ok() || agg->samples == 0) continue;
    out += StrFormat("%-40s %12s %12s %12s %12s\n", name.c_str(),
                     FormatDouble(agg->min).c_str(),
                     FormatDouble(agg->mean).c_str(),
                     FormatDouble(agg->max).c_str(),
                     FormatDouble(agg->last).c_str());
  }
  return out;
}

}  // namespace dc::monitor
