// Copyright 2026 The DataCell Authors.
//
// Query-network introspection — the textual equivalent of the demo's
// Fig. 1/Fig. 3 panes: which query waits for which stream, which baskets
// it binds, how queries relate through shared inputs, and where tuples
// currently live (baskets, cached intermediates).

#ifndef DATACELL_MONITOR_NETWORK_H_
#define DATACELL_MONITOR_NETWORK_H_

#include <string>

#include "core/engine.h"

namespace dc::monitor {

/// Graphviz DOT rendering of the live query network:
/// stream baskets -> factories -> output baskets -> emitters, with
/// persistent tables as side inputs. Paste into `dot -Tsvg` to get the
/// demo's network diagram.
std::string ExportDot(Engine& engine);

/// Aligned-text network summary (one line per query: inputs, window, mode,
/// emissions, cached intermediate footprint).
std::string RenderNetworkTable(Engine& engine);

/// "Detailed status inspection": where tuples live right now — resident
/// rows per basket, consumption horizons, cached partials per factory.
std::string RenderTupleLocations(Engine& engine);

}  // namespace dc::monitor

#endif  // DATACELL_MONITOR_NETWORK_H_
