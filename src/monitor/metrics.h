// Copyright 2026 The DataCell Authors.
//
// Process-wide metrics registry (docs/OBSERVABILITY.md): named counters,
// gauges, and latency histograms with cheap updates on hot paths and
// JSON / Prometheus text exposition on the slow path.
//
// Design:
//  * Handles are shared_ptrs — a subsystem resolves its metric once
//    (GetCounter/GetGauge/GetHistogram) and updates it lock-free
//    (counters/gauges are relaxed atomics) or under a leaf-ranked
//    per-histogram mutex. Handles outlive Remove(): an emitter may keep
//    recording into a histogram that was already dropped from the
//    exposition surface during teardown.
//  * The registry map mutex ranks kMetrics (150) and each histogram's
//    mutex ranks kMetricsHistogram (160) — both above every engine lock,
//    so any subsystem may resolve or record a metric while holding its
//    own locks. Nothing in this file logs or calls back into the engine
//    while holding either lock.
//  * Each Engine owns a registry (Engine::metrics()); MetricsRegistry::
//    Global() serves code with no engine in reach (tools, tests).

#ifndef DATACELL_MONITOR_METRICS_H_
#define DATACELL_MONITOR_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/histogram.h"
#include "util/sync.h"

namespace dc::monitor {

/// Monotone counter. Relaxed atomics: exposition tolerates torn ordering
/// between metrics, and each individual read is atomic.
class Counter {
 public:
  void Add(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Last-write-wins gauge.
class Gauge {
 public:
  void Set(double v) { v_.store(v, std::memory_order_relaxed); }
  double Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Mutex-guarded Histogram (util/histogram.h is not thread-safe). The
/// mutex is leaf-ranked (kMetricsHistogram) so Record() is legal under
/// any engine lock; contention is per-metric, not global.
class HistogramMetric {
 public:
  void Record(int64_t value) {
    MutexLock lock(mu_);
    h_.Record(value);
  }

  Histogram Snapshot() const {
    MutexLock lock(mu_);
    return h_;
  }

  void Reset() {
    MutexLock lock(mu_);
    h_.Reset();
  }

 private:
  mutable Mutex mu_{LockRank::kMetricsHistogram};
  Histogram h_ DC_GUARDED_BY(mu_);
};

/// Point-in-time copy of one named metric, for exposition.
struct MetricSnapshot {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  Kind kind = Kind::kGauge;
  double value = 0;  // counter / gauge
  Histogram hist;    // histogram
};

/// Named metric registry. Get* registers on first use and returns the
/// existing handle afterwards; names are unique per kind (the three kinds
/// live in separate maps, but sharing one name across kinds is a bug in
/// the caller and renders confusingly in exposition).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Fallback registry for code with no Engine in reach.
  static MetricsRegistry& Global();

  std::shared_ptr<Counter> GetCounter(const std::string& name);
  std::shared_ptr<Gauge> GetGauge(const std::string& name);
  std::shared_ptr<HistogramMetric> GetHistogram(const std::string& name);

  /// Drops `name` (any kind) from exposition. Existing handles stay
  /// valid. Returns true if something was removed.
  bool Remove(const std::string& name);

  /// Sorted point-in-time snapshot of every registered metric.
  std::vector<MetricSnapshot> Collect() const;

  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,mean,
  /// p50,p95,p99,max}}}
  std::string ToJson() const;

  /// Prometheus text exposition: counters/gauges verbatim, histograms as
  /// summaries (quantile labels + _count/_sum). Metric names are
  /// sanitized to [a-zA-Z0-9_:].
  std::string ToPrometheus() const;

 private:
  mutable Mutex mu_{LockRank::kMetrics};
  std::map<std::string, std::shared_ptr<Counter>> counters_
      DC_GUARDED_BY(mu_);
  std::map<std::string, std::shared_ptr<Gauge>> gauges_ DC_GUARDED_BY(mu_);
  std::map<std::string, std::shared_ptr<HistogramMetric>> hists_
      DC_GUARDED_BY(mu_);
};

}  // namespace dc::monitor

#endif  // DATACELL_MONITOR_METRICS_H_
