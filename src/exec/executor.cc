#include "exec/executor.h"

#include <algorithm>

#include "bat/hash.h"
#include "bat/ops_arith.h"
#include "bat/ops_select.h"
#include "bat/ops_sort.h"
#include "bat/ops_join.h"
#include "util/string_util.h"

namespace dc::exec {

namespace {

/// Open-addressing find-or-insert scratch for the delta pre-agg grouping:
/// linear probing over a power-of-two slot array, sized to ≥2x the row
/// count so probes stay short. Reused thread-locally across fires —
/// Prepare() only re-clears the gid array (memset-cheap) once the capacity
/// has stabilized. NaN keys never compare equal, so each NaN lands in its
/// own group (matching ops::GroupBy's cell equality).
template <typename K>
struct GroupScratch {
  static constexpr uint32_t kEmpty = UINT32_MAX;
  std::vector<K> keys;
  std::vector<uint32_t> gids;
  size_t mask = 0;

  void Prepare(uint64_t n) {
    size_t cap = 64;
    while (cap < 2 * n) cap <<= 1;
    if (gids.size() != cap) {
      gids.assign(cap, kEmpty);
      keys.resize(cap);
    } else {
      std::fill(gids.begin(), gids.end(), kEmpty);
    }
    mask = cap - 1;
  }

  /// Returns the slot for `k`; `*slot == kEmpty` means first occurrence
  /// and the caller must store the new group id before the next call.
  uint32_t* FindOrInsertSlot(K k, uint64_t h) {
    size_t i = h & mask;
    while (gids[i] != kEmpty && !(keys[i] == k)) i = (i + 1) & mask;
    keys[i] = k;
    return &gids[i];
  }
};

}  // namespace

size_t Partial::MemoryBytes() const {
  size_t total = scalar_states.size() * sizeof(ops::AggState);
  if (grouped) total += grouped->num_groups() * 64;  // rough per-group cost
  for (const BatPtr& c : frag_cols) total += c->MemoryBytes();
  return total;
}

// --- DeltaSideState ----------------------------------------------------------

void DeltaSideState::Reset(TypeId key_domain, int key_slot_in) {
  cols.clear();
  rows = 0;
  dead = 0;
  bws.clear();
  index.Reset(key_domain);
  key_slot = key_slot_in;
}

Status DeltaSideState::AppendBasicWindow(int64_t bw,
                                         const StageOutput& compact) {
  if (cols.empty()) {
    for (const BatPtr& c : compact.cols) {
      cols.push_back(Bat::MakeEmpty(c->type()));
    }
    cols.push_back(Bat::MakeEmpty(TypeId::kI64));  // bw-ordinal column
  } else if (cols.size() != compact.cols.size() + 1) {
    return Status::Internal("delta side: compact column arity changed");
  }
  const uint64_t n = compact.rows;
  for (size_t i = 0; i < compact.cols.size(); ++i) {
    cols[i]->AppendRange(*compact.cols[i], 0, n);
  }
  cols.back()->AppendRepeatedI64(bw, n);
  rows += n;
  bws.emplace_back(bw, n);
  return Status::OK();
}

void DeltaSideState::AdoptSingleWindow(int64_t bw,
                                       const StageOutput& compact) {
  cols.assign(compact.cols.begin(), compact.cols.end());
  BatPtr ord = Bat::MakeEmpty(TypeId::kI64);
  ord->AppendRepeatedI64(bw, compact.rows);
  cols.push_back(std::move(ord));
  rows = compact.rows;
  dead = 0;
  bws.clear();
  bws.emplace_back(bw, compact.rows);
}

Status DeltaSideState::IndexNewRows(uint64_t from) {
  if (key_slot < 0 || static_cast<size_t>(key_slot) >= cols.size()) {
    return Status::Internal("delta side: bad key slot");
  }
  return index.Append(*cols[key_slot], from, rows);
}

void DeltaSideState::EvictBefore(int64_t first_live) {
  while (!bws.empty() && bws.front().first < first_live) {
    dead += bws.front().second;
    bws.pop_front();
  }
  index.EvictBelow(dead);
}

void DeltaSideState::TrimIfWorthIt() {
  if (dead == 0 || dead <= rows - dead) return;
  for (const BatPtr& c : cols) c->DropHead(dead);
  index.Rebase();
  rows -= dead;
  dead = 0;
}

size_t DeltaSideState::MemoryBytes() const {
  size_t total = bws.size() * sizeof(std::pair<int64_t, uint64_t>);
  for (const BatPtr& c : cols) total += c->MemoryBytes();
  total += index.next_pos() * 2 * sizeof(uint64_t);  // rough index cost
  return total;
}

// --- DeltaGroupTrack ---------------------------------------------------------

void DeltaGroupTrack::Reset(TypeId key_domain) {
  counts.clear();
  nagg = 0;
  states.clear();
  bw_of.clear();
  dead = 0;
  bws.clear();
  index.Reset(key_domain);
}

Status DeltaGroupTrack::AppendGroups(int64_t bw, const DeltaGroups& g) {
  DC_RETURN_NOT_OK(index.Append(*g.keys, 0, g.keys->size()));
  nagg = g.nagg;
  counts.insert(counts.end(), g.counts.begin(), g.counts.end());
  states.insert(states.end(), g.states.begin(), g.states.end());
  bw_of.insert(bw_of.end(), g.num_groups(), bw);
  bws.emplace_back(bw, g.num_groups());
  return Status::OK();
}

void DeltaGroupTrack::EvictBefore(int64_t first_live) {
  while (!bws.empty() && bws.front().first < first_live) {
    dead += bws.front().second;
    bws.pop_front();
  }
  index.EvictBelow(dead);
}

void DeltaGroupTrack::TrimIfWorthIt() {
  if (dead == 0 || dead <= counts.size() - dead) return;
  counts.erase(counts.begin(), counts.begin() + static_cast<int64_t>(dead));
  states.erase(states.begin(),
               states.begin() + static_cast<int64_t>(dead * nagg));
  bw_of.erase(bw_of.begin(), bw_of.begin() + static_cast<int64_t>(dead));
  index.Rebase();
  dead = 0;
}

size_t DeltaGroupTrack::MemoryBytes() const {
  return counts.size() * sizeof(uint64_t) + bw_of.size() * sizeof(int64_t) +
         states.size() * sizeof(ops::AggState) +
         index.next_pos() * 2 * sizeof(uint64_t);  // rough index cost
}

QueryExecutor::QueryExecutor(plan::CompiledQuery cq) : cq_(std::move(cq)) {
  const plan::BoundQuery& q = cq_.bound;
  if (q.is_aggregate) {
    for (const plan::BExprPtr& k : q.group_by) {
      fragment_types_.push_back(k->type);
    }
    for (const plan::BoundAgg& a : q.aggs) {
      if (a.arg) fragment_types_.push_back(a.arg_type);
    }
  } else {
    for (const plan::BExprPtr& e : q.select_exprs) {
      fragment_types_.push_back(e->type);
    }
    for (const auto& [e, asc] : q.order_by) fragment_types_.push_back(e->type);
  }
}

Result<StageOutput> QueryExecutor::RunPrejoin(int rel,
                                              const StageInput& raw) const {
  std::vector<StageInput> inputs(cq_.prejoin.size());
  inputs[rel] = raw;
  return ExecuteProgram(cq_.prejoin[rel], inputs);
}

Result<StageOutput> QueryExecutor::RunPostjoin(
    const std::vector<StageInput>& compact) const {
  return ExecuteProgram(cq_.postjoin, compact);
}

Result<DeltaFrag> QueryExecutor::RunPostjoinDelta(
    const std::vector<StageInput>& compact) const {
  if (!cq_.has_delta_postjoin) {
    return Status::Internal("query has no delta postjoin stage");
  }
  DC_ASSIGN_OR_RETURN(StageOutput out,
                      ExecuteProgram(cq_.delta_postjoin, compact));
  if (out.cols.size() < 2) {
    return Status::Internal("delta postjoin missing ordinal outputs");
  }
  DeltaFrag df;
  const BatPtr rbw = out.cols.back();
  out.cols.pop_back();
  const BatPtr lbw = out.cols.back();
  out.cols.pop_back();
  const auto lspan = lbw->I64Data();
  const auto rspan = rbw->I64Data();
  df.left_bw.assign(lspan.begin(), lspan.end());
  df.right_bw.assign(rspan.begin(), rspan.end());
  df.frag = std::move(out);
  return df;
}

Result<Partial> QueryExecutor::MakePartial(const StageOutput& frag) const {
  Partial p;
  p.rows = frag.rows;
  const plan::FinishSpec& f = cq_.finish;
  if (!f.is_aggregate) {
    p.frag_cols = frag.cols;
    // Pre-sort the partial by the hidden sort columns: every partial is
    // then a sorted run and Finish merges runs instead of re-sorting the
    // merged window (stable, so FULL — a single whole-window partial —
    // and INCREMENTAL agree).
    if (!f.sort_cols.empty() && p.rows > 1) {
      std::vector<ops::SortKey> keys;
      for (const auto& [slot, asc] : f.sort_cols) {
        keys.push_back(ops::SortKey{p.frag_cols[slot].get(), asc});
      }
      DC_ASSIGN_OR_RETURN(std::vector<Oid> order, ops::SortOrder(keys));
      for (BatPtr& c : p.frag_cols) c = ops::FetchOids(*c, order);
    }
    return p;
  }
  if (cq_.num_keys == 0) {
    p.scalar_states.resize(cq_.bound.aggs.size());
    for (size_t i = 0; i < cq_.bound.aggs.size(); ++i) {
      const int slot = cq_.agg_arg_slots[i];
      if (slot < 0) {
        p.scalar_states[i].count = frag.rows;
      } else {
        p.scalar_states[i].AddColumn(*frag.cols[slot], nullptr);
      }
    }
    return p;
  }
  auto merger = std::make_shared<ops::GroupedAggMerger>(f.key_types,
                                                        f.agg_layout);
  std::vector<const Bat*> keys;
  for (int k = 0; k < cq_.num_keys; ++k) keys.push_back(frag.cols[k].get());
  std::vector<const Bat*> values;
  for (size_t i = 0; i < cq_.bound.aggs.size(); ++i) {
    const int slot = cq_.agg_arg_slots[i];
    values.push_back(slot < 0 ? nullptr : frag.cols[slot].get());
  }
  DC_RETURN_NOT_OK(merger->AddPartial(keys, values));
  p.grouped = std::move(merger);
  return p;
}

Result<DeltaGroups> QueryExecutor::BuildDeltaGroups(
    int side, const StageOutput& compact) const {
  const auto& pa = cq_.delta_pre_agg;
  if (!pa.eligible) {
    return Status::Internal("query has no delta pre-aggregation");
  }
  const int key_slot = cq_.delta_key_slots[side];
  if (key_slot < 0 || static_cast<size_t>(key_slot) >= compact.cols.size()) {
    return Status::Internal("delta pre-agg: bad key slot");
  }
  const Bat& key = *compact.cols[key_slot];

  // This side's local aggregates (query order), their compact slots, and
  // whether each one reads the extrema (MIN/MAX only — SUM/AVG/COUNT skip
  // the per-row min/max tracking in the fold below).
  std::vector<const Bat*> arg_cols;
  std::vector<char> arg_minmax;
  for (size_t i = 0; i < pa.agg_side.size(); ++i) {
    if (pa.agg_side[i] != side) continue;
    const int slot = pa.agg_slot[i];
    if (slot < 0 || static_cast<size_t>(slot) >= compact.cols.size()) {
      return Status::Internal("delta pre-agg: bad argument slot");
    }
    arg_cols.push_back(compact.cols[slot].get());
    const ops::AggKind k = cq_.bound.aggs[i].kind;
    arg_minmax.push_back(k == ops::AggKind::kMin || k == ops::AggKind::kMax);
  }

  DeltaGroups out;
  out.nagg = arg_cols.size();
  out.keys = Bat::MakeEmpty(key.type());
  const uint64_t n = compact.rows;

  // Direct single-key grouping fused with the aggregate fold: one pass that
  // finds-or-creates a dense group id per row and types the argument adds.
  // This runs once per basic window per side, on the delta fire path, so it
  // avoids the generic ops::GroupBy (hash-chain vectors, representative
  // oids, a second Value-boxed fold pass). The thread-local scratch tables
  // keep their bucket arrays across fires, so the steady-state fire path
  // does not allocate per call.
  auto fold_row = [&](uint32_t g, uint64_t r) {
    if (g == out.counts.size()) {  // first row of a new group
      out.counts.push_back(0);
      out.states.resize(out.states.size() + out.nagg);
    }
    ++out.counts[g];
    ops::AggState* s = out.states.data() + g * out.nagg;
    for (size_t j = 0; j < out.nagg; ++j) {
      s[j].AddCell(*arg_cols[j], r, arg_minmax[j] != 0);
    }
  };
  switch (key.type()) {
    case TypeId::kI64:
    case TypeId::kTs: {
      thread_local GroupScratch<int64_t> tab;
      tab.Prepare(n);
      const auto data = key.I64Data();
      for (uint64_t r = 0; r < n; ++r) {
        uint32_t* slot = tab.FindOrInsertSlot(data[r], HashI64(data[r]));
        if (*slot == GroupScratch<int64_t>::kEmpty) {
          *slot = static_cast<uint32_t>(out.counts.size());
          out.keys->AppendI64(data[r]);
        }
        fold_row(*slot, r);
      }
      break;
    }
    case TypeId::kF64: {
      thread_local GroupScratch<double> tab;
      tab.Prepare(n);
      const auto data = key.F64Data();
      for (uint64_t r = 0; r < n; ++r) {
        uint32_t* slot = tab.FindOrInsertSlot(data[r], HashDouble(data[r]));
        if (*slot == GroupScratch<double>::kEmpty) {
          *slot = static_cast<uint32_t>(out.counts.size());
          out.keys->AppendF64(data[r]);
        }
        fold_row(*slot, r);
      }
      break;
    }
    case TypeId::kStr: {
      thread_local std::unordered_map<std::string, uint32_t> tab;
      tab.clear();
      for (uint64_t r = 0; r < n; ++r) {
        const std::string_view k = key.StrAt(r);
        const auto [it, fresh] = tab.emplace(
            std::string(k), static_cast<uint32_t>(out.counts.size()));
        if (fresh) out.keys->AppendStr(k);
        fold_row(it->second, r);
      }
      break;
    }
    default: {
      // Join keys are i64/f64/str (binder-enforced); keep a generic
      // fallback so a new key domain degrades instead of failing.
      DC_ASSIGN_OR_RETURN(ops::GroupResult gr, ops::GroupBy({&key}));
      out.keys = ops::FetchOids(key, gr.representatives);
      out.counts.assign(gr.num_groups, 0);
      out.states.assign(gr.num_groups * out.nagg, ops::AggState{});
      for (uint64_t r = 0; r < n; ++r) {
        const uint32_t g = gr.group_ids[r];
        ++out.counts[g];
        ops::AggState* s = out.states.data() + g * out.nagg;
        for (size_t j = 0; j < out.nagg; ++j) {
          s[j].AddCell(*arg_cols[j], r, arg_minmax[j] != 0);
        }
      }
      break;
    }
  }
  return out;
}

Result<ColumnSet> QueryExecutor::Finish(
    const std::vector<const Partial*>& partials) const {
  if (cq_.finish.is_aggregate) return FinishAggregate(partials);
  return FinishPlain(partials);
}

Result<BatPtr> EvalFinishExpr(const plan::BExpr& e,
                              const std::vector<BatPtr>& key_cols,
                              const std::vector<BatPtr>& agg_cols,
                              uint64_t rows) {
  using plan::BKind;
  switch (e.kind) {
    case BKind::kKeyRef:
      return key_cols[e.index];
    case BKind::kAggRef:
      return agg_cols[e.index];
    case BKind::kLiteral:
      return ops::MakeConstColumn(e.literal, rows);
    case BKind::kArith: {
      DC_ASSIGN_OR_RETURN(
          BatPtr l, EvalFinishExpr(*e.children[0], key_cols, agg_cols, rows));
      DC_ASSIGN_OR_RETURN(
          BatPtr r, EvalFinishExpr(*e.children[1], key_cols, agg_cols, rows));
      return ops::MapArith(*l, e.arith_op, *r);
    }
    case BKind::kCmp: {
      DC_ASSIGN_OR_RETURN(
          BatPtr l, EvalFinishExpr(*e.children[0], key_cols, agg_cols, rows));
      DC_ASSIGN_OR_RETURN(
          BatPtr r, EvalFinishExpr(*e.children[1], key_cols, agg_cols, rows));
      return ops::MapCmpCol(*l, e.cmp_op, *r);
    }
    case BKind::kAnd:
    case BKind::kOr: {
      DC_ASSIGN_OR_RETURN(
          BatPtr l, EvalFinishExpr(*e.children[0], key_cols, agg_cols, rows));
      DC_ASSIGN_OR_RETURN(
          BatPtr r, EvalFinishExpr(*e.children[1], key_cols, agg_cols, rows));
      return e.kind == BKind::kAnd ? ops::MapAnd(*l, *r) : ops::MapOr(*l, *r);
    }
    case BKind::kNot: {
      DC_ASSIGN_OR_RETURN(
          BatPtr c, EvalFinishExpr(*e.children[0], key_cols, agg_cols, rows));
      return ops::MapNot(*c);
    }
    case BKind::kColRef:
      break;
  }
  return Status::Internal("EvalFinishExpr: input-domain node");
}

Result<ColumnSet> QueryExecutor::FinishAggregate(
    const std::vector<const Partial*>& partials) const {
  const plan::FinishSpec& f = cq_.finish;
  std::vector<BatPtr> key_cols;
  std::vector<BatPtr> agg_cols;
  uint64_t rows = 0;

  if (cq_.num_keys == 0) {
    // Scalar aggregation: exactly one output row, even over empty input.
    std::vector<ops::AggState> merged(cq_.bound.aggs.size());
    for (const Partial* p : partials) {
      for (size_t i = 0; i < merged.size(); ++i) {
        merged[i].Merge(p->scalar_states[i]);
      }
    }
    for (size_t i = 0; i < merged.size(); ++i) {
      const plan::BoundAgg& a = cq_.bound.aggs[i];
      auto col = Bat::MakeEmpty(a.out_type);
      col->AppendValue(merged[i].Finalize(a.kind, a.arg_type));
      agg_cols.push_back(std::move(col));
    }
    rows = 1;
  } else {
    ops::GroupedAggMerger merged(f.key_types, f.agg_layout);
    for (const Partial* p : partials) {
      if (p->grouped) DC_RETURN_NOT_OK(merged.MergeFrom(*p->grouped));
    }
    DC_ASSIGN_OR_RETURN(std::vector<BatPtr> cols, merged.Finalize());
    for (int k = 0; k < cq_.num_keys; ++k) key_cols.push_back(cols[k]);
    for (size_t a = 0; a < cq_.bound.aggs.size(); ++a) {
      agg_cols.push_back(cols[cq_.num_keys + a]);
    }
    rows = merged.num_groups();
  }

  // Select list.
  ColumnSet out;
  out.names = f.out_names;
  for (const plan::BExprPtr& e : f.select_exprs) {
    DC_ASSIGN_OR_RETURN(BatPtr col,
                        EvalFinishExpr(*e, key_cols, agg_cols, rows));
    out.cols.push_back(std::move(col));
  }

  // HAVING filters groups (applies equally to key/agg columns so ORDER BY
  // sees only surviving groups).
  if (f.having) {
    DC_ASSIGN_OR_RETURN(BatPtr pred,
                        EvalFinishExpr(*f.having, key_cols, agg_cols, rows));
    DC_ASSIGN_OR_RETURN(Candidates cand, ops::SelectTrue(*pred));
    for (BatPtr& c : out.cols) c = c->Gather(cand);
    for (BatPtr& c : key_cols) c = c->Gather(cand);
    for (BatPtr& c : agg_cols) c = c->Gather(cand);
    rows = cand.size();
  }

  // ORDER BY over finish-domain expressions.
  if (!f.order_by.empty()) {
    std::vector<BatPtr> sort_cols;
    std::vector<ops::SortKey> keys;
    for (const auto& [e, asc] : f.order_by) {
      DC_ASSIGN_OR_RETURN(BatPtr col,
                          EvalFinishExpr(*e, key_cols, agg_cols, rows));
      sort_cols.push_back(col);
      keys.push_back(ops::SortKey{sort_cols.back().get(), asc});
    }
    DC_ASSIGN_OR_RETURN(std::vector<Oid> order, ops::SortOrder(keys));
    for (BatPtr& c : out.cols) c = ops::FetchOids(*c, order);
  }

  if (f.limit >= 0 && out.NumRows() > static_cast<uint64_t>(f.limit)) {
    for (BatPtr& c : out.cols) c = c->Slice(0, f.limit);
  }
  return out;
}

Result<ColumnSet> QueryExecutor::FinishPlain(
    const std::vector<const Partial*>& partials) const {
  const plan::FinishSpec& f = cq_.finish;
  std::vector<BatPtr> cols;
  for (TypeId t : fragment_types_) cols.push_back(Bat::MakeEmpty(t));

  // Partials that actually carry fragment rows (a partial may be missing
  // columns only when it is empty).
  std::vector<const Partial*> runs;
  for (const Partial* p : partials) {
    if (p->rows > 0 && p->frag_cols.size() >= cols.size()) runs.push_back(p);
  }

  if (!f.sort_cols.empty() && !runs.empty()) {
    // ORDER BY tail: each partial is already a sorted run (MakePartial),
    // so merge the runs instead of re-sorting the whole window. Stable
    // merge + stable per-run sort == stable sort of the concatenation,
    // which keeps FULL and INCREMENTAL emissions identical.
    std::vector<std::vector<ops::SortKey>> run_keys(runs.size());
    for (size_t r = 0; r < runs.size(); ++r) {
      for (const auto& [slot, asc] : f.sort_cols) {
        run_keys[r].push_back(
            ops::SortKey{runs[r]->frag_cols[slot].get(), asc});
      }
    }
    DC_ASSIGN_OR_RETURN(std::vector<ops::MergeSlice> merged,
                        ops::MergeSortedRuns(run_keys));
    uint64_t total = 0;
    for (const ops::MergeSlice& s : merged) total += s.len;
    for (size_t c = 0; c < cols.size(); ++c) {
      cols[c]->Reserve(total);
      // Each slice is a maximal run-length of consecutive rows from one
      // run, so the gather is a handful of bulk copies per batch instead
      // of one AppendRange call per row.
      for (const ops::MergeSlice& s : merged) {
        cols[c]->AppendRange(*runs[s.run]->frag_cols[c], s.begin,
                             s.begin + s.len);
      }
    }
  } else {
    // No ORDER BY: concatenate fragment outputs in partial order.
    for (const Partial* p : runs) {
      for (size_t c = 0; c < cols.size(); ++c) {
        cols[c]->AppendRange(*p->frag_cols[c], 0, p->frag_cols[c]->size());
      }
    }
  }

  ColumnSet out;
  out.names = f.out_names;
  for (int i = 0; i < f.num_visible; ++i) out.cols.push_back(cols[i]);
  if (f.limit >= 0 && out.NumRows() > static_cast<uint64_t>(f.limit)) {
    for (BatPtr& c : out.cols) c = c->Slice(0, f.limit);
  }
  return out;
}

std::vector<TypeId> OutputTypes(const plan::CompiledQuery& cq) {
  std::vector<TypeId> out;
  const auto& exprs = cq.finish.is_aggregate ? cq.finish.select_exprs
                                             : cq.bound.select_exprs;
  for (const plan::BExprPtr& e : exprs) out.push_back(e->type);
  return out;
}

Result<Partial> QueryExecutor::ComputePartial(
    const std::vector<StageInput>& raw) const {
  std::vector<StageInput> compact(cq_.prejoin.size());
  for (size_t r = 0; r < cq_.prejoin.size(); ++r) {
    DC_ASSIGN_OR_RETURN(StageOutput pre,
                        RunPrejoin(static_cast<int>(r), raw[r]));
    compact[r] = StageInput{std::move(pre.cols), pre.rows};
  }
  DC_ASSIGN_OR_RETURN(StageOutput frag, RunPostjoin(compact));
  return MakePartial(frag);
}

Result<ColumnSet> QueryExecutor::ExecuteFull(
    const std::vector<StageInput>& raw) const {
  DC_ASSIGN_OR_RETURN(Partial p, ComputePartial(raw));
  return Finish({&p});
}

}  // namespace dc::exec
