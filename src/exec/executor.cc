#include "exec/executor.h"

#include "bat/ops_arith.h"
#include "bat/ops_select.h"
#include "bat/ops_sort.h"
#include "bat/ops_join.h"
#include "util/string_util.h"

namespace dc::exec {

size_t Partial::MemoryBytes() const {
  size_t total = scalar_states.size() * sizeof(ops::AggState);
  if (grouped) total += grouped->num_groups() * 64;  // rough per-group cost
  for (const BatPtr& c : frag_cols) total += c->MemoryBytes();
  return total;
}

QueryExecutor::QueryExecutor(plan::CompiledQuery cq) : cq_(std::move(cq)) {
  const plan::BoundQuery& q = cq_.bound;
  if (q.is_aggregate) {
    for (const plan::BExprPtr& k : q.group_by) {
      fragment_types_.push_back(k->type);
    }
    for (const plan::BoundAgg& a : q.aggs) {
      if (a.arg) fragment_types_.push_back(a.arg_type);
    }
  } else {
    for (const plan::BExprPtr& e : q.select_exprs) {
      fragment_types_.push_back(e->type);
    }
    for (const auto& [e, asc] : q.order_by) fragment_types_.push_back(e->type);
  }
}

Result<StageOutput> QueryExecutor::RunPrejoin(int rel,
                                              const StageInput& raw) const {
  std::vector<StageInput> inputs(cq_.prejoin.size());
  inputs[rel] = raw;
  return ExecuteProgram(cq_.prejoin[rel], inputs);
}

Result<StageOutput> QueryExecutor::RunPostjoin(
    const std::vector<StageInput>& compact) const {
  return ExecuteProgram(cq_.postjoin, compact);
}

Result<DeltaFrag> QueryExecutor::RunPostjoinDelta(
    const std::vector<StageInput>& compact) const {
  if (!cq_.has_delta_postjoin) {
    return Status::Internal("query has no delta postjoin stage");
  }
  DC_ASSIGN_OR_RETURN(StageOutput out,
                      ExecuteProgram(cq_.delta_postjoin, compact));
  if (out.cols.size() < 2) {
    return Status::Internal("delta postjoin missing ordinal outputs");
  }
  DeltaFrag df;
  const BatPtr rbw = out.cols.back();
  out.cols.pop_back();
  const BatPtr lbw = out.cols.back();
  out.cols.pop_back();
  const auto lspan = lbw->I64Data();
  const auto rspan = rbw->I64Data();
  df.left_bw.assign(lspan.begin(), lspan.end());
  df.right_bw.assign(rspan.begin(), rspan.end());
  df.frag = std::move(out);
  return df;
}

Result<Partial> QueryExecutor::MakePartial(const StageOutput& frag) const {
  Partial p;
  p.rows = frag.rows;
  const plan::FinishSpec& f = cq_.finish;
  if (!f.is_aggregate) {
    p.frag_cols = frag.cols;
    // Pre-sort the partial by the hidden sort columns: every partial is
    // then a sorted run and Finish merges runs instead of re-sorting the
    // merged window (stable, so FULL — a single whole-window partial —
    // and INCREMENTAL agree).
    if (!f.sort_cols.empty() && p.rows > 1) {
      std::vector<ops::SortKey> keys;
      for (const auto& [slot, asc] : f.sort_cols) {
        keys.push_back(ops::SortKey{p.frag_cols[slot].get(), asc});
      }
      DC_ASSIGN_OR_RETURN(std::vector<Oid> order, ops::SortOrder(keys));
      for (BatPtr& c : p.frag_cols) c = ops::FetchOids(*c, order);
    }
    return p;
  }
  if (cq_.num_keys == 0) {
    p.scalar_states.resize(cq_.bound.aggs.size());
    for (size_t i = 0; i < cq_.bound.aggs.size(); ++i) {
      const int slot = cq_.agg_arg_slots[i];
      if (slot < 0) {
        p.scalar_states[i].count = frag.rows;
      } else {
        p.scalar_states[i].AddColumn(*frag.cols[slot], nullptr);
      }
    }
    return p;
  }
  auto merger = std::make_shared<ops::GroupedAggMerger>(f.key_types,
                                                        f.agg_layout);
  std::vector<const Bat*> keys;
  for (int k = 0; k < cq_.num_keys; ++k) keys.push_back(frag.cols[k].get());
  std::vector<const Bat*> values;
  for (size_t i = 0; i < cq_.bound.aggs.size(); ++i) {
    const int slot = cq_.agg_arg_slots[i];
    values.push_back(slot < 0 ? nullptr : frag.cols[slot].get());
  }
  DC_RETURN_NOT_OK(merger->AddPartial(keys, values));
  p.grouped = std::move(merger);
  return p;
}

Result<ColumnSet> QueryExecutor::Finish(
    const std::vector<const Partial*>& partials) const {
  if (cq_.finish.is_aggregate) return FinishAggregate(partials);
  return FinishPlain(partials);
}

Result<BatPtr> EvalFinishExpr(const plan::BExpr& e,
                              const std::vector<BatPtr>& key_cols,
                              const std::vector<BatPtr>& agg_cols,
                              uint64_t rows) {
  using plan::BKind;
  switch (e.kind) {
    case BKind::kKeyRef:
      return key_cols[e.index];
    case BKind::kAggRef:
      return agg_cols[e.index];
    case BKind::kLiteral:
      return ops::MakeConstColumn(e.literal, rows);
    case BKind::kArith: {
      DC_ASSIGN_OR_RETURN(
          BatPtr l, EvalFinishExpr(*e.children[0], key_cols, agg_cols, rows));
      DC_ASSIGN_OR_RETURN(
          BatPtr r, EvalFinishExpr(*e.children[1], key_cols, agg_cols, rows));
      return ops::MapArith(*l, e.arith_op, *r);
    }
    case BKind::kCmp: {
      DC_ASSIGN_OR_RETURN(
          BatPtr l, EvalFinishExpr(*e.children[0], key_cols, agg_cols, rows));
      DC_ASSIGN_OR_RETURN(
          BatPtr r, EvalFinishExpr(*e.children[1], key_cols, agg_cols, rows));
      return ops::MapCmpCol(*l, e.cmp_op, *r);
    }
    case BKind::kAnd:
    case BKind::kOr: {
      DC_ASSIGN_OR_RETURN(
          BatPtr l, EvalFinishExpr(*e.children[0], key_cols, agg_cols, rows));
      DC_ASSIGN_OR_RETURN(
          BatPtr r, EvalFinishExpr(*e.children[1], key_cols, agg_cols, rows));
      return e.kind == BKind::kAnd ? ops::MapAnd(*l, *r) : ops::MapOr(*l, *r);
    }
    case BKind::kNot: {
      DC_ASSIGN_OR_RETURN(
          BatPtr c, EvalFinishExpr(*e.children[0], key_cols, agg_cols, rows));
      return ops::MapNot(*c);
    }
    case BKind::kColRef:
      break;
  }
  return Status::Internal("EvalFinishExpr: input-domain node");
}

Result<ColumnSet> QueryExecutor::FinishAggregate(
    const std::vector<const Partial*>& partials) const {
  const plan::FinishSpec& f = cq_.finish;
  std::vector<BatPtr> key_cols;
  std::vector<BatPtr> agg_cols;
  uint64_t rows = 0;

  if (cq_.num_keys == 0) {
    // Scalar aggregation: exactly one output row, even over empty input.
    std::vector<ops::AggState> merged(cq_.bound.aggs.size());
    for (const Partial* p : partials) {
      for (size_t i = 0; i < merged.size(); ++i) {
        merged[i].Merge(p->scalar_states[i]);
      }
    }
    for (size_t i = 0; i < merged.size(); ++i) {
      const plan::BoundAgg& a = cq_.bound.aggs[i];
      auto col = Bat::MakeEmpty(a.out_type);
      col->AppendValue(merged[i].Finalize(a.kind, a.arg_type));
      agg_cols.push_back(std::move(col));
    }
    rows = 1;
  } else {
    ops::GroupedAggMerger merged(f.key_types, f.agg_layout);
    for (const Partial* p : partials) {
      if (p->grouped) DC_RETURN_NOT_OK(merged.MergeFrom(*p->grouped));
    }
    DC_ASSIGN_OR_RETURN(std::vector<BatPtr> cols, merged.Finalize());
    for (int k = 0; k < cq_.num_keys; ++k) key_cols.push_back(cols[k]);
    for (size_t a = 0; a < cq_.bound.aggs.size(); ++a) {
      agg_cols.push_back(cols[cq_.num_keys + a]);
    }
    rows = merged.num_groups();
  }

  // Select list.
  ColumnSet out;
  out.names = f.out_names;
  for (const plan::BExprPtr& e : f.select_exprs) {
    DC_ASSIGN_OR_RETURN(BatPtr col,
                        EvalFinishExpr(*e, key_cols, agg_cols, rows));
    out.cols.push_back(std::move(col));
  }

  // HAVING filters groups (applies equally to key/agg columns so ORDER BY
  // sees only surviving groups).
  if (f.having) {
    DC_ASSIGN_OR_RETURN(BatPtr pred,
                        EvalFinishExpr(*f.having, key_cols, agg_cols, rows));
    DC_ASSIGN_OR_RETURN(Candidates cand, ops::SelectTrue(*pred));
    for (BatPtr& c : out.cols) c = c->Gather(cand);
    for (BatPtr& c : key_cols) c = c->Gather(cand);
    for (BatPtr& c : agg_cols) c = c->Gather(cand);
    rows = cand.size();
  }

  // ORDER BY over finish-domain expressions.
  if (!f.order_by.empty()) {
    std::vector<BatPtr> sort_cols;
    std::vector<ops::SortKey> keys;
    for (const auto& [e, asc] : f.order_by) {
      DC_ASSIGN_OR_RETURN(BatPtr col,
                          EvalFinishExpr(*e, key_cols, agg_cols, rows));
      sort_cols.push_back(col);
      keys.push_back(ops::SortKey{sort_cols.back().get(), asc});
    }
    DC_ASSIGN_OR_RETURN(std::vector<Oid> order, ops::SortOrder(keys));
    for (BatPtr& c : out.cols) c = ops::FetchOids(*c, order);
  }

  if (f.limit >= 0 && out.NumRows() > static_cast<uint64_t>(f.limit)) {
    for (BatPtr& c : out.cols) c = c->Slice(0, f.limit);
  }
  return out;
}

Result<ColumnSet> QueryExecutor::FinishPlain(
    const std::vector<const Partial*>& partials) const {
  const plan::FinishSpec& f = cq_.finish;
  std::vector<BatPtr> cols;
  for (TypeId t : fragment_types_) cols.push_back(Bat::MakeEmpty(t));

  // Partials that actually carry fragment rows (a partial may be missing
  // columns only when it is empty).
  std::vector<const Partial*> runs;
  for (const Partial* p : partials) {
    if (p->rows > 0 && p->frag_cols.size() >= cols.size()) runs.push_back(p);
  }

  if (!f.sort_cols.empty() && !runs.empty()) {
    // ORDER BY tail: each partial is already a sorted run (MakePartial),
    // so merge the runs instead of re-sorting the whole window. Stable
    // merge + stable per-run sort == stable sort of the concatenation,
    // which keeps FULL and INCREMENTAL emissions identical.
    std::vector<std::vector<ops::SortKey>> run_keys(runs.size());
    for (size_t r = 0; r < runs.size(); ++r) {
      for (const auto& [slot, asc] : f.sort_cols) {
        run_keys[r].push_back(
            ops::SortKey{runs[r]->frag_cols[slot].get(), asc});
      }
    }
    DC_ASSIGN_OR_RETURN(auto merged, ops::MergeSortedRuns(run_keys));
    for (size_t c = 0; c < cols.size(); ++c) {
      cols[c]->Reserve(merged.size());
      for (const auto& [run, row] : merged) {
        cols[c]->AppendRange(*runs[run]->frag_cols[c], row, row + 1);
      }
    }
  } else {
    // No ORDER BY: concatenate fragment outputs in partial order.
    for (const Partial* p : runs) {
      for (size_t c = 0; c < cols.size(); ++c) {
        cols[c]->AppendRange(*p->frag_cols[c], 0, p->frag_cols[c]->size());
      }
    }
  }

  ColumnSet out;
  out.names = f.out_names;
  for (int i = 0; i < f.num_visible; ++i) out.cols.push_back(cols[i]);
  if (f.limit >= 0 && out.NumRows() > static_cast<uint64_t>(f.limit)) {
    for (BatPtr& c : out.cols) c = c->Slice(0, f.limit);
  }
  return out;
}

std::vector<TypeId> OutputTypes(const plan::CompiledQuery& cq) {
  std::vector<TypeId> out;
  const auto& exprs = cq.finish.is_aggregate ? cq.finish.select_exprs
                                             : cq.bound.select_exprs;
  for (const plan::BExprPtr& e : exprs) out.push_back(e->type);
  return out;
}

Result<Partial> QueryExecutor::ComputePartial(
    const std::vector<StageInput>& raw) const {
  std::vector<StageInput> compact(cq_.prejoin.size());
  for (size_t r = 0; r < cq_.prejoin.size(); ++r) {
    DC_ASSIGN_OR_RETURN(StageOutput pre,
                        RunPrejoin(static_cast<int>(r), raw[r]));
    compact[r] = StageInput{std::move(pre.cols), pre.rows};
  }
  DC_ASSIGN_OR_RETURN(StageOutput frag, RunPostjoin(compact));
  return MakePartial(frag);
}

Result<ColumnSet> QueryExecutor::ExecuteFull(
    const std::vector<StageInput>& raw) const {
  DC_ASSIGN_OR_RETURN(Partial p, ComputePartial(raw));
  return Finish({&p});
}

}  // namespace dc::exec
