#include "exec/interpreter.h"

#include <variant>

#include "bat/ops_arith.h"
#include "bat/ops_join.h"
#include "bat/ops_select.h"
#include "util/string_util.h"

namespace dc::exec {

namespace {

using OidList = std::shared_ptr<std::vector<Oid>>;

using Register = std::variant<std::monostate, BatPtr, Candidates, OidList>;

struct Machine {
  const cal::Program& p;
  const std::vector<StageInput>& inputs;
  std::vector<Register> regs;

  explicit Machine(const cal::Program& program,
                   const std::vector<StageInput>& in)
      : p(program), inputs(in), regs(program.num_regs) {}

  Result<BatPtr> Col(int r) const {
    if (r < 0 || !std::holds_alternative<BatPtr>(regs[r])) {
      return Status::Internal(StrFormat("register V%d is not a column", r));
    }
    return std::get<BatPtr>(regs[r]);
  }
  Result<Candidates> Cand(int r) const {
    if (r < 0 || !std::holds_alternative<Candidates>(regs[r])) {
      return Status::Internal(StrFormat("register C%d is not candidates", r));
    }
    return std::get<Candidates>(regs[r]);
  }
  const Candidates* CandPtr(int r) const {
    if (r < 0) return nullptr;
    return std::get_if<Candidates>(&regs[r]);
  }
  Result<OidList> Oids(int r) const {
    if (r < 0 || !std::holds_alternative<OidList>(regs[r])) {
      return Status::Internal(StrFormat("register O%d is not an oid list", r));
    }
    return std::get<OidList>(regs[r]);
  }

  Status Step(const cal::Instr& i) {
    using cal::OpCode;
    switch (i.op) {
      case OpCode::kBindCol: {
        const auto& rel = inputs[i.rel];
        if (i.col < 0 || static_cast<size_t>(i.col) >= rel.cols.size()) {
          return Status::Internal("bind: column index out of range");
        }
        regs[i.dst] = rel.cols[i.col];
        return Status::OK();
      }
      case OpCode::kBindCand: {
        regs[i.dst] = Candidates::Range(0, inputs[i.rel].rows);
        return Status::OK();
      }
      case OpCode::kSelectCmp: {
        DC_ASSIGN_OR_RETURN(BatPtr col, Col(i.a));
        const Candidates* cand = CandPtr(i.b);
        DC_ASSIGN_OR_RETURN(Candidates out,
                            ops::SelectCmp(*col, i.cmp, i.imm, cand));
        regs[i.dst] = std::move(out);
        return Status::OK();
      }
      case OpCode::kSelectCmpCol: {
        DC_ASSIGN_OR_RETURN(BatPtr a, Col(i.a));
        DC_ASSIGN_OR_RETURN(BatPtr b, Col(i.b));
        const Candidates* cand = CandPtr(i.c);
        DC_ASSIGN_OR_RETURN(Candidates out,
                            ops::SelectCmpCol(*a, i.cmp, *b, cand));
        regs[i.dst] = std::move(out);
        return Status::OK();
      }
      case OpCode::kSelectTrue: {
        DC_ASSIGN_OR_RETURN(BatPtr col, Col(i.a));
        const Candidates* cand = CandPtr(i.b);
        DC_ASSIGN_OR_RETURN(Candidates out, ops::SelectTrue(*col, cand));
        regs[i.dst] = std::move(out);
        return Status::OK();
      }
      case OpCode::kCandAnd: {
        DC_ASSIGN_OR_RETURN(Candidates a, Cand(i.a));
        DC_ASSIGN_OR_RETURN(Candidates b, Cand(i.b));
        regs[i.dst] = Candidates::Intersect(a, b);
        return Status::OK();
      }
      case OpCode::kCandOr: {
        DC_ASSIGN_OR_RETURN(Candidates a, Cand(i.a));
        DC_ASSIGN_OR_RETURN(Candidates b, Cand(i.b));
        regs[i.dst] = Candidates::Union(a, b);
        return Status::OK();
      }
      case OpCode::kCandDiff: {
        DC_ASSIGN_OR_RETURN(Candidates a, Cand(i.a));
        DC_ASSIGN_OR_RETURN(Candidates b, Cand(i.b));
        regs[i.dst] = Candidates::Difference(a, b);
        return Status::OK();
      }
      case OpCode::kGather: {
        DC_ASSIGN_OR_RETURN(BatPtr col, Col(i.a));
        DC_ASSIGN_OR_RETURN(Candidates cand, Cand(i.b));
        regs[i.dst] = col->Gather(cand);
        return Status::OK();
      }
      case OpCode::kJoin: {
        DC_ASSIGN_OR_RETURN(BatPtr l, Col(i.a));
        DC_ASSIGN_OR_RETURN(BatPtr r, Col(i.b));
        DC_ASSIGN_OR_RETURN(ops::JoinResult jr, ops::HashJoin(*l, *r));
        regs[i.dst] = std::make_shared<std::vector<Oid>>(std::move(jr.left));
        regs[i.dst2] =
            std::make_shared<std::vector<Oid>>(std::move(jr.right));
        return Status::OK();
      }
      case OpCode::kDeltaJoin: {
        DC_ASSIGN_OR_RETURN(BatPtr l, Col(i.a));
        DC_ASSIGN_OR_RETURN(BatPtr r, Col(i.b));
        if (i.rel < 0 || i.rel2 < 0 ||
            static_cast<size_t>(i.rel) >= inputs.size() ||
            static_cast<size_t>(i.rel2) >= inputs.size()) {
          return Status::Internal("delta_join: bad input relation");
        }
        const ops::RollingJoinIndex* li = inputs[i.rel].delta_index;
        const ops::RollingJoinIndex* ri = inputs[i.rel2].delta_index;
        ops::JoinResult jr;
        if (li != nullptr && ri != nullptr) {
          // Indexed O(new) path: retained⋈new via the rolling indexes,
          // new⋈new via a hash join over the new portions only.
          DC_ASSIGN_OR_RETURN(
              jr, ops::IndexedDeltaJoin(*l, inputs[i.rel].delta_old_rows, *li,
                                        *r, inputs[i.rel2].delta_old_rows,
                                        *ri));
        } else {
          DC_ASSIGN_OR_RETURN(
              jr, ops::DeltaJoin(*l, inputs[i.rel].delta_old_rows, *r,
                                 inputs[i.rel2].delta_old_rows));
        }
        regs[i.dst] = std::make_shared<std::vector<Oid>>(std::move(jr.left));
        regs[i.dst2] =
            std::make_shared<std::vector<Oid>>(std::move(jr.right));
        return Status::OK();
      }
      case OpCode::kFetch: {
        DC_ASSIGN_OR_RETURN(BatPtr col, Col(i.a));
        DC_ASSIGN_OR_RETURN(OidList oids, Oids(i.b));
        regs[i.dst] = ops::FetchOids(*col, *oids);
        return Status::OK();
      }
      case OpCode::kMapArith: {
        DC_ASSIGN_OR_RETURN(BatPtr a, Col(i.a));
        DC_ASSIGN_OR_RETURN(BatPtr b, Col(i.b));
        DC_ASSIGN_OR_RETURN(BatPtr out, ops::MapArith(*a, i.arith, *b));
        regs[i.dst] = std::move(out);
        return Status::OK();
      }
      case OpCode::kMapArithConst: {
        DC_ASSIGN_OR_RETURN(BatPtr a, Col(i.a));
        DC_ASSIGN_OR_RETURN(BatPtr out,
                            ops::MapArithConst(*a, i.arith, i.imm,
                                               i.lit_left));
        regs[i.dst] = std::move(out);
        return Status::OK();
      }
      case OpCode::kMapCmp: {
        DC_ASSIGN_OR_RETURN(BatPtr a, Col(i.a));
        DC_ASSIGN_OR_RETURN(BatPtr b, Col(i.b));
        DC_ASSIGN_OR_RETURN(BatPtr out, ops::MapCmpCol(*a, i.cmp, *b));
        regs[i.dst] = std::move(out);
        return Status::OK();
      }
      case OpCode::kMapCmpConst: {
        DC_ASSIGN_OR_RETURN(BatPtr a, Col(i.a));
        DC_ASSIGN_OR_RETURN(BatPtr out, ops::MapCmpConst(*a, i.cmp, i.imm));
        regs[i.dst] = std::move(out);
        return Status::OK();
      }
      case OpCode::kMapAnd: {
        DC_ASSIGN_OR_RETURN(BatPtr a, Col(i.a));
        DC_ASSIGN_OR_RETURN(BatPtr b, Col(i.b));
        DC_ASSIGN_OR_RETURN(BatPtr out, ops::MapAnd(*a, *b));
        regs[i.dst] = std::move(out);
        return Status::OK();
      }
      case OpCode::kMapOr: {
        DC_ASSIGN_OR_RETURN(BatPtr a, Col(i.a));
        DC_ASSIGN_OR_RETURN(BatPtr b, Col(i.b));
        DC_ASSIGN_OR_RETURN(BatPtr out, ops::MapOr(*a, *b));
        regs[i.dst] = std::move(out);
        return Status::OK();
      }
      case OpCode::kMapNot: {
        DC_ASSIGN_OR_RETURN(BatPtr a, Col(i.a));
        DC_ASSIGN_OR_RETURN(BatPtr out, ops::MapNot(*a));
        regs[i.dst] = std::move(out);
        return Status::OK();
      }
      case OpCode::kMapCast: {
        DC_ASSIGN_OR_RETURN(BatPtr a, Col(i.a));
        DC_ASSIGN_OR_RETURN(BatPtr out, ops::MapCast(*a, i.cast_type));
        regs[i.dst] = std::move(out);
        return Status::OK();
      }
      case OpCode::kConstCol: {
        DC_ASSIGN_OR_RETURN(BatPtr ref, Col(i.a));
        regs[i.dst] = ops::MakeConstColumn(i.imm, ref->size());
        return Status::OK();
      }
    }
    return Status::Internal("unhandled opcode");
  }
};

}  // namespace

Result<StageOutput> ExecuteProgram(const cal::Program& program,
                                   const std::vector<StageInput>& inputs) {
  Machine m(program, inputs);
  for (const cal::Instr& i : program.instrs) {
    DC_RETURN_NOT_OK(m.Step(i));
  }
  StageOutput out;
  for (int r : program.output_regs) {
    DC_ASSIGN_OR_RETURN(BatPtr col, m.Col(r));
    out.cols.push_back(std::move(col));
  }
  switch (program.domain_kind) {
    case cal::DomainKind::kColumn: {
      DC_ASSIGN_OR_RETURN(BatPtr col, m.Col(program.domain_reg));
      out.rows = col->size();
      break;
    }
    case cal::DomainKind::kCand: {
      DC_ASSIGN_OR_RETURN(Candidates cand, m.Cand(program.domain_reg));
      out.rows = cand.size();
      break;
    }
    case cal::DomainKind::kOidList: {
      DC_ASSIGN_OR_RETURN(auto oids, m.Oids(program.domain_reg));
      out.rows = oids->size();
      break;
    }
    case cal::DomainKind::kNone:
      out.rows = inputs.empty() ? 0 : inputs[0].rows;
      break;
  }
  return out;
}

}  // namespace dc::exec
