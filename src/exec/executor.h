// Copyright 2026 The DataCell Authors.
//
// QueryExecutor: runs a compiled query's stages and owns the
// partial-result/merge machinery that both execution modes share.
//
//   One-time / FULL re-evaluation:  ExecuteFull(whole inputs)
//   INCREMENTAL:                    RunPrejoin + RunPostjoin per basic
//                                   window -> MakePartial (cached by the
//                                   factory) -> Finish(merge all partials)
//
// Because both paths run the identical stage programs and the identical
// finish step, FULL and INCREMENTAL emissions are equal by construction;
// the property tests assert it.

#ifndef DATACELL_EXEC_EXECUTOR_H_
#define DATACELL_EXEC_EXECUTOR_H_

#include <memory>
#include <vector>

#include "bat/bat.h"
#include "bat/ops_group.h"
#include "exec/interpreter.h"
#include "plan/compiler.h"
#include "util/result.h"

namespace dc::exec {

/// Mergeable partial result of one input portion (basic window).
struct Partial {
  // Aggregate queries without GROUP BY:
  std::vector<ops::AggState> scalar_states;
  // Aggregate queries with GROUP BY:
  std::shared_ptr<ops::GroupedAggMerger> grouped;
  // Non-aggregate queries: the fragment's output columns. When the query
  // has an ORDER BY, MakePartial stores them pre-sorted by the hidden
  // sort columns, so each partial is one sorted run and Finish merges
  // runs instead of re-sorting the window.
  std::vector<BatPtr> frag_cols;
  uint64_t rows = 0;

  /// Approximate footprint (monitoring: "intermediate result sizes").
  size_t MemoryBytes() const;
};

/// Output of the delta-postjoin stage (stream-stream joins, incremental
/// mode): the fragment columns of the NEW join pairs only, plus each
/// result row's basic-window ordinal on both sides — the factory buckets
/// rows by expiry so retained results are dropped wholesale as basic
/// windows leave the window.
struct DeltaFrag {
  StageOutput frag;
  std::vector<int64_t> left_bw;
  std::vector<int64_t> right_bw;
};

/// Stage runner for one compiled query. Thread-compatible: const methods
/// are safe to call concurrently.
class QueryExecutor {
 public:
  explicit QueryExecutor(plan::CompiledQuery cq);

  const plan::CompiledQuery& compiled() const { return cq_; }

  /// Prejoin stage for relation `rel` over raw input columns.
  Result<StageOutput> RunPrejoin(int rel, const StageInput& raw) const;

  /// Postjoin stage over the compact relations (prejoin outputs).
  Result<StageOutput> RunPostjoin(
      const std::vector<StageInput>& compact) const;

  /// True when the query compiled a delta-postjoin stage (stream-stream
  /// equi-join).
  bool HasDeltaPostjoin() const { return cq_.has_delta_postjoin; }

  /// Delta-postjoin stage: `compact` holds, per side, the concatenated
  /// [retained ; new] compact columns with StageInput::delta_old_rows set
  /// and one extra i64 basic-window-ordinal column appended after the
  /// compact columns. Produces the fragment rows of the new join pairs
  /// only.
  Result<DeltaFrag> RunPostjoinDelta(
      const std::vector<StageInput>& compact) const;

  /// Folds a fragment output into a mergeable Partial.
  Result<Partial> MakePartial(const StageOutput& frag) const;

  /// Merges `partials` (possibly empty) and applies the finish step:
  /// select-list evaluation, HAVING, ORDER BY, LIMIT, column naming.
  Result<ColumnSet> Finish(
      const std::vector<const Partial*>& partials) const;

  /// Whole pipeline over complete inputs — one-time queries and FULL mode.
  Result<ColumnSet> ExecuteFull(const std::vector<StageInput>& raw) const;

  /// Convenience wrapper: prejoin+postjoin+MakePartial for one portion.
  Result<Partial> ComputePartial(const std::vector<StageInput>& raw) const;

 private:
  Result<ColumnSet> FinishAggregate(
      const std::vector<const Partial*>& partials) const;
  Result<ColumnSet> FinishPlain(
      const std::vector<const Partial*>& partials) const;

  plan::CompiledQuery cq_;
  std::vector<TypeId> fragment_types_;
};

/// Types of the query's visible output columns (for result schemas).
std::vector<TypeId> OutputTypes(const plan::CompiledQuery& cq);

/// Evaluates a finish-domain expression over the merged key/aggregate
/// columns (all of length `rows`).
Result<BatPtr> EvalFinishExpr(const plan::BExpr& e,
                              const std::vector<BatPtr>& key_cols,
                              const std::vector<BatPtr>& agg_cols,
                              uint64_t rows);

}  // namespace dc::exec

#endif  // DATACELL_EXEC_EXECUTOR_H_
