// Copyright 2026 The DataCell Authors.
//
// QueryExecutor: runs a compiled query's stages and owns the
// partial-result/merge machinery that both execution modes share.
//
//   One-time / FULL re-evaluation:  ExecuteFull(whole inputs)
//   INCREMENTAL:                    RunPrejoin + RunPostjoin per basic
//                                   window -> MakePartial (cached by the
//                                   factory) -> Finish(merge all partials)
//
// Because both paths run the identical stage programs and the identical
// finish step, FULL and INCREMENTAL emissions are equal by construction;
// the property tests assert it.

#ifndef DATACELL_EXEC_EXECUTOR_H_
#define DATACELL_EXEC_EXECUTOR_H_

#include <deque>
#include <memory>
#include <utility>
#include <vector>

#include "bat/bat.h"
#include "bat/ops_group.h"
#include "bat/ops_index.h"
#include "exec/interpreter.h"
#include "plan/compiler.h"
#include "util/result.h"

namespace dc::exec {

/// Mergeable partial result of one input portion (basic window).
struct Partial {
  // Aggregate queries without GROUP BY:
  std::vector<ops::AggState> scalar_states;
  // Aggregate queries with GROUP BY:
  std::shared_ptr<ops::GroupedAggMerger> grouped;
  // Non-aggregate queries: the fragment's output columns. When the query
  // has an ORDER BY, MakePartial stores them pre-sorted by the hidden
  // sort columns, so each partial is one sorted run and Finish merges
  // runs instead of re-sorting the window.
  std::vector<BatPtr> frag_cols;
  uint64_t rows = 0;

  /// Approximate footprint (monitoring: "intermediate result sizes").
  size_t MemoryBytes() const;
};

/// Output of the delta-postjoin stage (stream-stream joins, incremental
/// mode): the fragment columns of the NEW join pairs only, plus each
/// result row's basic-window ordinal on both sides — the factory buckets
/// rows by expiry so retained results are dropped wholesale as basic
/// windows leave the window.
struct DeltaFrag {
  StageOutput frag;
  std::vector<int64_t> left_bw;
  std::vector<int64_t> right_bw;
};

/// Rolling per-side state of the delta-join row path: the [retained ; new]
/// concatenation of one side's compact columns plus the hidden bw-ordinal
/// column, and the hash index over the join-key slot. The factory appends
/// each arriving basic window exactly once, marks expired basic windows
/// dead lazily, and physically trims only when the dead prefix outgrows
/// the live rows — so per-emission assembly cost is O(new rows), not
/// O(window), and the index is never rebuilt.
struct DeltaSideState {
  /// Compact columns followed by the i64 basic-window-ordinal column.
  std::vector<BatPtr> cols;
  uint64_t rows = 0;  ///< physical rows, including the dead prefix
  uint64_t dead = 0;  ///< expired physical prefix rows awaiting trim
  /// (bw ordinal, row count) per live basic window, oldest first.
  std::deque<std::pair<int64_t, uint64_t>> bws;
  /// Hash index over cols[key_slot]; positions are physical row ids.
  ops::RollingJoinIndex index;
  int key_slot = -1;  ///< compact slot of the join key on this side

  /// Drops all state and rebinds the key domain/slot (first seed fire).
  void Reset(TypeId key_domain, int key_slot_in);
  /// Appends one basic window's compact columns (prejoin output) plus the
  /// repeated ordinal `bw`. Allocates the columns on first use.
  Status AppendBasicWindow(int64_t bw, const StageOutput& compact);
  /// Single-basic-window fast path (window == slide on this side): the
  /// whole window is the new basic window, so the concatenation aliases
  /// the prejoin output directly — no copy, no retained prefix, and the
  /// (never probed) index stays empty.
  void AdoptSingleWindow(int64_t bw, const StageOutput& compact);
  /// Indexes rows [from, rows). Call after the delta probe so the index
  /// never covers the probing emission's new rows.
  Status IndexNewRows(uint64_t from);
  /// Marks basic windows with ordinal < `first_live` dead. Their rows
  /// stay physically resident (and probe-invisible) until TrimIfWorthIt.
  void EvictBefore(int64_t first_live);
  /// Physically drops the dead prefix once it outgrows the live rows,
  /// rebasing the index in the same step so positions stay row ids.
  void TrimIfWorthIt();
  uint64_t live_rows() const { return rows - dead; }
  size_t MemoryBytes() const;
};

/// One basic window of one join side reduced to per-join-key groups, for
/// the delta pre-aggregation push-down: the delta join then pairs groups
/// instead of rows and applies the product rule (AggState::ScaledMerge),
/// so per-emission cost scales with distinct keys rather than join pairs.
struct DeltaGroups {
  BatPtr keys;                   ///< distinct join keys, group order
  std::vector<uint64_t> counts;  ///< rows per group
  /// Flat per-group states, stride `nagg`: states[g * nagg + j] is group
  /// g's state for the j-th of this side's local aggregates (the query
  /// aggregates whose argument lives on this side, in query order).
  /// COUNT(*) needs no per-side state. Flat storage keeps the hot
  /// pairing loop free of per-group heap allocations.
  size_t nagg = 0;
  std::vector<ops::AggState> states;
  uint64_t num_groups() const { return counts.size(); }
  const ops::AggState* group_states(uint64_t g) const {
    return states.data() + g * nagg;
  }
};

/// Rolling retained-side state of the pre-aggregated delta path: the
/// group-level analogue of DeltaSideState. Index positions are group
/// ordinals into counts/states/bw_of (dense append order).
struct DeltaGroupTrack {
  std::vector<uint64_t> counts;
  /// Flat per-group states, stride `nagg` (same layout as DeltaGroups).
  size_t nagg = 0;
  std::vector<ops::AggState> states;
  std::vector<int64_t> bw_of;  ///< originating basic window per group
  uint64_t dead = 0;           ///< expired group prefix awaiting trim
  /// (bw ordinal, group count) per live basic window, oldest first.
  std::deque<std::pair<int64_t, uint64_t>> bws;
  ops::RollingJoinIndex index;  ///< over the group keys

  void Reset(TypeId key_domain);
  /// Appends one basic window's groups and indexes their keys. The pairing
  /// discipline (which side appends before the opposite side probes, so
  /// each bw pair is accumulated exactly once and new x new rides on the
  /// second probe) lives in Factory::FireDeltaPreAgg.
  Status AppendGroups(int64_t bw, const DeltaGroups& g);
  void EvictBefore(int64_t first_live);
  void TrimIfWorthIt();
  uint64_t live_groups() const { return counts.size() - dead; }
  const ops::AggState* group_states(uint64_t p) const {
    return states.data() + p * nagg;
  }
  size_t MemoryBytes() const;
};

/// Stage runner for one compiled query. Thread-compatible: const methods
/// are safe to call concurrently.
class QueryExecutor {
 public:
  explicit QueryExecutor(plan::CompiledQuery cq);

  const plan::CompiledQuery& compiled() const { return cq_; }

  /// Prejoin stage for relation `rel` over raw input columns.
  Result<StageOutput> RunPrejoin(int rel, const StageInput& raw) const;

  /// Postjoin stage over the compact relations (prejoin outputs).
  Result<StageOutput> RunPostjoin(
      const std::vector<StageInput>& compact) const;

  /// True when the query compiled a delta-postjoin stage (stream-stream
  /// equi-join).
  bool HasDeltaPostjoin() const { return cq_.has_delta_postjoin; }

  /// Delta-postjoin stage: `compact` holds, per side, the concatenated
  /// [retained ; new] compact columns with StageInput::delta_old_rows set
  /// and one extra i64 basic-window-ordinal column appended after the
  /// compact columns. Produces the fragment rows of the new join pairs
  /// only.
  Result<DeltaFrag> RunPostjoinDelta(
      const std::vector<StageInput>& compact) const;

  /// Folds a fragment output into a mergeable Partial.
  Result<Partial> MakePartial(const StageOutput& frag) const;

  /// Pre-aggregation push-down (compiled().delta_pre_agg.eligible):
  /// reduces one basic window's compact columns of join side `side` (0 or
  /// 1) to per-join-key groups with row counts and this side's local
  /// aggregate states.
  Result<DeltaGroups> BuildDeltaGroups(int side,
                                       const StageOutput& compact) const;

  /// Merges `partials` (possibly empty) and applies the finish step:
  /// select-list evaluation, HAVING, ORDER BY, LIMIT, column naming.
  Result<ColumnSet> Finish(
      const std::vector<const Partial*>& partials) const;

  /// Whole pipeline over complete inputs — one-time queries and FULL mode.
  Result<ColumnSet> ExecuteFull(const std::vector<StageInput>& raw) const;

  /// Convenience wrapper: prejoin+postjoin+MakePartial for one portion.
  Result<Partial> ComputePartial(const std::vector<StageInput>& raw) const;

 private:
  Result<ColumnSet> FinishAggregate(
      const std::vector<const Partial*>& partials) const;
  Result<ColumnSet> FinishPlain(
      const std::vector<const Partial*>& partials) const;

  plan::CompiledQuery cq_;
  std::vector<TypeId> fragment_types_;
};

/// Types of the query's visible output columns (for result schemas).
std::vector<TypeId> OutputTypes(const plan::CompiledQuery& cq);

/// Evaluates a finish-domain expression over the merged key/aggregate
/// columns (all of length `rows`).
Result<BatPtr> EvalFinishExpr(const plan::BExpr& e,
                              const std::vector<BatPtr>& key_cols,
                              const std::vector<BatPtr>& agg_cols,
                              uint64_t rows);

}  // namespace dc::exec

#endif  // DATACELL_EXEC_EXECUTOR_H_
