// Copyright 2026 The DataCell Authors.
//
// CAL interpreter: executes one stage program instruction-at-a-time, fully
// materializing every intermediate (MonetDB's bulk processing model).

#ifndef DATACELL_EXEC_INTERPRETER_H_
#define DATACELL_EXEC_INTERPRETER_H_

#include <vector>

#include "bat/bat.h"
#include "plan/cal.h"
#include "util/result.h"

namespace dc::ops {
class RollingJoinIndex;
}  // namespace dc::ops

namespace dc::exec {

/// One input relation for a stage: columns plus an explicit row count
/// (columns may be empty when only the cardinality matters, e.g. for
/// COUNT(*)-only fragments).
struct StageInput {
  std::vector<BatPtr> cols;
  uint64_t rows = 0;
  /// Delta stages (kDeltaJoin): rows below this offset are the retained
  /// portion of the window, rows at or above it belong to the newest
  /// basic window. Ignored by every other instruction.
  uint64_t delta_old_rows = 0;
  /// Delta stages: rolling hash index covering this side's retained rows
  /// (never the new ones). When both join inputs carry one, kDeltaJoin
  /// probes the indexes with only the new rows (O(new) per emission)
  /// instead of rebuilding hash tables over the concatenation; without
  /// indexes it falls back to ops::DeltaJoin. The index may have evicted
  /// a prefix of the retained rows (expired basic windows awaiting trim);
  /// those rows are skipped. Borrowed pointer, valid for the call.
  const ops::RollingJoinIndex* delta_index = nullptr;
};

/// Stage result: output columns (in program output order) and the row
/// count of the final domain.
struct StageOutput {
  std::vector<BatPtr> cols;
  uint64_t rows = 0;
};

/// Executes `program` over `inputs` (indexed by Instr::rel).
Result<StageOutput> ExecuteProgram(const cal::Program& program,
                                   const std::vector<StageInput>& inputs);

}  // namespace dc::exec

#endif  // DATACELL_EXEC_INTERPRETER_H_
