#include "workload/linear_road.h"

#include <algorithm>
#include <cmath>

#include "util/string_util.h"

namespace dc::workload {

std::string LrPositionDdl(const std::string& stream_name) {
  return StrFormat(
      "CREATE STREAM %s (ts timestamp, vid int, speed double, xway int, "
      "dir int, seg int)",
      stream_name.c_str());
}

LinearRoadGenerator::LinearRoadGenerator(LrConfig config)
    : config_(config), rng_(config.seed) {
  const int total = config_.xways * config_.vehicles_per_xway;
  vehicles_.resize(total);
  for (int v = 0; v < total; ++v) {
    Vehicle& veh = vehicles_[v];
    veh.pos_miles = rng_.UniformDouble(0, kLrSegments);  // 1 mile segments
    veh.speed = rng_.UniformDouble(config_.min_mph, config_.max_mph);
    veh.dir = rng_.Bernoulli(0.5) ? 1 : 0;
  }
}

uint64_t LinearRoadGenerator::TotalReports() const {
  return static_cast<uint64_t>(config_.xways) *
         static_cast<uint64_t>(config_.vehicles_per_xway) *
         static_cast<uint64_t>(config_.duration_sec);
}

void LinearRoadGenerator::AdvanceSecond() {
  const int sec = current_sec_++;
  const Micros ts = static_cast<Micros>(sec) * kMicrosPerSecond;
  for (size_t v = 0; v < vehicles_.size(); ++v) {
    Vehicle& veh = vehicles_[v];
    const int xway = static_cast<int>(v) / config_.vehicles_per_xway;
    // Breakdown model: a moving vehicle may stop; a stopped vehicle
    // restarts after stop_duration_sec.
    if (veh.stopped_until >= 0 && sec >= veh.stopped_until) {
      veh.stopped_until = -1;
      veh.speed = rng_.UniformDouble(config_.min_mph, config_.max_mph);
    } else if (veh.stopped_until < 0 && rng_.Bernoulli(config_.stop_prob)) {
      veh.stopped_until = sec + config_.stop_duration_sec;
      veh.speed = 0;
    }
    // Move (mph -> miles per second), wrapping around the expressway.
    veh.pos_miles += veh.speed / 3600.0;
    if (veh.pos_miles >= kLrSegments) veh.pos_miles -= kLrSegments;
    const int seg = static_cast<int>(veh.pos_miles);
    std::vector<Value> row(6);
    row[0] = Value::Ts(ts);
    row[1] = Value::I64(static_cast<int64_t>(v));
    row[2] = Value::F64(veh.speed);
    row[3] = Value::I64(xway);
    row[4] = Value::I64(veh.dir);
    row[5] = Value::I64(seg);
    pending_.push_back(std::move(row));
  }
}

bool LinearRoadGenerator::NextRow(std::vector<Value>* row) {
  while (pending_.empty()) {
    if (current_sec_ >= config_.duration_sec) return false;
    AdvanceSecond();
  }
  *row = std::move(pending_.front());
  pending_.pop_front();
  return true;
}

Receptor::RowGen LinearRoadGenerator::Gen() {
  auto self = std::make_shared<LinearRoadGenerator>(*this);
  return [self](std::vector<Value>* row) { return self->NextRow(row); };
}

Result<LrQueries> SetupLrQueries(Engine& engine,
                                 const std::string& stream_name,
                                 ExecMode mode, Emitter::Sink sink_stats,
                                 Emitter::Sink sink_accidents) {
  LrQueries out;
  Engine::ContinuousOptions stats_opts;
  stats_opts.mode = mode;
  stats_opts.name = "lr_segstats";
  stats_opts.sink = std::move(sink_stats);
  DC_ASSIGN_OR_RETURN(
      out.seg_stats,
      engine.SubmitContinuous(
          StrFormat("SELECT xway, dir, seg, avg(speed) AS avg_speed, "
                    "count(*) AS reports "
                    "FROM %s [RANGE 60 SECONDS SLIDE 10 SECONDS] "
                    "GROUP BY xway, dir, seg",
                    stream_name.c_str()),
          stats_opts));

  Engine::ContinuousOptions acc_opts;
  acc_opts.mode = mode;
  acc_opts.name = "lr_accidents";
  acc_opts.sink = std::move(sink_accidents);
  DC_ASSIGN_OR_RETURN(
      out.accidents,
      engine.SubmitContinuous(
          StrFormat("SELECT xway, dir, seg, count(*) AS stopped_reports "
                    "FROM %s [RANGE 30 SECONDS SLIDE 10 SECONDS] "
                    "WHERE speed = 0.0 "
                    "GROUP BY xway, dir, seg "
                    "HAVING count(*) >= %d "
                    "ORDER BY xway, dir, seg",
                    stream_name.c_str(), kLrAccidentReports),
          acc_opts));
  return out;
}

double LrToll(double avg_speed, int64_t report_count) {
  if (avg_speed >= 40.0 || report_count <= 50) return 0.0;
  const double excess = static_cast<double>(report_count - 50);
  return 0.02 * excess * excess;
}

std::map<int64_t, std::vector<std::tuple<int64_t, int64_t, int64_t>>>
ReferenceAccidents(const LrConfig& config, int window_sec, int slide_sec) {
  // Replay the identical simulation and count zero-speed reports per
  // (xway,dir,seg) per window directly.
  LinearRoadGenerator gen(config);
  struct Report {
    int64_t sec, xway, dir, seg;
  };
  std::vector<Report> stopped;
  std::vector<Value> row;
  int64_t max_sec = 0;
  while (gen.NextRow(&row)) {
    const int64_t sec = row[0].AsI64() / kMicrosPerSecond;
    max_sec = std::max(max_sec, sec);
    if (row[2].AsF64() == 0.0) {
      stopped.push_back(
          Report{sec, row[3].AsI64(), row[4].AsI64(), row[5].AsI64()});
    }
  }
  std::map<int64_t, std::vector<std::tuple<int64_t, int64_t, int64_t>>> out;
  for (int64_t boundary = slide_sec; boundary <= max_sec + window_sec;
       boundary += slide_sec) {
    std::map<std::tuple<int64_t, int64_t, int64_t>, int> counts;
    for (const Report& r : stopped) {
      if (r.sec >= boundary - window_sec && r.sec < boundary) {
        counts[{r.xway, r.dir, r.seg}]++;
      }
    }
    std::vector<std::tuple<int64_t, int64_t, int64_t>> segs;
    for (const auto& [key, n] : counts) {
      if (n >= kLrAccidentReports) segs.push_back(key);
    }
    if (!segs.empty()) out[boundary] = std::move(segs);
  }
  return out;
}

}  // namespace dc::workload
