#include "workload/generators.h"

#include <cmath>

#include "bat/hash.h"
#include "util/string_util.h"

namespace dc::workload {

namespace {

// Stateless per-row randomness: every field is a pure function of
// (seed, row index), so bulk batches and row generators agree and any
// sub-range can be regenerated independently.
inline uint64_t Mix(uint64_t seed, uint64_t row, uint64_t salt) {
  return HashU64(seed ^ HashU64(row + salt * 0x9e3779b97f4a7c15ULL));
}

inline double MixDouble(uint64_t seed, uint64_t row, uint64_t salt) {
  return static_cast<double>(Mix(seed, row, salt) >> 11) * 0x1.0p-53;
}

// Approximate standard normal from three uniforms (enough for workloads).
inline double MixNormal(uint64_t seed, uint64_t row, uint64_t salt) {
  double s = 0;
  for (uint64_t i = 0; i < 3; ++i) s += MixDouble(seed, row, salt * 3 + i);
  return (s - 1.5) * 2.0;
}

// Head-heavy rank sample as a pure function of the row: rank = n * u^k
// with k = 1 + 4*theta. Not an exact Zipf (ZipfGenerator is), but gives
// the controlled heavy-hitter skew the workloads need while staying a
// stateless function of (seed, row) so offset batches regenerate
// identically. theta=0 degenerates to uniform.
inline uint64_t MixZipf(uint64_t seed, uint64_t row, uint64_t salt,
                        uint64_t n, double theta) {
  const double u = MixDouble(seed, row, salt);
  if (theta <= 0.0) return static_cast<uint64_t>(u * static_cast<double>(n));
  const double v =
      std::pow(u, 1.0 + 4.0 * theta) * static_cast<double>(n);
  const uint64_t x = static_cast<uint64_t>(v);
  return x >= n ? n - 1 : x;
}

// Generic adaptor turning a per-row filler into a RowGen with a row limit.
template <typename FillRow>
Receptor::RowGen MakeGen(uint64_t rows, FillRow fill) {
  auto counter = std::make_shared<uint64_t>(0);
  return [rows, fill, counter](std::vector<Value>* row) {
    if (*counter >= rows) return false;
    fill((*counter)++, row);
    return true;
  };
}

}  // namespace

// --- Sensors ----------------------------------------------------------------

std::string SensorDdl(const std::string& stream_name) {
  return StrFormat("CREATE STREAM %s (ts timestamp, sensor int, temp double)",
                   stream_name.c_str());
}

static void FillSensor(const SensorConfig& c, uint64_t i,
                       std::vector<Value>* row) {
  row->resize(3);
  (*row)[0] = Value::Ts(c.start_ts + static_cast<Micros>(i) * c.ts_step);
  const uint64_t sensor = Mix(c.seed, i, 1) % c.num_sensors;
  (*row)[1] = Value::I64(static_cast<int64_t>(sensor));
  const double base =
      c.temp_mean + 3.0 * std::sin(static_cast<double>(sensor));
  (*row)[2] = Value::F64(base + c.temp_stddev * MixNormal(c.seed, i, 2));
}

Receptor::RowGen MakeSensorGen(SensorConfig config) {
  return MakeGen(config.rows, [config](uint64_t i, std::vector<Value>* row) {
    FillSensor(config, i, row);
  });
}

std::vector<BatPtr> SensorBatch(const SensorConfig& config, uint64_t offset,
                                uint64_t n) {
  auto ts = Bat::MakeEmpty(TypeId::kTs);
  auto sensor = Bat::MakeEmpty(TypeId::kI64);
  auto temp = Bat::MakeEmpty(TypeId::kF64);
  std::vector<Value> row;
  for (uint64_t i = offset; i < offset + n; ++i) {
    FillSensor(config, i, &row);
    ts->AppendValue(row[0]);
    sensor->AppendValue(row[1]);
    temp->AppendValue(row[2]);
  }
  return {ts, sensor, temp};
}

// --- Packets ----------------------------------------------------------------

std::string PacketDdl(const std::string& stream_name) {
  return StrFormat(
      "CREATE STREAM %s (ts timestamp, src int, dst int, port int, "
      "bytes int)",
      stream_name.c_str());
}

static void FillPacket(const PacketConfig& c, uint64_t i,
                       std::vector<Value>* row) {
  row->resize(5);
  (*row)[0] = Value::Ts(c.start_ts + static_cast<Micros>(i) * c.ts_step);
  (*row)[1] = Value::I64(static_cast<int64_t>(
      MixZipf(c.seed, i, 3, c.num_hosts, c.src_skew)));
  (*row)[2] = Value::I64(static_cast<int64_t>(Mix(c.seed, i, 4) % c.num_hosts));
  static constexpr int64_t kPorts[] = {80, 443, 22, 53, 8080, 25};
  (*row)[3] = Value::I64(kPorts[Mix(c.seed, i, 5) % 6]);
  (*row)[4] = Value::I64(64 + static_cast<int64_t>(Mix(c.seed, i, 6) % 1436));
}

Receptor::RowGen MakePacketGen(PacketConfig config) {
  return MakeGen(config.rows, [config](uint64_t i, std::vector<Value>* row) {
    FillPacket(config, i, row);
  });
}

std::vector<BatPtr> PacketBatch(const PacketConfig& config, uint64_t offset,
                                uint64_t n) {
  std::vector<BatPtr> cols{
      Bat::MakeEmpty(TypeId::kTs), Bat::MakeEmpty(TypeId::kI64),
      Bat::MakeEmpty(TypeId::kI64), Bat::MakeEmpty(TypeId::kI64),
      Bat::MakeEmpty(TypeId::kI64)};
  std::vector<Value> row;
  for (uint64_t i = offset; i < offset + n; ++i) {
    FillPacket(config, i, &row);
    for (size_t c = 0; c < cols.size(); ++c) cols[c]->AppendValue(row[c]);
  }
  return cols;
}

// --- Web log ----------------------------------------------------------------

std::string WebLogDdl(const std::string& stream_name) {
  return StrFormat(
      "CREATE STREAM %s (ts timestamp, usr int, url string, "
      "latency_ms double, status int)",
      stream_name.c_str());
}

static void FillWebLog(const WebLogConfig& c, uint64_t i,
                       std::vector<Value>* row) {
  row->resize(5);
  (*row)[0] = Value::Ts(c.start_ts + static_cast<Micros>(i) * c.ts_step);
  (*row)[1] = Value::I64(static_cast<int64_t>(Mix(c.seed, i, 7) % c.num_users));
  const uint64_t url = MixZipf(c.seed, i, 8, c.num_urls, c.url_skew);
  (*row)[2] = Value::Str(StrFormat("/page/%04llu",
                                   static_cast<unsigned long long>(url)));
  (*row)[3] = Value::F64(5.0 + 200.0 * MixDouble(c.seed, i, 9) *
                                   MixDouble(c.seed, i, 10));
  const bool error = MixDouble(c.seed, i, 11) < c.error_rate;
  (*row)[4] = Value::I64(error ? 500 : 200);
}

Receptor::RowGen MakeWebLogGen(WebLogConfig config) {
  return MakeGen(config.rows, [config](uint64_t i, std::vector<Value>* row) {
    FillWebLog(config, i, row);
  });
}

std::vector<BatPtr> WebLogBatch(const WebLogConfig& config, uint64_t offset,
                                uint64_t n) {
  std::vector<BatPtr> cols{
      Bat::MakeEmpty(TypeId::kTs), Bat::MakeEmpty(TypeId::kI64),
      Bat::MakeEmpty(TypeId::kStr), Bat::MakeEmpty(TypeId::kF64),
      Bat::MakeEmpty(TypeId::kI64)};
  std::vector<Value> row;
  for (uint64_t i = offset; i < offset + n; ++i) {
    FillWebLog(config, i, &row);
    for (size_t c = 0; c < cols.size(); ++c) cols[c]->AppendValue(row[c]);
  }
  return cols;
}

// --- Trades -----------------------------------------------------------------

std::string TradesDdl(const std::string& stream_name) {
  return StrFormat(
      "CREATE STREAM %s (ts timestamp, sym string, px double, qty int)",
      stream_name.c_str());
}

std::string TradeSymbol(uint64_t i) {
  return StrFormat("sym%02llu", static_cast<unsigned long long>(i));
}

static void FillTrade(const TradesConfig& c, uint64_t i,
                      std::vector<Value>* row) {
  row->resize(4);
  (*row)[0] = Value::Ts(c.start_ts + static_cast<Micros>(i) * c.ts_step);
  const uint64_t sym = Mix(c.seed, i, 12) % c.num_symbols;
  (*row)[1] = Value::Str(TradeSymbol(sym));
  // Stationary pseudo-walk: smooth per-symbol drift plus noise, a pure
  // function of the row index so offsets regenerate identically.
  const double drift =
      10.0 * std::sin(static_cast<double>(i) / 5000.0 +
                      static_cast<double>(sym));
  (*row)[2] = Value::F64(c.px_start + drift +
                         c.px_step * MixNormal(c.seed, i, 13));
  (*row)[3] = Value::I64(1 + static_cast<int64_t>(Mix(c.seed, i, 14) % 100));
}

Receptor::RowGen MakeTradesGen(TradesConfig config) {
  return MakeGen(config.rows, [config](uint64_t i, std::vector<Value>* row) {
    FillTrade(config, i, row);
  });
}

std::vector<BatPtr> TradesBatch(const TradesConfig& config, uint64_t offset,
                                uint64_t n) {
  std::vector<BatPtr> cols{
      Bat::MakeEmpty(TypeId::kTs), Bat::MakeEmpty(TypeId::kStr),
      Bat::MakeEmpty(TypeId::kF64), Bat::MakeEmpty(TypeId::kI64)};
  std::vector<Value> row;
  for (uint64_t i = offset; i < offset + n; ++i) {
    FillTrade(config, i, &row);
    for (size_t c = 0; c < cols.size(); ++c) cols[c]->AppendValue(row[c]);
  }
  return cols;
}

}  // namespace dc::workload
