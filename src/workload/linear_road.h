// Copyright 2026 The DataCell Authors.
//
// Linear Road (lite): the stream benchmark the paper cites as "easily met"
// by DataCell [16]. We implement the benchmark's core pipeline at reduced
// scale (DESIGN.md §2 substitutions):
//
//  * a deterministic traffic simulator generating vehicle position reports
//    (ts, vid, speed, xway, dir, seg) for `L` expressways,
//  * standing queries over the position stream: per-segment statistics
//    (avg speed / vehicle count, 60 s window sliding by 10 s) and accident
//    detection (>= kAccidentReports zero-speed reports in a 30 s window),
//  * the LRB toll formula applied to the segment statistics emissions,
//  * a response-time harness (bench_linear_road) checking the benchmark's
//    5-second notification deadline.

#ifndef DATACELL_WORKLOAD_LINEAR_ROAD_H_
#define DATACELL_WORKLOAD_LINEAR_ROAD_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/receptor.h"
#include "util/random.h"

namespace dc::workload {

/// Linear Road scale / simulation parameters.
struct LrConfig {
  int xways = 1;             // the benchmark's scale factor L
  int vehicles_per_xway = 200;
  int duration_sec = 120;    // simulated seconds
  double min_mph = 40;
  double max_mph = 100;
  double stop_prob = 0.002;  // per vehicle-second probability to break down
  int stop_duration_sec = 30;
  uint64_t seed = 7;
};

/// Number of segments per expressway direction (benchmark constant).
inline constexpr int kLrSegments = 100;
/// Zero-speed reports within the accident window that flag an accident.
inline constexpr int kLrAccidentReports = 4;

/// DDL for the position-report stream.
std::string LrPositionDdl(const std::string& stream_name);

/// Deterministic traffic simulator. Reports are emitted in event-time
/// order, one report per vehicle per simulated second.
class LinearRoadGenerator {
 public:
  explicit LinearRoadGenerator(LrConfig config);

  /// Produces the next position report; false when the simulation ends.
  /// Row layout: (ts TS, vid i64, speed f64, xway i64, dir i64, seg i64).
  bool NextRow(std::vector<Value>* row);

  /// Receptor adaptor around NextRow.
  Receptor::RowGen Gen();

  /// Total reports this configuration will produce.
  uint64_t TotalReports() const;

 private:
  struct Vehicle {
    double pos_miles = 0;   // position along the expressway
    double speed = 0;       // current mph
    int dir = 0;
    int stopped_until = -1;  // simulated second the breakdown clears
  };

  void AdvanceSecond();

  LrConfig config_;
  Rng rng_;
  std::vector<Vehicle> vehicles_;  // xway-major
  int current_sec_ = 0;
  std::deque<std::vector<Value>> pending_;
};

/// The standing queries of the benchmark.
struct LrQueries {
  int seg_stats = -1;  // per-segment avg speed + vehicle-report count
  int accidents = -1;  // segments with an accident in the last 30 s
};

/// Registers the position stream's standing queries on `engine`.
/// `sink_stats` / `sink_accidents` receive the emissions (may be null to
/// buffer for TakeResults).
Result<LrQueries> SetupLrQueries(Engine& engine,
                                 const std::string& stream_name,
                                 ExecMode mode,
                                 Emitter::Sink sink_stats = nullptr,
                                 Emitter::Sink sink_accidents = nullptr);

/// LRB toll formula (lite scaling): 0 when traffic is flowing (avg speed
/// >= 40 mph) or the segment is nearly empty, else quadratic in the excess
/// vehicle count.
double LrToll(double avg_speed, int64_t report_count);

/// Reference (offline, non-DataCell) computation of the accident segments
/// per window boundary — used by tests to validate the continuous queries.
/// Returns boundary_sec -> sorted list of (xway, dir, seg).
std::map<int64_t, std::vector<std::tuple<int64_t, int64_t, int64_t>>>
ReferenceAccidents(const LrConfig& config, int window_sec, int slide_sec);

}  // namespace dc::workload

#endif  // DATACELL_WORKLOAD_LINEAR_ROAD_H_
