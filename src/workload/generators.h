// Copyright 2026 The DataCell Authors.
//
// Deterministic workload generators for the experiments (DESIGN.md §3).
// Each generator produces rows for a fixed stream schema, either through a
// Receptor::RowGen (rate-controlled ingestion threads) or as bulk column
// batches (fast-path for benchmarks). All take explicit seeds.

#ifndef DATACELL_WORKLOAD_GENERATORS_H_
#define DATACELL_WORKLOAD_GENERATORS_H_

#include <memory>
#include <string>
#include <vector>

#include "bat/bat.h"
#include "core/receptor.h"
#include "util/random.h"

namespace dc::workload {

/// Sensor readings: (ts TS, sensor i64, temp f64).
/// `CREATE STREAM <name> (ts timestamp, sensor int, temp double)`.
struct SensorConfig {
  uint64_t num_sensors = 100;
  Micros start_ts = 0;
  Micros ts_step = 1000;       // event-time advance per row
  double temp_mean = 20.0;
  double temp_stddev = 5.0;
  uint64_t rows = UINT64_MAX;  // stop after this many rows
  uint64_t seed = 42;
};

/// SQL DDL for the sensor stream schema.
std::string SensorDdl(const std::string& stream_name);
Receptor::RowGen MakeSensorGen(SensorConfig config);
/// Bulk batch of `n` rows starting at row index `offset` (same sequence as
/// the row generator).
std::vector<BatPtr> SensorBatch(const SensorConfig& config, uint64_t offset,
                                uint64_t n);

/// Network packets: (ts TS, src i64, dst i64, port i64, bytes i64).
/// Sources are Zipf-skewed (heavy hitters), matching the paper's network
/// monitoring motivation.
struct PacketConfig {
  uint64_t num_hosts = 5000;
  double src_skew = 0.99;      // Zipf theta over sources
  Micros start_ts = 0;
  Micros ts_step = 100;
  uint64_t rows = UINT64_MAX;
  uint64_t seed = 42;
};

std::string PacketDdl(const std::string& stream_name);
Receptor::RowGen MakePacketGen(PacketConfig config);
std::vector<BatPtr> PacketBatch(const PacketConfig& config, uint64_t offset,
                                uint64_t n);

/// Web log clicks: (ts TS, user i64, url str, latency_ms f64, status i64).
/// URLs are Zipf-skewed over `num_urls` distinct pages.
struct WebLogConfig {
  uint64_t num_users = 10000;
  uint64_t num_urls = 500;
  double url_skew = 0.8;
  Micros start_ts = 0;
  Micros ts_step = 500;
  double error_rate = 0.02;    // fraction of 5xx responses
  uint64_t rows = UINT64_MAX;
  uint64_t seed = 42;
};

std::string WebLogDdl(const std::string& stream_name);
Receptor::RowGen MakeWebLogGen(WebLogConfig config);
std::vector<BatPtr> WebLogBatch(const WebLogConfig& config, uint64_t offset,
                                uint64_t n);

/// Trades: (ts TS, sym str, px f64, qty i64). Prices follow independent
/// random walks per symbol.
struct TradesConfig {
  uint64_t num_symbols = 20;
  Micros start_ts = 0;
  Micros ts_step = 200;
  double px_start = 100.0;
  double px_step = 0.5;
  uint64_t rows = UINT64_MAX;
  uint64_t seed = 42;
};

std::string TradesDdl(const std::string& stream_name);
Receptor::RowGen MakeTradesGen(TradesConfig config);
std::vector<BatPtr> TradesBatch(const TradesConfig& config, uint64_t offset,
                                uint64_t n);

/// Symbol name for trade generator symbol index i ("sym00".."symNN").
std::string TradeSymbol(uint64_t i);

}  // namespace dc::workload

#endif  // DATACELL_WORKLOAD_GENERATORS_H_
