// Copyright 2026 The DataCell Authors.
//
// Capability-annotated synchronization primitives. Every lock in the
// engine is one of these wrappers, which buys two machine-checked layers
// on top of the std primitives they wrap:
//
//  1. Clang Thread Safety Analysis (compile time). The wrappers carry
//     Clang's capability attributes, so `DC_GUARDED_BY(mu_)` fields and
//     `DC_REQUIRES(mu_)` helpers become *compile errors* when touched
//     without the lock. The attributes expand to nothing on non-Clang
//     compilers; the `thread-safety` CMake preset builds with
//     `-Werror=thread-safety` so the contracts are a permanent CI gate.
//
//  2. A lock-rank validator (run time, debug builds). Every Mutex and
//     SharedMutex is constructed with a LockRank from the documented
//     engine-wide hierarchy (docs/CONCURRENCY.md). A thread-local
//     held-lock stack checks that ranks are acquired in strictly
//     increasing order and aborts on the first out-of-order acquisition,
//     naming both ranks — turning a potential deadlock that TSan could
//     only catch on the losing schedule into a deterministic failure on
//     *any* schedule that performs the acquisition.
//
// The validator compiles in when DC_LOCK_VALIDATOR is 1 (default: on in
// debug builds, i.e. when NDEBUG is not defined; the asan/tsan presets
// force it on). The rank member is stored unconditionally so object
// layout does not depend on the macro (no ODR hazard when translation
// units disagree about DC_LOCK_VALIDATOR).
//
// Condition-variable waits: CondVar::Wait/WaitFor release and reacquire
// the wrapped mutex like std::condition_variable. The held-lock stack is
// deliberately left untouched across the wait — the blocked thread
// executes nothing, and after wakeup the lock is held again, so the
// stack is accurate at every point where code actually runs. Callers
// write explicit predicate loops (`while (!cond) cv.Wait(mu);`), which
// also keeps the predicate inside the TSA-annotated function instead of
// an unannotatable lambda.

#ifndef DATACELL_UTIL_SYNC_H_
#define DATACELL_UTIL_SYNC_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <shared_mutex>

// --------------------------------------------------------------------------
// Clang Thread Safety Analysis attribute macros (no-ops elsewhere).
// --------------------------------------------------------------------------
#if defined(__clang__)
#define DC_TSA_ATTR(x) __attribute__((x))
#else
#define DC_TSA_ATTR(x)
#endif

#define DC_CAPABILITY(x) DC_TSA_ATTR(capability(x))
#define DC_SCOPED_CAPABILITY DC_TSA_ATTR(scoped_lockable)
#define DC_GUARDED_BY(x) DC_TSA_ATTR(guarded_by(x))
#define DC_PT_GUARDED_BY(x) DC_TSA_ATTR(pt_guarded_by(x))
#define DC_ACQUIRED_BEFORE(...) DC_TSA_ATTR(acquired_before(__VA_ARGS__))
#define DC_ACQUIRED_AFTER(...) DC_TSA_ATTR(acquired_after(__VA_ARGS__))
#define DC_REQUIRES(...) DC_TSA_ATTR(requires_capability(__VA_ARGS__))
#define DC_REQUIRES_SHARED(...) \
  DC_TSA_ATTR(requires_shared_capability(__VA_ARGS__))
#define DC_ACQUIRE(...) DC_TSA_ATTR(acquire_capability(__VA_ARGS__))
#define DC_ACQUIRE_SHARED(...) \
  DC_TSA_ATTR(acquire_shared_capability(__VA_ARGS__))
#define DC_RELEASE(...) DC_TSA_ATTR(release_capability(__VA_ARGS__))
#define DC_RELEASE_SHARED(...) \
  DC_TSA_ATTR(release_shared_capability(__VA_ARGS__))
#define DC_TRY_ACQUIRE(...) DC_TSA_ATTR(try_acquire_capability(__VA_ARGS__))
#define DC_EXCLUDES(...) DC_TSA_ATTR(locks_excluded(__VA_ARGS__))
#define DC_ASSERT_CAPABILITY(x) DC_TSA_ATTR(assert_capability(x))
#define DC_RETURN_CAPABILITY(x) DC_TSA_ATTR(lock_returned(x))
#define DC_NO_THREAD_SAFETY_ANALYSIS DC_TSA_ATTR(no_thread_safety_analysis)

// --------------------------------------------------------------------------
// Lock-rank validator switch. Default: follow NDEBUG.
// --------------------------------------------------------------------------
#ifndef DC_LOCK_VALIDATOR
#ifdef NDEBUG
#define DC_LOCK_VALIDATOR 0
#else
#define DC_LOCK_VALIDATOR 1
#endif
#endif

namespace dc {

/// The engine-wide lock hierarchy. A thread may only acquire a lock whose
/// rank is STRICTLY GREATER than every lock it already holds; equal ranks
/// are forbidden (two locks of one rank are never held together, which
/// also catches recursive acquisition). The full table — which fields
/// each rank guards and why each edge exists — lives in
/// docs/CONCURRENCY.md; keep the two in sync when adding a rank.
///
/// Values are spaced so future subsystems (engine shards, WAL) can slot
/// between existing ranks without renumbering the world — the sharing
/// registry (25) and shared window nodes (65) landed exactly that way.
enum class LockRank : int {
  kMonitor = 10,        // monitor::AnalysisPane::mu_ (holds while sampling
                        // the whole engine, so it is the outermost rank)
  kDurability = 15,     // Engine::dur_mu_ (checkpoint serialization; a
                        // checkpoint drains emitters (20) and walks the
                        // sharing registry (25), engine (30), factory and
                        // basket locks underneath, so it sits just below
                        // kEmitterDrain)
  kEmitterDrain = 20,   // Emitter::drain_mu_ (sinks run under it and may
                        // re-enter Engine, so it precedes kEngine)
  kSharingRegistry = 25,  // Engine::share_mu_ (multi-query sharing registry;
                          // held across SubmitContinuous/RemoveContinuous
                          // bookkeeping, which takes kEngine and scheduler
                          // locks underneath)
  kEngine = 30,         // Engine::mu_ (registry of baskets/queries/receptors)
  kCatalog = 40,        // Catalog::mu_
  kReceptorPause = 50,  // Receptor::pause_mu_
  kFactory = 60,        // Factory::mu_ (Fire holds it across basket I/O and
                        // the output-basket pulse into the scheduler)
  kSharedNode = 65,     // SharedWindowNode::mu_ (a tail Fire holds kFactory,
                        // calls into its shared node, which reads baskets)
  kSchedRegistry = 70,  // Scheduler::reg_mu_ (reg -> shard -> idle)
  kSchedShard = 80,     // Scheduler::Shard::mu
  kSchedIdle = 90,      // Scheduler::idle_mu_
  kBasket = 100,        // Basket::mu_ (listeners run outside it)
  kWal = 105,           // storage::WalWriter::mu_ (per-basket log file;
                        // appends run under kBasket via the WAL hook)
  kTable = 110,         // Table::mu_
  kEmitterWake = 120,   // Emitter::wake_mu_ (taken from basket pulses)
  kCollector = 130,     // ResultCollector::mu_ (sink leaf)
  kLogging = 140,       // logging.cc serialization (engine leaf: any engine
                        // code may log while holding any lock below 140)
  kMetrics = 150,       // monitor::MetricsRegistry::mu_ (name -> metric map;
                        // Get* may be called under any engine lock)
  kMetricsHistogram = 160,  // monitor::HistogramMetric::mu_ (one histogram;
                            // Record runs on hot paths under engine locks)
  kTraceRegistry = 170,  // trace.cc buffer registry (thread registration
                         // and DumpJson; taken before per-buffer locks)
  kTraceBuffer = 180,    // trace.cc per-thread ring buffer (uncontended on
                         // the hot path; leaf-ranked so spans may close
                         // while holding any engine lock)
  kLeaf = 1000,         // misc user code: may be taken after any engine lock
};

inline const char* LockRankName(LockRank r) {
  switch (r) {
    case LockRank::kMonitor:
      return "monitor";
    case LockRank::kEmitterDrain:
      return "emitter-drain";
    case LockRank::kSharingRegistry:
      return "sharing-registry";
    case LockRank::kDurability:
      return "durability";
    case LockRank::kEngine:
      return "engine";
    case LockRank::kCatalog:
      return "catalog";
    case LockRank::kReceptorPause:
      return "receptor-pause";
    case LockRank::kFactory:
      return "factory";
    case LockRank::kSharedNode:
      return "shared-node";
    case LockRank::kSchedRegistry:
      return "sched-registry";
    case LockRank::kSchedShard:
      return "sched-shard";
    case LockRank::kSchedIdle:
      return "sched-idle";
    case LockRank::kBasket:
      return "basket";
    case LockRank::kWal:
      return "wal";
    case LockRank::kTable:
      return "table";
    case LockRank::kEmitterWake:
      return "emitter-wake";
    case LockRank::kCollector:
      return "collector";
    case LockRank::kLogging:
      return "logging";
    case LockRank::kMetrics:
      return "metrics";
    case LockRank::kMetricsHistogram:
      return "metrics-histogram";
    case LockRank::kTraceRegistry:
      return "trace-registry";
    case LockRank::kTraceBuffer:
      return "trace-buffer";
    case LockRank::kLeaf:
      return "leaf";
  }
  return "unknown";
}

namespace sync_internal {

#if DC_LOCK_VALIDATOR

/// Per-thread stack of held locks. Fixed-size so the validator never
/// allocates (it runs inside allocator-unfriendly contexts).
inline constexpr int kMaxHeldLocks = 64;

struct HeldLock {
  int rank = 0;
  const void* cap = nullptr;
  const char* name = nullptr;
};

inline thread_local HeldLock tls_held[kMaxHeldLocks];
inline thread_local int tls_depth = 0;

/// Rank check run BEFORE blocking on the underlying lock, so an
/// inversion aborts deterministically instead of deadlocking first.
inline void ValidateAcquire(LockRank rank, const char* name) {
  if (tls_depth > 0) {
    const HeldLock& top = tls_held[tls_depth - 1];
    if (top.rank >= static_cast<int>(rank)) {
      std::fprintf(
          stderr,
          "lock rank inversion: acquiring '%s' (rank %d) while holding '%s' "
          "(rank %d); locks must be acquired in strictly increasing rank "
          "order (docs/CONCURRENCY.md)\n",
          name, static_cast<int>(rank), top.name, top.rank);
      std::abort();
    }
  }
  if (tls_depth >= kMaxHeldLocks) {
    std::fprintf(stderr, "lock validator: held-lock stack overflow (%d)\n",
                 tls_depth);
    std::abort();
  }
}

inline void RecordAcquire(LockRank rank, const void* cap, const char* name) {
  tls_held[tls_depth] = HeldLock{static_cast<int>(rank), cap, name};
  ++tls_depth;
}

inline void RecordRelease(const void* cap) {
  // Releases are almost always LIFO (RAII guards); scan from the top to
  // tolerate the rare hand-over-hand pattern.
  for (int i = tls_depth - 1; i >= 0; --i) {
    if (tls_held[i].cap != cap) continue;
    for (int j = i; j + 1 < tls_depth; ++j) tls_held[j] = tls_held[j + 1];
    --tls_depth;
    return;
  }
}

/// Test hook: number of locks the calling thread currently holds.
inline int HeldLockDepthForTest() { return tls_depth; }

#define DC_SYNC_VALIDATE_ACQUIRE(rank, name) \
  ::dc::sync_internal::ValidateAcquire((rank), (name))
#define DC_SYNC_RECORD_ACQUIRE(rank, cap, name) \
  ::dc::sync_internal::RecordAcquire((rank), (cap), (name))
#define DC_SYNC_RECORD_RELEASE(cap) ::dc::sync_internal::RecordRelease((cap))

#else  // !DC_LOCK_VALIDATOR

#define DC_SYNC_VALIDATE_ACQUIRE(rank, name) ((void)0)
#define DC_SYNC_RECORD_ACQUIRE(rank, cap, name) ((void)0)
#define DC_SYNC_RECORD_RELEASE(cap) ((void)0)

#endif  // DC_LOCK_VALIDATOR

}  // namespace sync_internal

class CondVar;

/// Capability-annotated std::mutex with a lock rank.
class DC_CAPABILITY("mutex") Mutex {
 public:
  constexpr explicit Mutex(LockRank rank) : rank_(rank) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() DC_ACQUIRE() {
    DC_SYNC_VALIDATE_ACQUIRE(rank_, LockRankName(rank_));
    mu_.lock();
    DC_SYNC_RECORD_ACQUIRE(rank_, this, LockRankName(rank_));
  }

  bool TryLock() DC_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    DC_SYNC_RECORD_ACQUIRE(rank_, this, LockRankName(rank_));
    return true;
  }

  void Unlock() DC_RELEASE() {
    DC_SYNC_RECORD_RELEASE(this);
    mu_.unlock();
  }

  LockRank rank() const { return rank_; }

 private:
  friend class CondVar;
  std::mutex mu_;
  const LockRank rank_;
};

/// Capability-annotated std::shared_mutex with a lock rank. Shared and
/// exclusive acquisitions obey the same rank rules (the rank orders the
/// lock, not the mode).
class DC_CAPABILITY("shared_mutex") SharedMutex {
 public:
  explicit SharedMutex(LockRank rank) : rank_(rank) {}
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() DC_ACQUIRE() {
    DC_SYNC_VALIDATE_ACQUIRE(rank_, LockRankName(rank_));
    mu_.lock();
    DC_SYNC_RECORD_ACQUIRE(rank_, this, LockRankName(rank_));
  }

  void Unlock() DC_RELEASE() {
    DC_SYNC_RECORD_RELEASE(this);
    mu_.unlock();
  }

  void LockShared() DC_ACQUIRE_SHARED() {
    DC_SYNC_VALIDATE_ACQUIRE(rank_, LockRankName(rank_));
    mu_.lock_shared();
    DC_SYNC_RECORD_ACQUIRE(rank_, this, LockRankName(rank_));
  }

  void UnlockShared() DC_RELEASE_SHARED() {
    DC_SYNC_RECORD_RELEASE(this);
    mu_.unlock_shared();
  }

  LockRank rank() const { return rank_; }

 private:
  std::shared_mutex mu_;
  const LockRank rank_;
};

/// RAII exclusive lock over Mutex (std::lock_guard replacement).
class DC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) DC_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;
  ~MutexLock() DC_RELEASE() { mu_.Unlock(); }

 private:
  Mutex& mu_;
};

/// RAII shared (reader) lock over SharedMutex.
class DC_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) DC_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;
  ~ReaderLock() DC_RELEASE() { mu_.UnlockShared(); }

 private:
  SharedMutex& mu_;
};

/// RAII exclusive (writer) lock over SharedMutex.
class DC_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) DC_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;
  ~WriterLock() DC_RELEASE() { mu_.Unlock(); }

 private:
  SharedMutex& mu_;
};

/// Condition variable bound to Mutex. No predicate overloads on purpose:
/// callers write `while (!cond) cv.Wait(mu);` so the predicate stays
/// inside the TSA-annotated function (lambdas cannot carry DC_REQUIRES).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu` and blocks until notified (or spuriously
  /// woken); reacquires `mu` before returning.
  void Wait(Mutex& mu) DC_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  /// Timed Wait. Returns false if the wait timed out (a non-positive
  /// timeout returns false immediately). Callers re-check their predicate
  /// either way.
  bool WaitFor(Mutex& mu, int64_t timeout_micros) DC_REQUIRES(mu) {
    if (timeout_micros <= 0) return false;
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const std::cv_status st =
        cv_.wait_for(lock, std::chrono::microseconds(timeout_micros));
    lock.release();
    return st == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace dc

#endif  // DATACELL_UTIL_SYNC_H_
