#include "util/histogram.h"

#include <algorithm>
#include <bit>

#include "util/string_util.h"

namespace dc {

Histogram::Histogram()
    : buckets_(kNumBuckets, 0), count_(0), min_(0), max_(0), sum_(0) {}

void Histogram::Record(int64_t value) {
  if (value < 0) value = 0;
  const int b = BucketFor(value);
  buckets_[static_cast<size_t>(b)]++;
  if (count_ == 0 || value < min_) min_ = value;
  if (value > max_) max_ = value;
  count_++;
  sum_ += static_cast<double>(value);
}

void Histogram::Merge(const Histogram& other) {
  for (size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  if (other.count_ > 0) {
    if (count_ == 0 || other.min_ < min_) min_ = other.min_;
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  min_ = max_ = 0;
  sum_ = 0;
}

double Histogram::Mean() const {
  return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

int Histogram::BucketFor(int64_t value) {
  const uint64_t v = static_cast<uint64_t>(value);
  if (v < (1ULL << kSubBucketBits)) return static_cast<int>(v);
  const int msb = 63 - std::countl_zero(v);
  const int shift = msb - kSubBucketBits;
  const int sub = static_cast<int>((v >> shift) & ((1 << kSubBucketBits) - 1));
  return ((shift + 1) << kSubBucketBits) + sub;
}

int64_t Histogram::BucketUpperBound(int bucket) {
  if (bucket < (1 << kSubBucketBits)) return bucket;
  const int shift = (bucket >> kSubBucketBits) - 1;
  const int sub = bucket & ((1 << kSubBucketBits) - 1);
  const uint64_t base = 1ULL << (shift + kSubBucketBits);
  const uint64_t width = 1ULL << shift;
  return static_cast<int64_t>(base + width * static_cast<uint64_t>(sub + 1) - 1);
}

int64_t Histogram::Percentile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const uint64_t target =
      static_cast<uint64_t>(q * static_cast<double>(count_ - 1)) + 1;
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[static_cast<size_t>(i)];
    if (seen >= target) return std::min(BucketUpperBound(i), max_);
  }
  return max_;
}

uint64_t Histogram::CountLessEqual(int64_t value) const {
  if (value < 0) return 0;
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    if (BucketUpperBound(i) > value) break;
    seen += buckets_[static_cast<size_t>(i)];
  }
  return seen;
}

std::string Histogram::Summary() const {
  return StrFormat(
      "count=%llu mean=%.1f p50=%lld p95=%lld p99=%lld max=%lld",
      static_cast<unsigned long long>(count_), Mean(),
      static_cast<long long>(Percentile(0.50)),
      static_cast<long long>(Percentile(0.95)),
      static_cast<long long>(Percentile(0.99)), static_cast<long long>(max_));
}

}  // namespace dc
