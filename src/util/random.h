// Copyright 2026 The DataCell Authors.
//
// Deterministic pseudo-random generators for workload synthesis.
// xoshiro256** core plus uniform/Zipfian helpers. All workload generators
// take explicit seeds so every experiment is reproducible.

#ifndef DATACELL_UTIL_RANDOM_H_
#define DATACELL_UTIL_RANDOM_H_

#include <cstdint>
#include <vector>

namespace dc {

/// xoshiro256** PRNG. Not thread-safe; use one instance per thread.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Approximately normal sample (Irwin–Hall of 12 uniforms).
  double Normal(double mean, double stddev);

  /// Bernoulli with probability p of true.
  bool Bernoulli(double p) { return UniformDouble() < p; }

 private:
  uint64_t s_[4];
};

/// Zipf-distributed integers over [0, n), skew `theta` in (0,1)∪(1,∞);
/// theta=0 degenerates to uniform. Precomputes the harmonic table once.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta, uint64_t seed = 42);

  /// Next Zipfian sample in [0, n).
  uint64_t Next();

  uint64_t n() const { return n_; }

 private:
  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  Rng rng_;
};

}  // namespace dc

#endif  // DATACELL_UTIL_RANDOM_H_
