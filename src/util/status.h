// Copyright 2026 The DataCell Authors.
//
// Status: the error-handling backbone of the library. Library code never
// throws on expected failure paths; every fallible public function returns a
// Status (or a Result<T>, see result.h). The idiom follows RocksDB/Arrow.

#ifndef DATACELL_UTIL_STATUS_H_
#define DATACELL_UTIL_STATUS_H_

#include <cassert>
#include <string>
#include <utility>

namespace dc {

/// Machine-readable error category carried by a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kNotImplemented,
  kTypeError,
  kParseError,
  kInternal,
  kAborted,
  kResourceExhausted,
};

/// Returns a stable human-readable name for a status code ("InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// A Status is either OK or carries an error code plus a message.
///
/// Status is cheap to copy in the OK case (no allocation) and small
/// (two words). Functions that can fail return `Status`; functions that
/// produce a value on success return `Result<T>`.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsParseError() const { return code_ == StatusCode::kParseError; }
  bool IsTypeError() const { return code_ == StatusCode::kTypeError; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

}  // namespace dc

/// Propagates a non-OK Status to the caller.
#define DC_RETURN_NOT_OK(expr)                 \
  do {                                         \
    ::dc::Status _dc_status = (expr);          \
    if (!_dc_status.ok()) return _dc_status;   \
  } while (false)

/// Aborts the process if `expr` is not OK. For tests and startup code only.
#define DC_CHECK_OK(expr)                                              \
  do {                                                                 \
    ::dc::Status _dc_status = (expr);                                  \
    if (!_dc_status.ok()) {                                            \
      fprintf(stderr, "DC_CHECK_OK failed at %s:%d: %s\n", __FILE__,   \
              __LINE__, _dc_status.ToString().c_str());                \
      abort();                                                         \
    }                                                                  \
  } while (false)

#endif  // DATACELL_UTIL_STATUS_H_
