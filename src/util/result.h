// Copyright 2026 The DataCell Authors.
//
// Result<T>: value-or-Status, the return type of fallible value-producing
// functions (Arrow's arrow::Result idiom).

#ifndef DATACELL_UTIL_RESULT_H_
#define DATACELL_UTIL_RESULT_H_

#include <cstdio>
#include <cstdlib>
#include <utility>
#include <variant>

#include "util/status.h"

namespace dc {

/// Holds either a value of type T or a non-OK Status explaining why the
/// value could not be produced.
///
/// Typical use:
///
///   Result<Bat> MakeBat(...);
///   DC_ASSIGN_OR_RETURN(Bat b, MakeBat(...));
template <typename T>
class Result {
 public:
  /// Implicit from value (success).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error Status. Aborts if `status` is OK — an OK Result
  /// must carry a value.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    if (std::get<Status>(repr_).ok()) {
      fprintf(stderr, "Result constructed from OK status\n");
      abort();
    }
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// Returns the Status: OK if a value is held.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  /// Access the value; undefined if !ok().
  const T& value() const& { return std::get<T>(repr_); }
  T& value() & { return std::get<T>(repr_); }
  T&& value() && { return std::get<T>(std::move(repr_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or aborts with the error. For tests/examples.
  T ValueOrDie() && {
    if (!ok()) {
      fprintf(stderr, "Result::ValueOrDie on error: %s\n",
              status().ToString().c_str());
      abort();
    }
    return std::get<T>(std::move(repr_));
  }

 private:
  std::variant<T, Status> repr_;
};

}  // namespace dc

#define DC_CONCAT_IMPL_(x, y) x##y
#define DC_CONCAT_(x, y) DC_CONCAT_IMPL_(x, y)

/// Evaluates `rexpr` (a Result<T>); on error returns the Status, otherwise
/// moves the value into `lhs` (which may include a type declaration).
#define DC_ASSIGN_OR_RETURN(lhs, rexpr)                            \
  DC_ASSIGN_OR_RETURN_IMPL_(DC_CONCAT_(_dc_result_, __LINE__), lhs, rexpr)

#define DC_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                              \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()

#endif  // DATACELL_UTIL_RESULT_H_
