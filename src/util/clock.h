// Copyright 2026 The DataCell Authors.
//
// Time utilities. Event timestamps throughout DataCell are microseconds
// since the UNIX epoch, stored as int64_t (logical type TS in the kernel).
//
// The scheduler and window logic depend on a Clock abstraction so that tests
// can drive time deterministically (ManualClock) while production uses the
// system steady clock.

#ifndef DATACELL_UTIL_CLOCK_H_
#define DATACELL_UTIL_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

namespace dc {

/// Microseconds since the UNIX epoch (event time) or since an arbitrary
/// steady origin (processing time); the context makes it unambiguous.
using Micros = int64_t;

constexpr Micros kMicrosPerMilli = 1000;
constexpr Micros kMicrosPerSecond = 1000 * 1000;
constexpr Micros kMicrosPerMinute = 60 * kMicrosPerSecond;

/// Wall-clock now (system clock), µs since epoch.
Micros WallMicros();

/// Monotonic now, µs since an unspecified steady origin.
Micros SteadyMicros();

/// Formats a duration in µs as a human-readable string ("1.25 ms").
std::string FormatDuration(Micros us);

/// Clock abstraction used by the scheduler/receptors/window logic.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Current time in µs. Monotonic for a given Clock instance.
  virtual Micros Now() const = 0;
};

/// Production clock: monotonic system clock.
class SteadyClock : public Clock {
 public:
  Micros Now() const override { return SteadyMicros(); }
  /// Shared process-wide instance.
  static SteadyClock* Instance();
};

/// Deterministic clock for tests: time advances only via Advance()/Set().
class ManualClock : public Clock {
 public:
  explicit ManualClock(Micros start = 0) : now_(start) {}
  Micros Now() const override { return now_.load(); }
  void Advance(Micros delta) { now_.fetch_add(delta); }
  void Set(Micros t) { now_.store(t); }

 private:
  std::atomic<Micros> now_;
};

/// Scoped stopwatch measuring elapsed µs on the steady clock.
class Stopwatch {
 public:
  Stopwatch() : start_(SteadyMicros()) {}
  Micros ElapsedMicros() const { return SteadyMicros() - start_; }
  void Reset() { start_ = SteadyMicros(); }

 private:
  Micros start_;
};

}  // namespace dc

#endif  // DATACELL_UTIL_CLOCK_H_
