// Copyright 2026 The DataCell Authors.
//
// CSV parsing/formatting used by receptors (ingesting event files) and
// emitters (writing result streams). Supports RFC-4180 style quoting.

#ifndef DATACELL_UTIL_CSV_H_
#define DATACELL_UTIL_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace dc {

/// Parses one CSV record. Fields may be double-quoted; embedded quotes are
/// doubled (""). Returns ParseError on unterminated quotes.
Result<std::vector<std::string>> ParseCsvLine(std::string_view line,
                                              char sep = ',');

/// Formats fields as one CSV record (no trailing newline), quoting fields
/// that contain the separator, quotes or newlines.
std::string FormatCsvLine(const std::vector<std::string>& fields,
                          char sep = ',');

}  // namespace dc

#endif  // DATACELL_UTIL_CSV_H_
