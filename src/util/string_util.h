// Copyright 2026 The DataCell Authors.
//
// Small string helpers shared across the codebase.

#ifndef DATACELL_UTIL_STRING_UTIL_H_
#define DATACELL_UTIL_STRING_UTIL_H_

#include <cstdarg>
#include <string>
#include <string_view>
#include <vector>

namespace dc {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> StrSplit(std::string_view s, char sep);

/// Joins `parts` with `sep`.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StrTrim(std::string_view s);

/// ASCII lower-casing (SQL keywords are case-insensitive).
std::string ToLower(std::string_view s);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Renders a double the way the result printer does: integral values
/// without trailing zeros, otherwise %.6g.
std::string FormatDouble(double v);

}  // namespace dc

#endif  // DATACELL_UTIL_STRING_UTIL_H_
