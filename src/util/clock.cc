#include "util/clock.h"

#include "util/string_util.h"

namespace dc {

Micros WallMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

Micros SteadyMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string FormatDuration(Micros us) {
  if (us < 1000) return StrFormat("%lld us", static_cast<long long>(us));
  if (us < kMicrosPerSecond) return StrFormat("%.2f ms", us / 1000.0);
  return StrFormat("%.3f s", us / static_cast<double>(kMicrosPerSecond));
}

SteadyClock* SteadyClock::Instance() {
  static SteadyClock instance;
  return &instance;
}

}  // namespace dc
