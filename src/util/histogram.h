// Copyright 2026 The DataCell Authors.
//
// Log-bucketed latency histogram (HdrHistogram-lite). Used by the bench
// drivers and the monitor's analysis pane to report latency percentiles
// without storing every sample.

#ifndef DATACELL_UTIL_HISTOGRAM_H_
#define DATACELL_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace dc {

/// Records non-negative int64 samples (typically µs) into ~92 logarithmic
/// buckets (sub-buckets of 8 per power of two). Relative quantile error is
/// bounded by the bucket width (~12.5%). Not thread-safe; aggregate with
/// Merge().
class Histogram {
 public:
  Histogram();

  void Record(int64_t value);
  void Merge(const Histogram& other);
  void Reset();

  uint64_t count() const { return count_; }
  int64_t min() const { return count_ ? min_ : 0; }
  int64_t max() const { return max_; }
  double Mean() const;

  /// Quantile in [0,1]; returns an upper bound of the bucket containing it.
  int64_t Percentile(double q) const;

  /// Samples whose bucket lies entirely at or below `value` — an
  /// underestimate by at most one bucket (~12.5%). Used for deadline-miss
  /// counting (misses = count() - CountLessEqual(deadline)).
  uint64_t CountLessEqual(int64_t value) const;

  /// "count=... mean=... p50=... p95=... p99=... max=..."
  std::string Summary() const;

 private:
  static constexpr int kSubBucketBits = 3;  // 8 sub-buckets per octave
  static constexpr int kNumBuckets = (64 - kSubBucketBits) << kSubBucketBits;

  static int BucketFor(int64_t value);
  static int64_t BucketUpperBound(int bucket);

  std::vector<uint64_t> buckets_;
  uint64_t count_;
  int64_t min_;
  int64_t max_;
  double sum_;
};

}  // namespace dc

#endif  // DATACELL_UTIL_HISTOGRAM_H_
