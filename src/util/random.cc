#include "util/random.h"

#include <cmath>

namespace dc {

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64 for seeding.
uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(Next() % range);
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + UniformDouble() * (hi - lo);
}

double Rng::Normal(double mean, double stddev) {
  double sum = 0;
  for (int i = 0; i < 12; ++i) sum += UniformDouble();
  return mean + (sum - 6.0) * stddev;
}

ZipfGenerator::ZipfGenerator(uint64_t n, double theta, uint64_t seed)
    : n_(n), theta_(theta), rng_(seed) {
  double zetan = 0;
  for (uint64_t i = 1; i <= n_; ++i) zetan += 1.0 / std::pow(static_cast<double>(i), theta_);
  zetan_ = zetan;
  double zeta2 = 0;
  for (uint64_t i = 1; i <= 2 && i <= n_; ++i) {
    zeta2 += 1.0 / std::pow(static_cast<double>(i), theta_);
  }
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2 / zetan_);
}

uint64_t ZipfGenerator::Next() {
  if (theta_ == 0.0) return rng_.Next() % n_;
  const double u = rng_.UniformDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const uint64_t v = static_cast<uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return v >= n_ ? n_ - 1 : v;
}

}  // namespace dc
