#include "util/csv.h"

namespace dc {

Result<std::vector<std::string>> ParseCsvLine(std::string_view line,
                                              char sep) {
  std::vector<std::string> fields;
  std::string cur;
  size_t i = 0;
  const size_t n = line.size();
  while (true) {
    cur.clear();
    if (i < n && line[i] == '"') {
      ++i;
      bool closed = false;
      while (i < n) {
        if (line[i] == '"') {
          if (i + 1 < n && line[i + 1] == '"') {
            cur.push_back('"');
            i += 2;
          } else {
            ++i;
            closed = true;
            break;
          }
        } else {
          cur.push_back(line[i++]);
        }
      }
      if (!closed) {
        return Status::ParseError("unterminated quoted CSV field");
      }
    } else {
      while (i < n && line[i] != sep) cur.push_back(line[i++]);
    }
    fields.push_back(cur);
    if (i >= n) break;
    if (line[i] != sep) {
      return Status::ParseError("unexpected character after quoted field");
    }
    ++i;  // skip separator
    if (i == n) {  // trailing separator -> final empty field
      fields.emplace_back();
      break;
    }
  }
  return fields;
}

std::string FormatCsvLine(const std::vector<std::string>& fields, char sep) {
  std::string out;
  for (size_t f = 0; f < fields.size(); ++f) {
    if (f > 0) out.push_back(sep);
    const std::string& field = fields[f];
    const bool needs_quote =
        field.find(sep) != std::string::npos ||
        field.find('"') != std::string::npos ||
        field.find('\n') != std::string::npos;
    if (!needs_quote) {
      out += field;
      continue;
    }
    out.push_back('"');
    for (char c : field) {
      if (c == '"') out.push_back('"');
      out.push_back(c);
    }
    out.push_back('"');
  }
  return out;
}

}  // namespace dc
