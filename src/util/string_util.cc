#include "util/string_util.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace dc {

std::string StrFormat(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int n = vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

std::vector<std::string> StrSplit(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view StrTrim(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string FormatDouble(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    return StrFormat("%.0f", v);
  }
  return StrFormat("%.6g", v);
}

}  // namespace dc
