#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>

#include "util/sync.h"

namespace dc {

namespace {
std::atomic<LogLevel> g_min_level{LogLevel::kWarn};
// kLogging is the absolute leaf rank: log statements may run while any
// engine lock is held, so this mutex must never precede another.
constinit Mutex g_log_mutex{LockRank::kLogging};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_min_level.store(level); }
LogLevel GetLogLevel() { return g_min_level.load(); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  const char* base = strrchr(file_, '/');
  base = base ? base + 1 : file_;
  MutexLock lock(g_log_mutex);
  fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level_), base, line_,
          stream_.str().c_str());
}

}  // namespace internal
}  // namespace dc
