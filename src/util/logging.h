// Copyright 2026 The DataCell Authors.
//
// Minimal thread-safe leveled logger. Stream style:
//
//   DC_LOG(kInfo) << "factory " << name << " fired";
//
// The global minimum level defaults to kWarn so that library users are not
// spammed; the demo binaries raise it.

#ifndef DATACELL_UTIL_LOGGING_H_
#define DATACELL_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace dc {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace dc

#define DC_LOG(level)                                                  \
  if (::dc::LogLevel::level < ::dc::GetLogLevel()) {                   \
  } else                                                               \
    ::dc::internal::LogMessage(::dc::LogLevel::level, __FILE__, __LINE__) \
        .stream()

#endif  // DATACELL_UTIL_LOGGING_H_
