// Copyright 2026 The DataCell Authors.
//
// Recursive-descent parser for the DataCell SQL subset:
//
//   SELECT items FROM rel [window] [JOIN rel [window] ON a = b | , rel]
//     [WHERE pred] [GROUP BY cols] [HAVING pred]
//     [ORDER BY expr [ASC|DESC], ...] [LIMIT n]
//   CREATE TABLE  name (col type, ...)
//   CREATE STREAM name (col type, ...)
//   INSERT INTO name VALUES (lit, ...), (...)
//
// Window clause (DataCell extension, on streams in FROM):
//   [RANGE n unit SLIDE m unit]   unit: milliseconds|seconds|minutes|hours
//   [ROWS n SLIDE m]
// SLIDE omitted => tumbling window (slide = size).

#ifndef DATACELL_SQL_PARSER_H_
#define DATACELL_SQL_PARSER_H_

#include <string_view>
#include <vector>

#include "sql/ast.h"
#include "util/result.h"

namespace dc::sql {

/// Parses a single statement (a trailing ';' is allowed).
Result<Statement> ParseStatement(std::string_view input);

/// Parses a ';'-separated script.
Result<std::vector<Statement>> ParseScript(std::string_view input);

}  // namespace dc::sql

#endif  // DATACELL_SQL_PARSER_H_
