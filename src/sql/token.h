// Copyright 2026 The DataCell Authors.
//
// Token stream for the SQL subset (DESIGN.md §2/S4), including the DataCell
// window extension tokens ("[ RANGE 60 SECONDS SLIDE 10 SECONDS ]").

#ifndef DATACELL_SQL_TOKEN_H_
#define DATACELL_SQL_TOKEN_H_

#include <string>
#include <vector>

#include "util/result.h"

namespace dc::sql {

enum class TokenType {
  kIdent,       // foo (lower-cased), keywords resolved by the parser
  kInt,         // 123
  kFloat,       // 1.5
  kString,      // 'abc'
  kLParen,      // (
  kRParen,      // )
  kLBracket,    // [
  kRBracket,    // ]
  kComma,       // ,
  kDot,         // .
  kStar,        // *
  kPlus,        // +
  kMinus,       // -
  kSlash,       // /
  kPercent,     // %
  kEq,          // =
  kNe,          // <> or !=
  kLt,          // <
  kLe,          // <=
  kGt,          // >
  kGe,          // >=
  kSemicolon,   // ;
  kEnd,         // end of input
};

struct Token {
  TokenType type;
  std::string text;   // identifier (lower-cased) or literal spelling
  int64_t int_val = 0;
  double float_val = 0;
  size_t pos = 0;     // byte offset, for error messages
};

/// Tokenizes `input`. Identifiers are lower-cased (SQL case-insensitivity);
/// string literals keep their exact contents ('' escapes a quote).
Result<std::vector<Token>> Lex(std::string_view input);

}  // namespace dc::sql

#endif  // DATACELL_SQL_TOKEN_H_
