#include "sql/parser.h"

#include "sql/token.h"
#include "util/string_util.h"

namespace dc::sql {

namespace {

/// Keywords that terminate an expression context.
bool IsKeyword(const Token& t, const char* kw) {
  return t.type == TokenType::kIdent && t.text == kw;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Statement> ParseOne() {
    DC_ASSIGN_OR_RETURN(Statement stmt, ParseStatementInner());
    if (Check(TokenType::kSemicolon)) Advance();
    if (!Check(TokenType::kEnd)) {
      return Err("trailing input after statement");
    }
    return stmt;
  }

  Result<std::vector<Statement>> ParseAll() {
    std::vector<Statement> out;
    while (!Check(TokenType::kEnd)) {
      if (Check(TokenType::kSemicolon)) {
        Advance();
        continue;
      }
      DC_ASSIGN_OR_RETURN(Statement stmt, ParseStatementInner());
      out.push_back(std::move(stmt));
      if (Check(TokenType::kSemicolon)) {
        Advance();
      } else if (!Check(TokenType::kEnd)) {
        return Err("expected ';' between statements");
      }
    }
    return out;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    const size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool Check(TokenType t) const { return Peek().type == t; }
  bool CheckKw(const char* kw) const { return IsKeyword(Peek(), kw); }
  bool MatchKw(const char* kw) {
    if (CheckKw(kw)) {
      Advance();
      return true;
    }
    return false;
  }
  bool Match(TokenType t) {
    if (Check(t)) {
      Advance();
      return true;
    }
    return false;
  }
  Status Err(const std::string& msg) const {
    return Status::ParseError(StrFormat(
        "%s (near offset %zu, got '%s')", msg.c_str(), Peek().pos,
        Peek().type == TokenType::kEnd ? "<end>" : Peek().text.c_str()));
  }
  Status Expect(TokenType t, const char* what) {
    if (!Match(t)) return Err(StrFormat("expected %s", what));
    return Status::OK();
  }
  Result<std::string> ExpectIdent(const char* what) {
    if (!Check(TokenType::kIdent)) return Err(StrFormat("expected %s", what));
    return Advance().text;
  }

  Result<Statement> ParseStatementInner() {
    if (CheckKw("select")) {
      DC_ASSIGN_OR_RETURN(SelectStmt s, ParseSelect());
      return Statement(std::move(s));
    }
    if (CheckKw("create")) {
      DC_ASSIGN_OR_RETURN(CreateStmt s, ParseCreate());
      return Statement(std::move(s));
    }
    if (CheckKw("insert")) {
      DC_ASSIGN_OR_RETURN(InsertStmt s, ParseInsert());
      return Statement(std::move(s));
    }
    return Err("expected SELECT, CREATE or INSERT");
  }

  Result<CreateStmt> ParseCreate() {
    Advance();  // create
    CreateStmt stmt;
    if (MatchKw("stream")) {
      stmt.is_stream = true;
    } else if (MatchKw("table")) {
      stmt.is_stream = false;
    } else {
      return Err("expected TABLE or STREAM after CREATE");
    }
    DC_ASSIGN_OR_RETURN(stmt.name, ExpectIdent("relation name"));
    DC_RETURN_NOT_OK(Expect(TokenType::kLParen, "'('"));
    while (true) {
      DC_ASSIGN_OR_RETURN(std::string col, ExpectIdent("column name"));
      DC_ASSIGN_OR_RETURN(std::string tname, ExpectIdent("type name"));
      DC_ASSIGN_OR_RETURN(TypeId type, TypeFromName(tname));
      stmt.columns.emplace_back(std::move(col), type);
      if (Match(TokenType::kComma)) continue;
      break;
    }
    DC_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
    return stmt;
  }

  Result<InsertStmt> ParseInsert() {
    Advance();  // insert
    if (!MatchKw("into")) return Err("expected INTO after INSERT");
    InsertStmt stmt;
    DC_ASSIGN_OR_RETURN(stmt.table, ExpectIdent("table name"));
    if (!MatchKw("values")) return Err("expected VALUES");
    while (true) {
      DC_RETURN_NOT_OK(Expect(TokenType::kLParen, "'('"));
      std::vector<Value> row;
      while (true) {
        DC_ASSIGN_OR_RETURN(Value v, ParseLiteralValue());
        row.push_back(std::move(v));
        if (Match(TokenType::kComma)) continue;
        break;
      }
      DC_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
      stmt.rows.push_back(std::move(row));
      if (Match(TokenType::kComma)) continue;
      break;
    }
    return stmt;
  }

  Result<Value> ParseLiteralValue() {
    bool neg = false;
    if (Match(TokenType::kMinus)) neg = true;
    const Token& t = Peek();
    switch (t.type) {
      case TokenType::kInt:
        Advance();
        return Value::I64(neg ? -t.int_val : t.int_val);
      case TokenType::kFloat:
        Advance();
        return Value::F64(neg ? -t.float_val : t.float_val);
      case TokenType::kString:
        if (neg) return Err("cannot negate a string literal");
        Advance();
        return Value::Str(t.text);
      case TokenType::kIdent:
        if (t.text == "true" || t.text == "false") {
          const bool b = t.text == "true";
          if (neg) return Err("cannot negate a boolean literal");
          Advance();
          return Value::Bool(b);
        }
        [[fallthrough]];
      default:
        return Err("expected literal value");
    }
  }

  Result<SelectStmt> ParseSelect() {
    Advance();  // select
    SelectStmt stmt;
    // Select list.
    while (true) {
      SelectItem item;
      if (Check(TokenType::kStar)) {
        Advance();
        item.star = true;
      } else {
        DC_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (MatchKw("as")) {
          DC_ASSIGN_OR_RETURN(item.alias, ExpectIdent("alias"));
        }
      }
      stmt.items.push_back(std::move(item));
      if (Match(TokenType::kComma)) continue;
      break;
    }
    if (!MatchKw("from")) return Err("expected FROM");
    DC_ASSIGN_OR_RETURN(FromItem first, ParseFromItem());
    stmt.from.push_back(std::move(first));
    // JOIN ... ON ... or comma-separated relations.
    std::vector<ExprPtr> join_conds;
    while (true) {
      if (Match(TokenType::kComma) || MatchKw("join")) {
        const bool explicit_join = IsKeyword(tokens_[pos_ - 1], "join");
        DC_ASSIGN_OR_RETURN(FromItem rel, ParseFromItem());
        stmt.from.push_back(std::move(rel));
        if (explicit_join) {
          if (!MatchKw("on")) return Err("expected ON after JOIN");
          DC_ASSIGN_OR_RETURN(ExprPtr cond, ParseExpr());
          join_conds.push_back(std::move(cond));
        }
        continue;
      }
      if (MatchKw("inner")) {
        if (!MatchKw("join")) return Err("expected JOIN after INNER");
        DC_ASSIGN_OR_RETURN(FromItem rel, ParseFromItem());
        stmt.from.push_back(std::move(rel));
        if (!MatchKw("on")) return Err("expected ON after JOIN");
        DC_ASSIGN_OR_RETURN(ExprPtr cond, ParseExpr());
        join_conds.push_back(std::move(cond));
        continue;
      }
      break;
    }
    if (MatchKw("where")) {
      DC_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
    }
    // Fold JOIN..ON conditions into WHERE (the binder extracts join keys).
    for (ExprPtr& cond : join_conds) {
      stmt.where = stmt.where
                       ? MakeLogical(ExprKind::kAnd, stmt.where, cond)
                       : cond;
    }
    if (MatchKw("group")) {
      if (!MatchKw("by")) return Err("expected BY after GROUP");
      while (true) {
        DC_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        stmt.group_by.push_back(std::move(e));
        if (Match(TokenType::kComma)) continue;
        break;
      }
    }
    if (MatchKw("having")) {
      DC_ASSIGN_OR_RETURN(stmt.having, ParseExpr());
    }
    if (MatchKw("order")) {
      if (!MatchKw("by")) return Err("expected BY after ORDER");
      while (true) {
        OrderItem item;
        DC_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (MatchKw("desc")) {
          item.ascending = false;
        } else {
          MatchKw("asc");
        }
        stmt.order_by.push_back(std::move(item));
        if (Match(TokenType::kComma)) continue;
        break;
      }
    }
    if (MatchKw("limit")) {
      if (!Check(TokenType::kInt)) return Err("expected integer after LIMIT");
      stmt.limit = Advance().int_val;
      if (stmt.limit < 0) return Err("LIMIT must be non-negative");
    }
    return stmt;
  }

  Result<FromItem> ParseFromItem() {
    FromItem item;
    DC_ASSIGN_OR_RETURN(item.name, ExpectIdent("relation name"));
    item.alias = item.name;
    if (Check(TokenType::kLBracket)) {
      DC_ASSIGN_OR_RETURN(item.window, ParseWindow());
    }
    if (MatchKw("as")) {
      DC_ASSIGN_OR_RETURN(item.alias, ExpectIdent("alias"));
    } else if (Check(TokenType::kIdent) && !CheckKw("join") &&
               !CheckKw("inner") && !CheckKw("where") && !CheckKw("group") &&
               !CheckKw("having") && !CheckKw("order") && !CheckKw("limit") &&
               !CheckKw("on")) {
      item.alias = Advance().text;
    }
    return item;
  }

  Result<int64_t> ParseDurationMicros() {
    if (!Check(TokenType::kInt)) return Err("expected window size integer");
    const int64_t n = Advance().int_val;
    DC_ASSIGN_OR_RETURN(std::string unit, ExpectIdent("time unit"));
    if (unit == "microsecond" || unit == "microseconds") return n;
    if (unit == "millisecond" || unit == "milliseconds") {
      return n * kMicrosPerMilli;
    }
    if (unit == "second" || unit == "seconds") return n * kMicrosPerSecond;
    if (unit == "minute" || unit == "minutes") return n * kMicrosPerMinute;
    if (unit == "hour" || unit == "hours") return n * 60 * kMicrosPerMinute;
    return Err(StrFormat("unknown time unit '%s'", unit.c_str()));
  }

  Result<WindowClause> ParseWindow() {
    DC_RETURN_NOT_OK(Expect(TokenType::kLBracket, "'['"));
    WindowClause w;
    if (MatchKw("rows")) {
      w.rows = true;
      if (!Check(TokenType::kInt)) return Err("expected row count");
      w.size = Advance().int_val;
      if (MatchKw("slide")) {
        if (!Check(TokenType::kInt)) return Err("expected slide row count");
        w.slide = Advance().int_val;
      } else {
        w.slide = w.size;  // tumbling
      }
    } else if (MatchKw("range")) {
      w.rows = false;
      DC_ASSIGN_OR_RETURN(w.size, ParseDurationMicros());
      if (MatchKw("slide")) {
        DC_ASSIGN_OR_RETURN(w.slide, ParseDurationMicros());
      } else {
        w.slide = w.size;  // tumbling
      }
    } else {
      return Err("expected ROWS or RANGE in window clause");
    }
    if (w.size <= 0 || w.slide <= 0) {
      return Err("window size and slide must be positive");
    }
    if (w.slide > w.size) {
      return Err("window slide must not exceed window size");
    }
    DC_RETURN_NOT_OK(Expect(TokenType::kRBracket, "']'"));
    return w;
  }

  // Expression grammar, lowest to highest precedence:
  //   or_expr    := and_expr (OR and_expr)*
  //   and_expr   := not_expr (AND not_expr)*
  //   not_expr   := NOT not_expr | cmp_expr
  //   cmp_expr   := add_expr [(=|<>|<|<=|>|>=) add_expr
  //                           | BETWEEN add_expr AND add_expr]
  //   add_expr   := mul_expr ((+|-) mul_expr)*
  //   mul_expr   := unary ((*|/|%) unary)*
  //   unary      := - unary | primary
  //   primary    := literal | agg(expr|*) | ident[.ident] | ( or_expr )
  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    DC_ASSIGN_OR_RETURN(ExprPtr e, ParseAnd());
    while (MatchKw("or")) {
      DC_ASSIGN_OR_RETURN(ExprPtr r, ParseAnd());
      e = MakeLogical(ExprKind::kOr, std::move(e), std::move(r));
    }
    return e;
  }

  Result<ExprPtr> ParseAnd() {
    DC_ASSIGN_OR_RETURN(ExprPtr e, ParseNot());
    while (CheckKw("and")) {
      Advance();
      DC_ASSIGN_OR_RETURN(ExprPtr r, ParseNot());
      e = MakeLogical(ExprKind::kAnd, std::move(e), std::move(r));
    }
    return e;
  }

  Result<ExprPtr> ParseNot() {
    if (MatchKw("not")) {
      DC_ASSIGN_OR_RETURN(ExprPtr e, ParseNot());
      return MakeNot(std::move(e));
    }
    return ParseCmp();
  }

  Result<ExprPtr> ParseCmp() {
    DC_ASSIGN_OR_RETURN(ExprPtr e, ParseAdd());
    if (MatchKw("between")) {
      DC_ASSIGN_OR_RETURN(ExprPtr lo, ParseAdd());
      if (!MatchKw("and")) return Err("expected AND in BETWEEN");
      DC_ASSIGN_OR_RETURN(ExprPtr hi, ParseAdd());
      return MakeBetween(std::move(e), std::move(lo), std::move(hi));
    }
    CmpOp op;
    switch (Peek().type) {
      case TokenType::kEq:
        op = CmpOp::kEq;
        break;
      case TokenType::kNe:
        op = CmpOp::kNe;
        break;
      case TokenType::kLt:
        op = CmpOp::kLt;
        break;
      case TokenType::kLe:
        op = CmpOp::kLe;
        break;
      case TokenType::kGt:
        op = CmpOp::kGt;
        break;
      case TokenType::kGe:
        op = CmpOp::kGe;
        break;
      default:
        return e;
    }
    Advance();
    DC_ASSIGN_OR_RETURN(ExprPtr r, ParseAdd());
    return MakeCmp(op, std::move(e), std::move(r));
  }

  Result<ExprPtr> ParseAdd() {
    DC_ASSIGN_OR_RETURN(ExprPtr e, ParseMul());
    while (Check(TokenType::kPlus) || Check(TokenType::kMinus)) {
      const ArithOp op = Check(TokenType::kPlus) ? ArithOp::kAdd
                                                 : ArithOp::kSub;
      Advance();
      DC_ASSIGN_OR_RETURN(ExprPtr r, ParseMul());
      e = MakeArith(op, std::move(e), std::move(r));
    }
    return e;
  }

  Result<ExprPtr> ParseMul() {
    DC_ASSIGN_OR_RETURN(ExprPtr e, ParseUnary());
    while (Check(TokenType::kStar) || Check(TokenType::kSlash) ||
           Check(TokenType::kPercent)) {
      ArithOp op = ArithOp::kMul;
      if (Check(TokenType::kSlash)) op = ArithOp::kDiv;
      if (Check(TokenType::kPercent)) op = ArithOp::kMod;
      Advance();
      DC_ASSIGN_OR_RETURN(ExprPtr r, ParseUnary());
      e = MakeArith(op, std::move(e), std::move(r));
    }
    return e;
  }

  Result<ExprPtr> ParseUnary() {
    if (Match(TokenType::kMinus)) {
      DC_ASSIGN_OR_RETURN(ExprPtr e, ParseUnary());
      return MakeNeg(std::move(e));
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& t = Peek();
    switch (t.type) {
      case TokenType::kInt:
        Advance();
        return MakeLiteral(Value::I64(t.int_val));
      case TokenType::kFloat:
        Advance();
        return MakeLiteral(Value::F64(t.float_val));
      case TokenType::kString:
        Advance();
        return MakeLiteral(Value::Str(t.text));
      case TokenType::kLParen: {
        Advance();
        DC_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        DC_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
        return e;
      }
      case TokenType::kIdent:
        break;
      default:
        return Err("expected expression");
    }
    // Identifier: boolean literal, aggregate call, or column ref.
    if (t.text == "true" || t.text == "false") {
      Advance();
      return MakeLiteral(Value::Bool(t.text == "true"));
    }
    const ops::AggKind* agg = nullptr;
    static constexpr std::pair<const char*, ops::AggKind> kAggs[] = {
        {"count", ops::AggKind::kCount}, {"sum", ops::AggKind::kSum},
        {"avg", ops::AggKind::kAvg},     {"min", ops::AggKind::kMin},
        {"max", ops::AggKind::kMax},
    };
    for (const auto& [name, kind] : kAggs) {
      if (t.text == name && Peek(1).type == TokenType::kLParen) {
        agg = &kind;
        break;
      }
    }
    if (agg != nullptr) {
      const ops::AggKind kind = *agg;
      Advance();  // name
      Advance();  // (
      if (Check(TokenType::kStar)) {
        if (kind != ops::AggKind::kCount) {
          return Err("'*' argument is only valid for COUNT");
        }
        Advance();
        DC_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
        return MakeAgg(kind, nullptr, /*star=*/true);
      }
      DC_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
      DC_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
      return MakeAgg(kind, std::move(arg), /*star=*/false);
    }
    // Column reference, possibly qualified.
    Advance();
    if (Match(TokenType::kDot)) {
      DC_ASSIGN_OR_RETURN(std::string col, ExpectIdent("column name"));
      return MakeColumnRef(t.text, std::move(col));
    }
    return MakeColumnRef("", t.text);
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Statement> ParseStatement(std::string_view input) {
  DC_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(input));
  Parser p(std::move(tokens));
  return p.ParseOne();
}

Result<std::vector<Statement>> ParseScript(std::string_view input) {
  DC_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(input));
  Parser p(std::move(tokens));
  return p.ParseAll();
}

}  // namespace dc::sql
