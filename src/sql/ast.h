// Copyright 2026 The DataCell Authors.
//
// Abstract syntax for the supported SQL subset plus DataCell's continuous
// extensions (CREATE STREAM, window clauses on stream scans).

#ifndef DATACELL_SQL_AST_H_
#define DATACELL_SQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "bat/ops_aggregate.h"
#include "bat/types.h"
#include "util/clock.h"

namespace dc::sql {

struct Expr;
using ExprPtr = std::shared_ptr<Expr>;

enum class ExprKind {
  kLiteral,    // 42, 1.5, 'abc'
  kColumnRef,  // price / t.price
  kStar,       // * (only inside COUNT(*) or SELECT *)
  kArith,      // a + b
  kCmp,        // a < b
  kBetween,    // a BETWEEN lo AND hi
  kAnd,
  kOr,
  kNot,
  kNeg,        // -a
  kAgg,        // SUM(a), COUNT(*)
};

/// Parsed expression node. Only the fields relevant to `kind` are set.
struct Expr {
  ExprKind kind;

  Value literal;                       // kLiteral
  std::string table;                   // kColumnRef (optional qualifier)
  std::string column;                  // kColumnRef
  ArithOp arith_op = ArithOp::kAdd;    // kArith
  CmpOp cmp_op = CmpOp::kEq;           // kCmp
  ops::AggKind agg = ops::AggKind::kCount;  // kAgg
  bool agg_star = false;               // kAgg: COUNT(*)
  std::vector<ExprPtr> children;       // operands (kBetween: e, lo, hi)

  /// Reconstructed SQL-ish text (explain / error messages / plan dumps).
  std::string ToString() const;
};

ExprPtr MakeLiteral(Value v);
ExprPtr MakeColumnRef(std::string table, std::string column);
ExprPtr MakeArith(ArithOp op, ExprPtr l, ExprPtr r);
ExprPtr MakeCmp(CmpOp op, ExprPtr l, ExprPtr r);
ExprPtr MakeLogical(ExprKind kind, ExprPtr l, ExprPtr r);
ExprPtr MakeNot(ExprPtr e);
ExprPtr MakeNeg(ExprPtr e);
ExprPtr MakeAgg(ops::AggKind kind, ExprPtr arg, bool star);
ExprPtr MakeBetween(ExprPtr e, ExprPtr lo, ExprPtr hi);
ExprPtr MakeStar();

/// DataCell window clause attached to a stream in FROM:
///   FROM trades [RANGE 60 SECONDS SLIDE 10 SECONDS]
///   FROM trades [ROWS 1000 SLIDE 100]
/// Omitted SLIDE means tumbling (slide == size). RANGE units are converted
/// to µs at parse time.
struct WindowClause {
  bool rows = false;   // true: count-based, false: event-time-based
  int64_t size = 0;    // rows, or µs
  int64_t slide = 0;   // rows, or µs
};

/// FROM item: relation name, optional alias, optional window.
struct FromItem {
  std::string name;
  std::string alias;  // defaults to name
  std::optional<WindowClause> window;
};

/// One SELECT-list entry.
struct SelectItem {
  ExprPtr expr;        // null for bare '*'
  bool star = false;
  std::string alias;   // output column name; derived if empty
};

/// ORDER BY entry.
struct OrderItem {
  ExprPtr expr;
  bool ascending = true;
};

/// SELECT statement (continuous iff any FROM item is a stream).
struct SelectStmt {
  std::vector<SelectItem> items;
  std::vector<FromItem> from;
  ExprPtr where;                  // null if absent
  std::vector<ExprPtr> group_by;  // column refs
  ExprPtr having;                 // null if absent
  std::vector<OrderItem> order_by;
  int64_t limit = -1;             // -1: no limit
};

/// CREATE TABLE / CREATE STREAM.
struct CreateStmt {
  bool is_stream = false;
  std::string name;
  std::vector<std::pair<std::string, TypeId>> columns;
};

/// INSERT INTO t VALUES (...), (...) — literal rows only.
struct InsertStmt {
  std::string table;
  std::vector<std::vector<Value>> rows;
};

using Statement = std::variant<SelectStmt, CreateStmt, InsertStmt>;

}  // namespace dc::sql

#endif  // DATACELL_SQL_AST_H_
