#include "sql/ast.h"

#include "util/string_util.h"

namespace dc::sql {

ExprPtr MakeLiteral(Value v) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr MakeColumnRef(std::string table, std::string column) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->table = std::move(table);
  e->column = std::move(column);
  return e;
}

ExprPtr MakeArith(ArithOp op, ExprPtr l, ExprPtr r) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kArith;
  e->arith_op = op;
  e->children = {std::move(l), std::move(r)};
  return e;
}

ExprPtr MakeCmp(CmpOp op, ExprPtr l, ExprPtr r) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kCmp;
  e->cmp_op = op;
  e->children = {std::move(l), std::move(r)};
  return e;
}

ExprPtr MakeLogical(ExprKind kind, ExprPtr l, ExprPtr r) {
  auto e = std::make_shared<Expr>();
  e->kind = kind;
  e->children = {std::move(l), std::move(r)};
  return e;
}

ExprPtr MakeNot(ExprPtr inner) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kNot;
  e->children = {std::move(inner)};
  return e;
}

ExprPtr MakeNeg(ExprPtr inner) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kNeg;
  e->children = {std::move(inner)};
  return e;
}

ExprPtr MakeAgg(ops::AggKind kind, ExprPtr arg, bool star) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kAgg;
  e->agg = kind;
  e->agg_star = star;
  if (arg) e->children = {std::move(arg)};
  return e;
}

ExprPtr MakeBetween(ExprPtr v, ExprPtr lo, ExprPtr hi) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kBetween;
  e->children = {std::move(v), std::move(lo), std::move(hi)};
  return e;
}

ExprPtr MakeStar() {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kStar;
  return e;
}

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kLiteral:
      return literal.type() == TypeId::kStr
                 ? StrFormat("'%s'", literal.AsStr().c_str())
                 : literal.ToString();
    case ExprKind::kColumnRef:
      return table.empty() ? column : table + "." + column;
    case ExprKind::kStar:
      return "*";
    case ExprKind::kArith:
      return StrFormat("(%s %s %s)", children[0]->ToString().c_str(),
                       ArithOpName(arith_op), children[1]->ToString().c_str());
    case ExprKind::kCmp:
      return StrFormat("(%s %s %s)", children[0]->ToString().c_str(),
                       CmpOpName(cmp_op), children[1]->ToString().c_str());
    case ExprKind::kBetween:
      return StrFormat("(%s BETWEEN %s AND %s)",
                       children[0]->ToString().c_str(),
                       children[1]->ToString().c_str(),
                       children[2]->ToString().c_str());
    case ExprKind::kAnd:
      return StrFormat("(%s AND %s)", children[0]->ToString().c_str(),
                       children[1]->ToString().c_str());
    case ExprKind::kOr:
      return StrFormat("(%s OR %s)", children[0]->ToString().c_str(),
                       children[1]->ToString().c_str());
    case ExprKind::kNot:
      return StrFormat("(NOT %s)", children[0]->ToString().c_str());
    case ExprKind::kNeg:
      return StrFormat("(-%s)", children[0]->ToString().c_str());
    case ExprKind::kAgg:
      return StrFormat("%s(%s)", ops::AggKindName(agg),
                       agg_star ? "*" : children[0]->ToString().c_str());
  }
  return "?";
}

}  // namespace dc::sql
