#include <cctype>
#include <cstdlib>

#include "sql/token.h"
#include "util/string_util.h"

namespace dc::sql {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Lex(std::string_view input) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = input.size();
  auto push = [&](TokenType t, std::string text, size_t pos) {
    out.push_back(Token{t, std::move(text), 0, 0, pos});
  };
  while (i < n) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '-' && i + 1 < n && input[i + 1] == '-') {
      // SQL comment to end of line.
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    const size_t pos = i;
    if (IsIdentStart(c)) {
      size_t j = i + 1;
      while (j < n && IsIdentChar(input[j])) ++j;
      push(TokenType::kIdent, ToLower(input.substr(i, j - i)), pos);
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      bool is_float = false;
      while (j < n && std::isdigit(static_cast<unsigned char>(input[j]))) ++j;
      if (j < n && input[j] == '.' && j + 1 < n &&
          std::isdigit(static_cast<unsigned char>(input[j + 1]))) {
        is_float = true;
        ++j;
        while (j < n && std::isdigit(static_cast<unsigned char>(input[j]))) {
          ++j;
        }
      }
      if (j < n && (input[j] == 'e' || input[j] == 'E')) {
        size_t k = j + 1;
        if (k < n && (input[k] == '+' || input[k] == '-')) ++k;
        if (k < n && std::isdigit(static_cast<unsigned char>(input[k]))) {
          is_float = true;
          ++k;
          while (k < n && std::isdigit(static_cast<unsigned char>(input[k]))) {
            ++k;
          }
          j = k;
        }
      }
      const std::string text(input.substr(i, j - i));
      Token t{is_float ? TokenType::kFloat : TokenType::kInt, text, 0, 0, pos};
      if (is_float) {
        t.float_val = strtod(text.c_str(), nullptr);
      } else {
        t.int_val = strtoll(text.c_str(), nullptr, 10);
      }
      out.push_back(std::move(t));
      i = j;
      continue;
    }
    if (c == '\'') {
      std::string text;
      size_t j = i + 1;
      bool closed = false;
      while (j < n) {
        if (input[j] == '\'') {
          if (j + 1 < n && input[j + 1] == '\'') {
            text.push_back('\'');
            j += 2;
          } else {
            closed = true;
            ++j;
            break;
          }
        } else {
          text.push_back(input[j++]);
        }
      }
      if (!closed) {
        return Status::ParseError(
            StrFormat("unterminated string literal at offset %zu", pos));
      }
      Token t{TokenType::kString, std::move(text), 0, 0, pos};
      out.push_back(std::move(t));
      i = j;
      continue;
    }
    switch (c) {
      case '(':
        push(TokenType::kLParen, "(", pos);
        ++i;
        break;
      case ')':
        push(TokenType::kRParen, ")", pos);
        ++i;
        break;
      case '[':
        push(TokenType::kLBracket, "[", pos);
        ++i;
        break;
      case ']':
        push(TokenType::kRBracket, "]", pos);
        ++i;
        break;
      case ',':
        push(TokenType::kComma, ",", pos);
        ++i;
        break;
      case '.':
        push(TokenType::kDot, ".", pos);
        ++i;
        break;
      case '*':
        push(TokenType::kStar, "*", pos);
        ++i;
        break;
      case '+':
        push(TokenType::kPlus, "+", pos);
        ++i;
        break;
      case '-':
        push(TokenType::kMinus, "-", pos);
        ++i;
        break;
      case '/':
        push(TokenType::kSlash, "/", pos);
        ++i;
        break;
      case '%':
        push(TokenType::kPercent, "%", pos);
        ++i;
        break;
      case ';':
        push(TokenType::kSemicolon, ";", pos);
        ++i;
        break;
      case '=':
        push(TokenType::kEq, "=", pos);
        ++i;
        break;
      case '!':
        if (i + 1 < n && input[i + 1] == '=') {
          push(TokenType::kNe, "!=", pos);
          i += 2;
        } else {
          return Status::ParseError(
              StrFormat("unexpected '!' at offset %zu", pos));
        }
        break;
      case '<':
        if (i + 1 < n && input[i + 1] == '=') {
          push(TokenType::kLe, "<=", pos);
          i += 2;
        } else if (i + 1 < n && input[i + 1] == '>') {
          push(TokenType::kNe, "<>", pos);
          i += 2;
        } else {
          push(TokenType::kLt, "<", pos);
          ++i;
        }
        break;
      case '>':
        if (i + 1 < n && input[i + 1] == '=') {
          push(TokenType::kGe, ">=", pos);
          i += 2;
        } else {
          push(TokenType::kGt, ">", pos);
          ++i;
        }
        break;
      default:
        return Status::ParseError(
            StrFormat("unexpected character '%c' at offset %zu", c, pos));
    }
  }
  push(TokenType::kEnd, "", n);
  return out;
}

}  // namespace dc::sql
