// Copyright 2026 The DataCell Authors.
//
// Basket: the lightweight columnar table that buffers stream tuples between
// receptors and factories (paper §3, "Baskets/Columns"). The key DataCell
// idea: stream data lands in ordinary columns, so continuous queries
// evaluate over baskets exactly like one-time queries over tables.
//
// Responsibilities:
//  * columnar append (receptor side), with monotone per-tuple sequence
//    numbers surviving physical shrinks,
//  * multi-reader consumption cursors: a tuple is dropped only after every
//    registered reader (factory/emitter) has consumed it,
//  * event-time watermark (max event ts seen; heartbeats advance it
//    without data) used by RANGE-window firing,
//  * batch boundaries so emitters can deliver exactly the emissions the
//    factory produced,
//  * occupancy/throughput statistics for the monitor pane.
//
// Event timestamps are required to be non-decreasing per stream; receptors
// clamp out-of-order input (documented simplification).

#ifndef DATACELL_CORE_BASKET_H_
#define DATACELL_CORE_BASKET_H_

#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "bat/bat.h"
#include "storage/schema.h"
#include "util/clock.h"
#include "util/result.h"

namespace dc {

/// Statistics snapshot of one basket (monitor pane / Fig. 4).
struct BasketStats {
  uint64_t appended_total = 0;
  uint64_t dropped_total = 0;
  uint64_t resident_rows = 0;
  uint64_t append_batches = 0;
  size_t memory_bytes = 0;
  Micros event_watermark = 0;
};

/// A contiguous, copied-out view of basket rows (factories never hold
/// references into the live basket; windows are materialized slices).
struct BasketView {
  uint64_t first_seq = 0;
  uint64_t rows = 0;
  std::vector<BatPtr> cols;
};

/// Thread-safe columnar stream buffer.
class Basket {
 public:
  /// `ts_col` designates the event-time column, or SIZE_MAX.
  Basket(std::string name, Schema schema, size_t ts_col = SIZE_MAX);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t ts_col() const { return ts_col_; }
  bool HasEventTime() const { return ts_col_ != SIZE_MAX; }

  // --- Producer side ---------------------------------------------------------

  /// Appends a batch of typed columns (one append = one batch boundary).
  /// Event timestamps are clamped to be non-decreasing.
  Status Append(const std::vector<BatPtr>& cols);

  /// Appends one row of values (type-coerced to the schema).
  Status AppendRow(const std::vector<Value>& row);

  /// Advances the event watermark without data (stream keep-alive).
  void Heartbeat(Micros event_ts);

  /// Marks the stream as ended: no further appends will come. Factories
  /// use this to flush windows that can never be completed by watermark
  /// alone and then go dormant.
  void Seal();
  bool sealed() const;

  /// Registers a callback pulsed after every append/heartbeat (the
  /// scheduler's Petri-net arc: place -> transition enablement check).
  void AddListener(std::function<void()> fn);

  // --- Consumer side ---------------------------------------------------------

  /// Registers a reader; its cursor starts at the current high sequence
  /// (readers only see tuples that arrive after registration) unless
  /// `from_start` is true.
  int RegisterReader(bool from_start = false);
  void UnregisterReader(int reader_id);

  /// Current consumed-up-to cursor of a reader (its registration origin
  /// until the first AdvanceReader).
  uint64_t ReaderCursor(int reader_id) const;

  /// Copies rows [from_seq, min(high, from_seq + max_rows)). Rows below the
  /// drop horizon are gone; from_seq is clamped up (callers track their own
  /// cursors and only ask for rows they have not released).
  BasketView Read(uint64_t from_seq,
                  uint64_t max_rows = UINT64_MAX) const;

  /// Sequence range [lo_seq, hi_seq) of resident rows with event ts in
  /// [ts_lo, ts_hi). Requires an event-time column (binary search; event
  /// timestamps are non-decreasing).
  Result<std::pair<uint64_t, uint64_t>> SeqRangeForTs(Micros ts_lo,
                                                      Micros ts_hi) const;

  /// Marks rows below `upto_seq` as consumed by `reader_id`; physically
  /// drops any prefix consumed by all readers.
  void AdvanceReader(int reader_id, uint64_t upto_seq);

  /// Total appended so far; row sequence numbers are [0, HighSeq).
  uint64_t HighSeq() const;

  /// First resident (not yet dropped) sequence number.
  uint64_t DropHorizon() const;

  /// Event-time watermark (max event ts observed, or heartbeat).
  Micros EventWatermark() const;

  /// Batch end-sequences in (from_seq, high] — lets emitters deliver whole
  /// emissions. Boundaries below the drop horizon are trimmed.
  std::vector<uint64_t> BatchBoundariesAfter(uint64_t from_seq) const;

  BasketStats Stats() const;

 private:
  Status AppendLocked(const std::vector<BatPtr>& cols);
  void ShrinkLocked();
  void NotifyAll();

  const std::string name_;
  const Schema schema_;
  const size_t ts_col_;

  mutable std::mutex mu_;
  std::vector<BatPtr> cols_;         // resident rows, seq [base_, high_)
  uint64_t base_ = 0;                // dropped prefix length
  uint64_t high_ = 0;                // total appended
  Micros watermark_ = INT64_MIN;
  std::map<int, uint64_t> readers_;  // reader id -> consumed-up-to seq
  int next_reader_ = 0;
  std::deque<uint64_t> batch_ends_;
  uint64_t append_batches_ = 0;
  bool sealed_ = false;

  std::vector<std::function<void()>> listeners_;  // append-only
};

}  // namespace dc

#endif  // DATACELL_CORE_BASKET_H_
