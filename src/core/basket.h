// Copyright 2026 The DataCell Authors.
//
// Basket: the lightweight columnar table that buffers stream tuples between
// receptors and factories (paper §3, "Baskets/Columns"). The key DataCell
// idea: stream data lands in ordinary columns, so continuous queries
// evaluate over baskets exactly like one-time queries over tables.
//
// Responsibilities:
//  * columnar append (receptor side), with monotone per-tuple sequence
//    numbers surviving physical shrinks,
//  * capacity discipline: an optional row/byte bound (BasketLimits) turns
//    Append into a blocking-with-timeout call, so producers experience
//    backpressure instead of growing the basket without bound,
//  * multi-reader consumption cursors: a tuple is dropped only after every
//    registered reader (factory/emitter) has consumed it,
//  * event-time watermark (max event ts seen; heartbeats advance it
//    without data) used by RANGE-window firing,
//  * a batch log so emitters can deliver exactly the emissions the factory
//    produced — including zero-row emissions, whose boundaries survive even
//    though they carry no data (SQL-faithful empty result sets),
//  * occupancy/throughput/stall statistics for the monitor pane.
//
// Capacity semantics: a batch is admitted whenever the basket is below its
// bound, so occupancy may overshoot by at most one in-flight batch (this
// guarantees progress for batches larger than the bound). When full, Append
// waits on an internal condition variable that is pulsed whenever a reader
// frees space (AdvanceReader/UnregisterReader -> shrink); with a timeout it
// returns Status::ResourceExhausted so callers like the receptor can park
// in interruptible slices. Heartbeat/Seal are never blocked by capacity —
// watermarks keep advancing under backpressure. Zero-row appends record a
// batch boundary but no rows, so they bypass the capacity gate too.
//
// Event timestamps are required to be non-decreasing per stream; receptors
// clamp out-of-order input (documented simplification).

#ifndef DATACELL_CORE_BASKET_H_
#define DATACELL_CORE_BASKET_H_

#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "bat/bat.h"
#include "storage/schema.h"
#include "util/clock.h"
#include "util/result.h"
#include "util/sync.h"

namespace dc {

/// Capacity bound of one basket. Zero means unbounded in that dimension
/// (the pre-backpressure behavior).
struct BasketLimits {
  uint64_t max_rows = 0;  // resident-row bound
  size_t max_bytes = 0;   // resident-memory bound

  bool bounded() const { return max_rows > 0 || max_bytes > 0; }
};

/// Statistics snapshot of one basket (monitor pane / Fig. 4).
struct BasketStats {
  uint64_t appended_total = 0;
  uint64_t dropped_total = 0;
  uint64_t resident_rows = 0;
  uint64_t append_batches = 0;
  uint64_t empty_batches = 0;  // zero-row boundaries (empty emissions)
  size_t memory_bytes = 0;
  Micros event_watermark = 0;
  // Capacity / backpressure figures:
  uint64_t capacity_rows = 0;       // 0 = unbounded
  size_t capacity_bytes = 0;        // 0 = unbounded
  uint64_t resident_hwm_rows = 0;   // occupancy high watermark
  size_t memory_hwm_bytes = 0;
  // Append attempts that had to wait for space / wait slices that expired
  // with ResourceExhausted. A parked producer retrying in timeout slices
  // (the receptor) counts once per slice — see ReceptorStats::parks for
  // per-batch park episodes.
  uint64_t append_stalls = 0;
  uint64_t append_timeouts = 0;
  Micros stall_micros = 0;          // total time producers spent waiting
  /// Registered readers (factories, shared nodes, emitters). With sharing
  /// enabled a stream has one reader per shared node / private factory,
  /// not one per query — the multi-query benches assert this stays O(1).
  uint64_t readers = 0;
};

/// A contiguous, copied-out view of basket rows (factories never hold
/// references into the live basket; windows are materialized slices).
struct BasketView {
  uint64_t first_seq = 0;
  uint64_t rows = 0;
  std::vector<BatPtr> cols;
};

/// One entry of the basket's batch log. Ordinals are assigned densely in
/// append order and never reused; begin_seq == end_seq for a zero-row batch.
struct BasketBatch {
  uint64_t ordinal = 0;
  uint64_t begin_seq = 0;
  uint64_t end_seq = 0;
  /// Ingest stamp (SteadyMicros) of the append that created this batch.
  /// On stream baskets this is the arrival time; on factory output
  /// baskets the factory passes through the *trigger* stamp of the input
  /// batch that made the emission due, so an emitter's
  /// `SteadyMicros() - ingest_us` is end-to-end ingest→delivery latency
  /// (docs/OBSERVABILITY.md). < 0 when unknown.
  Micros ingest_us = -1;
};

/// Thread-safe columnar stream buffer.
class Basket {
 public:
  /// Blocking sentinel for Append's timeout parameter.
  static constexpr Micros kBlockForever = -1;

  /// `ts_col` designates the event-time column, or SIZE_MAX.
  Basket(std::string name, Schema schema, size_t ts_col = SIZE_MAX,
         BasketLimits limits = {});

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t ts_col() const { return ts_col_; }
  bool HasEventTime() const { return ts_col_ != SIZE_MAX; }

  /// Replaces the capacity bound; wakes producers blocked on space (a
  /// raised/removed bound may admit them immediately).
  void SetLimits(BasketLimits limits);
  BasketLimits limits() const;

  // --- Producer side ---------------------------------------------------------

  /// Appends a batch of typed columns (one append = one batch boundary,
  /// including for zero-row batches). Event timestamps are clamped to be
  /// non-decreasing. If the basket is at capacity, waits up to
  /// `timeout_micros` for readers to free space (kBlockForever = wait
  /// indefinitely, 0 = fail immediately) and returns
  /// Status::ResourceExhausted when the wait expires.
  ///
  /// `ingest_us` is the batch's ingest stamp: < 0 (the default) stamps
  /// the batch with SteadyMicros() at entry — *before* any capacity
  /// wait, so backpressure stalls count toward downstream latency; a
  /// caller relaying tuples it ingested earlier (receptor retry slices,
  /// factories appending emissions to output baskets) passes the
  /// original source stamp through instead.
  Status Append(const std::vector<BatPtr>& cols,
                Micros timeout_micros = kBlockForever, Micros ingest_us = -1);

  /// Appends one row of values (type-coerced to the schema). Capacity
  /// semantics as Append.
  Status AppendRow(const std::vector<Value>& row,
                   Micros timeout_micros = kBlockForever);

  /// Advances the event watermark without data (stream keep-alive). Never
  /// blocked by capacity.
  void Heartbeat(Micros event_ts);

  /// Marks the stream as ended: no further appends will come. Factories
  /// use this to flush windows that can never be completed by watermark
  /// alone and then go dormant.
  void Seal();
  bool sealed() const;

  // --- Durability (docs/DURABILITY.md) --------------------------------------

  /// WAL hooks, invoked *inside* the basket lock so records land in the
  /// log in exactly the order batches/watermarks were admitted (the
  /// pulse-listener mechanism runs outside the lock and could reorder
  /// concurrent appends). A hook may only take locks ranked above
  /// kBasket — the engine's hooks take the WAL writer's kWal mutex.
  /// `on_batch` receives the batch-log entry plus the stored (post-clamp)
  /// column values, so replaying the log reproduces the basket exactly.
  struct DurabilityHooks {
    std::function<void(const BasketBatch& batch,
                       const std::vector<BatPtr>& cols)>
        on_batch;
    std::function<void(Micros event_ts)> on_heartbeat;
    std::function<void()> on_seal;
  };
  void SetDurabilityHooks(DurabilityHooks hooks);

  /// Recovery: positions an empty basket at the point its WAL starts —
  /// sequence numbers resume at `start_seq`, batch ordinals at
  /// `next_ordinal`, with the watermark/seal state accumulated by
  /// everything the log truncated away. Must run before any rows are
  /// appended (and, in practice, before readers register).
  Status RestoreLogPosition(uint64_t start_seq, uint64_t next_ordinal,
                            Micros watermark, bool sealed);

  /// Registers a callback pulsed after every append/heartbeat/seal — the
  /// scheduler subscribes one pulse listener per basket and fans the pulse
  /// out to exactly the factories with an attached arc (targeted
  /// enablement, not a broadcast). Returns a listener id for
  /// RemoveListener. Listeners are invoked outside the basket lock.
  /// RemoveListener blocks until every in-flight notify pass has finished,
  /// so once it returns the listener can never run again and its captures
  /// may be destroyed — required by emitters on shared output baskets,
  /// where an aliased factory keeps appending after one alias is removed
  /// (docs/SHARING.md). Consequently a listener must never call
  /// RemoveListener on its own basket.
  int AddListener(std::function<void()> fn);
  void RemoveListener(int listener_id);

  // --- Consumer side ---------------------------------------------------------

  /// Registers a reader; its cursor starts at the current high sequence
  /// (readers only see tuples that arrive after registration) unless
  /// `from_start` is true. A reader that consumes the batch log (an
  /// emitter) passes `track_batches`: batch entries are then retained until
  /// it acknowledges them via AdvanceReaderBatches, so zero-row boundaries
  /// at the drop horizon cannot be trimmed before delivery.
  int RegisterReader(bool from_start = false, bool track_batches = false);
  void UnregisterReader(int reader_id);

  /// Current consumed-up-to cursor of a reader (its registration origin
  /// until the first AdvanceReader).
  uint64_t ReaderCursor(int reader_id) const;

  /// Copies rows [from_seq, min(high, from_seq + max_rows)). Rows below the
  /// drop horizon are gone; from_seq is clamped up (callers track their own
  /// cursors and only ask for rows they have not released).
  BasketView Read(uint64_t from_seq,
                  uint64_t max_rows = UINT64_MAX) const;

  /// Sequence range [lo_seq, hi_seq) of resident rows with event ts in
  /// [ts_lo, ts_hi). Requires an event-time column (binary search; event
  /// timestamps are non-decreasing).
  Result<std::pair<uint64_t, uint64_t>> SeqRangeForTs(Micros ts_lo,
                                                      Micros ts_hi) const;

  /// Marks rows below `upto_seq` as consumed by `reader_id`; physically
  /// drops any prefix consumed by all readers and wakes producers waiting
  /// for space.
  void AdvanceReader(int reader_id, uint64_t upto_seq);

  /// AdvanceReader for batch-tracking readers: additionally acknowledges
  /// batch-log entries with ordinal < `upto_ordinal` as delivered.
  void AdvanceReaderBatches(int reader_id, uint64_t upto_seq,
                            uint64_t upto_ordinal);

  /// Total appended so far; row sequence numbers are [0, HighSeq).
  uint64_t HighSeq() const;

  /// First resident (not yet dropped) sequence number.
  uint64_t DropHorizon() const;

  /// Event-time watermark (max event ts observed, or heartbeat).
  Micros EventWatermark() const;

  /// Batch log entries with ordinal >= `from_ordinal` (delivery cursor for
  /// emitters; includes zero-row batches). Entries are trimmed once their
  /// rows fall below the drop horizon and every batch-tracking reader has
  /// acknowledged them; zero-row entries are retained only when a
  /// batch-tracking reader exists to deliver them.
  std::vector<BasketBatch> BatchesAfter(uint64_t from_ordinal) const;

  // --- Latency stamps (docs/OBSERVABILITY.md) -------------------------------

  /// Ingest stamp of the batch that brought the row count to `end_seq`
  /// (i.e. the batch containing row end_seq-1) — the arrival time a
  /// ROWS-window emission covering [.., end_seq) became due. Falls back
  /// to the oldest surviving batch's stamp when the exact entry was
  /// already trimmed; -1 when nothing is known.
  Micros IngestStampForSeq(uint64_t end_seq) const;

  /// Ingest stamp of the append/heartbeat that first advanced the event
  /// watermark to >= `ts` — the arrival time a RANGE-window emission with
  /// boundary `ts` became due. Seal() records a stamp at ts=+inf, so
  /// sealed-flush emissions resolve to the seal time. Falls back to the
  /// oldest surviving stamp when trimmed; -1 when the watermark has not
  /// reached `ts`.
  Micros IngestStampForWatermark(Micros ts) const;

  BasketStats Stats() const;

 private:
  struct ReaderState {
    uint64_t cursor = 0;     // consumed-up-to row sequence
    uint64_t batch_ord = 0;  // acknowledged batch ordinals < this
    bool tracks_batches = false;
  };

  Status AppendLocked(const std::vector<BatPtr>& cols, Micros ingest_us)
      DC_REQUIRES(mu_);
  Status ValidateBatch(const std::vector<BatPtr>& cols, uint64_t* n) const
      DC_REQUIRES(mu_);
  /// Blocks until the basket can admit `n` more rows; see Append.
  Status WaitForSpaceLocked(uint64_t n, Micros timeout_micros)
      DC_REQUIRES(mu_);
  bool AtCapacityLocked() const DC_REQUIRES(mu_);
  void PushWatermarkStampLocked(Micros watermark, Micros at_us)
      DC_REQUIRES(mu_);
  size_t MemoryBytesLocked() const DC_REQUIRES(mu_);
  void ShrinkLocked() DC_REQUIRES(mu_);
  void NotifyAll() DC_EXCLUDES(mu_);

  const std::string name_;
  const Schema schema_;
  const size_t ts_col_;

  mutable Mutex mu_{LockRank::kBasket};
  CondVar space_cv_;  // pulsed when readers free space
  BasketLimits limits_ DC_GUARDED_BY(mu_);
  // Resident rows, seq [base_, high_). The column pointers are fixed at
  // construction but the Bats they point at mutate under mu_.
  std::vector<BatPtr> cols_ DC_GUARDED_BY(mu_);
  uint64_t base_ DC_GUARDED_BY(mu_) = 0;  // dropped prefix length
  uint64_t high_ DC_GUARDED_BY(mu_) = 0;  // total appended
  Micros watermark_ DC_GUARDED_BY(mu_) = INT64_MIN;
  std::map<int, ReaderState> readers_ DC_GUARDED_BY(mu_);
  int next_reader_ DC_GUARDED_BY(mu_) = 0;
  // Batch log, trimmed in ShrinkLocked.
  std::deque<BasketBatch> batches_ DC_GUARDED_BY(mu_);
  // Watermark-advance stamps: (watermark value, ingest stamp of the
  // append/heartbeat that reached it), ascending in both fields; bounded
  // (oldest trimmed). Seal() records a terminal {INT64_MAX, seal time}.
  struct WatermarkStamp {
    Micros watermark;
    Micros at_us;
  };
  std::deque<WatermarkStamp> wm_stamps_ DC_GUARDED_BY(mu_);
  uint64_t append_batches_ DC_GUARDED_BY(mu_) = 0;  // == next batch ordinal
  uint64_t empty_batches_ DC_GUARDED_BY(mu_) = 0;
  bool sealed_ DC_GUARDED_BY(mu_) = false;
  DurabilityHooks hooks_ DC_GUARDED_BY(mu_);

  // Backpressure statistics.
  uint64_t resident_hwm_rows_ DC_GUARDED_BY(mu_) = 0;
  size_t memory_hwm_bytes_ DC_GUARDED_BY(mu_) = 0;
  uint64_t append_stalls_ DC_GUARDED_BY(mu_) = 0;
  uint64_t append_timeouts_ DC_GUARDED_BY(mu_) = 0;
  Micros stall_micros_ DC_GUARDED_BY(mu_) = 0;

  // Keyed for removal; invoked outside mu_ (NotifyAll copies first).
  std::map<int, std::function<void()>> listeners_ DC_GUARDED_BY(mu_);
  int next_listener_ DC_GUARDED_BY(mu_) = 0;
  // In-flight NotifyAll passes; RemoveListener drains them before
  // returning so removed listeners are never invoked afterwards.
  int notify_active_ DC_GUARDED_BY(mu_) = 0;
  CondVar notify_cv_;  // pulsed when notify_active_ drops to zero
};

}  // namespace dc

#endif  // DATACELL_CORE_BASKET_H_
