// Copyright 2026 The DataCell Authors.
//
// Emitter: the per-client delivery process (paper §3) draining a query's
// output basket and handing complete emissions to a result sink. Emission
// boundaries are preserved through the basket's batch log, so a sink sees
// exactly the result sets the factory produced — including zero-row result
// sets (SQL count=0 windows), which are delivered as empty ColumnSets with
// the correct schema rather than silently swallowed.

#ifndef DATACELL_CORE_EMITTER_H_
#define DATACELL_CORE_EMITTER_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/basket.h"

namespace dc {

/// Emitter statistics.
struct EmitterStats {
  uint64_t emissions = 0;        // delivered emissions, empty ones included
  uint64_t empty_emissions = 0;  // delivered zero-row emissions
  uint64_t rows = 0;
};

/// Drains one output basket to one sink. Passive by default (call Drain());
/// Start() attaches a delivery thread woken by basket appends.
class Emitter {
 public:
  using Sink = std::function<void(const ColumnSet& emission)>;

  Emitter(std::string name, std::shared_ptr<Basket> basket,
          std::vector<std::string> column_names, Sink sink);
  ~Emitter();

  const std::string& name() const { return name_; }

  /// Delivers all complete emissions currently buffered; returns how many.
  int Drain();

  void Start();
  void Stop();

  EmitterStats Stats() const;

 private:
  void Run();

  const std::string name_;
  std::shared_ptr<Basket> basket_;
  const std::vector<std::string> column_names_;
  Sink sink_;
  int reader_id_;
  int listener_id_ = -1;   // wake listener on basket_ (removed in dtor)
  uint64_t cursor_;        // consumed-up-to row sequence
  uint64_t batch_cursor_;  // delivered batch ordinals < this

  std::mutex drain_mu_;  // serializes Drain callers
  std::atomic<uint64_t> emissions_{0};
  std::atomic<uint64_t> empty_emissions_{0};
  std::atomic<uint64_t> rows_{0};

  std::thread thread_;
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  bool wake_ = false;
  std::atomic<bool> stop_{false};
};

/// Convenience sink buffering emissions for polling (tests, benches).
class ResultCollector {
 public:
  Emitter::Sink AsSink();

  /// Removes and returns all buffered emissions.
  std::vector<ColumnSet> TakeAll();

  size_t EmissionCount() const;
  uint64_t RowCount() const;

 private:
  mutable std::mutex mu_;
  std::deque<ColumnSet> emissions_;
  uint64_t rows_ = 0;
};

}  // namespace dc

#endif  // DATACELL_CORE_EMITTER_H_
