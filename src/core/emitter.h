// Copyright 2026 The DataCell Authors.
//
// Emitter: the per-client delivery process (paper §3) draining a query's
// output basket and handing complete emissions to a result sink. Emission
// boundaries are preserved through the basket's batch log, so a sink sees
// exactly the result sets the factory produced — including zero-row result
// sets (SQL count=0 windows), which are delivered as empty ColumnSets with
// the correct schema rather than silently swallowed.

#ifndef DATACELL_CORE_EMITTER_H_
#define DATACELL_CORE_EMITTER_H_

#include <atomic>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/basket.h"
#include "monitor/metrics.h"
#include "util/sync.h"

namespace dc {

/// Emitter statistics.
struct EmitterStats {
  uint64_t emissions = 0;        // delivered emissions, empty ones included
  uint64_t empty_emissions = 0;  // delivered zero-row emissions
  uint64_t rows = 0;
};

/// Drains one output basket to one sink. Passive by default (call Drain());
/// Start() attaches a delivery thread woken by basket appends.
class Emitter {
 public:
  using Sink = std::function<void(const ColumnSet& emission)>;

  /// `latency` (optional): per-query ingest→delivery histogram; every
  /// delivered emission whose batch carries an ingest stamp records
  /// `now - stamp` into it (docs/OBSERVABILITY.md). The handle is shared
  /// so it outlives registry removal during query teardown.
  Emitter(std::string name, std::shared_ptr<Basket> basket,
          std::vector<std::string> column_names, Sink sink,
          std::shared_ptr<monitor::HistogramMetric> latency = nullptr);
  ~Emitter();

  const std::string& name() const { return name_; }

  /// Delivers all complete emissions currently buffered; returns how many.
  int Drain();

  void Start();
  void Stop();

  EmitterStats Stats() const;

 private:
  void Run();

  const std::string name_;
  std::shared_ptr<Basket> basket_;
  const std::vector<std::string> column_names_;
  Sink sink_;
  const std::shared_ptr<monitor::HistogramMetric> latency_;
  int reader_id_;
  int listener_id_ = -1;  // wake listener on basket_ (removed in dtor)

  // Serializes Drain callers. Sinks run under it and may re-enter the
  // engine, so kEmitterDrain ranks above only kMonitor.
  Mutex drain_mu_{LockRank::kEmitterDrain};
  // Consumed-up-to row sequence / delivered batch ordinals < batch_cursor_.
  uint64_t cursor_ DC_GUARDED_BY(drain_mu_);
  uint64_t batch_cursor_ DC_GUARDED_BY(drain_mu_);
  std::atomic<uint64_t> emissions_{0};
  std::atomic<uint64_t> empty_emissions_{0};
  std::atomic<uint64_t> rows_{0};

  std::thread thread_;
  Mutex wake_mu_{LockRank::kEmitterWake};
  CondVar wake_cv_;
  bool wake_ DC_GUARDED_BY(wake_mu_) = false;
  std::atomic<bool> stop_{false};
};

/// Convenience sink buffering emissions for polling (tests, benches).
class ResultCollector {
 public:
  Emitter::Sink AsSink();

  /// Removes and returns all buffered emissions.
  std::vector<ColumnSet> TakeAll();

  size_t EmissionCount() const;
  uint64_t RowCount() const;

 private:
  mutable Mutex mu_{LockRank::kCollector};
  std::deque<ColumnSet> emissions_ DC_GUARDED_BY(mu_);
  uint64_t rows_ DC_GUARDED_BY(mu_) = 0;
};

}  // namespace dc

#endif  // DATACELL_CORE_EMITTER_H_
