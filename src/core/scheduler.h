// Copyright 2026 The DataCell Authors.
//
// Scheduler: the Petri-net execution model (paper §3, "Scheduler").
// Baskets are places, factories are transitions; a transition is enabled
// when its firing probe (Factory::CheckReady) holds — i.e. there are
// tuples relevant to the waiting query.
//
// The net's arcs are explicit: AttachArc(basket, factory) subscribes a
// factory to a basket's data-arrival pulses, and each pulse enqueues
// exactly the subscribed factories — never the whole factory list — onto
// ready queues sharded by factory id. Worker threads pop from the shards
// they own (shard s is owned by worker s % num_workers) and, when their
// own shards run dry, steal from the back of other shards' queues. The
// former global mutex survives only as registration-time bookkeeping
// (a reader/writer lock around the factory/arc registry); the hot path
// takes it shared plus one per-shard lock.
//
// Two driving modes:
//  * threaded: Start() launches N workers that fire enabled transitions
//    concurrently (a factory never fires concurrently with itself — the
//    per-entry state machine hands each factory to exactly one worker);
//  * manual:   DrainReady() synchronously fires until quiescence, in
//    factory-id order — deterministic driving for tests and
//    single-threaded experiments. Both modes share the claim/complete
//    state machine, so they can safely run concurrently with
//    AddFactory/RemoveFactory.
//
// A pulse enqueues a subscribed factory without probing it (probing takes
// the factory lock, which must not nest inside scheduler locks — see
// below); the popping worker runs the probe and drops not-ready entries.
// Such drops are counted as `spurious_pops` — cheap, and the price of
// keeping producers out of factory locks.
//
// Lock ordering (deadlock-freedom invariant): the scheduler owns three
// consecutive ranks of the engine lock hierarchy, acquired in the order
//   registry lock (reg_mu_)  ->  shard lock  ->  idle lock / basket lock
// — see docs/CONCURRENCY.md for the full ranked table, which the debug
// lock validator enforces at runtime. Factory::CheckReady()/Fire() are
// only ever called with NO scheduler lock held: a firing factory appends
// to its output basket, whose pulse listeners re-enter the scheduler
// (Pulse -> reg_mu_ -> shard lock).
//
// Lifetime: baskets passed to AttachArc must outlive the scheduler (the
// destructor unregisters its pulse listeners from them). Engine satisfies
// this by declaring the scheduler after the basket map.

#ifndef DATACELL_CORE_SCHEDULER_H_
#define DATACELL_CORE_SCHEDULER_H_

#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "core/factory.h"
#include "util/sync.h"

namespace dc {

/// Per-shard scheduler counters (monitor pane; snapshot via Stats()).
struct SchedulerShardStats {
  /// Transitions fired from this shard's ready queue — by its owning
  /// worker(s) or by a stealing worker (stolen fires count on the shard
  /// the entry was queued on, i.e. the factory's home shard).
  uint64_t fires = 0;
  /// Of those fires, how many returned a non-OK Status.
  uint64_t fire_errors = 0;
  /// Ready-queue pushes: targeted enablements landing on this shard. One
  /// factory is queued at most once, so enqueues <= pulses it received.
  uint64_t enqueues = 0;
  /// Entries taken from this shard's queue by a worker that does not own
  /// the shard (work stealing drained load queued here).
  uint64_t steals = 0;
  /// Pops whose firing probe said not-ready: the pulse that enqueued the
  /// factory did not actually enable it (e.g. a window not yet complete).
  uint64_t spurious_pops = 0;
  /// Ready-queue length at snapshot time.
  uint64_t queue_depth = 0;
  /// Largest queue length observed since construction.
  uint64_t max_queue_depth = 0;
};

/// Scheduler statistics (monitor pane). The scalar counters are sums over
/// `shards`, except `notifications`, which is global.
struct SchedulerStats {
  /// Factory firings actually performed (threaded workers + DrainReady).
  uint64_t fires = 0;
  /// Distinct data-arrival pulses: one per basket append / heartbeat /
  /// seal on a basket with attached arcs, plus one per broadcast
  /// Notify(). NOT per-worker wakeups and NOT per-factory enablements —
  /// a pulse that enables five factories still counts once.
  uint64_t notifications = 0;
  uint64_t fire_errors = 0;
  uint64_t enqueues = 0;
  uint64_t steals = 0;
  uint64_t spurious_pops = 0;
  /// Registered factories and live (basket, factory) arcs — the lifecycle
  /// tests assert both return to zero after query churn.
  uint64_t factories = 0;
  uint64_t arcs = 0;
  std::vector<SchedulerShardStats> shards;
};

/// Petri-net scheduler over the registered factories.
class Scheduler {
 public:
  struct Options {
    int num_workers = 2;
    /// Ready-queue shards. 0 = one shard per worker (minimum 1). Factory
    /// `id` is homed on shard `id % num_shards`.
    int num_shards = 0;
    /// Idle workers steal from the back of other shards' queues. With
    /// stealing off, coverage still holds: shard s is owned (FIFO-popped)
    /// by worker s % num_workers.
    bool work_stealing = true;
  };

  Scheduler();
  explicit Scheduler(Options options);
  ~Scheduler();

  /// Registers the factory (keyed by its id, which must be unique) and
  /// gives it an initial targeted kick — a from-start reader may already
  /// be enabled. Attach arcs before AddFactory so no pulse is missed.
  void AddFactory(FactoryPtr factory);
  /// Unlinks the factory and its arcs; blocks until any in-flight Fire()
  /// completes (including one claimed by a stealing worker) and removes a
  /// still-queued entry from its home shard's ready queue, so a busy or
  /// queued entry is never destroyed mid-flight. Must not be called from
  /// inside a Fire() (e.g. an emitter sink) — that would self-deadlock.
  void RemoveFactory(int factory_id);
  std::vector<FactoryPtr> Factories() const;

  /// Subscribes factory `factory_id` to `basket`'s data-arrival pulses
  /// (the Petri-net arc place -> transition). Registers one pulse
  /// listener per basket, shared by all its arcs; idempotent per
  /// (basket, factory) pair. The basket must outlive this scheduler.
  /// Arcs are detached by RemoveFactory / the destructor.
  void AttachArc(Basket* basket, int factory_id);

  /// Broadcast pulse: enqueues every idle factory (workers drop the
  /// not-ready ones). Registration-order compatibility path — targeted
  /// arc pulses are the hot path. Counts as one notification.
  void Notify();

  /// Targeted kick for one factory (resume, registration). Does not
  /// count as a data-arrival pulse.
  void NotifyFactory(int factory_id);

  /// Launches the worker pool (idempotent).
  void Start();
  /// Stops and joins the workers.
  void Stop();

  /// Manual mode: fires enabled factories until none are ready, in
  /// factory-id order. Returns the number of firings performed.
  int DrainReady();

  /// True if some factory is currently enabled or firing. A queued but
  /// not-enabled entry (a spurious pulse) does not count.
  bool AnyBusyOrReady() const;

  SchedulerStats Stats() const;
  int num_shards() const { return static_cast<int>(shards_.size()); }

 private:
  /// Claim state of one registered factory. An entry is in its home
  /// shard's ready queue iff state == kQueued (exactly once); kRunning
  /// entries are owned by one firing thread; kRemoving blocks re-enqueue
  /// while RemoveFactory unlinks the entry.
  enum class EntryState { kIdle, kQueued, kRunning, kRemoving };

  struct Entry {
    FactoryPtr factory;
    int shard = 0;  // home shard: id % num_shards
    // Guarded by the home shard's lock (shards_[shard]->mu) — an indexed
    // capability Clang TSA cannot express, so the contract is enforced by
    // the rank validator + TSan rather than GUARDED_BY.
    EntryState state = EntryState::kIdle;
  };

  struct Shard {
    mutable Mutex mu{LockRank::kSchedShard};
    CondVar cv;  // pulsed on state changes (remove waiters)
    // Queued factory ids homed on this shard.
    std::deque<int> ready DC_GUARDED_BY(mu);
    SchedulerShardStats stats DC_GUARDED_BY(mu);
  };

  /// Arcs of one basket plus the pulse listener that feeds them.
  struct ArcList {
    std::vector<int> factory_ids;
    int listener_id = -1;
  };

  struct Claimed {
    int id = 0;
    FactoryPtr factory;
  };

  int ShardOf(int factory_id) const;
  /// Data-arrival pulse from `basket` (wired as its listener).
  void Pulse(Basket* basket);
  /// kIdle -> kQueued on the home shard; false if absent or not idle.
  bool EnqueueIfIdleLocked(int factory_id) DC_REQUIRES_SHARED(reg_mu_);
  void WakeWorkers(int newly_queued);
  /// Pops the next queued factory: owned shards FIFO first, then (if
  /// stealing) other shards LIFO. Transitions the entry to kRunning.
  bool ClaimNext(int worker_index, Claimed* out);
  /// Claims a specific factory for DrainReady (kIdle or kQueued ->
  /// kRunning, unlinking a queued entry from its home queue).
  bool TryClaimById(int factory_id);
  /// kRunning -> kIdle, records stats, wakes remove waiters; optionally
  /// re-enqueues the factory if its probe still holds (threaded workers;
  /// DrainReady re-scans instead).
  void CompleteFire(const Claimed& c, bool fired, bool error, bool requeue);
  void WorkerLoop(int worker_index);

  const Options options_;

  /// Registration bookkeeping: the factory registry and the basket arcs.
  /// Hot-path readers take it shared; AddFactory/RemoveFactory/AttachArc
  /// take it unique. Never held across CheckReady()/Fire().
  mutable SharedMutex reg_mu_{LockRank::kSchedRegistry};
  // Id-ordered map so DrainReady fires deterministically.
  std::map<int, std::unique_ptr<Entry>> entries_ DC_GUARDED_BY(reg_mu_);
  std::map<Basket*, ArcList> arcs_ DC_GUARDED_BY(reg_mu_);

  std::vector<std::unique_ptr<Shard>> shards_;  // fixed at construction

  /// Idle-worker parking lot: wake tokens are added per enqueue so a
  /// pulse on any shard wakes a sleeper promptly; a 20ms fallback tick
  /// guards against token loss under races (workers re-scan all shards).
  Mutex idle_mu_{LockRank::kSchedIdle};
  CondVar idle_cv_;
  uint64_t wake_tokens_ DC_GUARDED_BY(idle_mu_) = 0;
  bool running_ DC_GUARDED_BY(idle_mu_) = false;
  bool stop_ DC_GUARDED_BY(idle_mu_) = false;
  /// True while one Stop() is joining workers; a concurrent Stop() waits
  /// for it instead of double-joining the same threads.
  bool stopping_ DC_GUARDED_BY(idle_mu_) = false;

  std::vector<std::thread> workers_ DC_GUARDED_BY(idle_mu_);
  std::atomic<uint64_t> notifications_{0};
};

}  // namespace dc

#endif  // DATACELL_CORE_SCHEDULER_H_
