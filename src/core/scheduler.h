// Copyright 2026 The DataCell Authors.
//
// Scheduler: the Petri-net execution model (paper §3, "Scheduler").
// Baskets are places, factories are transitions; a transition is enabled
// when its firing probe (Factory::CheckReady) holds — i.e. there are
// tuples relevant to the waiting query. Basket appends/heartbeats pulse
// Notify(), which wakes the worker pool to re-evaluate enablement.
//
// Two driving modes:
//  * threaded: Start() launches N workers that fire enabled transitions
//    concurrently (a factory never fires concurrently with itself);
//  * manual:   DrainReady() synchronously fires until quiescence —
//    deterministic driving for tests and single-threaded experiments.

#ifndef DATACELL_CORE_SCHEDULER_H_
#define DATACELL_CORE_SCHEDULER_H_

#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/factory.h"

namespace dc {

/// Scheduler statistics (monitor pane).
struct SchedulerStats {
  uint64_t fires = 0;
  uint64_t notifications = 0;
  uint64_t fire_errors = 0;
};

/// Petri-net scheduler over the registered factories.
class Scheduler {
 public:
  struct Options {
    int num_workers = 2;
  };

  Scheduler();
  explicit Scheduler(Options options);
  ~Scheduler();

  void AddFactory(FactoryPtr factory);
  /// Unlinks the factory; blocks until any in-flight Fire() completes so a
  /// busy entry is never destroyed mid-fire. Must not be called from inside
  /// a Fire() (e.g. an emitter sink) — that would self-deadlock.
  void RemoveFactory(int factory_id);
  std::vector<FactoryPtr> Factories() const;

  /// Data-arrival pulse (wired as a basket listener).
  void Notify();

  /// Launches the worker pool (idempotent).
  void Start();
  /// Stops and joins the workers.
  void Stop();

  /// Manual mode: fires enabled factories until none are ready.
  /// Returns the number of firings performed.
  int DrainReady();

  /// True if some factory is currently enabled or firing.
  bool AnyBusyOrReady() const;

  SchedulerStats Stats() const;

 private:
  struct Entry {
    FactoryPtr factory;
    bool busy = false;
  };

  /// Picks an enabled, non-busy factory and marks it busy; null if none.
  FactoryPtr ClaimReadyLocked();
  void WorkerLoop();

  const Options options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Entry> entries_;
  std::vector<std::thread> workers_;
  bool running_ = false;
  bool stop_ = false;
  size_t rr_cursor_ = 0;
  SchedulerStats stats_;
};

}  // namespace dc

#endif  // DATACELL_CORE_SCHEDULER_H_
