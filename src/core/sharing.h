// Copyright 2026 The DataCell Authors.
//
// Multi-query sharing (docs/SHARING.md): the refcounted shared-node
// registry behind factory-graph common-subexpression elimination. Two
// tiers:
//
//   Tier F (full-factory dedup)  Queries whose full compiled identity
//       matches — prefix + finish signatures, signature parameters,
//       window geometry, execution mode — alias ONE factory; each query
//       keeps a private emitter/sink on the shared output basket. This
//       covers joins (one RollingJoinIndex for M identical texts).
//
//   Tier P (prefix/partial sharing)  Single-windowed-stream incremental
//       queries whose fragment prefixes match share one SharedWindowNode:
//       the node owns the ONLY basket reader and a cache of basic-window
//       partials at a fixed grid granularity; per-query tails
//       (Factory Shape::kSharedTail) merge the grid partials covering
//       their own window extents. Window subsumption: a tail with slide S
//       can ride a node with grid g iff g | S (its window size is then
//       also a multiple of g, since incremental mode requires
//       slide | size) — a finer-slide query's partials serve any coarser
//       compatible window.
//
// Lifecycle is refcount-driven: the engine subscribes a tail to its node
// under Engine::share_mu_ (LockRank::kSharingRegistry) and a node is
// reclaimed only when its last subscriber unsubscribes. The node's own
// mutex ranks kSharedNode (between kFactory and kSchedRegistry), so a
// firing tail — holding its factory lock — may call into the node, which
// reads baskets (kBasket) underneath.

#ifndef DATACELL_CORE_SHARING_H_
#define DATACELL_CORE_SHARING_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/basket.h"
#include "core/window.h"
#include "exec/executor.h"
#include "util/result.h"
#include "util/sync.h"

namespace dc {

/// Immutable shared partials (tails in different factories hold them
/// concurrently while the node evicts).
using PartialPtr = std::shared_ptr<const exec::Partial>;

/// Monitoring snapshot of one shared window node.
struct SharedNodeStats {
  std::string label;           // "<stream>#<node-ordinal>"
  std::string stream;
  int subscribers = 0;
  int64_t grid_slide = 0;      // basic-window granularity (rows or µs)
  bool rows = false;
  uint64_t partial_builds = 0;  // grid partials actually computed
  uint64_t sharing_hits = 0;    // grid partials served from cache
  uint64_t tuples_in = 0;       // stream rows read for builds
  uint64_t cached_partials = 0;
  size_t cached_bytes = 0;
};

/// Engine-wide sharing snapshot (monitor pane, stats assertions).
struct SharingStats {
  bool enabled = false;
  uint64_t shared_nodes = 0;      // live tier-P nodes
  uint64_t shared_factories = 0;  // live tier-F factories with >1 query
  /// full_hits + prefix_hits + every node's cache hits: each unit of work
  /// (a factory registration or a grid partial) served from shared state
  /// instead of being rebuilt.
  uint64_t sharing_hits = 0;
  uint64_t full_hits = 0;    // tier-F: queries that aliased a factory
  uint64_t prefix_hits = 0;  // tier-P: queries that joined a live node
  std::vector<SharedNodeStats> nodes;
};

/// One shared basic-window partial store over one stream basket. The node
/// owns the basket reader; subscribed tails request grid partial ranges
/// (EnsureRange) and release consumed prefixes (Release) — the reader
/// advances, and cached partials evict, at the minimum released mark
/// across subscribers, so the slowest tail bounds retention exactly like
/// a private factory would.
class SharedWindowNode {
 public:
  /// Registers a from-start reader on `basket`; window coordinates of the
  /// grid are relative to the then-current cursor (ROWS) or absolute
  /// event time (RANGE). `executor` is any subscriber's executor — all
  /// subscribers share the fragment prefix, so ComputePartial agrees.
  SharedWindowNode(std::string label,
                   std::shared_ptr<Basket> basket,
                   std::shared_ptr<exec::QueryExecutor> executor,
                   bool rows_mode, int64_t grid_slide);
  ~SharedWindowNode();

  SharedWindowNode(const SharedWindowNode&) = delete;
  SharedWindowNode& operator=(const SharedWindowNode&) = delete;

  const std::string& label() const { return label_; }
  Basket* basket() const { return basket_.get(); }
  bool rows_mode() const { return rows_mode_; }
  int64_t grid_slide() const { return grid_slide_; }
  /// Basket cursor at node creation; ROWS tails anchor their window
  /// coordinates here (all subscribers share one origin).
  uint64_t origin_seq() const { return origin_seq_; }

  /// True iff a window with this slide can be served from this node's
  /// grid (window subsumption; slide | size is the caller's invariant).
  bool Compatible(bool rows, int64_t slide) const {
    return rows == rows_mode_ && slide % grid_slide_ == 0;
  }

  /// Recovery (docs/DURABILITY.md): re-anchors the grid at the node's
  /// original origin. Valid only on a fresh node (nothing built or
  /// cached) — Engine recovery applies it right after recreating the
  /// node, before any tail fires.
  Status RestoreOrigin(uint64_t origin_seq);

  /// Adds a subscriber; returns its id (pass to Release/Unsubscribe).
  int Subscribe();
  /// Drops a subscriber; re-evaluates eviction for the remaining ones.
  void Unsubscribe(int sub_id);
  int subscribers() const;

  /// Appends to `out` the grid partials covering window coordinates
  /// [lo, hi), computing and caching the missing ones. `built`/`hits`/
  /// `rows_in` are incremented (not reset) with this call's counts so the
  /// firing tail can fold them into its own FactoryStats.
  Status EnsureRange(int64_t lo, int64_t hi, std::vector<PartialPtr>* out,
                     uint64_t* built, uint64_t* hits, uint64_t* rows_in);

  /// Subscriber `sub_id` no longer needs grid windows below
  /// `first_needed_bw`; cached partials below the minimum mark across all
  /// subscribers evict and the basket reader advances accordingly. A
  /// subscriber that never released pins everything (new tails see the
  /// full retained window).
  void Release(int sub_id, int64_t first_needed_bw);

  SharedNodeStats Stats() const;

 private:
  /// Grid basic windows are tumbling: slide == size == grid_slide_.
  plan::WindowSpec GridSpec() const {
    return plan::WindowSpec{rows_mode_, grid_slide_, grid_slide_};
  }

  /// Reads the stream rows covering [lo, hi) in window coordinates
  /// (Factory::ReadStreamExtent's conventions: ROWS offsets are relative
  /// to origin_seq_ and clamp below it; RANGE bounds binary-search event
  /// time and clamp to origin_seq_).
  Result<exec::StageInput> ReadExtent(int64_t lo, int64_t hi) const;

  /// Evicts cache entries and advances the basket reader up to the
  /// minimum released mark; a no-op while any subscriber is unreleased.
  void EvictLocked() DC_REQUIRES(mu_);

  const std::string label_;
  const std::shared_ptr<Basket> basket_;
  const std::shared_ptr<exec::QueryExecutor> executor_;
  const bool rows_mode_;
  const int64_t grid_slide_;
  int reader_id_ = -1;  // immutable after construction
  /// Immutable after construction, except for a single RestoreOrigin
  /// call during recovery (before any tail fires).
  uint64_t origin_seq_ = 0;

  /// Sentinel release mark: subscriber has not released anything yet.
  static constexpr int64_t kUnreleased = INT64_MIN;

  mutable Mutex mu_{LockRank::kSharedNode};
  std::map<int64_t, PartialPtr> cache_ DC_GUARDED_BY(mu_);
  std::map<int, int64_t> subs_ DC_GUARDED_BY(mu_);  // sub id -> release mark
  int next_sub_ DC_GUARDED_BY(mu_) = 1;
  uint64_t builds_ DC_GUARDED_BY(mu_) = 0;
  uint64_t hits_ DC_GUARDED_BY(mu_) = 0;
  uint64_t tuples_in_ DC_GUARDED_BY(mu_) = 0;
};

using SharedWindowNodePtr = std::shared_ptr<SharedWindowNode>;

}  // namespace dc

#endif  // DATACELL_CORE_SHARING_H_
