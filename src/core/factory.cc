#include "core/factory.h"

#include <algorithm>

#include "bat/ops_join.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace dc {

const char* ExecModeName(ExecMode m) {
  return m == ExecMode::kFullReeval ? "full" : "incremental";
}

Factory::Factory(int id, std::string name,
                 std::shared_ptr<exec::QueryExecutor> executor, ExecMode mode,
                 std::vector<FactoryInput> inputs,
                 std::shared_ptr<Basket> output)
    : id_(id),
      name_(std::move(name)),
      executor_(std::move(executor)),
      mode_(mode),
      inputs_(std::move(inputs)),
      output_(std::move(output)) {}

Factory::~Factory() {
  for (const FactoryInput& in : inputs_) {
    if (in.is_stream && in.basket != nullptr && in.reader_id >= 0) {
      in.basket->UnregisterReader(in.reader_id);
    }
  }
}

Result<std::shared_ptr<Factory>> Factory::Create(
    int id, std::string name, std::shared_ptr<exec::QueryExecutor> executor,
    ExecMode mode, std::vector<FactoryInput> inputs,
    std::shared_ptr<Basket> output) {
  auto f = std::shared_ptr<Factory>(
      new Factory(id, std::move(name), std::move(executor), mode,
                  std::move(inputs), std::move(output)));
  DC_RETURN_NOT_OK(f->Validate());
  return f;
}

Status Factory::Validate() {
  const plan::CompiledQuery& cq = executor_->compiled();
  if (inputs_.size() != cq.bound.rels.size()) {
    return Status::InvalidArgument("factory inputs do not match plan");
  }
  origin_seq_.assign(inputs_.size(), 0);
  int num_streams = 0;
  int num_windowed = 0;
  for (size_t r = 0; r < inputs_.size(); ++r) {
    FactoryInput& in = inputs_[r];
    if (in.is_stream) {
      if (in.basket == nullptr || in.reader_id < 0) {
        return Status::InvalidArgument("stream input missing basket/reader");
      }
      if (num_streams >= 2) {
        return Status::NotImplemented("more than two stream inputs");
      }
      stream_rels_[num_streams++] = static_cast<int>(r);
      origin_seq_[r] = in.basket->ReaderCursor(in.reader_id);
      if (in.window.has_value()) ++num_windowed;
    } else {
      if (in.table == nullptr) {
        return Status::InvalidArgument("table input missing table");
      }
      if (table_rel_ >= 0) {
        return Status::NotImplemented("more than one table input");
      }
      table_rel_ = static_cast<int>(r);
    }
  }
  if (num_streams == 0) {
    return Status::InvalidArgument(
        "continuous query requires at least one stream input");
  }
  if (num_streams == 2) {
    const auto& wl = inputs_[stream_rels_[0]].window;
    const auto& wr = inputs_[stream_rels_[1]].window;
    if (!wl.has_value() || !wr.has_value() || wl->rows || wr->rows) {
      return Status::NotImplemented(
          "stream-stream joins require RANGE windows on both streams");
    }
    if (wl->slide != wr->slide) {
      return Status::NotImplemented(
          "stream-stream joins require equal window slides");
    }
    shape_ = Shape::kDualWindow;
  } else if (num_windowed == 1) {
    shape_ = Shape::kSingleWindow;
  } else {
    shape_ = Shape::kPerBatch;
    batch_cursor_ = origin_seq_[stream_rels_[0]];
  }

  // Decide whether incremental processing is applicable. The rule itself
  // (plan::IncrementalEligible) is shared with the compiler's EXPLAIN
  // classification; it is evaluated here over the factory's actual input
  // windows, which tests may inject independently of the SQL.
  incremental_active_ = false;
  if (mode_ == ExecMode::kIncremental && shape_ != Shape::kPerBatch) {
    std::vector<const plan::WindowSpec*> windows;
    for (int s = 0; s < 2; ++s) {
      const int rel = stream_rels_[s];
      if (rel < 0) continue;
      windows.push_back(inputs_[rel].window.has_value()
                            ? &*inputs_[rel].window
                            : nullptr);
    }
    incremental_active_ = plan::IncrementalEligible(windows);
    stats_.fell_back_to_full = !incremental_active_;
  }
  return Status::OK();
}

void Factory::Pause() {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = true;
  stats_.paused = true;
}

void Factory::Resume() {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = false;
  stats_.paused = false;
}

bool Factory::paused() const {
  std::lock_guard<std::mutex> lock(mu_);
  return paused_;
}

std::vector<Basket*> Factory::InputBaskets() const {
  std::vector<Basket*> out;
  for (const FactoryInput& in : inputs_) {
    if (!in.is_stream || in.basket == nullptr) continue;
    if (std::find(out.begin(), out.end(), in.basket) == out.end()) {
      out.push_back(in.basket);
    }
  }
  return out;
}

FactoryStats Factory::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  FactoryStats s = stats_;
  s.cached_partials = partials_.size();
  size_t bytes = 0;
  for (const auto& [k, p] : partials_) bytes += p.MemoryBytes();
  for (const auto& [k, c] : compact_) {
    for (const BatPtr& col : c.cols) bytes += col->MemoryBytes();
  }
  s.cached_bytes = bytes;
  return s;
}

bool Factory::CheckReady() const {
  std::lock_guard<std::mutex> lock(mu_);
  return CheckReadyLocked();
}

bool Factory::EnsureRangeOrigin(int rel, int64_t* m) const {
  if (next_emission_.has_value()) {
    *m = *next_emission_;
    return true;
  }
  const FactoryInput& in = inputs_[rel];
  const BasketView view = in.basket->Read(origin_seq_[rel], 1);
  if (view.rows == 0) return false;
  const WindowMath wm(*in.window);
  const int64_t ts0 =
      view.cols[in.basket->ts_col()]->I64Data()[0];
  *m = wm.FirstRangeEmission(ts0);
  return true;
}

bool Factory::CheckReadyLocked() const {
  if (paused_ || failed_) return false;
  switch (shape_) {
    case Shape::kPerBatch: {
      const int rel = stream_rels_[0];
      return inputs_[rel].basket->HighSeq() > batch_cursor_;
    }
    case Shape::kSingleWindow: {
      const int rel = stream_rels_[0];
      const FactoryInput& in = inputs_[rel];
      const WindowMath wm(*in.window);
      if (in.window->rows) {
        // A sealed stream can never complete another ROWS window; the
        // factory goes dormant on the trailing partial window.
        const int64_t k = next_emission_.value_or(0);
        const uint64_t high = in.basket->HighSeq();
        return high >= origin_seq_[rel] &&
               wm.RowsReady(k, high - origin_seq_[rel]);
      }
      int64_t m = 0;
      if (!EnsureRangeOrigin(rel, &m)) return false;
      next_emission_ = m;
      return RangeSideReady(rel, wm, m);
    }
    case Shape::kDualWindow: {
      const int l = stream_rels_[0];
      const int r = stream_rels_[1];
      if (!next_emission_.has_value()) {
        // Boundaries are shared (equal slide); start at the later of the
        // two streams' first windows so both sides have coverage.
        int64_t ml = 0, mr = 0;
        if (!EnsureRangeOrigin(l, &ml)) return false;
        if (!EnsureRangeOrigin(r, &mr)) return false;
        next_emission_ = std::max(ml, mr);
      }
      const int64_t m = *next_emission_;
      return RangeSideReady(l, WindowMath(*inputs_[l].window), m) &&
             RangeSideReady(r, WindowMath(*inputs_[r].window), m);
    }
  }
  return false;
}

bool Factory::RangeSideReady(int rel, const WindowMath& wm, int64_t m) const {
  const Basket* b = inputs_[rel].basket;
  const Micros watermark = b->EventWatermark();
  if (wm.RangeReady(m, watermark)) return true;
  // A sealed stream flushes every window that could still contain data,
  // then the factory goes dormant for that side.
  return b->sealed() && wm.RangeExtent(m).first <= watermark;
}

Result<exec::StageInput> Factory::ReadStreamExtent(int rel, bool rows_mode,
                                                   int64_t lo,
                                                   int64_t hi) const {
  const FactoryInput& in = inputs_[rel];
  BasketView view;
  if (rows_mode) {
    const int64_t origin = static_cast<int64_t>(origin_seq_[rel]);
    const int64_t abs_lo = std::max<int64_t>(origin + lo, origin);
    const int64_t abs_hi = std::max<int64_t>(origin + hi, abs_lo);
    view = in.basket->Read(static_cast<uint64_t>(abs_lo),
                           static_cast<uint64_t>(abs_hi - abs_lo));
  } else {
    DC_ASSIGN_OR_RETURN(auto range, in.basket->SeqRangeForTs(lo, hi));
    uint64_t seq_lo = std::max(range.first, origin_seq_[rel]);
    uint64_t seq_hi = std::max(range.second, seq_lo);
    view = in.basket->Read(seq_lo, seq_hi - seq_lo);
  }
  return exec::StageInput{std::move(view.cols), view.rows};
}

exec::StageInput Factory::TableInput(int rel) const {
  const TableVersionPtr snap = inputs_[rel].table->Snapshot();
  return exec::StageInput{snap->cols, snap->NumRows()};
}

Status Factory::EmitResult(const ColumnSet& result) {
  // Zero-row results are appended too: the basket records their batch
  // boundary, so the emitter delivers the empty result set and `emissions`
  // stays equal to emitter-delivered emissions.
  DC_RETURN_NOT_OK(output_->Append(result.cols));
  stats_.tuples_out += result.NumRows();
  stats_.emissions++;
  if (result.NumRows() == 0) stats_.empty_emissions++;
  return Status::OK();
}

Status Factory::Fire() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!CheckReadyLocked()) return Status::OK();
  Stopwatch watch;
  Status st = FireLocked();
  const Micros elapsed = watch.ElapsedMicros();
  stats_.invocations++;
  stats_.total_exec_micros += elapsed;
  stats_.last_exec_micros = elapsed;
  if (!st.ok()) {
    failed_ = true;
    last_error_ = st.ToString();
    stats_.last_error = last_error_;
    DC_LOG(kError) << "factory " << name_ << " failed: " << st.ToString();
  }
  return st;
}

Status Factory::FireLocked() {
  switch (shape_) {
    case Shape::kPerBatch:
      return FirePerBatch();
    case Shape::kSingleWindow:
      return FireSingleWindow();
    case Shape::kDualWindow:
      return FireDualWindow();
  }
  return Status::Internal("bad shape");
}

Status Factory::FirePerBatch() {
  const int rel = stream_rels_[0];
  const FactoryInput& in = inputs_[rel];
  const uint64_t high = in.basket->HighSeq();
  if (high <= batch_cursor_) return Status::OK();
  BasketView view = in.basket->Read(batch_cursor_, high - batch_cursor_);
  std::vector<exec::StageInput> raw(inputs_.size());
  raw[rel] = exec::StageInput{std::move(view.cols), view.rows};
  if (table_rel_ >= 0) raw[table_rel_] = TableInput(table_rel_);
  stats_.tuples_in += raw[rel].rows;
  DC_ASSIGN_OR_RETURN(ColumnSet result, executor_->ExecuteFull(raw));
  DC_RETURN_NOT_OK(EmitResult(result));
  batch_cursor_ = view.first_seq + view.rows;
  in.basket->AdvanceReader(in.reader_id, batch_cursor_);
  return Status::OK();
}

Result<const exec::StageInput*> Factory::EnsureCompact(int rel,
                                                       bool rows_mode,
                                                       int64_t bw) {
  const auto key = std::make_pair(rel, bw);
  auto it = compact_.find(key);
  if (it != compact_.end()) return &it->second;
  const WindowMath wm(*inputs_[rel].window);
  const auto [lo, hi] = wm.BasicWindowExtent(bw);
  DC_ASSIGN_OR_RETURN(exec::StageInput raw,
                      ReadStreamExtent(rel, rows_mode, lo, hi));
  stats_.tuples_in += raw.rows;
  DC_ASSIGN_OR_RETURN(exec::StageOutput pre, executor_->RunPrejoin(rel, raw));
  auto [pos, inserted] = compact_.emplace(
      key, exec::StageInput{std::move(pre.cols), pre.rows});
  return &pos->second;
}

Result<const exec::Partial*> Factory::EnsureSinglePartial(
    int64_t bw, bool rows_mode, uint64_t table_version) {
  const int rel = stream_rels_[0];
  const PartialKey key{bw, 0};
  auto it = partials_.find(key);
  if (it != partials_.end() &&
      (table_rel_ < 0 || partial_versions_[key] == table_version)) {
    return &it->second;
  }
  stats_.fragments_computed++;
  if (table_rel_ < 0) {
    // No second relation: run the whole fragment pipeline directly.
    const WindowMath wm(*inputs_[rel].window);
    const auto [lo, hi] = wm.BasicWindowExtent(bw);
    std::vector<exec::StageInput> raw(inputs_.size());
    DC_ASSIGN_OR_RETURN(raw[rel], ReadStreamExtent(rel, rows_mode, lo, hi));
    stats_.tuples_in += raw[rel].rows;
    DC_ASSIGN_OR_RETURN(exec::Partial p, executor_->ComputePartial(raw));
    auto [pos, ignored] = partials_.insert_or_assign(key, std::move(p));
    return &pos->second;
  }
  // Stream-table: reuse the cached stream-side prejoin fragment; re-run the
  // (cheap) postjoin against the current table version.
  DC_ASSIGN_OR_RETURN(const exec::StageInput* sc,
                      EnsureCompact(rel, rows_mode, bw));
  if (!table_compact_.has_value() ||
      table_compact_version_ != table_version) {
    DC_ASSIGN_OR_RETURN(exec::StageOutput pre,
                        executor_->RunPrejoin(table_rel_,
                                              TableInput(table_rel_)));
    table_compact_ = exec::StageInput{std::move(pre.cols), pre.rows};
    table_compact_version_ = table_version;
  }
  std::vector<exec::StageInput> compact(inputs_.size());
  compact[rel] = *sc;
  compact[table_rel_] = *table_compact_;
  DC_ASSIGN_OR_RETURN(exec::StageOutput frag,
                      executor_->RunPostjoin(compact));
  DC_ASSIGN_OR_RETURN(exec::Partial p, executor_->MakePartial(frag));
  auto [pos, ignored] = partials_.insert_or_assign(key, std::move(p));
  partial_versions_[key] = table_version;
  return &pos->second;
}

Status Factory::FireSingleWindow() {
  const int rel = stream_rels_[0];
  const FactoryInput& in = inputs_[rel];
  const WindowMath wm(*in.window);
  const bool rows_mode = in.window->rows;
  const int64_t k = next_emission_.value_or(0);

  int64_t ext_lo, ext_hi;  // window extent in window coordinates
  if (rows_mode) {
    ext_lo = wm.RowsWindowStart(k);
    ext_hi = wm.RowsWindowEnd(k);
  } else {
    std::tie(ext_lo, ext_hi) = wm.RangeExtent(k);
  }

  if (!incremental_active_) {
    std::vector<exec::StageInput> raw(inputs_.size());
    DC_ASSIGN_OR_RETURN(raw[rel],
                        ReadStreamExtent(rel, rows_mode, ext_lo, ext_hi));
    if (table_rel_ >= 0) raw[table_rel_] = TableInput(table_rel_);
    stats_.tuples_in += raw[rel].rows;
    DC_ASSIGN_OR_RETURN(ColumnSet result, executor_->ExecuteFull(raw));
    DC_RETURN_NOT_OK(EmitResult(result));
  } else {
    const uint64_t version =
        table_rel_ >= 0 ? inputs_[table_rel_].table->Snapshot()->version : 0;
    const auto [first, last] = rows_mode ? wm.BasicWindowsForRows(k)
                                         : wm.BasicWindowsForRange(k);
    std::vector<const exec::Partial*> ps;
    for (int64_t j = first; j < last; ++j) {
      DC_ASSIGN_OR_RETURN(const exec::Partial* p,
                          EnsureSinglePartial(j, rows_mode, version));
      ps.push_back(p);
    }
    DC_ASSIGN_OR_RETURN(ColumnSet result, executor_->Finish(ps));
    DC_RETURN_NOT_OK(EmitResult(result));
    // Evict state that the next emission can no longer use.
    const int64_t keep_from = first + 1;
    std::erase_if(partials_,
                  [&](const auto& kv) { return kv.first.a < keep_from; });
    std::erase_if(partial_versions_,
                  [&](const auto& kv) { return kv.first.a < keep_from; });
    std::erase_if(compact_,
                  [&](const auto& kv) { return kv.first.second < keep_from; });
  }

  // Release consumed tuples: everything before the next window's start.
  if (rows_mode) {
    const uint64_t next_start =
        origin_seq_[rel] + static_cast<uint64_t>(wm.RowsWindowStart(k + 1));
    in.basket->AdvanceReader(in.reader_id, next_start);
  } else {
    const auto [next_lo, next_hi] = wm.RangeExtent(k + 1);
    DC_ASSIGN_OR_RETURN(auto range,
                        in.basket->SeqRangeForTs(next_lo, next_lo + 1));
    in.basket->AdvanceReader(in.reader_id, range.first);
  }
  next_emission_ = k + 1;
  return Status::OK();
}

Status Factory::FireDualWindow() {
  const int l = stream_rels_[0];
  const int r = stream_rels_[1];
  const WindowMath wl(*inputs_[l].window);
  const WindowMath wr(*inputs_[r].window);
  const int64_t m = *next_emission_;

  if (!incremental_active_ || !executor_->HasDeltaPostjoin()) {
    std::vector<exec::StageInput> raw(inputs_.size());
    const auto [llo, lhi] = wl.RangeExtent(m);
    const auto [rlo, rhi] = wr.RangeExtent(m);
    DC_ASSIGN_OR_RETURN(raw[l], ReadStreamExtent(l, false, llo, lhi));
    DC_ASSIGN_OR_RETURN(raw[r], ReadStreamExtent(r, false, rlo, rhi));
    stats_.tuples_in += raw[l].rows + raw[r].rows;
    DC_ASSIGN_OR_RETURN(ColumnSet result, executor_->ExecuteFull(raw));
    DC_RETURN_NOT_OK(EmitResult(result));
  } else {
    DC_RETURN_NOT_OK(FireDualWindowDelta(m, wl, wr));
  }

  for (int s = 0; s < 2; ++s) {
    const int rel = stream_rels_[s];
    const WindowMath& wm = s == 0 ? wl : wr;
    const auto [next_lo, next_hi] = wm.RangeExtent(m + 1);
    DC_ASSIGN_OR_RETURN(
        auto range, inputs_[rel].basket->SeqRangeForTs(next_lo, next_lo + 1));
    inputs_[rel].basket->AdvanceReader(inputs_[rel].reader_id, range.first);
  }
  next_emission_ = m + 1;
  return Status::OK();
}

Result<exec::StageInput> Factory::AssembleDeltaSide(int rel, int64_t first,
                                                    int64_t last,
                                                    int64_t new_from) {
  exec::StageInput out;
  auto ord = Bat::MakeEmpty(TypeId::kI64);
  for (int64_t j = first; j < last; ++j) {
    DC_ASSIGN_OR_RETURN(const exec::StageInput* c,
                        EnsureCompact(rel, /*rows_mode=*/false, j));
    if (out.cols.empty()) {
      for (const BatPtr& col : c->cols) {
        out.cols.push_back(Bat::MakeEmpty(col->type()));
      }
    }
    for (size_t k = 0; k < out.cols.size(); ++k) {
      out.cols[k]->AppendRange(*c->cols[k], 0, c->cols[k]->size());
    }
    for (uint64_t i = 0; i < c->rows; ++i) ord->AppendI64(j);
    out.rows += c->rows;
    if (j < new_from) out.delta_old_rows += c->rows;
  }
  out.cols.push_back(std::move(ord));
  return out;
}

Status Factory::FireDualWindowDelta(int64_t m, const WindowMath& wl,
                                    const WindowMath& wr) {
  const int l = stream_rels_[0];
  const int r = stream_rels_[1];
  const int64_t nl = wl.NumBasicWindows();
  const int64_t nr = wr.NumBasicWindows();
  const auto [lfirst, llast] = wl.BasicWindowsForRange(m);  // llast == m
  const auto [rfirst, rlast] = wr.BasicWindowsForRange(m);

  // Delta-join only the newest basic window (m-1 on both sides; the whole
  // window on the very first emission) against the retained portion.
  const int64_t new_from = delta_seeded_ ? m - 1
                                         : std::min(lfirst, rfirst);
  std::vector<exec::StageInput> compact(inputs_.size());
  DC_ASSIGN_OR_RETURN(compact[l], AssembleDeltaSide(l, lfirst, m, new_from));
  DC_ASSIGN_OR_RETURN(compact[r], AssembleDeltaSide(r, rfirst, m, new_from));
  DC_ASSIGN_OR_RETURN(exec::DeltaFrag df,
                      executor_->RunPostjoinDelta(compact));
  delta_seeded_ = true;
  stats_.fragments_computed++;
  stats_.delta_pairs += df.frag.rows;

  // Bucket the new pairs by the emission at which they leave the window:
  // pair (jl, jr) is live while m' <= min(jl + nl, jr + nr). Partials are
  // keyed {expiry, created}, so expiry evicts whole buckets — no retained
  // row is ever rescanned or filtered.
  std::map<int64_t, std::vector<Oid>> buckets;
  for (uint64_t i = 0; i < df.frag.rows; ++i) {
    const int64_t expiry =
        std::min(df.left_bw[i] + nl, df.right_bw[i] + nr) + 1;
    buckets[expiry].push_back(static_cast<Oid>(i));
  }
  for (const auto& [expiry, rows] : buckets) {
    exec::StageOutput bucket;
    bucket.rows = rows.size();
    for (const BatPtr& col : df.frag.cols) {
      bucket.cols.push_back(ops::FetchOids(*col, rows));
    }
    DC_ASSIGN_OR_RETURN(exec::Partial p, executor_->MakePartial(bucket));
    partials_.insert_or_assign(PartialKey{expiry, m}, std::move(p));
  }

  // Merge every live partial (map order: expiry, then creation — a
  // deterministic order; emission row order beyond ORDER BY is
  // unspecified, see docs/INCREMENTAL.md).
  std::vector<const exec::Partial*> ps;
  ps.reserve(partials_.size());
  for (const auto& [key, p] : partials_) ps.push_back(&p);
  DC_ASSIGN_OR_RETURN(ColumnSet result, executor_->Finish(ps));
  DC_RETURN_NOT_OK(EmitResult(result));

  // Evict pairs gone by the next emission, and compacts behind the next
  // window starts.
  std::erase_if(partials_,
                [&](const auto& kv) { return kv.first.a <= m + 1; });
  std::erase_if(compact_, [&](const auto& kv) {
    return kv.first.first == l ? kv.first.second < lfirst + 1
                               : kv.first.second < rfirst + 1;
  });
  return Status::OK();
}

}  // namespace dc
