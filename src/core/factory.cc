#include "core/factory.h"

#include <algorithm>

#include "bat/ops_join.h"
#include "monitor/trace.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace dc {

const char* ExecModeName(ExecMode m) {
  return m == ExecMode::kFullReeval ? "full" : "incremental";
}

Factory::Factory(int id, std::string name,
                 std::shared_ptr<exec::QueryExecutor> executor, ExecMode mode,
                 std::vector<FactoryInput> inputs,
                 std::shared_ptr<Basket> output, SharedWindowNodePtr node,
                 int sub_id)
    : id_(id),
      name_(std::move(name)),
      executor_(std::move(executor)),
      mode_(mode),
      inputs_(std::move(inputs)),
      output_(std::move(output)),
      node_(std::move(node)),
      node_sub_(sub_id) {}

Factory::~Factory() {
  for (const FactoryInput& in : inputs_) {
    if (in.is_stream && in.basket != nullptr && in.reader_id >= 0) {
      in.basket->UnregisterReader(in.reader_id);
    }
  }
}

Result<std::shared_ptr<Factory>> Factory::Create(
    int id, std::string name, std::shared_ptr<exec::QueryExecutor> executor,
    ExecMode mode, std::vector<FactoryInput> inputs,
    std::shared_ptr<Basket> output) {
  auto f = std::shared_ptr<Factory>(
      new Factory(id, std::move(name), std::move(executor), mode,
                  std::move(inputs), std::move(output)));
  {
    // Pre-publication, so uncontended — taken for the thread-safety
    // analysis, which checks Validate's guarded writes against mu_.
    MutexLock lock(f->mu_);
    DC_RETURN_NOT_OK(f->Validate());
  }
  return f;
}

Result<std::shared_ptr<Factory>> Factory::CreateSharedTail(
    int id, std::string name, std::shared_ptr<exec::QueryExecutor> executor,
    std::vector<FactoryInput> inputs, std::shared_ptr<Basket> output,
    SharedWindowNodePtr node, int sub_id) {
  if (node == nullptr || sub_id < 0) {
    return Status::InvalidArgument("shared tail requires a node subscription");
  }
  auto f = std::shared_ptr<Factory>(new Factory(
      id, std::move(name), std::move(executor), ExecMode::kIncremental,
      std::move(inputs), std::move(output), std::move(node), sub_id));
  {
    MutexLock lock(f->mu_);
    DC_RETURN_NOT_OK(f->Validate());
  }
  return f;
}

Status Factory::Validate() {
  const plan::CompiledQuery& cq = executor_->compiled();
  if (inputs_.size() != cq.bound.rels.size()) {
    return Status::InvalidArgument("factory inputs do not match plan");
  }
  origin_seq_.assign(inputs_.size(), 0);
  int num_streams = 0;
  int num_windowed = 0;
  for (size_t r = 0; r < inputs_.size(); ++r) {
    FactoryInput& in = inputs_[r];
    if (in.is_stream) {
      // Shared tails carry no reader of their own: the node owns the one
      // reader, and window coordinates anchor at the node's origin.
      if (in.basket == nullptr ||
          (in.reader_id < 0 && node_ == nullptr)) {
        return Status::InvalidArgument("stream input missing basket/reader");
      }
      if (num_streams >= 2) {
        return Status::NotImplemented("more than two stream inputs");
      }
      stream_rels_[num_streams++] = static_cast<int>(r);
      origin_seq_[r] = node_ != nullptr
                           ? node_->origin_seq()
                           : in.basket->ReaderCursor(in.reader_id);
      if (in.window.has_value()) ++num_windowed;
    } else {
      if (in.table == nullptr) {
        return Status::InvalidArgument("table input missing table");
      }
      if (table_rel_ >= 0) {
        return Status::NotImplemented("more than one table input");
      }
      table_rel_ = static_cast<int>(r);
    }
  }
  if (num_streams == 0) {
    return Status::InvalidArgument(
        "continuous query requires at least one stream input");
  }
  if (num_streams == 2) {
    const auto& wl = inputs_[stream_rels_[0]].window;
    const auto& wr = inputs_[stream_rels_[1]].window;
    if (!wl.has_value() || !wr.has_value() || wl->rows || wr->rows) {
      return Status::NotImplemented(
          "stream-stream joins require RANGE windows on both streams");
    }
    if (wl->slide != wr->slide) {
      return Status::NotImplemented(
          "stream-stream joins require equal window slides");
    }
    shape_ = Shape::kDualWindow;
  } else if (num_windowed == 1) {
    shape_ = Shape::kSingleWindow;
  } else {
    shape_ = Shape::kPerBatch;
    batch_cursor_ = origin_seq_[stream_rels_[0]];
  }

  if (node_ != nullptr) {
    // Shared tail: exactly one windowed stream on the node's basket, with
    // a divisible window the node's grid can serve (docs/SHARING.md).
    const int rel = stream_rels_[0];
    const auto& w = inputs_[rel].window;
    if (shape_ != Shape::kSingleWindow || num_streams != 1 ||
        table_rel_ >= 0 || !w.has_value()) {
      return Status::InvalidArgument(
          "shared tail requires exactly one windowed stream input");
    }
    if (inputs_[rel].basket != node_->basket()) {
      return Status::InvalidArgument(
          "shared tail input basket does not match its node");
    }
    if (w->size % w->slide != 0 ||
        !node_->Compatible(w->rows, w->slide)) {
      return Status::InvalidArgument(
          "shared tail window is not grid-compatible with its node");
    }
    shape_ = Shape::kSharedTail;
    incremental_active_ = true;
    return Status::OK();
  }

  // Decide whether incremental processing is applicable. The rule itself
  // (plan::IncrementalEligible) is shared with the compiler's EXPLAIN
  // classification; it is evaluated here over the factory's actual input
  // windows, which tests may inject independently of the SQL.
  incremental_active_ = false;
  if (mode_ == ExecMode::kIncremental && shape_ != Shape::kPerBatch) {
    std::vector<const plan::WindowSpec*> windows;
    for (int s = 0; s < 2; ++s) {
      const int rel = stream_rels_[s];
      if (rel < 0) continue;
      windows.push_back(inputs_[rel].window.has_value()
                            ? &*inputs_[rel].window
                            : nullptr);
    }
    incremental_active_ = plan::IncrementalEligible(windows);
    stats_.fell_back_to_full = !incremental_active_;
  }
  if (shape_ == Shape::kDualWindow) {
    // Local-aggregate numbering for the pre-aggregated delta path: each
    // side's DeltaGroups carries states only for the aggregates whose
    // argument lives on that side, in query order.
    const auto& pa = cq.delta_pre_agg;
    preagg_local_.assign(pa.agg_side.size(), -1);
    int next_local[2] = {0, 0};
    for (size_t i = 0; i < pa.agg_side.size(); ++i) {
      if (pa.agg_side[i] >= 0) {
        preagg_local_[i] = next_local[pa.agg_side[i]]++;
      }
    }
  }
  return Status::OK();
}

void Factory::Pause() {
  MutexLock lock(mu_);
  paused_ = true;
  stats_.paused = true;
}

void Factory::Resume() {
  MutexLock lock(mu_);
  paused_ = false;
  stats_.paused = false;
}

bool Factory::paused() const {
  MutexLock lock(mu_);
  return paused_;
}

std::vector<Basket*> Factory::InputBaskets() const {
  std::vector<Basket*> out;
  for (const FactoryInput& in : inputs_) {
    if (!in.is_stream || in.basket == nullptr) continue;
    if (std::find(out.begin(), out.end(), in.basket) == out.end()) {
      out.push_back(in.basket);
    }
  }
  return out;
}

FactoryStats Factory::Stats() const {
  MutexLock lock(mu_);
  FactoryStats s = stats_;
  s.cached_partials = partials_.size();
  size_t bytes = 0;
  for (const auto& [k, p] : partials_) bytes += p.MemoryBytes();
  for (const auto& [k, c] : compact_) {
    for (const BatPtr& col : c.cols) bytes += col->MemoryBytes();
  }
  // Rolling delta-join state (one of the two sets is in use, the other
  // stays empty — row path vs pre-aggregated path).
  for (int side = 0; side < 2; ++side) {
    const exec::DeltaSideState& ds = delta_side_[side];
    const exec::DeltaGroupTrack& gt = delta_groups_[side];
    s.retained_rows += ds.live_rows() + gt.live_groups();
    s.retained_dead_rows += ds.dead + gt.dead;
    s.index_entries += ds.index.live_entries() + gt.index.live_entries();
    bytes += ds.MemoryBytes() + gt.MemoryBytes();
  }
  s.cached_bytes = bytes;
  return s;
}

storage::FactoryProgress Factory::SnapshotProgress() const {
  MutexLock lock(mu_);
  storage::FactoryProgress p;
  p.origins = origin_seq_;
  p.has_next_emission = next_emission_.has_value();
  p.next_emission = next_emission_.value_or(0);
  p.batch_cursor = batch_cursor_;
  p.emissions = stats_.emissions;
  return p;
}

Status Factory::RestoreProgress(const storage::FactoryProgress& p) {
  MutexLock lock(mu_);
  if (stats_.invocations > 0) {
    return Status::InvalidArgument(StrFormat(
        "factory %s: RestoreProgress after it already fired", name_.c_str()));
  }
  if (p.origins.size() != origin_seq_.size()) {
    return Status::InvalidArgument(
        StrFormat("factory %s: progress has %zu origins, factory has %zu "
                  "inputs",
                  name_.c_str(), p.origins.size(), origin_seq_.size()));
  }
  // Only cursors are restored. Reader cursors self-heal (each fire
  // re-advances them), and window/partial/join state rebuilds from the
  // replayed rows — delta_seeded_ stays false so the first dual-window
  // emission re-joins the whole initial window.
  origin_seq_ = p.origins;
  if (p.has_next_emission) {
    next_emission_ = p.next_emission;
  } else {
    next_emission_.reset();
  }
  batch_cursor_ = p.batch_cursor;
  stats_.emissions = p.emissions;
  return Status::OK();
}

bool Factory::CheckReady() const {
  MutexLock lock(mu_);
  return CheckReadyLocked();
}

bool Factory::EnsureRangeOrigin(int rel, int64_t* m) const {
  if (next_emission_.has_value()) {
    *m = *next_emission_;
    return true;
  }
  const FactoryInput& in = inputs_[rel];
  const BasketView view = in.basket->Read(origin_seq_[rel], 1);
  if (view.rows == 0) return false;
  const WindowMath wm(*in.window);
  const int64_t ts0 =
      view.cols[in.basket->ts_col()]->I64Data()[0];
  *m = wm.FirstRangeEmission(ts0);
  return true;
}

bool Factory::CheckReadyLocked() const {
  if (paused_ || failed_) return false;
  switch (shape_) {
    case Shape::kPerBatch: {
      const int rel = stream_rels_[0];
      return inputs_[rel].basket->HighSeq() > batch_cursor_;
    }
    case Shape::kSharedTail:
    case Shape::kSingleWindow: {
      // Shared tails probe exactly like private single-window factories:
      // origin_seq_ was anchored at the node's origin in Validate, and
      // readiness only reads the basket's high seq / watermark.
      const int rel = stream_rels_[0];
      const FactoryInput& in = inputs_[rel];
      const WindowMath wm(*in.window);
      if (in.window->rows) {
        // A sealed stream can never complete another ROWS window; the
        // factory goes dormant on the trailing partial window.
        const int64_t k = next_emission_.value_or(0);
        const uint64_t high = in.basket->HighSeq();
        return high >= origin_seq_[rel] &&
               wm.RowsReady(k, high - origin_seq_[rel]);
      }
      int64_t m = 0;
      if (!EnsureRangeOrigin(rel, &m)) return false;
      next_emission_ = m;
      return RangeSideReady(rel, wm, m);
    }
    case Shape::kDualWindow: {
      const int l = stream_rels_[0];
      const int r = stream_rels_[1];
      if (!next_emission_.has_value()) {
        // Boundaries are shared (equal slide); start at the later of the
        // two streams' first windows so both sides have coverage.
        int64_t ml = 0, mr = 0;
        if (!EnsureRangeOrigin(l, &ml)) return false;
        if (!EnsureRangeOrigin(r, &mr)) return false;
        next_emission_ = std::max(ml, mr);
      }
      const int64_t m = *next_emission_;
      return RangeSideReady(l, WindowMath(*inputs_[l].window), m) &&
             RangeSideReady(r, WindowMath(*inputs_[r].window), m);
    }
  }
  return false;
}

bool Factory::RangeSideReady(int rel, const WindowMath& wm, int64_t m) const {
  const Basket* b = inputs_[rel].basket;
  const Micros watermark = b->EventWatermark();
  if (wm.RangeReady(m, watermark)) return true;
  // A sealed stream flushes every window that could still contain data,
  // then the factory goes dormant for that side.
  return b->sealed() && wm.RangeExtent(m).first <= watermark;
}

Result<exec::StageInput> Factory::ReadStreamExtent(int rel, bool rows_mode,
                                                   int64_t lo,
                                                   int64_t hi) const {
  const FactoryInput& in = inputs_[rel];
  BasketView view;
  if (rows_mode) {
    const int64_t origin = static_cast<int64_t>(origin_seq_[rel]);
    const int64_t abs_lo = std::max<int64_t>(origin + lo, origin);
    const int64_t abs_hi = std::max<int64_t>(origin + hi, abs_lo);
    view = in.basket->Read(static_cast<uint64_t>(abs_lo),
                           static_cast<uint64_t>(abs_hi - abs_lo));
  } else {
    DC_ASSIGN_OR_RETURN(auto range, in.basket->SeqRangeForTs(lo, hi));
    uint64_t seq_lo = std::max(range.first, origin_seq_[rel]);
    uint64_t seq_hi = std::max(range.second, seq_lo);
    view = in.basket->Read(seq_lo, seq_hi - seq_lo);
  }
  return exec::StageInput{std::move(view.cols), view.rows};
}

exec::StageInput Factory::TableInput(int rel) const {
  const TableVersionPtr snap = inputs_[rel].table->Snapshot();
  return exec::StageInput{snap->cols, snap->NumRows()};
}

Micros Factory::TriggerStampLocked(int64_t emission) const {
  Micros stamp = -1;
  for (int s = 0; s < 2; ++s) {
    const int rel = stream_rels_[s];
    if (rel < 0) continue;
    const FactoryInput& in = inputs_[rel];
    if (!in.is_stream || in.basket == nullptr || !in.window.has_value()) {
      continue;
    }
    const WindowMath wm(*in.window);
    Micros t;
    if (in.window->rows) {
      t = in.basket->IngestStampForSeq(
          origin_seq_[rel] + static_cast<uint64_t>(wm.RowsWindowEnd(emission)));
    } else {
      t = in.basket->IngestStampForWatermark(wm.RangeBoundary(emission));
    }
    stamp = std::max(stamp, t);
  }
  return stamp;
}

Status Factory::EmitResult(const ColumnSet& result, Micros trigger_us) {
  // Zero-row results are appended too: the basket records their batch
  // boundary, so the emitter delivers the empty result set and `emissions`
  // stays equal to emitter-delivered emissions.
  DC_RETURN_NOT_OK(
      output_->Append(result.cols, Basket::kBlockForever, trigger_us));
  stats_.tuples_out += result.NumRows();
  stats_.emissions++;
  if (result.NumRows() == 0) stats_.empty_emissions++;
  return Status::OK();
}

Status Factory::Fire() {
  MutexLock lock(mu_);
  if (!CheckReadyLocked()) return Status::OK();
  trace::Span span("factory.fire", "factory", id_);
  Stopwatch watch;
  Status st = FireLocked();
  const Micros elapsed = watch.ElapsedMicros();
  stats_.invocations++;
  stats_.total_exec_micros += elapsed;
  stats_.last_exec_micros = elapsed;
  if (!st.ok()) {
    failed_ = true;
    last_error_ = st.ToString();
    stats_.last_error = last_error_;
    DC_LOG(kError) << "factory " << name_ << " failed: " << st.ToString();
  }
  return st;
}

Status Factory::FireLocked() {
  switch (shape_) {
    case Shape::kPerBatch:
      return FirePerBatch();
    case Shape::kSingleWindow:
      return FireSingleWindow();
    case Shape::kDualWindow:
      return FireDualWindow();
    case Shape::kSharedTail:
      return FireSharedTail();
  }
  return Status::Internal("bad shape");
}

Status Factory::FirePerBatch() {
  const int rel = stream_rels_[0];
  const FactoryInput& in = inputs_[rel];
  const uint64_t high = in.basket->HighSeq();
  if (high <= batch_cursor_) return Status::OK();
  // The emission's response clock started when its oldest pending row
  // arrived (worst case across the consumed batches).
  const Micros trigger = in.basket->IngestStampForSeq(batch_cursor_ + 1);
  BasketView view = in.basket->Read(batch_cursor_, high - batch_cursor_);
  std::vector<exec::StageInput> raw(inputs_.size());
  raw[rel] = exec::StageInput{std::move(view.cols), view.rows};
  if (table_rel_ >= 0) raw[table_rel_] = TableInput(table_rel_);
  stats_.tuples_in += raw[rel].rows;
  DC_ASSIGN_OR_RETURN(ColumnSet result, executor_->ExecuteFull(raw));
  DC_RETURN_NOT_OK(EmitResult(result, trigger));
  batch_cursor_ = view.first_seq + view.rows;
  in.basket->AdvanceReader(in.reader_id, batch_cursor_);
  return Status::OK();
}

Result<const exec::StageInput*> Factory::EnsureCompact(int rel,
                                                       bool rows_mode,
                                                       int64_t bw) {
  const auto key = std::make_pair(rel, bw);
  auto it = compact_.find(key);
  if (it != compact_.end()) return &it->second;
  const WindowMath wm(*inputs_[rel].window);
  const auto [lo, hi] = wm.BasicWindowExtent(bw);
  DC_ASSIGN_OR_RETURN(exec::StageInput raw,
                      ReadStreamExtent(rel, rows_mode, lo, hi));
  stats_.tuples_in += raw.rows;
  DC_ASSIGN_OR_RETURN(exec::StageOutput pre, executor_->RunPrejoin(rel, raw));
  auto [pos, inserted] = compact_.emplace(
      key, exec::StageInput{std::move(pre.cols), pre.rows});
  return &pos->second;
}

Result<const exec::Partial*> Factory::EnsureSinglePartial(
    int64_t bw, bool rows_mode, uint64_t table_version) {
  const int rel = stream_rels_[0];
  const PartialKey key{bw, 0};
  auto it = partials_.find(key);
  if (it != partials_.end() &&
      (table_rel_ < 0 || partial_versions_[key] == table_version)) {
    return &it->second;
  }
  stats_.fragments_computed++;
  if (table_rel_ < 0) {
    // No second relation: run the whole fragment pipeline directly.
    const WindowMath wm(*inputs_[rel].window);
    const auto [lo, hi] = wm.BasicWindowExtent(bw);
    std::vector<exec::StageInput> raw(inputs_.size());
    DC_ASSIGN_OR_RETURN(raw[rel], ReadStreamExtent(rel, rows_mode, lo, hi));
    stats_.tuples_in += raw[rel].rows;
    DC_ASSIGN_OR_RETURN(exec::Partial p, executor_->ComputePartial(raw));
    auto [pos, ignored] = partials_.insert_or_assign(key, std::move(p));
    return &pos->second;
  }
  // Stream-table: reuse the cached stream-side prejoin fragment; re-run the
  // (cheap) postjoin against the current table version.
  DC_ASSIGN_OR_RETURN(const exec::StageInput* sc,
                      EnsureCompact(rel, rows_mode, bw));
  if (!table_compact_.has_value() ||
      table_compact_version_ != table_version) {
    DC_ASSIGN_OR_RETURN(exec::StageOutput pre,
                        executor_->RunPrejoin(table_rel_,
                                              TableInput(table_rel_)));
    table_compact_ = exec::StageInput{std::move(pre.cols), pre.rows};
    table_compact_version_ = table_version;
  }
  std::vector<exec::StageInput> compact(inputs_.size());
  compact[rel] = *sc;
  compact[table_rel_] = *table_compact_;
  DC_ASSIGN_OR_RETURN(exec::StageOutput frag,
                      executor_->RunPostjoin(compact));
  DC_ASSIGN_OR_RETURN(exec::Partial p, executor_->MakePartial(frag));
  auto [pos, ignored] = partials_.insert_or_assign(key, std::move(p));
  partial_versions_[key] = table_version;
  return &pos->second;
}

Status Factory::FireSingleWindow() {
  const int rel = stream_rels_[0];
  const FactoryInput& in = inputs_[rel];
  const WindowMath wm(*in.window);
  const bool rows_mode = in.window->rows;
  const int64_t k = next_emission_.value_or(0);

  int64_t ext_lo, ext_hi;  // window extent in window coordinates
  if (rows_mode) {
    ext_lo = wm.RowsWindowStart(k);
    ext_hi = wm.RowsWindowEnd(k);
  } else {
    std::tie(ext_lo, ext_hi) = wm.RangeExtent(k);
  }
  const Micros trigger = TriggerStampLocked(k);

  if (!incremental_active_) {
    std::vector<exec::StageInput> raw(inputs_.size());
    DC_ASSIGN_OR_RETURN(raw[rel],
                        ReadStreamExtent(rel, rows_mode, ext_lo, ext_hi));
    if (table_rel_ >= 0) raw[table_rel_] = TableInput(table_rel_);
    stats_.tuples_in += raw[rel].rows;
    DC_ASSIGN_OR_RETURN(ColumnSet result, executor_->ExecuteFull(raw));
    DC_RETURN_NOT_OK(EmitResult(result, trigger));
  } else {
    const uint64_t version =
        table_rel_ >= 0 ? inputs_[table_rel_].table->Snapshot()->version : 0;
    const auto [first, last] = rows_mode ? wm.BasicWindowsForRows(k)
                                         : wm.BasicWindowsForRange(k);
    std::vector<const exec::Partial*> ps;
    for (int64_t j = first; j < last; ++j) {
      DC_ASSIGN_OR_RETURN(const exec::Partial* p,
                          EnsureSinglePartial(j, rows_mode, version));
      ps.push_back(p);
    }
    DC_ASSIGN_OR_RETURN(ColumnSet result, executor_->Finish(ps));
    DC_RETURN_NOT_OK(EmitResult(result, trigger));
    // Evict state that the next emission can no longer use.
    const int64_t keep_from = first + 1;
    std::erase_if(partials_,
                  [&](const auto& kv) { return kv.first.a < keep_from; });
    std::erase_if(partial_versions_,
                  [&](const auto& kv) { return kv.first.a < keep_from; });
    std::erase_if(compact_,
                  [&](const auto& kv) { return kv.first.second < keep_from; });
  }

  // Release consumed tuples: everything before the next window's start.
  if (rows_mode) {
    const uint64_t next_start =
        origin_seq_[rel] + static_cast<uint64_t>(wm.RowsWindowStart(k + 1));
    in.basket->AdvanceReader(in.reader_id, next_start);
  } else {
    const auto [next_lo, next_hi] = wm.RangeExtent(k + 1);
    DC_ASSIGN_OR_RETURN(auto range,
                        in.basket->SeqRangeForTs(next_lo, next_lo + 1));
    in.basket->AdvanceReader(in.reader_id, range.first);
  }
  next_emission_ = k + 1;
  return Status::OK();
}

Status Factory::FireSharedTail() {
  const int rel = stream_rels_[0];
  const FactoryInput& in = inputs_[rel];
  const WindowMath wm(*in.window);
  const bool rows_mode = in.window->rows;
  const int64_t k = next_emission_.value_or(0);

  int64_t ext_lo, ext_hi;  // window extent in window coordinates
  if (rows_mode) {
    ext_lo = wm.RowsWindowStart(k);
    ext_hi = wm.RowsWindowEnd(k);
  } else {
    std::tie(ext_lo, ext_hi) = wm.RangeExtent(k);
  }
  const Micros trigger = TriggerStampLocked(k);

  // The node serves (and caches) the grid partials covering this window;
  // whichever subscriber fires first pays for a build, everyone else hits.
  std::vector<PartialPtr> parts;
  uint64_t built = 0, hits = 0, rows_in = 0;
  DC_RETURN_NOT_OK(
      node_->EnsureRange(ext_lo, ext_hi, &parts, &built, &hits, &rows_in));
  stats_.fragments_computed += built;
  stats_.sharing_hits += hits;
  stats_.tuples_in += rows_in;
  std::vector<const exec::Partial*> ps;
  ps.reserve(parts.size());
  for (const PartialPtr& p : parts) ps.push_back(p.get());
  DC_ASSIGN_OR_RETURN(ColumnSet result, executor_->Finish(ps));
  DC_RETURN_NOT_OK(EmitResult(result, trigger));

  // Release everything before the next window's start; the node advances
  // its reader / evicts at the minimum mark across subscribers.
  const int64_t next_lo =
      rows_mode ? wm.RowsWindowStart(k + 1) : wm.RangeExtent(k + 1).first;
  const WindowMath grid(
      plan::WindowSpec{rows_mode, node_->grid_slide(), node_->grid_slide()});
  node_->Release(node_sub_, grid.BasicWindowOf(next_lo));
  next_emission_ = k + 1;
  return Status::OK();
}

Status Factory::FireDualWindow() {
  const int l = stream_rels_[0];
  const int r = stream_rels_[1];
  const WindowMath wl(*inputs_[l].window);
  const WindowMath wr(*inputs_[r].window);
  const int64_t m = *next_emission_;

  if (!incremental_active_ || !executor_->HasDeltaPostjoin()) {
    std::vector<exec::StageInput> raw(inputs_.size());
    const auto [llo, lhi] = wl.RangeExtent(m);
    const auto [rlo, rhi] = wr.RangeExtent(m);
    DC_ASSIGN_OR_RETURN(raw[l], ReadStreamExtent(l, false, llo, lhi));
    DC_ASSIGN_OR_RETURN(raw[r], ReadStreamExtent(r, false, rlo, rhi));
    stats_.tuples_in += raw[l].rows + raw[r].rows;
    DC_ASSIGN_OR_RETURN(ColumnSet result, executor_->ExecuteFull(raw));
    DC_RETURN_NOT_OK(EmitResult(result, TriggerStampLocked(m)));
  } else {
    DC_RETURN_NOT_OK(FireDualWindowDelta(m, wl, wr));
  }

  for (int s = 0; s < 2; ++s) {
    const int rel = stream_rels_[s];
    const WindowMath& wm = s == 0 ? wl : wr;
    const auto [next_lo, next_hi] = wm.RangeExtent(m + 1);
    DC_ASSIGN_OR_RETURN(
        auto range, inputs_[rel].basket->SeqRangeForTs(next_lo, next_lo + 1));
    inputs_[rel].basket->AdvanceReader(inputs_[rel].reader_id, range.first);
  }
  next_emission_ = m + 1;
  return Status::OK();
}

Result<exec::StageOutput> Factory::PrejoinBasicWindow(int rel, int64_t bw) {
  const WindowMath wm(*inputs_[rel].window);
  const auto [lo, hi] = wm.BasicWindowExtent(bw);
  DC_ASSIGN_OR_RETURN(exec::StageInput raw,
                      ReadStreamExtent(rel, /*rows_mode=*/false, lo, hi));
  stats_.tuples_in += raw.rows;
  return executor_->RunPrejoin(rel, raw);
}

Status Factory::FireDeltaRows(int64_t m, int64_t lfirst, int64_t rfirst,
                              int64_t nl, int64_t nr) {
  const plan::CompiledQuery& cq = executor_->compiled();
  const int64_t firsts[2] = {lfirst, rfirst};

  // Roll each side forward: mark expired basic windows dead, then append
  // the new basic window(s) — m-1 in steady state, the whole initial
  // window on the seed fire (the indexes are empty then, so every pair
  // comes out of the new x new hash join).
  std::vector<exec::StageInput> compact(inputs_.size());
  const int64_t nbw[2] = {nl, nr};
  uint64_t old_rows[2] = {0, 0};
  for (int s = 0; s < 2; ++s) {
    exec::DeltaSideState& ds = delta_side_[s];
    if (!delta_seeded_) ds.Reset(cq.delta_key_domain, cq.delta_key_slots[s]);
    if (nbw[s] == 1) {
      // Window == slide on this side: nothing is ever retained across
      // fires, so the whole window is the new basic window (aliased, not
      // copied) and the index stays empty.
      DC_ASSIGN_OR_RETURN(exec::StageOutput pre,
                          PrejoinBasicWindow(stream_rels_[s], m - 1));
      ds.AdoptSingleWindow(m - 1, pre);
    } else {
      ds.EvictBefore(firsts[s]);
      old_rows[s] = ds.rows;
      for (int64_t j = delta_seeded_ ? m - 1 : firsts[s]; j < m; ++j) {
        DC_ASSIGN_OR_RETURN(exec::StageOutput pre,
                            PrejoinBasicWindow(stream_rels_[s], j));
        DC_RETURN_NOT_OK(ds.AppendBasicWindow(j, pre));
      }
    }
    compact[stream_rels_[s]] =
        exec::StageInput{ds.cols, ds.rows, old_rows[s], &ds.index};
  }

  DC_ASSIGN_OR_RETURN(exec::DeltaFrag df,
                      executor_->RunPostjoinDelta(compact));
  stats_.fragments_computed++;
  stats_.delta_pairs += df.frag.rows;
  // Index the new rows only after the probe: the retained index must
  // never cover the emission that probes it.
  for (int s = 0; s < 2; ++s) {
    if (nbw[s] == 1) continue;  // never probed — keep the index empty
    DC_RETURN_NOT_OK(delta_side_[s].IndexNewRows(old_rows[s]));
  }

  // Bucket the new pairs by the emission at which they leave the window:
  // pair (jl, jr) is live while m' <= min(jl + nl, jr + nr), so its
  // expiry lands in [m + 1, m + min(nl, nr)] and the reusable scratch is
  // indexed by expiry - (m + 1). Partials are keyed {expiry, created}, so
  // expiry evicts whole buckets — no retained row is ever rescanned.
  const size_t nbuckets = static_cast<size_t>(std::min(nl, nr));
  if (nbuckets == 1) {
    // Every pair expires at the next emission (one side's window is a
    // single basic window) — the whole fragment is one bucket, no gather.
    if (df.frag.rows > 0) {
      DC_ASSIGN_OR_RETURN(exec::Partial p, executor_->MakePartial(df.frag));
      partials_.insert_or_assign(PartialKey{m + 1, m}, std::move(p));
    }
  } else {
    if (expiry_rows_.size() < nbuckets) expiry_rows_.resize(nbuckets);
    for (uint64_t i = 0; i < df.frag.rows; ++i) {
      const int64_t idx =
          std::min(df.left_bw[i] + nl, df.right_bw[i] + nr) - m;
      if (idx < 0 || static_cast<size_t>(idx) >= nbuckets) {
        return Status::Internal("delta join: pair expiry out of range");
      }
      expiry_rows_[idx].push_back(static_cast<Oid>(i));
    }
    for (size_t idx = 0; idx < nbuckets; ++idx) {
      std::vector<Oid>& rows = expiry_rows_[idx];
      if (rows.empty()) continue;
      exec::StageOutput bucket;
      bucket.rows = rows.size();
      for (const BatPtr& col : df.frag.cols) {
        bucket.cols.push_back(ops::FetchOids(*col, rows));
      }
      rows.clear();  // keep capacity for the next fire
      DC_ASSIGN_OR_RETURN(exec::Partial p, executor_->MakePartial(bucket));
      partials_.insert_or_assign(
          PartialKey{m + 1 + static_cast<int64_t>(idx), m}, std::move(p));
    }
  }

  for (int s = 0; s < 2; ++s) delta_side_[s].TrimIfWorthIt();
  return Status::OK();
}

Status Factory::FireDeltaPreAgg(int64_t m, int64_t lfirst, int64_t rfirst,
                                int64_t nl, int64_t nr) {
  const plan::CompiledQuery& cq = executor_->compiled();
  const auto& pa = cq.delta_pre_agg;
  const size_t nagg = pa.agg_side.size();
  const size_t nbuckets = static_cast<size_t>(std::min(nl, nr));
  if (expiry_states_.size() < nbuckets) {
    expiry_states_.resize(nbuckets);
    expiry_dirty_.resize(nbuckets, 0);
  }
  for (size_t i = 0; i < nbuckets; ++i) {
    expiry_states_[i].assign(nagg, ops::AggState{});
    expiry_dirty_[i] = 0;
  }
  if (!delta_seeded_) {
    delta_groups_[0].Reset(cq.delta_key_domain);
    delta_groups_[1].Reset(cq.delta_key_domain);
  }
  delta_groups_[0].EvictBefore(lfirst);
  delta_groups_[1].EvictBefore(rfirst);

  // Per aggregate: does the pairing need the merged extrema? Only MIN/MAX
  // read them; skipping the boxed-Value compares for SUM/AVG/COUNT keeps
  // the per-pair loop purely arithmetic.
  std::vector<char> needs_minmax(nagg, 0);
  for (size_t i = 0; i < nagg; ++i) {
    const ops::AggKind k = cq.bound.aggs[i].kind;
    needs_minmax[i] = (k == ops::AggKind::kMin || k == ops::AggKind::kMax);
  }

  // One group pairing (count_l, states_l) x (count_r, states_r) stands
  // for count_l * count_r join pairs; the product rule folds it into the
  // expiry bucket in O(aggs).
  uint64_t pairs = 0;
  auto accumulate = [&](int64_t jl, int64_t jr, uint64_t cl, uint64_t cr,
                        const ops::AggState* sl,
                        const ops::AggState* sr) -> Status {
    const int64_t idx = std::min(jl + nl, jr + nr) - m;
    if (idx < 0 || static_cast<size_t>(idx) >= nbuckets) {
      return Status::Internal("delta pre-agg: pair expiry out of range");
    }
    std::vector<ops::AggState>& bucket = expiry_states_[idx];
    expiry_dirty_[idx] = 1;
    for (size_t i = 0; i < nagg; ++i) {
      if (pa.agg_side[i] < 0) {
        bucket[i].count += cl * cr;  // COUNT(*)
      } else if (pa.agg_side[i] == 0) {
        bucket[i].ScaledMerge(sl[preagg_local_[i]], cr,
                              needs_minmax[i] != 0);
      } else {
        bucket[i].ScaledMerge(sr[preagg_local_[i]], cl,
                              needs_minmax[i] != 0);
      }
    }
    pairs += cl * cr;
    return Status::OK();
  };

  // Steady state runs one step (new basic window m-1 on both sides); the
  // seed fire replays the initial window basic window by basic window, so
  // every cross-bw pairing goes through the same retained x new probes.
  for (int64_t j = delta_seeded_ ? m - 1 : std::min(lfirst, rfirst); j < m;
       ++j) {
    const bool has_l = j >= lfirst;
    const bool has_r = j >= rfirst;
    exec::DeltaGroups gl, gr;
    if (has_l) {
      DC_ASSIGN_OR_RETURN(exec::StageOutput pre,
                          PrejoinBasicWindow(stream_rels_[0], j));
      DC_ASSIGN_OR_RETURN(gl, executor_->BuildDeltaGroups(0, pre));
      stats_.fragments_computed++;
    }
    if (has_r) {
      DC_ASSIGN_OR_RETURN(exec::StageOutput pre,
                          PrejoinBasicWindow(stream_rels_[1], j));
      DC_ASSIGN_OR_RETURN(gr, executor_->BuildDeltaGroups(1, pre));
      stats_.fragments_computed++;
    }
    // Pairing order folds new x new into the second probe: one side's new
    // groups are appended to its track before the opposite side probes it,
    // so a single probe covers retained x new and new x new at once — no
    // separate new x new join. A single-basic-window side never appends
    // (nothing of it outlives its own emission; the opposite window then
    // holds no old groups of this side either), so the append-first side
    // is chosen accordingly; when both sides are tumbling the tracks stay
    // empty and the step pairs new x new directly.
    auto probe_left_new = [&]() -> Status {  // gl vs track 1
      if (!has_l || gl.num_groups() == 0) return Status::OK();
      std::vector<Oid> probe_out, pos_out;
      DC_RETURN_NOT_OK(delta_groups_[1].index.Probe(
          *gl.keys, 0, gl.keys->size(), &probe_out, &pos_out));
      const exec::DeltaGroupTrack& t = delta_groups_[1];
      for (size_t k = 0; k < probe_out.size(); ++k) {
        const uint64_t g = probe_out[k], p = pos_out[k];
        DC_RETURN_NOT_OK(accumulate(j, t.bw_of[p], gl.counts[g], t.counts[p],
                                    gl.group_states(g), t.group_states(p)));
      }
      return Status::OK();
    };
    auto probe_right_new = [&]() -> Status {  // gr vs track 0
      if (!has_r || gr.num_groups() == 0) return Status::OK();
      std::vector<Oid> probe_out, pos_out;
      DC_RETURN_NOT_OK(delta_groups_[0].index.Probe(
          *gr.keys, 0, gr.keys->size(), &probe_out, &pos_out));
      const exec::DeltaGroupTrack& t = delta_groups_[0];
      for (size_t k = 0; k < probe_out.size(); ++k) {
        const uint64_t g = probe_out[k], p = pos_out[k];
        DC_RETURN_NOT_OK(accumulate(t.bw_of[p], j, t.counts[p], gr.counts[g],
                                    t.group_states(p), gr.group_states(g)));
      }
      return Status::OK();
    };
    auto append_left = [&]() -> Status {
      if (!has_l || nl == 1) return Status::OK();
      return delta_groups_[0].AppendGroups(j, gl);
    };
    auto append_right = [&]() -> Status {
      if (!has_r || nr == 1) return Status::OK();
      return delta_groups_[1].AppendGroups(j, gr);
    };
    if (nl == 1 && nr == 1) {
      if (has_l && has_r && gl.num_groups() > 0 && gr.num_groups() > 0) {
        DC_ASSIGN_OR_RETURN(ops::JoinResult nn,
                            ops::HashJoin(*gl.keys, *gr.keys));
        for (size_t k = 0; k < nn.left.size(); ++k) {
          const uint64_t a = nn.left[k], b = nn.right[k];
          DC_RETURN_NOT_OK(accumulate(j, j, gl.counts[a], gr.counts[b],
                                      gl.group_states(a), gr.group_states(b)));
        }
      }
    } else if (nl == 1) {
      DC_RETURN_NOT_OK(append_right());
      DC_RETURN_NOT_OK(probe_left_new());
    } else if (nr == 1) {
      DC_RETURN_NOT_OK(append_left());
      DC_RETURN_NOT_OK(probe_right_new());
    } else {
      DC_RETURN_NOT_OK(probe_left_new());
      DC_RETURN_NOT_OK(append_left());
      DC_RETURN_NOT_OK(probe_right_new());
      DC_RETURN_NOT_OK(append_right());
    }
  }
  stats_.delta_pairs += pairs;

  // One partial per touched expiry, written after all steps so seed-fire
  // steps that share an expiry accumulate into one {expiry, m} key.
  for (size_t idx = 0; idx < nbuckets; ++idx) {
    if (!expiry_dirty_[idx]) continue;
    exec::Partial p;
    p.scalar_states = std::move(expiry_states_[idx]);
    partials_.insert_or_assign(
        PartialKey{m + 1 + static_cast<int64_t>(idx), m}, std::move(p));
  }

  for (int s = 0; s < 2; ++s) delta_groups_[s].TrimIfWorthIt();
  return Status::OK();
}

Status Factory::FireDualWindowDelta(int64_t m, const WindowMath& wl,
                                    const WindowMath& wr) {
  const int64_t nl = wl.NumBasicWindows();
  const int64_t nr = wr.NumBasicWindows();
  const auto [lfirst, llast] = wl.BasicWindowsForRange(m);  // llast == m
  const auto [rfirst, rlast] = wr.BasicWindowsForRange(m);

  if (executor_->compiled().delta_pre_agg.eligible) {
    DC_RETURN_NOT_OK(FireDeltaPreAgg(m, lfirst, rfirst, nl, nr));
  } else {
    DC_RETURN_NOT_OK(FireDeltaRows(m, lfirst, rfirst, nl, nr));
  }
  delta_seeded_ = true;

  // Merge every live partial (map order: expiry, then creation — a
  // deterministic order; emission row order beyond ORDER BY is
  // unspecified, see docs/INCREMENTAL.md).
  std::vector<const exec::Partial*> ps;
  ps.reserve(partials_.size());
  for (const auto& [key, p] : partials_) ps.push_back(&p);
  DC_ASSIGN_OR_RETURN(ColumnSet result, executor_->Finish(ps));
  DC_RETURN_NOT_OK(EmitResult(result, TriggerStampLocked(m)));

  // Evict pairs gone by the next emission.
  std::erase_if(partials_,
                [&](const auto& kv) { return kv.first.a <= m + 1; });
  return Status::OK();
}

}  // namespace dc
